// Shared fixtures for the benchmark harness: datasets and indexes are built
// once per size and cached for the lifetime of the binary, so google-benchmark
// timings measure the operation under test, not repeated setup.
//
// All workloads are seeded: every run of a bench binary replays the identical
// experiment (EXPERIMENTS.md reports these numbers).

#ifndef YASK_BENCH_BENCH_UTIL_H_
#define YASK_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/corpus/corpus.h"
#include "src/index/inverted_index.h"
#include "src/index/kcr_tree.h"
#include "src/index/setr_tree.h"
#include "src/query/topk_engine.h"
#include "src/storage/dataset_generator.h"

namespace yask {
namespace bench {

inline constexpr uint64_t kDatasetSeed = 20160901;  // VLDB'16 proceedings.

/// The spec of the benchmark dataset family: clustered spatial placement,
/// Zipf keywords, |vocab| = 2000 — the synthetic stand-in for the POI crawls
/// of refs [5,6].
inline DatasetSpec SharedDatasetSpec(size_t n) {
  DatasetSpec spec;
  spec.num_objects = n;
  spec.vocabulary_size = 2000;
  spec.keyword_zipf = 1.0;
  spec.min_keywords = 3;
  spec.max_keywords = 10;
  spec.seed = kDatasetSeed;
  return spec;
}

/// The benchmark corpus family: the shared dataset plus its SetR-tree, as
/// one owned Corpus. Heavier indexes (KcR-tree, plain R-tree, inverted) stay
/// in their own lazy caches below so a bench only pays for what it uses.
inline const Corpus& SharedCorpus(size_t n) {
  static std::map<size_t, std::unique_ptr<Corpus>>* cache =
      new std::map<size_t, std::unique_ptr<Corpus>>();
  auto it = cache->find(n);
  if (it == cache->end()) {
    CorpusOptions options;
    options.build_kcr_tree = false;
    it = cache
             ->emplace(n, std::make_unique<Corpus>(CorpusBuilder(options).Build(
                              GenerateDataset(SharedDatasetSpec(n)))))
             .first;
  }
  return *it->second;
}

inline const ObjectStore& SharedDataset(size_t n) {
  return SharedCorpus(n).store();
}

inline const SetRTree& SharedSetR(size_t n) { return SharedCorpus(n).setr(); }

inline const KcRTree& SharedKcR(size_t n) {
  static std::map<size_t, std::unique_ptr<KcRTree>>* cache =
      new std::map<size_t, std::unique_ptr<KcRTree>>();
  auto it = cache->find(n);
  if (it == cache->end()) {
    auto tree = std::make_unique<KcRTree>(&SharedDataset(n));
    tree->BulkLoad();
    it = cache->emplace(n, std::move(tree)).first;
  }
  return *it->second;
}

inline const RTree& SharedRTree(size_t n) {
  static std::map<size_t, std::unique_ptr<RTree>>* cache =
      new std::map<size_t, std::unique_ptr<RTree>>();
  auto it = cache->find(n);
  if (it == cache->end()) {
    auto tree = std::make_unique<RTree>(&SharedDataset(n));
    tree->BulkLoad();
    it = cache->emplace(n, std::move(tree)).first;
  }
  return *it->second;
}

inline const InvertedIndex& SharedInverted(size_t n) {
  static std::map<size_t, std::unique_ptr<InvertedIndex>>* cache =
      new std::map<size_t, std::unique_ptr<InvertedIndex>>();
  auto it = cache->find(n);
  if (it == cache->end()) {
    it = cache->emplace(n, std::make_unique<InvertedIndex>(SharedDataset(n)))
             .first;
  }
  return *it->second;
}

/// A query whose location hugs the data and whose keywords certainly match
/// something (the way demo users click the map and type known words).
inline Query MakeQuery(const ObjectStore& store, Rng* rng, size_t num_keywords,
                       uint32_t k) {
  Query q;
  q.loc = SampleQueryLocation(store, rng);
  q.doc = SampleQueryKeywords(store, num_keywords, rng);
  q.k = k;
  q.w = Weights::FromWs(0.5);
  return q;
}

/// Knobs of the production-shaped /query workload below.
struct ProductionWorkloadSpec {
  /// How many distinct query shapes exist. Real map traffic is a small hot
  /// set over a long tail; 64 shapes under Zipf(1.0) popularity puts ~20%
  /// of all requests on the single hottest query.
  size_t distinct_queries = 64;
  /// Geographic hotspots the query locations cluster around (downtowns,
  /// station areas) — each shape's location is one hotspot plus Gaussian
  /// jitter, not a uniform draw over the whole map.
  size_t hotspots = 4;
  /// Zipf exponent of shape popularity (0 = uniform traffic).
  double popularity_skew = 1.0;
  size_t min_keywords = 1;
  size_t max_keywords = 3;
  uint32_t k = 5;
  uint64_t seed = kDatasetSeed + 7;
};

/// A production-shaped stream of /query requests: keywords are Zipf draws
/// over the corpus's actually-most-frequent terms and locations cluster
/// around a few geographic hotspots, so a handful of hot queries dominates a
/// long tail — the regime a coordinator result cache and single-flight
/// coalescing are built for. Fully seeded: the same spec replays the same
/// shapes and the same popularity draws on every run.
class ProductionWorkload {
 public:
  explicit ProductionWorkload(const ObjectStore& store,
                              ProductionWorkloadSpec spec = {})
      : pick_(std::max<size_t>(spec.distinct_queries, 1),
              spec.popularity_skew),
        rng_(spec.seed) {
    // Term popularity measured from the corpus itself, most frequent first.
    std::map<TermId, size_t> freq;
    double min_x = 0, min_y = 0, max_x = 0, max_y = 0;
    for (size_t i = 0; i < store.size(); ++i) {
      const SpatialObject& o = store.Get(static_cast<ObjectId>(i));
      for (const TermId t : o.doc) ++freq[t];
      if (i == 0) {
        min_x = max_x = o.loc.x;
        min_y = max_y = o.loc.y;
      } else {
        min_x = std::min(min_x, o.loc.x);
        max_x = std::max(max_x, o.loc.x);
        min_y = std::min(min_y, o.loc.y);
        max_y = std::max(max_y, o.loc.y);
      }
    }
    std::vector<std::pair<size_t, TermId>> ranked;
    ranked.reserve(freq.size());
    for (const auto& [term, count] : freq) ranked.emplace_back(count, term);
    std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
      return a.first != b.first ? a.first > b.first : a.second < b.second;
    });
    const ZipfSampler term_pick(
        std::max<size_t>(1, std::min<size_t>(ranked.size(), 256)), 1.0);

    std::vector<Point> centers;
    for (size_t h = 0; h < std::max<size_t>(spec.hotspots, 1); ++h) {
      centers.push_back(
          store.Get(static_cast<ObjectId>(rng_.NextBounded(store.size())))
              .loc);
    }
    // Jitter at ~2% of the data extent keeps a hotspot a neighbourhood, not
    // a city.
    const double sx = std::max(max_x - min_x, 1e-9) * 0.02;
    const double sy = std::max(max_y - min_y, 1e-9) * 0.02;

    const size_t shapes = std::max<size_t>(spec.distinct_queries, 1);
    for (size_t i = 0; i < shapes; ++i) {
      Query q;
      const Point& c = centers[rng_.NextBounded(centers.size())];
      q.loc = Point{c.x + rng_.NextGaussian() * sx,
                    c.y + rng_.NextGaussian() * sy};
      const size_t want = static_cast<size_t>(rng_.NextInt(
          static_cast<int64_t>(std::max<size_t>(spec.min_keywords, 1)),
          static_cast<int64_t>(
              std::max(spec.max_keywords, spec.min_keywords))));
      KeywordSet doc;
      for (size_t attempts = 0; doc.size() < want && attempts < 64;
           ++attempts) {
        doc.Insert(ranked[term_pick.Sample(&rng_)].second);
      }
      q.doc = std::move(doc);
      q.k = spec.k;
      q.w = Weights::FromWs(0.5);
      shapes_.push_back(std::move(q));
    }
  }

  /// One Zipf popularity draw over the distinct shapes using the caller's
  /// rng (so concurrent clients with distinct seeds draw independent but
  /// reproducible streams). Returns the shape index — callers that
  /// precompute per-shape request bodies or reference payloads key on it.
  size_t Draw(Rng* rng) const { return pick_.Sample(rng); }

  /// The next request in the stream.
  const Query& Next(Rng* rng) const { return shapes_[Draw(rng)]; }

  size_t distinct() const { return shapes_.size(); }
  const Query& shape(size_t i) const { return shapes_[i]; }

 private:
  std::vector<Query> shapes_;
  ZipfSampler pick_;
  Rng rng_;
};

/// Missing objects ranked just outside the top-k (offset .. offset+count).
inline std::vector<ObjectId> PickMissing(const ObjectStore& store,
                                         const Query& q, size_t count,
                                         size_t offset = 5) {
  Query probe = q;
  probe.k = static_cast<uint32_t>(q.k + offset + count + 5);
  const TopKResult wide = TopKScan(store, probe);
  std::vector<ObjectId> missing;
  for (size_t i = q.k + offset; i < wide.size() && missing.size() < count;
       ++i) {
    missing.push_back(wide[i].id);
  }
  return missing;
}

}  // namespace bench
}  // namespace yask

#endif  // YASK_BENCH_BENCH_UTIL_H_
