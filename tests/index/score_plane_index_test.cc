#include "src/index/score_plane_index.h"

#include <gtest/gtest.h>

#include <set>

#include "src/common/random.h"

namespace yask {
namespace {

std::vector<PlanePoint> RandomPoints(size_t n, Rng* rng) {
  std::vector<PlanePoint> pts;
  for (size_t i = 0; i < n; ++i) {
    pts.push_back(PlanePoint{rng->NextDouble(), rng->NextDouble(),
                             static_cast<ObjectId>(i)});
  }
  return pts;
}

TEST(PlanePointTest, ScoreAtIsLinearInterpolation) {
  PlanePoint p{0.8, 0.2, 0};
  EXPECT_DOUBLE_EQ(p.ScoreAt(0.0), 0.2);
  EXPECT_DOUBLE_EQ(p.ScoreAt(1.0), 0.8);
  EXPECT_DOUBLE_EQ(p.ScoreAt(0.5), 0.5);
}

TEST(ScorePlaneIndexTest, EmptyIndex) {
  ScorePlaneIndex index({});
  EXPECT_EQ(index.size(), 0u);
  EXPECT_EQ(index.CountAbove(0.5, 0.3, 0), 0u);
  size_t hits = 0;
  index.ForEachCrossing(PlanePoint{0.5, 0.5, 99}, 0.1, 0.9,
                        [&](const PlanePoint&) { ++hits; });
  EXPECT_EQ(hits, 0u);
}

TEST(ScorePlaneIndexTest, CountAboveMatchesBruteForce) {
  Rng rng(17);
  const auto pts = RandomPoints(2000, &rng);
  ScorePlaneIndex index(pts);
  for (int trial = 0; trial < 100; ++trial) {
    const double w = rng.NextDouble(0.01, 0.99);
    const PlanePoint& anchor = pts[rng.NextBounded(pts.size())];
    const double threshold = anchor.ScoreAt(w);
    size_t brute = 0;
    for (const PlanePoint& p : pts) {
      const double s = p.ScoreAt(w);
      if (s > threshold || (s == threshold && p.id < anchor.id)) ++brute;
    }
    EXPECT_EQ(index.CountAbove(w, threshold, anchor.id), brute);
  }
}

TEST(ScorePlaneIndexTest, CountAboveUsesFewerNodesThanLinear) {
  Rng rng(23);
  const auto pts = RandomPoints(20000, &rng);
  ScorePlaneIndex index(pts);
  // A threshold near the top of the score range prunes almost everything.
  index.CountAbove(0.5, 0.99, 0);
  EXPECT_LT(index.last_nodes_visited(), pts.size() / 10);
}

TEST(ScorePlaneIndexTest, ForEachCrossingCoversBruteForce) {
  Rng rng(29);
  const auto pts = RandomPoints(3000, &rng);
  ScorePlaneIndex index(pts);
  constexpr double kEps = 1e-9;  // Matches the index's retrieval slack.
  for (int trial = 0; trial < 50; ++trial) {
    const PlanePoint anchor = pts[rng.NextBounded(pts.size())];
    double wlo = rng.NextDouble(0.0, 0.5);
    double whi = wlo + rng.NextDouble(0.0, 0.5);
    std::set<ObjectId> brute;
    for (const PlanePoint& p : pts) {
      const double d_lo = p.ScoreAt(wlo) - anchor.ScoreAt(wlo);
      const double d_hi = p.ScoreAt(whi) - anchor.ScoreAt(whi);
      if ((d_lo <= 0 && d_hi >= 0) || (d_lo >= 0 && d_hi <= 0)) {
        brute.insert(p.id);
      }
    }
    std::set<ObjectId> got;
    index.ForEachCrossing(anchor, wlo, whi,
                          [&](const PlanePoint& p) { got.insert(p.id); });
    // The retrieval is a slack-superset of the exact predicate: nothing may
    // be missed, and every extra hit must be an epsilon-near-tie.
    for (ObjectId id : brute) {
      EXPECT_TRUE(got.count(id)) << "missed crossing for object " << id;
    }
    for (ObjectId id : got) {
      if (brute.count(id)) continue;
      const PlanePoint* p = nullptr;
      for (const PlanePoint& cand : pts) {
        if (cand.id == id) p = &cand;
      }
      ASSERT_NE(p, nullptr);
      const double d_lo = p->ScoreAt(wlo) - anchor.ScoreAt(wlo);
      const double d_hi = p->ScoreAt(whi) - anchor.ScoreAt(whi);
      EXPECT_TRUE(std::abs(d_lo) <= kEps || std::abs(d_hi) <= kEps)
          << "non-borderline false positive for object " << id;
    }
  }
}

TEST(ScorePlaneIndexTest, CrossingQueryPrunes) {
  Rng rng(31);
  // Points clustered near y = x: few cross an anchor far above them.
  std::vector<PlanePoint> pts;
  for (size_t i = 0; i < 20000; ++i) {
    const double v = rng.NextDouble(0.0, 0.2);
    pts.push_back(PlanePoint{v, v + rng.NextDouble(0, 0.01),
                             static_cast<ObjectId>(i)});
  }
  ScorePlaneIndex index(pts);
  const PlanePoint anchor{0.9, 0.9, 999999};  // Far above all lines.
  size_t hits = 0;
  index.ForEachCrossing(anchor, 0.2, 0.8, [&](const PlanePoint&) { ++hits; });
  EXPECT_EQ(hits, 0u);
  EXPECT_LT(index.last_nodes_visited(), 50u);
}

TEST(ScorePlaneIndexTest, AnchorItselfReportsAsCrossing) {
  // The anchor has zero difference everywhere, which counts as touching.
  std::vector<PlanePoint> pts{{0.3, 0.7, 0}, {0.6, 0.1, 1}};
  ScorePlaneIndex index(pts);
  std::set<ObjectId> got;
  index.ForEachCrossing(pts[0], 0.1, 0.9,
                        [&](const PlanePoint& p) { got.insert(p.id); });
  EXPECT_TRUE(got.count(0));  // Callers filter the anchor out.
}

TEST(ScorePlaneIndexTest, SinglePoint) {
  ScorePlaneIndex index({PlanePoint{0.4, 0.6, 7}});
  EXPECT_EQ(index.size(), 1u);
  EXPECT_EQ(index.CountAbove(0.5, 0.49, 99), 1u);
  EXPECT_EQ(index.CountAbove(0.5, 0.51, 99), 0u);
}

TEST(ScorePlaneIndexTest, TieCountingRespectsAnchorId) {
  // Two identical points; only the one with smaller id counts at a tie.
  std::vector<PlanePoint> pts{{0.5, 0.5, 3}, {0.5, 0.5, 8}};
  ScorePlaneIndex index(pts);
  // Anchor id 8: the equal-scored id 3 counts.
  EXPECT_EQ(index.CountAbove(0.4, 0.5, 8), 1u);
  // Anchor id 3: id 8 does not count.
  EXPECT_EQ(index.CountAbove(0.4, 0.5, 3), 0u);
  // Anchor id 0: both equal-scored points with larger ids do not count.
  EXPECT_EQ(index.CountAbove(0.4, 0.5, 0), 0u);
}

TEST(ScorePlaneIndexTest, LargeFanoutAndSmallFanoutAgree) {
  Rng rng(37);
  const auto pts = RandomPoints(512, &rng);
  ScorePlaneIndex a(pts, 4);
  ScorePlaneIndex b(pts, 64);
  for (int trial = 0; trial < 20; ++trial) {
    const double w = rng.NextDouble(0.1, 0.9);
    const double t = rng.NextDouble(0.0, 1.0);
    EXPECT_EQ(a.CountAbove(w, t, 5), b.CountAbove(w, t, 5));
  }
}

}  // namespace
}  // namespace yask
