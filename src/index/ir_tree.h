// Copyright (c) 2026 The YASK reproduction authors.
// The IR-tree (Cong, Jensen, Wu, PVLDB 2009, the paper's ref [4]): the index
// family YASK's top-k engine descends from. The original augments each
// R-tree node with a pseudo-document holding, per term, the maximum term
// weight among the node's children; best-first search uses it to bound the
// textual relevance of any object below the node.
//
// With binary term frequencies and a global idf weighting (the text model in
// src/query/text_model.h), the per-term maximum weight below a node is
// simply idf(t) whenever t occurs anywhere below — so the pseudo-document
// reduces to the union term set plus the minimum positive document norm
// below the node (for the cosine denominator). This keeps the IR-tree node
// summary equivalent to the original's bound but cheaper to store.
//
// Bound: for any object o under node N,
//   TSimCos(o, q) = dot(o,q)/(‖o‖‖q‖) <= Σ_{t ∈ U_N ∩ q} idf(t)²
//                                         / (‖q‖ · min_pos_norm_N)
// (objects with zero norm have similarity 0 and cannot exceed it).
//
// YASK itself swaps this index for the SetR-tree because the IR-tree bound
// does not transfer to Jaccard similarity (§3.3); both are provided so that
// the trade-off is reproducible (bench_topk).

#ifndef YASK_INDEX_IR_TREE_H_
#define YASK_INDEX_IR_TREE_H_

#include <limits>

#include "src/common/keyword_set.h"
#include "src/index/rtree.h"
#include "src/query/text_model.h"
#include "src/query/topk_engine.h"

namespace yask {

/// Node summary of the IR-tree; carries the idf table as injected context
/// (see RTreeT's `prototype` constructor parameter).
struct IrSummary {
  /// The context-injecting prototype for RTreeT:
  ///   IrTree tree(&store, {}, IrSummary::WithIdf(&idf));
  static IrSummary WithIdf(const IdfTable* table) {
    IrSummary s;
    s.idf = table;
    return s;
  }

  const IdfTable* idf = nullptr;
  KeywordSet union_set;
  /// Minimum positive document norm below the node; +inf when every
  /// document below is empty (or the node is empty).
  double min_pos_norm = std::numeric_limits<double>::infinity();
  uint32_t count = 0;

  /// Keeps the injected idf context (contract with RTreeT).
  void Clear() {
    union_set = KeywordSet();
    min_pos_norm = std::numeric_limits<double>::infinity();
    count = 0;
  }

  void AddObject(const SpatialObject& o) {
    union_set = count == 0 ? o.doc : KeywordSet::Union(union_set, o.doc);
    const double norm = idf->Norm(o.doc);
    if (norm > 0.0) min_pos_norm = std::min(min_pos_norm, norm);
    ++count;
  }

  void Merge(const IrSummary& other) {
    if (other.count == 0) return;
    if (count == 0) {
      union_set = other.union_set;
    } else {
      union_set = KeywordSet::Union(union_set, other.union_set);
    }
    min_pos_norm = std::min(min_pos_norm, other.min_pos_norm);
    count += other.count;
  }

  bool Equals(const IrSummary& other) const {
    return count == other.count && min_pos_norm == other.min_pos_norm &&
           union_set == other.union_set;
  }

  size_t MemoryBytes() const { return union_set.size() * sizeof(TermId); }
};

/// The IR-tree index. Construct with the idf prototype:
///   IrTree tree(&store, {}, IrSummary::WithIdf(&idf));
using IrTree = RTreeT<IrSummary>;

/// Upper bound on TSimCos(o, q) for any object under the node.
double UpperBoundCosineTSim(const IrSummary& s, const CosineScorer& scorer);

/// Upper bound on the full cosine-model score for any object under the node.
double UpperBoundCosineScore(const CosineScorer& scorer, const Rect& mbr,
                             const IrSummary& s);

/// Best-first top-k under the cosine text model over the IR-tree; the
/// counterpart of SetRTopKEngine for this model.
class IrTopKEngine {
 public:
  IrTopKEngine(const ObjectStore& store, const IdfTable& idf,
               const IrTree& tree)
      : store_(&store), idf_(&idf), tree_(&tree) {}

  TopKResult Query(const ::yask::Query& query,
                   TopKStats* stats = nullptr) const;

 private:
  const ObjectStore* store_;
  const IdfTable* idf_;
  const IrTree* tree_;
};

extern template class RTreeT<IrSummary>;

}  // namespace yask

#endif  // YASK_INDEX_IR_TREE_H_
