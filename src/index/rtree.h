// Copyright (c) 2026 The YASK reproduction authors.
// The R-tree core shared by every index in YASK (§3.3: "The algorithms inside
// the engines employ R-tree based indexing techniques").
//
// RTreeT<Summary> is a classic Guttman R-tree (quadratic split, condense-tree
// deletion) with STR bulk loading, templated on a node-summary policy:
//
//   * EmptySummary  -> plain R-tree (spatial only),
//   * SetSummary    -> SetR-tree (per-node keyword union + intersection),
//   * KcSummary     -> KcR-tree (per-node keyword->count map + cnt, Fig. 2).
//
// Summaries are recomputed bottom-up during bulk load and maintained by
// recomputation along structurally-modified paths on insert/delete (they are
// not subtractable, so no incremental removal is attempted).
//
// The node arena is public read-only: the query and why-not engines run their
// own best-first / bound-and-prune traversals directly over nodes.

#ifndef YASK_INDEX_RTREE_H_
#define YASK_INDEX_RTREE_H_

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/common/geometry.h"
#include "src/common/status.h"
#include "src/storage/object_store.h"

namespace yask {

/// Summary policy for a plain R-tree: carries nothing.
struct EmptySummary {
  void Clear() {}
  void AddObject(const SpatialObject&) {}
  void Merge(const EmptySummary&) {}
  bool Equals(const EmptySummary&) const { return true; }
  size_t MemoryBytes() const { return 0; }
};

/// Tuning knobs for the R-tree.
struct RTreeOptions {
  /// Maximum entries per node (fanout). 32 is a good in-memory default.
  size_t max_entries = 32;
  /// Minimum entries per non-root node; Guttman requires <= max/2.
  size_t min_entries = 12;
};

/// An R-tree over the objects of an ObjectStore, parameterised by a node
/// summary policy (see file comment).
///
/// Thread-compatibility: reads are safe concurrently; writes are exclusive.
template <typename Summary>
class RTreeT {
 public:
  using NodeId = uint32_t;
  static constexpr NodeId kNoNode = static_cast<NodeId>(-1);

  /// A slot in a node: for leaves `id` is an ObjectId, for internal nodes a
  /// child NodeId. `rect` is the child MBR (for leaves, the object point).
  struct Entry {
    Rect rect;
    uint32_t id;
  };

  struct Node {
    bool is_leaf = true;
    NodeId parent = kNoNode;
    Rect rect = Rect::Empty();
    Summary summary;
    std::vector<Entry> entries;
  };

  /// The tree keeps a pointer to the store (summaries need object documents);
  /// the store must outlive the tree and not shrink.
  ///
  /// `prototype` seeds every node's summary before objects are added. Plain
  /// summaries ignore it (default-constructed); context-carrying summaries
  /// (e.g. the IR-tree's, which needs the corpus idf table) use it to inject
  /// that context — their Clear() must preserve it.
  explicit RTreeT(const ObjectStore* store, RTreeOptions options = {},
                  Summary prototype = Summary())
      : store_(store), options_(options), prototype_(std::move(prototype)) {
    assert(store_ != nullptr);
    assert(options_.min_entries >= 1);
    assert(options_.min_entries * 2 <= options_.max_entries);
    root_ = NewNode(/*is_leaf=*/true);
  }

  // --- Construction ---------------------------------------------------------

  /// Rebuilds the tree over every object in the store with STR bulk loading
  /// (sort-tile-recursive): O(n log n), produces near-full nodes.
  void BulkLoad() {
    std::vector<ObjectId> ids(store_->size());
    for (size_t i = 0; i < ids.size(); ++i) ids[i] = static_cast<ObjectId>(i);
    BulkLoad(std::move(ids));
  }

  /// Rebuilds over the given object ids.
  void BulkLoad(std::vector<ObjectId> ids);

  /// Inserts one object (Guttman choose-leaf + quadratic split).
  void Insert(ObjectId id);

  /// Removes one object; returns false if it was not in the tree. Underflowed
  /// nodes are dissolved and their objects re-inserted (condense-tree).
  bool Delete(ObjectId id);

  /// Installs a fully-built node arena, replacing the current tree. This is
  /// the snapshot-load hook: the codec reconstructs nodes (rects, parents,
  /// summaries, entries) from disk and hands them over wholesale, so a cold
  /// start skips both the STR sort and the bottom-up summary recomputation.
  ///
  /// `nodes` must be structurally consistent (the codec validates while
  /// decoding; tests cross-check with Validate()) and must contain no free
  /// slots. `options` restores the fanout limits the tree was built with, so
  /// later Insert()/Delete() calls keep honouring them.
  void AdoptArena(std::vector<Node> nodes, NodeId root, size_t object_count,
                  RTreeOptions options) {
    assert(root < nodes.size());
    nodes_ = std::move(nodes);
    free_list_.clear();
    root_ = root;
    size_ = object_count;
    live_nodes_ = nodes_.size();
    options_ = options;
  }

  // --- Queries --------------------------------------------------------------

  /// Calls `fn(object_id)` for every indexed object whose point lies in
  /// `range`.
  void RangeQuery(const Rect& range,
                  const std::function<void(ObjectId)>& fn) const;

  /// Generic filtered traversal: `descend(node)` decides whether a subtree is
  /// visited, `accept(object_id)` receives leaf hits. Used by the why-not
  /// modules for half-plane/wedge queries that plain rectangles cannot
  /// express.
  void Traverse(const std::function<bool(const Node&)>& descend,
                const std::function<void(ObjectId)>& accept) const;

  // --- Introspection --------------------------------------------------------

  NodeId root() const { return root_; }
  const Node& node(NodeId id) const { return nodes_[id]; }

  /// Number of objects currently indexed.
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Leaf depth (root-only tree has height 1).
  size_t height() const;

  /// Number of live nodes.
  size_t node_count() const { return live_nodes_; }

  const RTreeOptions& options() const { return options_; }
  const ObjectStore& store() const { return *store_; }

  /// Approximate heap footprint (nodes + summaries), for the E3 benchmark.
  size_t MemoryUsageBytes() const;

  /// Deep structural check: MBR containment/equality, fill factors, parent
  /// pointers, uniform leaf depth, summary consistency, object count. Used by
  /// property tests. Returns the first violation found.
  Status Validate() const;

 private:
  NodeId NewNode(bool is_leaf) {
    NodeId id;
    if (!free_list_.empty()) {
      id = free_list_.back();
      free_list_.pop_back();
      nodes_[id] = Node{};
    } else {
      id = static_cast<NodeId>(nodes_.size());
      nodes_.emplace_back();
    }
    nodes_[id].is_leaf = is_leaf;
    nodes_[id].summary = prototype_;
    ++live_nodes_;
    return id;
  }

  void FreeNode(NodeId id) {
    nodes_[id].entries.clear();
    free_list_.push_back(id);
    --live_nodes_;
  }

  /// Recomputes rect + summary of `id` from its entries.
  void RecomputeNode(NodeId id);

  /// Recomputes rect + summary from `id` up to the root.
  void RecomputePath(NodeId id) {
    for (NodeId cur = id; cur != kNoNode; cur = nodes_[cur].parent) {
      RecomputeNode(cur);
    }
  }

  /// Guttman ChooseLeaf: descend by least enlargement, ties by area.
  NodeId ChooseLeaf(const Rect& rect) const;

  /// Splits an overflowing node; returns the new sibling. Parent wiring is
  /// done by the caller (AdjustTree).
  NodeId SplitNode(NodeId id);

  /// Walks up from a (possibly split) leaf fixing rects/summaries and
  /// propagating splits; grows a new root when the root splits.
  void AdjustTree(NodeId id, NodeId split_sibling);

  /// Quadratic-split seed pick: the pair wasting the most area together.
  static std::pair<size_t, size_t> PickSeeds(const std::vector<Entry>& entries);

  size_t SubtreeObjectCount(NodeId id) const;
  void CollectObjects(NodeId id, std::vector<ObjectId>* out) const;
  Status ValidateNode(NodeId id, size_t depth, size_t leaf_depth) const;

  const ObjectStore* store_;
  RTreeOptions options_;
  Summary prototype_;
  std::vector<Node> nodes_;
  std::vector<NodeId> free_list_;
  NodeId root_ = kNoNode;
  size_t size_ = 0;
  size_t live_nodes_ = 0;
};

/// Plain spatial R-tree.
using RTree = RTreeT<EmptySummary>;

extern template class RTreeT<EmptySummary>;

// ---------------------------------------------------------------------------
// Implementation
// ---------------------------------------------------------------------------

template <typename Summary>
void RTreeT<Summary>::RecomputeNode(NodeId id) {
  Node& n = nodes_[id];
  n.rect = Rect::Empty();
  n.summary.Clear();
  if (n.is_leaf) {
    for (const Entry& e : n.entries) {
      n.rect.Extend(e.rect);
      n.summary.AddObject(store_->Get(e.id));
    }
  } else {
    for (const Entry& e : n.entries) {
      n.rect.Extend(e.rect);
      n.summary.Merge(nodes_[e.id].summary);
    }
  }
}

template <typename Summary>
void RTreeT<Summary>::BulkLoad(std::vector<ObjectId> ids) {
  nodes_.clear();
  free_list_.clear();
  live_nodes_ = 0;
  size_ = ids.size();

  if (ids.empty()) {
    root_ = NewNode(true);
    return;
  }

  const size_t cap = options_.max_entries;

  // Even packing: ceil(count/cap) nodes whose sizes differ by at most one.
  // With min_entries <= cap/2 this keeps every node of a multi-node level at
  // or above the minimum fill (no underfull slice tails).
  auto node_sizes = [&](size_t count) {
    const size_t n_nodes = (count + cap - 1) / cap;
    std::vector<size_t> sizes(n_nodes, count / n_nodes);
    for (size_t i = 0; i < count % n_nodes; ++i) ++sizes[i];
    return sizes;
  };
  // Reorders items into STR order (x-sorted slices, y-sorted within slices).
  auto str_order = [&](auto& items, auto x_of, auto y_of) {
    std::sort(items.begin(), items.end(), [&](auto a, auto b) {
      if (x_of(a) != x_of(b)) return x_of(a) < x_of(b);
      return a < b;
    });
    const size_t pages = (items.size() + cap - 1) / cap;
    const size_t slices = static_cast<size_t>(
        std::ceil(std::sqrt(static_cast<double>(pages))));
    const size_t len = (items.size() + slices - 1) / slices;
    for (size_t s = 0; s * len < items.size(); ++s) {
      const size_t begin = s * len;
      const size_t end = std::min(begin + len, items.size());
      std::sort(items.begin() + begin, items.begin() + end,
                [&](auto a, auto b) {
                  if (y_of(a) != y_of(b)) return y_of(a) < y_of(b);
                  return a < b;
                });
    }
  };

  // Level 0: STR over object points.
  str_order(
      ids, [&](ObjectId a) { return store_->Get(a).loc.x; },
      [&](ObjectId a) { return store_->Get(a).loc.y; });
  std::vector<NodeId> level;
  {
    size_t pos = 0;
    for (size_t size : node_sizes(ids.size())) {
      const NodeId nid = NewNode(true);
      Node& n = nodes_[nid];
      for (size_t j = pos; j < pos + size; ++j) {
        n.entries.push_back(
            Entry{Rect::FromPoint(store_->Get(ids[j]).loc), ids[j]});
      }
      pos += size;
      RecomputeNode(nid);
      level.push_back(nid);
    }
  }

  // Upper levels: STR over node centres until one node remains.
  while (level.size() > 1) {
    str_order(
        level, [&](NodeId a) { return nodes_[a].rect.Center().x; },
        [&](NodeId a) { return nodes_[a].rect.Center().y; });
    std::vector<NodeId> next;
    size_t pos = 0;
    for (size_t size : node_sizes(level.size())) {
      const NodeId nid = NewNode(false);
      Node& n = nodes_[nid];
      for (size_t j = pos; j < pos + size; ++j) {
        n.entries.push_back(Entry{nodes_[level[j]].rect, level[j]});
        nodes_[level[j]].parent = nid;
      }
      pos += size;
      RecomputeNode(nid);
      next.push_back(nid);
    }
    level = std::move(next);
  }
  root_ = level.front();
  nodes_[root_].parent = kNoNode;
}

template <typename Summary>
typename RTreeT<Summary>::NodeId RTreeT<Summary>::ChooseLeaf(
    const Rect& rect) const {
  NodeId cur = root_;
  while (!nodes_[cur].is_leaf) {
    const Node& n = nodes_[cur];
    assert(!n.entries.empty());
    size_t best = 0;
    double best_enlargement = std::numeric_limits<double>::infinity();
    double best_area = std::numeric_limits<double>::infinity();
    for (size_t i = 0; i < n.entries.size(); ++i) {
      const double enl = n.entries[i].rect.Enlargement(rect);
      const double area = n.entries[i].rect.Area();
      if (enl < best_enlargement ||
          (enl == best_enlargement && area < best_area)) {
        best = i;
        best_enlargement = enl;
        best_area = area;
      }
    }
    cur = n.entries[best].id;
  }
  return cur;
}

template <typename Summary>
std::pair<size_t, size_t> RTreeT<Summary>::PickSeeds(
    const std::vector<Entry>& entries) {
  size_t sa = 0, sb = 1;
  double worst = -std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < entries.size(); ++i) {
    for (size_t j = i + 1; j < entries.size(); ++j) {
      const double waste = Rect::Union(entries[i].rect, entries[j].rect).Area() -
                           entries[i].rect.Area() - entries[j].rect.Area();
      if (waste > worst) {
        worst = waste;
        sa = i;
        sb = j;
      }
    }
  }
  return {sa, sb};
}

template <typename Summary>
typename RTreeT<Summary>::NodeId RTreeT<Summary>::SplitNode(NodeId id) {
  Node& n = nodes_[id];
  std::vector<Entry> all = std::move(n.entries);
  n.entries.clear();

  const NodeId sibling = NewNode(nodes_[id].is_leaf);
  // NewNode may reallocate nodes_; re-acquire the reference.
  Node& a = nodes_[id];
  Node& b = nodes_[sibling];

  auto [si, sj] = PickSeeds(all);
  Rect rect_a = all[si].rect;
  Rect rect_b = all[sj].rect;
  a.entries.push_back(all[si]);
  b.entries.push_back(all[sj]);
  // Remove seeds (erase larger index first).
  all.erase(all.begin() + sj);
  all.erase(all.begin() + si);

  const size_t min_fill = options_.min_entries;
  while (!all.empty()) {
    // Force-assign when a group must take all the rest to reach min fill.
    if (a.entries.size() + all.size() == min_fill) {
      for (const Entry& e : all) {
        a.entries.push_back(e);
        rect_a.Extend(e.rect);
      }
      break;
    }
    if (b.entries.size() + all.size() == min_fill) {
      for (const Entry& e : all) {
        b.entries.push_back(e);
        rect_b.Extend(e.rect);
      }
      break;
    }
    // PickNext: entry with the greatest preference difference.
    size_t pick = 0;
    double best_diff = -1.0;
    for (size_t i = 0; i < all.size(); ++i) {
      const double da = Rect::Union(rect_a, all[i].rect).Area() - rect_a.Area();
      const double db = Rect::Union(rect_b, all[i].rect).Area() - rect_b.Area();
      const double diff = std::abs(da - db);
      if (diff > best_diff) {
        best_diff = diff;
        pick = i;
      }
    }
    const Entry e = all[pick];
    all.erase(all.begin() + pick);
    const double da = Rect::Union(rect_a, e.rect).Area() - rect_a.Area();
    const double db = Rect::Union(rect_b, e.rect).Area() - rect_b.Area();
    bool to_a;
    if (da != db) {
      to_a = da < db;
    } else if (rect_a.Area() != rect_b.Area()) {
      to_a = rect_a.Area() < rect_b.Area();
    } else {
      to_a = a.entries.size() <= b.entries.size();
    }
    if (to_a) {
      a.entries.push_back(e);
      rect_a.Extend(e.rect);
    } else {
      b.entries.push_back(e);
      rect_b.Extend(e.rect);
    }
  }

  // Fix children's parent pointers for internal splits.
  if (!b.is_leaf) {
    for (const Entry& e : b.entries) nodes_[e.id].parent = sibling;
  }
  RecomputeNode(id);
  RecomputeNode(sibling);
  return sibling;
}

template <typename Summary>
void RTreeT<Summary>::AdjustTree(NodeId id, NodeId split_sibling) {
  NodeId cur = id;
  NodeId sibling = split_sibling;
  while (true) {
    RecomputeNode(cur);
    const NodeId parent = nodes_[cur].parent;
    if (parent == kNoNode) {
      if (sibling != kNoNode) {
        // Root split: grow a new root.
        const NodeId new_root = NewNode(false);
        Node& r = nodes_[new_root];
        r.entries.push_back(Entry{nodes_[cur].rect, cur});
        r.entries.push_back(Entry{nodes_[sibling].rect, sibling});
        nodes_[cur].parent = new_root;
        nodes_[sibling].parent = new_root;
        RecomputeNode(new_root);
        root_ = new_root;
      }
      return;
    }
    // Refresh this child's entry rect in the parent.
    Node& p = nodes_[parent];
    for (Entry& e : p.entries) {
      if (e.id == cur) {
        e.rect = nodes_[cur].rect;
        break;
      }
    }
    if (sibling != kNoNode) {
      p.entries.push_back(Entry{nodes_[sibling].rect, sibling});
      nodes_[sibling].parent = parent;
      sibling = p.entries.size() > options_.max_entries ? SplitNode(parent)
                                                        : kNoNode;
    }
    cur = parent;
  }
}

template <typename Summary>
void RTreeT<Summary>::Insert(ObjectId id) {
  const Rect rect = Rect::FromPoint(store_->Get(id).loc);
  const NodeId leaf = ChooseLeaf(rect);
  nodes_[leaf].entries.push_back(Entry{rect, id});
  ++size_;
  NodeId sibling = nodes_[leaf].entries.size() > options_.max_entries
                       ? SplitNode(leaf)
                       : kNoNode;
  AdjustTree(leaf, sibling);
}

template <typename Summary>
bool RTreeT<Summary>::Delete(ObjectId id) {
  // Locate the leaf containing `id` by rect-guided search.
  const Rect rect = Rect::FromPoint(store_->Get(id).loc);
  NodeId found_leaf = kNoNode;
  std::vector<NodeId> stack{root_};
  while (!stack.empty()) {
    const NodeId nid = stack.back();
    stack.pop_back();
    const Node& n = nodes_[nid];
    if (n.is_leaf) {
      for (const Entry& e : n.entries) {
        if (e.id == id) {
          found_leaf = nid;
          break;
        }
      }
      if (found_leaf != kNoNode) break;
    } else {
      for (const Entry& e : n.entries) {
        if (e.rect.Contains(Point{rect.min_x, rect.min_y})) {
          stack.push_back(e.id);
        }
      }
    }
  }
  if (found_leaf == kNoNode) return false;

  Node& leaf = nodes_[found_leaf];
  leaf.entries.erase(
      std::find_if(leaf.entries.begin(), leaf.entries.end(),
                   [&](const Entry& e) { return e.id == id; }));
  --size_;

  // Condense: dissolve underflowed nodes, collect orphaned objects.
  std::vector<ObjectId> orphans;
  NodeId cur = found_leaf;
  while (cur != root_) {
    const NodeId parent = nodes_[cur].parent;
    if (nodes_[cur].entries.size() < options_.min_entries) {
      const size_t before = orphans.size();
      CollectObjects(cur, &orphans);
      size_ -= orphans.size() - before;  // Re-added below via Insert().
      // Remove `cur` from its parent and free the subtree.
      Node& p = nodes_[parent];
      p.entries.erase(
          std::find_if(p.entries.begin(), p.entries.end(),
                       [&](const Entry& e) { return e.id == cur; }));
      // Free all nodes in the subtree.
      std::vector<NodeId> to_free{cur};
      while (!to_free.empty()) {
        const NodeId f = to_free.back();
        to_free.pop_back();
        if (!nodes_[f].is_leaf) {
          for (const Entry& e : nodes_[f].entries) to_free.push_back(e.id);
        }
        FreeNode(f);
      }
    } else {
      RecomputeNode(cur);
      Node& p = nodes_[parent];
      for (Entry& e : p.entries) {
        if (e.id == cur) {
          e.rect = nodes_[cur].rect;
          break;
        }
      }
    }
    cur = parent;
  }
  RecomputeNode(root_);

  // Shrink the root while it is an internal node with a single child.
  while (!nodes_[root_].is_leaf && nodes_[root_].entries.size() == 1) {
    const NodeId child = nodes_[root_].entries[0].id;
    FreeNode(root_);
    root_ = child;
    nodes_[root_].parent = kNoNode;
  }
  if (!nodes_[root_].is_leaf && nodes_[root_].entries.empty()) {
    nodes_[root_].is_leaf = true;  // Tree became empty.
  }

  for (ObjectId o : orphans) Insert(o);
  return true;
}

template <typename Summary>
size_t RTreeT<Summary>::SubtreeObjectCount(NodeId id) const {
  const Node& n = nodes_[id];
  if (n.is_leaf) return n.entries.size();
  size_t total = 0;
  for (const Entry& e : n.entries) total += SubtreeObjectCount(e.id);
  return total;
}

template <typename Summary>
void RTreeT<Summary>::CollectObjects(NodeId id,
                                     std::vector<ObjectId>* out) const {
  const Node& n = nodes_[id];
  if (n.is_leaf) {
    for (const Entry& e : n.entries) out->push_back(e.id);
    return;
  }
  for (const Entry& e : n.entries) CollectObjects(e.id, out);
}

template <typename Summary>
void RTreeT<Summary>::RangeQuery(
    const Rect& range, const std::function<void(ObjectId)>& fn) const {
  std::vector<NodeId> stack{root_};
  while (!stack.empty()) {
    const NodeId nid = stack.back();
    stack.pop_back();
    const Node& n = nodes_[nid];
    if (n.is_leaf) {
      for (const Entry& e : n.entries) {
        if (range.Contains(Point{e.rect.min_x, e.rect.min_y})) fn(e.id);
      }
    } else {
      for (const Entry& e : n.entries) {
        if (range.Intersects(e.rect)) stack.push_back(e.id);
      }
    }
  }
}

template <typename Summary>
void RTreeT<Summary>::Traverse(
    const std::function<bool(const Node&)>& descend,
    const std::function<void(ObjectId)>& accept) const {
  std::vector<NodeId> stack;
  if (descend(nodes_[root_])) stack.push_back(root_);
  while (!stack.empty()) {
    const NodeId nid = stack.back();
    stack.pop_back();
    const Node& n = nodes_[nid];
    if (n.is_leaf) {
      for (const Entry& e : n.entries) accept(e.id);
    } else {
      for (const Entry& e : n.entries) {
        if (descend(nodes_[e.id])) stack.push_back(e.id);
      }
    }
  }
}

template <typename Summary>
size_t RTreeT<Summary>::height() const {
  size_t h = 1;
  NodeId cur = root_;
  while (!nodes_[cur].is_leaf) {
    cur = nodes_[cur].entries[0].id;
    ++h;
  }
  return h;
}

template <typename Summary>
size_t RTreeT<Summary>::MemoryUsageBytes() const {
  size_t total = nodes_.capacity() * sizeof(Node);
  for (const Node& n : nodes_) {
    total += n.entries.capacity() * sizeof(Entry);
    total += n.summary.MemoryBytes();
  }
  return total;
}

template <typename Summary>
Status RTreeT<Summary>::ValidateNode(NodeId id, size_t depth,
                                     size_t leaf_depth) const {
  const Node& n = nodes_[id];
  if (n.is_leaf && depth != leaf_depth) {
    return Status::Internal("non-uniform leaf depth at node " +
                            std::to_string(id));
  }
  if (id != root_ && n.entries.size() < options_.min_entries) {
    return Status::Internal("underfull node " + std::to_string(id));
  }
  if (n.entries.size() > options_.max_entries) {
    return Status::Internal("overfull node " + std::to_string(id));
  }
  // Rect and summary must equal the recomputation from entries.
  Rect rect = Rect::Empty();
  Summary summary = prototype_;
  summary.Clear();
  for (const Entry& e : n.entries) {
    rect.Extend(e.rect);
    if (n.is_leaf) {
      if (e.rect != Rect::FromPoint(store_->Get(e.id).loc)) {
        return Status::Internal("stale leaf entry rect in node " +
                                std::to_string(id));
      }
      summary.AddObject(store_->Get(e.id));
    } else {
      if (e.rect != nodes_[e.id].rect) {
        return Status::Internal("stale child rect in node " +
                                std::to_string(id));
      }
      if (nodes_[e.id].parent != id) {
        return Status::Internal("bad parent pointer under node " +
                                std::to_string(id));
      }
      summary.Merge(nodes_[e.id].summary);
    }
  }
  if (!n.entries.empty() && !(rect == n.rect)) {
    return Status::Internal("stale node rect at node " + std::to_string(id));
  }
  if (!summary.Equals(n.summary)) {
    return Status::Internal("inconsistent summary at node " +
                            std::to_string(id));
  }
  if (!n.is_leaf) {
    for (const Entry& e : n.entries) {
      Status s = ValidateNode(e.id, depth + 1, leaf_depth);
      if (!s.ok()) return s;
    }
  }
  return Status::OK();
}

template <typename Summary>
Status RTreeT<Summary>::Validate() const {
  if (SubtreeObjectCount(root_) != size_) {
    return Status::Internal("object count mismatch");
  }
  if (nodes_[root_].parent != kNoNode) {
    return Status::Internal("root has a parent");
  }
  return ValidateNode(root_, 1, height());
}

}  // namespace yask

#endif  // YASK_INDEX_RTREE_H_
