#include <gtest/gtest.h>

#include <optional>

#include "src/query/topk_engine.h"
#include "src/storage/dataset_generator.h"

namespace yask {
namespace {

class TopKCursorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    DatasetSpec spec;
    spec.num_objects = 800;
    spec.seed = 3;
    store_ = std::make_unique<ObjectStore>(GenerateDataset(spec));
    tree_ = std::make_unique<SetRTree>(store_.get());
    tree_->BulkLoad();
  }
  std::unique_ptr<ObjectStore> store_;
  std::unique_ptr<SetRTree> tree_;
};

TEST_F(TopKCursorTest, EnumeratesFullRankingOrder) {
  Query q;
  q.loc = Point{0.4, 0.6};
  q.doc = KeywordSet({0, 1});
  q.k = 1;  // Ignored by the cursor.
  Query probe = q;
  probe.k = static_cast<uint32_t>(store_->size());
  const TopKResult full = TopKScan(*store_, probe);

  TopKCursor cursor(*store_, *tree_, q);
  for (size_t i = 0; i < full.size(); ++i) {
    auto next = cursor.Next();
    ASSERT_TRUE(next.has_value()) << "exhausted early at " << i;
    EXPECT_EQ(next->id, full[i].id) << "rank " << i + 1;
    EXPECT_DOUBLE_EQ(next->score, full[i].score);
    EXPECT_EQ(cursor.produced(), i + 1);
  }
  EXPECT_FALSE(cursor.Next().has_value());  // Exhausted.
  EXPECT_FALSE(cursor.Next().has_value());  // Stays exhausted.
}

TEST_F(TopKCursorTest, ResumingMatchesEnlargedK) {
  // The demo's k-enlargement: take top-3, then keep pulling to reach the
  // refined k' — the union must equal a fresh top-k' query.
  Query q;
  q.loc = Point{0.7, 0.3};
  q.doc = KeywordSet({1, 2});
  q.k = 3;
  SetRTopKEngine engine(*store_, *tree_);

  TopKCursor cursor(*store_, *tree_, q);
  TopKResult streamed;
  for (int i = 0; i < 3; ++i) streamed.push_back(*cursor.Next());
  // ... user asks why-not; refined k' = 12; resume.
  for (int i = 3; i < 12; ++i) streamed.push_back(*cursor.Next());

  Query refined = q;
  refined.k = 12;
  const TopKResult fresh = engine.Query(refined);
  ASSERT_EQ(streamed.size(), fresh.size());
  for (size_t i = 0; i < fresh.size(); ++i) {
    EXPECT_EQ(streamed[i].id, fresh[i].id) << "rank " << i + 1;
  }
}

TEST_F(TopKCursorTest, EmptyTree) {
  ObjectStore empty_store;
  SetRTree empty_tree(&empty_store);
  empty_tree.BulkLoad();
  Query q;
  q.doc = KeywordSet({0});
  q.k = 5;
  TopKCursor cursor(empty_store, empty_tree, q);
  EXPECT_FALSE(cursor.Next().has_value());
  EXPECT_EQ(cursor.produced(), 0u);
}

TEST_F(TopKCursorTest, QueryCopiedNotReferenced) {
  // The cursor owns its query: mutating the original must not matter.
  auto q = std::make_unique<Query>();
  q->loc = Point{0.5, 0.5};
  q->doc = KeywordSet({0});
  q->k = 1;
  TopKCursor cursor(*store_, *tree_, *q);
  const ScoredObject first = *cursor.Next();
  q.reset();  // Destroy the original query.
  const ScoredObject second = *cursor.Next();
  EXPECT_NE(first.id, second.id);
  EXPECT_GE(first.score, second.score);
}

}  // namespace
}  // namespace yask
