// Copyright (c) 2026 The YASK reproduction authors.
// Keyword vocabulary: interning between keyword strings and dense ids.
//
// Object documents (`o.doc`) and query keyword sets (`q.doc`) are stored as
// sets of dense 32-bit term ids (KeywordSet). The Vocabulary owns the mapping
// in both directions and is shared by an ObjectStore and every index built
// over it.

#ifndef YASK_COMMON_VOCABULARY_H_
#define YASK_COMMON_VOCABULARY_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace yask {

/// Dense id of an interned keyword.
using TermId = uint32_t;

/// Sentinel returned by Find() for unknown keywords.
inline constexpr TermId kInvalidTerm = static_cast<TermId>(-1);

/// Bidirectional keyword <-> TermId mapping.
///
/// Not thread-safe for writes; after loading a dataset the vocabulary is
/// read-only and may be shared freely across threads.
class Vocabulary {
 public:
  Vocabulary() = default;

  /// Interns `word` (idempotent) and returns its id.
  TermId Intern(std::string_view word);

  /// Looks up a word; returns kInvalidTerm if absent.
  TermId Find(std::string_view word) const;

  /// True if the word is interned.
  bool Contains(std::string_view word) const { return Find(word) != kInvalidTerm; }

  /// The word for an id; id must be valid.
  const std::string& Word(TermId id) const { return words_[id]; }

  /// Number of distinct keywords.
  size_t size() const { return words_.size(); }

  /// Pre-sizes both directions of the mapping (snapshot restore).
  void Reserve(size_t n) {
    index_.reserve(n);
    words_.reserve(n);
  }

 private:
  std::unordered_map<std::string, TermId> index_;
  std::vector<std::string> words_;
};

}  // namespace yask

#endif  // YASK_COMMON_VOCABULARY_H_
