#include "src/index/score_plane_index.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace yask {

ScorePlaneIndex::ScorePlaneIndex(std::vector<PlanePoint> points, size_t fanout)
    : points_(std::move(points)), fanout_(fanout) {
  assert(fanout_ >= 2);
  if (points_.empty()) {
    nodes_.push_back(Node{0, 0, 0, 0, 0, 0, true, 0});
    root_ = 0;
    return;
  }

  // STR: sort by x, slice, sort slices by y, pack leaves.
  std::sort(points_.begin(), points_.end(),
            [](const PlanePoint& a, const PlanePoint& b) {
              if (a.x != b.x) return a.x < b.x;
              return a.id < b.id;
            });
  const size_t n = points_.size();
  const size_t pages = (n + fanout_ - 1) / fanout_;
  const size_t slices =
      static_cast<size_t>(std::ceil(std::sqrt(static_cast<double>(pages))));
  const size_t slice_len = (n + slices - 1) / slices;
  for (size_t s = 0; s * slice_len < n; ++s) {
    const size_t b = s * slice_len;
    const size_t e = std::min(b + slice_len, n);
    std::sort(points_.begin() + b, points_.begin() + e,
              [](const PlanePoint& a, const PlanePoint& pb) {
                if (a.y != pb.y) return a.y < pb.y;
                return a.id < pb.id;
              });
  }

  // Leaf level.
  std::vector<uint32_t> level;
  for (size_t i = 0; i < n; i += fanout_) {
    const size_t e = std::min(i + fanout_, n);
    Node node;
    node.is_leaf = true;
    node.begin = static_cast<uint32_t>(i);
    node.end = static_cast<uint32_t>(e);
    node.count = static_cast<uint32_t>(e - i);
    node.min_x = node.min_y = std::numeric_limits<double>::infinity();
    node.max_x = node.max_y = -std::numeric_limits<double>::infinity();
    for (size_t j = i; j < e; ++j) {
      node.min_x = std::min(node.min_x, points_[j].x);
      node.max_x = std::max(node.max_x, points_[j].x);
      node.min_y = std::min(node.min_y, points_[j].y);
      node.max_y = std::max(node.max_y, points_[j].y);
    }
    level.push_back(static_cast<uint32_t>(nodes_.size()));
    nodes_.push_back(node);
  }

  // Internal levels: children of one parent are contiguous in nodes_, so we
  // append parents after reordering children by x-centre STR style.
  while (level.size() > 1) {
    std::sort(level.begin(), level.end(), [&](uint32_t a, uint32_t b) {
      const double ca = nodes_[a].min_x + nodes_[a].max_x;
      const double cb = nodes_[b].min_x + nodes_[b].max_x;
      if (ca != cb) return ca < cb;
      return a < b;
    });
    std::vector<uint32_t> next;
    for (size_t i = 0; i < level.size(); i += fanout_) {
      const size_t e = std::min(i + fanout_, level.size());
      // Children must be contiguous: copy them to the end of nodes_.
      const uint32_t child_begin = static_cast<uint32_t>(nodes_.size());
      for (size_t j = i; j < e; ++j) nodes_.push_back(nodes_[level[j]]);
      Node parent;
      parent.is_leaf = false;
      parent.begin = child_begin;
      parent.end = static_cast<uint32_t>(nodes_.size());
      parent.count = 0;
      parent.min_x = parent.min_y = std::numeric_limits<double>::infinity();
      parent.max_x = parent.max_y = -std::numeric_limits<double>::infinity();
      for (uint32_t j = parent.begin; j < parent.end; ++j) {
        parent.min_x = std::min(parent.min_x, nodes_[j].min_x);
        parent.max_x = std::max(parent.max_x, nodes_[j].max_x);
        parent.min_y = std::min(parent.min_y, nodes_[j].min_y);
        parent.max_y = std::max(parent.max_y, nodes_[j].max_y);
        parent.count += nodes_[j].count;
      }
      next.push_back(static_cast<uint32_t>(nodes_.size()));
      nodes_.push_back(parent);
    }
    level = std::move(next);
  }
  root_ = level.front();
}

void ScorePlaneIndex::ForEachCrossing(
    const PlanePoint& anchor, double wlo, double whi,
    const std::function<void(const PlanePoint&)>& fn) const {
  assert(wlo <= whi);
  last_nodes_visited_ = 0;
  if (points_.empty()) return;
  const double a_lo = anchor.ScoreAt(wlo);
  const double a_hi = anchor.ScoreAt(whi);
  // Slack absorbs floating-point disagreement between the endpoint sign test
  // and the crossing weight computed from the line coefficients, so callers
  // never lose a borderline crossing (they re-filter by the computed weight).
  constexpr double kEps = 1e-9;

  std::vector<uint32_t> stack{root_};
  while (!stack.empty()) {
    const Node& n = nodes_[stack.back()];
    stack.pop_back();
    ++last_nodes_visited_;
    // Prune iff every point in the MBR keeps one strict sign (with margin)
    // at both interval ends.
    const bool all_above = MinScoreAt(n, wlo) > a_lo + kEps &&
                           MinScoreAt(n, whi) > a_hi + kEps;
    const bool all_below = MaxScoreAt(n, wlo) < a_lo - kEps &&
                           MaxScoreAt(n, whi) < a_hi - kEps;
    if (all_above || all_below) continue;
    if (n.is_leaf) {
      for (uint32_t i = n.begin; i < n.end; ++i) {
        const PlanePoint& p = points_[i];
        const double d_lo = p.ScoreAt(wlo) - a_lo;
        const double d_hi = p.ScoreAt(whi) - a_hi;
        if ((d_lo <= kEps && d_hi >= -kEps) ||
            (d_lo >= -kEps && d_hi <= kEps)) {
          fn(p);
        }
      }
    } else {
      for (uint32_t i = n.begin; i < n.end; ++i) stack.push_back(i);
    }
  }
}

size_t ScorePlaneIndex::CountAbove(double w, double threshold,
                                   ObjectId tie_id) const {
  last_nodes_visited_ = 0;
  if (points_.empty()) return 0;
  size_t count = 0;
  std::vector<uint32_t> stack{root_};
  while (!stack.empty()) {
    const Node& n = nodes_[stack.back()];
    stack.pop_back();
    ++last_nodes_visited_;
    if (MaxScoreAt(n, w) < threshold) continue;
    if (MinScoreAt(n, w) > threshold) {
      count += n.count;
      continue;
    }
    if (n.is_leaf) {
      for (uint32_t i = n.begin; i < n.end; ++i) {
        const double s = points_[i].ScoreAt(w);
        if (s > threshold || (s == threshold && points_[i].id < tie_id)) {
          ++count;
        }
      }
    } else {
      for (uint32_t i = n.begin; i < n.end; ++i) stack.push_back(i);
    }
  }
  return count;
}

}  // namespace yask
