// Container-level tests: header/table validation and the corruption
// taxonomy the ISSUE requires — truncated file, bad magic, bad CRC, future
// format version — must each surface as an error Status, never a crash.

#include "src/snapshot/snapshot_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

namespace yask {
namespace {

std::string TestPath(const std::string& name) {
  return ::testing::TempDir() + "yask_snapshot_io_" + name + ".snap";
}

/// Writes a two-section snapshot and returns its path.
std::string WriteSample(const std::string& name) {
  SnapshotWriter writer;
  BufWriter* vocab = writer.AddSection(SectionId::kVocabulary);
  vocab->PutVarU64(2);
  vocab->PutString("coffee");
  vocab->PutString("wifi");
  BufWriter* store = writer.AddSection(SectionId::kObjectStore);
  store->PutVarU64(0);
  store->PutVarU32(0);
  const std::string path = TestPath(name);
  EXPECT_TRUE(writer.WriteTo(path).ok());
  return path;
}

std::string ReadFile(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(f), {});
}

void WriteFile(const std::string& path, const std::string& bytes) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  f.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

TEST(SnapshotIoTest, RoundTripSections) {
  const std::string path = WriteSample("roundtrip");
  auto reader = SnapshotReader::Open(path);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  EXPECT_EQ(reader->format_version(), kSnapshotFormatVersion);
  EXPECT_EQ(reader->sections().size(), 2u);
  EXPECT_TRUE(reader->Has(SectionId::kVocabulary));
  EXPECT_TRUE(reader->Has(SectionId::kObjectStore));
  EXPECT_FALSE(reader->Has(SectionId::kSetRTree));

  auto section = reader->OpenSection(SectionId::kVocabulary);
  ASSERT_TRUE(section.ok());
  EXPECT_EQ(section->GetVarU64(), 2u);
  EXPECT_EQ(section->GetString(), "coffee");
  EXPECT_EQ(section->GetString(), "wifi");
  EXPECT_TRUE(section->AtEnd());

  auto missing = reader->OpenSection(SectionId::kKcRTree);
  EXPECT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
  std::remove(path.c_str());
}

TEST(SnapshotIoTest, MissingFileIsNotFound) {
  auto reader = SnapshotReader::Open(TestPath("does_not_exist"));
  ASSERT_FALSE(reader.ok());
  EXPECT_EQ(reader.status().code(), StatusCode::kNotFound);
}

TEST(SnapshotIoTest, BadMagicRejected) {
  const std::string path = WriteSample("bad_magic");
  std::string bytes = ReadFile(path);
  bytes[0] ^= 0xFF;
  WriteFile(path, bytes);
  auto reader = SnapshotReader::Open(path);
  ASSERT_FALSE(reader.ok());
  EXPECT_EQ(reader.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(reader.status().message().find("magic"), std::string::npos);
  std::remove(path.c_str());
}

TEST(SnapshotIoTest, FutureFormatVersionRejected) {
  const std::string path = WriteSample("future_version");
  std::string bytes = ReadFile(path);
  bytes[8] = static_cast<char>(kSnapshotFormatVersion + 1);  // version u32.
  WriteFile(path, bytes);
  auto reader = SnapshotReader::Open(path);
  ASSERT_FALSE(reader.ok());
  EXPECT_EQ(reader.status().code(), StatusCode::kFailedPrecondition);
  std::remove(path.c_str());
}

TEST(SnapshotIoTest, TruncationRejectedAtEveryPrefixLength) {
  const std::string path = WriteSample("truncated");
  const std::string bytes = ReadFile(path);
  // Every proper prefix must be rejected cleanly: the container either
  // fails to open, or the damaged section fails its CRC on access.
  for (size_t len = 0; len < bytes.size(); len += 3) {
    WriteFile(path, bytes.substr(0, len));
    auto reader = SnapshotReader::Open(path);
    if (!reader.ok()) continue;
    for (const SnapshotSectionInfo& info : reader->sections()) {
      auto section = reader->OpenSection(info.id);
      EXPECT_FALSE(section.ok()) << "prefix " << len << " section "
                                 << SectionIdToString(info.id);
    }
  }
  std::remove(path.c_str());
}

TEST(SnapshotIoTest, PayloadCorruptionFailsSectionCrc) {
  const std::string path = WriteSample("payload_crc");
  std::string bytes = ReadFile(path);
  // Flip one byte inside the first payload (right after the header).
  bytes[kSnapshotHeaderBytes + 2] ^= 0x01;
  WriteFile(path, bytes);
  auto reader = SnapshotReader::Open(path);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  auto section = reader->OpenSection(SectionId::kVocabulary);
  ASSERT_FALSE(section.ok());
  EXPECT_EQ(section.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(section.status().message().find("checksum"), std::string::npos);
  // The undamaged section still opens.
  EXPECT_TRUE(reader->OpenSection(SectionId::kObjectStore).ok());
  std::remove(path.c_str());
}

TEST(SnapshotIoTest, TableCorruptionRejected) {
  const std::string path = WriteSample("table_crc");
  std::string bytes = ReadFile(path);
  // The table is the 2 * 28 bytes before the trailing 4-byte footer.
  bytes[bytes.size() - 4 - 2 * kSnapshotTableEntryBytes + 1] ^= 0x01;
  WriteFile(path, bytes);
  auto reader = SnapshotReader::Open(path);
  ASSERT_FALSE(reader.ok());
  EXPECT_EQ(reader.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(SnapshotIoTest, WriteIsAtomicViaRename) {
  const std::string path = WriteSample("atomic");
  // The temporary sibling used during the write must be gone.
  std::ifstream tmp(path + ".tmp", std::ios::binary);
  EXPECT_FALSE(tmp.good());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace yask
