#include "src/server/query_log.h"

namespace yask {

uint64_t QueryLog::Append(std::string kind, std::string description,
                          double response_millis, double penalty,
                          std::string trace_id) {
  std::lock_guard<std::mutex> lock(mu_);
  QueryLogEntry e;
  e.id = next_id_++;
  e.kind = std::move(kind);
  e.description = std::move(description);
  e.response_millis = response_millis;
  e.penalty = penalty;
  e.trace_id = std::move(trace_id);
  entries_.push_back(std::move(e));
  while (entries_.size() > capacity_) entries_.pop_front();
  return next_id_ - 1;
}

std::vector<QueryLogEntry> QueryLog::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<QueryLogEntry>(entries_.begin(), entries_.end());
}

size_t QueryLog::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

}  // namespace yask
