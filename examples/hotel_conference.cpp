// Example 2 from the paper -- Carol's conference hotel (§1):
//
//   "Carol issues a query to find the top-3 hotels that are close to the
//    conference venue and are described as 'clean' and 'comfortable.' She is
//    surprised that the result contains only local hotels [...] The
//    well-known hotel Carol could not see might be described better by
//    'luxury'; as such, the textual relevance of this hotel to the query
//    keywords is very low. How can the query keywords be minimally modified
//    so that the expected hotel, and perhaps other good hotels, appears in
//    the result?"
//
// Runs on the demo's Hong-Kong-hotels dataset (~539 hotels, §4), poses the
// why-not question for a luxury hotel, and contrasts the two refinement
// models across the λ settings the demo showcases ("the impact of the
// setting of weight parameter λ in the penalty functions on the quality of
// refined queries").
//
//   $ ./hotel_conference

#include <cstdio>
#include <set>

#include "src/corpus/corpus.h"
#include "src/storage/hotel_generator.h"
#include "src/whynot/why_not_engine.h"

using namespace yask;

int main() {
  const Corpus corpus = CorpusBuilder().Build(GenerateHotelDataset());
  const ObjectStore& store = corpus.store();
  const Vocabulary& vocab = store.vocab();
  WhyNotEngine engine(corpus);

  // Carol's query: top-3 clean+comfortable hotels near the venue in Central.
  Query q;
  q.loc = Point{114.158, 22.281};
  q.doc = KeywordSet({vocab.Find("clean"), vocab.Find("comfortable")});
  q.k = 3;

  const TopKResult result = engine.TopK(q);
  std::printf("Carol's query: %s\n\n", q.ToString(vocab).c_str());
  std::printf("Top-%u hotels:\n", q.k);
  for (size_t i = 0; i < result.size(); ++i) {
    const SpatialObject& o = store.Get(result[i].id);
    std::printf("  %zu. %-24s score %.4f  (%s)\n", i + 1, o.name.c_str(),
                result[i].score, o.doc.ToString(vocab).c_str());
  }

  // The "well-known international hotel": a luxury hotel near the venue that
  // is *not* described as clean/comfortable. Pick the best-scoring luxury
  // hotel outside the result.
  const TermId luxury = vocab.Find("luxury");
  const TermId clean = vocab.Find("clean");
  const TermId comfortable = vocab.Find("comfortable");
  std::set<ObjectId> in_result;
  for (const ScoredObject& so : result) in_result.insert(so.id);
  // Best-scoring luxury hotel (under Carol's query) with neither query
  // keyword: its textual relevance is low purely because of wording.
  Scorer scorer(store, q);
  ObjectId expected = kInvalidObject;
  double best_score = -1.0;
  for (const SpatialObject& o : store.objects()) {
    if (in_result.count(o.id)) continue;
    if (!o.doc.Contains(luxury) || o.doc.Contains(clean) ||
        o.doc.Contains(comfortable)) {
      continue;
    }
    const double s = scorer.Score(o);
    if (s > best_score) {
      best_score = s;
      expected = o.id;
    }
  }
  if (expected == kInvalidObject) {
    std::printf("\n(no suitable luxury hotel found; dataset seed changed?)\n");
    return 1;
  }
  const SpatialObject& hotel = store.Get(expected);
  std::printf("\nCarol expected: %s  (keywords: %s)\n", hotel.name.c_str(),
              hotel.doc.ToString(vocab).c_str());

  // --- The why-not question, both models. ---
  auto answer = engine.Answer(q, {expected});
  if (!answer.ok()) {
    std::printf("error: %s\n", answer.status().ToString().c_str());
    return 1;
  }
  std::printf("\nExplanation:\n  %s\n", answer->explanations[0].text.c_str());

  const RefinedPreferenceQuery& pref = *answer->preference;
  const RefinedKeywordQuery& kw = *answer->keyword;
  std::printf("\nModel comparison (λ = 0.5):\n");
  std::printf("  preference adjustment: w=<%.3f,%.3f>, k=%-3u penalty %.4f\n",
              pref.refined.w.ws, pref.refined.w.wt, pref.refined.k,
              pref.penalty.value);
  std::printf("  keyword adaption:      doc={%s}, k=%-3u penalty %.4f\n",
              kw.refined.doc.ToString(vocab).c_str(), kw.refined.k,
              kw.penalty.value);
  std::printf("  recommended:           %s\n",
              answer->recommended == RefinementModel::kPreference
                  ? "preference adjustment"
                  : "keyword adaption");

  std::printf("\nRefined result (recommended model):\n");
  for (size_t i = 0; i < answer->refined_result.size(); ++i) {
    const SpatialObject& o = store.Get(answer->refined_result[i].id);
    std::printf("  %zu. %-24s%s\n", i + 1, o.name.c_str(),
                answer->refined_result[i].id == expected ? "  <-- revived"
                                                         : "");
  }

  // --- The demo's λ sweep: how λ trades k-enlargement vs modification. ---
  std::printf("\nImpact of λ on the refined queries (Fig. 5 discussion):\n");
  std::printf("  %-6s | %-28s | %s\n", "λ", "preference (ws', k', penalty)",
              "keyword (∆doc, k', penalty)");
  std::printf("  -------+------------------------------+----------------\n");
  for (double lambda : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    WhyNotOptions options;
    options.lambda = lambda;
    auto a = engine.Answer(q, {expected}, options);
    if (!a.ok()) continue;
    std::printf("  %-6.1f | ws'=%.3f k'=%-4u pen=%.4f   | ∆doc=%zu k'=%-4u "
                "pen=%.4f\n",
                lambda, a->preference->refined.w.ws, a->preference->refined.k,
                a->preference->penalty.value, a->keyword->penalty.delta_doc,
                a->keyword->refined.k, a->keyword->penalty.value);
  }
  std::printf(
      "\nReading: small λ -> enlarging k is cheap, so queries stay intact;\n"
      "large λ -> k-changes are expensive, so w/doc absorb the refinement.\n");
  return 0;
}
