#include "src/query/query.h"

#include <cmath>
#include <cstdio>

namespace yask {

double Weights::DistanceTo(const Weights& other) const {
  const double ds = ws - other.ws;
  const double dt = wt - other.wt;
  return std::sqrt(ds * ds + dt * dt);
}

double Weights::PenaltyNormalizer() const {
  return std::sqrt(1.0 + ws * ws + wt * wt);
}

Status Query::Validate() const {
  if (k < 1) return Status::InvalidArgument("k must be >= 1");
  if (!(w.ws > 0.0 && w.ws < 1.0) || !(w.wt > 0.0 && w.wt < 1.0)) {
    return Status::InvalidArgument("weights must lie strictly in (0, 1)");
  }
  if (std::abs(w.ws + w.wt - 1.0) > 1e-9) {
    return Status::InvalidArgument("weights must satisfy ws + wt = 1");
  }
  if (doc.empty()) {
    return Status::InvalidArgument("query keyword set must be non-empty");
  }
  return Status::OK();
}

std::string Query::ToString(const Vocabulary& vocab) const {
  char head[128];
  std::snprintf(head, sizeof(head), "q(loc=(%.5g,%.5g), k=%u, ws=%.3f, doc=",
                loc.x, loc.y, k, w.ws);
  return std::string(head) + doc.ToString(vocab) + ")";
}

}  // namespace yask
