// Copyright (c) 2026 The YASK reproduction authors.
// The explanation generator module (§3.3): "Given a missing object, this
// module generates an explanation by analyzing its spatial proximity and
// textual relevance with respect to the initial query based on the
// SetR-tree. The reason can be that the missing object is too far away from
// the query location or that the missing object is not so relevant to the
// set of query keywords. The ranking of the missing object under the initial
// query is also provided."

#ifndef YASK_WHYNOT_EXPLANATION_H_
#define YASK_WHYNOT_EXPLANATION_H_

#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/index/setr_tree.h"
#include "src/query/query.h"
#include "src/storage/object_store.h"

namespace yask {

class WhyNotOracle;  // src/whynot/whynot_oracle.h

/// Why an expected object failed to enter the top-k.
enum class MissingReason {
  kInResult,          // Not actually missing.
  kTooFar,            // Spatial distance is the dominant deficit.
  kKeywordMismatch,   // Textual similarity is the dominant deficit.
  kBoth,              // Both components trail the current results.
  kNarrowlyOutranked, // Components are competitive; k is simply too small.
};

const char* MissingReasonToString(MissingReason reason);

/// Which refinement model the explanation generator suggests trying first.
enum class RefinementRecommendation {
  kNone,                  // Object already in the result.
  kPreferenceAdjustment,  // Re-weighting can plausibly revive it.
  kKeywordAdaption,       // Better keywords can plausibly revive it.
  kEither,                // Both look promising (or k-enlargement alone).
};

const char* RefinementRecommendationToString(RefinementRecommendation r);

/// The per-missing-object analysis shown in the demo's explanation panel.
struct MissingObjectExplanation {
  ObjectId id = kInvalidObject;
  size_t rank = 0;          // Rank under the initial query.
  double score = 0.0;       // ST(o, q).
  double sdist = 0.0;       // Normalised spatial distance.
  double tsim = 0.0;        // Jaccard similarity to q.doc.
  double kth_score = 0.0;   // Score of the current k-th result.
  double kth_sdist = 0.0;   // Spatial distance of the k-th result.
  double kth_tsim = 0.0;    // Textual similarity of the k-th result.
  MissingReason reason = MissingReason::kInResult;
  RefinementRecommendation recommendation = RefinementRecommendation::kNone;
  std::string text;         // Human-readable explanation sentence.
};

/// Analyses each missing object against the initial query over any corpus
/// layout behind the oracle seam: the top-k frontier, the per-object ranks
/// (partition-sums of per-shard outscoring counts) and the score components
/// are all layout-independent, so the explanations — texts included — are
/// bit-identical across layouts.
Result<std::vector<MissingObjectExplanation>> ExplainMissing(
    const WhyNotOracle& oracle, const Query& query,
    const std::vector<ObjectId>& missing);

/// Analyses each missing object against the initial query. Uses the
/// SetR-tree for pruned rank computation and the top-k engine for the
/// current result frontier.
Result<std::vector<MissingObjectExplanation>> ExplainMissing(
    const ObjectStore& store, const SetRTree& tree, const Query& query,
    const std::vector<ObjectId>& missing);

}  // namespace yask

#endif  // YASK_WHYNOT_EXPLANATION_H_
