// The fan-out worker pool is owned by the ShardedCorpus and SHARED by every
// engine over it: ShardedTopKEngine (/query) and ShardedWhyNotOracle
// (/whynot) must borrow the corpus's pool instead of spinning up their own —
// one pool per serving corpus, however many engines the server wires up.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <thread>

#include "src/corpus/sharded_corpus.h"
#include "src/corpus/sharded_whynot_oracle.h"
#include "src/storage/dataset_generator.h"
#include "src/whynot/why_not_engine.h"

namespace yask {
namespace {

ObjectStore MakeStore() {
  DatasetSpec spec;
  spec.num_objects = 400;
  spec.vocabulary_size = 40;
  spec.min_keywords = 2;
  spec.max_keywords = 4;
  spec.seed = 99;
  return GenerateDataset(spec);
}

TEST(ShardedPoolReuseTest, EnginesShareTheCorpusPool) {
  const ObjectStore store = MakeStore();
  CorpusOptions options;
  options.fanout_threads = 2;  // Force a pool even on a single-core host.
  const ShardedCorpus sharded =
      ShardedCorpus::Partition(store, GridShardRouter::Fit(store, 4), options);
  ASSERT_NE(sharded.pool(), nullptr);
  EXPECT_EQ(sharded.pool()->num_threads(), 2u);

  const ShardedTopKEngine topk(sharded);
  EXPECT_EQ(topk.pool(), sharded.pool());

  const ShardedWhyNotOracle oracle(sharded);
  EXPECT_EQ(oracle.pool(), sharded.pool());

  // A second engine pair still shares the same pool (no per-engine pools).
  const ShardedTopKEngine topk2(sharded);
  const ShardedWhyNotOracle oracle2(sharded);
  EXPECT_EQ(topk2.pool(), sharded.pool());
  EXPECT_EQ(oracle2.pool(), sharded.pool());

  // Both engines actually work over the shared pool.
  Rng rng(5);
  Query q;
  q.loc = SampleQueryLocation(store, &rng);
  q.doc = SampleQueryKeywords(store, 2, &rng);
  q.k = 5;
  const TopKResult result = topk.Query(q);
  EXPECT_EQ(result.size(), 5u);
  const WhyNotEngine engine(sharded);
  auto answer = engine.Answer(q, {result.back().id});
  ASSERT_TRUE(answer.ok()) << answer.status().ToString();
}

TEST(ShardedPoolReuseTest, ForcedThreadCountClampsToShardCount) {
  // A fan-out submits at most one task per shard; extra workers would be
  // dead weight (stacks + context switches for zero parallelism).
  const ObjectStore store = MakeStore();
  CorpusOptions options;
  options.fanout_threads = 64;
  const ShardedCorpus sharded =
      ShardedCorpus::Partition(store, GridShardRouter::Fit(store, 4), options);
  ASSERT_NE(sharded.pool(), nullptr);
  EXPECT_EQ(sharded.pool()->num_threads(), 4u);
}

TEST(ShardedPoolReuseTest, SingleShardCorpusHasNoPool) {
  const ObjectStore store = MakeStore();
  CorpusOptions options;
  options.fanout_threads = 4;  // Even a forced count: one shard, no fan-out.
  const ShardedCorpus sharded =
      ShardedCorpus::Partition(store, GridShardRouter::Fit(store, 1), options);
  EXPECT_EQ(sharded.pool(), nullptr);
  const ShardedTopKEngine topk(sharded);
  EXPECT_EQ(topk.pool(), nullptr);
  const ShardedWhyNotOracle oracle(sharded);
  EXPECT_EQ(oracle.pool(), nullptr);
}

TEST(ShardedPoolReuseTest, AutoSizingFollowsTheHost) {
  const ObjectStore store = MakeStore();
  const ShardedCorpus sharded =
      ShardedCorpus::Partition(store, GridShardRouter::Fit(store, 4));
  const size_t hw = std::max(1u, std::thread::hardware_concurrency());
  if (hw <= 1) {
    // Single-core host: inline fan-out beats a pool; none is created.
    EXPECT_EQ(sharded.pool(), nullptr);
  } else {
    ASSERT_NE(sharded.pool(), nullptr);
    EXPECT_LE(sharded.pool()->num_threads(), std::min<size_t>(4, hw));
  }
  // Whatever the host decided, the engines borrow exactly that.
  const ShardedTopKEngine topk(sharded);
  const ShardedWhyNotOracle oracle(sharded);
  EXPECT_EQ(topk.pool(), sharded.pool());
  EXPECT_EQ(oracle.pool(), sharded.pool());
}

TEST(ShardedPoolReuseTest, LoadedCorpusOwnsAPoolToo) {
  const ObjectStore store = MakeStore();
  CorpusOptions options;
  options.fanout_threads = 2;
  const ShardedCorpus sharded =
      ShardedCorpus::Partition(store, GridShardRouter::Fit(store, 3), options);
  const std::string prefix =
      ::testing::TempDir() + "sharded_pool_reuse_test";
  ASSERT_TRUE(sharded.Save(prefix).ok());

  auto loaded = ShardedCorpus::Load(prefix, options);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_NE(loaded->pool(), nullptr);
  EXPECT_EQ(loaded->pool()->num_threads(), 2u);
  const ShardedTopKEngine topk(*loaded);
  EXPECT_EQ(topk.pool(), loaded->pool());
  for (uint32_t s = 0; s < 3; ++s) {
    std::remove(ShardedCorpus::ShardFilePath(prefix, s).c_str());
  }
}

}  // namespace
}  // namespace yask
