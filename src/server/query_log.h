// Copyright (c) 2026 The YASK reproduction authors.
// The server-side query log behind the demo's Panel 5: "users can find the
// detailed parameter settings for the refined query, its penalty against
// users' initial queries, as well as the query response time."

#ifndef YASK_SERVER_QUERY_LOG_H_
#define YASK_SERVER_QUERY_LOG_H_

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

namespace yask {

/// One logged request.
struct QueryLogEntry {
  uint64_t id = 0;            // Monotonic sequence number.
  std::string kind;           // "topk", "whynot", ...
  std::string description;    // Parameter settings (human readable).
  double response_millis = 0; // Measured server-side.
  double penalty = -1.0;      // Refined-query penalty; -1 when N/A.
  std::string trace_id;       // Distributed trace id; empty when untraced.
};

/// Thread-safe bounded query log (oldest entries evicted).
class QueryLog {
 public:
  explicit QueryLog(size_t capacity = 256) : capacity_(capacity) {}

  /// Appends an entry and returns its assigned id.
  uint64_t Append(std::string kind, std::string description,
                  double response_millis, double penalty = -1.0,
                  std::string trace_id = std::string());

  /// Snapshot of the log, oldest first.
  std::vector<QueryLogEntry> Snapshot() const;

  size_t size() const;

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::deque<QueryLogEntry> entries_;
  uint64_t next_id_ = 1;
};

}  // namespace yask

#endif  // YASK_SERVER_QUERY_LOG_H_
