// Experiment E6: snapshot persistence vs. cold rebuild.
//
// Measures, on the shared benchmark dataset family, (a) what a cold start
// from raw objects costs today — parsing the TSV dataset (re-interning every
// keyword) plus bulk-loading the SetR-tree + KcR-tree and building the
// inverted index, with the index-build share also reported on its own —
// (b) how large the snapshot of that warm state is and how long it takes to
// write, and (c) how long a cold start that loads the snapshot takes
// instead — the number that matters for restarting replicas.
// The load path must also be *correct*: the harness cross-checks top-k
// results between the rebuilt and the reloaded state and validates the
// reloaded trees structurally before reporting.
//
// Unlike the other harnesses this one does not use google-benchmark: it
// needs one number per phase, not a sampling loop, and it must emit the
// machine-readable BENCH_snapshot.json for the perf trajectory. The JSON
// mirrors google-benchmark's --benchmark_format=json shape (context +
// benchmarks[] with name/real_time/time_unit) so existing tooling parses it.
//
//   $ ./bench_snapshot [--n=50000] [--json=BENCH_snapshot.json]

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>

#include "bench/bench_util.h"
#include "src/common/timer.h"
#include "src/server/json.h"
#include "src/snapshot/snapshot_codec.h"
#include "src/storage/dataset_io.h"

namespace yask {
namespace bench {
namespace {

constexpr int kReps = 3;          // Best-of for each timed phase.
constexpr size_t kQueryChecks = 25;  // Result-equality probes after load.

struct PhaseTimes {
  double rebuild_ms = 0.0;      // Full raw cold start: TSV parse + index build.
  double parse_ms = 0.0;        // The TSV parse + intern share of the above.
  double index_build_ms = 0.0;  // The index-build share of the above.
  double save_ms = 0.0;
  double load_ms = 0.0;
  uint64_t snapshot_bytes = 0;
  bool results_match = true;
  std::string validate_error;
};

PhaseTimes RunOnce(size_t n, const std::string& snap_path) {
  PhaseTimes t;
  const ObjectStore& store = SharedDataset(n);

  // The raw dataset file a snapshot-less process start would boot from.
  const std::string tsv_path =
      "/tmp/yask_bench_snapshot_" + std::to_string(n) + ".tsv";
  if (Status s = SaveDataset(store, tsv_path); !s.ok()) {
    std::fprintf(stderr, "cannot write %s: %s\n", tsv_path.c_str(),
                 s.ToString().c_str());
    std::exit(1);
  }

  // (a) Cold start from raw objects: what every process start pays today —
  // re-parse and re-intern the dataset, then rebuild every index over it.
  std::unique_ptr<ObjectStore> rebuilt_store;
  std::unique_ptr<SetRTree> setr;
  std::unique_ptr<KcRTree> kcr;
  std::unique_ptr<InvertedIndex> inverted;
  t.rebuild_ms = t.parse_ms = t.index_build_ms = 1e300;
  for (int rep = 0; rep < kReps; ++rep) {
    Timer timer;
    auto parsed = LoadDataset(tsv_path);
    if (!parsed.ok()) {
      std::fprintf(stderr, "parse failed: %s\n",
                   parsed.status().ToString().c_str());
      std::exit(1);
    }
    const double parse_ms = timer.ElapsedMillis();
    rebuilt_store = std::make_unique<ObjectStore>(std::move(parsed).value());
    Timer index_timer;
    setr = std::make_unique<SetRTree>(rebuilt_store.get());
    setr->BulkLoad();
    kcr = std::make_unique<KcRTree>(rebuilt_store.get());
    kcr->BulkLoad();
    inverted = std::make_unique<InvertedIndex>(*rebuilt_store);
    t.index_build_ms = std::min(t.index_build_ms, index_timer.ElapsedMillis());
    t.parse_ms = std::min(t.parse_ms, parse_ms);
    t.rebuild_ms = std::min(t.rebuild_ms, timer.ElapsedMillis());
  }

  // (b) Serialize the warm state. Note: from the *rebuilt* store — the TSV
  // parse assigns term ids in encounter order, and the snapshot must capture
  // the exact state the server would be serving from.
  t.save_ms = 1e300;
  for (int rep = 0; rep < kReps; ++rep) {
    Timer timer;
    auto bytes = WriteSnapshot(snap_path, *rebuilt_store, setr.get(),
                               kcr.get(), inverted.get());
    if (!bytes.ok()) {
      std::fprintf(stderr, "save failed: %s\n",
                   bytes.status().ToString().c_str());
      std::exit(1);
    }
    t.save_ms = std::min(t.save_ms, timer.ElapsedMillis());
    t.snapshot_bytes = *bytes;
  }

  // (c) Cold start from the snapshot.
  SnapshotBundle bundle;
  t.load_ms = 1e300;
  for (int rep = 0; rep < kReps; ++rep) {
    Timer timer;
    auto loaded = LoadSnapshot(snap_path);
    if (!loaded.ok()) {
      std::fprintf(stderr, "load failed: %s\n",
                   loaded.status().ToString().c_str());
      std::exit(1);
    }
    t.load_ms = std::min(t.load_ms, timer.ElapsedMillis());
    bundle = std::move(loaded).value();
  }

  // Correctness gate: the reloaded state must answer exactly like the
  // rebuilt one, and the adopted arenas must pass the deep structural check.
  if (Status s = bundle.setr->Validate(); !s.ok()) {
    t.validate_error = "setr: " + s.ToString();
  } else if (Status s2 = bundle.kcr->Validate(); !s2.ok()) {
    t.validate_error = "kcr: " + s2.ToString();
  }
  SetRTopKEngine rebuilt_engine(*rebuilt_store, *setr);
  SetRTopKEngine loaded_engine(*bundle.store, *bundle.setr);
  Rng rng(7);
  for (size_t i = 0; i < kQueryChecks; ++i) {
    const Query q =
        MakeQuery(*rebuilt_store, &rng, /*num_keywords=*/3, /*k=*/10);
    if (rebuilt_engine.Query(q) != loaded_engine.Query(q)) {
      t.results_match = false;
      break;
    }
  }
  return t;
}

JsonValue BenchRow(const std::string& name, double ms) {
  JsonValue row = JsonValue::MakeObject();
  row.Set("name", JsonValue(name));
  row.Set("run_type", JsonValue("iteration"));
  row.Set("iterations", JsonValue(kReps));
  row.Set("real_time", JsonValue(ms));
  row.Set("cpu_time", JsonValue(ms));
  row.Set("time_unit", JsonValue("ms"));
  return row;
}

}  // namespace
}  // namespace bench
}  // namespace yask

int main(int argc, char** argv) {
  using namespace yask;
  using namespace yask::bench;

  size_t n = 50000;
  std::string json_path = "BENCH_snapshot.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--n=", 0) == 0) {
      n = static_cast<size_t>(std::strtoull(arg.c_str() + 4, nullptr, 10));
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else {
      std::fprintf(stderr, "usage: %s [--n=N] [--json=PATH]\n", argv[0]);
      return 2;
    }
  }

  const std::string snap_path =
      "/tmp/yask_bench_snapshot_" + std::to_string(n) + ".snap";
  const PhaseTimes t = RunOnce(n, snap_path);
  const double speedup = t.rebuild_ms / t.load_ms;

  std::printf("n=%zu objects\n", n);
  std::printf("cold start from raw data        : %10.2f ms  (parse %.2f + "
              "index build %.2f)\n",
              t.rebuild_ms, t.parse_ms, t.index_build_ms);
  std::printf("snapshot save                   : %10.2f ms  (%zu bytes)\n",
              t.save_ms, static_cast<size_t>(t.snapshot_bytes));
  std::printf("cold start from snapshot        : %10.2f ms\n", t.load_ms);
  std::printf("cold-start speedup vs rebuild   : %10.2fx\n", speedup);
  std::printf("speedup vs index build alone    : %10.2fx\n",
              t.index_build_ms / t.load_ms);
  std::printf("results match after reload      : %s\n",
              t.results_match ? "yes" : "NO — BUG");
  if (!t.validate_error.empty()) {
    std::printf("tree validation                 : FAILED %s\n",
                t.validate_error.c_str());
  }

  JsonValue context = JsonValue::MakeObject();
  context.Set("bench", JsonValue("snapshot"));
  context.Set("n", JsonValue(n));
  context.Set("snapshot_bytes", JsonValue(static_cast<size_t>(t.snapshot_bytes)));
  context.Set("speedup_vs_rebuild", JsonValue(speedup));
  context.Set("results_match", JsonValue(t.results_match));
  context.Set("trees_valid", JsonValue(t.validate_error.empty()));

  JsonValue benches = JsonValue::MakeArray();
  const std::string suffix = "/" + std::to_string(n);
  benches.Append(BenchRow("snapshot/cold_start_raw" + suffix, t.rebuild_ms));
  benches.Append(BenchRow("snapshot/parse_tsv" + suffix, t.parse_ms));
  benches.Append(BenchRow("snapshot/index_build" + suffix, t.index_build_ms));
  benches.Append(BenchRow("snapshot/save" + suffix, t.save_ms));
  benches.Append(BenchRow("snapshot/load" + suffix, t.load_ms));

  JsonValue doc = JsonValue::MakeObject();
  doc.Set("context", std::move(context));
  doc.Set("benchmarks", std::move(benches));

  std::ofstream out(json_path, std::ios::trunc);
  out << doc.Dump() << "\n";
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", json_path.c_str());

  // Exit non-zero when the persistence layer broke correctness, so CI and
  // the perf trajectory cannot silently record a fast-but-wrong load path.
  return (t.results_match && t.validate_error.empty()) ? 0 : 1;
}
