#include "src/snapshot/snapshot_format.h"

#include <array>

namespace yask {

const char* SectionIdToString(SectionId id) {
  switch (id) {
    case SectionId::kVocabulary:
      return "vocabulary";
    case SectionId::kObjectStore:
      return "object_store";
    case SectionId::kInvertedIndex:
      return "inverted_index";
    case SectionId::kSetRTree:
      return "setr_tree";
    case SectionId::kKcRTree:
      return "kcr_tree";
    case SectionId::kShardManifest:
      return "shard_manifest";
  }
  return "unknown";
}

namespace {

std::array<uint32_t, 256> MakeCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

uint32_t Crc32(const void* data, size_t size, uint32_t seed) {
  static const std::array<uint32_t, 256> table = MakeCrcTable();
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint32_t crc = seed ^ 0xFFFFFFFFu;
  for (size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ p[i]) & 0xFF] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

void BufWriter::PutVarU64(uint64_t v) {
  while (v >= 0x80) {
    out_.push_back(static_cast<char>((v & 0x7F) | 0x80));
    v >>= 7;
  }
  out_.push_back(static_cast<char>(v));
}

void BufWriter::PutString(std::string_view s) {
  PutVarU64(s.size());
  out_.append(s.data(), s.size());
}

void BufWriter::PutDeltaIds(const std::vector<uint32_t>& sorted_ids) {
  PutVarU64(sorted_ids.size());
  uint32_t prev = 0;
  for (size_t i = 0; i < sorted_ids.size(); ++i) {
    // First id verbatim, then gaps; strict ascent makes every gap >= 1.
    PutVarU32(i == 0 ? sorted_ids[0] : sorted_ids[i] - prev);
    prev = sorted_ids[i];
  }
}

bool BufReader::Need(size_t n) {
  if (!ok_) return false;
  if (size_ - pos_ < n) {
    Fail("truncated payload (wanted " + std::to_string(n) + " bytes, " +
         std::to_string(size_ - pos_) + " left)");
    return false;
  }
  return true;
}

void BufReader::Fail(std::string message) {
  if (!ok_) return;
  ok_ = false;
  status_ = Status::InvalidArgument("snapshot decode: " + std::move(message));
  pos_ = size_;
}

uint8_t BufReader::GetU8() {
  if (!Need(1)) return 0;
  return data_[pos_++];
}

uint32_t BufReader::GetU32() {
  if (!Need(4)) return 0;
  uint32_t v;
  std::memcpy(&v, data_ + pos_, 4);
  pos_ += 4;
  return v;
}

uint64_t BufReader::GetU64() {
  if (!Need(8)) return 0;
  uint64_t v;
  std::memcpy(&v, data_ + pos_, 8);
  pos_ += 8;
  return v;
}

double BufReader::GetF64() {
  const uint64_t bits = GetU64();
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

uint64_t BufReader::GetVarU64() {
  if (!ok_) return 0;
  uint64_t v = 0;
  size_t p = pos_;
  for (int shift = 0; shift < 70 && p < size_; shift += 7) {
    const uint8_t byte = data_[p++];
    // The 10th byte holds only bit 63; higher payload bits would be
    // silently shifted out, so treat them as corruption, not truncation.
    if (shift == 63 && (byte & 0x7F) > 1) {
      Fail("varint overflows 64 bits");
      return 0;
    }
    v |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) {
      pos_ = p;
      return v;
    }
  }
  Fail(p == size_ ? "truncated varint" : "varint longer than 10 bytes");
  return 0;
}

uint32_t BufReader::GetVarU32() {
  const uint64_t v = GetVarU64();
  if (v > 0xFFFFFFFFull) {
    Fail("varint exceeds 32 bits");
    return 0;
  }
  return static_cast<uint32_t>(v);
}

std::string BufReader::GetString() {
  const uint64_t len = GetVarU64();
  if (!CheckCount(len) || !Need(len)) return std::string();
  std::string s(reinterpret_cast<const char*>(data_ + pos_),
                static_cast<size_t>(len));
  pos_ += static_cast<size_t>(len);
  return s;
}

std::vector<uint32_t> BufReader::GetDeltaIds() {
  const uint64_t count = GetVarU64();
  if (!CheckCount(count)) return {};
  std::vector<uint32_t> ids;
  ids.reserve(static_cast<size_t>(count));
  uint64_t prev = 0;
  for (uint64_t i = 0; i < count; ++i) {
    // Hot loop (object docs, posting lists, node keyword sets): decode the
    // common 1-2 byte deltas inline, fall back to GetVarU64 for the rest.
    uint64_t delta;
    if (pos_ < size_ && data_[pos_] < 0x80) {
      delta = data_[pos_++];
    } else if (pos_ + 1 < size_ && data_[pos_ + 1] < 0x80) {
      delta = static_cast<uint64_t>(data_[pos_] & 0x7F) |
              (static_cast<uint64_t>(data_[pos_ + 1]) << 7);
      pos_ += 2;
    } else {
      delta = GetVarU64();
      if (!ok_) return {};
    }
    if (i > 0 && delta == 0) {
      Fail("id sequence not strictly ascending");
      return {};
    }
    // Cap the delta before summing: prev and delta both <= 2^32-1 keeps
    // prev + delta far from wrapping uint64, so the range check below is
    // sound (a wrapped sum could smuggle a non-ascending id past it).
    if (delta > 0xFFFFFFFFull) {
      Fail("id sequence overflows 32 bits");
      return {};
    }
    const uint64_t id = (i == 0) ? delta : prev + delta;
    if (id > 0xFFFFFFFFull) {
      Fail("id sequence overflows 32 bits");
      return {};
    }
    ids.push_back(static_cast<uint32_t>(id));
    prev = id;
  }
  if (!ok_) return {};
  return ids;
}

bool BufReader::Skip(size_t n) {
  if (!Need(n)) return false;
  pos_ += n;
  return true;
}

bool BufReader::CheckCount(uint64_t count, size_t min_bytes_each) {
  if (!ok_) return false;
  if (count > remaining() / (min_bytes_each == 0 ? 1 : min_bytes_each)) {
    Fail("element count " + std::to_string(count) +
         " impossible for remaining " + std::to_string(remaining()) + " bytes");
    return false;
  }
  return true;
}

}  // namespace yask
