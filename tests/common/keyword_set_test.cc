#include "src/common/keyword_set.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "src/common/random.h"

namespace yask {
namespace {

TEST(KeywordSetTest, ConstructorSortsAndDedupes) {
  KeywordSet s({5, 1, 3, 1, 5});
  EXPECT_EQ(s.ids(), (std::vector<TermId>{1, 3, 5}));
  EXPECT_EQ(s.size(), 3u);
}

TEST(KeywordSetTest, InsertEraseContains) {
  KeywordSet s;
  EXPECT_TRUE(s.empty());
  s.Insert(4);
  s.Insert(2);
  s.Insert(4);  // Duplicate.
  EXPECT_EQ(s.ids(), (std::vector<TermId>{2, 4}));
  EXPECT_TRUE(s.Contains(2));
  EXPECT_FALSE(s.Contains(3));
  EXPECT_TRUE(s.Erase(2));
  EXPECT_FALSE(s.Erase(2));
  EXPECT_EQ(s.ids(), (std::vector<TermId>{4}));
}

TEST(KeywordSetTest, IntersectionUnionSizes) {
  KeywordSet a({1, 2, 3, 4});
  KeywordSet b({3, 4, 5});
  EXPECT_EQ(a.IntersectionSize(b), 2u);
  EXPECT_EQ(a.UnionSize(b), 5u);
  EXPECT_EQ(a.IntersectionSize(KeywordSet()), 0u);
  EXPECT_EQ(a.UnionSize(KeywordSet()), 4u);
}

TEST(KeywordSetTest, JaccardMatchesEqnTwo) {
  // Eqn. (2): |o.doc ∩ q.doc| / |o.doc ∪ q.doc|.
  KeywordSet o({1, 2, 3});
  KeywordSet q({2, 3, 4, 5});
  EXPECT_DOUBLE_EQ(o.Jaccard(q), 2.0 / 5.0);
  EXPECT_DOUBLE_EQ(o.Jaccard(o), 1.0);
  EXPECT_DOUBLE_EQ(o.Jaccard(KeywordSet()), 0.0);
  EXPECT_DOUBLE_EQ(KeywordSet().Jaccard(KeywordSet()), 0.0);
}

TEST(KeywordSetTest, SetAlgebra) {
  KeywordSet a({1, 2, 3});
  KeywordSet b({2, 3, 4});
  EXPECT_EQ(KeywordSet::Union(a, b).ids(), (std::vector<TermId>{1, 2, 3, 4}));
  EXPECT_EQ(KeywordSet::Intersection(a, b).ids(),
            (std::vector<TermId>{2, 3}));
  EXPECT_EQ(KeywordSet::Difference(a, b).ids(), (std::vector<TermId>{1}));
  EXPECT_EQ(KeywordSet::Difference(b, a).ids(), (std::vector<TermId>{4}));
}

TEST(KeywordSetTest, EditDistanceIsInsertPlusDelete) {
  KeywordSet a({1, 2, 3});
  KeywordSet b({3, 4});
  // a -> b: delete 1, delete 2, insert 4 => 3 operations.
  EXPECT_EQ(KeywordSet::EditDistance(a, b), 3u);
  EXPECT_EQ(KeywordSet::EditDistance(a, a), 0u);
  EXPECT_EQ(KeywordSet::EditDistance(a, KeywordSet()), 3u);
  EXPECT_EQ(KeywordSet::EditDistance(KeywordSet(), b), 2u);
}

TEST(KeywordSetTest, SubsetChecks) {
  KeywordSet a({1, 3});
  KeywordSet b({1, 2, 3});
  EXPECT_TRUE(a.IsSubsetOf(b));
  EXPECT_FALSE(b.IsSubsetOf(a));
  EXPECT_TRUE(KeywordSet().IsSubsetOf(a));
  EXPECT_TRUE(a.IsSubsetOf(a));
}

TEST(KeywordSetTest, ToStringUsesVocabulary) {
  Vocabulary v;
  const TermId coffee = v.Intern("coffee");
  const TermId wifi = v.Intern("wifi");
  KeywordSet s({wifi, coffee});
  EXPECT_EQ(s.ToString(v), "coffee wifi");  // Sorted by id.
}

TEST(KeywordSetHashTest, EqualSetsHashEqual) {
  KeywordSetHash h;
  EXPECT_EQ(h(KeywordSet({1, 2, 3})), h(KeywordSet({3, 2, 1})));
  EXPECT_NE(h(KeywordSet({1, 2, 3})), h(KeywordSet({1, 2, 4})));
}

// Property sweep against std::set as the reference implementation.
class KeywordSetProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(KeywordSetProperty, AgreesWithStdSet) {
  Rng rng(GetParam());
  for (int iter = 0; iter < 100; ++iter) {
    std::set<TermId> ra, rb;
    const size_t na = rng.NextBounded(20);
    const size_t nb = rng.NextBounded(20);
    for (size_t i = 0; i < na; ++i) ra.insert(static_cast<TermId>(rng.NextBounded(30)));
    for (size_t i = 0; i < nb; ++i) rb.insert(static_cast<TermId>(rng.NextBounded(30)));
    KeywordSet a(std::vector<TermId>(ra.begin(), ra.end()));
    KeywordSet b(std::vector<TermId>(rb.begin(), rb.end()));

    std::set<TermId> runion = ra;
    runion.insert(rb.begin(), rb.end());
    std::set<TermId> rinter;
    for (TermId t : ra) {
      if (rb.count(t)) rinter.insert(t);
    }
    EXPECT_EQ(a.UnionSize(b), runion.size());
    EXPECT_EQ(a.IntersectionSize(b), rinter.size());
    EXPECT_EQ(KeywordSet::Union(a, b).size(), runion.size());
    EXPECT_EQ(KeywordSet::Intersection(a, b).size(), rinter.size());
    EXPECT_EQ(KeywordSet::EditDistance(a, b),
              (ra.size() - rinter.size()) + (rb.size() - rinter.size()));
    // Jaccard symmetry and range.
    EXPECT_DOUBLE_EQ(a.Jaccard(b), b.Jaccard(a));
    EXPECT_GE(a.Jaccard(b), 0.0);
    EXPECT_LE(a.Jaccard(b), 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KeywordSetProperty,
                         ::testing::Values(11, 22, 33, 44));

}  // namespace
}  // namespace yask
