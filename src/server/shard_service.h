// Copyright (c) 2026 The YASK reproduction authors.
// ShardService: one Corpus shard served over HTTP — the remote half of the
// WhyNotOracle/top-k fan-out seam. A coordinator (yask_server_demo
// --remote-shards, via RemoteCorpus) connects to N of these and answers the
// full /query + /whynot + /forget contract bit-identically to the in-process
// ShardedCorpus path.
//
// The endpoints are exactly the per-shard primitives the in-process fan-outs
// dispatch to their shard views (src/whynot/shard_primitives.h) — the same
// code runs behind both transports, and every double crosses the wire as its
// raw bits (src/server/shard_protocol.h), which is what makes the remote
// answers byte-identical.
//
// Statefulness: the Eqn. (3) score-plane sessions and Eqn. (4) rank-probe
// batches are per-question server-side state (plane points / refiner
// frontiers over this shard). Sessions are id-keyed, independently locked,
// explicitly closed by the coordinator, and LRU-capped so a leaking or dead
// client cannot pin memory.

#ifndef YASK_SERVER_SHARD_SERVICE_H_
#define YASK_SERVER_SHARD_SERVICE_H_

#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "src/common/metrics.h"
#include "src/common/trace.h"
#include "src/corpus/corpus.h"
#include "src/query/topk_engine.h"
#include "src/server/http_server.h"
#include "src/snapshot/snapshot_codec.h"
#include "src/whynot/shard_primitives.h"

namespace yask {

struct ShardServiceOptions {
  uint16_t port = 0;  // 0 = ephemeral.
  /// Each keep-alive connection pins a worker while open. A coordinator
  /// multiplexes all its in-flight requests for this replica over a small
  /// fixed set of pipelined connections (RemoteShardOptions::mux_connections,
  /// default 4), so num_workers only needs to cover that set times the number
  /// of coordinators, not peak request concurrency.
  size_t num_workers = 8;
  /// Upper bound on open plane/probe sessions; beyond it the oldest is
  /// evicted (a later call on it answers 404). Coordinators close sessions
  /// after every question, so the cap only matters for leaking clients.
  size_t max_sessions = 256;
};

/// Serves one shard. The corpus must outlive the service.
class ShardService {
 public:
  /// The shard's identity inside the partitioned corpus, plus the GLOBAL
  /// quantities every score must be computed with.
  struct Info {
    uint32_t shard_index = 0;
    uint32_t shard_count = 1;
    Rect global_bounds = Rect::Empty();  // Whole-dataset MBR.
    double dist_norm = 0.0;              // Its diagonal (Eqn. (1)).
    std::vector<ObjectId> to_global;     // Empty = ids already global.
    std::string router;                  // Informational.
  };

  /// A standalone corpus served as shard 0 of 1 (global ids = local ids).
  static Info StandaloneInfo(const Corpus& corpus);
  /// The identity a per-shard snapshot file carries.
  static Info InfoFromManifest(const ShardManifest& manifest);

  ShardService(const Corpus& corpus, Info info,
               ShardServiceOptions options = {});

  Status Start() { return server_.Start(); }
  void Stop() { server_.Stop(); }
  uint16_t port() const { return server_.bound_port(); }

  /// Open sessions (for tests and /health).
  size_t open_sessions() const;

  /// This server's metric registry (GET /metrics renders it).
  const MetricsRegistry& metrics() const { return metrics_; }
  /// This server's trace store (GET /shard/trace?id=… serves it).
  const TraceStore& traces() const { return traces_; }

 private:
  struct PlaneSession;
  struct ProbeSession;

  /// Wraps a handler with per-endpoint metrics (request counter by response
  /// code + latency histogram) and, when the request carries an
  /// `x-yask-trace` header (shardrpc v2), a per-RPC TraceRecorder whose root
  /// span is parented to the coordinator's propagated span id; the recorded
  /// spans land in traces_ under the propagated trace id.
  HttpServer::Handler Instrumented(const char* endpoint,
                                   HttpServer::Handler inner);

  HttpResponse HandleHealth(const HttpRequest& req);
  HttpResponse HandleMeta(const HttpRequest& req);
  HttpResponse HandleVocab(const HttpRequest& req);
  HttpResponse HandleObjects(const HttpRequest& req);
  HttpResponse HandleFind(const HttpRequest& req);
  HttpResponse HandleTopK(const HttpRequest& req);
  HttpResponse HandleCount(const HttpRequest& req);
  HttpResponse HandlePlaneOpen(const HttpRequest& req);
  HttpResponse HandlePlaneCount(const HttpRequest& req);
  HttpResponse HandlePlaneCountBatch(const HttpRequest& req);
  HttpResponse HandlePlaneCrossings(const HttpRequest& req);
  HttpResponse HandlePlaneClose(const HttpRequest& req);
  HttpResponse HandleProbeOpen(const HttpRequest& req);
  HttpResponse HandleProbeRefine(const HttpRequest& req);
  HttpResponse HandleProbeClose(const HttpRequest& req);
  HttpResponse HandleTrace(const HttpRequest& req);
  HttpResponse HandleMetrics(const HttpRequest& req);

  /// Local id of a global id owned by this shard; nullopt when not owned.
  std::optional<ObjectId> ToLocal(ObjectId global_id) const;
  ObjectId ToGlobal(ObjectId local_id) const {
    return info_.to_global.empty() ? local_id : info_.to_global[local_id];
  }

  std::shared_ptr<PlaneSession> FindPlane(uint64_t id) const;
  std::shared_ptr<ProbeSession> FindProbe(uint64_t id) const;
  /// Drops the session with the smallest last_use (called under
  /// sessions_mu_ when a map exceeds max_sessions_).
  template <typename Map>
  void EvictLeastRecentlyUsed(Map* sessions) const;

  const Corpus* corpus_;
  Info info_;
  OracleShardView view_;
  SetRTopKEngine topk_;  // Global dist norm.
  MetricsRegistry metrics_;
  TraceStore traces_;
  HttpServer server_;

  mutable std::mutex sessions_mu_;
  uint64_t next_session_id_ = 1;
  mutable uint64_t use_clock_ = 0;  // Recency stamp (under sessions_mu_).
  std::map<uint64_t, std::shared_ptr<PlaneSession>> planes_;
  std::map<uint64_t, std::shared_ptr<ProbeSession>> probes_;
  size_t max_sessions_;
  /// Capacity evictions by session kind — an evicted session forces the
  /// coordinator into a 404 reopen + replay, so silent churn here is a
  /// latency bug a dashboard must see (yask_shard_sessions_evicted_total).
  Counter* plane_evictions_ = nullptr;
  Counter* probe_evictions_ = nullptr;
};

}  // namespace yask

#endif  // YASK_SERVER_SHARD_SERVICE_H_
