#include "src/index/ir_tree.h"

#include <queue>

namespace yask {

double UpperBoundCosineTSim(const IrSummary& s, const CosineScorer& scorer) {
  if (s.count == 0 || scorer.query_norm() == 0.0 ||
      s.min_pos_norm == std::numeric_limits<double>::infinity()) {
    return 0.0;
  }
  const double num = scorer.idf().DotProduct(s.union_set, scorer.query().doc);
  if (num <= 0.0) return 0.0;
  return std::min(1.0, num / (scorer.query_norm() * s.min_pos_norm));
}

double UpperBoundCosineScore(const CosineScorer& scorer, const Rect& mbr,
                             const IrSummary& s) {
  const Query& q = scorer.query();
  return q.w.ws * scorer.MaxSpatialComponent(mbr) +
         q.w.wt * UpperBoundCosineTSim(s, scorer);
}

namespace {

/// Max-heap element; same discipline as the SetR engine (nodes before
/// objects at equal key, objects by ascending id).
struct QueueEntry {
  double key = 0.0;
  bool is_object = false;
  uint32_t id = 0;

  bool operator<(const QueueEntry& other) const {
    if (key != other.key) return key < other.key;
    if (is_object != other.is_object) return is_object;
    if (is_object) return id > other.id;
    return id < other.id;
  }
};

}  // namespace

TopKResult IrTopKEngine::Query(const ::yask::Query& query,
                               TopKStats* stats) const {
  CosineScorer scorer(*store_, *idf_, query);
  TopKResult result;
  if (store_->empty() || query.k == 0 || tree_->empty()) return result;

  std::priority_queue<QueueEntry> pq;
  {
    const auto& root = tree_->node(tree_->root());
    pq.push(QueueEntry{UpperBoundCosineScore(scorer, root.rect, root.summary),
                       false, tree_->root()});
  }
  while (!pq.empty() && result.size() < query.k) {
    const QueueEntry top = pq.top();
    pq.pop();
    if (top.is_object) {
      result.push_back(ScoredObject{top.id, top.key});
      continue;
    }
    const auto& node = tree_->node(top.id);
    if (stats != nullptr) ++stats->nodes_popped;
    if (node.is_leaf) {
      for (const auto& e : node.entries) {
        if (stats != nullptr) ++stats->objects_scored;
        pq.push(QueueEntry{scorer.Score(e.id), true, e.id});
      }
    } else {
      for (const auto& e : node.entries) {
        const auto& child = tree_->node(e.id);
        pq.push(QueueEntry{
            UpperBoundCosineScore(scorer, child.rect, child.summary), false,
            e.id});
      }
    }
  }
  return result;
}

template class RTreeT<IrSummary>;

}  // namespace yask
