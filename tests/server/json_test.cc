#include "src/server/json.h"

#include <gtest/gtest.h>

#include "src/common/random.h"

namespace yask {
namespace {

TEST(JsonValueTest, TypesAndAccessors) {
  EXPECT_TRUE(JsonValue().is_null());
  EXPECT_TRUE(JsonValue(true).is_bool());
  EXPECT_TRUE(JsonValue(1.5).is_number());
  EXPECT_TRUE(JsonValue("hi").is_string());
  EXPECT_TRUE(JsonValue::MakeArray().is_array());
  EXPECT_TRUE(JsonValue::MakeObject().is_object());
  EXPECT_EQ(JsonValue(3.25).as_number(), 3.25);
  EXPECT_EQ(JsonValue("x").as_string(), "x");
  EXPECT_TRUE(JsonValue(true).as_bool());
}

TEST(JsonValueTest, ObjectSetGet) {
  JsonValue o = JsonValue::MakeObject();
  o.Set("a", JsonValue(1.0)).Set("b", JsonValue("two"));
  EXPECT_TRUE(o.Has("a"));
  EXPECT_FALSE(o.Has("zz"));
  EXPECT_EQ(o.Get("a").as_number(), 1.0);
  EXPECT_TRUE(o.Get("zz").is_null());
  EXPECT_EQ(o.size(), 2u);
}

TEST(JsonValueTest, ArrayAppendAt) {
  JsonValue a = JsonValue::MakeArray();
  a.Append(JsonValue(1.0)).Append(JsonValue(2.0));
  EXPECT_EQ(a.size(), 2u);
  EXPECT_EQ(a.At(1).as_number(), 2.0);
  EXPECT_TRUE(a.At(5).is_null());
}

TEST(JsonDumpTest, Scalars) {
  EXPECT_EQ(JsonValue().Dump(), "null");
  EXPECT_EQ(JsonValue(true).Dump(), "true");
  EXPECT_EQ(JsonValue(false).Dump(), "false");
  EXPECT_EQ(JsonValue(42.0).Dump(), "42");
  EXPECT_EQ(JsonValue(1.5).Dump(), "1.5");
  EXPECT_EQ(JsonValue("hi").Dump(), "\"hi\"");
}

TEST(JsonDumpTest, EscapesControlAndQuotes) {
  EXPECT_EQ(JsonValue("a\"b").Dump(), "\"a\\\"b\"");
  EXPECT_EQ(JsonValue("line\nbreak").Dump(), "\"line\\nbreak\"");
  EXPECT_EQ(JsonValue("tab\there").Dump(), "\"tab\\there\"");
  EXPECT_EQ(JsonValue(std::string("nul\x01")).Dump(), "\"nul\\u0001\"");
}

TEST(JsonDumpTest, NestedStructures) {
  JsonValue o = JsonValue::MakeObject();
  JsonValue arr = JsonValue::MakeArray();
  arr.Append(JsonValue(1.0));
  arr.Append(JsonValue("x"));
  o.Set("list", std::move(arr));
  o.Set("flag", JsonValue(true));
  // Keys serialise sorted (std::map).
  EXPECT_EQ(o.Dump(), "{\"flag\":true,\"list\":[1,\"x\"]}");
}

TEST(JsonParseTest, RoundTripsDump) {
  const std::string text =
      R"({"a":1,"b":[true,null,"s"],"c":{"d":2.5},"e":"q\"uote"})";
  auto parsed = JsonValue::Parse(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  auto reparsed = JsonValue::Parse(parsed->Dump());
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(parsed->Dump(), reparsed->Dump());
  EXPECT_EQ(parsed->Get("b").At(2).as_string(), "s");
  EXPECT_EQ(parsed->Get("c").Get("d").as_number(), 2.5);
  EXPECT_EQ(parsed->Get("e").as_string(), "q\"uote");
}

TEST(JsonParseTest, WhitespaceTolerant) {
  auto parsed = JsonValue::Parse("  { \"a\" :\n[ 1 , 2 ]\t} ");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->Get("a").size(), 2u);
}

TEST(JsonParseTest, NumbersIncludingNegativeAndExponent) {
  auto parsed = JsonValue::Parse("[-1.5, 2e3, 0.25]");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->At(0).as_number(), -1.5);
  EXPECT_EQ(parsed->At(1).as_number(), 2000.0);
  EXPECT_EQ(parsed->At(2).as_number(), 0.25);
}

TEST(JsonParseTest, UnicodeEscapes) {
  auto parsed = JsonValue::Parse(R"("café")");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->as_string(), "caf\xc3\xa9");
}

TEST(JsonParseTest, RejectsMalformed) {
  EXPECT_FALSE(JsonValue::Parse("").ok());
  EXPECT_FALSE(JsonValue::Parse("{").ok());
  EXPECT_FALSE(JsonValue::Parse("[1,]").ok());
  EXPECT_FALSE(JsonValue::Parse("{\"a\":}").ok());
  EXPECT_FALSE(JsonValue::Parse("{'a':1}").ok());
  EXPECT_FALSE(JsonValue::Parse("tru").ok());
  EXPECT_FALSE(JsonValue::Parse("1 2").ok());       // Trailing garbage.
  EXPECT_FALSE(JsonValue::Parse("\"unterminated").ok());
  EXPECT_FALSE(JsonValue::Parse("\"bad\\q\"").ok());
}

TEST(JsonParseTest, DepthGuardStopsBombs) {
  std::string bomb;
  for (int i = 0; i < 100; ++i) bomb += '[';
  for (int i = 0; i < 100; ++i) bomb += ']';
  EXPECT_FALSE(JsonValue::Parse(bomb).ok());
  // Modest nesting is fine.
  std::string ok = "[[[[[[[[1]]]]]]]]";
  EXPECT_TRUE(JsonValue::Parse(ok).ok());
}

TEST(JsonParseTest, NonFiniteDumpsAsNull) {
  EXPECT_EQ(JsonValue(std::numeric_limits<double>::infinity()).Dump(), "null");
}

TEST(JsonEscapeTest, PlainStringsQuotedOnly) {
  EXPECT_EQ(JsonEscape("abc"), "\"abc\"");
  EXPECT_EQ(JsonEscape(""), "\"\"");
  EXPECT_EQ(JsonEscape("back\\slash"), "\"back\\\\slash\"");
}

// Deterministic fuzzing: the parser must never crash or hang, whatever the
// bytes; valid inputs mutated at random positions must either parse or be
// rejected cleanly; every successful parse must dump to something that
// re-parses to the same dump (serialisation fixpoint).
class JsonFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(JsonFuzz, RandomBytesNeverCrash) {
  Rng rng(GetParam());
  for (int iter = 0; iter < 2000; ++iter) {
    const size_t len = rng.NextBounded(64);
    std::string input;
    for (size_t i = 0; i < len; ++i) {
      input += static_cast<char>(rng.NextBounded(256));
    }
    auto parsed = JsonValue::Parse(input);  // Must not crash.
    if (parsed.ok()) {
      const std::string dumped = parsed->Dump();
      auto reparsed = JsonValue::Parse(dumped);
      ASSERT_TRUE(reparsed.ok()) << "dump not re-parseable: " << dumped;
      EXPECT_EQ(reparsed->Dump(), dumped);
    }
  }
}

TEST_P(JsonFuzz, MutatedValidDocumentsNeverCrash) {
  Rng rng(GetParam() ^ 0x77);
  const std::string base =
      R"({"query_id":17,"missing":[3,"Hotel X"],"lambda":0.5,)"
      R"("nested":{"a":[true,null,-2.5e3],"b":"esc\"aped"}})";
  for (int iter = 0; iter < 2000; ++iter) {
    std::string input = base;
    const size_t mutations = 1 + rng.NextBounded(4);
    for (size_t m = 0; m < mutations; ++m) {
      const size_t pos = rng.NextBounded(input.size());
      input[pos] = static_cast<char>(rng.NextBounded(256));
    }
    auto parsed = JsonValue::Parse(input);  // Crash-freedom is the assertion.
    if (parsed.ok()) {
      auto reparsed = JsonValue::Parse(parsed->Dump());
      EXPECT_TRUE(reparsed.ok());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, JsonFuzz, ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace yask
