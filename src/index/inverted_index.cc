#include "src/index/inverted_index.h"

#include <algorithm>

namespace yask {

InvertedIndex::InvertedIndex(const ObjectStore& store) {
  postings_.resize(store.vocab().size());
  for (const SpatialObject& o : store.objects()) {
    for (TermId t : o.doc) {
      postings_[t].push_back(o.id);  // Ids ascend as objects are scanned.
    }
  }
}

InvertedIndex InvertedIndex::FromPostings(
    std::vector<std::vector<ObjectId>> postings) {
  InvertedIndex index;
  index.postings_ = std::move(postings);
  return index;
}

const std::vector<ObjectId>& InvertedIndex::Postings(TermId term) const {
  if (term >= postings_.size()) return empty_;
  return postings_[term];
}

std::vector<ObjectId> InvertedIndex::Candidates(
    const KeywordSet& query_doc) const {
  std::vector<ObjectId> out;
  for (TermId t : query_doc) {
    const auto& list = Postings(t);
    out.insert(out.end(), list.begin(), list.end());
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

size_t InvertedIndex::DocumentFrequency(TermId term) const {
  return Postings(term).size();
}

size_t InvertedIndex::MemoryUsageBytes() const {
  size_t total = postings_.capacity() * sizeof(postings_[0]);
  for (const auto& list : postings_) {
    total += list.capacity() * sizeof(ObjectId);
  }
  return total;
}

}  // namespace yask
