#include "src/storage/dataset_io.h"

#include <fstream>
#include <sstream>

#include "src/common/string_util.h"
#include "src/common/text.h"

namespace yask {

Status SaveDataset(const ObjectStore& store, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::Unavailable("cannot open for writing: " + path);
  out << "# x\ty\tkeywords\tname\n";
  const Vocabulary& vocab = store.vocab();
  out.precision(12);
  for (const SpatialObject& o : store.objects()) {
    out << o.loc.x << '\t' << o.loc.y << '\t' << o.doc.ToString(vocab) << '\t'
        << o.name << '\n';
  }
  if (!out) return Status::Unavailable("write failure: " + path);
  return Status::OK();
}

Result<ObjectStore> LoadDataset(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open: " + path);
  ObjectStore store;
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::string_view trimmed = Trim(line);
    if (trimmed.empty() || trimmed.front() == '#') continue;
    std::vector<std::string> fields = Split(trimmed, '\t');
    if (fields.size() < 3) {
      return Status::InvalidArgument("line " + std::to_string(line_no) +
                                     ": expected >=3 tab-separated fields");
    }
    Point loc;
    if (!ParseDouble(fields[0], &loc.x) || !ParseDouble(fields[1], &loc.y)) {
      return Status::InvalidArgument("line " + std::to_string(line_no) +
                                     ": bad coordinates");
    }
    KeywordSet doc;
    for (const std::string& word : SplitWhitespace(fields[2])) {
      doc.Insert(store.mutable_vocab()->Intern(word));
    }
    std::string name = fields.size() >= 4 ? fields[3] : "";
    store.Add(loc, std::move(doc), std::move(name));
  }
  return store;
}

}  // namespace yask
