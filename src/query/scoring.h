// Copyright (c) 2026 The YASK reproduction authors.
// The ranking function of Eqn. (1):
//
//   ST(o, q) = ws * (1 - SDist(o, q)) + wt * TSim(o, q)
//
// SDist is Euclidean distance normalised into [0, 1] by a dataset constant
// (the diagonal of the data MBR, the usual choice); TSim is Jaccard
// similarity (Eqn. (2)). A Scorer binds a query + normaliser and evaluates
// scores and node-level score bounds.

#ifndef YASK_QUERY_SCORING_H_
#define YASK_QUERY_SCORING_H_

#include <algorithm>

#include "src/common/geometry.h"
#include "src/common/keyword_set.h"
#include "src/query/query.h"
#include "src/storage/object_store.h"

namespace yask {

/// Normalised spatial distance: min(1, |a-b| / norm); 0 when norm <= 0.
double NormalizedSpatialDistance(const Point& a, const Point& b, double norm);

/// Evaluates ST(o, q) for one fixed query against one store.
///
/// The normaliser defaults to the store's bounding-box diagonal so that
/// SDist ∈ [0, 1] for every object, as Eqn. (1) requires.
class Scorer {
 public:
  Scorer(const ObjectStore& store, const Query& query);
  Scorer(const ObjectStore& store, const Query& query, double dist_norm);

  /// Normalised spatial distance of a location to the query point.
  double SDist(const Point& loc) const {
    return NormalizedSpatialDistance(loc, query_->loc, dist_norm_);
  }

  /// Jaccard textual similarity of a document to the query keywords.
  double TSim(const KeywordSet& doc) const { return query_->doc.Jaccard(doc); }

  /// Full score of Eqn. (1).
  double Score(const SpatialObject& o) const {
    return query_->w.ws * (1.0 - SDist(o.loc)) + query_->w.wt * TSim(o.doc);
  }
  double Score(ObjectId id) const { return Score(store_->Get(id)); }

  /// Score from precomputed normalised parts (used by the weight-plane
  /// algorithms, which fix SDist/TSim and vary w).
  double ScoreFromParts(double sdist, double tsim) const {
    return query_->w.ws * (1.0 - sdist) + query_->w.wt * tsim;
  }

  /// Best possible spatial contribution for any point in `mbr`.
  double MaxSpatialComponent(const Rect& mbr) const {
    return 1.0 - NormalizedSpatialDistance1(mbr.MinDistance(query_->loc));
  }
  /// Worst possible spatial contribution for any point in `mbr`.
  double MinSpatialComponent(const Rect& mbr) const {
    return 1.0 - NormalizedSpatialDistance1(mbr.MaxDistance(query_->loc));
  }

  const Query& query() const { return *query_; }
  const ObjectStore& store() const { return *store_; }
  double dist_norm() const { return dist_norm_; }

 private:
  double NormalizedSpatialDistance1(double raw) const {
    if (dist_norm_ <= 0.0) return 0.0;
    return std::min(1.0, raw / dist_norm_);
  }

  const ObjectStore* store_;
  const Query* query_;
  double dist_norm_;
};

}  // namespace yask

#endif  // YASK_QUERY_SCORING_H_
