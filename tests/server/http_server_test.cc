#include "src/server/http_server.h"

#include <gtest/gtest.h>

#include "src/server/http_client.h"

#include <arpa/inet.h>
#include <dirent.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "src/common/timer.h"
#include "src/server/json.h"

namespace yask {
namespace {

TEST(UrlDecodeTest, DecodesPercentAndPlus) {
  EXPECT_EQ(UrlDecode("a%20b"), "a b");
  EXPECT_EQ(UrlDecode("a+b"), "a b");
  EXPECT_EQ(UrlDecode("%2Fpath"), "/path");
  EXPECT_EQ(UrlDecode("plain"), "plain");
  EXPECT_EQ(UrlDecode("bad%zz"), "bad%zz");  // Invalid escape passthrough.
}

class HttpServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    server_ = std::make_unique<HttpServer>(0, 2);
    server_->Route("GET", "/ping", [](const HttpRequest&) {
      return HttpResponse::Json("{\"pong\":true}");
    });
    server_->Route("POST", "/echo", [](const HttpRequest& req) {
      return HttpResponse::Json(req.body);
    });
    server_->Route("GET", "/params", [](const HttpRequest& req) {
      std::string out = "{";
      bool first = true;
      for (const auto& [k, v] : req.query_params) {
        if (!first) out += ",";
        first = false;
        out += JsonEscape(k) + ":" + JsonEscape(v);
      }
      return HttpResponse::Json(out + "}");
    });
    ASSERT_TRUE(server_->Start().ok());
  }
  void TearDown() override { server_->Stop(); }

  std::unique_ptr<HttpServer> server_;
};

TEST_F(HttpServerTest, BindsEphemeralPort) {
  EXPECT_GT(server_->bound_port(), 0);
  EXPECT_TRUE(server_->running());
}

TEST_F(HttpServerTest, GetRoute) {
  int status = 0;
  auto body = HttpFetch(server_->bound_port(), "GET", "/ping", "", &status);
  ASSERT_TRUE(body.ok()) << body.status().ToString();
  EXPECT_EQ(status, 200);
  EXPECT_EQ(*body, "{\"pong\":true}");
}

TEST_F(HttpServerTest, PostEchoesBody) {
  const std::string payload = "{\"x\":42}";
  int status = 0;
  auto body =
      HttpFetch(server_->bound_port(), "POST", "/echo", payload, &status);
  ASSERT_TRUE(body.ok());
  EXPECT_EQ(status, 200);
  EXPECT_EQ(*body, payload);
}

TEST_F(HttpServerTest, QueryParamsParsedAndDecoded) {
  int status = 0;
  auto body = HttpFetch(server_->bound_port(), "GET",
                        "/params?a=1&b=hello%20world", "", &status);
  ASSERT_TRUE(body.ok());
  EXPECT_NE(body->find("\"a\":\"1\""), std::string::npos);
  EXPECT_NE(body->find("\"b\":\"hello world\""), std::string::npos);
}

TEST_F(HttpServerTest, UnknownRouteIs404) {
  int status = 0;
  auto body = HttpFetch(server_->bound_port(), "GET", "/nope", "", &status);
  ASSERT_TRUE(body.ok());
  EXPECT_EQ(status, 404);
}

TEST_F(HttpServerTest, WrongMethodOnKnownPathIs405) {
  int status = 0;
  auto body = HttpFetch(server_->bound_port(), "POST", "/ping", "", &status);
  ASSERT_TRUE(body.ok());
  EXPECT_EQ(status, 405);
}

TEST_F(HttpServerTest, UnknownMethodIs405OnKnownPath404Otherwise) {
  int status = 0;
  auto body = HttpFetch(server_->bound_port(), "BREW", "/ping", "", &status);
  ASSERT_TRUE(body.ok());
  EXPECT_EQ(status, 405);
  body = HttpFetch(server_->bound_port(), "BREW", "/nowhere", "", &status);
  ASSERT_TRUE(body.ok());
  EXPECT_EQ(status, 404);
}

TEST_F(HttpServerTest, ConcurrentRequests) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10;
  std::atomic<int> ok_count{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        int status = 0;
        auto body =
            HttpFetch(server_->bound_port(), "GET", "/ping", "", &status);
        if (body.ok() && status == 200 && *body == "{\"pong\":true}") {
          ++ok_count;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(ok_count.load(), kThreads * kPerThread);
}

TEST_F(HttpServerTest, StopIsIdempotent) {
  server_->Stop();
  server_->Stop();
  EXPECT_FALSE(server_->running());
}

TEST(HttpServerLifecycleTest, RestartOnNewInstance) {
  HttpServer a(0, 1);
  a.Route("GET", "/x", [](const HttpRequest&) {
    return HttpResponse::Json("{}");
  });
  ASSERT_TRUE(a.Start().ok());
  const uint16_t port = a.bound_port();
  a.Stop();
  // Port released: a new server can bind it again.
  HttpServer b(port, 1);
  b.Route("GET", "/x", [](const HttpRequest&) {
    return HttpResponse::Json("{}");
  });
  EXPECT_TRUE(b.Start().ok());
  b.Stop();
}

TEST_F(HttpServerTest, LargeBodyRoundTrips) {
  // 1 MiB body. (Built via constructor + insert to sidestep a GCC 12
  // -Wrestrict false positive on append-after-literal.)
  std::string payload(1 << 20, 'x');
  payload.insert(0, "{\"blob\":\"");
  payload += "\"}";
  int status = 0;
  auto body =
      HttpFetch(server_->bound_port(), "POST", "/echo", payload, &status);
  ASSERT_TRUE(body.ok());
  EXPECT_EQ(status, 200);
  EXPECT_EQ(body->size(), payload.size());
}

TEST_F(HttpServerTest, GarbageRequestGets400) {
  // Raw socket with a non-HTTP preamble.
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(server_->bound_port());
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  const char garbage[] = "\x01\x02garbage\r\n\r\n";
  ASSERT_GT(::send(fd, garbage, sizeof(garbage) - 1, 0), 0);
  char buf[512];
  std::string resp;
  while (true) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    resp.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  // Either a 400/404 response or a dropped connection is acceptable; a 200
  // would mean the garbage was routed.
  EXPECT_EQ(resp.find("200 OK"), std::string::npos);
}

TEST_F(HttpServerTest, MissingContentLengthTreatedAsEmptyBody) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(server_->bound_port());
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  const char req[] =
      "GET /ping HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n";
  ASSERT_GT(::send(fd, req, sizeof(req) - 1, 0), 0);
  std::string resp;
  char buf[512];
  while (true) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    resp.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  EXPECT_NE(resp.find("200 OK"), std::string::npos);
  EXPECT_NE(resp.find("pong"), std::string::npos);
}

TEST(HttpServerShutdownTest, StopUnderLoadClosesQueuedFdsQuicklyNoLeak) {
  // Counts open fds of this process (the opendir fd cancels out between the
  // baseline and the final count).
  auto count_fds = [] {
    size_t n = 0;
    DIR* dir = ::opendir("/proc/self/fd");
    if (dir == nullptr) return n;
    while (::readdir(dir) != nullptr) ++n;
    ::closedir(dir);
    return n;
  };

  const size_t baseline = count_fds();
  constexpr int kClients = 30;
  static constexpr int kHandlerMillis = 150;
  {
    // One worker, a slow handler: the first connection occupies the worker
    // while the rest pile up in the pending_ queue.
    HttpServer server(0, 1);
    server.Route("GET", "/slow", [](const HttpRequest&) {
      std::this_thread::sleep_for(std::chrono::milliseconds(kHandlerMillis));
      return HttpResponse::Json("{}");
    });
    ASSERT_TRUE(server.Start().ok());

    std::vector<int> clients;
    for (int i = 0; i < kClients; ++i) {
      const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
      ASSERT_GE(fd, 0);
      sockaddr_in addr{};
      addr.sin_family = AF_INET;
      addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
      addr.sin_port = htons(server.bound_port());
      ASSERT_EQ(
          ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
      const char req[] = "GET /slow HTTP/1.1\r\nHost: x\r\n\r\n";
      ASSERT_GT(::send(fd, req, sizeof(req) - 1, 0), 0);
      clients.push_back(fd);
    }
    // Let the accept thread queue everything behind the busy worker.
    std::this_thread::sleep_for(std::chrono::milliseconds(200));

    // Stop() must not serve the ~29-request backlog (that would take
    // kClients * kHandlerMillis); it finishes the in-flight request, closes
    // the queued fds and returns.
    const Timer stop_timer;
    server.Stop();
    EXPECT_LT(stop_timer.ElapsedMillis(), kClients * kHandlerMillis / 2)
        << "Stop() appears to drain the backlog instead of closing it";

    for (const int fd : clients) ::close(fd);
  }
  // Every accepted server-side fd must be gone: queue-drain close, worker
  // close, or listener close.
  EXPECT_EQ(count_fds(), baseline);
}

namespace {

/// Raw-socket client helper for the hardening tests: connects, sends
/// `payload`, reads until the peer closes (or `read_nothing` skips reading).
std::string RawExchange(uint16_t port, const std::string& payload,
                        bool close_mid_request = false) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  if (!payload.empty()) {
    EXPECT_GT(::send(fd, payload.data(), payload.size(), 0), 0);
  }
  if (close_mid_request) {
    ::close(fd);
    return "";
  }
  std::string resp;
  char buf[4096];
  while (true) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    resp.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return resp;
}

}  // namespace

TEST_F(HttpServerTest, OversizedDeclaredBodyRejectedWith413) {
  // A 64 MiB Content-Length must be refused before any body bytes are
  // buffered — the shard endpoints face other nodes, not trusted clients.
  const std::string resp = RawExchange(
      server_->bound_port(),
      "POST /echo HTTP/1.1\r\nHost: x\r\nContent-Length: 67108864\r\n\r\n");
  EXPECT_NE(resp.find("413"), std::string::npos) << resp;
  EXPECT_EQ(resp.find("200 OK"), std::string::npos);
}

TEST_F(HttpServerTest, OversizedHeaderBlockRejectedWith431) {
  std::string req = "GET /ping HTTP/1.1\r\nHost: x\r\n";
  req += "X-Filler: " + std::string(2u << 20, 'a') + "\r\n\r\n";
  const std::string resp = RawExchange(server_->bound_port(), req);
  EXPECT_NE(resp.find("431"), std::string::npos) << resp.substr(0, 200);
  EXPECT_EQ(resp.find("200 OK"), std::string::npos);
}

TEST_F(HttpServerTest, TruncatedHeadersConnectionDropsServerSurvives) {
  // Peer dies mid-header: the server must just drop the connection — and
  // keep serving others.
  RawExchange(server_->bound_port(), "GET /ping HTTP/1.1\r\nHos",
              /*close_mid_request=*/true);
  int status = 0;
  auto body = HttpFetch(server_->bound_port(), "GET", "/ping", "", &status);
  ASSERT_TRUE(body.ok());
  EXPECT_EQ(status, 200);
}

TEST_F(HttpServerTest, KeepAliveServesSequentialRequestsOnOneConnection) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(server_->bound_port());
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);

  auto roundtrip = [&](const std::string& req) {
    EXPECT_GT(::send(fd, req.data(), req.size(), 0), 0);
    // Each /ping response is Content-Length framed; read until the body's
    // closing brace arrives (the connection stays open, so no EOF).
    std::string resp;
    char buf[1024];
    while (resp.find("\"pong\":true}") == std::string::npos) {
      const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
      ASSERT_GT(n, 0);
      resp.append(buf, static_cast<size_t>(n));
    }
    EXPECT_NE(resp.find("200 OK"), std::string::npos);
    EXPECT_NE(resp.find("Connection: keep-alive"), std::string::npos);
  };
  roundtrip("GET /ping HTTP/1.1\r\nHost: x\r\n\r\n");
  roundtrip("GET /ping HTTP/1.1\r\nHost: x\r\n\r\n");

  // Connection: close is honoured on the last request.
  const char last[] = "GET /ping HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n";
  ASSERT_GT(::send(fd, last, sizeof(last) - 1, 0), 0);
  std::string resp;
  char buf[1024];
  while (true) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    resp.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  EXPECT_NE(resp.find("Connection: close"), std::string::npos);
}

TEST(HttpClientConnectionTest, KeepAliveCallsAndDeadlines) {
  HttpServer server(0, 2);
  std::atomic<int> hits{0};
  server.Route("POST", "/echo", [&](const HttpRequest& req) {
    ++hits;
    return HttpResponse::Json(req.body);
  });
  server.Route("GET", "/slow", [](const HttpRequest&) {
    std::this_thread::sleep_for(std::chrono::milliseconds(400));
    return HttpResponse::Json("{}");
  });
  ASSERT_TRUE(server.Start().ok());

  HttpClientConnection conn;
  ASSERT_TRUE(conn.Connect("127.0.0.1", server.bound_port(), 1000).ok());
  // Several calls ride the same connection.
  for (int i = 0; i < 3; ++i) {
    int status = 0;
    auto body = conn.Call("POST", "/echo", "{\"i\":1}", 2000, &status);
    ASSERT_TRUE(body.ok()) << body.status().ToString();
    EXPECT_EQ(status, 200);
    EXPECT_EQ(*body, "{\"i\":1}");
    EXPECT_TRUE(conn.connected());
  }
  EXPECT_EQ(hits.load(), 3);

  // A deadline shorter than the handler trips, and closes the connection so
  // the stale response cannot desynchronise a later call.
  int status = 0;
  auto slow = conn.Call("GET", "/slow", "", 50, &status);
  EXPECT_FALSE(slow.ok());
  EXPECT_FALSE(conn.connected());

  // Reconnect works.
  ASSERT_TRUE(conn.Connect("127.0.0.1", server.bound_port(), 1000).ok());
  auto body = conn.Call("POST", "/echo", "x", 2000, &status);
  ASSERT_TRUE(body.ok());
  EXPECT_EQ(*body, "x");

  // Dialing a dead port fails cleanly.
  server.Stop();
  HttpClientConnection dead;
  EXPECT_FALSE(dead.Connect("127.0.0.1", server.bound_port(), 200).ok());
}

TEST(HttpServerIdleSweepTest, AbandonedKeepAliveConnectionsAreReaped) {
  // A client that completes a request and then walks away must not pin
  // server-side connection state forever: the event loop's sweep recycles
  // the idle socket once keep_alive_idle_ms passes.
  HttpServer server(0, /*num_workers=*/2, /*keep_alive_idle_ms=*/150);
  server.Route("GET", "/ping",
               [](const HttpRequest&) { return HttpResponse::Json("{}"); });
  ASSERT_TRUE(server.Start().ok());
  ASSERT_EQ(server.idle_reaped(), 0u);

  HttpClientConnection conn;
  ASSERT_TRUE(conn.Connect("127.0.0.1", server.bound_port(), 1000).ok());
  int status = 0;
  ASSERT_TRUE(conn.Call("GET", "/ping", "", 2000, &status).ok());
  EXPECT_EQ(status, 200);

  // Now idle. The sweep (100 ms tick) should close us within a few ticks.
  const Timer timer;
  while (server.idle_reaped() == 0 && timer.ElapsedMillis() < 3000) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_GE(server.idle_reaped(), 1u);
  // The server closed its end; the client's liveness probe sees EOF.
  EXPECT_FALSE(conn.LooksAlive());

  // An ACTIVE connection is not reaped: keep a request/response cadence
  // faster than the idle bound going and the socket stays up.
  HttpClientConnection busy;
  ASSERT_TRUE(busy.Connect("127.0.0.1", server.bound_port(), 1000).ok());
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(busy.Call("GET", "/ping", "", 2000, &status).ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
  }
  EXPECT_TRUE(busy.connected());
  server.Stop();
}

TEST(HttpResponseTest, ErrorHelperFormatsJson) {
  const HttpResponse r = HttpResponse::Error(400, "bad \"input\"");
  EXPECT_EQ(r.status, 400);
  EXPECT_EQ(r.body, "{\"error\":\"bad \\\"input\\\"\"}");
}

}  // namespace
}  // namespace yask
