// Copyright (c) 2026 The YASK reproduction authors.
// Small string helpers shared by the text pipeline, dataset IO and the
// HTTP/JSON layer. Kept dependency-free.

#ifndef YASK_COMMON_STRING_UTIL_H_
#define YASK_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace yask {

/// Splits on a single character; keeps empty fields ("a,,b" -> 3 fields).
std::vector<std::string> Split(std::string_view s, char sep);

/// Splits on any whitespace run; drops empty fields.
std::vector<std::string> SplitWhitespace(std::string_view s);

/// Joins with a separator.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// ASCII lower-casing (the text pipeline only deals with ASCII keywords).
std::string ToLowerAscii(std::string_view s);

/// True if `s` begins with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// True if `s` ends with `suffix`.
bool EndsWith(std::string_view s, std::string_view suffix);

/// Parses a double; returns false on any trailing garbage.
bool ParseDouble(std::string_view s, double* out);

/// Parses a non-negative integer; returns false on overflow or garbage.
bool ParseUint64(std::string_view s, uint64_t* out);

}  // namespace yask

#endif  // YASK_COMMON_STRING_UTIL_H_
