// Copyright (c) 2026 The YASK reproduction authors.
// The coordinator-side response cache and its single-flight companion.
//
// Under production read traffic the same handful of hot queries arrives over
// and over (keyword popularity is Zipfian, map hotspots are few). Re-running
// the full shard fan-out for a byte-identical answer wastes replica capacity,
// so the coordinator can memoise RENDERED responses:
//
//   * ResultCache — an LRU + byte-bounded map from a canonical request key to
//     the exact HttpResponse served for it. Correctness hinges on the key,
//     not the cache: the caller folds the corpus ERROR EPOCH into every key,
//     so any replica failure (which may change which replica answers, and
//     therefore is the only event that could change an answer) makes every
//     prior entry unreachable. Entries also carry the query_id they were
//     rendered for, so POST /forget — which invalidates the server-side
//     meaning of that id — can surgically drop exactly the responses that
//     mention it.
//
//   * SingleFlight — request coalescing for cache misses. When N identical
//     queries are in flight, one leader computes and N-1 followers wait and
//     are served the leader's bytes. A leader failure never poisons the
//     followers: they are woken empty-handed and each computes independently.
//
// Both classes are transport-agnostic (they store HttpResponse values) and
// thread-safe. Neither knows anything about query semantics — canonical key
// construction lives with the service, which is the layer that knows which
// request fields are answer-relevant.

#ifndef YASK_SERVER_RESULT_CACHE_H_
#define YASK_SERVER_RESULT_CACHE_H_

#include <condition_variable>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "src/common/metrics.h"
#include "src/server/http_server.h"

namespace yask {

/// LRU + byte-bounded cache of rendered responses. Thread-safe.
class ResultCache {
 public:
  /// `max_entries` / `max_bytes` bound the cache (0 = that bound disabled;
  /// both 0 means unbounded — don't). `evictions` / `invalidations` are
  /// optional counters bumped once per entry dropped by capacity pressure /
  /// per InvalidateQuery or Clear victim.
  ResultCache(size_t max_entries, size_t max_bytes,
              Counter* evictions = nullptr, Counter* invalidations = nullptr)
      : max_entries_(max_entries), max_bytes_(max_bytes),
        evictions_(evictions), invalidations_(invalidations) {}

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// The cached response for `key`, marked most-recently-used; nullopt on
  /// miss. The returned value is a copy — serving it never races an evict.
  std::optional<HttpResponse> Get(const std::string& key);

  /// Inserts (or replaces) the response for `key`. `query_id` is the cached
  /// initial query this response mentions (the id /query minted, or the id
  /// /whynot answered for) — InvalidateQuery(query_id) will drop it.
  void Put(const std::string& key, const HttpResponse& resp,
           uint64_t query_id);

  /// Drops every entry rendered for `query_id` (the /forget contract: once
  /// the id is forgotten, a cached 200 that mentions it must not outlive
  /// it). Returns the number of entries dropped.
  size_t InvalidateQuery(uint64_t query_id);

  /// Drops everything; returns the number of entries dropped.
  size_t Clear();

  size_t entries() const;
  size_t bytes() const;

 private:
  struct Entry {
    HttpResponse resp;
    uint64_t query_id = 0;
    size_t cost = 0;  // Accounted bytes (body + content type + key).
    std::list<std::string>::iterator lru_pos;
  };

  /// Erases one entry (all three structures + the byte count). Caller holds
  /// mu_ and must not reuse the iterator.
  void EraseLocked(std::unordered_map<std::string, Entry>::iterator it);

  const size_t max_entries_;
  const size_t max_bytes_;
  Counter* const evictions_;
  Counter* const invalidations_;

  mutable std::mutex mu_;
  std::unordered_map<std::string, Entry> map_;
  std::list<std::string> lru_;  // Most recently used at the front.
  /// query_id -> keys rendered for it (a /query entry plus any /whynot
  /// entries that referenced the same initial query).
  std::unordered_multimap<uint64_t, std::string> by_query_;
  size_t bytes_ = 0;
};

/// Cache-miss coalescing: concurrent identical requests elect one leader to
/// compute; followers block until the leader finishes and share its bytes.
class SingleFlight {
 public:
  struct Flight {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    bool ok = false;        // Leader produced a shareable (200) response.
    HttpResponse resp;
  };

  /// A participant's handle. `leader == true` means this caller must compute
  /// and MUST later call Finish exactly once; followers call Wait.
  struct Ticket {
    std::shared_ptr<Flight> flight;
    bool leader = false;
  };

  /// Joins (or starts) the flight for `key`.
  Ticket Join(const std::string& key);

  /// Leader only: publishes the outcome and wakes every follower. `ok`
  /// false marks the flight failed — followers get nullopt from Wait and
  /// recompute independently, so one leader's 503 never fans out. The key
  /// is retired either way; the next miss starts a fresh flight.
  void Finish(const std::string& key, const Ticket& ticket, HttpResponse resp,
              bool ok);

  /// Follower only: blocks until the leader Finishes. Returns the leader's
  /// response, or nullopt if the leader failed.
  std::optional<HttpResponse> Wait(const Ticket& ticket);

 private:
  std::mutex mu_;
  std::unordered_map<std::string, std::shared_ptr<Flight>> flights_;
};

}  // namespace yask

#endif  // YASK_SERVER_RESULT_CACHE_H_
