// RemoteShard transport-retry contract, pinned at the socket level:
//   * a connection the server drops AFTER the request is written (half-close
//     mid-response) is retried on a fresh connection exactly `retries` more
//     times — with retries=1 that is exactly one retry — and only when the
//     retry fails too does the replica's error epoch bump;
//   * a retry that succeeds leaves the epoch untouched (the caller never saw
//     a failure, so the health stats must not claim one);
//   * a POOLED connection found half-closed between calls is discarded for
//     free — it burns neither a wire request nor the fresh-dial retry budget
//     (the keep-alive server legitimately recycles idle connections).

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>

#include "src/corpus/remote_corpus.h"
#include "src/server/http_server.h"

namespace yask {
namespace {

/// A raw TCP server that reads each connection's request headers and then
/// either DROPS the connection (half-close: the request was written, no
/// response ever comes) or answers a minimal HTTP 200 and keeps serving the
/// connection. The first `drop_first` connections are dropped.
class HalfCloseServer {
 public:
  explicit HalfCloseServer(int drop_first) : drop_first_(drop_first) {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_OK(listen_fd_ >= 0);
    int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    ASSERT_OK(::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                     sizeof(addr)) == 0);
    ASSERT_OK(::listen(listen_fd_, 16) == 0);
    socklen_t len = sizeof(addr);
    ASSERT_OK(::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                            &len) == 0);
    port_ = ntohs(addr.sin_port);
    thread_ = std::thread([this] { Serve(); });
  }

  ~HalfCloseServer() { Stop(); }

  void Stop() {
    if (listen_fd_ >= 0) {
      ::shutdown(listen_fd_, SHUT_RDWR);
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    if (thread_.joinable()) thread_.join();
  }

  uint16_t port() const { return port_; }
  int connections() const { return connections_.load(); }

 private:
  static void ASSERT_OK(bool ok) { ASSERT_TRUE(ok) << "socket setup failed"; }

  static bool ReadRequest(int fd) {
    std::string raw;
    char buf[4096];
    while (raw.find("\r\n\r\n") == std::string::npos) {
      const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
      if (n <= 0) return false;
      raw.append(buf, static_cast<size_t>(n));
    }
    return true;  // Shard requests in this test carry no body.
  }

  void Serve() {
    for (;;) {
      const int fd = ::accept(listen_fd_, nullptr, nullptr);
      if (fd < 0) return;  // Stopped.
      const int index = connections_.fetch_add(1);
      if (!ReadRequest(fd)) {
        ::close(fd);
        continue;
      }
      if (index < drop_first_) {
        ::close(fd);  // The half-close: request read, connection dropped.
        continue;
      }
      // Serve this connection for as long as the client keeps it.
      do {
        const char resp[] = "HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\nok";
        (void)!::send(fd, resp, sizeof(resp) - 1, MSG_NOSIGNAL);
      } while (ReadRequest(fd));
      ::close(fd);
    }
  }

  int drop_first_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<int> connections_{0};
  std::thread thread_;
};

RemoteShardOptions FastOptions(int retries) {
  RemoteShardOptions options;
  options.connect_timeout_ms = 1000;
  options.call_deadline_ms = 2000;
  options.retries = retries;
  return options;
}

TEST(RemoteShardRetryTest, HalfCloseRetriesExactlyOnceThenBumpsEpoch) {
  HalfCloseServer server(/*drop_first=*/1000);  // Every connection drops.
  RemoteShard shard("127.0.0.1", server.port(), FastOptions(/*retries=*/1));

  auto result = shard.Call("POST", "/shard/count", "");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
  // retries=1: the initial attempt plus exactly one fresh-connection retry.
  EXPECT_EQ(shard.requests(), 2u);
  // Both attempts failed -> ONE failed call -> epoch 1 (not 2: attempts are
  // not failures, calls are).
  EXPECT_EQ(shard.error_epoch(), 1u);

  // A second call repeats the contract and counts a second failure.
  result = shard.Call("POST", "/shard/count", "");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(shard.requests(), 4u);
  EXPECT_EQ(shard.error_epoch(), 2u);
}

TEST(RemoteShardRetryTest, SuccessfulRetryLeavesEpochUntouched) {
  HalfCloseServer server(/*drop_first=*/1);  // First connection drops.
  RemoteShard shard("127.0.0.1", server.port(), FastOptions(/*retries=*/1));

  auto result = shard.Call("POST", "/shard/count", "");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(*result, "ok");
  EXPECT_EQ(shard.requests(), 2u);   // Dropped attempt + successful retry.
  EXPECT_EQ(shard.error_epoch(), 0u);  // The caller never saw a failure.
}

TEST(RemoteShardRetryTest, StalePooledConnectionBurnsNoBudget) {
  auto server = std::make_unique<HttpServer>(uint16_t{0}, /*num_workers=*/2);
  server->Route("POST", "/ping", [](const HttpRequest&) {
    return HttpResponse{200, "text/plain", "ok"};
  });
  ASSERT_TRUE(server->Start().ok());
  const uint16_t port = server->bound_port();

  // retries=0: NO fresh-dial retry budget. If the stale pooled connection
  // consumed an attempt, the second call would have nothing left and fail.
  RemoteShard shard("127.0.0.1", port, FastOptions(/*retries=*/0));
  auto result = shard.Call("POST", "/ping", "");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(shard.requests(), 1u);

  // Kill the server; the pooled keep-alive connection is now half-closed.
  server->Stop();
  server.reset();
  auto revived = std::make_unique<HttpServer>(port, /*num_workers=*/2);
  revived->Route("POST", "/ping", [](const HttpRequest&) {
    return HttpResponse{200, "text/plain", "ok"};
  });
  ASSERT_TRUE(revived->Start().ok());

  result = shard.Call("POST", "/ping", "");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // The dead pooled socket was detected and discarded WITHOUT writing a
  // request: exactly one more wire request, no failure recorded.
  EXPECT_EQ(shard.requests(), 2u);
  EXPECT_EQ(shard.error_epoch(), 0u);
  revived->Stop();
}

}  // namespace
}  // namespace yask
