// Copyright (c) 2026 The YASK reproduction authors.
// A minimal embedded HTTP/1.1 server replacing the demo's Apache Tomcat
// (§3.3: "YASK's server side is built on Apache Tomcat"). Queries are sent
// "using the standard HTTP post method" (§3.2); this server accepts GET and
// POST, routes by exact path, and answers with Content-Length framed bodies.
//
// Design: one epoll event loop owns every socket — it accepts, reads request
// bytes as they become ready, and writes response bytes as the peer can take
// them — and a fixed worker pool runs the handlers. A connection costs a few
// hundred bytes of parse state while idle, not a blocked thread, so tens of
// thousands of keep-alive connections (HTTP/1.1 keep-alive — the
// coordinator->shard RPC path reuses one connection for thousands of small
// oracle calls, and now pipelines them) can sit on the loop while the workers
// stay busy with requests that actually arrived. Handlers never see the
// event loop: they get a fully-parsed request and return a response, exactly
// as before. A tiny blocking one-shot client (HttpFetch) is included for the
// tests; the persistent client lives in src/server/http_client.h.
//
// Hardening (the shard endpoints make this server internet-facing between
// nodes): oversized header blocks (> 1 MiB) and declared bodies (> 32 MiB)
// are rejected with 431/413 and the connection dropped; unparseable request
// lines get 400; a known path with the wrong method gets 405; requests that
// stall mid-transfer are dropped on a deadline; idle keep-alive connections
// are reaped by the loop's sweep (see idle_reaped()) without ever touching a
// worker, so a burst of abandoned connections cannot pin worker capacity.

#ifndef YASK_SERVER_HTTP_SERVER_H_
#define YASK_SERVER_HTTP_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/common/status.h"

namespace yask {

/// A parsed HTTP request.
struct HttpRequest {
  std::string method;  // "GET", "POST", ...
  std::string path;    // Path without the query string.
  std::map<std::string, std::string> query_params;
  /// Request headers, keys lowercased ("x-yask-trace" carries the
  /// propagated trace context on the coordinator->shard RPC path).
  std::map<std::string, std::string> headers;
  std::string body;
};

/// An HTTP response to be serialised.
struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  std::string body;

  static HttpResponse Json(std::string body) {
    return HttpResponse{200, "application/json", std::move(body)};
  }
  static HttpResponse Error(int status, const std::string& message);
};

/// The embedded server.
class HttpServer {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  /// `port` 0 picks an ephemeral port (see bound_port() after Start()).
  /// `keep_alive_idle_ms` bounds how long an idle keep-alive connection may
  /// sit between requests before the event loop's sweep recycles it
  /// (clients reconnect transparently).
  explicit HttpServer(uint16_t port = 0, size_t num_workers = 4,
                      int keep_alive_idle_ms = 5000);
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Registers a handler for an exact (method, path) pair.
  void Route(const std::string& method, const std::string& path,
             Handler handler);

  /// Registers a handler for every path starting with `prefix` (e.g.
  /// "/trace/" serves GET /trace/<id>); exact routes win, then the longest
  /// matching prefix. The handler reads the rest of the path off req.path.
  void RoutePrefix(const std::string& method, const std::string& prefix,
                   Handler handler);

  /// Binds, listens and spawns the event loop + worker threads.
  Status Start();

  /// Stops accepting and joins the workers, then the loop. Requests already
  /// being handled finish (their responses are still written); requests
  /// queued for a worker are abandoned and their connections closed unserved
  /// (so Stop() neither leaks fds nor blocks behind a backlog). Idempotent.
  void Stop();

  /// The actual port after Start() (useful with port 0).
  uint16_t bound_port() const { return bound_port_; }

  bool running() const { return running_.load(); }

  /// How many idle keep-alive connections the event loop's sweep has
  /// recycled (they never occupied a worker).
  uint64_t idle_reaped() const { return idle_reaped_.load(); }

 private:
  struct Conn;  // Per-connection loop state; defined in the .cc.
  struct Task {
    uint64_t conn_id;
    HttpRequest req;
    bool keep_alive;
  };
  struct Completion {
    uint64_t conn_id;
    std::string bytes;  // Fully serialised response.
    bool close_after;
  };

  void EventLoop();
  void WorkerLoop();
  void Wake();

  // Loop-thread-only helpers (Conn state is owned by the loop).
  void AcceptReady();
  void FlushCompletions();
  void SweepDeadlines();
  void CloseConn(uint64_t id);
  bool ReadReady(Conn* c);
  bool AdvanceRead(Conn* c);
  bool DirectError(Conn* c, int status, const std::string& message);
  bool StartWrite(Conn* c, std::string bytes, bool close_after);
  bool ContinueWrite(Conn* c);

  HttpResponse Dispatch(const HttpRequest& req) const;

  uint16_t port_;
  size_t num_workers_;
  int keep_alive_idle_ms_;
  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  uint16_t bound_port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> loop_exit_{false};
  std::atomic<uint64_t> idle_reaped_{0};

  std::map<std::pair<std::string, std::string>, Handler> routes_;
  // (method, prefix) -> handler; consulted after the exact map misses.
  std::map<std::pair<std::string, std::string>, Handler> prefix_routes_;

  std::thread loop_thread_;
  std::vector<std::thread> workers_;

  std::mutex task_mu_;
  std::condition_variable task_cv_;
  std::deque<Task> tasks_;  // Parsed requests awaiting a worker.

  std::mutex done_mu_;
  std::deque<Completion> done_;  // Responses awaiting the loop's writer.

  // Loop-owned: connections keyed by id (ids are never reused, unlike fds).
  uint64_t next_conn_id_ = 3;  // 1/2 tag the listener / wake eventfd.
  std::unordered_map<uint64_t, std::unique_ptr<Conn>> conns_;
};

/// Percent-decodes a URL component.
std::string UrlDecode(std::string_view s);

/// Blocking loopback HTTP client for tests and examples: sends one request,
/// returns the response body; the HTTP status is written to `status_out` if
/// non-null.
Result<std::string> HttpFetch(uint16_t port, const std::string& method,
                              const std::string& path_and_query,
                              const std::string& body = "",
                              int* status_out = nullptr);

}  // namespace yask

#endif  // YASK_SERVER_HTTP_SERVER_H_
