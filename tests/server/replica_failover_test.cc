// The replica tier's acceptance suite: a YaskService coordinator over
// loopback replica fleets (N shards x R ShardService replicas, every replica
// of a shard serving the same shard corpus) must answer BYTE-identically to
// the in-process sharded path at every fleet shape — and keep doing so, with
// ZERO client-visible errors, while one replica per shard is killed and
// restarted between and during requests. Mid-session failover (Eqn. (3)
// plane sessions and Eqn. (4) probe batches re-established and REPLAYED on a
// live sibling) is pinned at the oracle level, where the kill can be placed
// deterministically between session calls. Only a shard with no live replica
// at all may 503.

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "src/common/text.h"
#include "src/corpus/remote_corpus.h"
#include "src/corpus/remote_whynot_oracle.h"
#include "src/corpus/sharded_corpus.h"
#include "src/server/json.h"
#include "src/server/shard_service.h"
#include "src/server/yask_service.h"
#include "src/storage/hotel_generator.h"

namespace yask {
namespace {

/// N shards x R replicas of ShardService over one ShardedCorpus. Replicas of
/// a shard share the shard's corpus — the in-process stand-in for "booted
/// from the same snapshot file". Kill() + Restart() reuse the replica's
/// original port, like a supervised process coming back.
struct ReplicaFleet {
  const ShardedCorpus* corpus;
  std::vector<std::vector<std::unique_ptr<ShardService>>> services;
  std::vector<std::vector<uint16_t>> ports;

  ReplicaFleet(const ShardedCorpus& sharded, size_t replicas)
      : corpus(&sharded) {
    services.resize(sharded.num_shards());
    ports.resize(sharded.num_shards());
    for (size_t s = 0; s < sharded.num_shards(); ++s) {
      for (size_t r = 0; r < replicas; ++r) {
        auto service = std::make_unique<ShardService>(
            sharded.shard(s), InfoFor(s), ShardServiceOptions{});
        EXPECT_TRUE(service->Start().ok());
        ports[s].push_back(service->port());
        services[s].push_back(std::move(service));
      }
    }
  }

  ~ReplicaFleet() {
    for (auto& shard : services) {
      for (auto& service : shard) {
        if (service != nullptr) service->Stop();
      }
    }
  }

  ShardService::Info InfoFor(size_t s) const {
    ShardService::Info info;
    info.shard_index = static_cast<uint32_t>(s);
    info.shard_count = static_cast<uint32_t>(corpus->num_shards());
    info.global_bounds = corpus->bounds();
    info.dist_norm = corpus->dist_norm();
    info.to_global = corpus->shard_global_ids(s);
    info.router = corpus->router_description();
    return info;
  }

  /// "host:port|host:port" per shard — the coordinator's endpoint groups.
  std::vector<std::string> Endpoints() const {
    std::vector<std::string> groups;
    for (const auto& shard_ports : ports) {
      std::string group;
      for (const uint16_t port : shard_ports) {
        if (!group.empty()) group += '|';
        group += "127.0.0.1:" + std::to_string(port);
      }
      groups.push_back(std::move(group));
    }
    return groups;
  }

  void Kill(size_t s, size_t r) {
    services[s][r]->Stop();
    services[s][r].reset();
  }

  void Restart(size_t s, size_t r) {
    ShardServiceOptions options;
    options.port = ports[s][r];
    auto service = std::make_unique<ShardService>(corpus->shard(s),
                                                  InfoFor(s), options);
    // The freed port can linger briefly; a supervised restart retries.
    Status started = service->Start();
    for (int attempt = 0; !started.ok() && attempt < 50; ++attempt) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      started = service->Start();
    }
    ASSERT_TRUE(started.ok()) << started.ToString();
    services[s][r] = std::move(service);
  }

  void KillEverywhere(size_t r) {
    for (size_t s = 0; s < services.size(); ++s) Kill(s, r);
  }
  void RestartEverywhere(size_t r) {
    for (size_t s = 0; s < services.size(); ++s) Restart(s, r);
  }
};

/// Drops every (nested) "response_millis" field and re-dumps — the one
/// legitimate difference between transports.
JsonValue StripTiming(const JsonValue& v) {
  if (v.is_object()) {
    JsonValue out = JsonValue::MakeObject();
    for (const auto& [key, value] : v.object_items()) {
      if (key == "response_millis") continue;
      out.Set(key, StripTiming(value));
    }
    return out;
  }
  if (v.is_array()) {
    JsonValue out = JsonValue::MakeArray();
    for (const JsonValue& item : v.array_items()) {
      out.Append(StripTiming(item));
    }
    return out;
  }
  return v;
}

std::string Normalized(const std::string& payload) {
  auto parsed = JsonValue::Parse(payload);
  EXPECT_TRUE(parsed.ok()) << payload;
  if (!parsed.ok()) return payload;
  return StripTiming(parsed.value()).Dump();
}

/// POSTs the same body to both services and expects byte-identical payloads
/// (modulo timing) and identical statuses.
void ExpectSamePayload(const YaskService& remote, const YaskService& local,
                       const std::string& method, const std::string& path,
                       const std::string& body, const std::string& label,
                       int* status_out = nullptr) {
  int remote_status = 0;
  int local_status = 0;
  auto remote_body = HttpFetch(remote.port(), method, path, body,
                               &remote_status);
  auto local_body = HttpFetch(local.port(), method, path, body, &local_status);
  ASSERT_TRUE(remote_body.ok()) << label;
  ASSERT_TRUE(local_body.ok()) << label;
  EXPECT_EQ(remote_status, local_status) << label;
  EXPECT_EQ(Normalized(*remote_body), Normalized(*local_body)) << label;
  if (status_out != nullptr) *status_out = remote_status;
}

const char kQueryBody[] =
    "{\"x\":114.158,\"y\":22.281,\"keywords\":\"clean comfortable\","
    "\"k\":3}";

TEST(ReplicaFailoverTest, PayloadParityAcrossFleetShapes) {
  const ObjectStore store = GenerateHotelDataset();
  for (const uint32_t shards : {1u, 2u, 4u}) {
    const ShardedCorpus sharded =
        ShardedCorpus::Partition(store, GridShardRouter::Fit(store, shards));
    for (const size_t replicas : {1u, 2u, 3u}) {
      ReplicaFleet fleet(sharded, replicas);
      auto connected = RemoteCorpus::Connect(fleet.Endpoints());
      ASSERT_TRUE(connected.ok()) << connected.status().ToString();
      const RemoteCorpus remote_corpus = std::move(connected).value();

      YaskService remote(remote_corpus);
      YaskService local(sharded);
      ASSERT_TRUE(remote.Start().ok());
      ASSERT_TRUE(local.Start().ok());
      const std::string tag = std::to_string(shards) + " shards x " +
                              std::to_string(replicas) + " replicas";

      ExpectSamePayload(remote, local, "POST", "/query", kQueryBody,
                        tag + " query");
      const std::string whynot = "{\"query_id\":1,\"missing\":[\"" +
                                 store.Get(81).name +
                                 "\"],\"model\":\"both\"}";
      ExpectSamePayload(remote, local, "POST", "/whynot", whynot,
                        tag + " whynot");
      ExpectSamePayload(remote, local, "POST", "/forget",
                        "{\"query_id\":1}", tag + " forget");

      remote.Stop();
      local.Stop();
    }
  }
}

TEST(ReplicaFailoverTest, KillOneReplicaPerShardBetweenRequestsIsInvisible) {
  const ObjectStore store = GenerateHotelDataset();
  const ShardedCorpus sharded =
      ShardedCorpus::Partition(store, GridShardRouter::Fit(store, 2));
  ReplicaFleet fleet(sharded, /*replicas=*/2);
  RemoteShardOptions options;
  options.connect_timeout_ms = 500;
  options.retries = 1;
  auto connected = RemoteCorpus::Connect(fleet.Endpoints(), options);
  ASSERT_TRUE(connected.ok()) << connected.status().ToString();
  const RemoteCorpus remote_corpus = std::move(connected).value();

  YaskService remote(remote_corpus);
  YaskService local(sharded);
  ASSERT_TRUE(remote.Start().ok());
  ASSERT_TRUE(local.Start().ok());

  int status = 0;
  ExpectSamePayload(remote, local, "POST", "/query", kQueryBody, "query",
                    &status);
  EXPECT_EQ(status, 200);

  // Kill replica 0 of EVERY shard: the fleet is half gone, the contract is
  // not. Every why-not model must come back 200 and byte-identical.
  fleet.KillEverywhere(0);
  const std::string whynot = "{\"query_id\":1,\"missing\":[\"" +
                             store.Get(81).name + "\"],\"model\":\"both\"}";
  ExpectSamePayload(remote, local, "POST", "/whynot", whynot,
                    "whynot after kill", &status);
  EXPECT_EQ(status, 200);

  // The killed replicas come back; their siblings die instead.
  fleet.RestartEverywhere(0);
  fleet.KillEverywhere(1);
  const std::string keyword = "{\"query_id\":1,\"missing\":[\"" +
                              store.Get(81).name +
                              "\"],\"model\":\"keyword\"}";
  ExpectSamePayload(remote, local, "POST", "/whynot", keyword,
                    "whynot after second kill", &status);
  EXPECT_EQ(status, 200);
  ExpectSamePayload(remote, local, "POST", "/query", kQueryBody,
                    "query after second kill", &status);
  EXPECT_EQ(status, 200);

  // Zero client-visible errors: nothing ever reached the corpus-level error
  // epoch (which would have 503ed a request) — the kills were absorbed as
  // replica failovers.
  EXPECT_EQ(remote_corpus.error_epoch(), 0u);
  EXPECT_GE(remote_corpus.total_failovers(), 1u);

  remote.Stop();
  local.Stop();
}

TEST(ReplicaFailoverTest, PlaneSessionFailsOverMidSweep) {
  const ObjectStore store = GenerateHotelDataset();
  const ShardedCorpus sharded =
      ShardedCorpus::Partition(store, GridShardRouter::Fit(store, 2));
  ReplicaFleet fleet(sharded, /*replicas=*/2);
  RemoteShardOptions options;
  options.connect_timeout_ms = 500;
  options.retries = 1;
  auto connected = RemoteCorpus::Connect(fleet.Endpoints(), options);
  ASSERT_TRUE(connected.ok()) << connected.status().ToString();
  const RemoteCorpus remote_corpus = std::move(connected).value();
  const RemoteShardOracle oracle(remote_corpus);

  Query query;
  query.loc = Point{114.158, 22.281};
  query.doc = LookupKeywords("clean comfortable", remote_corpus.vocab());
  query.k = 3;
  const ObjectId missing = 81;

  // Reference sweep on an all-healthy fleet.
  PreferenceAdjustStats stats;
  std::vector<size_t> expected_counts;
  std::vector<double> expected_events;
  PlanePoint anchor{};
  {
    auto session =
        oracle.PrepareScorePlane(query, PrefAdjustMode::kOptimized);
    anchor = session->Anchor(missing);
    for (const double w : {0.3, 0.5, 0.7}) {
      expected_counts.push_back(session->CountAbove(w, anchor, &stats));
    }
    session->CollectCrossings(anchor, 0.0, 1.0, &expected_events, &stats);
    std::sort(expected_events.begin(), expected_events.end());
  }

  // The same sweep with one replica per shard dying MID-SESSION, twice, so
  // that wherever each shard's session landed, at least one kill hits it
  // and forces a re-open + replay on the sibling.
  auto session = oracle.PrepareScorePlane(query, PrefAdjustMode::kOptimized);
  EXPECT_EQ(session->CountAbove(0.3, anchor, &stats), expected_counts[0]);
  fleet.KillEverywhere(0);
  EXPECT_EQ(session->CountAbove(0.5, anchor, &stats), expected_counts[1]);
  fleet.RestartEverywhere(0);
  fleet.KillEverywhere(1);
  EXPECT_EQ(session->CountAbove(0.7, anchor, &stats), expected_counts[2]);
  std::vector<double> events;
  session->CollectCrossings(anchor, 0.0, 1.0, &events, &stats);
  std::sort(events.begin(), events.end());
  EXPECT_EQ(events, expected_events);

  EXPECT_EQ(remote_corpus.error_epoch(), 0u);
  EXPECT_GE(remote_corpus.total_failovers(), 1u);
}

TEST(ReplicaFailoverTest, ProbeBatchFailsOverMidBatchWithReplay) {
  const ObjectStore store = GenerateHotelDataset();
  const ShardedCorpus sharded =
      ShardedCorpus::Partition(store, GridShardRouter::Fit(store, 2));
  ReplicaFleet fleet(sharded, /*replicas=*/2);
  RemoteShardOptions options;
  options.connect_timeout_ms = 500;
  options.retries = 1;
  auto connected = RemoteCorpus::Connect(fleet.Endpoints(), options);
  ASSERT_TRUE(connected.ok()) << connected.status().ToString();
  const RemoteCorpus remote_corpus = std::move(connected).value();
  const RemoteShardOracle oracle(remote_corpus);

  Query query;
  query.loc = Point{114.158, 22.281};
  query.doc = LookupKeywords("clean comfortable quiet", remote_corpus.vocab());
  query.k = 3;
  const std::vector<OracleTargetSpec> specs{{&query, 81}, {&query, 120}};
  const std::vector<size_t> all{0, 1};

  auto snapshot = [&](RankProbeBatch& batch) {
    std::vector<std::tuple<size_t, size_t, bool>> rows;
    for (size_t i = 0; i < batch.size(); ++i) {
      rows.emplace_back(batch.lower(i), batch.upper(i), batch.resolved(i));
    }
    return rows;
  };

  // Reference: the same batch refined three levels on a healthy fleet.
  KeywordAdaptStats stats;
  std::vector<std::vector<std::tuple<size_t, size_t, bool>>> expected;
  {
    auto batch = oracle.ProbeRankBatch(specs, &stats);
    expected.push_back(snapshot(*batch));
    for (int level = 0; level < 3; ++level) {
      batch->RefineLevel(all);
      expected.push_back(snapshot(*batch));
    }
  }

  // Chaos run: kills between refine levels. The server-side frontiers of the
  // lost sessions must be REPLAYED on the sibling, or the bounds after the
  // failed-over refine would diverge.
  auto batch = oracle.ProbeRankBatch(specs, &stats);
  EXPECT_EQ(snapshot(*batch), expected[0]);
  batch->RefineLevel(all);
  EXPECT_EQ(snapshot(*batch), expected[1]);
  fleet.KillEverywhere(0);
  batch->RefineLevel(all);
  EXPECT_EQ(snapshot(*batch), expected[2]);
  fleet.RestartEverywhere(0);
  fleet.KillEverywhere(1);
  batch->RefineLevel(all);
  EXPECT_EQ(snapshot(*batch), expected[3]);

  EXPECT_EQ(remote_corpus.error_epoch(), 0u);
  EXPECT_GE(remote_corpus.total_failovers(), 1u);
}

TEST(ReplicaFailoverTest, BatchedSweepSegmentFailsOverWithReplay) {
  // The Eqn. (3) batched sweep under chaos: kills land so that a
  // /shard/plane/count_batch segment call hits a dead replica mid-sweep and
  // must re-open the session on the sibling, REPLAY its recorded history,
  // and re-issue the whole segment — returning the same counts the healthy
  // fleet returns.
  const ObjectStore store = GenerateHotelDataset();
  const ShardedCorpus sharded =
      ShardedCorpus::Partition(store, GridShardRouter::Fit(store, 2));
  ReplicaFleet fleet(sharded, /*replicas=*/2);
  RemoteShardOptions options;
  options.connect_timeout_ms = 500;
  options.retries = 1;
  auto connected = RemoteCorpus::Connect(fleet.Endpoints(), options);
  ASSERT_TRUE(connected.ok()) << connected.status().ToString();
  const RemoteCorpus remote_corpus = std::move(connected).value();
  const RemoteShardOracle oracle(remote_corpus);

  Query query;
  query.loc = Point{114.158, 22.281};
  query.doc = LookupKeywords("clean comfortable", remote_corpus.vocab());
  query.k = 3;
  const ObjectId missing = 81;
  const std::vector<double> weights{0.25, 0.4, 0.55, 0.7};

  // Reference segments on an all-healthy fleet.
  PreferenceAdjustStats stats;
  std::vector<size_t> expected;
  PlanePoint anchor{};
  {
    auto session =
        oracle.PrepareScorePlane(query, PrefAdjustMode::kOptimized);
    anchor = session->Anchor(missing);
    expected = session->CountAboveBatch(weights, {anchor}, &stats);
  }
  ASSERT_EQ(expected.size(), weights.size());

  // Chaos run: one replica per shard dies between segment calls, twice, so
  // wherever each shard's session landed at least one batched segment lands
  // on a dead replica and forces re-open + replay on the sibling.
  const std::vector<PlanePoint> anchors{anchor};
  auto session = oracle.PrepareScorePlane(query, PrefAdjustMode::kOptimized);
  EXPECT_EQ(session->CountAboveBatch({weights[0], weights[1]}, anchors,
                                     &stats),
            (std::vector<size_t>{expected[0], expected[1]}));
  fleet.KillEverywhere(0);
  EXPECT_EQ(session->CountAboveBatch({weights[2]}, anchors, &stats),
            (std::vector<size_t>{expected[2]}));
  fleet.RestartEverywhere(0);
  fleet.KillEverywhere(1);
  EXPECT_EQ(session->CountAboveBatch({weights[3]}, anchors, &stats),
            (std::vector<size_t>{expected[3]}));

  EXPECT_EQ(remote_corpus.error_epoch(), 0u);
  EXPECT_GE(remote_corpus.total_failovers(), 1u);

  // End to end on the degraded fleet (replica 1 of every shard still dead):
  // the full batched sweep — session open, segment fan-outs, floor cut —
  // must return the refinement the unsharded reference computes.
  PreferenceAdjustOptions batched;
  batched.batch_sweep = true;
  auto remote_refined = AdjustPreference(oracle, query, {missing}, batched);
  auto local_refined = AdjustPreference(store, query, {missing}, batched);
  ASSERT_TRUE(remote_refined.ok()) << remote_refined.status().ToString();
  ASSERT_TRUE(local_refined.ok());
  EXPECT_EQ(remote_refined->refined.w.ws, local_refined->refined.w.ws);
  EXPECT_EQ(remote_refined->refined.k, local_refined->refined.k);
  EXPECT_EQ(remote_refined->penalty.value, local_refined->penalty.value);
  EXPECT_EQ(remote_refined->refined_rank, local_refined->refined_rank);
  EXPECT_EQ(remote_corpus.error_epoch(), 0u);
}

TEST(ReplicaFailoverTest, ShardWithNoLiveReplicaIs503) {
  const ObjectStore store = GenerateHotelDataset();
  const ShardedCorpus sharded =
      ShardedCorpus::Partition(store, GridShardRouter::Fit(store, 2));
  ReplicaFleet fleet(sharded, /*replicas=*/2);
  RemoteShardOptions options;
  options.connect_timeout_ms = 300;
  options.call_deadline_ms = 1000;
  options.retries = 0;
  auto connected = RemoteCorpus::Connect(fleet.Endpoints(), options);
  ASSERT_TRUE(connected.ok());
  YaskService service(*connected);
  ASSERT_TRUE(service.Start().ok());

  int status = 0;
  auto body = HttpFetch(service.port(), "POST", "/query", kQueryBody,
                        &status);
  ASSERT_TRUE(body.ok());
  EXPECT_EQ(status, 200);

  // BOTH replicas of every shard die: failover has nowhere to go, and the
  // answer must be a clean 503, never a silently-partial 200.
  fleet.KillEverywhere(0);
  fleet.KillEverywhere(1);
  body = HttpFetch(service.port(), "POST", "/query", kQueryBody, &status);
  ASSERT_TRUE(body.ok());
  EXPECT_EQ(status, 503);
  EXPECT_NE(body->find("shard"), std::string::npos) << *body;

  service.Stop();
}

TEST(ReplicaFailoverTest, HealthReportsReplicaTopology) {
  const ObjectStore store = GenerateHotelDataset();
  const ShardedCorpus sharded =
      ShardedCorpus::Partition(store, GridShardRouter::Fit(store, 2));
  ReplicaFleet fleet(sharded, /*replicas=*/2);
  auto connected = RemoteCorpus::Connect(fleet.Endpoints());
  ASSERT_TRUE(connected.ok());
  YaskService service(*connected);
  ASSERT_TRUE(service.Start().ok());

  int status = 0;
  auto body = HttpFetch(service.port(), "GET", "/health", "", &status);
  ASSERT_TRUE(body.ok());
  EXPECT_EQ(status, 200);
  auto health = JsonValue::Parse(*body);
  ASSERT_TRUE(health.ok());
  const JsonValue& shards = health->Get("remote_shards");
  ASSERT_EQ(shards.size(), 2u);
  for (size_t s = 0; s < 2; ++s) {
    const JsonValue& row = shards.At(s);
    EXPECT_EQ(row.Get("replicas").size(), 2u);
    EXPECT_NE(row.Get("endpoint").as_string().find('|'), std::string::npos);
    for (size_t r = 0; r < 2; ++r) {
      const JsonValue& rep = row.Get("replicas").At(r);
      EXPECT_FALSE(rep.Get("endpoint").as_string().empty());
      EXPECT_FALSE(rep.Get("cooling").as_bool());
      EXPECT_EQ(rep.Get("error_epoch").as_number(), 0);
    }
  }

  service.Stop();
}

TEST(ReplicaFailoverTest, ConnectRejectsMixedReplicaGroup) {
  const ObjectStore store = GenerateHotelDataset();
  const ShardedCorpus sharded =
      ShardedCorpus::Partition(store, GridShardRouter::Fit(store, 2));
  ReplicaFleet fleet(sharded, /*replicas=*/1);
  // Both shards joined as "replicas" of ONE group: the identities disagree,
  // and failing over between different shards would corrupt every merge.
  const std::vector<std::string> mixed{
      "127.0.0.1:" + std::to_string(fleet.ports[0][0]) + "|127.0.0.1:" +
      std::to_string(fleet.ports[1][0])};
  auto connected = RemoteCorpus::Connect(mixed);
  ASSERT_FALSE(connected.ok());
  EXPECT_NE(connected.status().message().find("replica group"),
            std::string::npos)
      << connected.status().ToString();
}

}  // namespace
}  // namespace yask
