#include "src/whynot/whynot_oracle.h"

#include <algorithm>
#include <cassert>
#include <latch>

#include "src/common/timer.h"
#include "src/corpus/corpus.h"
#include "src/query/ranking.h"

namespace yask {

namespace {

/// Runs fn(s) for the given shard indices — on the pool when the context
/// has one and more than one shard is involved (the caller blocks until all
/// complete), inline otherwise — accumulating per-shard busy time when the
/// bench instrumentation is on. Pool tasks are leaves (they never
/// re-submit), so a caller waiting on the latch cannot deadlock the pool.
void ForShards(const OracleContext& ctx, const std::vector<size_t>& shards,
               const std::function<void(size_t)>& fn) {
  auto timed = [&](size_t s) {
    if (ctx.shard_busy_ms == nullptr) {
      fn(s);
      return;
    }
    Timer timer;
    fn(s);
    (*ctx.shard_busy_ms)[s] += timer.ElapsedMillis();
  };
  if (ctx.pool == nullptr || shards.size() <= 1) {
    for (size_t s : shards) timed(s);
    return;
  }
  std::latch latch(static_cast<ptrdiff_t>(shards.size()));
  for (size_t s : shards) {
    ctx.pool->Submit([&timed, &latch, s] {
      timed(s);
      latch.count_down();
    });
  }
  latch.wait();
}

/// ForShards over every shard view (the context caches the index list).
void ForEachShard(const OracleContext& ctx,
                  const std::function<void(size_t)>& fn) {
  assert(ctx.all_shards.size() == ctx.views.size());
  ForShards(ctx, ctx.all_shards, fn);
}

// --- Score-plane session -----------------------------------------------------

/// The one ScorePlaneSession implementation: one ShardPlane per shard view
/// (src/whynot/shard_primitives.h), merged by partition-sum /
/// partition-union. One shard with a null mapping reproduces the original
/// unsharded data path bit for bit.
class MultiShardScorePlaneSession : public ScorePlaneSession {
 public:
  MultiShardScorePlaneSession(const OracleContext* ctx,
                              const WhyNotOracle* oracle, const Query* query,
                              PrefAdjustMode mode)
      : ctx_(ctx),
        oracle_(oracle),
        query_(query),
        optimized_(mode == PrefAdjustMode::kOptimized) {
    planes_.resize(ctx_->views.size());
    ForEachShard(*ctx_, [&](size_t s) {
      planes_[s] = std::make_unique<ShardPlane>(ctx_->views[s], *query_,
                                                ctx_->dist_norm, optimized_);
    });
  }

  PlanePoint Anchor(ObjectId global_id) const override {
    // Computed from the object with the exact arithmetic BuildPlanePoints
    // uses, so the anchor is the same point in every layout.
    const ObjectScoreParts parts =
        ScorePartsOf(*query_, ctx_->dist_norm, oracle_->Object(global_id));
    return PlanePoint{1.0 - parts.sdist, parts.tsim, global_id};
  }

  size_t CountAbove(double w, const PlanePoint& anchor,
                    PreferenceAdjustStats* stats) const override {
    const size_t n = planes_.size();
    const double threshold = anchor.ScoreAt(w);

    // This sits on the weight sweep's innermost loop (one call per crossing
    // event per anchor): the single-shard layout — every legacy caller —
    // must stay allocation-free like the code it replaced, and the
    // multi-shard fan-out reuses per-session scratch.
    if (n == 1) {
      size_t count;
      if (ctx_->shard_busy_ms == nullptr) {
        count = planes_[0]->CountAbove(w, threshold, anchor,
                                       &stats->index_nodes_visited);
      } else {
        Timer timer;
        count = planes_[0]->CountAbove(w, threshold, anchor,
                                       &stats->index_nodes_visited);
        (*ctx_->shard_busy_ms)[0] += timer.ElapsedMillis();
      }
      if (!optimized_) ++stats->full_rescans;
      return count;
    }

    count_scratch_.assign(n, 0);
    node_scratch_.assign(n, 0);
    ForEachShard(*ctx_, [&](size_t s) {
      count_scratch_[s] =
          planes_[s]->CountAbove(w, threshold, anchor, &node_scratch_[s]);
    });
    size_t total = 0;
    for (size_t s = 0; s < n; ++s) {
      total += count_scratch_[s];
      stats->index_nodes_visited += node_scratch_[s];
    }
    if (!optimized_) ++stats->full_rescans;  // One logical dataset rescan.
    return total;
  }

  std::vector<size_t> CountAboveBatch(
      const std::vector<double>& weights,
      const std::vector<PlanePoint>& anchors,
      PreferenceAdjustStats* stats) const override {
    const size_t n = planes_.size();
    const size_t pairs = weights.size() * anchors.size();
    // ONE fan-out for the whole (weights × anchors) grid: each shard task
    // counts every pair, and per-pair totals are the same partition-sums
    // CountAbove computes — bit-identical merges, one pool dispatch.
    std::vector<std::vector<size_t>> counts(n);
    std::vector<size_t> nodes(n, 0);
    ForEachShard(*ctx_, [&](size_t s) {
      counts[s].resize(pairs);
      planes_[s]->CountAboveBatch(weights, anchors, &counts[s], &nodes[s]);
    });
    std::vector<size_t> total(pairs, 0);
    for (size_t s = 0; s < n; ++s) {
      for (size_t i = 0; i < pairs; ++i) total[i] += counts[s][i];
      stats->index_nodes_visited += nodes[s];
    }
    // One logical dataset rescan per (weight, anchor) pair, mirroring the
    // per-call accounting of CountAbove in basic mode.
    if (!optimized_) stats->full_rescans += pairs;
    return total;
  }

  void CollectCrossings(const PlanePoint& anchor, double wlo, double whi,
                        std::vector<double>* events,
                        PreferenceAdjustStats* stats) const override {
    const size_t n = planes_.size();
    std::vector<std::vector<double>> parts(n);
    std::vector<size_t> nodes(n, 0);
    ForEachShard(*ctx_, [&](size_t s) {
      planes_[s]->CollectCrossings(anchor, wlo, whi, &parts[s], &nodes[s]);
    });
    // Union in shard order; the caller sorts + deduplicates the merged set,
    // so the final event sequence is layout-independent.
    for (size_t s = 0; s < n; ++s) {
      events->insert(events->end(), parts[s].begin(), parts[s].end());
      stats->index_nodes_visited += nodes[s];
    }
  }

 private:
  const OracleContext* ctx_;
  const WhyNotOracle* oracle_;
  const Query* query_;
  bool optimized_;
  std::vector<std::unique_ptr<ShardPlane>> planes_;
  // Fan-out scratch (a session serves one algorithm invocation on one
  // thread; only the per-shard tasks inside one fan-out run concurrently,
  // each touching its own slot).
  mutable std::vector<size_t> count_scratch_;
  mutable std::vector<size_t> node_scratch_;
};

// --- Rank probes -------------------------------------------------------------

/// The RankProbeBatch over the context's shard views: per member a candidate
/// query copy plus one ShardRankRefiner per shard; rank interval of a member
/// = 1 + elementwise sum of its shard count intervals. RefineLevel descends
/// every listed member's open frontiers in ONE fan-out (each shard task
/// walks all members), so the pool — or, remotely, the wire — is hit once
/// per level instead of once per (member, level). Members live behind
/// unique_ptrs: the per-shard scorers point into the member's query copy,
/// which therefore must never move.
class ContextRankProbeBatch : public RankProbeBatch {
 public:
  ContextRankProbeBatch(const OracleContext* ctx, const WhyNotOracle* oracle,
                        const std::vector<OracleTargetSpec>& specs,
                        KeywordAdaptStats* stats)
      : ctx_(ctx), stats_(stats) {
    const size_t n = ctx_->views.size();
    shard_stats_.resize(n);
    members_.reserve(specs.size());
    for (const OracleTargetSpec& spec : specs) {
      members_.push_back(std::make_unique<Member>());
      Member& m = *members_.back();
      m.query = *spec.query;
      m.target = spec.target;
      m.target_score =
          ScorePartsOf(m.query, ctx_->dist_norm, oracle->Object(spec.target))
              .score;
      m.scorers.reserve(n);
      for (size_t s = 0; s < n; ++s) {
        assert(ctx_->views[s].kcr != nullptr &&
               "ProbeRankBatch requires the KcR-tree on every shard");
        m.scorers.emplace_back(*ctx_->views[s].store, m.query,
                               ctx_->dist_norm);
      }
      m.refiners.resize(n);
    }
    // One fan-out builds every member's per-shard refiner (a root-node bound
    // computation each). A batch of one is built inline: its per-shard cost
    // is far below the pool's dispatch + latch cost, and single probes are
    // created once per candidate per missing object — a hot loop.
    auto build_shard = [&](size_t s) {
      for (const auto& member : members_) {
        member->refiners[s] = std::make_unique<ShardRankRefiner>(
            ctx_->views[s], member->scorers[s], member->target,
            member->target_score, &shard_stats_[s]);
      }
    };
    if (members_.size() == 1) {
      for (size_t s = 0; s < n; ++s) build_shard(s);
    } else {
      ForEachShard(*ctx_, build_shard);
    }
  }

  ContextRankProbeBatch(const ContextRankProbeBatch&) = delete;
  ContextRankProbeBatch& operator=(const ContextRankProbeBatch&) = delete;

  ~ContextRankProbeBatch() override {
    for (const KeywordAdaptStats& s : shard_stats_) {
      stats_->kcr_nodes_expanded += s.kcr_nodes_expanded;
      stats_->objects_scored += s.objects_scored;
    }
  }

  size_t size() const override { return members_.size(); }

  size_t lower(size_t i) const override {
    size_t sum = 0;
    for (const auto& r : members_[i]->refiners) sum += r->count_lower();
    return sum + 1;
  }
  size_t upper(size_t i) const override {
    size_t sum = 0;
    for (const auto& r : members_[i]->refiners) sum += r->count_upper();
    return sum + 1;
  }
  bool resolved(size_t i) const override {
    for (const auto& r : members_[i]->refiners) {
      if (!r->resolved()) return false;
    }
    return true;
  }

  void RefineLevel(const std::vector<size_t>& members) override {
    // Only the shards with open frontiers for at least one listed member do
    // work; dispatching the rest would spend pool scheduling on no-ops in
    // the hottest /whynot loop.
    std::vector<size_t> active;
    for (size_t s = 0; s < ctx_->views.size(); ++s) {
      for (size_t m : members) {
        if (!members_[m]->refiners[s]->resolved()) {
          active.push_back(s);
          break;
        }
      }
    }
    ForShards(*ctx_, active, [&](size_t s) {
      for (size_t m : members) {
        ShardRankRefiner& r = *members_[m]->refiners[s];
        if (!r.resolved()) r.RefineLevel();
      }
    });
  }

 private:
  struct Member {
    Query query;
    ObjectId target = kInvalidObject;
    double target_score = 0.0;
    std::vector<Scorer> scorers;  // One per shard, bound to `query`.
    std::vector<std::unique_ptr<ShardRankRefiner>> refiners;  // One per shard.
  };

  const OracleContext* ctx_;
  std::vector<std::unique_ptr<Member>> members_;
  std::vector<KeywordAdaptStats> shard_stats_;  // Flushed into stats_ at end.
  KeywordAdaptStats* stats_;
};

/// The base-class fallback batch: independent per-spec probes, refined one
/// by one. Semantically identical to the fan-out batches, just without the
/// shared round-trips — custom oracles get batching correctness for free.
class WrappedRankProbeBatch : public RankProbeBatch {
 public:
  WrappedRankProbeBatch(const WhyNotOracle& oracle,
                        const std::vector<OracleTargetSpec>& specs,
                        KeywordAdaptStats* stats) {
    probes_.reserve(specs.size());
    for (const OracleTargetSpec& spec : specs) {
      probes_.push_back(oracle.ProbeRank(*spec.query, spec.target, stats));
    }
  }

  size_t size() const override { return probes_.size(); }
  size_t lower(size_t i) const override { return probes_[i]->lower(); }
  size_t upper(size_t i) const override { return probes_[i]->upper(); }
  bool resolved(size_t i) const override { return probes_[i]->resolved(); }
  void RefineLevel(const std::vector<size_t>& members) override {
    for (size_t m : members) {
      if (!probes_[m]->resolved()) probes_[m]->RefineLevel();
    }
  }

 private:
  std::vector<std::unique_ptr<RankProbe>> probes_;
};

}  // namespace

// --- ScorePlaneSession defaults ----------------------------------------------

std::vector<size_t> ScorePlaneSession::CountAboveBatch(
    const std::vector<double>& weights, const std::vector<PlanePoint>& anchors,
    PreferenceAdjustStats* stats) const {
  std::vector<size_t> counts;
  counts.reserve(weights.size() * anchors.size());
  for (const double w : weights) {
    for (const PlanePoint& anchor : anchors) {
      counts.push_back(CountAbove(w, anchor, stats));
    }
  }
  return counts;
}

// --- WhyNotOracle defaults ---------------------------------------------------

std::vector<size_t> WhyNotOracle::OutscoringCountBatch(
    const std::vector<OracleTargetSpec>& specs,
    KeywordAdaptStats* stats) const {
  std::vector<size_t> counts;
  counts.reserve(specs.size());
  for (const OracleTargetSpec& spec : specs) {
    counts.push_back(OutscoringCount(*spec.query, spec.target, stats));
  }
  return counts;
}

std::unique_ptr<RankProbeBatch> WhyNotOracle::ProbeRankBatch(
    const std::vector<OracleTargetSpec>& specs,
    KeywordAdaptStats* stats) const {
  return std::make_unique<WrappedRankProbeBatch>(*this, specs, stats);
}

// --- ContextWhyNotOracle -----------------------------------------------------

size_t ContextWhyNotOracle::size() const {
  size_t total = 0;
  for (const OracleShardView& v : ctx_.views) total += v.store->size();
  return total;
}

size_t ContextWhyNotOracle::Rank(const Query& query,
                                 ObjectId global_id) const {
  const double target_score =
      ScorePartsOf(query, ctx_.dist_norm, Object(global_id)).score;
  const size_t n = ctx_.views.size();
  std::vector<size_t> counts(n, 0);
  ForEachShard(ctx_, [&](size_t s) {
    const OracleShardView& view = ctx_.views[s];
    assert(view.setr != nullptr && "Rank requires the SetR-tree");
    const Scorer scorer(*view.store, query, ctx_.dist_norm);
    counts[s] = CountOutscoring(*view.store, *view.setr, scorer, target_score,
                                global_id, view.to_global);
  });
  size_t above = 0;
  for (size_t c : counts) above += c;
  return above + 1;
}

size_t ContextWhyNotOracle::OutscoringCount(const Query& query,
                                            ObjectId global_id,
                                            KeywordAdaptStats* stats) const {
  const double target_score =
      ScorePartsOf(query, ctx_.dist_norm, Object(global_id)).score;
  const size_t n = ctx_.views.size();
  std::vector<size_t> counts(n, 0);
  ForEachShard(ctx_, [&](size_t s) {
    const Scorer scorer(*ctx_.views[s].store, query, ctx_.dist_norm);
    counts[s] =
        ShardScanOutscoring(ctx_.views[s], scorer, target_score, global_id);
  });
  size_t above = 0;
  for (size_t s = 0; s < n; ++s) {
    above += counts[s];
    stats->objects_scored += ctx_.views[s].store->size();
  }
  return above;
}

std::vector<size_t> ContextWhyNotOracle::OutscoringCountBatch(
    const std::vector<OracleTargetSpec>& specs,
    KeywordAdaptStats* stats) const {
  // Target scores are resolved up front (the target of a spec need not live
  // in any particular shard), then one fan-out scans every spec per shard.
  std::vector<double> target_scores;
  target_scores.reserve(specs.size());
  for (const OracleTargetSpec& spec : specs) {
    target_scores.push_back(
        ScorePartsOf(*spec.query, ctx_.dist_norm, Object(spec.target)).score);
  }
  const size_t n = ctx_.views.size();
  std::vector<std::vector<size_t>> counts(n,
                                          std::vector<size_t>(specs.size()));
  ForEachShard(ctx_, [&](size_t s) {
    for (size_t i = 0; i < specs.size(); ++i) {
      const Scorer scorer(*ctx_.views[s].store, *specs[i].query,
                          ctx_.dist_norm);
      counts[s][i] = ShardScanOutscoring(ctx_.views[s], scorer,
                                         target_scores[i], specs[i].target);
    }
  });
  std::vector<size_t> total(specs.size(), 0);
  for (size_t s = 0; s < n; ++s) {
    for (size_t i = 0; i < specs.size(); ++i) total[i] += counts[s][i];
    stats->objects_scored += ctx_.views[s].store->size() * specs.size();
  }
  return total;
}

std::unique_ptr<ScorePlaneSession> ContextWhyNotOracle::PrepareScorePlane(
    const Query& query, PrefAdjustMode mode) const {
  return std::make_unique<MultiShardScorePlaneSession>(&ctx_, this, &query,
                                                       mode);
}

std::unique_ptr<RankProbe> ContextWhyNotOracle::ProbeRank(
    const Query& candidate, ObjectId global_id,
    KeywordAdaptStats* stats) const {
  const std::vector<OracleTargetSpec> specs{{&candidate, global_id}};
  return std::make_unique<BatchOfOneProbe>(
      std::make_unique<ContextRankProbeBatch>(&ctx_, this, specs, stats));
}

std::unique_ptr<RankProbeBatch> ContextWhyNotOracle::ProbeRankBatch(
    const std::vector<OracleTargetSpec>& specs,
    KeywordAdaptStats* stats) const {
  return std::make_unique<ContextRankProbeBatch>(&ctx_, this, specs, stats);
}

// --- LocalWhyNotOracle -------------------------------------------------------

LocalWhyNotOracle::LocalWhyNotOracle(const ObjectStore& store,
                                     const SetRTree* setr, const KcRTree* kcr)
    : store_(&store) {
  ctx_.views.push_back(OracleShardView{&store, setr, kcr, nullptr});
  ctx_.all_shards.push_back(0);
  ctx_.dist_norm = store.BoundsDiagonal();
  if (setr != nullptr) topk_.emplace(store, *setr);
}

LocalWhyNotOracle::LocalWhyNotOracle(const Corpus& corpus)
    : LocalWhyNotOracle(corpus.store(), &corpus.setr(),
                        corpus.has_kcr() ? &corpus.kcr() : nullptr) {}

TopKResult LocalWhyNotOracle::TopK(const Query& query, TopKStats* stats) const {
  assert(topk_.has_value() && "TopK requires the SetR-tree");
  return topk_->Query(query, stats);
}

}  // namespace yask
