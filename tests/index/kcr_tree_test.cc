#include "src/index/kcr_tree.h"

#include <gtest/gtest.h>

#include "src/storage/dataset_generator.h"

namespace yask {
namespace {

TEST(CountMapTest, AddDocCounts) {
  CountMap m;
  m.AddDoc(KeywordSet({1, 2}));
  m.AddDoc(KeywordSet({2, 3}));
  EXPECT_EQ(m.Get(1), 1u);
  EXPECT_EQ(m.Get(2), 2u);
  EXPECT_EQ(m.Get(3), 1u);
  EXPECT_EQ(m.Get(4), 0u);
  EXPECT_EQ(m.size(), 3u);
}

TEST(CountMapTest, MergeFromAddsPointwise) {
  CountMap a;
  a.AddDoc(KeywordSet({1, 2}));
  CountMap b;
  b.AddDoc(KeywordSet({2, 3}));
  b.AddDoc(KeywordSet({3}));
  a.MergeFrom(b);
  EXPECT_EQ(a.Get(1), 1u);
  EXPECT_EQ(a.Get(2), 2u);
  EXPECT_EQ(a.Get(3), 2u);
}

TEST(CountMapTest, TotalAndMaxSingleMatches) {
  CountMap m;
  m.AddDoc(KeywordSet({1, 2}));
  m.AddDoc(KeywordSet({1, 3}));
  m.AddDoc(KeywordSet({1}));
  const KeywordSet q({1, 2, 9});
  EXPECT_EQ(m.TotalMatches(q), 4u);      // count(1)=3 + count(2)=1.
  EXPECT_EQ(m.MaxSingleMatch(q), 3u);    // "1" appears in 3 docs.
  EXPECT_EQ(m.TotalMatches(KeywordSet({9})), 0u);
}

// Reconstruction of the paper's Fig. 2: R1 = {o1, o2, o3} with keywords
// Chinese x2, restaurant x3 and cnt = 3; R2 = {o4, o5} with Spanish x2,
// restaurant x2, cnt = 2; R3 merges to Chinese 2, Spanish 2, restaurant 5...
// (The figure's root counts restaurant 5 because it aggregates object counts
// of its subtree; with our two-node layout the root sees restaurant 3+2 = 5.)
TEST(KcSummaryTest, PaperFigureTwoExample) {
  Vocabulary vocab;
  const TermId chinese = vocab.Intern("chinese");
  const TermId spanish = vocab.Intern("spanish");
  const TermId restaurant = vocab.Intern("restaurant");

  auto obj = [&](std::vector<TermId> kw) {
    SpatialObject o;
    o.doc = KeywordSet(std::move(kw));
    return o;
  };
  KcSummary r1;
  r1.AddObject(obj({chinese, restaurant}));
  r1.AddObject(obj({chinese, restaurant}));
  r1.AddObject(obj({restaurant}));
  EXPECT_EQ(r1.cnt, 3u);
  EXPECT_EQ(r1.counts.Get(chinese), 2u);
  EXPECT_EQ(r1.counts.Get(restaurant), 3u);

  KcSummary r2;
  r2.AddObject(obj({spanish, restaurant}));
  r2.AddObject(obj({spanish, restaurant}));
  EXPECT_EQ(r2.cnt, 2u);
  EXPECT_EQ(r2.counts.Get(spanish), 2u);
  EXPECT_EQ(r2.counts.Get(restaurant), 2u);

  KcSummary r3 = r1;
  r3.Merge(r2);
  EXPECT_EQ(r3.cnt, 5u);
  EXPECT_EQ(r3.counts.Get(chinese), 2u);
  EXPECT_EQ(r3.counts.Get(spanish), 2u);
  EXPECT_EQ(r3.counts.Get(restaurant), 5u);
}

TEST(KcSummaryTest, DocLengthExtremes) {
  KcSummary s;
  SpatialObject a;
  a.doc = KeywordSet({1});
  SpatialObject b;
  b.doc = KeywordSet({1, 2, 3, 4});
  s.AddObject(a);
  EXPECT_EQ(s.min_doc_len, 1u);
  EXPECT_EQ(s.max_doc_len, 1u);
  s.AddObject(b);
  EXPECT_EQ(s.min_doc_len, 1u);
  EXPECT_EQ(s.max_doc_len, 4u);
}

ObjectStore MakeStore(size_t n, uint64_t seed = 42) {
  DatasetSpec spec;
  spec.num_objects = n;
  spec.seed = seed;
  spec.vocabulary_size = 40;
  spec.min_keywords = 2;
  spec.max_keywords = 7;
  return GenerateDataset(spec);
}

TEST(KcRTreeTest, BulkLoadValidates) {
  const ObjectStore store = MakeStore(2500);
  KcRTree tree(&store);
  tree.BulkLoad();
  Status s = tree.Validate();
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(tree.node(tree.root()).summary.cnt, 2500u);
}

TEST(KcRTreeTest, InsertDeleteKeepSummaries) {
  const ObjectStore store = MakeStore(500, 5);
  KcRTree tree(&store);
  for (ObjectId id = 0; id < 500; ++id) tree.Insert(id);
  ASSERT_TRUE(tree.Validate().ok());
  for (ObjectId id = 0; id < 500; id += 5) ASSERT_TRUE(tree.Delete(id));
  Status s = tree.Validate();
  ASSERT_TRUE(s.ok()) << s.ToString();
}

// The central contract for keyword adaption: BoundOutscoringCount must
// bracket the true tie-free count of outscoring objects in every node, for
// random queries and thresholds.
class KcrBoundProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(KcrBoundProperty, CountBoundsBracketTruth) {
  const ObjectStore store = MakeStore(1200, GetParam());
  KcRTree tree(&store);
  tree.BulkLoad();
  Rng rng(GetParam() * 31 + 7);

  for (int trial = 0; trial < 25; ++trial) {
    Query q;
    q.loc = SampleQueryLocation(store, &rng);
    q.doc = SampleQueryKeywords(store, 1 + rng.NextBounded(4), &rng);
    q.k = 5;
    q.w = Weights::FromWs(rng.NextDouble(0.1, 0.9));
    Scorer scorer(store, q);
    // Use a real object's score as the threshold (mirrors the algorithm).
    const ObjectId target =
        static_cast<ObjectId>(rng.NextBounded(store.size()));
    const double threshold = scorer.Score(target);

    std::vector<KcRTree::NodeId> stack{tree.root()};
    while (!stack.empty()) {
      const auto& node = tree.node(stack.back());
      stack.pop_back();
      const CountBounds b =
          BoundOutscoringCount(scorer, node.rect, node.summary, threshold);
      EXPECT_LE(b.lower, b.upper);
      EXPECT_LE(b.upper, node.summary.cnt);

      // True count of strictly-outscoring objects under the node, by walking
      // the subtree.
      size_t truth = 0;
      std::vector<const KcRTree::Node*> walk{&node};
      while (!walk.empty()) {
        const KcRTree::Node* n = walk.back();
        walk.pop_back();
        if (n->is_leaf) {
          for (const auto& e : n->entries) {
            if (scorer.Score(e.id) > threshold) ++truth;
          }
        } else {
          for (const auto& e : n->entries) walk.push_back(&tree.node(e.id));
        }
      }
      EXPECT_LE(b.lower, truth)
          << "lower bound overshoots true count " << truth;
      EXPECT_GE(b.upper, truth)
          << "upper bound undershoots true count " << truth;

      if (!node.is_leaf) {
        for (const auto& e : node.entries) stack.push_back(e.id);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KcrBoundProperty, ::testing::Values(2, 9, 77));

TEST(KcrBoundTest, EmptyNodeGivesZeroBounds) {
  ObjectStore store;
  store.mutable_vocab()->Intern("x");
  store.Add(Point{0.5, 0.5}, KeywordSet({0}));
  Query q;
  q.loc = Point{0, 0};
  q.doc = KeywordSet({0});
  q.k = 1;
  Scorer scorer(store, q);
  KcSummary empty;
  const CountBounds b = BoundOutscoringCount(
      scorer, Rect::FromPoint(Point{0.5, 0.5}), empty, 0.1);
  EXPECT_EQ(b.lower, 0u);
  EXPECT_EQ(b.upper, 0u);
}

TEST(KcrBoundTest, ImpossibleThresholdGivesZeroUpper) {
  ObjectStore store;
  store.mutable_vocab()->Intern("x");
  for (int i = 0; i < 10; ++i) {
    store.Add(Point{0.5, 0.5}, KeywordSet({0}));
  }
  KcRTree tree(&store);
  tree.BulkLoad();
  Query q;
  q.loc = Point{0.5, 0.5};
  q.doc = KeywordSet({0});
  q.k = 1;
  Scorer scorer(store, q);
  const auto& root = tree.node(tree.root());
  // Threshold above the maximum possible score (ws + wt = 1).
  const CountBounds b =
      BoundOutscoringCount(scorer, root.rect, root.summary, 1.5);
  EXPECT_EQ(b.upper, 0u);
}

TEST(KcrBoundTest, TrivialThresholdCountsEverything) {
  ObjectStore store;
  store.mutable_vocab()->Intern("x");
  for (int i = 0; i < 10; ++i) {
    store.Add(Point{0.5, 0.5}, KeywordSet({0}));
  }
  KcRTree tree(&store);
  tree.BulkLoad();
  Query q;
  q.loc = Point{0.5, 0.5};
  q.doc = KeywordSet({0});
  q.k = 1;
  Scorer scorer(store, q);
  const auto& root = tree.node(tree.root());
  // Every object scores ws*1 + wt*1 = 1 > 0.5: all must outscore.
  const CountBounds b =
      BoundOutscoringCount(scorer, root.rect, root.summary, 0.5);
  EXPECT_EQ(b.lower, 10u);
  EXPECT_EQ(b.upper, 10u);
}

}  // namespace
}  // namespace yask
