#include "src/common/geo.h"

#include <gtest/gtest.h>

#include <cmath>

namespace yask {
namespace {

TEST(HaversineTest, ZeroDistance) {
  const Point p{114.17, 22.30};
  EXPECT_DOUBLE_EQ(HaversineKm(p, p), 0.0);
}

TEST(HaversineTest, KnownCityPairs) {
  // Hong Kong (114.17E, 22.30N) to Macau (113.54E, 22.19N): ~65 km.
  EXPECT_NEAR(HaversineKm({114.17, 22.30}, {113.54, 22.19}), 65.0, 3.0);
  // London (-0.13, 51.51) to Paris (2.35, 48.86): ~344 km.
  EXPECT_NEAR(HaversineKm({-0.13, 51.51}, {2.35, 48.86}), 344.0, 5.0);
  // Quarter of the equator: (0,0) to (90,0) = 10007.5 km.
  EXPECT_NEAR(HaversineKm({0, 0}, {90, 0}), 10007.5, 10.0);
}

TEST(HaversineTest, Symmetry) {
  const Point a{114.17, 22.30};
  const Point b{113.54, 22.19};
  EXPECT_DOUBLE_EQ(HaversineKm(a, b), HaversineKm(b, a));
}

TEST(HaversineTest, AntipodalIsHalfCircumference) {
  EXPECT_NEAR(HaversineKm({0, 0}, {180, 0}), 3.14159265 * kEarthRadiusKm,
              1.0);
}

TEST(GeoBoundingBoxTest, ContainsDisk) {
  const Point center{114.17, 22.30};
  const double radius = 5.0;  // km.
  const Rect box = GeoBoundingBox(center, radius);
  EXPECT_TRUE(box.Contains(center));
  // Sample points on the disk boundary in the four cardinal directions.
  const double dlat = radius / kEarthRadiusKm * 180.0 / 3.14159265;
  EXPECT_TRUE(box.Contains(Point{center.x, center.y + dlat * 0.999}));
  EXPECT_TRUE(box.Contains(Point{center.x, center.y - dlat * 0.999}));
  // Points well outside must not be needed, but the box is conservative:
  // everything within the radius is inside.
  for (double bearing = 0; bearing < 360; bearing += 45) {
    const double rad = bearing * 3.14159265 / 180.0;
    const Point p{center.x + dlat * std::sin(rad) / std::cos(center.y * 3.14159265 / 180.0) * 0.99,
                  center.y + dlat * std::cos(rad) * 0.99};
    EXPECT_TRUE(box.Contains(p)) << "bearing " << bearing;
    EXPECT_LE(HaversineKm(center, p), radius * 1.05);
  }
}

TEST(GeoBoundingBoxTest, PoleDegeneratesToFullLongitude) {
  const Rect box = GeoBoundingBox(Point{10.0, 90.0}, 10.0);
  EXPECT_DOUBLE_EQ(box.min_x, -180.0);
  EXPECT_DOUBLE_EQ(box.max_x, 180.0);
  EXPECT_DOUBLE_EQ(box.max_y, 90.0);
}

TEST(GeoBoundingBoxTest, ClampsToValidRanges) {
  const Rect box = GeoBoundingBox(Point{179.9, 0.0}, 100.0);
  EXPECT_LE(box.max_x, 180.0);
  const Rect box2 = GeoBoundingBox(Point{0.0, -89.95}, 100.0);
  EXPECT_GE(box2.min_y, -90.0);
}

}  // namespace
}  // namespace yask
