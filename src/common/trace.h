// Copyright (c) 2026 The YASK reproduction authors.
// Distributed request tracing. The coordinator mints a trace_id per traced
// request (POST /query, POST /whynot), records a span tree as the request
// flows through the engine (route → top-k/why-not stages → per-replica RPC
// fan-outs), and propagates `trace_id:parent_span` to shard servers in an
// `x-yask-trace` request header so each RPC's shard-side work appears as a
// CHILD span of the coordinator's RPC span. Both tiers keep finished traces
// in a bounded in-memory TraceStore served at GET /trace/<id>; traces
// slower than a threshold are PINNED so the interesting ones survive ring
// eviction (docs/observability.md, "Span model").
//
// Recording is opt-in per thread: a ScopedSpan is a no-op unless a
// TraceRecorder is installed in the thread-local TraceContext, so library
// code can be instrumented unconditionally at negligible cost. Fan-out code
// that hops threads captures CurrentTraceContext() before submitting to a
// pool and re-installs it in the task with a TraceContextScope.

#ifndef YASK_COMMON_TRACE_H_
#define YASK_COMMON_TRACE_H_

#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "src/common/timer.h"

namespace yask {

/// One completed span. Span ids are drawn from a process-wide counter
/// seeded randomly at startup, so ids from different processes (coordinator
/// vs shard servers) do not collide when a trace is stitched together.
struct TraceSpan {
  uint64_t id = 0;
  uint64_t parent = 0;  // 0 = no parent (the root of this node's subtree)
  std::string name;     // bounded vocabulary: "POST /whynot", "rpc /shard/…"
  std::string detail;   // free-form: replica endpoint, batch sizes, …
  double start_ms = 0;  // relative to this node's recorder epoch
  double duration_ms = 0;
};

/// Collects the spans of ONE trace on ONE node. Thread-safe; bounded.
/// Slots are allocated at span START, so ancestors always precede (and are
/// stored before) their descendants: when a deep fan-out overflows the cap,
/// the TAIL of leaf rpc spans is shed, never the stage spans above them.
class TraceRecorder {
 public:
  static constexpr size_t kMaxSpans = 1024;
  /// StartSpan's "trace full" slot; FinishSpan ignores it.
  static constexpr size_t kDroppedSlot = static_cast<size_t>(-1);

  explicit TraceRecorder(std::string trace_id);

  const std::string& trace_id() const { return trace_id_; }
  double ElapsedMs() const { return timer_.ElapsedMillis(); }

  /// Stores an opening span (duration 0 until finished) and returns its
  /// slot, or kDroppedSlot when the trace is full.
  size_t StartSpan(TraceSpan span);
  /// Stamps the duration (and final detail, if non-empty) when it closes.
  void FinishSpan(size_t slot, double duration_ms, std::string detail);
  /// Moves the recorded spans out (ordered by start time).
  std::vector<TraceSpan> TakeSpans();
  size_t dropped() const;

 private:
  const std::string trace_id_;
  const Timer timer_;
  mutable std::mutex mu_;
  std::vector<TraceSpan> spans_;
  size_t dropped_ = 0;
};

/// What a thread is currently tracing: the recorder plus the span that new
/// child spans should attach to.
struct TraceContext {
  TraceRecorder* recorder = nullptr;
  uint64_t parent_span = 0;
};

/// The calling thread's context ({nullptr, 0} when not tracing).
TraceContext CurrentTraceContext();

/// Process-wide span id allocator (randomly seeded at startup).
uint64_t NextSpanId();

/// Mints a 16-hex-char trace id.
std::string MintTraceId();

/// Installs `ctx` for the lifetime of the scope and restores the previous
/// context on destruction. Used on request threads (install the request's
/// recorder) and inside pool tasks (re-install the submitter's context).
class TraceContextScope {
 public:
  explicit TraceContextScope(TraceContext ctx);
  ~TraceContextScope();
  TraceContextScope(const TraceContextScope&) = delete;
  TraceContextScope& operator=(const TraceContextScope&) = delete;

 private:
  TraceContext previous_;
};

/// RAII span: starts on construction, records on destruction. No-op when
/// the thread has no recorder. While alive, it is the thread's parent span.
class ScopedSpan {
 public:
  explicit ScopedSpan(std::string name, std::string detail = {});
  ~ScopedSpan();
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  bool active() const { return recorder_ != nullptr; }
  uint64_t id() const { return id_; }
  void set_detail(std::string detail) { detail_ = std::move(detail); }

 private:
  TraceRecorder* recorder_ = nullptr;
  uint64_t id_ = 0;
  uint64_t restore_parent_ = 0;
  size_t slot_ = 0;
  std::string detail_;
  double start_ms_ = 0;
};

/// Wire format of the propagated header value: "<trace_id>:<parent hex>".
/// kTraceHeaderName is the lowercased HTTP header key.
inline constexpr char kTraceHeaderName[] = "x-yask-trace";

/// "" when the thread is not tracing; otherwise a full header line
/// "x-yask-trace: <id>:<parent>\r\n" ready to splice into a request.
std::string TraceHeaderLine();

/// Parses a header value. Returns false (and leaves outputs untouched) on
/// malformed input — old/foreign clients simply yield an untraced request.
bool ParseTraceHeaderValue(const std::string& value, std::string* trace_id,
                           uint64_t* parent_span);

/// Bounded store of finished traces, keyed by trace id. Multiple Add()
/// calls for the same id append (a shard server sees one RPC at a time;
/// the coordinator stitches). Traces whose total_ms meets the slow
/// threshold are pinned: they survive ring eviction until the (also
/// bounded) pinned set itself overflows.
class TraceStore {
 public:
  /// Per-trace span cap: a shard server Add()s one batch per RPC of the
  /// same trace, so a deep why-not fan-out would otherwise grow one Stored
  /// entry without bound. Later spans past the cap are dropped.
  static constexpr size_t kMaxSpansPerTrace = 4096;

  struct Stored {
    std::string trace_id;
    std::vector<TraceSpan> spans;
    double total_ms = 0;
    bool pinned = false;
  };

  explicit TraceStore(size_t capacity = 128, size_t pinned_capacity = 64,
                      double slow_threshold_ms = 250.0);

  void set_slow_threshold_ms(double ms);
  double slow_threshold_ms() const;

  void Add(const std::string& trace_id, std::vector<TraceSpan> spans,
           double total_ms);
  std::optional<Stored> Get(const std::string& trace_id) const;

  size_t size() const;
  size_t pinned_count() const;

 private:
  void EvictLocked();

  const size_t capacity_;
  const size_t pinned_capacity_;
  mutable std::mutex mu_;
  double slow_threshold_ms_;
  std::map<std::string, Stored> traces_;
  std::deque<std::string> order_;  // insertion order, pinned ids skipped
  std::deque<std::string> pinned_order_;
};

}  // namespace yask

#endif  // YASK_COMMON_TRACE_H_
