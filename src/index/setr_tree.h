// Copyright (c) 2026 The YASK reproduction authors.
// The SetR-tree (§3.3, ref [6]): an R-tree whose every node carries the
// intersection set and the union set of the keyword sets of all objects
// indexed beneath it. These two sets give admissible bounds on the Jaccard
// similarity — and hence on the full ranking score — of any object under a
// node, which powers the best-first top-k algorithm and the explanation
// generator's pruned rank counting.
//
// Bounds (DESIGN.md D1). For any object o under node N with union set U and
// intersection set I, and query keyword set q:
//     I ⊆ o.doc ⊆ U
//   ⇒ |o.doc ∩ q| ≤ |U ∩ q|      and   |o.doc ∪ q| ≥ |I ∪ q|
//   ⇒ TSim(o,q)  ≤ min(1, |U ∩ q| / |I ∪ q|)          (upper bound)
//   ⇒ TSim(o,q)  ≥ |I ∩ q| / |U ∪ q|                   (lower bound)
// Combined with MINDIST/MAXDIST on the node MBR they bound ST(o, q).

#ifndef YASK_INDEX_SETR_TREE_H_
#define YASK_INDEX_SETR_TREE_H_

#include "src/common/keyword_set.h"
#include "src/index/rtree.h"
#include "src/query/scoring.h"

namespace yask {

/// Node summary of the SetR-tree: union set, intersection set, object count,
/// plus min/max document lengths. The lengths are an extension over the
/// paper's description (which names only the intersection and union sets);
/// they cost 8 bytes per node and markedly tighten the Jaccard denominator
/// bound when node intersections are empty (common for popular keywords) —
/// see DESIGN.md D1.
struct SetSummary {
  KeywordSet union_set;
  KeywordSet inter_set;
  uint32_t count = 0;
  uint32_t min_doc_len = 0;
  uint32_t max_doc_len = 0;

  void Clear() {
    union_set = KeywordSet();
    inter_set = KeywordSet();
    count = 0;
    min_doc_len = 0;
    max_doc_len = 0;
  }

  void AddObject(const SpatialObject& o) {
    const uint32_t len = static_cast<uint32_t>(o.doc.size());
    if (count == 0) {
      union_set = o.doc;
      inter_set = o.doc;
      min_doc_len = len;
      max_doc_len = len;
    } else {
      union_set = KeywordSet::Union(union_set, o.doc);
      inter_set = KeywordSet::Intersection(inter_set, o.doc);
      min_doc_len = std::min(min_doc_len, len);
      max_doc_len = std::max(max_doc_len, len);
    }
    ++count;
  }

  void Merge(const SetSummary& other) {
    if (other.count == 0) return;
    if (count == 0) {
      *this = other;
      return;
    }
    union_set = KeywordSet::Union(union_set, other.union_set);
    inter_set = KeywordSet::Intersection(inter_set, other.inter_set);
    min_doc_len = std::min(min_doc_len, other.min_doc_len);
    max_doc_len = std::max(max_doc_len, other.max_doc_len);
    count += other.count;
  }

  bool Equals(const SetSummary& other) const {
    return count == other.count && min_doc_len == other.min_doc_len &&
           max_doc_len == other.max_doc_len && union_set == other.union_set &&
           inter_set == other.inter_set;
  }

  size_t MemoryBytes() const {
    return (union_set.size() + inter_set.size()) * sizeof(TermId);
  }
};

/// The SetR-tree index.
using SetRTree = RTreeT<SetSummary>;

/// Bound flavour (ablation D1): the paper describes only the union and
/// intersection sets; kLengthTightened additionally exploits the per-node
/// min/max document lengths. Both are admissible; kLengthTightened dominates
/// (is never looser). bench_ablation quantifies the difference.
enum class SetRBoundVariant {
  kLengthTightened,
  kSetsOnly,
};

/// Upper bound on TSim(o, q) for any object under a node with this summary.
double UpperBoundTSim(
    const SetSummary& s, const KeywordSet& query_doc,
    SetRBoundVariant variant = SetRBoundVariant::kLengthTightened);

/// Lower bound on TSim(o, q) for any object under a node with this summary.
double LowerBoundTSim(
    const SetSummary& s, const KeywordSet& query_doc,
    SetRBoundVariant variant = SetRBoundVariant::kLengthTightened);

/// Upper bound on ST(o, q) for any object under the node (rect + summary).
double UpperBoundScore(
    const Scorer& scorer, const Rect& mbr, const SetSummary& s,
    SetRBoundVariant variant = SetRBoundVariant::kLengthTightened);

/// Lower bound on ST(o, q) for any object under the node.
double LowerBoundScore(
    const Scorer& scorer, const Rect& mbr, const SetSummary& s,
    SetRBoundVariant variant = SetRBoundVariant::kLengthTightened);

extern template class RTreeT<SetSummary>;

}  // namespace yask

#endif  // YASK_INDEX_SETR_TREE_H_
