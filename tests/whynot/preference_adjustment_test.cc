#include "src/whynot/preference_adjustment.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <tuple>

#include "src/index/setr_tree.h"
#include "src/query/ranking.h"
#include "src/query/topk_engine.h"
#include "src/storage/dataset_generator.h"

namespace yask {
namespace {

ObjectStore MakeStore(size_t n, uint64_t seed) {
  DatasetSpec spec;
  spec.num_objects = n;
  spec.seed = seed;
  spec.vocabulary_size = 60;
  return GenerateDataset(spec);
}

/// Picks a missing-object set: objects ranked just outside the top-k.
std::vector<ObjectId> PickMissing(const ObjectStore& store, const Query& q,
                                  size_t count, size_t offset = 3) {
  Query probe = q;
  probe.k = static_cast<uint32_t>(q.k + offset + count + 5);
  const TopKResult wide = TopKScan(store, probe);
  std::vector<ObjectId> missing;
  for (size_t i = q.k + offset; i < wide.size() && missing.size() < count;
       ++i) {
    missing.push_back(wide[i].id);
  }
  return missing;
}

TEST(AdjustPreferenceTest, RejectsInvalidInput) {
  const ObjectStore store = MakeStore(100, 1);
  Query q;
  q.loc = Point{0.5, 0.5};
  q.doc = KeywordSet({0});
  q.k = 3;
  EXPECT_FALSE(AdjustPreference(store, q, {}).ok());           // Empty M.
  EXPECT_FALSE(AdjustPreference(store, q, {999999}).ok());     // Unknown id.
  Query bad = q;
  bad.doc = KeywordSet();
  EXPECT_FALSE(AdjustPreference(store, bad, {1}).ok());        // Invalid q.
  PreferenceAdjustOptions opts;
  opts.lambda = 1.5;
  EXPECT_FALSE(AdjustPreference(store, q, {1}, opts).ok());    // Bad lambda.
}

TEST(AdjustPreferenceTest, AlreadyInResult) {
  const ObjectStore store = MakeStore(200, 2);
  Query q;
  q.loc = Point{0.5, 0.5};
  q.doc = KeywordSet({0, 1});
  q.k = 10;
  const TopKResult top = TopKScan(store, q);
  auto result = AdjustPreference(store, q, {top[2].id});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->already_in_result);
  EXPECT_DOUBLE_EQ(result->penalty.value, 0.0);
  EXPECT_EQ(result->refined.k, q.k);
  EXPECT_EQ(result->refined.w, q.w);
}

TEST(AdjustPreferenceTest, RefinedQueryRevivesMissingObject) {
  const ObjectStore store = MakeStore(1000, 3);
  Query q;
  q.loc = Point{0.4, 0.6};
  q.doc = KeywordSet({0, 1, 2});
  q.k = 5;
  const std::vector<ObjectId> missing = PickMissing(store, q, 1);
  ASSERT_FALSE(missing.empty());

  auto result = AdjustPreference(store, q, missing);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(result->already_in_result);

  // The revival guarantee: all missing objects inside the refined top-k'.
  const TopKResult refined = TopKScan(store, result->refined);
  std::set<ObjectId> ids;
  for (const ScoredObject& so : refined) ids.insert(so.id);
  for (ObjectId m : missing) {
    EXPECT_TRUE(ids.count(m)) << "missing object " << m << " not revived";
  }
}

TEST(AdjustPreferenceTest, PenaltyNeverExceedsLambda) {
  // The pure-k refinement costs exactly λ, so the optimum is <= λ.
  const ObjectStore store = MakeStore(500, 4);
  Rng rng(11);
  for (double lambda : {0.1, 0.5, 0.9}) {
    Query q;
    q.loc = SampleQueryLocation(store, &rng);
    q.doc = SampleQueryKeywords(store, 2, &rng);
    q.k = 5;
    const std::vector<ObjectId> missing = PickMissing(store, q, 1);
    if (missing.empty()) continue;
    PreferenceAdjustOptions opts;
    opts.lambda = lambda;
    auto result = AdjustPreference(store, q, missing, opts);
    ASSERT_TRUE(result.ok());
    EXPECT_LE(result->penalty.value, lambda + 1e-12);
  }
}

TEST(AdjustPreferenceTest, LambdaZeroKeepsWeights) {
  // λ=0: modifying w is pure cost, enlarging k is free => keep w, k'=R0.
  const ObjectStore store = MakeStore(400, 5);
  Query q;
  q.loc = Point{0.3, 0.3};
  q.doc = KeywordSet({0, 1});
  q.k = 4;
  const std::vector<ObjectId> missing = PickMissing(store, q, 1);
  ASSERT_FALSE(missing.empty());
  PreferenceAdjustOptions opts;
  opts.lambda = 0.0;
  auto result = AdjustPreference(store, q, missing, opts);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->refined.w, q.w);
  EXPECT_EQ(result->refined.k, result->original_rank);
  EXPECT_DOUBLE_EQ(result->penalty.value, 0.0);
}

TEST(AdjustPreferenceTest, LambdaOneSearchesTheFullInterval) {
  // λ=1: only ∆k matters, the feasible interval is all of (0,1), and the
  // optimum is the weight minimising the missing object's rank. The returned
  // rank must therefore be minimal over a dense weight grid.
  const ObjectStore store = MakeStore(300, 12);
  Query q;
  q.loc = Point{0.45, 0.55};
  q.doc = KeywordSet({0, 1});
  q.k = 4;
  const std::vector<ObjectId> missing = PickMissing(store, q, 1);
  ASSERT_FALSE(missing.empty());
  PreferenceAdjustOptions opts;
  opts.lambda = 1.0;
  auto result = AdjustPreference(store, q, missing, opts);
  ASSERT_TRUE(result.ok());

  const auto pts = BuildPlanePoints(store, q);
  const PlanePoint& anchor = pts[missing[0]];
  for (int i = 1; i < 200; ++i) {
    const double w = i / 200.0;
    size_t above = 0;
    for (const PlanePoint& p : pts) {
      if (p.id == anchor.id) continue;
      const double s = p.ScoreAt(w);
      const double t = anchor.ScoreAt(w);
      if (s > t || (s == t && p.id < anchor.id)) ++above;
    }
    EXPECT_GE(above + 1, result->refined_rank)
        << "w=" << w << " gives a better rank than the λ=1 optimum";
  }
  // And the revival guarantee still holds.
  const TopKResult refined = TopKScan(store, result->refined);
  bool revived = false;
  for (const ScoredObject& so : refined) {
    if (so.id == missing[0]) revived = true;
  }
  EXPECT_TRUE(revived);
}

TEST(AdjustPreferenceTest, RefinedRankConsistent) {
  const ObjectStore store = MakeStore(600, 6);
  SetRTree tree(&store);
  tree.BulkLoad();
  Query q;
  q.loc = Point{0.6, 0.4};
  q.doc = KeywordSet({1, 2});
  q.k = 5;
  const std::vector<ObjectId> missing = PickMissing(store, q, 2);
  ASSERT_EQ(missing.size(), 2u);
  auto result = AdjustPreference(store, q, missing);
  ASSERT_TRUE(result.ok());
  // Reported ranks match independent recomputation.
  EXPECT_EQ(result->original_rank, LowestRank(store, tree, q, missing));
  EXPECT_EQ(result->refined_rank,
            LowestRank(store, tree, result->refined, missing));
  EXPECT_EQ(result->refined.k,
            std::max<size_t>(q.k, result->refined_rank));
}

// The paper's basic and optimized algorithms must return identical
// refinements across shapes, λs and |M|.
class PrefModesAgree
    : public ::testing::TestWithParam<std::tuple<uint64_t, double, size_t>> {};

TEST_P(PrefModesAgree, BasicEqualsOptimized) {
  const auto [seed, lambda, m_count] = GetParam();
  const ObjectStore store = MakeStore(400, seed);
  Rng rng(seed * 13 + 5);
  for (int trial = 0; trial < 4; ++trial) {
    Query q;
    q.loc = SampleQueryLocation(store, &rng);
    q.doc = SampleQueryKeywords(store, 1 + rng.NextBounded(3), &rng);
    q.k = 3 + static_cast<uint32_t>(rng.NextBounded(5));
    q.w = Weights::FromWs(rng.NextDouble(0.2, 0.8));
    const std::vector<ObjectId> missing = PickMissing(store, q, m_count);
    if (missing.size() != m_count) continue;

    PreferenceAdjustOptions basic;
    basic.lambda = lambda;
    basic.mode = PrefAdjustMode::kBasic;
    PreferenceAdjustOptions optimized;
    optimized.lambda = lambda;
    optimized.mode = PrefAdjustMode::kOptimized;

    auto rb = AdjustPreference(store, q, missing, basic);
    auto ro = AdjustPreference(store, q, missing, optimized);
    ASSERT_TRUE(rb.ok());
    ASSERT_TRUE(ro.ok());
    EXPECT_EQ(rb->already_in_result, ro->already_in_result);
    if (rb->already_in_result) continue;
    EXPECT_EQ(rb->original_rank, ro->original_rank);
    EXPECT_NEAR(rb->penalty.value, ro->penalty.value, 1e-12)
        << "seed=" << seed << " lambda=" << lambda << " trial=" << trial;
    EXPECT_DOUBLE_EQ(rb->refined.w.ws, ro->refined.w.ws);
    EXPECT_EQ(rb->refined.k, ro->refined.k);
    EXPECT_EQ(rb->refined_rank, ro->refined_rank);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PrefModesAgree,
    ::testing::Combine(::testing::Values(1, 7, 21),
                       ::testing::Values(0.2, 0.5, 0.8),
                       ::testing::Values(1u, 2u, 3u)));

// Global optimality audit: the returned penalty must not beat any candidate
// on a dense grid of weights (each grid point evaluated exactly).
class PrefOptimalityAudit : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PrefOptimalityAudit, NoGridPointBeatsReturnedPenalty) {
  const ObjectStore store = MakeStore(300, GetParam());
  Rng rng(GetParam() ^ 0xA0A0);
  Query q;
  q.loc = SampleQueryLocation(store, &rng);
  q.doc = SampleQueryKeywords(store, 2, &rng);
  q.k = 4;
  const std::vector<ObjectId> missing = PickMissing(store, q, 1);
  ASSERT_FALSE(missing.empty());
  PreferenceAdjustOptions opts;
  opts.lambda = 0.5;
  auto result = AdjustPreference(store, q, missing, opts);
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result->already_in_result);

  const auto pts = BuildPlanePoints(store, q);
  const size_t r0 = result->original_rank;
  for (int i = 1; i < 500; ++i) {
    const double w = i / 500.0;
    // Exact rank at w.
    const PlanePoint& anchor = pts[missing[0]];
    const double threshold = anchor.ScoreAt(w);
    size_t above = 0;
    for (const PlanePoint& p : pts) {
      if (p.id == anchor.id) continue;
      const double s = p.ScoreAt(w);
      if (s > threshold || (s == threshold && p.id < anchor.id)) ++above;
    }
    const PenaltyBreakdown pen =
        PreferencePenalty(opts.lambda, q, Weights::FromWs(w), r0, above + 1);
    // Tolerance matches the module's documented ∆w resolution (crossings are
    // sampled a fixed 1e-7 past their algebraic weight).
    EXPECT_GE(pen.value, result->penalty.value - 1e-6)
        << "grid w=" << w << " beats the returned optimum";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PrefOptimalityAudit,
                         ::testing::Values(2, 13, 29));

TEST(AdjustPreferenceTest, StatsPopulatedInOptimizedMode) {
  const ObjectStore store = MakeStore(500, 8);
  Query q;
  q.loc = Point{0.2, 0.8};
  q.doc = KeywordSet({0, 3});
  q.k = 5;
  const std::vector<ObjectId> missing = PickMissing(store, q, 1);
  ASSERT_FALSE(missing.empty());
  auto result = AdjustPreference(store, q, missing);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->stats.candidates_evaluated, 0u);
  EXPECT_GT(result->stats.index_nodes_visited, 0u);
  EXPECT_EQ(result->stats.full_rescans, 0u);
}

TEST(AdjustPreferenceTest, BatchedSweepMatchesPerEventSweep) {
  // The speculative segment sweep must return the byte-identical refinement
  // and identical crossing/candidate counters at every segment size — the
  // floor cut discards over-fetched counts deterministically.
  const ObjectStore store = MakeStore(600, 10);
  Rng rng(17);
  for (double lambda : {0.2, 0.5, 0.8}) {
    for (int trial = 0; trial < 3; ++trial) {
      Query q;
      q.loc = SampleQueryLocation(store, &rng);
      q.doc = SampleQueryKeywords(store, 2, &rng);
      q.k = 4;
      const std::vector<ObjectId> missing = PickMissing(store, q, 1 + trial % 2);
      if (missing.empty()) continue;

      PreferenceAdjustOptions per_event;
      per_event.lambda = lambda;
      per_event.batch_sweep = false;
      auto reference = AdjustPreference(store, q, missing, per_event);
      ASSERT_TRUE(reference.ok());

      for (size_t segment : {size_t{0}, size_t{1}, size_t{3}, size_t{100}}) {
        PreferenceAdjustOptions batched = per_event;
        batched.batch_sweep = true;
        batched.sweep_batch_size = segment;
        auto result = AdjustPreference(store, q, missing, batched);
        ASSERT_TRUE(result.ok());
        const std::string tag = "lambda=" + std::to_string(lambda) +
                                " trial=" + std::to_string(trial) +
                                " segment=" + std::to_string(segment);
        EXPECT_EQ(result->refined.w.ws, reference->refined.w.ws) << tag;
        EXPECT_EQ(result->refined.k, reference->refined.k) << tag;
        EXPECT_EQ(result->refined_rank, reference->refined_rank) << tag;
        EXPECT_EQ(result->penalty.value, reference->penalty.value) << tag;
        EXPECT_EQ(result->stats.crossings_found,
                  reference->stats.crossings_found)
            << tag;
        EXPECT_EQ(result->stats.candidates_evaluated,
                  reference->stats.candidates_evaluated)
            << tag;
        if (segment <= 1) {
          // Segment-of-one sweeps fetch exactly what per-event evaluates.
          EXPECT_EQ(result->stats.index_nodes_visited,
                    reference->stats.index_nodes_visited)
              << tag;
        } else {
          // Speculation may fetch (and discard) counts past the floor cut.
          EXPECT_GE(result->stats.index_nodes_visited,
                    reference->stats.index_nodes_visited)
              << tag;
        }
        // Batching never spends MORE fan-outs than per-event.
        EXPECT_LE(result->stats.sweep_fanouts, reference->stats.sweep_fanouts)
            << tag;
      }
    }
  }
}

TEST(AdjustPreferenceTest, BatchedSweepSavesFanouts) {
  // With a multi-candidate segment, the sweep must actually amortize: one
  // fan-out covers all anchors of Step 1 (instead of |M|) and each segment
  // covers several candidates (instead of candidates × anchors fan-outs).
  const ObjectStore store = MakeStore(800, 11);
  Rng rng(23);
  for (int trial = 0; trial < 6; ++trial) {
    Query q;
    q.loc = SampleQueryLocation(store, &rng);
    q.doc = SampleQueryKeywords(store, 2, &rng);
    q.k = 4;
    const std::vector<ObjectId> missing = PickMissing(store, q, 2);
    if (missing.size() != 2) continue;

    PreferenceAdjustOptions per_event;
    per_event.batch_sweep = false;
    PreferenceAdjustOptions batched;
    batched.batch_sweep = true;
    batched.sweep_batch_size = 8;
    auto rp = AdjustPreference(store, q, missing, per_event);
    auto rb = AdjustPreference(store, q, missing, batched);
    ASSERT_TRUE(rp.ok());
    ASSERT_TRUE(rb.ok());
    if (rb->already_in_result || rb->stats.candidates_evaluated < 4) continue;
    EXPECT_EQ(rb->penalty.value, rp->penalty.value);
    // Per-event spends ≥ one fan-out per (candidate, anchor) pair; batched
    // spends ⌈candidates-ish/8⌉ segments plus one Step-1 fan-out.
    EXPECT_LT(rb->stats.sweep_fanouts, rp->stats.sweep_fanouts / 2)
        << "candidates=" << rb->stats.candidates_evaluated;
  }
}

TEST(AdjustPreferenceTest, DuplicateMissingIdsAreDeduplicated) {
  const ObjectStore store = MakeStore(300, 9);
  Query q;
  q.loc = Point{0.5, 0.5};
  q.doc = KeywordSet({0});
  q.k = 3;
  const std::vector<ObjectId> missing = PickMissing(store, q, 1);
  ASSERT_FALSE(missing.empty());
  auto a = AdjustPreference(store, q, {missing[0]});
  auto b = AdjustPreference(store, q, {missing[0], missing[0]});
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_DOUBLE_EQ(a->penalty.value, b->penalty.value);
  EXPECT_DOUBLE_EQ(a->refined.w.ws, b->refined.w.ws);
}

}  // namespace
}  // namespace yask
