// Lazy-connect acceptance — the elastic-fleet contract of
// RemoteCorpus::Connect (docs/operations.md, "Rolling upgrades"):
//
//   * A replica group with a DEAD MINORITY connects: the dead replicas join
//     the set as pending-validation and the coordinator serves exact answers
//     through their validated siblings. (Before this, a rolling restart
//     window made the whole fleet un-connectable.)
//   * A pending replica is validated on FIRST CONTACT once it boots: the
//     deferred handshake runs the same identity + protocol checks an
//     at-Connect validation would have run.
//   * An imposter booted on a pending endpoint (wrong shard identity) is
//     permanently rejected, never routed to — lazy means deferred, not
//     skipped.
//   * A whole-dead GROUP still fails fast: with every replica of a shard
//     unreachable its identity is unknowable, so Connect refuses rather
//     than guessing.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/common/text.h"
#include "src/corpus/remote_corpus.h"
#include "src/corpus/sharded_corpus.h"
#include "src/query/topk_engine.h"
#include "src/server/shard_service.h"
#include "src/storage/hotel_generator.h"

namespace yask {
namespace {

ShardService::Info InfoFor(const ShardedCorpus& corpus, size_t s) {
  ShardService::Info info;
  info.shard_index = static_cast<uint32_t>(s);
  info.shard_count = static_cast<uint32_t>(corpus.num_shards());
  info.global_bounds = corpus.bounds();
  info.dist_norm = corpus.dist_norm();
  info.to_global = corpus.shard_global_ids(s);
  info.router = corpus.router_description();
  return info;
}

std::unique_ptr<ShardService> StartReplica(const ShardedCorpus& corpus,
                                           size_t s, uint16_t port = 0) {
  ShardServiceOptions options;
  options.port = port;
  auto service = std::make_unique<ShardService>(corpus.shard(s),
                                                InfoFor(corpus, s), options);
  EXPECT_TRUE(service->Start().ok());
  return service;
}

RemoteShardOptions FastOptions() {
  RemoteShardOptions opts;
  opts.connect_timeout_ms = 300;
  opts.call_deadline_ms = 2000;
  opts.retries = 0;
  return opts;
}

TEST(RemoteLazyConnectTest, DeadMinorityConnectsAndServes) {
  const ObjectStore store = GenerateHotelDataset();
  const ShardedCorpus sharded =
      ShardedCorpus::Partition(store, GridShardRouter::Fit(store, 2));

  // Shard 0: one live replica + one dead endpoint (a replica mid-restart).
  // Shard 1: two live replicas.
  auto s0_live = StartReplica(sharded, 0);
  auto s0_dead = StartReplica(sharded, 0);
  const uint16_t dead_port = s0_dead->port();
  s0_dead->Stop();
  s0_dead.reset();
  auto s1_a = StartReplica(sharded, 1);
  auto s1_b = StartReplica(sharded, 1);

  const std::string spec0 = "127.0.0.1:" + std::to_string(s0_live->port()) +
                            "|127.0.0.1:" + std::to_string(dead_port);
  const std::string spec1 = "127.0.0.1:" + std::to_string(s1_a->port()) +
                            "|127.0.0.1:" + std::to_string(s1_b->port());

  auto connected =
      RemoteCorpus::Connect({spec0, spec1}, FastOptions());
  ASSERT_TRUE(connected.ok()) << connected.status().ToString();
  const RemoteCorpus remote = std::move(connected).value();

  // The dead replica joined the set pending validation; its siblings are
  // validated. (Order within the set follows the spec order.)
  ASSERT_EQ(remote.replicas(0).num_replicas(), 2u);
  EXPECT_EQ(remote.replicas(0).validation(0), ReplicaValidation::kValidated);
  EXPECT_EQ(remote.replicas(0).validation(1), ReplicaValidation::kPending);
  EXPECT_EQ(remote.replicas(1).validation(0), ReplicaValidation::kValidated);
  EXPECT_EQ(remote.replicas(1).validation(1), ReplicaValidation::kValidated);

  // Exact answers flow through the validated siblings.
  const Corpus baseline = CorpusBuilder().Build(ObjectStore(store));
  const RemoteTopKClient topk(remote);
  Query q;
  q.loc = Point{114.15, 22.28};
  q.doc = LookupKeywords("clean comfortable", remote.vocab());
  q.k = 5;
  const TopKResult expected = baseline.topk().Query(q);
  const TopKResult actual = topk.Query(q);
  ASSERT_EQ(actual.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(actual[i].id, expected[i].id) << "rank " << i;
    EXPECT_EQ(actual[i].score, expected[i].score) << "rank " << i;
  }
  EXPECT_EQ(remote.error_epoch(), 0u)
      << "a pending replica is a known state, not a fleet error";

  // --- First contact: boot the real replica on the pending endpoint, kill
  // its validated sibling, and the very next query must fail over to the
  // pending replica, validate it, and stay byte-identical. ---
  s0_dead = StartReplica(sharded, 0, dead_port);
  ASSERT_EQ(s0_dead->port(), dead_port);
  s0_live->Stop();

  const TopKResult after = topk.Query(q);
  ASSERT_EQ(after.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(after[i].id, expected[i].id) << "rank " << i;
    EXPECT_EQ(after[i].score, expected[i].score) << "rank " << i;
  }
  EXPECT_EQ(remote.replicas(0).validation(1), ReplicaValidation::kValidated)
      << "first successful contact must run the deferred handshake";
}

TEST(RemoteLazyConnectTest, ImposterOnPendingEndpointIsRejected) {
  const ObjectStore store = GenerateHotelDataset();
  const ShardedCorpus sharded =
      ShardedCorpus::Partition(store, GridShardRouter::Fit(store, 2));

  auto s0_live = StartReplica(sharded, 0);
  auto s0_dead = StartReplica(sharded, 0);
  const uint16_t dead_port = s0_dead->port();
  s0_dead->Stop();
  s0_dead.reset();
  auto s1_live = StartReplica(sharded, 1);

  const std::string spec0 = "127.0.0.1:" + std::to_string(s0_live->port()) +
                            "|127.0.0.1:" + std::to_string(dead_port);
  auto connected = RemoteCorpus::Connect(
      {spec0, "127.0.0.1:" + std::to_string(s1_live->port())}, FastOptions());
  ASSERT_TRUE(connected.ok()) << connected.status().ToString();
  const RemoteCorpus& remote = *connected;
  ASSERT_EQ(remote.replicas(0).validation(1), ReplicaValidation::kPending);

  // An imposter boots on the pending endpoint: a replica of the WRONG
  // shard. The deferred handshake must brand it rejected for good.
  auto imposter = StartReplica(sharded, 1, dead_port);
  ASSERT_EQ(imposter->port(), dead_port);
  const Status verdict = remote.replicas(0).EnsureValidated(1);
  EXPECT_FALSE(verdict.ok());
  EXPECT_EQ(verdict.code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(remote.replicas(0).validation(1), ReplicaValidation::kRejected);

  // Rejected is terminal: revalidation does not resurrect it.
  EXPECT_FALSE(remote.replicas(0).EnsureValidated(1).ok());
}

TEST(RemoteLazyConnectTest, WholeDeadGroupStillFailsFast) {
  const ObjectStore store = GenerateHotelDataset();
  const ShardedCorpus sharded =
      ShardedCorpus::Partition(store, GridShardRouter::Fit(store, 2));
  auto s1_live = StartReplica(sharded, 1);

  // Every replica of shard group 0 is unreachable: its identity (which
  // shard? what object count?) cannot be learned, so Connect must refuse
  // loudly instead of serving a half-fleet.
  auto connected = RemoteCorpus::Connect(
      {"127.0.0.1:1|127.0.0.1:2",
       "127.0.0.1:" + std::to_string(s1_live->port())},
      FastOptions());
  ASSERT_FALSE(connected.ok());
  EXPECT_EQ(connected.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(connected.status().message().find("every replica"),
            std::string::npos)
      << connected.status().message();
}

}  // namespace
}  // namespace yask
