// Remote shard tier property test — the wire twin of sharded_whynot_test:
// a coordinator talking to loopback ShardService processes-in-miniature must
// answer top-k AND the full why-not stack BIT-identically to the in-process
// sharded layout and to the unsharded reference, at 1/2/4 shards. Also
// covers Connect() validation (wrong endpoint count, duplicate shard,
// unreachable host) and the error-epoch channel.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/common/text.h"
#include "src/corpus/remote_corpus.h"
#include "src/corpus/remote_whynot_oracle.h"
#include "src/corpus/sharded_corpus.h"
#include "src/corpus/sharded_whynot_oracle.h"
#include "src/query/topk_engine.h"
#include "src/server/shard_service.h"
#include "src/storage/dataset_generator.h"
#include "src/storage/hotel_generator.h"
#include "src/whynot/why_not_engine.h"

namespace yask {
namespace {

/// Started shard servers over one ShardedCorpus, plus the endpoint list a
/// coordinator connects to.
struct ShardFleet {
  std::vector<std::unique_ptr<ShardService>> services;
  std::vector<std::string> endpoints;

  explicit ShardFleet(const ShardedCorpus& corpus) {
    for (size_t s = 0; s < corpus.num_shards(); ++s) {
      ShardService::Info info;
      info.shard_index = static_cast<uint32_t>(s);
      info.shard_count = static_cast<uint32_t>(corpus.num_shards());
      info.global_bounds = corpus.bounds();
      info.dist_norm = corpus.dist_norm();
      info.to_global = corpus.shard_global_ids(s);
      info.router = corpus.router_description();
      services.push_back(
          std::make_unique<ShardService>(corpus.shard(s), std::move(info)));
      EXPECT_TRUE(services.back()->Start().ok());
      endpoints.push_back("127.0.0.1:" +
                          std::to_string(services.back()->port()));
    }
  }

  ~ShardFleet() {
    for (auto& service : services) service->Stop();
  }
};

void ExpectSameResult(const TopKResult& actual, const TopKResult& expected,
                      const std::string& label) {
  ASSERT_EQ(actual.size(), expected.size()) << label;
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(actual[i].id, expected[i].id) << label << " rank " << i;
    EXPECT_EQ(actual[i].score, expected[i].score) << label << " rank " << i;
  }
}

void ExpectSamePenalty(const PenaltyBreakdown& s, const PenaltyBreakdown& e,
                       const std::string& label) {
  EXPECT_EQ(s.value, e.value) << label;
  EXPECT_EQ(s.k_term, e.k_term) << label;
  EXPECT_EQ(s.mod_term, e.mod_term) << label;
  EXPECT_EQ(s.delta_k, e.delta_k) << label;
  EXPECT_EQ(s.delta_w, e.delta_w) << label;
  EXPECT_EQ(s.delta_doc, e.delta_doc) << label;
}

void ExpectSameAnswer(const WhyNotAnswer& actual, const WhyNotAnswer& expected,
                      const std::string& label) {
  ASSERT_EQ(actual.explanations.size(), expected.explanations.size()) << label;
  for (size_t i = 0; i < expected.explanations.size(); ++i) {
    const MissingObjectExplanation& a = actual.explanations[i];
    const MissingObjectExplanation& e = expected.explanations[i];
    EXPECT_EQ(a.id, e.id) << label;
    EXPECT_EQ(a.rank, e.rank) << label << " id " << e.id;
    EXPECT_EQ(a.score, e.score) << label << " id " << e.id;
    EXPECT_EQ(a.sdist, e.sdist) << label << " id " << e.id;
    EXPECT_EQ(a.tsim, e.tsim) << label << " id " << e.id;
    EXPECT_EQ(a.reason, e.reason) << label << " id " << e.id;
    EXPECT_EQ(a.recommendation, e.recommendation) << label << " id " << e.id;
    EXPECT_EQ(a.text, e.text) << label << " id " << e.id;
  }
  ASSERT_EQ(actual.preference.has_value(), expected.preference.has_value())
      << label;
  if (expected.preference.has_value()) {
    EXPECT_EQ(actual.preference->refined.w.ws, expected.preference->refined.w.ws)
        << label;
    EXPECT_EQ(actual.preference->refined.k, expected.preference->refined.k)
        << label;
    EXPECT_EQ(actual.preference->original_rank,
              expected.preference->original_rank)
        << label;
    EXPECT_EQ(actual.preference->refined_rank,
              expected.preference->refined_rank)
        << label;
    ExpectSamePenalty(actual.preference->penalty, expected.preference->penalty,
                      label + " pref penalty");
  }
  ASSERT_EQ(actual.keyword.has_value(), expected.keyword.has_value()) << label;
  if (expected.keyword.has_value()) {
    EXPECT_EQ(actual.keyword->refined.doc.ids(),
              expected.keyword->refined.doc.ids())
        << label;
    EXPECT_EQ(actual.keyword->refined.k, expected.keyword->refined.k) << label;
    EXPECT_EQ(actual.keyword->original_rank, expected.keyword->original_rank)
        << label;
    EXPECT_EQ(actual.keyword->refined_rank, expected.keyword->refined_rank)
        << label;
    ExpectSamePenalty(actual.keyword->penalty, expected.keyword->penalty,
                      label + " kw penalty");
  }
  EXPECT_EQ(actual.recommended, expected.recommended) << label;
  ExpectSameResult(actual.refined_result, expected.refined_result,
                   label + " refined result");
}

/// Missing objects ranked just outside the top-k.
std::vector<ObjectId> PickMissing(const ObjectStore& store, const Query& q,
                                  size_t count, size_t offset) {
  Query probe = q;
  probe.k = static_cast<uint32_t>(q.k + offset + count + 5);
  const TopKResult wide = TopKScan(store, probe);
  std::vector<ObjectId> missing;
  for (size_t i = q.k + offset; i < wide.size() && missing.size() < count;
       ++i) {
    missing.push_back(wide[i].id);
  }
  return missing;
}

void RunRemoteTrials(const ObjectStore& store, uint64_t query_seed,
                     const std::vector<uint32_t>& shard_counts = {1, 2, 4},
                     int trials = 3) {
  const Corpus baseline = CorpusBuilder().Build(ObjectStore(store));
  const WhyNotEngine reference(baseline);

  for (const uint32_t shards : shard_counts) {
    const ShardedCorpus sharded =
        ShardedCorpus::Partition(store, GridShardRouter::Fit(store, shards));
    const WhyNotEngine local_engine(sharded);
    const ShardedTopKEngine local_topk(sharded);

    ShardFleet fleet(sharded);
    auto connected = RemoteCorpus::Connect(fleet.endpoints);
    ASSERT_TRUE(connected.ok()) << connected.status().ToString();
    const RemoteCorpus remote = std::move(connected).value();

    // Connect()-time identity: totals, normaliser, vocabulary, KcR.
    EXPECT_EQ(remote.size(), store.size());
    EXPECT_EQ(remote.dist_norm(), sharded.dist_norm());
    EXPECT_EQ(remote.vocab().size(), store.vocab().size());
    EXPECT_TRUE(remote.has_kcr());

    const RemoteTopKClient remote_topk(remote);
    const WhyNotEngine remote_engine(
        std::make_unique<RemoteShardOracle>(remote));

    Rng rng(query_seed);
    for (int trial = 0; trial < trials; ++trial) {
      Query q;
      q.loc = SampleQueryLocation(store, &rng);
      q.doc = SampleQueryKeywords(store, 1 + trial % 3, &rng);
      q.k = 3 + static_cast<uint32_t>(rng.NextBounded(5));
      const std::string tag = std::to_string(shards) + " shards trial " +
                              std::to_string(trial);

      // Top-k over the wire == in-process sharded == unsharded.
      const TopKResult expected = baseline.topk().Query(q);
      ExpectSameResult(remote_topk.Query(q), expected, tag + " topk");
      ExpectSameResult(local_topk.Query(q), expected, tag + " local topk");

      // Full why-not stack over the wire.
      const size_t m_count = 1 + trial % 2;
      const std::vector<ObjectId> missing =
          PickMissing(store, q, m_count, /*offset=*/2 + trial);
      if (missing.size() != m_count) continue;
      auto expected_answer = reference.Answer(q, missing);
      auto remote_answer = remote_engine.Answer(q, missing);
      ASSERT_TRUE(expected_answer.ok()) << tag;
      ASSERT_TRUE(remote_answer.ok()) << tag;
      ExpectSameAnswer(*remote_answer, *expected_answer, tag);

      // Object fetch + cache parity (names, docs, locations).
      for (const ObjectId id : missing) {
        const SpatialObject& fetched = remote.Object(id);
        const SpatialObject& truth = sharded.Object(id);
        EXPECT_EQ(fetched.name, truth.name) << tag;
        EXPECT_EQ(fetched.loc, truth.loc) << tag;
        EXPECT_EQ(fetched.doc.ids(), truth.doc.ids()) << tag;
      }
    }

    // FindByName resolves the same global first match.
    const std::string name = store.Get(store.size() / 2).name;
    if (!name.empty()) {
      EXPECT_EQ(remote.FindByName(name), sharded.FindByName(name));
    }
    EXPECT_EQ(remote.error_epoch(), 0u) << "clean run must not bump epoch";
  }
}

TEST(RemoteCorpusPropertyTest, ClusteredSyntheticDataset) {
  DatasetSpec spec;
  spec.num_objects = 600;
  spec.vocabulary_size = 50;
  spec.min_keywords = 2;
  spec.max_keywords = 5;
  spec.seed = 571;
  RunRemoteTrials(GenerateDataset(spec), /*query_seed=*/601);
}

TEST(RemoteCorpusPropertyTest, HotelDemoDataset) {
  RunRemoteTrials(GenerateHotelDataset(), /*query_seed=*/603);
}

TEST(RemoteCorpusTest, ConnectValidatesTheFleet) {
  const ObjectStore store = GenerateHotelDataset();
  const ShardedCorpus sharded =
      ShardedCorpus::Partition(store, GridShardRouter::Fit(store, 2));
  ShardFleet fleet(sharded);

  // Too few endpoints for the fleet's shard count.
  auto partial = RemoteCorpus::Connect({fleet.endpoints[0]});
  EXPECT_FALSE(partial.ok());

  // The same shard twice.
  auto duplicated =
      RemoteCorpus::Connect({fleet.endpoints[0], fleet.endpoints[0]});
  EXPECT_FALSE(duplicated.ok());

  // An unreachable endpoint fails cleanly (fast connect timeout).
  RemoteShardOptions opts;
  opts.connect_timeout_ms = 200;
  opts.retries = 0;
  auto dead = RemoteCorpus::Connect({"127.0.0.1:1", fleet.endpoints[1]}, opts);
  EXPECT_FALSE(dead.ok());

  // Endpoint order does not matter: shards are indexed by their identity.
  auto reversed =
      RemoteCorpus::Connect({fleet.endpoints[1], fleet.endpoints[0]});
  ASSERT_TRUE(reversed.ok()) << reversed.status().ToString();
  EXPECT_EQ(reversed->num_shards(), 2u);
  EXPECT_EQ(reversed->meta(0).shard_index, 0u);
  EXPECT_EQ(reversed->meta(1).shard_index, 1u);
}

TEST(RemoteCorpusTest, ShardFailureBumpsTheErrorEpoch) {
  const ObjectStore store = GenerateHotelDataset();
  const ShardedCorpus sharded =
      ShardedCorpus::Partition(store, GridShardRouter::Fit(store, 2));
  auto fleet = std::make_unique<ShardFleet>(sharded);

  RemoteShardOptions opts;
  opts.connect_timeout_ms = 300;
  opts.call_deadline_ms = 1000;
  opts.retries = 0;
  auto connected = RemoteCorpus::Connect(fleet->endpoints, opts);
  ASSERT_TRUE(connected.ok()) << connected.status().ToString();
  const RemoteCorpus remote = std::move(connected).value();
  const RemoteTopKClient topk(remote);

  Query q;
  q.loc = Point{114.15, 22.28};
  q.doc = LookupKeywords("clean comfortable", remote.vocab());
  q.k = 3;
  EXPECT_EQ(topk.Query(q).size(), 3u);
  EXPECT_EQ(remote.error_epoch(), 0u);

  // Kill the fleet: the next fan-out must bump the epoch, not hang or lie.
  fleet.reset();
  const uint64_t before = remote.error_epoch();
  (void)topk.Query(q);
  EXPECT_GT(remote.error_epoch(), before);
  EXPECT_FALSE(remote.last_error().ok());
}

TEST(RemoteCorpusTest, TopKOnlyShardsReportMissingKcr) {
  const ObjectStore store = GenerateHotelDataset();
  CorpusOptions no_kcr;
  no_kcr.build_kcr_tree = false;
  const ShardedCorpus sharded =
      ShardedCorpus::Partition(store, GridShardRouter::Fit(store, 2), no_kcr);
  ShardFleet fleet(sharded);
  auto connected = RemoteCorpus::Connect(fleet.endpoints);
  ASSERT_TRUE(connected.ok()) << connected.status().ToString();
  EXPECT_FALSE(connected->has_kcr());
  EXPECT_EQ(connected->shards_without_kcr().size(), 2u);
}

}  // namespace
}  // namespace yask
