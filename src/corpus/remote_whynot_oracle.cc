#include "src/corpus/remote_whynot_oracle.h"

#include <algorithm>
#include <cstring>

#include "src/server/shard_protocol.h"

namespace yask {

namespace {

/// Encodes one /shard/count request for the given specs (target scores are
/// resolved coordinator-side — a spec's target need not live on the shard
/// being asked).
std::string EncodeCountRequest(const std::vector<OracleTargetSpec>& specs,
                               const std::vector<double>& target_scores,
                               uint8_t method) {
  BufWriter req;
  req.PutVarU64(specs.size());
  for (size_t i = 0; i < specs.size(); ++i) {
    shardrpc::PutQuery(&req, *specs[i].query);
    req.PutU32(specs[i].target);
    req.PutF64(target_scores[i]);
    req.PutU8(method);
  }
  return req.data();
}

}  // namespace

std::vector<size_t> RemoteShardOracle::CountFanout(
    const std::vector<OracleTargetSpec>& specs, uint8_t method) const {
  std::vector<double> target_scores;
  target_scores.reserve(specs.size());
  for (const OracleTargetSpec& spec : specs) {
    target_scores.push_back(
        ScorePartsOf(*spec.query, corpus_->dist_norm(), Object(spec.target))
            .score);
  }
  const std::string body = EncodeCountRequest(specs, target_scores, method);

  const size_t n = corpus_->num_shards();
  std::vector<std::vector<size_t>> counts(n);
  corpus_->ForEachShard([&](size_t s) {
    Result<std::string> raw =
        corpus_->shard(s).Call("POST", shardrpc::kCountPath, body);
    if (!raw.ok()) {
      corpus_->RecordError(raw.status());
      return;
    }
    BufReader in(raw->data(), raw->size());
    const uint64_t count = in.GetVarU64();
    if (count != specs.size()) {
      corpus_->RecordError(
          Status::InvalidArgument("bad /shard/count response"));
      return;
    }
    counts[s].reserve(count);
    for (uint64_t i = 0; i < count; ++i) counts[s].push_back(in.GetU64());
    if (!in.ok()) {
      corpus_->RecordError(in.status());
      counts[s].clear();
    }
  });

  std::vector<size_t> total(specs.size(), 0);
  for (size_t s = 0; s < n; ++s) {
    if (counts[s].empty()) continue;  // Failed shard: epoch already bumped.
    for (size_t i = 0; i < specs.size(); ++i) total[i] += counts[s][i];
  }
  return total;
}

size_t RemoteShardOracle::Rank(const Query& query, ObjectId global_id) const {
  const std::vector<OracleTargetSpec> specs{{&query, global_id}};
  return CountFanout(specs,
                     static_cast<uint8_t>(shardrpc::CountMethod::kSetR))[0] +
         1;
}

size_t RemoteShardOracle::OutscoringCount(const Query& query,
                                          ObjectId global_id,
                                          KeywordAdaptStats* stats) const {
  const std::vector<OracleTargetSpec> specs{{&query, global_id}};
  return OutscoringCountBatch(specs, stats)[0];
}

std::vector<size_t> RemoteShardOracle::OutscoringCountBatch(
    const std::vector<OracleTargetSpec>& specs,
    KeywordAdaptStats* stats) const {
  stats->objects_scored += corpus_->size() * specs.size();
  return CountFanout(specs,
                     static_cast<uint8_t>(shardrpc::CountMethod::kScan));
}

// --- Score-plane sessions ----------------------------------------------------

namespace {

class RemoteScorePlaneSession : public ScorePlaneSession {
 public:
  RemoteScorePlaneSession(const RemoteCorpus* corpus,
                          const WhyNotOracle* oracle, const Query* query,
                          PrefAdjustMode mode)
      : corpus_(corpus),
        oracle_(oracle),
        query_(query),
        optimized_(mode == PrefAdjustMode::kOptimized),
        sessions_(corpus->num_shards(), 0) {
    BufWriter req;
    shardrpc::PutQuery(&req, *query);
    req.PutU8(optimized_ ? 1 : 0);
    const std::string body = req.data();
    corpus_->ForEachShard([&](size_t s) {
      Result<std::string> raw =
          corpus_->shard(s).Call("POST", shardrpc::kPlaneOpenPath, body);
      if (!raw.ok()) {
        corpus_->RecordError(raw.status());
        return;
      }
      BufReader in(raw->data(), raw->size());
      sessions_[s] = in.GetU64();
      if (!in.ok()) corpus_->RecordError(in.status());
    });
  }

  ~RemoteScorePlaneSession() override {
    // Best-effort close; an unreachable shard's session falls to the
    // server-side cap eventually.
    for (size_t s = 0; s < sessions_.size(); ++s) {
      if (sessions_[s] == 0) continue;
      BufWriter req;
      req.PutU64(sessions_[s]);
      (void)corpus_->shard(s).Call("POST", shardrpc::kPlaneClosePath,
                                   req.data());
    }
  }

  PlanePoint Anchor(ObjectId global_id) const override {
    const ObjectScoreParts parts = ScorePartsOf(*query_, corpus_->dist_norm(),
                                                oracle_->Object(global_id));
    return PlanePoint{1.0 - parts.sdist, parts.tsim, global_id};
  }

  size_t CountAbove(double w, const PlanePoint& anchor,
                    PreferenceAdjustStats* stats) const override {
    BufWriter req;
    req.PutU64(0);  // Patched per shard below.
    req.PutF64(w);
    shardrpc::PutPlanePoint(&req, anchor);
    const size_t n = sessions_.size();
    std::vector<size_t> counts(n, 0);
    std::vector<size_t> nodes(n, 0);
    corpus_->ForEachShard([&](size_t s) {
      // Open failed: the epoch is already bumped; re-asking with the 0
      // sentinel would just burn one doomed round-trip per sweep event.
      if (sessions_[s] == 0) return;
      std::string body = req.data();
      PatchSession(&body, sessions_[s]);
      Result<std::string> raw =
          corpus_->shard(s).Call("POST", shardrpc::kPlaneCountPath, body);
      if (!raw.ok()) {
        corpus_->RecordError(raw.status());
        return;
      }
      BufReader in(raw->data(), raw->size());
      counts[s] = in.GetU64();
      nodes[s] = in.GetU64();
      if (!in.ok()) corpus_->RecordError(in.status());
    });
    size_t total = 0;
    for (size_t s = 0; s < n; ++s) {
      total += counts[s];
      stats->index_nodes_visited += nodes[s];
    }
    if (!optimized_) ++stats->full_rescans;  // One logical dataset rescan.
    return total;
  }

  void CollectCrossings(const PlanePoint& anchor, double wlo, double whi,
                        std::vector<double>* events,
                        PreferenceAdjustStats* stats) const override {
    BufWriter req;
    req.PutU64(0);  // Patched per shard below.
    shardrpc::PutPlanePoint(&req, anchor);
    req.PutF64(wlo);
    req.PutF64(whi);
    const size_t n = sessions_.size();
    std::vector<std::vector<double>> parts(n);
    std::vector<size_t> nodes(n, 0);
    corpus_->ForEachShard([&](size_t s) {
      if (sessions_[s] == 0) return;  // Open failed; epoch already bumped.
      std::string body = req.data();
      PatchSession(&body, sessions_[s]);
      Result<std::string> raw =
          corpus_->shard(s).Call("POST", shardrpc::kPlaneCrossingsPath, body);
      if (!raw.ok()) {
        corpus_->RecordError(raw.status());
        return;
      }
      BufReader in(raw->data(), raw->size());
      const uint64_t count = in.GetVarU64();
      if (!in.CheckCount(count, sizeof(double))) {
        corpus_->RecordError(
            Status::InvalidArgument("bad /shard/plane/crossings response"));
        return;
      }
      parts[s].reserve(count);
      for (uint64_t i = 0; i < count; ++i) parts[s].push_back(in.GetF64());
      nodes[s] = in.GetU64();
      if (!in.ok()) corpus_->RecordError(in.status());
    });
    // Union in shard order; the caller sorts + deduplicates the merged set.
    for (size_t s = 0; s < n; ++s) {
      events->insert(events->end(), parts[s].begin(), parts[s].end());
      stats->index_nodes_visited += nodes[s];
    }
  }

 private:
  /// The first 8 bytes of every session request are the session id; requests
  /// are encoded once and re-stamped per shard.
  static void PatchSession(std::string* body, uint64_t session) {
    std::memcpy(body->data(), &session, sizeof(session));
  }

  const RemoteCorpus* corpus_;
  const WhyNotOracle* oracle_;
  const Query* query_;
  bool optimized_;
  std::vector<uint64_t> sessions_;  // Per-shard server-side session ids.
};

// --- Rank-probe batches ------------------------------------------------------

class RemoteRankProbeBatch : public RankProbeBatch {
 public:
  RemoteRankProbeBatch(const RemoteCorpus* corpus, const WhyNotOracle* oracle,
                       const std::vector<OracleTargetSpec>& specs,
                       KeywordAdaptStats* stats)
      : corpus_(corpus), stats_(stats), members_(specs.size()) {
    // Target scores resolve coordinator-side, then ONE open per shard
    // creates every member's refiner there.
    BufWriter req;
    req.PutVarU64(specs.size());
    for (const OracleTargetSpec& spec : specs) {
      const double target_score =
          ScorePartsOf(*spec.query, corpus_->dist_norm(),
                       oracle->Object(spec.target))
              .score;
      shardrpc::PutQuery(&req, *spec.query);
      req.PutU32(spec.target);
      req.PutF64(target_score);
    }
    const std::string body = req.data();

    const size_t n = corpus_->num_shards();
    shards_.resize(n);
    for (ShardState& shard : shards_) shard.members.resize(specs.size());
    corpus_->ForEachShard([&](size_t s) {
      Result<std::string> raw =
          corpus_->shard(s).Call("POST", shardrpc::kProbeOpenPath, body);
      if (!raw.ok()) {
        corpus_->RecordError(raw.status());
        return;
      }
      BufReader in(raw->data(), raw->size());
      shards_[s].session = in.GetU64();
      for (MemberBounds& member : shards_[s].members) {
        member.lower = in.GetU64();
        member.upper = in.GetU64();
        member.resolved = in.GetU8() != 0;
      }
      if (!in.ok()) {
        corpus_->RecordError(in.status());
        // Back to the pinned-zero defaults: a half-parsed member with
        // resolved=false would make the refinement loop spin forever on a
        // shard that can no longer answer (the request 503s via the epoch).
        shards_[s].session = 0;
        shards_[s].members.assign(shards_[s].members.size(), MemberBounds{});
      }
    });
  }

  ~RemoteRankProbeBatch() override {
    for (size_t s = 0; s < shards_.size(); ++s) {
      if (shards_[s].session == 0) continue;
      BufWriter req;
      req.PutU64(shards_[s].session);
      (void)corpus_->shard(s).Call("POST", shardrpc::kProbeClosePath,
                                   req.data());
    }
  }

  size_t size() const override { return members_; }

  size_t lower(size_t i) const override {
    size_t sum = 0;
    for (const ShardState& shard : shards_) sum += shard.members[i].lower;
    return sum + 1;
  }
  size_t upper(size_t i) const override {
    size_t sum = 0;
    for (const ShardState& shard : shards_) sum += shard.members[i].upper;
    return sum + 1;
  }
  bool resolved(size_t i) const override {
    for (const ShardState& shard : shards_) {
      if (!shard.members[i].resolved) return false;
    }
    return true;
  }

  void RefineLevel(const std::vector<size_t>& members) override {
    const size_t n = shards_.size();
    std::vector<uint64_t> kcr_deltas(n, 0);
    std::vector<uint64_t> scored_deltas(n, 0);
    corpus_->ForEachShard([&](size_t s) {
      ShardState& shard = shards_[s];
      if (shard.session == 0) return;  // Open failed; epoch already bumped.
      // Only the members with an open frontier on THIS shard are sent.
      std::vector<size_t> wanted;
      for (size_t m : members) {
        if (!shard.members[m].resolved) wanted.push_back(m);
      }
      if (wanted.empty()) return;
      BufWriter req;
      req.PutU64(shard.session);
      req.PutVarU64(wanted.size());
      for (size_t m : wanted) req.PutVarU32(static_cast<uint32_t>(m));
      Result<std::string> raw =
          corpus_->shard(s).Call("POST", shardrpc::kProbeRefinePath,
                                 req.data());
      // Any failure pins the asked members on this shard: bounds stop
      // narrowing but resolved() becomes true, so the caller's refinement
      // loop TERMINATES and the request surfaces the bumped epoch as a 503
      // — instead of re-issuing a doomed RPC (or spinning) forever. This
      // covers a restarted shard (lost session -> 404) and a server-side
      // session eviction alike.
      auto pin_wanted = [&] {
        for (size_t m : wanted) shard.members[m].resolved = true;
      };
      if (!raw.ok()) {
        corpus_->RecordError(raw.status());
        pin_wanted();
        return;
      }
      BufReader in(raw->data(), raw->size());
      const uint64_t count = in.GetVarU64();
      if (count != wanted.size()) {
        corpus_->RecordError(
            Status::InvalidArgument("bad /shard/probe/refine response"));
        pin_wanted();
        return;
      }
      for (size_t m : wanted) {
        shard.members[m].lower = in.GetU64();
        shard.members[m].upper = in.GetU64();
        shard.members[m].resolved = in.GetU8() != 0;
      }
      kcr_deltas[s] = in.GetU64();
      scored_deltas[s] = in.GetU64();
      if (!in.ok()) {
        corpus_->RecordError(in.status());
        pin_wanted();
      }
    });
    for (size_t s = 0; s < n; ++s) {
      stats_->kcr_nodes_expanded += kcr_deltas[s];
      stats_->objects_scored += scored_deltas[s];
    }
  }

 private:
  struct MemberBounds {
    uint64_t lower = 0;
    uint64_t upper = 0;
    bool resolved = true;  // A failed shard contributes a pinned zero.
  };
  struct ShardState {
    uint64_t session = 0;
    std::vector<MemberBounds> members;
  };

  const RemoteCorpus* corpus_;
  KeywordAdaptStats* stats_;
  size_t members_;
  std::vector<ShardState> shards_;
};

}  // namespace

std::unique_ptr<ScorePlaneSession> RemoteShardOracle::PrepareScorePlane(
    const Query& query, PrefAdjustMode mode) const {
  return std::make_unique<RemoteScorePlaneSession>(corpus_, this, &query,
                                                   mode);
}

std::unique_ptr<RankProbe> RemoteShardOracle::ProbeRank(
    const Query& candidate, ObjectId global_id,
    KeywordAdaptStats* stats) const {
  const std::vector<OracleTargetSpec> specs{{&candidate, global_id}};
  return std::make_unique<BatchOfOneProbe>(
      std::make_unique<RemoteRankProbeBatch>(corpus_, this, specs, stats));
}

std::unique_ptr<RankProbeBatch> RemoteShardOracle::ProbeRankBatch(
    const std::vector<OracleTargetSpec>& specs,
    KeywordAdaptStats* stats) const {
  return std::make_unique<RemoteRankProbeBatch>(corpus_, this, specs, stats);
}

}  // namespace yask
