// Copyright (c) 2026 The YASK reproduction authors.
// TSV persistence for datasets, so generated workloads can be inspected,
// versioned and reloaded. Format, one object per line:
//
//   <x> \t <y> \t <space-separated keywords> \t <optional name>

#ifndef YASK_STORAGE_DATASET_IO_H_
#define YASK_STORAGE_DATASET_IO_H_

#include <string>

#include "src/common/status.h"
#include "src/storage/object_store.h"

namespace yask {

/// Writes the store to `path`; overwrites. Keyword ids are expanded to words.
Status SaveDataset(const ObjectStore& store, const std::string& path);

/// Loads a dataset written by SaveDataset (or hand-authored). Lines that are
/// empty or start with '#' are skipped. Returns InvalidArgument with a line
/// number on malformed input.
Result<ObjectStore> LoadDataset(const std::string& path);

}  // namespace yask

#endif  // YASK_STORAGE_DATASET_IO_H_
