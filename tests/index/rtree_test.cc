#include "src/index/rtree.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "src/storage/dataset_generator.h"

namespace yask {
namespace {

ObjectStore MakeStore(size_t n, uint64_t seed = 42,
                      SpatialDistribution dist = SpatialDistribution::kUniform) {
  DatasetSpec spec;
  spec.num_objects = n;
  spec.seed = seed;
  spec.spatial = dist;
  spec.vocabulary_size = 50;
  return GenerateDataset(spec);
}

std::set<ObjectId> BruteRange(const ObjectStore& store, const Rect& range) {
  std::set<ObjectId> out;
  for (const SpatialObject& o : store.objects()) {
    if (range.Contains(o.loc)) out.insert(o.id);
  }
  return out;
}

std::set<ObjectId> TreeRange(const RTree& tree, const Rect& range) {
  std::set<ObjectId> out;
  tree.RangeQuery(range, [&](ObjectId id) { out.insert(id); });
  return out;
}

TEST(RTreeTest, EmptyTree) {
  ObjectStore store;
  RTree tree(&store);
  EXPECT_TRUE(tree.empty());
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_EQ(tree.height(), 1u);
  EXPECT_TRUE(tree.Validate().ok());
  size_t hits = 0;
  tree.RangeQuery(Rect::FromBounds(0, 0, 1, 1), [&](ObjectId) { ++hits; });
  EXPECT_EQ(hits, 0u);
}

TEST(RTreeTest, BulkLoadSmall) {
  const ObjectStore store = MakeStore(10);
  RTree tree(&store);
  tree.BulkLoad();
  EXPECT_EQ(tree.size(), 10u);
  EXPECT_EQ(tree.height(), 1u);  // Fits one leaf with fanout 32.
  ASSERT_TRUE(tree.Validate().ok()) << tree.Validate().ToString();
}

TEST(RTreeTest, BulkLoadValidatesAcrossSizes) {
  for (size_t n : {0u, 1u, 31u, 32u, 33u, 100u, 1000u, 5000u}) {
    const ObjectStore store = MakeStore(n);
    RTree tree(&store);
    tree.BulkLoad();
    EXPECT_EQ(tree.size(), n);
    Status s = tree.Validate();
    EXPECT_TRUE(s.ok()) << "n=" << n << ": " << s.ToString();
  }
}

TEST(RTreeTest, BulkLoadHeightGrowsLogarithmically) {
  const ObjectStore store = MakeStore(5000);
  RTree tree(&store);
  tree.BulkLoad();
  EXPECT_GE(tree.height(), 2u);
  EXPECT_LE(tree.height(), 4u);
}

TEST(RTreeTest, InsertValidates) {
  const ObjectStore store = MakeStore(1000);
  RTree tree(&store);
  for (size_t i = 0; i < store.size(); ++i) {
    tree.Insert(static_cast<ObjectId>(i));
  }
  EXPECT_EQ(tree.size(), 1000u);
  Status s = tree.Validate();
  ASSERT_TRUE(s.ok()) << s.ToString();
}

TEST(RTreeTest, RangeQueryMatchesBruteForceAfterBulkLoad) {
  const ObjectStore store = MakeStore(3000, 7, SpatialDistribution::kClustered);
  RTree tree(&store);
  tree.BulkLoad();
  Rng rng(99);
  for (int i = 0; i < 50; ++i) {
    const double x = rng.NextDouble();
    const double y = rng.NextDouble();
    const Rect range = Rect::FromBounds(
        x, y, std::min(1.0, x + rng.NextDouble(0, 0.3)),
        std::min(1.0, y + rng.NextDouble(0, 0.3)));
    EXPECT_EQ(TreeRange(tree, range), BruteRange(store, range));
  }
}

TEST(RTreeTest, RangeQueryMatchesBruteForceAfterInserts) {
  const ObjectStore store = MakeStore(2000, 11);
  RTree tree(&store);
  for (size_t i = 0; i < store.size(); ++i) {
    tree.Insert(static_cast<ObjectId>(i));
  }
  Rng rng(123);
  for (int i = 0; i < 50; ++i) {
    const double x = rng.NextDouble(0, 0.8);
    const double y = rng.NextDouble(0, 0.8);
    const Rect range = Rect::FromBounds(x, y, x + 0.2, y + 0.2);
    EXPECT_EQ(TreeRange(tree, range), BruteRange(store, range));
  }
}

TEST(RTreeTest, DeleteRemovesAndValidates) {
  const ObjectStore store = MakeStore(500, 3);
  RTree tree(&store);
  tree.BulkLoad();
  // Delete every third object.
  std::set<ObjectId> deleted;
  for (ObjectId id = 0; id < 500; id += 3) {
    EXPECT_TRUE(tree.Delete(id)) << id;
    deleted.insert(id);
  }
  EXPECT_EQ(tree.size(), 500u - deleted.size());
  Status s = tree.Validate();
  ASSERT_TRUE(s.ok()) << s.ToString();
  // Deleted objects are gone; others remain findable.
  const Rect everywhere = Rect::FromBounds(-1, -1, 2, 2);
  const std::set<ObjectId> remaining = TreeRange(tree, everywhere);
  EXPECT_EQ(remaining.size(), tree.size());
  for (ObjectId id : deleted) EXPECT_FALSE(remaining.count(id));
}

TEST(RTreeTest, DeleteMissingReturnsFalse) {
  const ObjectStore store = MakeStore(100);
  RTree tree(&store);
  tree.BulkLoad();
  EXPECT_TRUE(tree.Delete(42));
  EXPECT_FALSE(tree.Delete(42));
  EXPECT_TRUE(tree.Validate().ok());
}

TEST(RTreeTest, DeleteEverything) {
  const ObjectStore store = MakeStore(300, 5);
  RTree tree(&store);
  tree.BulkLoad();
  for (ObjectId id = 0; id < 300; ++id) {
    ASSERT_TRUE(tree.Delete(id)) << id;
  }
  EXPECT_TRUE(tree.empty());
  EXPECT_TRUE(tree.Validate().ok());
  // Tree stays usable afterwards.
  tree.Insert(7);
  EXPECT_EQ(tree.size(), 1u);
  EXPECT_TRUE(tree.Validate().ok());
}

TEST(RTreeTest, TraverseVisitsEverythingWhenUnfiltered) {
  const ObjectStore store = MakeStore(800, 13);
  RTree tree(&store);
  tree.BulkLoad();
  size_t count = 0;
  tree.Traverse([](const RTree::Node&) { return true; },
                [&](ObjectId) { ++count; });
  EXPECT_EQ(count, 800u);
}

TEST(RTreeTest, TraversePruningByRect) {
  const ObjectStore store = MakeStore(800, 17);
  RTree tree(&store);
  tree.BulkLoad();
  const Rect range = Rect::FromBounds(0.2, 0.2, 0.5, 0.5);
  std::set<ObjectId> got;
  tree.Traverse(
      [&](const RTree::Node& n) { return n.rect.Intersects(range); },
      [&](ObjectId id) {
        if (range.Contains(store.Get(id).loc)) got.insert(id);
      });
  EXPECT_EQ(got, BruteRange(store, range));
}

TEST(RTreeTest, MemoryUsageGrowsWithSize) {
  const ObjectStore small = MakeStore(100);
  const ObjectStore large = MakeStore(5000);
  RTree t1(&small);
  t1.BulkLoad();
  RTree t2(&large);
  t2.BulkLoad();
  EXPECT_GT(t2.MemoryUsageBytes(), t1.MemoryUsageBytes());
}

TEST(RTreeTest, CustomFanoutRespected) {
  const ObjectStore store = MakeStore(500);
  RTreeOptions opts;
  opts.max_entries = 8;
  opts.min_entries = 3;
  RTree tree(&store, opts);
  tree.BulkLoad();
  EXPECT_TRUE(tree.Validate().ok());
  EXPECT_GE(tree.height(), 3u);  // Smaller fanout means a taller tree.
}

// Mixed workload property test: interleaved inserts and deletes keep all
// invariants and match a std::set reference for membership.
class RTreeMixedWorkload : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RTreeMixedWorkload, InvariantsUnderChurn) {
  const ObjectStore store = MakeStore(1200, GetParam());
  RTree tree(&store);
  std::set<ObjectId> reference;
  Rng rng(GetParam() ^ 0xFEED);
  for (int step = 0; step < 3000; ++step) {
    const ObjectId id = static_cast<ObjectId>(rng.NextBounded(store.size()));
    if (reference.count(id)) {
      EXPECT_TRUE(tree.Delete(id));
      reference.erase(id);
    } else {
      tree.Insert(id);
      reference.insert(id);
    }
    if (step % 500 == 499) {
      Status s = tree.Validate();
      ASSERT_TRUE(s.ok()) << "step " << step << ": " << s.ToString();
    }
  }
  EXPECT_EQ(tree.size(), reference.size());
  const std::set<ObjectId> contents =
      TreeRange(tree, Rect::FromBounds(-1, -1, 2, 2));
  EXPECT_EQ(contents, reference);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RTreeMixedWorkload,
                         ::testing::Values(1, 7, 31));

}  // namespace
}  // namespace yask
