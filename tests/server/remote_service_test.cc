// End-to-end acceptance test of the remote tier: a YaskService coordinator
// over loopback ShardService fleets must return BYTE-identical /query,
// /whynot and /forget payloads to a YaskService over the in-process
// ShardedCorpus built from the same objects, at 1/2/4 shards (only the
// response_millis timing fields are excluded — wall time is the one thing a
// network hop legitimately changes). Plus the remote-only failure modes:
// 503 when a shard dies mid-serving, 501 naming KcR-less shards, /health
// topology reporting, and 404 for stale query ids.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/corpus/remote_corpus.h"
#include "src/corpus/sharded_corpus.h"
#include "src/server/json.h"
#include "src/server/shard_service.h"
#include "src/server/yask_service.h"
#include "src/storage/hotel_generator.h"

namespace yask {
namespace {

struct ShardFleet {
  std::vector<std::unique_ptr<ShardService>> services;
  std::vector<std::string> endpoints;

  explicit ShardFleet(const ShardedCorpus& corpus) {
    for (size_t s = 0; s < corpus.num_shards(); ++s) {
      ShardService::Info info;
      info.shard_index = static_cast<uint32_t>(s);
      info.shard_count = static_cast<uint32_t>(corpus.num_shards());
      info.global_bounds = corpus.bounds();
      info.dist_norm = corpus.dist_norm();
      info.to_global = corpus.shard_global_ids(s);
      info.router = corpus.router_description();
      services.push_back(
          std::make_unique<ShardService>(corpus.shard(s), std::move(info)));
      EXPECT_TRUE(services.back()->Start().ok());
      endpoints.push_back("127.0.0.1:" +
                          std::to_string(services.back()->port()));
    }
  }

  ~ShardFleet() { Stop(); }
  void Stop() {
    for (auto& service : services) service->Stop();
  }
};

/// Drops every (nested) "response_millis" field and re-dumps — the one
/// legitimate difference between transports.
JsonValue StripTiming(const JsonValue& v) {
  if (v.is_object()) {
    JsonValue out = JsonValue::MakeObject();
    for (const auto& [key, value] : v.object_items()) {
      if (key == "response_millis") continue;
      out.Set(key, StripTiming(value));
    }
    return out;
  }
  if (v.is_array()) {
    JsonValue out = JsonValue::MakeArray();
    for (const JsonValue& item : v.array_items()) {
      out.Append(StripTiming(item));
    }
    return out;
  }
  return v;
}

std::string Normalized(const std::string& payload) {
  auto parsed = JsonValue::Parse(payload);
  EXPECT_TRUE(parsed.ok()) << payload;
  if (!parsed.ok()) return payload;
  return StripTiming(parsed.value()).Dump();
}

/// POSTs the same body to both services and expects byte-identical payloads
/// (modulo timing) and identical statuses.
void ExpectSamePayload(const YaskService& remote, const YaskService& local,
                       const std::string& method, const std::string& path,
                       const std::string& body, const std::string& label,
                       int* status_out = nullptr) {
  int remote_status = 0;
  int local_status = 0;
  auto remote_body = HttpFetch(remote.port(), method, path, body,
                               &remote_status);
  auto local_body = HttpFetch(local.port(), method, path, body, &local_status);
  ASSERT_TRUE(remote_body.ok()) << label;
  ASSERT_TRUE(local_body.ok()) << label;
  EXPECT_EQ(remote_status, local_status) << label;
  EXPECT_EQ(Normalized(*remote_body), Normalized(*local_body)) << label;
  if (status_out != nullptr) *status_out = remote_status;
}

TEST(RemoteServiceTest, PayloadParityAcrossShardCounts) {
  const ObjectStore store = GenerateHotelDataset();
  for (const uint32_t shards : {1u, 2u, 4u}) {
    const ShardedCorpus sharded =
        ShardedCorpus::Partition(store, GridShardRouter::Fit(store, shards));
    ShardFleet fleet(sharded);
    auto connected = RemoteCorpus::Connect(fleet.endpoints);
    ASSERT_TRUE(connected.ok()) << connected.status().ToString();
    const RemoteCorpus remote_corpus = std::move(connected).value();

    YaskService remote(remote_corpus);
    YaskService local(sharded);
    ASSERT_TRUE(remote.Start().ok());
    ASSERT_TRUE(local.Start().ok());
    const std::string tag = std::to_string(shards) + " shards";

    // The same initial query on both (both allocate query_id 1).
    const std::string query =
        "{\"x\":114.158,\"y\":22.281,\"keywords\":\"clean comfortable\","
        "\"k\":3}";
    ExpectSamePayload(remote, local, "POST", "/query", query, tag + " query");

    // Every why-not model, against the cached query.
    for (const std::string model :
         {"both", "preference", "keyword", "combined"}) {
      const std::string whynot = "{\"query_id\":1,\"missing\":[\"" +
                                 store.Get(81).name + "\"],\"model\":\"" +
                                 model + "\"}";
      ExpectSamePayload(remote, local, "POST", "/whynot", whynot,
                        tag + " whynot/" + model);
    }

    // Object sample and forget round-trip.
    ExpectSamePayload(remote, local, "GET", "/objects?limit=25", "",
                      tag + " objects");
    ExpectSamePayload(remote, local, "POST", "/forget", "{\"query_id\":1}",
                      tag + " forget");
    // A forgotten query answers 404 identically.
    int status = 0;
    ExpectSamePayload(remote, local, "POST", "/whynot",
                      "{\"query_id\":1,\"missing\":[81]}", tag + " stale",
                      &status);
    EXPECT_EQ(status, 404) << tag;

    remote.Stop();
    local.Stop();
  }
}

TEST(RemoteServiceTest, HealthReportsRemoteTopology) {
  const ObjectStore store = GenerateHotelDataset();
  const ShardedCorpus sharded =
      ShardedCorpus::Partition(store, GridShardRouter::Fit(store, 2));
  ShardFleet fleet(sharded);
  auto connected = RemoteCorpus::Connect(fleet.endpoints);
  ASSERT_TRUE(connected.ok());
  YaskService service(*connected);
  ASSERT_TRUE(service.Start().ok());

  int status = 0;
  auto body = HttpFetch(service.port(), "GET", "/health", "", &status);
  ASSERT_TRUE(body.ok());
  EXPECT_EQ(status, 200);
  auto health = JsonValue::Parse(*body);
  ASSERT_TRUE(health.ok());
  EXPECT_EQ(health->Get("status").as_string(), "ok");
  EXPECT_EQ(static_cast<size_t>(health->Get("objects").as_number()),
            store.size());
  EXPECT_EQ(health->Get("shards").as_number(), 2);
  EXPECT_EQ(health->Get("remote_shards").size(), 2u);
  EXPECT_TRUE(health->Get("indexes").Get("kcr").as_bool());
  EXPECT_TRUE(health->Get("whynot").as_bool());

  // The shard servers' own /health reports per-shard index availability.
  auto shard_health =
      HttpFetch(fleet.services[0]->port(), "GET", "/health", "", &status);
  ASSERT_TRUE(shard_health.ok());
  auto parsed = JsonValue::Parse(*shard_health);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->Get("role").as_string(), "shard");
  EXPECT_TRUE(parsed->Get("indexes").Get("kcr").as_bool());

  // A coordinator holds no state: /snapshot is a clear 501.
  auto snap = HttpFetch(service.port(), "POST", "/snapshot", "{}", &status);
  ASSERT_TRUE(snap.ok());
  EXPECT_EQ(status, 501);

  service.Stop();
}

TEST(RemoteServiceTest, WhyNotIs501NamingKcrLessShards) {
  const ObjectStore store = GenerateHotelDataset();
  CorpusOptions no_kcr;
  no_kcr.build_kcr_tree = false;
  const ShardedCorpus sharded =
      ShardedCorpus::Partition(store, GridShardRouter::Fit(store, 2), no_kcr);
  ShardFleet fleet(sharded);
  auto connected = RemoteCorpus::Connect(fleet.endpoints);
  ASSERT_TRUE(connected.ok());
  YaskService service(*connected);
  ASSERT_TRUE(service.Start().ok());

  // /query still works (top-k needs only the SetR-tree)...
  int status = 0;
  auto body = HttpFetch(
      service.port(), "POST", "/query",
      "{\"x\":114.158,\"y\":22.281,\"keywords\":\"clean\",\"k\":3}", &status);
  ASSERT_TRUE(body.ok());
  EXPECT_EQ(status, 200);

  // ...but /whynot fails fast, naming the shards and the fix.
  body = HttpFetch(service.port(), "POST", "/whynot",
                   "{\"query_id\":1,\"missing\":[5]}", &status);
  ASSERT_TRUE(body.ok());
  EXPECT_EQ(status, 501);
  EXPECT_NE(body->find("KcR"), std::string::npos) << *body;
  EXPECT_NE(body->find(fleet.endpoints[0]), std::string::npos) << *body;

  // /health says so up front.
  body = HttpFetch(service.port(), "GET", "/health", "", &status);
  ASSERT_TRUE(body.ok());
  auto health = JsonValue::Parse(*body);
  ASSERT_TRUE(health.ok());
  EXPECT_FALSE(health->Get("whynot").as_bool());

  service.Stop();
}

TEST(RemoteServiceTest, DeadShardSurfacesAs503NotGarbage) {
  const ObjectStore store = GenerateHotelDataset();
  const ShardedCorpus sharded =
      ShardedCorpus::Partition(store, GridShardRouter::Fit(store, 2));
  auto fleet = std::make_unique<ShardFleet>(sharded);
  RemoteShardOptions opts;
  opts.connect_timeout_ms = 300;
  opts.call_deadline_ms = 1000;
  opts.retries = 0;
  auto connected = RemoteCorpus::Connect(fleet->endpoints, opts);
  ASSERT_TRUE(connected.ok());
  YaskService service(*connected);
  ASSERT_TRUE(service.Start().ok());

  const std::string query =
      "{\"x\":114.158,\"y\":22.281,\"keywords\":\"clean comfortable\","
      "\"k\":3}";
  int status = 0;
  auto body = HttpFetch(service.port(), "POST", "/query", query, &status);
  ASSERT_TRUE(body.ok());
  EXPECT_EQ(status, 200);

  // Kill the fleet; a /query must answer 503, never a silently-partial 200.
  fleet->Stop();
  body = HttpFetch(service.port(), "POST", "/query", query, &status);
  ASSERT_TRUE(body.ok());
  EXPECT_EQ(status, 503);
  EXPECT_NE(body->find("shard"), std::string::npos) << *body;

  service.Stop();
}

}  // namespace
}  // namespace yask
