// Zero-downtime cutover acceptance — the coordinator's elastic-fleet admin
// plane. A YaskService over a 2-shard remote fleet is cut over to a 4-shard
// fleet of the SAME dataset via POST /admin/layout, and every payload before,
// during and after the cutover must stay byte-identical to an in-process
// reference over the same objects — including why-not questions against a
// query CACHED BEFORE the cutover (the query-id cache is service-level and
// survives layout swaps). Plus the admin failure modes: dataset mismatch is
// 409, an unreachable fleet is 502, non-remote mode is 501, disabled admin
// is 403, and POST /admin/replicas validates add/remove against the live
// layout (409 duplicate, 404 unknown, 400 removing the last replica).

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/corpus/remote_corpus.h"
#include "src/corpus/sharded_corpus.h"
#include "src/server/json.h"
#include "src/server/shard_service.h"
#include "src/server/yask_service.h"
#include "src/storage/dataset_generator.h"
#include "src/storage/hotel_generator.h"

namespace yask {
namespace {

struct ShardFleet {
  std::vector<std::unique_ptr<ShardService>> services;
  std::vector<std::string> endpoints;

  explicit ShardFleet(const ShardedCorpus& corpus) {
    for (size_t s = 0; s < corpus.num_shards(); ++s) {
      ShardService::Info info;
      info.shard_index = static_cast<uint32_t>(s);
      info.shard_count = static_cast<uint32_t>(corpus.num_shards());
      info.global_bounds = corpus.bounds();
      info.dist_norm = corpus.dist_norm();
      info.to_global = corpus.shard_global_ids(s);
      info.router = corpus.router_description();
      services.push_back(
          std::make_unique<ShardService>(corpus.shard(s), std::move(info)));
      EXPECT_TRUE(services.back()->Start().ok());
      endpoints.push_back("127.0.0.1:" +
                          std::to_string(services.back()->port()));
    }
  }

  std::string Spec() const {
    std::string spec;
    for (const std::string& e : endpoints) {
      if (!spec.empty()) spec += ',';
      spec += e;
    }
    return spec;
  }

  ~ShardFleet() { Stop(); }
  void Stop() {
    for (auto& service : services) service->Stop();
  }
};

JsonValue StripTiming(const JsonValue& v) {
  if (v.is_object()) {
    JsonValue out = JsonValue::MakeObject();
    for (const auto& [key, value] : v.object_items()) {
      if (key == "response_millis") continue;
      out.Set(key, StripTiming(value));
    }
    return out;
  }
  if (v.is_array()) {
    JsonValue out = JsonValue::MakeArray();
    for (const JsonValue& item : v.array_items()) {
      out.Append(StripTiming(item));
    }
    return out;
  }
  return v;
}

std::string Normalized(const std::string& payload) {
  auto parsed = JsonValue::Parse(payload);
  EXPECT_TRUE(parsed.ok()) << payload;
  if (!parsed.ok()) return payload;
  return StripTiming(parsed.value()).Dump();
}

void ExpectSamePayload(const YaskService& remote, const YaskService& local,
                       const std::string& method, const std::string& path,
                       const std::string& body, const std::string& label) {
  int remote_status = 0;
  int local_status = 0;
  auto remote_body =
      HttpFetch(remote.port(), method, path, body, &remote_status);
  auto local_body = HttpFetch(local.port(), method, path, body, &local_status);
  ASSERT_TRUE(remote_body.ok()) << label;
  ASSERT_TRUE(local_body.ok()) << label;
  EXPECT_EQ(remote_status, local_status) << label;
  EXPECT_EQ(Normalized(*remote_body), Normalized(*local_body)) << label;
}

JsonValue MustJson(const Result<std::string>& body) {
  EXPECT_TRUE(body.ok());
  auto parsed = JsonValue::Parse(*body);
  EXPECT_TRUE(parsed.ok()) << *body;
  return std::move(parsed).value();
}

TEST(AdminCutoverTest, ReshardCutoverKeepsPayloadsByteIdentical) {
  const ObjectStore store = GenerateHotelDataset();
  const ShardedCorpus old_layout =
      ShardedCorpus::Partition(store, GridShardRouter::Fit(store, 2));
  const ShardedCorpus new_layout =
      ShardedCorpus::Partition(store, GridShardRouter::Fit(store, 4));

  auto old_fleet = std::make_unique<ShardFleet>(old_layout);
  ShardFleet new_fleet(new_layout);
  auto connected = RemoteCorpus::Connect(old_fleet->endpoints);
  ASSERT_TRUE(connected.ok()) << connected.status().ToString();

  YaskServiceOptions options;
  options.enable_fleet_admin = true;
  YaskService remote(*connected, options);
  YaskService local(old_layout);
  ASSERT_TRUE(remote.Start().ok());
  ASSERT_TRUE(local.Start().ok());

  // A query cached BEFORE the cutover (query_id 1 on both services).
  const std::string query =
      "{\"x\":114.158,\"y\":22.281,\"keywords\":\"clean comfortable\","
      "\"k\":3}";
  ExpectSamePayload(remote, local, "POST", "/query", query, "pre-cutover");

  int status = 0;
  auto layout = MustJson(
      HttpFetch(remote.port(), "GET", "/admin/layout", "", &status));
  EXPECT_EQ(status, 200);
  EXPECT_EQ(layout.Get("generation").as_number(), 1);

  // --- The cutover: swap the coordinator to the 4-shard fleet. ---
  auto swapped = MustJson(HttpFetch(
      remote.port(), "POST", "/admin/layout",
      "{\"remote_shards\":\"" + new_fleet.Spec() + "\"}", &status));
  ASSERT_EQ(status, 200) << swapped.Dump();
  EXPECT_EQ(swapped.Get("generation").as_number(), 2);

  // The old fleet is now drainable: kill it. Everything that follows must
  // flow through the new layout — and stay byte-identical.
  old_fleet->Stop();
  old_fleet.reset();

  ExpectSamePayload(remote, local, "POST", "/query", query, "post-cutover");
  // The why-not question targets the PRE-cutover cached query: the cache
  // survives the swap and the answer runs on the new fleet.
  const std::string whynot = "{\"query_id\":1,\"missing\":[\"" +
                             store.Get(81).name + "\"],\"model\":\"both\"}";
  ExpectSamePayload(remote, local, "POST", "/whynot", whynot,
                    "post-cutover whynot of pre-cutover query");
  ExpectSamePayload(remote, local, "GET", "/objects?limit=25", "",
                    "post-cutover objects");

  layout = MustJson(
      HttpFetch(remote.port(), "GET", "/admin/layout", "", &status));
  EXPECT_EQ(layout.Get("generation").as_number(), 2);
  EXPECT_EQ(layout.Get("spec").as_string(), new_fleet.Spec());
  EXPECT_EQ(layout.Get("shards").as_number(), 4);

  // /health reports the live generation too.
  auto health =
      MustJson(HttpFetch(remote.port(), "GET", "/health", "", &status));
  EXPECT_EQ(health.Get("layout").Get("generation").as_number(), 2);
  EXPECT_TRUE(health.Has("build"));

  remote.Stop();
  local.Stop();
}

TEST(AdminCutoverTest, RejectsWrongDatasetAndDeadFleets) {
  const ObjectStore store = GenerateHotelDataset();
  const ShardedCorpus layout =
      ShardedCorpus::Partition(store, GridShardRouter::Fit(store, 2));
  ShardFleet fleet(layout);
  auto connected = RemoteCorpus::Connect(fleet.endpoints);
  ASSERT_TRUE(connected.ok());

  YaskServiceOptions options;
  options.enable_fleet_admin = true;
  options.admin_connect_options.connect_timeout_ms = 300;
  options.admin_connect_options.retries = 0;
  YaskService service(*connected, options);
  ASSERT_TRUE(service.Start().ok());

  // A fleet serving a DIFFERENT dataset: connectable, but cutting over
  // would change answers — 409, and the active layout stays.
  DatasetSpec other_spec;
  other_spec.num_objects = 300;
  other_spec.seed = 1234;
  const ObjectStore other = GenerateDataset(other_spec);
  const ShardedCorpus other_layout =
      ShardedCorpus::Partition(other, GridShardRouter::Fit(other, 2));
  ShardFleet other_fleet(other_layout);
  int status = 0;
  auto body = HttpFetch(
      service.port(), "POST", "/admin/layout",
      "{\"remote_shards\":\"" + other_fleet.Spec() + "\"}", &status);
  ASSERT_TRUE(body.ok());
  EXPECT_EQ(status, 409) << *body;

  // A dead fleet: 502, and the active layout stays.
  body = HttpFetch(service.port(), "POST", "/admin/layout",
                   "{\"remote_shards\":\"127.0.0.1:1|127.0.0.1:2,"
                   "127.0.0.1:3|127.0.0.1:4\"}",
                   &status);
  ASSERT_TRUE(body.ok());
  EXPECT_EQ(status, 502) << *body;

  auto layout_body = MustJson(
      HttpFetch(service.port(), "GET", "/admin/layout", "", &status));
  EXPECT_EQ(layout_body.Get("generation").as_number(), 1);

  // With the admin plane disabled (the default), the endpoint is 403.
  YaskService locked(*connected);
  ASSERT_TRUE(locked.Start().ok());
  body = HttpFetch(locked.port(), "GET", "/admin/layout", "", &status);
  ASSERT_TRUE(body.ok());
  EXPECT_EQ(status, 403);
  locked.Stop();

  // In non-remote mode the admin plane is meaningless: 501.
  YaskServiceOptions local_options;
  local_options.enable_fleet_admin = true;
  YaskService local(layout, local_options);
  ASSERT_TRUE(local.Start().ok());
  body = HttpFetch(local.port(), "GET", "/admin/layout", "", &status);
  ASSERT_TRUE(body.ok());
  EXPECT_EQ(status, 501);
  local.Stop();

  service.Stop();
}

TEST(AdminCutoverTest, ReplicaAddRemoveRevalidatesTheFleet) {
  const ObjectStore store = GenerateHotelDataset();
  const ShardedCorpus layout =
      ShardedCorpus::Partition(store, GridShardRouter::Fit(store, 2));
  ShardFleet fleet(layout);
  auto connected = RemoteCorpus::Connect(fleet.endpoints);
  ASSERT_TRUE(connected.ok());

  YaskServiceOptions options;
  options.enable_fleet_admin = true;
  YaskService service(*connected, options);
  YaskService local(layout);
  ASSERT_TRUE(service.Start().ok());
  ASSERT_TRUE(local.Start().ok());

  // Boot a second replica of shard 0 and add it at runtime.
  ShardService::Info info;
  info.shard_index = 0;
  info.shard_count = 2;
  info.global_bounds = layout.bounds();
  info.dist_norm = layout.dist_norm();
  info.to_global = layout.shard_global_ids(0);
  info.router = layout.router_description();
  ShardService replica(layout.shard(0), std::move(info));
  ASSERT_TRUE(replica.Start().ok());
  const std::string endpoint =
      "127.0.0.1:" + std::to_string(replica.port());

  int status = 0;
  auto body = MustJson(HttpFetch(
      service.port(), "POST", "/admin/replicas",
      "{\"shard\":0,\"add\":\"" + endpoint + "\"}", &status));
  ASSERT_EQ(status, 200) << body.Dump();
  EXPECT_EQ(body.Get("generation").as_number(), 2);
  EXPECT_NE(body.Get("spec").as_string().find(endpoint), std::string::npos);

  // Queries keep answering exactly through the widened replica set.
  const std::string query =
      "{\"x\":114.158,\"y\":22.281,\"keywords\":\"clean comfortable\","
      "\"k\":3}";
  ExpectSamePayload(service, local, "POST", "/query", query, "post-add");

  // Adding it again is a conflict, not a widening.
  auto raw = HttpFetch(service.port(), "POST", "/admin/replicas",
                       "{\"shard\":0,\"add\":\"" + endpoint + "\"}", &status);
  ASSERT_TRUE(raw.ok());
  EXPECT_EQ(status, 409) << *raw;

  // Remove it again; removing twice is 404; removing the last is 400.
  body = MustJson(HttpFetch(
      service.port(), "POST", "/admin/replicas",
      "{\"shard\":0,\"remove\":\"" + endpoint + "\"}", &status));
  ASSERT_EQ(status, 200) << body.Dump();
  raw = HttpFetch(service.port(), "POST", "/admin/replicas",
                  "{\"shard\":0,\"remove\":\"" + endpoint + "\"}", &status);
  ASSERT_TRUE(raw.ok());
  EXPECT_EQ(status, 404) << *raw;
  raw = HttpFetch(service.port(), "POST", "/admin/replicas",
                  "{\"shard\":0,\"remove\":\"" + fleet.endpoints[0] + "\"}",
                  &status);
  ASSERT_TRUE(raw.ok());
  EXPECT_EQ(status, 400) << *raw;

  // An out-of-range shard index is 404.
  raw = HttpFetch(service.port(), "POST", "/admin/replicas",
                  "{\"shard\":9,\"add\":\"" + endpoint + "\"}", &status);
  ASSERT_TRUE(raw.ok());
  EXPECT_EQ(status, 404) << *raw;

  ExpectSamePayload(service, local, "POST", "/query", query, "post-remove");

  replica.Stop();
  service.Stop();
  local.Stop();
}

}  // namespace
}  // namespace yask
