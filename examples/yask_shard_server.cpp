// The remote shard server: boots ONE Corpus shard from its per-shard
// snapshot file (the shippable unit ShardedCorpus::Save / `dataset_tool
// build-shards` writes) and serves the shard RPC surface — /shard/topk with
// threshold broadcast plus the four why-not oracle seams (outscoring counts,
// rank-of-object, Eqn. (3) score-plane sessions, Eqn. (4) rank-probe
// batches) — to a coordinator running `yask_server_demo --remote-shards`.
//
// Index policy (fail fast, not 501-at-query-time): the snapshot is expected
// to CARRY its indexes. A file without the KcR section cannot serve why-not
// refinement, so by default the server refuses to start and says how to fix
// it; pass --rebuild-indexes to rebuild missing indexes from the object
// table at boot, or --topk-only to knowingly serve /shard/topk alone
// (/health reports the gap, the coordinator's /whynot answers 501 naming
// this shard).
//
//   $ ./yask_shard_server --snapshot state.shard-0.snap [--port P]
//                         [--workers N] [--rebuild-indexes] [--topk-only]
//
// A standalone (unsharded) snapshot is accepted too and served as shard 0
// of 1 — a one-process "remote" deployment for smoke tests.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <thread>

#include "src/common/timer.h"
#include "src/common/version.h"
#include "src/corpus/corpus.h"
#include "src/server/shard_protocol.h"
#include "src/server/shard_service.h"

using namespace yask;

int main(int argc, char** argv) {
  std::string snapshot_path;
  uint16_t port = 0;
  size_t workers = 8;
  bool rebuild_indexes = false;
  bool topk_only = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--version") {
      // Build identity + the shardrpc protocol range this binary speaks.
      // The rolling-upgrade CI job compares this across the fleet; a
      // coordinator accepts any replica whose version overlaps its range.
      std::printf("yask_shard_server %s shardrpc=%u..%u\n", BuildGitSha(),
                  shardrpc::kMinSupportedProtocolVersion,
                  shardrpc::kProtocolVersion);
      return 0;
    } else if (arg == "--snapshot" && i + 1 < argc) {
      snapshot_path = argv[++i];
    } else if (arg == "--port" && i + 1 < argc) {
      port = static_cast<uint16_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg == "--workers" && i + 1 < argc) {
      workers = static_cast<size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (arg == "--rebuild-indexes") {
      rebuild_indexes = true;
    } else if (arg == "--topk-only") {
      topk_only = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s --snapshot <shard.snap> [--port P] "
                   "[--workers N] [--rebuild-indexes] [--topk-only] "
                   "[--version]\n",
                   argv[0]);
      return 2;
    }
  }
  if (snapshot_path.empty()) {
    std::fprintf(stderr,
                 "%s: --snapshot is required (a shard file from "
                 "`dataset_tool build-shards` or ShardedCorpus::Save)\n",
                 argv[0]);
    return 2;
  }

  // Adopt-only by default: a shard server should serve what the file
  // carries, not quietly spend minutes re-indexing — unless asked.
  CorpusOptions options;
  options.build_kcr_tree = rebuild_indexes;
  Timer timer;
  std::unique_ptr<ShardManifest> manifest;
  Result<Corpus> corpus =
      CorpusBuilder(options).FromSnapshot(snapshot_path, &manifest);
  if (!corpus.ok()) {
    std::fprintf(stderr, "%s: cannot load snapshot %s: %s\n", argv[0],
                 snapshot_path.c_str(),
                 corpus.status().ToString().c_str());
    return 1;
  }
  if (!corpus->has_kcr() && !topk_only) {
    // The satellite contract: a snapshot missing the KcR section needed for
    // /whynot fails FAST with a clear error, instead of crashing a probe or
    // silently answering 501 later.
    std::fprintf(
        stderr,
        "%s: snapshot %s has no KcR-tree section — the coordinator could "
        "not answer /whynot through this shard.\n"
        "  * rebuild the shard files with their indexes: dataset_tool "
        "build-shards\n"
        "  * or rebuild at boot: %s --snapshot %s --rebuild-indexes\n"
        "  * or serve top-k only, knowingly: %s --snapshot %s --topk-only\n",
        argv[0], snapshot_path.c_str(), argv[0], snapshot_path.c_str(),
        argv[0], snapshot_path.c_str());
    return 1;
  }

  const ShardService::Info info =
      manifest != nullptr ? ShardService::InfoFromManifest(*manifest)
                          : ShardService::StandaloneInfo(*corpus);
  ShardServiceOptions service_options;
  service_options.port = port;
  service_options.num_workers = workers;
  ShardService service(*corpus, info, service_options);
  if (Status s = service.Start(); !s.ok()) {
    std::fprintf(stderr, "%s: cannot start: %s\n", argv[0],
                 s.ToString().c_str());
    return 1;
  }
  std::printf(
      "yask_shard_server: shard %u/%u (%zu objects, kcr=%s) from %s in "
      "%.0f ms, listening on 127.0.0.1:%u\n",
      info.shard_index, info.shard_count, corpus->size(),
      corpus->has_kcr() ? "yes" : "NO (top-k only)", snapshot_path.c_str(),
      timer.ElapsedMillis(), service.port());
  std::fflush(stdout);

  while (true) {
    std::this_thread::sleep_for(std::chrono::seconds(1));
  }
}
