#include "src/query/ranking.h"

#include <algorithm>

namespace yask {

size_t ComputeRankScan(const ObjectStore& store, const Query& query,
                       ObjectId target) {
  Scorer scorer(store, query);
  const double target_score = scorer.Score(target);
  size_t above = 0;
  for (const SpatialObject& o : store.objects()) {
    if (o.id == target) continue;
    if (OutranksTarget(scorer.Score(o), o.id, target_score, target)) ++above;
  }
  return above + 1;
}

size_t CountOutscoring(const ObjectStore& store, const SetRTree& tree,
                       const Scorer& scorer, double target_score,
                       ObjectId target_global,
                       const std::vector<ObjectId>* to_global,
                       RankStats* stats) {
  (void)store;  // The scorer already binds it; kept for symmetry and checks.
  size_t above = 0;

  std::vector<SetRTree::NodeId> stack{tree.root()};
  while (!stack.empty()) {
    const auto& node = tree.node(stack.back());
    stack.pop_back();
    if (stats != nullptr) ++stats->nodes_visited;

    const double ub = UpperBoundScore(scorer, node.rect, node.summary);
    if (node.summary.count == 0) continue;
    if (ub < target_score) continue;  // Nothing below can outrank.
    const double lb = LowerBoundScore(scorer, node.rect, node.summary);
    if (lb > target_score) {
      // Every object below strictly outranks the target. The target itself
      // cannot be below this node (its score equals target_score < lb).
      above += node.summary.count;
      if (stats != nullptr) ++stats->nodes_counted_wholesale;
      continue;
    }
    if (node.is_leaf) {
      for (const auto& e : node.entries) {
        const ObjectId gid = to_global != nullptr ? (*to_global)[e.id] : e.id;
        if (gid == target_global) continue;
        if (stats != nullptr) ++stats->objects_scored;
        if (OutranksTarget(scorer.Score(e.id), gid, target_score,
                           target_global)) {
          ++above;
        }
      }
    } else {
      for (const auto& e : node.entries) stack.push_back(e.id);
    }
  }
  return above;
}

size_t ComputeRank(const ObjectStore& store, const SetRTree& tree,
                   const Query& query, ObjectId target, RankStats* stats) {
  Scorer scorer(store, query);
  return CountOutscoring(store, tree, scorer, scorer.Score(target), target,
                         /*to_global=*/nullptr, stats) +
         1;
}

size_t LowestRank(const ObjectStore& store, const SetRTree& tree,
                  const Query& query, const std::vector<ObjectId>& missing,
                  RankStats* stats) {
  size_t lowest = 0;
  for (ObjectId m : missing) {
    lowest = std::max(lowest, ComputeRank(store, tree, query, m, stats));
  }
  return lowest;
}

}  // namespace yask
