// Copyright (c) 2026 The YASK reproduction authors.
// The spatial object type: o = (o.loc, o.doc) per §2.1 of the paper, plus an
// id and an optional display name for the demo layer.

#ifndef YASK_STORAGE_OBJECT_H_
#define YASK_STORAGE_OBJECT_H_

#include <cstdint>
#include <string>

#include "src/common/geometry.h"
#include "src/common/keyword_set.h"

namespace yask {

/// Dense object identifier; equal to the object's index in its ObjectStore.
using ObjectId = uint32_t;

/// Sentinel for "no object".
inline constexpr ObjectId kInvalidObject = static_cast<ObjectId>(-1);

/// A spatial web object: a point location plus a set of descriptive keywords.
struct SpatialObject {
  ObjectId id = kInvalidObject;
  Point loc;
  KeywordSet doc;
  /// Human-readable label ("Starbucks Central"); empty for synthetic data.
  std::string name;
};

}  // namespace yask

#endif  // YASK_STORAGE_OBJECT_H_
