// Corpus/CorpusBuilder: owned serving state built from raw objects or a
// snapshot file, with rebuild-on-missing-section behaviour.

#include "src/corpus/corpus.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "src/query/topk_engine.h"
#include "src/storage/dataset_generator.h"

namespace yask {
namespace {

ObjectStore SmallDataset(uint64_t seed = 11) {
  DatasetSpec spec;
  spec.num_objects = 500;
  spec.vocabulary_size = 60;
  spec.seed = seed;
  return GenerateDataset(spec);
}

Query SomeQuery(const ObjectStore& store, uint32_t k = 10) {
  Rng rng(3);
  Query q;
  q.loc = SampleQueryLocation(store, &rng);
  q.doc = SampleQueryKeywords(store, 3, &rng);
  q.k = k;
  return q;
}

TEST(CorpusTest, BuildOwnsStoreAndIndexes) {
  const Corpus corpus = CorpusBuilder().Build(SmallDataset());
  EXPECT_EQ(corpus.size(), 500u);
  EXPECT_EQ(corpus.setr().size(), 500u);
  ASSERT_TRUE(corpus.has_kcr());
  EXPECT_EQ(corpus.kcr().size(), 500u);
  EXPECT_EQ(corpus.inverted(), nullptr);  // Off by default.
  EXPECT_TRUE(corpus.setr().Validate().ok());
  EXPECT_TRUE(corpus.kcr().Validate().ok());

  const Query q = SomeQuery(corpus.store());
  EXPECT_EQ(corpus.topk().Query(q), TopKScan(corpus.store(), q));
}

TEST(CorpusTest, OptionsControlOptionalIndexes) {
  CorpusOptions options;
  options.build_kcr_tree = false;
  options.build_inverted_index = true;
  const Corpus corpus = CorpusBuilder(options).Build(SmallDataset());
  EXPECT_FALSE(corpus.has_kcr());
  ASSERT_NE(corpus.inverted(), nullptr);
  EXPECT_EQ(corpus.inverted()->postings().size(), corpus.vocab().size());
}

TEST(CorpusTest, MoveKeepsIndexStorePointersValid) {
  Corpus corpus = CorpusBuilder().Build(SmallDataset());
  const Query q = SomeQuery(corpus.store());
  const TopKResult before = corpus.topk().Query(q);
  Corpus moved = std::move(corpus);
  EXPECT_EQ(moved.topk().Query(q), before);
  EXPECT_EQ(&moved.setr().store(), &moved.store());
}

TEST(CorpusTest, SnapshotRoundTripReproducesResults) {
  const std::string path = ::testing::TempDir() + "corpus_roundtrip.snap";
  CorpusOptions options;
  options.build_inverted_index = true;
  const Corpus original = CorpusBuilder(options).Build(SmallDataset());
  auto bytes = original.Save(path);
  ASSERT_TRUE(bytes.ok()) << bytes.status().ToString();
  EXPECT_GT(*bytes, 0u);

  auto restored = CorpusBuilder().FromSnapshot(path);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored->size(), original.size());
  EXPECT_TRUE(restored->has_kcr());
  ASSERT_NE(restored->inverted(), nullptr);
  EXPECT_TRUE(restored->setr().Validate().ok());

  const Query q = SomeQuery(original.store());
  EXPECT_EQ(restored->topk().Query(q), original.topk().Query(q));
  std::remove(path.c_str());
}

TEST(CorpusTest, FromSnapshotRebuildsMissingIndexes) {
  // A store-only snapshot (no index sections) still yields a full corpus:
  // the builder bulk-loads what the file lacks.
  const std::string path = ::testing::TempDir() + "corpus_store_only.snap";
  const ObjectStore store = SmallDataset();
  auto bytes = WriteSnapshot(path, store);
  ASSERT_TRUE(bytes.ok());

  auto restored = CorpusBuilder().FromSnapshot(path);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored->setr().size(), store.size());
  EXPECT_TRUE(restored->has_kcr());
  const Query q = SomeQuery(store);
  EXPECT_EQ(restored->topk().Query(q), TopKScan(store, q));
  std::remove(path.c_str());
}

TEST(CorpusTest, FromSnapshotRejectsShardFileByDefault) {
  const std::string path = ::testing::TempDir() + "corpus_shard_file.snap";
  const Corpus corpus = CorpusBuilder().Build(SmallDataset());
  ShardManifest manifest;
  manifest.shard_index = 0;
  manifest.shard_count = 2;
  manifest.global_bounds = corpus.store().bounds();
  for (ObjectId id = 0; id < corpus.size(); ++id) {
    manifest.global_ids.push_back(id * 2);
  }
  ASSERT_TRUE(corpus.Save(path, &manifest).ok());

  // Without a manifest sink the builder refuses (the file is not a whole
  // corpus); with one it loads and hands the manifest over.
  auto rejected = CorpusBuilder().FromSnapshot(path);
  EXPECT_FALSE(rejected.ok());

  std::unique_ptr<ShardManifest> loaded_manifest;
  auto accepted = CorpusBuilder().FromSnapshot(path, &loaded_manifest);
  ASSERT_TRUE(accepted.ok()) << accepted.status().ToString();
  ASSERT_NE(loaded_manifest, nullptr);
  EXPECT_EQ(loaded_manifest->shard_count, 2u);
  EXPECT_EQ(loaded_manifest->global_ids.size(), corpus.size());
  std::remove(path.c_str());
}

TEST(CorpusTest, FromSnapshotMissingFileIsNotFound) {
  auto result = CorpusBuilder().FromSnapshot("/nonexistent/nope.snap");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace yask
