#include "src/whynot/why_not_engine.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "src/corpus/corpus.h"
#include "src/storage/hotel_generator.h"

namespace yask {
namespace {

/// The demo's own dataset drives the end-to-end engine tests.
class WhyNotEngineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    corpus_ = new Corpus(CorpusBuilder().Build(GenerateHotelDataset()));
    store_ = &corpus_->store();
  }
  static void TearDownTestSuite() {
    delete corpus_;
    corpus_ = nullptr;
    store_ = nullptr;
  }

  /// A Carol-style query: hotels near Central described as clean+comfortable.
  Query CarolQuery() const {
    Query q;
    q.loc = Point{114.158, 22.281};  // Conference venue in Central.
    const Vocabulary& v = store_->vocab();
    q.doc = KeywordSet({v.Find("clean"), v.Find("comfortable")});
    q.k = 3;
    return q;
  }

  static const Corpus* corpus_;
  static const ObjectStore* store_;
};

const Corpus* WhyNotEngineTest::corpus_ = nullptr;
const ObjectStore* WhyNotEngineTest::store_ = nullptr;

TEST_F(WhyNotEngineTest, TopKReturnsKHotels) {
  WhyNotEngine engine(*corpus_);
  const TopKResult r = engine.TopK(CarolQuery());
  EXPECT_EQ(r.size(), 3u);
}

TEST_F(WhyNotEngineTest, AnswerRunsBothModelsAndRecommends) {
  WhyNotEngine engine(*corpus_);
  const Query q = CarolQuery();
  // Pick a hotel outside the top-3 as Carol's expected hotel.
  Query probe = q;
  probe.k = 30;
  const TopKResult wide = engine.TopK(probe);
  const ObjectId expected = wide[10].id;

  auto answer = engine.Answer(q, {expected});
  ASSERT_TRUE(answer.ok()) << answer.status().ToString();
  const WhyNotAnswer& a = answer.value();
  ASSERT_EQ(a.explanations.size(), 1u);
  EXPECT_GT(a.explanations[0].rank, q.k);
  ASSERT_TRUE(a.preference.has_value());
  ASSERT_TRUE(a.keyword.has_value());
  EXPECT_NE(a.recommended, RefinementModel::kNone);

  // The recommendation matches the cheaper penalty (ties -> preference).
  if (a.preference->penalty.value <= a.keyword->penalty.value) {
    EXPECT_EQ(a.recommended, RefinementModel::kPreference);
  } else {
    EXPECT_EQ(a.recommended, RefinementModel::kKeyword);
  }

  // The displayed refined result revives the expected hotel.
  std::set<ObjectId> ids;
  for (const ScoredObject& so : a.refined_result) ids.insert(so.id);
  EXPECT_TRUE(ids.count(expected));
}

TEST_F(WhyNotEngineTest, SingleModelModes) {
  WhyNotEngine engine(*corpus_);
  const Query q = CarolQuery();
  Query probe = q;
  probe.k = 20;
  const ObjectId expected = engine.TopK(probe)[15].id;

  WhyNotOptions pref_only;
  pref_only.run_keyword_adaption = false;
  auto a = engine.Answer(q, {expected}, pref_only);
  ASSERT_TRUE(a.ok());
  EXPECT_TRUE(a->preference.has_value());
  EXPECT_FALSE(a->keyword.has_value());
  EXPECT_EQ(a->recommended, RefinementModel::kPreference);

  WhyNotOptions kw_only;
  kw_only.run_preference_adjustment = false;
  auto b = engine.Answer(q, {expected}, kw_only);
  ASSERT_TRUE(b.ok());
  EXPECT_FALSE(b->preference.has_value());
  EXPECT_TRUE(b->keyword.has_value());
  EXPECT_EQ(b->recommended, RefinementModel::kKeyword);
}

TEST_F(WhyNotEngineTest, ObjectAlreadyInResult) {
  WhyNotEngine engine(*corpus_);
  const Query q = CarolQuery();
  const ObjectId in_result = engine.TopK(q)[0].id;
  auto a = engine.Answer(q, {in_result});
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a->recommended, RefinementModel::kNone);
  EXPECT_EQ(a->explanations[0].reason, MissingReason::kInResult);
}

TEST_F(WhyNotEngineTest, MultipleMissingHotels) {
  WhyNotEngine engine(*corpus_);
  const Query q = CarolQuery();
  Query probe = q;
  probe.k = 40;
  const TopKResult wide = engine.TopK(probe);
  const std::vector<ObjectId> missing{wide[8].id, wide[20].id};

  auto answer = engine.Answer(q, missing);
  ASSERT_TRUE(answer.ok());
  EXPECT_EQ(answer->explanations.size(), 2u);
  std::set<ObjectId> ids;
  for (const ScoredObject& so : answer->refined_result) ids.insert(so.id);
  for (ObjectId m : missing) EXPECT_TRUE(ids.count(m));
}

TEST_F(WhyNotEngineTest, LambdaShiftsRefinementStyle) {
  WhyNotEngine engine(*corpus_);
  const Query q = CarolQuery();
  Query probe = q;
  probe.k = 30;
  const ObjectId expected = engine.TopK(probe)[25].id;

  WhyNotOptions low_lambda;   // Cheap k-changes are penalised less.
  low_lambda.lambda = 0.1;
  WhyNotOptions high_lambda;  // k-changes are expensive.
  high_lambda.lambda = 0.9;
  auto lo = engine.Answer(q, {expected}, low_lambda);
  auto hi = engine.Answer(q, {expected}, high_lambda);
  ASSERT_TRUE(lo.ok());
  ASSERT_TRUE(hi.ok());
  // With λ=0.1 the ∆k route is cheap: k grows a lot, w/doc changes little.
  // With λ=0.9 the optimiser works harder on w/doc modifications.
  EXPECT_GE(lo->preference->refined.k, hi->preference->refined.k);
}

TEST_F(WhyNotEngineTest, CombinedRefinementRevivesAndReportsBothPenalties) {
  WhyNotEngine engine(*corpus_);
  const Query q = CarolQuery();
  Query probe = q;
  probe.k = 30;
  const TopKResult wide = engine.TopK(probe);
  const std::vector<ObjectId> missing{wide[12].id, wide[22].id};

  auto combined = engine.CombineRefinements(q, missing);
  ASSERT_TRUE(combined.ok()) << combined.status().ToString();
  // Final query revives all missing objects.
  std::set<ObjectId> ids;
  for (const ScoredObject& so : engine.TopK(combined->refined)) {
    ids.insert(so.id);
  }
  for (ObjectId m : missing) EXPECT_TRUE(ids.count(m)) << m;
  // Total is the sum of the step penalties.
  EXPECT_DOUBLE_EQ(combined->total_penalty,
                   combined->preference_penalty.value +
                       combined->keyword_penalty.value);
  EXPECT_GE(combined->total_penalty, 0.0);
  EXPECT_LE(combined->total_penalty, 2.0);
  EXPECT_GT(combined->original_rank, q.k);
}

TEST_F(WhyNotEngineTest, CombinedPicksTheCheaperOrder) {
  WhyNotEngine engine(*corpus_);
  const Query q = CarolQuery();
  Query probe = q;
  probe.k = 25;
  const ObjectId expected = engine.TopK(probe)[18].id;

  auto combined = engine.CombineRefinements(q, {expected});
  ASSERT_TRUE(combined.ok());
  // Recompute both orders by hand and verify the reported one is minimal.
  PreferenceAdjustOptions po;
  KeywordAdaptOptions ko;
  auto pref_a = AdjustPreference(*store_, q, {expected}, po);
  ASSERT_TRUE(pref_a.ok());
  auto kw_a = AdaptKeywords(*store_, corpus_->kcr(), pref_a->refined, {expected}, ko);
  ASSERT_TRUE(kw_a.ok());
  const double total_a = pref_a->penalty.value + kw_a->penalty.value;
  auto kw_b = AdaptKeywords(*store_, corpus_->kcr(), q, {expected}, ko);
  ASSERT_TRUE(kw_b.ok());
  auto pref_b = AdjustPreference(*store_, kw_b->refined, {expected}, po);
  ASSERT_TRUE(pref_b.ok());
  const double total_b = kw_b->penalty.value + pref_b->penalty.value;
  EXPECT_DOUBLE_EQ(combined->total_penalty, std::min(total_a, total_b));
  EXPECT_EQ(combined->preference_first, total_a <= total_b);
}

TEST_F(WhyNotEngineTest, CombinedOnInResultObjectIsFree) {
  WhyNotEngine engine(*corpus_);
  const Query q = CarolQuery();
  const ObjectId in_result = engine.TopK(q)[0].id;
  auto combined = engine.CombineRefinements(q, {in_result});
  ASSERT_TRUE(combined.ok());
  EXPECT_DOUBLE_EQ(combined->total_penalty, 0.0);
  EXPECT_EQ(combined->refined.doc, q.doc);
  EXPECT_EQ(combined->refined.w, q.w);
}

TEST_F(WhyNotEngineTest, ErrorsPropagate) {
  WhyNotEngine engine(*corpus_);
  const Query q = CarolQuery();
  EXPECT_FALSE(engine.Answer(q, {}).ok());
  EXPECT_FALSE(engine.Answer(q, {9999999}).ok());
}

}  // namespace
}  // namespace yask
