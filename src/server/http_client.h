// Copyright (c) 2026 The YASK reproduction authors.
// A blocking HTTP/1.1 keep-alive client connection — the transport half of
// the coordinator -> shard-server RPC path. One connection carries many
// request/response pairs back to back (the shard protocol rides thousands of
// small oracle calls per why-not question, so per-call TCP handshakes would
// dominate); RemoteCorpus pools these per shard and retries a failed call on
// a fresh connection.
//
// Scope: exactly what the shard protocol needs. Content-Length framed
// responses only (which is all HttpServer emits), loopback/IPv4 hosts,
// per-call deadlines enforced with a recv-timeout tick.

#ifndef YASK_SERVER_HTTP_CLIENT_H_
#define YASK_SERVER_HTTP_CLIENT_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "src/common/status.h"

namespace yask {

/// One persistent client connection. Not thread-safe: a connection serves
/// one in-flight call at a time (pool several for concurrency). Not
/// copyable/movable — hold it behind a unique_ptr.
class HttpClientConnection {
 public:
  HttpClientConnection() = default;
  ~HttpClientConnection();

  HttpClientConnection(const HttpClientConnection&) = delete;
  HttpClientConnection& operator=(const HttpClientConnection&) = delete;

  /// Dials host:port (dotted-quad or resolvable name) within `timeout_ms`.
  /// Reconnecting an open connection closes it first.
  Status Connect(const std::string& host, uint16_t port, int timeout_ms);

  bool connected() const { return fd_ >= 0; }
  void Close();

  /// Cheap liveness probe for pooled idle connections: true when the socket
  /// is open with nothing pending. A peer that closed its end between calls
  /// (keep-alive recycling, a killed server) is detected WITHOUT spending a
  /// request on it — the connection is closed and false returned, so a pool
  /// of stale sockets never burns the caller's retry budget. A connection
  /// with unexpected readable bytes is dead too (the next response would
  /// desynchronise).
  bool LooksAlive();

  /// One request/response round-trip; the connection stays open for the
  /// next call. `deadline_ms` bounds the whole call (send + wait + read).
  /// Returns the response body; the HTTP status lands in `*status_out`.
  /// On any transport error (peer gone, deadline, framing) the connection
  /// is closed and a non-OK Status returned — the caller retries on a fresh
  /// connection if it wants to. `extra_headers` is spliced verbatim into the
  /// request header block (zero or more full "Name: value\r\n" lines — the
  /// RPC path injects the x-yask-trace context this way).
  Result<std::string> Call(const std::string& method, const std::string& path,
                           std::string_view body, int deadline_ms,
                           int* status_out,
                           const std::string& extra_headers = std::string());

 private:
  int fd_ = -1;
};

}  // namespace yask

#endif  // YASK_SERVER_HTTP_CLIENT_H_
