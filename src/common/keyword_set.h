// Copyright (c) 2026 The YASK reproduction authors.
// KeywordSet: the set-of-keywords value type behind o.doc and q.doc.
//
// Represented as a sorted vector of unique TermIds, which makes the set
// algebra the scoring function needs (|A∩B|, |A∪B|, Jaccard, Eqn. (2)) linear
// merges, and keeps SetR-tree / KcR-tree node summaries compact.

#ifndef YASK_COMMON_KEYWORD_SET_H_
#define YASK_COMMON_KEYWORD_SET_H_

#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

#include "src/common/vocabulary.h"

namespace yask {

/// An immutable-ish sorted set of TermIds with linear-merge set algebra.
class KeywordSet {
 public:
  KeywordSet() = default;

  /// Builds from arbitrary ids; sorts and deduplicates.
  explicit KeywordSet(std::vector<TermId> ids);
  KeywordSet(std::initializer_list<TermId> ids);

  /// Adopts an already strictly-ascending id vector without re-sorting (the
  /// snapshot-load fast path; the decoder has validated the order). Passing
  /// unsorted or duplicated ids breaks the set-algebra invariants.
  static KeywordSet FromSortedUnique(std::vector<TermId> ids);

  /// Inserts one id, keeping order; no-op if present.
  void Insert(TermId id);

  /// Removes one id if present; returns whether it was removed.
  bool Erase(TermId id);

  bool Contains(TermId id) const;

  size_t size() const { return ids_.size(); }
  bool empty() const { return ids_.empty(); }

  const std::vector<TermId>& ids() const { return ids_; }

  auto begin() const { return ids_.begin(); }
  auto end() const { return ids_.end(); }

  /// |this ∩ other| by linear merge.
  size_t IntersectionSize(const KeywordSet& other) const;

  /// |this ∪ other| = |this| + |other| − |this ∩ other|.
  size_t UnionSize(const KeywordSet& other) const;

  /// Jaccard similarity |A∩B| / |A∪B| (Eqn. (2)); 0 when both empty.
  double Jaccard(const KeywordSet& other) const;

  /// Set union / intersection / difference as new sets.
  static KeywordSet Union(const KeywordSet& a, const KeywordSet& b);
  static KeywordSet Intersection(const KeywordSet& a, const KeywordSet& b);
  static KeywordSet Difference(const KeywordSet& a, const KeywordSet& b);

  /// Edit distance between keyword sets: the minimum number of single-keyword
  /// insertions/deletions transforming `a` into `b`. This is the ∆doc measure
  /// of penalty Eqn. (4): |a \ b| + |b \ a|.
  static size_t EditDistance(const KeywordSet& a, const KeywordSet& b);

  /// True if `this` is a subset of `other`.
  bool IsSubsetOf(const KeywordSet& other) const;

  bool operator==(const KeywordSet& other) const = default;

  /// Space-joined keyword words, for logs and the demo UI.
  std::string ToString(const Vocabulary& vocab) const;

 private:
  std::vector<TermId> ids_;  // Sorted, unique.
};

/// Hash functor so KeywordSet can key unordered containers (candidate
/// keyword sets in the keyword-adaption module).
struct KeywordSetHash {
  size_t operator()(const KeywordSet& s) const;
};

}  // namespace yask

#endif  // YASK_COMMON_KEYWORD_SET_H_
