// Experiment E6 + the quality leg of E9 (DESIGN.md): the impact of λ.
//
// §4 of the paper: "we are able to ... demonstrate the impact of the setting
// of weight parameter λ in the penalty functions (Eqns. (3) and (4)) on the
// quality of refined queries."
//
// This binary prints, for both refinement models, how λ redistributes the
// refinement between enlarging k (∆k) and modifying the query (∆w / ∆doc),
// averaged over a fixed workload — the quality table the demo discusses —
// and additionally times one representative λ sweep via google-benchmark.
//
// Expected shape: as λ grows, ∆k shrinks toward 0 while ∆w / ∆doc grow; the
// total penalty is NOT monotone in λ (it re-weights two normalised terms).

#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/whynot/keyword_adaption.h"
#include "src/whynot/preference_adjustment.h"

namespace yask {
namespace bench {
namespace {

constexpr size_t kN = 50000;
constexpr uint32_t kK = 10;
constexpr size_t kWorkload = 12;

struct Row {
  double lambda;
  double pref_penalty, pref_dk, pref_dw;
  double kw_penalty, kw_dk, kw_ddoc;
};

Row MeasureLambda(double lambda) {
  const ObjectStore& store = SharedDataset(kN);
  const KcRTree& kcr = SharedKcR(kN);
  Rng rng(23);
  Row row{lambda, 0, 0, 0, 0, 0, 0};
  size_t runs = 0;
  while (runs < kWorkload) {
    Query q = MakeQuery(store, &rng, 3, kK);
    const std::vector<ObjectId> missing = PickMissing(store, q, 1);
    if (missing.empty()) continue;

    PreferenceAdjustOptions po;
    po.lambda = lambda;
    auto pref = AdjustPreference(store, q, missing, po);
    KeywordAdaptOptions ko;
    ko.lambda = lambda;
    auto kw = AdaptKeywords(store, kcr, q, missing, ko);
    if (!pref.ok() || !kw.ok() || pref->already_in_result) continue;

    row.pref_penalty += pref->penalty.value;
    row.pref_dk += static_cast<double>(pref->penalty.delta_k);
    row.pref_dw += pref->penalty.delta_w;
    row.kw_penalty += kw->penalty.value;
    row.kw_dk += static_cast<double>(kw->penalty.delta_k);
    row.kw_ddoc += static_cast<double>(kw->penalty.delta_doc);
    ++runs;
  }
  row.pref_penalty /= runs;
  row.pref_dk /= runs;
  row.pref_dw /= runs;
  row.kw_penalty /= runs;
  row.kw_dk /= runs;
  row.kw_ddoc /= runs;
  return row;
}

void PrintLambdaTable() {
  std::printf(
      "\n=== E6: impact of λ on refined-query quality "
      "(N=%zu, k=%u, avg over %zu why-not questions) ===\n",
      kN, kK, kWorkload);
  std::printf("%-8s | %-30s | %-30s\n", "lambda",
              "preference: penalty  dk   dw", "keyword: penalty  dk   ddoc");
  std::printf("---------+--------------------------------+------------------"
              "------------\n");
  for (double lambda : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    const Row r = MeasureLambda(lambda);
    std::printf("%-8.1f | %9.4f  %6.2f  %7.4f    | %9.4f  %6.2f  %6.2f\n",
                r.lambda, r.pref_penalty, r.pref_dk, r.pref_dw, r.kw_penalty,
                r.kw_dk, r.kw_ddoc);
  }
  std::printf(
      "(expected: dk falls and dw/ddoc rise as lambda grows; E6/E9)\n\n");
}

void BM_LambdaSweep_Preference(benchmark::State& state) {
  const double lambda = static_cast<double>(state.range(0)) / 10.0;
  const ObjectStore& store = SharedDataset(kN);
  Rng rng(29);
  Query q = MakeQuery(store, &rng, 3, kK);
  std::vector<ObjectId> missing = PickMissing(store, q, 1);
  PreferenceAdjustOptions options;
  options.lambda = lambda;
  for (auto _ : state) {
    auto result = AdjustPreference(store, q, missing, options);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_LambdaSweep_Preference)
    ->ArgName("lambda_x10")
    ->Arg(1)
    ->Arg(5)
    ->Arg(9);

}  // namespace
}  // namespace bench
}  // namespace yask

int main(int argc, char** argv) {
  yask::bench::PrintLambdaTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
