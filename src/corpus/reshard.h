// Copyright (c) 2026 The YASK reproduction authors.
// Offline snapshot resharding: rewrite the N per-shard snapshot files of a
// partitioned corpus into M files (split or merge) without going back to the
// raw dataset. `dataset_tool reshard` is the CLI; the rolling-upgrade flow is
// reshard offline -> boot the new fleet beside the old -> cut the
// coordinator over (POST /admin/layout) -> drain and retire the old fleet.
//
// Exactness: the input shards' stores are streamed back into one global
// store in ascending global id order, sharing the SAME vocabulary instance
// the input shards serialised. That reproduces the original global corpus
// exactly — bounds accumulate in the original insertion order (identical
// doubles), term ids are unchanged, and D6's id-order tie-breaking is
// preserved — so re-partitioning it is indistinguishable from having
// partitioned the raw dataset M ways in the first place, and every layout
// answers byte-identically (the sharded-exactness argument in
// docs/architecture.md does the rest).
//
// A mixed layout can never be served: each output file's ShardManifest names
// its layout (index, count, bounds, global ids), and ShardedCorpus::Load /
// RemoteCorpus::Connect refuse any set of shards whose manifests disagree or
// whose global ids fail to tile 0..total-1 — stale old-layout files left in
// place are rejected, not silently mixed in.

#ifndef YASK_CORPUS_RESHARD_H_
#define YASK_CORPUS_RESHARD_H_

#include <cstdint>
#include <string>

#include "src/common/status.h"
#include "src/corpus/corpus.h"

namespace yask {

struct ReshardOptions {
  /// Output shard count M (>= 1).
  uint32_t num_shards = 1;
  /// Placement policy for the new layout: "grid" (equi-count quantile grid
  /// refitted to the data) or "hash".
  std::string router = "grid";
  /// Index build options for the OUTPUT shards (the new files carry fully
  /// rebuilt SetR/KcR/inverted indexes per these options).
  CorpusOptions corpus;
};

struct ReshardReport {
  uint32_t from_shards = 0;
  uint32_t to_shards = 0;
  uint64_t objects = 0;
  uint64_t bytes_written = 0;
  std::string router;  // The new layout's router description.
};

/// Loads the N-shard snapshot set at `in_prefix`, rebuilds the global corpus,
/// re-partitions it `options.num_shards` ways and saves the new set at
/// `out_prefix` (one "<out_prefix>.shard-<i>.snap" per output shard, indexes
/// rebuilt). Refuses out_prefix == in_prefix: the old layout must survive
/// until the new one is validated and cut over to.
Result<ReshardReport> ReshardSnapshots(const std::string& in_prefix,
                                       const std::string& out_prefix,
                                       const ReshardOptions& options);

}  // namespace yask

#endif  // YASK_CORPUS_RESHARD_H_
