// dataset_tool: generate, inspect and convert YASK datasets from the shell.
//
//   dataset_tool generate <n> <out.tsv> [seed]   synthetic clustered dataset
//   dataset_tool hotels <out.tsv>                the 539-hotel demo dataset
//   dataset_tool stats <file.tsv>                corpus statistics
//   dataset_tool build-snapshot <in.tsv> <out.snap>   TSV -> binary snapshot
//                                                (store + SetR/KcR/inverted)
//   dataset_tool build-shards <in.tsv> <prefix> <shards>   TSV -> one
//                                                snapshot file per shard
//                                                (<prefix>.shard-<i>.snap)
//   dataset_tool inspect-snapshot <file.snap>    header + section table
//   dataset_tool reshard <in_prefix> <out_prefix> <shards> [--router grid|hash]
//                                                rewrite N per-shard snapshots
//                                                into M under a new prefix
//
// With no arguments it runs a self-demo into a temporary file, so it can be
// exercised without any setup.

#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>

#include "src/common/geo.h"
#include "src/common/timer.h"
#include "src/corpus/corpus.h"
#include "src/corpus/reshard.h"
#include "src/corpus/sharded_corpus.h"
#include "src/snapshot/snapshot_codec.h"
#include "src/storage/dataset_generator.h"
#include "src/storage/dataset_io.h"
#include "src/storage/hotel_generator.h"

using namespace yask;

namespace {

int Fail(const std::string& message) {
  std::fprintf(stderr, "error: %s\n", message.c_str());
  return 1;
}

int CmdGenerate(size_t n, const std::string& path, uint64_t seed) {
  DatasetSpec spec;
  spec.num_objects = n;
  spec.seed = seed;
  const ObjectStore store = GenerateDataset(spec);
  if (Status s = SaveDataset(store, path); !s.ok()) return Fail(s.ToString());
  std::printf("wrote %zu objects (vocab %zu) to %s\n", store.size(),
              store.vocab().size(), path.c_str());
  return 0;
}

int CmdHotels(const std::string& path) {
  const ObjectStore store = GenerateHotelDataset();
  if (Status s = SaveDataset(store, path); !s.ok()) return Fail(s.ToString());
  std::printf("wrote the %zu-hotel Hong Kong demo dataset to %s\n",
              store.size(), path.c_str());
  return 0;
}

int CmdStats(const std::string& path) {
  auto loaded = LoadDataset(path);
  if (!loaded.ok()) return Fail(loaded.status().ToString());
  const ObjectStore& store = *loaded;
  if (store.empty()) return Fail("dataset is empty");

  size_t total_kw = 0;
  size_t min_kw = static_cast<size_t>(-1);
  size_t max_kw = 0;
  std::map<TermId, size_t> df;
  for (const SpatialObject& o : store.objects()) {
    total_kw += o.doc.size();
    min_kw = std::min(min_kw, o.doc.size());
    max_kw = std::max(max_kw, o.doc.size());
    for (TermId t : o.doc) ++df[t];
  }
  // Top-5 most frequent keywords.
  std::multimap<size_t, TermId, std::greater<>> by_freq;
  for (const auto& [t, f] : df) by_freq.emplace(f, t);

  const Rect& b = store.bounds();
  std::printf("objects      : %zu\n", store.size());
  std::printf("vocabulary   : %zu distinct keywords\n", store.vocab().size());
  std::printf("keywords/obj : min %zu, avg %.2f, max %zu\n", min_kw,
              static_cast<double>(total_kw) / store.size(), max_kw);
  std::printf("bounds       : x [%.5g, %.5g], y [%.5g, %.5g]\n", b.min_x,
              b.max_x, b.min_y, b.max_y);
  // If the frame smells like lon/lat, also report the geographic diagonal.
  if (b.min_x >= -180 && b.max_x <= 180 && b.min_y >= -90 && b.max_y <= 90) {
    std::printf("geo diagonal : %.1f km (if coordinates are lon/lat)\n",
                HaversineKm(Point{b.min_x, b.min_y}, Point{b.max_x, b.max_y}));
  }
  std::printf("top keywords :");
  size_t shown = 0;
  for (const auto& [f, t] : by_freq) {
    if (shown++ == 5) break;
    std::printf(" %s(%zu)", store.vocab().Word(t).c_str(), f);
  }
  std::printf("\n");
  return 0;
}

int CmdBuildSnapshot(const std::string& in_path, const std::string& out_path) {
  auto loaded = LoadDataset(in_path);
  if (!loaded.ok()) return Fail(loaded.status().ToString());

  Timer build_timer;
  CorpusOptions options;
  options.build_inverted_index = true;
  const Corpus corpus =
      CorpusBuilder(options).Build(std::move(loaded).value());
  const double build_ms = build_timer.ElapsedMillis();

  Timer save_timer;
  auto bytes = corpus.Save(out_path);
  if (!bytes.ok()) return Fail(bytes.status().ToString());
  std::printf(
      "indexed %zu objects in %.1f ms; wrote snapshot %s (%zu bytes, "
      "%.1f ms)\n",
      corpus.size(), build_ms, out_path.c_str(), static_cast<size_t>(*bytes),
      save_timer.ElapsedMillis());
  return 0;
}

int CmdBuildShards(const std::string& in_path, const std::string& prefix,
                   size_t num_shards) {
  auto loaded = LoadDataset(in_path);
  if (!loaded.ok()) return Fail(loaded.status().ToString());
  const ObjectStore& store = *loaded;

  Timer build_timer;
  const ShardedCorpus sharded = ShardedCorpus::Partition(
      store, GridShardRouter::Fit(store, static_cast<uint32_t>(num_shards)));
  const double build_ms = build_timer.ElapsedMillis();

  Timer save_timer;
  auto bytes = sharded.Save(prefix);
  if (!bytes.ok()) return Fail(bytes.status().ToString());
  std::printf(
      "partitioned %zu objects into %zu shards (%s) in %.1f ms; wrote "
      "%s.shard-0..%zu.snap (%zu bytes total, %.1f ms)\n",
      sharded.size(), sharded.num_shards(),
      sharded.router_description().c_str(), build_ms, prefix.c_str(),
      sharded.num_shards() - 1, static_cast<size_t>(*bytes),
      save_timer.ElapsedMillis());
  return 0;
}

int CmdReshard(const std::string& in_prefix, const std::string& out_prefix,
               size_t num_shards, const std::string& router) {
  ReshardOptions options;
  options.num_shards = static_cast<uint32_t>(num_shards);
  options.router = router;
  Timer timer;
  auto report = ReshardSnapshots(in_prefix, out_prefix, options);
  if (!report.ok()) return Fail(report.status().ToString());
  std::printf(
      "resharded %zu objects: %u -> %u shards (%s) in %.1f ms; wrote "
      "%s.shard-0..%u.snap (%zu bytes total)\n"
      "the input files under %s are untouched — cut the fleet over, then "
      "delete them\n",
      report->objects, report->from_shards, report->to_shards,
      report->router.c_str(), timer.ElapsedMillis(), out_prefix.c_str(),
      report->to_shards - 1, static_cast<size_t>(report->bytes_written),
      in_prefix.c_str());
  return 0;
}

/// For a per-shard file "<prefix>.shard-<i>.snap", recovers "<prefix>";
/// empty when the name does not follow the ShardedCorpus::Save convention.
std::string ShardPrefixOf(const std::string& path, uint32_t shard_index) {
  const std::string tail =
      ".shard-" + std::to_string(shard_index) + ".snap";
  if (path.size() <= tail.size() ||
      path.compare(path.size() - tail.size(), tail.size(), tail) != 0) {
    return "";
  }
  return path.substr(0, path.size() - tail.size());
}

int CmdInspectSnapshot(const std::string& path) {
  auto report = InspectSnapshot(path);
  if (!report.ok()) return Fail(report.status().ToString());
  std::printf("snapshot      : %s\n", path.c_str());
  std::printf("format version: %u\n", report->format_version);
  std::printf("file size     : %zu bytes\n",
              static_cast<size_t>(report->file_size));
  std::printf("sections      : %zu\n", report->sections.size());
  std::printf("  %-16s %12s %10s  %s\n", "name", "bytes", "crc32", "items");
  for (const SnapshotSectionReport& s : report->sections) {
    std::printf("  %-16s %12zu   %08x  ", s.name.c_str(),
                static_cast<size_t>(s.size), s.crc32);
    if (s.item_count >= 0) {
      std::printf("%lld\n", static_cast<long long>(s.item_count));
    } else {
      std::printf("(payload corrupt)\n");
    }
  }

  if (!report->shard.has_value()) return 0;

  // A per-shard file: print the decoded manifest rather than skipping it.
  const ShardManifest& m = *report->shard;
  std::printf("shard manifest: shard %u of %u, %zu objects", m.shard_index,
              m.shard_count, m.global_ids.size());
  if (!m.global_ids.empty()) {
    std::printf(" (global ids %u..%u)", m.global_ids.front(),
                m.global_ids.back());
  }
  std::printf("\n");
  std::printf("router        : %s\n",
              m.router.empty() ? "(unrecorded)" : m.router.c_str());
  if (!m.global_bounds.empty()) {
    std::printf("global bounds : x [%.5g, %.5g], y [%.5g, %.5g]\n",
                m.global_bounds.min_x, m.global_bounds.max_x,
                m.global_bounds.min_y, m.global_bounds.max_y);
  }

  // Sibling shard files (the ShardedCorpus::Save naming convention): report
  // the per-shard object counts of the whole partition when they are there.
  const std::string prefix = ShardPrefixOf(path, m.shard_index);
  if (prefix.empty() || m.shard_count <= 1) return 0;
  std::printf("per-shard objects:\n");
  for (uint32_t s = 0; s < m.shard_count; ++s) {
    const std::string sibling = ShardedCorpus::ShardFilePath(prefix, s);
    if (s == m.shard_index) {
      std::printf("  shard %-3u %8zu  (this file)\n", s, m.global_ids.size());
      continue;
    }
    auto sibling_report = InspectSnapshot(sibling);
    if (!sibling_report.ok() || !sibling_report->shard.has_value()) {
      std::printf("  shard %-3u %8s  (%s: missing or unreadable)\n", s, "?",
                  sibling.c_str());
      continue;
    }
    std::printf("  shard %-3u %8zu  (%s)\n", s,
                sibling_report->shard->global_ids.size(), sibling.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2) {
    const std::string cmd = argv[1];
    if (cmd == "generate" && (argc == 4 || argc == 5)) {
      const size_t n = static_cast<size_t>(std::strtoull(argv[2], nullptr, 10));
      const uint64_t seed =
          argc == 5 ? std::strtoull(argv[4], nullptr, 10) : 42;
      if (n == 0) return Fail("n must be a positive integer");
      return CmdGenerate(n, argv[3], seed);
    }
    if (cmd == "hotels" && argc == 3) return CmdHotels(argv[2]);
    if (cmd == "stats" && argc == 3) return CmdStats(argv[2]);
    if (cmd == "build-snapshot" && argc == 4) {
      return CmdBuildSnapshot(argv[2], argv[3]);
    }
    if (cmd == "build-shards" && argc == 5) {
      const size_t shards =
          static_cast<size_t>(std::strtoull(argv[4], nullptr, 10));
      if (shards == 0) return Fail("shards must be a positive integer");
      return CmdBuildShards(argv[2], argv[3], shards);
    }
    if (cmd == "inspect-snapshot" && argc == 3) {
      return CmdInspectSnapshot(argv[2]);
    }
    if (cmd == "reshard" && (argc == 5 || argc == 7)) {
      const size_t shards =
          static_cast<size_t>(std::strtoull(argv[4], nullptr, 10));
      if (shards == 0) return Fail("shards must be a positive integer");
      std::string router = "grid";
      if (argc == 7) {
        if (std::string(argv[5]) != "--router") {
          return Fail("unknown option '" + std::string(argv[5]) +
                      "' (want --router grid|hash)");
        }
        router = argv[6];
      }
      return CmdReshard(argv[2], argv[3], shards, router);
    }
    std::fprintf(stderr,
                 "usage: %s generate <n> <out.tsv> [seed]\n"
                 "       %s hotels <out.tsv>\n"
                 "       %s stats <file.tsv>\n"
                 "       %s build-snapshot <in.tsv> <out.snap>\n"
                 "       %s build-shards <in.tsv> <prefix> <shards>\n"
                 "       %s inspect-snapshot <file.snap>\n"
                 "       %s reshard <in_prefix> <out_prefix> <shards> "
                 "[--router grid|hash]\n",
                 argv[0], argv[0], argv[0], argv[0], argv[0], argv[0],
                 argv[0]);
    return 2;
  }

  // Self-demo: generate the hotel dataset into a temp file, print stats,
  // then round it through the snapshot pipeline.
  const std::string path = "/tmp/yask_dataset_tool_demo.tsv";
  std::printf("self-demo: %s hotels %s\n", argv[0], path.c_str());
  if (int rc = CmdHotels(path); rc != 0) return rc;
  std::printf("\nself-demo: %s stats %s\n", argv[0], path.c_str());
  if (int rc = CmdStats(path); rc != 0) return rc;
  const std::string snap = "/tmp/yask_dataset_tool_demo.snap";
  std::printf("\nself-demo: %s build-snapshot %s %s\n", argv[0], path.c_str(),
              snap.c_str());
  if (int rc = CmdBuildSnapshot(path, snap); rc != 0) return rc;
  std::printf("\nself-demo: %s inspect-snapshot %s\n", argv[0], snap.c_str());
  return CmdInspectSnapshot(snap);
}
