// Copyright (c) 2026 The YASK reproduction authors.
// Text pipeline: turning raw keyword strings ("clean, Comfortable WiFi")
// into KeywordSets against a Vocabulary.
//
// The demo extracts hotel keywords from facility lists and user comments;
// this pipeline performs the equivalent normalisation: ASCII lower-casing,
// punctuation splitting, and optional stopword removal.

#ifndef YASK_COMMON_TEXT_H_
#define YASK_COMMON_TEXT_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/common/keyword_set.h"
#include "src/common/vocabulary.h"

namespace yask {

/// Tokenizes into lower-case alphanumeric tokens; splits on anything else.
std::vector<std::string> Tokenize(std::string_view text);

/// True for a small built-in English stopword list ("the", "and", ...).
bool IsStopword(std::string_view token);

/// Options controlling ParseKeywords.
struct TextOptions {
  bool remove_stopwords = true;
  /// Tokens shorter than this are dropped (single letters are noise).
  size_t min_token_length = 2;
};

/// Tokenizes `text` and interns every surviving token, returning the set.
KeywordSet ParseKeywords(std::string_view text, Vocabulary* vocab,
                         const TextOptions& options = {});

/// Tokenizes `text` and looks tokens up without interning; unknown tokens are
/// dropped. Used for queries against a frozen vocabulary.
KeywordSet LookupKeywords(std::string_view text, const Vocabulary& vocab,
                          const TextOptions& options = {});

}  // namespace yask

#endif  // YASK_COMMON_TEXT_H_
