// Copyright (c) 2026 The YASK reproduction authors.
// The transport half of the coordinator -> shard-server RPC path.
//
// Two layers:
//   * HttpClientConnection — a blocking HTTP/1.1 keep-alive connection. One
//     connection carries many request/response pairs back to back (the shard
//     protocol rides thousands of small oracle calls per why-not question,
//     so per-call TCP handshakes would dominate). Call() is the classic
//     lock-step round trip; SendRequest()/ReadResponse() expose the two
//     halves separately so several requests can be on the wire at once
//     (HTTP/1.1 pipelining — responses come back in request order).
//   * PipelinedHttpChannel — a thread-safe multiplexer over ONE connection:
//     concurrent callers' requests are pipelined onto the wire in ticket
//     order and each caller reads exactly its own response when its ticket
//     reaches the head of the line. RemoteShard holds a small fixed set of
//     these per replica instead of a one-request-per-checkout pool, so a
//     fan-out pays no connection checkout and idle sockets stay warm.
//
// Scope: exactly what the shard protocol needs. Content-Length framed
// responses only (which is all HttpServer emits), loopback/IPv4 hosts,
// per-call deadlines enforced with a recv-timeout tick.

#ifndef YASK_SERVER_HTTP_CLIENT_H_
#define YASK_SERVER_HTTP_CLIENT_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>

#include "src/common/status.h"

namespace yask {

/// One persistent client connection. Not thread-safe: a connection serves
/// one in-flight call at a time (PipelinedHttpChannel multiplexes one safely
/// across threads). Not copyable/movable — hold it behind a unique_ptr.
class HttpClientConnection {
 public:
  HttpClientConnection() = default;
  ~HttpClientConnection();

  HttpClientConnection(const HttpClientConnection&) = delete;
  HttpClientConnection& operator=(const HttpClientConnection&) = delete;

  /// Dials host:port (dotted-quad or resolvable name) within `timeout_ms`.
  /// Reconnecting an open connection closes it first.
  Status Connect(const std::string& host, uint16_t port, int timeout_ms);

  bool connected() const { return fd_ >= 0; }
  void Close();

  /// Cheap liveness probe for pooled idle connections: true when the socket
  /// is open with nothing pending. A peer that closed its end between calls
  /// (keep-alive recycling, a killed server) is detected WITHOUT spending a
  /// request on it — the connection is closed and false returned, so a pool
  /// of stale sockets never burns the caller's retry budget. A connection
  /// with unexpected readable bytes is dead too (the next response would
  /// desynchronise). Only valid with no response outstanding.
  bool LooksAlive();

  /// Writes one request onto the wire (send side only; pair with
  /// ReadResponse). `timeout_ms` bounds a blocked send once the kernel
  /// buffer fills. On error the connection is closed — unless
  /// `close_on_error` is false, in which case it is only shutdown() (the fd
  /// stays valid for threads that still hold it; the owner must Close()
  /// later, see PipelinedHttpChannel). `extra_headers` is spliced verbatim
  /// into the request header block (zero or more full "Name: value\r\n"
  /// lines — the RPC path injects the x-yask-trace context this way).
  Status SendRequest(const std::string& method, const std::string& path,
                     std::string_view body, int timeout_ms,
                     const std::string& extra_headers = std::string(),
                     bool close_on_error = true);

  /// Reads the next Content-Length framed response off the wire (responses
  /// to pipelined requests arrive in request order; leftover bytes beyond
  /// one response are buffered for the next call). Returns the body; the
  /// HTTP status lands in `*status_out`. On any transport error (peer gone,
  /// deadline, framing) a non-OK Status is returned and the connection is
  /// closed — or, with `close_on_error` false, shutdown() only, deferring
  /// the Close() to the owner — and every response still on the wire is
  /// lost with it.
  Result<std::string> ReadResponse(int deadline_ms, int* status_out,
                                   bool close_on_error = true);

  /// One request/response round-trip; the connection stays open for the
  /// next call. `deadline_ms` bounds the whole call (send + wait + read).
  Result<std::string> Call(const std::string& method, const std::string& path,
                           std::string_view body, int deadline_ms,
                           int* status_out,
                           const std::string& extra_headers = std::string());

 private:
  /// The transport-error epilogue: Close(), or with `close_on_error` false
  /// just shutdown() — killing the byte stream (and waking a blocked
  /// reader) without freeing the fd number other threads may still hold.
  void FailTransport(bool close_on_error);

  int fd_ = -1;
  std::string pending_;  // Pipelined response bytes beyond the last one read.
};

/// A thread-safe multiplexer over one keep-alive connection: concurrent
/// Call()s are assigned FIFO tickets, their requests pipelined onto the wire
/// in ticket order, and each caller reads its own response when its ticket
/// reaches the head of the line (HTTP/1.1 has no response ids — arrival
/// order IS the demux key). Any wire failure kills the whole pipeline: every
/// in-flight call on this channel fails, the connection is torn down, and
/// the next call redials. A stale idle socket (peer recycled the keep-alive)
/// is detected and redialled silently, burning none of the caller's budget.
class PipelinedHttpChannel {
 public:
  PipelinedHttpChannel(std::string host, uint16_t port)
      : host_(std::move(host)), port_(port) {}

  PipelinedHttpChannel(const PipelinedHttpChannel&) = delete;
  PipelinedHttpChannel& operator=(const PipelinedHttpChannel&) = delete;

  /// One round trip through the pipeline. `attempted_out` (if non-null) is
  /// set to true once a live connection existed and the request was handed
  /// to the wire — the caller's "requests" meter counts attempts, not
  /// connect failures, exactly like the old checkout pool.
  Result<std::string> Call(const std::string& method, const std::string& path,
                           std::string_view body, int connect_timeout_ms,
                           int deadline_ms, int* status_out,
                           const std::string& extra_headers = std::string(),
                           bool* attempted_out = nullptr);

  /// Calls currently on the wire (send done or queued behind the reader).
  size_t inflight() const;

 private:
  /// Kills the current pipeline generation: closes the connection, fails
  /// every waiter. Caller holds mu_ AND no reader may be active (the reader
  /// uses the fd with mu_ released; closing under its feet would race the
  /// recv — and a reused fd number could belong to another socket). Error
  /// paths that fire while a reader is out set kill_pending_ instead and
  /// let the reader run the teardown when it relocks.
  void FailGenerationLocked();

  const std::string host_;
  const uint16_t port_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  HttpClientConnection conn_;
  uint64_t generation_ = 0;   // Bumped on every pipeline failure.
  uint64_t next_ticket_ = 0;  // Next ticket to hand out (== requests sent).
  uint64_t next_read_ = 0;    // Ticket whose response is next off the wire.
  bool reader_active_ = false;
  bool kill_pending_ = false;  // A waiter gave up; reader must kill the pipe.
  size_t inflight_ = 0;
};

}  // namespace yask

#endif  // YASK_SERVER_HTTP_CLIENT_H_
