#include "src/corpus/sharded_corpus.h"

#include <algorithm>
#include <cassert>
#include <latch>
#include <thread>

namespace yask {

ShardedCorpus ShardedCorpus::Partition(const ObjectStore& source,
                                       std::unique_ptr<ShardRouter> router,
                                       const CorpusOptions& options) {
  assert(router != nullptr);
  ShardedCorpus sharded;
  const uint32_t n = std::max(1u, router->num_shards());

  // Distribute objects in ascending global id order, so each shard store's
  // local id order is the global order restricted to the shard (the D6
  // tie-order invariant of the exactness argument).
  std::vector<ObjectStore> stores;
  stores.reserve(n);
  for (uint32_t s = 0; s < n; ++s) stores.emplace_back(source.shared_vocab());
  sharded.to_global_.resize(n);
  sharded.locate_.reserve(source.size());
  for (const SpatialObject& o : source.objects()) {
    const uint32_t s = std::min(router->Route(o.loc), n - 1);
    const ObjectId local = stores[s].Add(o);
    sharded.to_global_[s].push_back(o.id);
    sharded.locate_.emplace_back(s, local);
  }

  const CorpusBuilder builder(options);
  sharded.shards_.reserve(n);
  for (uint32_t s = 0; s < n; ++s) {
    sharded.shards_.push_back(builder.Build(std::move(stores[s])));
  }
  sharded.bounds_ = source.bounds();
  sharded.dist_norm_ = source.BoundsDiagonal();
  sharded.router_desc_ = router->Describe();
  sharded.router_ = std::move(router);
  sharded.fanout_threads_ = options.fanout_threads;
  return sharded;
}

ThreadPool* ShardedCorpus::pool() const {
  std::lock_guard<std::mutex> lock(*pool_mu_);
  if (!pool_decided_) {
    pool_decided_ = true;
    if (shards_.size() > 1) {
      const size_t hw = std::max(1u, std::thread::hardware_concurrency());
      size_t threads = fanout_threads_;
      if (threads == 0) {
        // On a single-core host a pool buys nothing — the fan-outs run
        // inline (and the top-k one gets a strictly better, incrementally-
        // refined prune threshold).
        threads = hw <= 1 ? 0 : hw;
      }
      // More workers than shards can never help: a fan-out submits at most
      // one task per shard.
      threads = std::min(threads, shards_.size());
      if (threads > 0) pool_ = std::make_unique<ThreadPool>(threads);
    }
  }
  return pool_.get();
}

ObjectId ShardedCorpus::FindByName(const std::string& name) const {
  // Scan in global id order so ties resolve exactly like an unsharded
  // store's FindByName (first match by global id).
  for (ObjectId global = 0; global < locate_.size(); ++global) {
    if (Object(global).name == name) return global;
  }
  return kInvalidObject;
}

std::string ShardedCorpus::ShardFilePath(const std::string& prefix,
                                         uint32_t index) {
  return prefix + ".shard-" + std::to_string(index) + ".snap";
}

Result<uint64_t> ShardedCorpus::Save(const std::string& prefix) const {
  uint64_t total_bytes = 0;
  for (uint32_t s = 0; s < shards_.size(); ++s) {
    ShardManifest manifest;
    manifest.shard_index = s;
    manifest.shard_count = static_cast<uint32_t>(shards_.size());
    manifest.global_bounds = bounds_;
    manifest.global_ids = to_global_[s];
    manifest.router = router_desc_;
    Result<uint64_t> bytes = shards_[s].Save(ShardFilePath(prefix, s),
                                             &manifest);
    if (!bytes.ok()) return bytes.status();
    total_bytes += *bytes;
  }
  return total_bytes;
}

Result<ShardedCorpus> ShardedCorpus::Load(const std::string& prefix,
                                          const CorpusOptions& options) {
  ShardedCorpus sharded;
  const CorpusBuilder builder(options);
  uint32_t shard_count = 1;
  uint64_t total_objects = 0;
  for (uint32_t s = 0; s < shard_count; ++s) {
    const std::string path = ShardFilePath(prefix, s);
    std::unique_ptr<ShardManifest> manifest;
    Result<Corpus> corpus = builder.FromSnapshot(path, &manifest);
    if (!corpus.ok()) return corpus.status();
    if (manifest == nullptr) {
      return Status::InvalidArgument(path +
                                     " has no shard manifest section; it is "
                                     "not part of a partitioned corpus");
    }
    if (manifest->shard_index != s) {
      return Status::InvalidArgument(
          path + " claims shard index " +
          std::to_string(manifest->shard_index) + ", expected " +
          std::to_string(s));
    }
    if (s == 0) {
      shard_count = manifest->shard_count;
      sharded.bounds_ = manifest->global_bounds;
      sharded.router_desc_ = manifest->router;
      sharded.shards_.reserve(shard_count);
      sharded.to_global_.reserve(shard_count);
    } else if (manifest->shard_count != shard_count) {
      return Status::InvalidArgument(
          path + " claims " + std::to_string(manifest->shard_count) +
          " shards, expected " + std::to_string(shard_count));
    } else if (!(manifest->global_bounds == sharded.bounds_)) {
      return Status::InvalidArgument(path +
                                     " disagrees on the global bounds");
    }
    total_objects += manifest->global_ids.size();
    sharded.shards_.push_back(std::move(corpus).value());
    sharded.to_global_.push_back(std::move(manifest->global_ids));
  }

  // The shards' global ids must tile 0..total-1 exactly: no holes, no
  // duplicates (a missing or doubled object would silently corrupt results).
  constexpr auto kUnset = static_cast<uint32_t>(-1);
  sharded.locate_.assign(static_cast<size_t>(total_objects),
                         {kUnset, kInvalidObject});
  for (uint32_t s = 0; s < shard_count; ++s) {
    const std::vector<ObjectId>& globals = sharded.to_global_[s];
    for (ObjectId local = 0; local < globals.size(); ++local) {
      const ObjectId global = globals[local];
      if (global >= total_objects || sharded.locate_[global].first != kUnset) {
        return Status::InvalidArgument(
            "shard files disagree: global object id " +
            std::to_string(global) + " is out of range or duplicated");
      }
      sharded.locate_[global] = {s, local};
    }
  }

  sharded.dist_norm_ =
      sharded.bounds_.empty()
          ? 0.0
          : Distance(Point{sharded.bounds_.min_x, sharded.bounds_.min_y},
                     Point{sharded.bounds_.max_x, sharded.bounds_.max_y});
  sharded.fanout_threads_ = options.fanout_threads;
  return sharded;
}

// --- ShardedTopKEngine -------------------------------------------------------

ShardedTopKEngine::ShardedTopKEngine(const ShardedCorpus& corpus)
    : corpus_(&corpus), pool_(corpus.pool()) {
  engines_.reserve(corpus.num_shards());
  for (size_t s = 0; s < corpus.num_shards(); ++s) {
    const Corpus& shard = corpus.shard(s);
    engines_.emplace_back(shard.store(), shard.setr());
    engines_.back().set_dist_norm(corpus.dist_norm());
  }
}

TopKResult ShardedTopKEngine::Query(const ::yask::Query& query,
                                    TopKStats* stats) const {
  if (query.k == 0) return {};  // Same guard as the unsharded engine.
  const size_t n = engines_.size();
  std::vector<TopKResult> parts(n);
  std::vector<TopKStats> part_stats(n);

  // Phase 1: search the query's home shard — the shard whose tree MBR is
  // nearest the query point — to completion. Its k-th score then bounds
  // what any other shard must beat (the classic distributed-top-k threshold
  // broadcast): far shards usually terminate at their root, so the fan-out
  // does roughly one small-tree search worth of work per query instead of N.
  size_t home = 0;
  double best_distance = std::numeric_limits<double>::infinity();
  for (size_t s = 0; s < n; ++s) {
    const SetRTree& tree = corpus_->shard(s).setr();
    if (tree.empty()) continue;
    const double d = tree.node(tree.root()).rect.MinDistance(query.loc);
    if (d < best_distance) {
      best_distance = d;
      home = s;
    }
  }
  parts[home] = engines_[home].Query(query, &part_stats[home]);

  // Merges a shard's local-id rows into `merged` (global ids) and truncates
  // to the k best. Scores are bit-identical across layouts, so the
  // ScoredObject sort (score desc, global id asc) reproduces the unsharded
  // ordering exactly — ties and all; truncation only ever drops rows that k
  // kept rows already dominate.
  TopKResult merged;
  auto merge_part = [&](size_t s) {
    for (const ScoredObject& so : parts[s]) {
      merged.push_back(ScoredObject{corpus_->ToGlobal(s, so.id), so.score});
    }
    std::sort(merged.begin(), merged.end());
    if (merged.size() > query.k) merged.resize(query.k);
  };
  merge_part(home);

  // Skipping only strictly-worse candidates keeps the fan-out exact: an
  // object pruned by the threshold scores strictly below the current k-th
  // result, so the D6 ordering can never place it in the top-k regardless
  // of ids.
  auto threshold = [&] {
    return merged.size() == query.k
               ? merged.back().score
               : -std::numeric_limits<double>::infinity();
  };

  // Phase 2: the remaining shards, thresholded.
  if (n > 1 && pool_ != nullptr) {
    // Parallel: every other shard searches concurrently against the home
    // shard's k-th score.
    const double prune_below = threshold();
    std::latch latch(static_cast<ptrdiff_t>(n - 1));
    for (size_t s = 0; s < n; ++s) {
      if (s == home) continue;
      pool_->Submit([this, s, prune_below, &query, &parts, &part_stats,
                     &latch] {
        parts[s] = engines_[s].Query(query, prune_below, &part_stats[s]);
        latch.count_down();
      });
    }
    latch.wait();
    for (size_t s = 0; s < n; ++s) {
      if (s != home) merge_part(s);
    }
  } else if (n > 1) {
    // Sequential (single-core host): nearest shards first, re-tightening
    // the threshold after each merge — later shards see the best bound yet.
    std::vector<std::pair<double, size_t>> order;
    for (size_t s = 0; s < n; ++s) {
      if (s == home) continue;
      const SetRTree& tree = corpus_->shard(s).setr();
      const double d = tree.empty()
                           ? std::numeric_limits<double>::infinity()
                           : tree.node(tree.root()).rect.MinDistance(query.loc);
      order.emplace_back(d, s);
    }
    std::sort(order.begin(), order.end());
    for (const auto& [distance, s] : order) {
      parts[s] = engines_[s].Query(query, threshold(), &part_stats[s]);
      merge_part(s);
    }
  }

  if (stats != nullptr) {
    for (const TopKStats& ps : part_stats) {
      stats->nodes_popped += ps.nodes_popped;
      stats->objects_scored += ps.objects_scored;
    }
  }
  return merged;
}

}  // namespace yask
