#include "src/snapshot/snapshot_io.h"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cassert>
#include <cstdio>
#include <fstream>

namespace yask {

BufWriter* SnapshotWriter::AddSection(SectionId id) {
  for (const auto& [existing, writer] : sections_) {
    (void)writer;
    assert(existing != id && "duplicate snapshot section");
  }
  sections_.emplace_back(id, BufWriter());
  return &sections_.back().second;
}

Status SnapshotWriter::WriteTo(const std::string& path,
                               uint64_t* bytes_written_out) const {
  // Assemble header + payloads + table in memory: snapshots are bounded by
  // the warm state we are serialising, which already fits in RAM.
  uint64_t offset = kSnapshotHeaderBytes;
  std::vector<SnapshotSectionInfo> infos;
  infos.reserve(sections_.size());
  for (const auto& [id, payload] : sections_) {
    infos.push_back(SnapshotSectionInfo{
        id, offset, payload.size(),
        Crc32(payload.data().data(), payload.size())});
    offset += payload.size();
  }

  BufWriter header;
  header.PutU64(kSnapshotMagic);
  header.PutU32(kSnapshotFormatVersion);
  header.PutU32(static_cast<uint32_t>(sections_.size()));
  header.PutU64(offset);  // Table begins right after the last payload.
  BufWriter table;
  for (const SnapshotSectionInfo& info : infos) {
    table.PutU32(static_cast<uint32_t>(info.id));
    table.PutU32(0);  // Reserved for future per-section flags.
    table.PutU64(info.offset);
    table.PutU64(info.size);
    table.PutU32(info.crc32);
  }
  BufWriter footer;
  footer.PutU32(Crc32(table.data().data(), table.size()));

  // Stream header, payloads, table, footer to a temporary sibling, fsync,
  // then rename over the target. Payloads are written straight from the
  // section buffers — no second in-memory copy of the (potentially large)
  // state. The sibling's name is unique per process and call, so concurrent
  // writers to the same target cannot interleave into one temp file: each
  // completes its own file and the atomic renames serialise, last writer
  // wins whole. The fsync-before-rename (plus a directory fsync after) is
  // what makes the crash guarantee hold on journalled filesystems with
  // delayed allocation.
  static std::atomic<uint64_t> tmp_counter{0};
  const std::string tmp = path + ".tmp." + std::to_string(::getpid()) + "." +
                          std::to_string(tmp_counter.fetch_add(1));
  {
    const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0) {
      return Status::Unavailable("cannot open " + tmp + " for writing");
    }
    auto put = [fd](const std::string& bytes) {
      size_t done = 0;
      while (done < bytes.size()) {
        const ssize_t n = ::write(fd, bytes.data() + done, bytes.size() - done);
        if (n <= 0) return false;
        done += static_cast<size_t>(n);
      }
      return true;
    };
    bool ok = put(header.data());
    for (const auto& [id, payload] : sections_) {
      (void)id;
      ok = ok && put(payload.data());
    }
    ok = ok && put(table.data()) && put(footer.data());
    ok = ok && ::fsync(fd) == 0;
    ok = (::close(fd) == 0) && ok;
    if (!ok) {
      std::remove(tmp.c_str());
      return Status::Unavailable("short write to " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::Unavailable("cannot rename " + tmp + " to " + path);
  }
  // Persist the rename itself (the new directory entry).
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash + 1);
  const int dir_fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dir_fd >= 0) {
    ::fsync(dir_fd);
    ::close(dir_fd);
  }
  if (bytes_written_out != nullptr) {
    *bytes_written_out = offset + table.size() + footer.size();
  }
  return Status::OK();
}

Result<SnapshotReader> SnapshotReader::Open(const std::string& path) {
  SnapshotReader reader;
  {
    std::ifstream f(path, std::ios::binary);
    if (!f) return Status::NotFound("cannot open snapshot " + path);
    f.seekg(0, std::ios::end);
    const std::streamoff size = f.tellg();
    // Non-seekable inputs (FIFOs, /dev/stdin) report -1; reject them before
    // the resize turns the value into an absurd allocation.
    if (!f || size < 0) {
      return Status::InvalidArgument("snapshot " + path +
                                     " is not a seekable regular file");
    }
    f.seekg(0, std::ios::beg);
    reader.buffer_.resize(static_cast<size_t>(size));
    f.read(reader.buffer_.data(), size);
    if (!f) return Status::Unavailable("cannot read snapshot " + path);
  }
  const std::string& buf = reader.buffer_;
  if (buf.size() < kSnapshotHeaderBytes + sizeof(uint32_t)) {
    return Status::InvalidArgument("snapshot " + path + " is truncated (" +
                                   std::to_string(buf.size()) + " bytes)");
  }

  BufReader header(buf.data(), kSnapshotHeaderBytes);
  const uint64_t magic = header.GetU64();
  if (magic != kSnapshotMagic) {
    return Status::InvalidArgument("snapshot " + path +
                                   " has bad magic (not a YASK snapshot)");
  }
  reader.format_version_ = header.GetU32();
  if (reader.format_version_ > kSnapshotFormatVersion) {
    return Status::FailedPrecondition(
        "snapshot " + path + " has format version " +
        std::to_string(reader.format_version_) +
        "; this build reads versions <= " +
        std::to_string(kSnapshotFormatVersion));
  }
  const uint32_t section_count = header.GetU32();
  const uint64_t table_offset = header.GetU64();

  // Subtraction-form bounds checks: the header has no checksum of its own,
  // so a corrupt table_offset must not be able to wrap the arithmetic.
  const uint64_t table_bytes =
      static_cast<uint64_t>(section_count) * kSnapshotTableEntryBytes;
  if (table_offset < kSnapshotHeaderBytes || table_offset > buf.size() ||
      buf.size() - table_offset < table_bytes + sizeof(uint32_t)) {
    return Status::InvalidArgument("snapshot " + path +
                                   " section table out of bounds (truncated?)");
  }

  BufReader table(buf.data() + table_offset,
                  static_cast<size_t>(table_bytes) + sizeof(uint32_t));
  std::vector<SnapshotSectionInfo> sections;
  sections.reserve(section_count);
  for (uint32_t i = 0; i < section_count; ++i) {
    SnapshotSectionInfo info;
    info.id = static_cast<SectionId>(table.GetU32());
    table.GetU32();  // reserved
    info.offset = table.GetU64();
    info.size = table.GetU64();
    info.crc32 = table.GetU32();
    sections.push_back(info);
  }
  const uint32_t stored_table_crc = table.GetU32();
  if (!table.ok()) return table.status();
  const uint32_t actual_table_crc =
      Crc32(buf.data() + table_offset, static_cast<size_t>(table_bytes));
  if (stored_table_crc != actual_table_crc) {
    return Status::InvalidArgument("snapshot " + path +
                                   " section table checksum mismatch");
  }
  for (const SnapshotSectionInfo& info : sections) {
    if (info.offset < kSnapshotHeaderBytes || info.offset > table_offset ||
        table_offset - info.offset < info.size) {
      return Status::InvalidArgument(
          "snapshot " + path + " section " +
          SectionIdToString(info.id) + " extent out of bounds");
    }
  }
  reader.sections_ = std::move(sections);
  return reader;
}

bool SnapshotReader::Has(SectionId id) const {
  for (const SnapshotSectionInfo& info : sections_) {
    if (info.id == id) return true;
  }
  return false;
}

Result<BufReader> SnapshotReader::OpenSection(SectionId id) const {
  for (const SnapshotSectionInfo& info : sections_) {
    if (info.id != id) continue;
    const char* payload = buffer_.data() + info.offset;
    const uint32_t crc = Crc32(payload, static_cast<size_t>(info.size));
    if (crc != info.crc32) {
      return Status::InvalidArgument(
          std::string("snapshot section ") + SectionIdToString(id) +
          " checksum mismatch (corrupt payload)");
    }
    return BufReader(payload, static_cast<size_t>(info.size));
  }
  return Status::NotFound(std::string("snapshot has no section ") +
                          SectionIdToString(id));
}

}  // namespace yask
