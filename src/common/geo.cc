#include "src/common/geo.h"

#include <algorithm>
#include <cmath>

namespace yask {

namespace {
constexpr double kDegToRad = 3.14159265358979323846 / 180.0;
}  // namespace

double HaversineKm(const Point& lonlat_a, const Point& lonlat_b) {
  const double lat1 = lonlat_a.y * kDegToRad;
  const double lat2 = lonlat_b.y * kDegToRad;
  const double dlat = (lonlat_b.y - lonlat_a.y) * kDegToRad;
  const double dlon = (lonlat_b.x - lonlat_a.x) * kDegToRad;
  const double s1 = std::sin(dlat / 2);
  const double s2 = std::sin(dlon / 2);
  const double h = s1 * s1 + std::cos(lat1) * std::cos(lat2) * s2 * s2;
  return 2.0 * kEarthRadiusKm * std::asin(std::min(1.0, std::sqrt(h)));
}

Rect GeoBoundingBox(const Point& center, double radius_km) {
  const double dlat = radius_km / kEarthRadiusKm / kDegToRad;
  const double cos_lat = std::cos(center.y * kDegToRad);
  double dlon;
  if (cos_lat < 1e-9) {
    dlon = 360.0;  // At a pole every longitude is within any radius.
  } else {
    dlon = dlat / cos_lat;
  }
  return Rect::FromBounds(std::max(-180.0, center.x - dlon),
                          std::max(-90.0, center.y - dlat),
                          std::min(180.0, center.x + dlon),
                          std::min(90.0, center.y + dlat));
}

}  // namespace yask
