// Experiment E12 (DESIGN.md): the explanation generator (§3.3).
//
// Measures the per-missing-object explanation cost (rank computation with
// SetR-tree pruning is the dominant part) and prints the distribution of
// verdicts over random missing objects — the demo's explanation panel
// content at scale.
//
// Expected shape: explanation cost is close to one pruned rank computation;
// far/rare objects are classified too-far / keyword-mismatch, near-misses as
// narrowly-outranked.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>

#include "bench/bench_util.h"
#include "src/query/ranking.h"
#include "src/whynot/explanation.h"

namespace yask {
namespace bench {
namespace {

void PrintVerdictDistribution() {
  const size_t n = 100000;
  const ObjectStore& store = SharedDataset(n);
  const SetRTree& tree = SharedSetR(n);
  Rng rng(41);
  std::map<MissingReason, size_t> verdicts;
  size_t trials = 0;
  while (trials < 200) {
    const Query q = MakeQuery(store, &rng, 3, 10);
    const ObjectId target =
        static_cast<ObjectId>(rng.NextBounded(store.size()));
    auto result = ExplainMissing(store, tree, q, {target});
    if (!result.ok()) continue;
    ++verdicts[result->at(0).reason];
    ++trials;
  }
  std::printf(
      "\n=== E12: explanation verdicts over %zu random (query, object) pairs "
      "(N=%zu, k=10) ===\n",
      trials, n);
  for (const auto& [reason, count] : verdicts) {
    std::printf("  %-28s %5zu  (%.1f%%)\n", MissingReasonToString(reason),
                count, 100.0 * count / trials);
  }
  std::printf("\n");
}

void BM_ExplainMissing(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const ObjectStore& store = SharedDataset(n);
  const SetRTree& tree = SharedSetR(n);
  Rng rng(43);
  const Query q = MakeQuery(store, &rng, 3, 10);
  const std::vector<ObjectId> missing = PickMissing(store, q, 1, 10);
  for (auto _ : state) {
    auto result = ExplainMissing(store, tree, q, missing);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_ExplainMissing)->ArgName("N")->Arg(10000)->Arg(100000);

void BM_RankComputation_Pruned(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const ObjectStore& store = SharedDataset(n);
  const SetRTree& tree = SharedSetR(n);
  Rng rng(47);
  const Query q = MakeQuery(store, &rng, 3, 10);
  const ObjectId target = PickMissing(store, q, 1, 10)[0];
  RankStats stats;
  size_t runs = 0;
  for (auto _ : state) {
    size_t rank = ComputeRank(store, tree, q, target, &stats);
    benchmark::DoNotOptimize(rank);
    ++runs;
  }
  state.counters["objects_scored/rank"] =
      benchmark::Counter(static_cast<double>(stats.objects_scored) / runs);
}
BENCHMARK(BM_RankComputation_Pruned)->ArgName("N")->Arg(10000)->Arg(100000);

void BM_RankComputation_Scan(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const ObjectStore& store = SharedDataset(n);
  Rng rng(47);
  const Query q = MakeQuery(store, &rng, 3, 10);
  const ObjectId target = PickMissing(store, q, 1, 10)[0];
  for (auto _ : state) {
    size_t rank = ComputeRankScan(store, q, target);
    benchmark::DoNotOptimize(rank);
  }
}
BENCHMARK(BM_RankComputation_Scan)->ArgName("N")->Arg(10000)->Arg(100000);

}  // namespace
}  // namespace bench
}  // namespace yask

int main(int argc, char** argv) {
  yask::bench::PrintVerdictDistribution();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
