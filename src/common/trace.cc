#include "src/common/trace.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <random>

namespace yask {

namespace {

thread_local TraceContext tls_context;

uint64_t RandomSeed() {
  std::random_device rd;
  return (static_cast<uint64_t>(rd()) << 32) ^ rd();
}

std::atomic<uint64_t>& SpanCounter() {
  // Seeded once per process so coordinator and shard-server span ids live
  // in disjoint ranges with overwhelming probability.
  static std::atomic<uint64_t> counter{RandomSeed() | 1};
  return counter;
}

std::mt19937_64& TraceIdRng() {
  static std::mt19937_64 rng(RandomSeed());
  return rng;
}

std::mutex& TraceIdMutex() {
  static std::mutex mu;
  return mu;
}

}  // namespace

TraceRecorder::TraceRecorder(std::string trace_id)
    : trace_id_(std::move(trace_id)) {}

size_t TraceRecorder::StartSpan(TraceSpan span) {
  std::lock_guard<std::mutex> lock(mu_);
  if (spans_.size() >= kMaxSpans) {
    ++dropped_;
    return kDroppedSlot;
  }
  spans_.push_back(std::move(span));
  return spans_.size() - 1;
}

void TraceRecorder::FinishSpan(size_t slot, double duration_ms,
                               std::string detail) {
  std::lock_guard<std::mutex> lock(mu_);
  if (slot >= spans_.size()) return;  // kDroppedSlot or post-TakeSpans.
  spans_[slot].duration_ms = duration_ms;
  if (!detail.empty()) spans_[slot].detail = std::move(detail);
}

std::vector<TraceSpan> TraceRecorder::TakeSpans() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TraceSpan> out;
  out.swap(spans_);
  return out;
}

size_t TraceRecorder::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

TraceContext CurrentTraceContext() { return tls_context; }

uint64_t NextSpanId() {
  return SpanCounter().fetch_add(1, std::memory_order_relaxed);
}

std::string MintTraceId() {
  uint64_t bits;
  {
    std::lock_guard<std::mutex> lock(TraceIdMutex());
    bits = TraceIdRng()();
  }
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(bits));
  return buf;
}

TraceContextScope::TraceContextScope(TraceContext ctx)
    : previous_(tls_context) {
  tls_context = ctx;
}

TraceContextScope::~TraceContextScope() { tls_context = previous_; }

ScopedSpan::ScopedSpan(std::string name, std::string detail) {
  TraceContext ctx = tls_context;
  if (ctx.recorder == nullptr) return;
  recorder_ = ctx.recorder;
  restore_parent_ = ctx.parent_span;
  id_ = NextSpanId();
  detail_ = std::move(detail);
  start_ms_ = recorder_->ElapsedMs();
  TraceSpan span;
  span.id = id_;
  span.parent = restore_parent_;
  span.name = std::move(name);
  span.detail = detail_;
  span.start_ms = start_ms_;
  slot_ = recorder_->StartSpan(std::move(span));
  tls_context.parent_span = id_;
}

ScopedSpan::~ScopedSpan() {
  if (recorder_ == nullptr) return;
  recorder_->FinishSpan(slot_, recorder_->ElapsedMs() - start_ms_,
                        std::move(detail_));
  tls_context.parent_span = restore_parent_;
}

std::string TraceHeaderLine() {
  const TraceContext ctx = tls_context;
  if (ctx.recorder == nullptr) return "";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s: %s:%llx\r\n", kTraceHeaderName,
                ctx.recorder->trace_id().c_str(),
                static_cast<unsigned long long>(ctx.parent_span));
  return buf;
}

bool ParseTraceHeaderValue(const std::string& value, std::string* trace_id,
                           uint64_t* parent_span) {
  const size_t colon = value.find(':');
  if (colon == std::string::npos || colon == 0) return false;
  const std::string id = value.substr(0, colon);
  const std::string parent_hex = value.substr(colon + 1);
  if (id.empty() || id.size() > 64 || parent_hex.empty() ||
      parent_hex.size() > 16) {
    return false;
  }
  uint64_t parent = 0;
  for (char c : parent_hex) {
    int digit;
    if (c >= '0' && c <= '9') {
      digit = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      digit = c - 'a' + 10;
    } else if (c >= 'A' && c <= 'F') {
      digit = c - 'A' + 10;
    } else {
      return false;
    }
    parent = (parent << 4) | static_cast<uint64_t>(digit);
  }
  *trace_id = id;
  *parent_span = parent;
  return true;
}

TraceStore::TraceStore(size_t capacity, size_t pinned_capacity,
                       double slow_threshold_ms)
    : capacity_(std::max<size_t>(1, capacity)),
      pinned_capacity_(std::max<size_t>(1, pinned_capacity)),
      slow_threshold_ms_(slow_threshold_ms) {}

void TraceStore::set_slow_threshold_ms(double ms) {
  std::lock_guard<std::mutex> lock(mu_);
  slow_threshold_ms_ = ms;
}

double TraceStore::slow_threshold_ms() const {
  std::lock_guard<std::mutex> lock(mu_);
  return slow_threshold_ms_;
}

void TraceStore::Add(const std::string& trace_id,
                     std::vector<TraceSpan> spans, double total_ms) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = traces_.find(trace_id);
  if (it == traces_.end()) {
    Stored stored;
    stored.trace_id = trace_id;
    stored.spans = std::move(spans);
    if (stored.spans.size() > kMaxSpansPerTrace) {
      stored.spans.resize(kMaxSpansPerTrace);
    }
    stored.total_ms = total_ms;
    it = traces_.emplace(trace_id, std::move(stored)).first;
    order_.push_back(trace_id);
  } else {
    auto& dst = it->second.spans;
    const size_t room =
        dst.size() < kMaxSpansPerTrace ? kMaxSpansPerTrace - dst.size() : 0;
    const size_t take = std::min(room, spans.size());
    dst.insert(dst.end(), std::make_move_iterator(spans.begin()),
               std::make_move_iterator(spans.begin() + take));
    it->second.total_ms = std::max(it->second.total_ms, total_ms);
  }
  if (!it->second.pinned && it->second.total_ms >= slow_threshold_ms_) {
    it->second.pinned = true;
    pinned_order_.push_back(trace_id);
  }
  EvictLocked();
}

void TraceStore::EvictLocked() {
  // Ring of recent traces: drop the oldest unpinned entries first. order_
  // may hold ids that became pinned or were already erased; skip those.
  size_t unpinned = 0;
  for (const auto& [id, stored] : traces_) {
    if (!stored.pinned) ++unpinned;
  }
  while (unpinned > capacity_ && !order_.empty()) {
    const std::string id = order_.front();
    order_.pop_front();
    auto it = traces_.find(id);
    if (it == traces_.end() || it->second.pinned) continue;
    traces_.erase(it);
    --unpinned;
  }
  // The pinned set is bounded too: oldest pinned traces fall off once the
  // slow-query museum is full.
  while (pinned_order_.size() > pinned_capacity_) {
    const std::string id = pinned_order_.front();
    pinned_order_.pop_front();
    auto it = traces_.find(id);
    if (it != traces_.end() && it->second.pinned) traces_.erase(it);
  }
}

std::optional<TraceStore::Stored> TraceStore::Get(
    const std::string& trace_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = traces_.find(trace_id);
  if (it == traces_.end()) return std::nullopt;
  return it->second;
}

size_t TraceStore::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return traces_.size();
}

size_t TraceStore::pinned_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t n = 0;
  for (const auto& [id, stored] : traces_) {
    if (stored.pinned) ++n;
  }
  return n;
}

}  // namespace yask
