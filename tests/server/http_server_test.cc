#include "src/server/http_server.h"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <dirent.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "src/server/json.h"

namespace yask {
namespace {

TEST(UrlDecodeTest, DecodesPercentAndPlus) {
  EXPECT_EQ(UrlDecode("a%20b"), "a b");
  EXPECT_EQ(UrlDecode("a+b"), "a b");
  EXPECT_EQ(UrlDecode("%2Fpath"), "/path");
  EXPECT_EQ(UrlDecode("plain"), "plain");
  EXPECT_EQ(UrlDecode("bad%zz"), "bad%zz");  // Invalid escape passthrough.
}

class HttpServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    server_ = std::make_unique<HttpServer>(0, 2);
    server_->Route("GET", "/ping", [](const HttpRequest&) {
      return HttpResponse::Json("{\"pong\":true}");
    });
    server_->Route("POST", "/echo", [](const HttpRequest& req) {
      return HttpResponse::Json(req.body);
    });
    server_->Route("GET", "/params", [](const HttpRequest& req) {
      std::string out = "{";
      bool first = true;
      for (const auto& [k, v] : req.query_params) {
        if (!first) out += ",";
        first = false;
        out += JsonEscape(k) + ":" + JsonEscape(v);
      }
      return HttpResponse::Json(out + "}");
    });
    ASSERT_TRUE(server_->Start().ok());
  }
  void TearDown() override { server_->Stop(); }

  std::unique_ptr<HttpServer> server_;
};

TEST_F(HttpServerTest, BindsEphemeralPort) {
  EXPECT_GT(server_->bound_port(), 0);
  EXPECT_TRUE(server_->running());
}

TEST_F(HttpServerTest, GetRoute) {
  int status = 0;
  auto body = HttpFetch(server_->bound_port(), "GET", "/ping", "", &status);
  ASSERT_TRUE(body.ok()) << body.status().ToString();
  EXPECT_EQ(status, 200);
  EXPECT_EQ(*body, "{\"pong\":true}");
}

TEST_F(HttpServerTest, PostEchoesBody) {
  const std::string payload = "{\"x\":42}";
  int status = 0;
  auto body =
      HttpFetch(server_->bound_port(), "POST", "/echo", payload, &status);
  ASSERT_TRUE(body.ok());
  EXPECT_EQ(status, 200);
  EXPECT_EQ(*body, payload);
}

TEST_F(HttpServerTest, QueryParamsParsedAndDecoded) {
  int status = 0;
  auto body = HttpFetch(server_->bound_port(), "GET",
                        "/params?a=1&b=hello%20world", "", &status);
  ASSERT_TRUE(body.ok());
  EXPECT_NE(body->find("\"a\":\"1\""), std::string::npos);
  EXPECT_NE(body->find("\"b\":\"hello world\""), std::string::npos);
}

TEST_F(HttpServerTest, UnknownRouteIs404) {
  int status = 0;
  auto body = HttpFetch(server_->bound_port(), "GET", "/nope", "", &status);
  ASSERT_TRUE(body.ok());
  EXPECT_EQ(status, 404);
}

TEST_F(HttpServerTest, WrongMethodIs404) {
  int status = 0;
  auto body = HttpFetch(server_->bound_port(), "POST", "/ping", "", &status);
  ASSERT_TRUE(body.ok());
  EXPECT_EQ(status, 404);
}

TEST_F(HttpServerTest, ConcurrentRequests) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10;
  std::atomic<int> ok_count{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        int status = 0;
        auto body =
            HttpFetch(server_->bound_port(), "GET", "/ping", "", &status);
        if (body.ok() && status == 200 && *body == "{\"pong\":true}") {
          ++ok_count;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(ok_count.load(), kThreads * kPerThread);
}

TEST_F(HttpServerTest, StopIsIdempotent) {
  server_->Stop();
  server_->Stop();
  EXPECT_FALSE(server_->running());
}

TEST(HttpServerLifecycleTest, RestartOnNewInstance) {
  HttpServer a(0, 1);
  a.Route("GET", "/x", [](const HttpRequest&) {
    return HttpResponse::Json("{}");
  });
  ASSERT_TRUE(a.Start().ok());
  const uint16_t port = a.bound_port();
  a.Stop();
  // Port released: a new server can bind it again.
  HttpServer b(port, 1);
  b.Route("GET", "/x", [](const HttpRequest&) {
    return HttpResponse::Json("{}");
  });
  EXPECT_TRUE(b.Start().ok());
  b.Stop();
}

TEST_F(HttpServerTest, LargeBodyRoundTrips) {
  // 1 MiB body. (Built via constructor + insert to sidestep a GCC 12
  // -Wrestrict false positive on append-after-literal.)
  std::string payload(1 << 20, 'x');
  payload.insert(0, "{\"blob\":\"");
  payload += "\"}";
  int status = 0;
  auto body =
      HttpFetch(server_->bound_port(), "POST", "/echo", payload, &status);
  ASSERT_TRUE(body.ok());
  EXPECT_EQ(status, 200);
  EXPECT_EQ(body->size(), payload.size());
}

TEST_F(HttpServerTest, GarbageRequestGets400) {
  // Raw socket with a non-HTTP preamble.
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(server_->bound_port());
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  const char garbage[] = "\x01\x02garbage\r\n\r\n";
  ASSERT_GT(::send(fd, garbage, sizeof(garbage) - 1, 0), 0);
  char buf[512];
  std::string resp;
  while (true) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    resp.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  // Either a 400/404 response or a dropped connection is acceptable; a 200
  // would mean the garbage was routed.
  EXPECT_EQ(resp.find("200 OK"), std::string::npos);
}

TEST_F(HttpServerTest, MissingContentLengthTreatedAsEmptyBody) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(server_->bound_port());
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  const char req[] = "GET /ping HTTP/1.1\r\nHost: x\r\n\r\n";
  ASSERT_GT(::send(fd, req, sizeof(req) - 1, 0), 0);
  std::string resp;
  char buf[512];
  while (true) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    resp.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  EXPECT_NE(resp.find("200 OK"), std::string::npos);
  EXPECT_NE(resp.find("pong"), std::string::npos);
}

TEST(HttpServerShutdownTest, StopUnderLoadClosesQueuedFdsQuicklyNoLeak) {
  // Counts open fds of this process (the opendir fd cancels out between the
  // baseline and the final count).
  auto count_fds = [] {
    size_t n = 0;
    DIR* dir = ::opendir("/proc/self/fd");
    if (dir == nullptr) return n;
    while (::readdir(dir) != nullptr) ++n;
    ::closedir(dir);
    return n;
  };

  const size_t baseline = count_fds();
  constexpr int kClients = 30;
  static constexpr int kHandlerMillis = 150;
  {
    // One worker, a slow handler: the first connection occupies the worker
    // while the rest pile up in the pending_ queue.
    HttpServer server(0, 1);
    server.Route("GET", "/slow", [](const HttpRequest&) {
      std::this_thread::sleep_for(std::chrono::milliseconds(kHandlerMillis));
      return HttpResponse::Json("{}");
    });
    ASSERT_TRUE(server.Start().ok());

    std::vector<int> clients;
    for (int i = 0; i < kClients; ++i) {
      const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
      ASSERT_GE(fd, 0);
      sockaddr_in addr{};
      addr.sin_family = AF_INET;
      addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
      addr.sin_port = htons(server.bound_port());
      ASSERT_EQ(
          ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
      const char req[] = "GET /slow HTTP/1.1\r\nHost: x\r\n\r\n";
      ASSERT_GT(::send(fd, req, sizeof(req) - 1, 0), 0);
      clients.push_back(fd);
    }
    // Let the accept thread queue everything behind the busy worker.
    std::this_thread::sleep_for(std::chrono::milliseconds(200));

    // Stop() must not serve the ~29-request backlog (that would take
    // kClients * kHandlerMillis); it finishes the in-flight request, closes
    // the queued fds and returns.
    const auto start = std::chrono::steady_clock::now();
    server.Stop();
    const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
        std::chrono::steady_clock::now() - start);
    EXPECT_LT(elapsed.count(), kClients * kHandlerMillis / 2)
        << "Stop() appears to drain the backlog instead of closing it";

    for (const int fd : clients) ::close(fd);
  }
  // Every accepted server-side fd must be gone: queue-drain close, worker
  // close, or listener close.
  EXPECT_EQ(count_fds(), baseline);
}

TEST(HttpResponseTest, ErrorHelperFormatsJson) {
  const HttpResponse r = HttpResponse::Error(400, "bad \"input\"");
  EXPECT_EQ(r.status, 400);
  EXPECT_EQ(r.body, "{\"error\":\"bad \\\"input\\\"\"}");
}

}  // namespace
}  // namespace yask
