#include "src/index/kcr_tree.h"

#include <algorithm>
#include <cmath>

namespace yask {

uint32_t CountMap::Get(TermId term) const {
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), term,
      [](const std::pair<TermId, uint32_t>& e, TermId t) { return e.first < t; });
  if (it == entries_.end() || it->first != term) return 0;
  return it->second;
}

void CountMap::AddDoc(const KeywordSet& doc) {
  // Linear merge of the sorted doc into the sorted map.
  std::vector<std::pair<TermId, uint32_t>> merged;
  merged.reserve(entries_.size() + doc.size());
  auto a = entries_.begin();
  auto b = doc.begin();
  while (a != entries_.end() && b != doc.end()) {
    if (a->first < *b) {
      merged.push_back(*a++);
    } else if (*b < a->first) {
      merged.emplace_back(*b++, 1);
    } else {
      merged.emplace_back(a->first, a->second + 1);
      ++a;
      ++b;
    }
  }
  merged.insert(merged.end(), a, entries_.end());
  for (; b != doc.end(); ++b) merged.emplace_back(*b, 1);
  entries_ = std::move(merged);
}

void CountMap::MergeFrom(const CountMap& other) {
  std::vector<std::pair<TermId, uint32_t>> merged;
  merged.reserve(entries_.size() + other.entries_.size());
  auto a = entries_.begin();
  auto b = other.entries_.begin();
  while (a != entries_.end() && b != other.entries_.end()) {
    if (a->first < b->first) {
      merged.push_back(*a++);
    } else if (b->first < a->first) {
      merged.push_back(*b++);
    } else {
      merged.emplace_back(a->first, a->second + b->second);
      ++a;
      ++b;
    }
  }
  merged.insert(merged.end(), a, entries_.end());
  merged.insert(merged.end(), b, other.entries_.end());
  entries_ = std::move(merged);
}

uint64_t CountMap::TotalMatches(const KeywordSet& query_doc) const {
  // Query keyword sets are tiny compared to upper-node maps; probe each
  // query term by binary search instead of merging the full map.
  uint64_t total = 0;
  for (TermId t : query_doc) total += Get(t);
  return total;
}

uint32_t CountMap::MaxSingleMatch(const KeywordSet& query_doc) const {
  uint32_t best = 0;
  for (TermId t : query_doc) best = std::max(best, Get(t));
  return best;
}

namespace {

/// Upper bound on TSim for an object under the node matching exactly `c`
/// query keywords: |o.doc| >= max(c, min_len) minimises the union.
double UbTSim(uint32_t c, uint32_t min_len, size_t query_len) {
  if (c == 0) return 0.0;
  const double doc_len = static_cast<double>(std::max<uint32_t>(c, min_len));
  return static_cast<double>(c) /
         (doc_len + static_cast<double>(query_len) - static_cast<double>(c));
}

/// Lower bound on TSim for an object matching at least `c` query keywords:
/// |o.doc| <= max_len maximises the union. (TSim is increasing in c for
/// fixed doc length, so using exactly c is conservative.)
double LbTSim(uint32_t c, uint32_t max_len, size_t query_len) {
  if (c == 0) return 0.0;
  const double doc_len = static_cast<double>(std::max<uint32_t>(max_len, c));
  return static_cast<double>(c) /
         (doc_len + static_cast<double>(query_len) - static_cast<double>(c));
}

}  // namespace

CountBounds BoundOutscoringCount(const Scorer& scorer, const Rect& mbr,
                                 const KcSummary& s, double threshold) {
  CountBounds out;
  if (s.cnt == 0) return out;

  const Query& q = scorer.query();
  const size_t qlen = q.doc.size();
  const double sp_max = q.w.ws * scorer.MaxSpatialComponent(mbr);
  const double sp_min = q.w.ws * scorer.MinSpatialComponent(mbr);

  // Smallest match count j_ub such that an object *could* reach the
  // threshold: sp_max + wt * UbTSim(j) >= threshold. UbTSim is increasing in
  // j, so scan j = 0..qlen. 2^32-1 encodes "impossible".
  uint32_t j_ub = static_cast<uint32_t>(-1);
  for (uint32_t j = 0; j <= qlen; ++j) {
    if (sp_max + q.w.wt * UbTSim(j, s.min_doc_len, qlen) >= threshold) {
      j_ub = j;
      break;
    }
  }
  // Smallest match count j_lb such that an object *must* exceed the
  // threshold: sp_min + wt * LbTSim(j) > threshold.
  uint32_t j_lb = static_cast<uint32_t>(-1);
  for (uint32_t j = 0; j <= qlen; ++j) {
    if (sp_min + q.w.wt * LbTSim(j, s.max_doc_len, qlen) > threshold) {
      j_lb = j;
      break;
    }
  }

  const uint64_t total = s.counts.TotalMatches(q.doc);

  // Upper bound.
  if (j_ub == static_cast<uint32_t>(-1)) {
    out.upper = 0;
  } else if (j_ub == 0) {
    out.upper = s.cnt;
  } else {
    const uint64_t by_incidence = total / j_ub;  // #{c >= j} <= floor(T / j).
    out.upper = static_cast<uint32_t>(
        std::min<uint64_t>(s.cnt, by_incidence));
  }

  // Lower bound.
  if (j_lb == static_cast<uint32_t>(-1)) {
    out.lower = 0;
  } else if (j_lb == 0) {
    out.lower = s.cnt;
  } else {
    // Pigeonhole: T <= #{c>=j} * qlen + (cnt - #{c>=j}) * (j-1).
    const int64_t numerator =
        static_cast<int64_t>(total) -
        static_cast<int64_t>(j_lb - 1) * static_cast<int64_t>(s.cnt);
    const int64_t denominator =
        static_cast<int64_t>(qlen) - static_cast<int64_t>(j_lb) + 1;
    if (numerator > 0 && denominator > 0) {
      out.lower = static_cast<uint32_t>(
          (numerator + denominator - 1) / denominator);
    } else {
      out.lower = 0;
    }
    // A single keyword matched by many objects can beat the pigeonhole bound
    // when j_lb == 1.
    if (j_lb == 1) {
      out.lower = std::max(out.lower, s.counts.MaxSingleMatch(q.doc));
    }
  }

  out.lower = std::min(out.lower, out.upper);
  return out;
}

template class RTreeT<KcSummary>;

}  // namespace yask
