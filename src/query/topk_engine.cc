#include "src/query/topk_engine.h"

#include <algorithm>
#include <queue>
#include <unordered_set>

namespace yask {

TopKResult TopKScan(const ObjectStore& store, const Query& query,
                    TopKStats* stats) {
  Scorer scorer(store, query);
  TopKResult all;
  all.reserve(store.size());
  for (const SpatialObject& o : store.objects()) {
    all.push_back(ScoredObject{o.id, scorer.Score(o)});
  }
  if (stats != nullptr) stats->objects_scored += store.size();
  const size_t k = std::min<size_t>(query.k, all.size());
  std::partial_sort(all.begin(), all.begin() + k, all.end());
  all.resize(k);
  return all;
}

namespace {

/// Priority-queue element of the best-first searches: a node or an object.
/// Ordering (via `operator<` for a max-heap): higher key first; at equal key
/// nodes before objects (a node may hide an equal-scored smaller-id object);
/// at equal key among objects, smaller id first.
struct QueueEntry {
  double key = 0.0;
  bool is_object = false;
  uint32_t id = 0;  // NodeId or ObjectId.

  bool operator<(const QueueEntry& other) const {
    if (key != other.key) return key < other.key;            // Max-heap.
    if (is_object != other.is_object) return is_object;      // Nodes first.
    if (is_object) return id > other.id;                     // Small id first.
    return id < other.id;
  }
};

/// Bounded result heap: keeps the k best ScoredObjects in D6 order.
class ResultHeap {
 public:
  explicit ResultHeap(size_t k) : k_(k) {}

  bool full() const { return items_.size() >= k_; }
  /// The currently worst kept row; only valid when full().
  const ScoredObject& worst() const { return items_.front(); }

  /// Offers a row; keeps it if it beats the current worst (or space remains).
  void Offer(const ScoredObject& so) {
    if (items_.size() < k_) {
      items_.push_back(so);
      std::push_heap(items_.begin(), items_.end(), Cmp());
    } else if (so < items_.front()) {
      std::pop_heap(items_.begin(), items_.end(), Cmp());
      items_.back() = so;
      std::push_heap(items_.begin(), items_.end(), Cmp());
    }
  }

  /// Sorted (best-first) extraction.
  TopKResult Take() {
    std::sort(items_.begin(), items_.end());
    return std::move(items_);
  }

 private:
  // Max-heap on "is better", so front() is the worst kept row.
  struct Cmp {
    bool operator()(const ScoredObject& a, const ScoredObject& b) const {
      return a < b;
    }
  };
  size_t k_;
  TopKResult items_;
};

}  // namespace

TopKResult SetRTopKEngine::Query(const ::yask::Query& query,
                                 double prune_below, TopKStats* stats) const {
  Scorer scorer = dist_norm_ >= 0.0 ? Scorer(*store_, query, dist_norm_)
                                    : Scorer(*store_, query);
  TopKResult result;
  if (store_->empty() || query.k == 0 || tree_->empty()) return result;

  std::priority_queue<QueueEntry> pq;
  {
    const auto& root = tree_->node(tree_->root());
    pq.push(QueueEntry{
        UpperBoundScore(scorer, root.rect, root.summary, variant_), false,
        tree_->root()});
  }
  while (!pq.empty() && result.size() < query.k) {
    const QueueEntry top = pq.top();
    pq.pop();
    // The frontier maximum bounds everything still reachable: strictly below
    // the threshold means nothing left can matter to the caller.
    if (top.key < prune_below) break;
    if (top.is_object) {
      result.push_back(ScoredObject{top.id, top.key});
      continue;
    }
    const auto& node = tree_->node(top.id);
    if (stats != nullptr) ++stats->nodes_popped;
    if (node.is_leaf) {
      for (const auto& e : node.entries) {
        if (stats != nullptr) ++stats->objects_scored;
        pq.push(QueueEntry{scorer.Score(e.id), true, e.id});
      }
    } else {
      for (const auto& e : node.entries) {
        const auto& child = tree_->node(e.id);
        pq.push(QueueEntry{
            UpperBoundScore(scorer, child.rect, child.summary, variant_),
            false, e.id});
      }
    }
  }
  return result;
}

TopKCursor::TopKCursor(const ObjectStore& store, const SetRTree& tree,
                       ::yask::Query query)
    : store_(&store),
      tree_(&tree),
      query_(std::move(query)),
      scorer_(store, query_) {
  if (!tree_->empty()) {
    const auto& root = tree_->node(tree_->root());
    pq_.push(HeapEntry{UpperBoundScore(scorer_, root.rect, root.summary),
                       false, tree_->root()});
  }
}

std::optional<ScoredObject> TopKCursor::Next() {
  while (!pq_.empty()) {
    const HeapEntry top = pq_.top();
    pq_.pop();
    if (top.is_object) {
      ++produced_;
      return ScoredObject{top.id, top.key};
    }
    const auto& node = tree_->node(top.id);
    if (node.is_leaf) {
      for (const auto& e : node.entries) {
        pq_.push(HeapEntry{scorer_.Score(e.id), true, e.id});
      }
    } else {
      for (const auto& e : node.entries) {
        const auto& child = tree_->node(e.id);
        pq_.push(HeapEntry{UpperBoundScore(scorer_, child.rect, child.summary),
                           false, e.id});
      }
    }
  }
  return std::nullopt;
}

TopKResult InvertedTopKEngine::Query(const ::yask::Query& query,
                                     TopKStats* stats) const {
  Scorer scorer(*store_, query);
  const size_t k = std::min<size_t>(query.k, store_->size());
  if (k == 0) return {};

  // Phase 1: score every textual candidate (objects sharing >= 1 keyword).
  std::vector<ObjectId> candidates = inverted_->Candidates(query.doc);
  std::unordered_set<ObjectId> seen(candidates.begin(), candidates.end());
  ResultHeap heap(k);
  for (ObjectId id : candidates) {
    if (stats != nullptr) ++stats->objects_scored;
    heap.Offer(ScoredObject{id, scorer.Score(id)});
  }

  // Phase 2: best-first spatial sweep over the plain R-tree for the objects
  // phase 1 missed. Those have TSim == 0 exactly, so their score is
  // ws * (1 - SDist) and a node's contribution is bounded by
  // ws * MaxSpatialComponent(mbr). Stop when that cannot beat the k-th row.
  if (!rtree_->empty()) {
    std::priority_queue<QueueEntry> pq;
    {
      const auto& root = rtree_->node(rtree_->root());
      pq.push(QueueEntry{query.w.ws * scorer.MaxSpatialComponent(root.rect),
                         false, rtree_->root()});
    }
    while (!pq.empty()) {
      const QueueEntry top = pq.top();
      pq.pop();
      if (heap.full() && top.key < heap.worst().score) break;
      if (top.is_object) {
        // Key is the exact score (TSim == 0 for unseen objects).
        heap.Offer(ScoredObject{top.id, top.key});
        continue;
      }
      const auto& node = rtree_->node(top.id);
      if (stats != nullptr) ++stats->nodes_popped;
      if (node.is_leaf) {
        for (const auto& e : node.entries) {
          if (seen.count(e.id)) continue;  // Already scored in phase 1.
          if (stats != nullptr) ++stats->objects_scored;
          const double score =
              query.w.ws * (1.0 - scorer.SDist(store_->Get(e.id).loc));
          pq.push(QueueEntry{score, true, e.id});
        }
      } else {
        for (const auto& e : node.entries) {
          pq.push(QueueEntry{query.w.ws * scorer.MaxSpatialComponent(e.rect),
                             false, e.id});
        }
      }
    }
  }
  return heap.Take();
}

}  // namespace yask
