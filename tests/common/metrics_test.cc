// MetricsRegistry contracts the observability stack leans on:
//   * concurrency: N threads hammering shared counters and histograms lose
//     nothing — totals are exact, not approximate;
//   * instrument identity: same (family, labels) -> same pointer, different
//     labels -> different instruments;
//   * histogram quantiles are exact rank selections over the bucket bounds
//     and monotone in q, including under concurrent observation;
//   * the Prometheus rendering carries the families, labels, cumulative
//     buckets and callback gauges a scraper needs.

#include "src/common/metrics.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <thread>
#include <vector>

namespace yask {
namespace {

TEST(MetricsTest, CounterConcurrentTotalsAreExact) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("yask_test_total", {{"t", "conc"}});
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      // Resolve through the registry inside the thread too: creation is
      // idempotent and must return the same instrument.
      Counter* mine = registry.GetCounter("yask_test_total", {{"t", "conc"}});
      for (int i = 0; i < kPerThread; ++i) mine->Add();
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(c->value(),
            static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(MetricsTest, LabelsSeparateInstrumentsAndSameLabelsShare) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("f_total", {{"endpoint", "/query"}});
  Counter* b = registry.GetCounter("f_total", {{"endpoint", "/whynot"}});
  Counter* a2 = registry.GetCounter("f_total", {{"endpoint", "/query"}});
  EXPECT_NE(a, b);
  EXPECT_EQ(a, a2);
  a->Add(3);
  b->Add(5);
  EXPECT_EQ(a->value(), 3u);
  EXPECT_EQ(b->value(), 5u);
}

TEST(MetricsTest, HistogramConcurrentCountAndQuantilesMonotone) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("yask_test_ms");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        // A spread covering several buckets, deterministic per thread.
        h->Observe(0.001 * (1 + ((t * kPerThread + i) % 5000)));
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(h->count(), static_cast<uint64_t>(kThreads) * kPerThread);
  // Sum is a CAS-accumulated double of exactly representable summands times
  // an exact count of them; it must be positive and finite.
  EXPECT_GT(h->sum(), 0.0);
  EXPECT_TRUE(std::isfinite(h->sum()));

  const double p50 = h->Quantile(0.50);
  const double p95 = h->Quantile(0.95);
  const double p99 = h->Quantile(0.99);
  EXPECT_GT(p50, 0.0);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  // Every observation was <= 5 ms; the p99 bound cannot exceed the first
  // bucket bound covering 5 ms (8.192 ms).
  EXPECT_LE(p99, 8.192);

  // Cumulative bucket counts must reach the total at the +Inf bucket.
  uint64_t cumulative = 0;
  for (size_t i = 0; i < Histogram::kBucketCount; ++i) {
    cumulative += h->bucket(i);
  }
  EXPECT_EQ(cumulative, h->count());
}

TEST(MetricsTest, QuantileIsExactRankSelection) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("rank_ms");
  // 99 observations in the 0.001ms bucket, 1 far out: p50 stays in the
  // smallest bucket, p100 lands at the slow one's bound.
  for (int i = 0; i < 99; ++i) h->Observe(0.0005);
  h->Observe(100.0);  // Bucket bound 0.001 * 2^17 = 131.072.
  EXPECT_DOUBLE_EQ(h->Quantile(0.5), 0.001);
  EXPECT_DOUBLE_EQ(h->Quantile(0.99), 0.001);
  EXPECT_DOUBLE_EQ(h->Quantile(1.0), 131.072);
  // Empty histogram -> 0.
  EXPECT_EQ(registry.GetHistogram("empty_ms")->Quantile(0.99), 0.0);
}

TEST(MetricsTest, BucketBoundsDoubleFromOneMicrosecond) {
  EXPECT_DOUBLE_EQ(Histogram::BucketBound(0), 0.001);
  EXPECT_DOUBLE_EQ(Histogram::BucketBound(1), 0.002);
  EXPECT_DOUBLE_EQ(Histogram::BucketBound(10), 1.024);
  EXPECT_TRUE(std::isinf(Histogram::BucketBound(Histogram::kBucketCount - 1)));
}

TEST(MetricsTest, RenderPrometheusCarriesFamiliesLabelsAndBuckets) {
  MetricsRegistry registry;
  registry.GetCounter("yask_requests_total", {{"endpoint", "/query"}})->Add(7);
  registry.GetGauge("yask_load")->Set(1.5);
  registry.AddGaugeCallback("yask_cooling", {{"shard", "0"}},
                            [] { return 2.0; });
  Histogram* h = registry.GetHistogram("yask_latency_ms");
  h->Observe(0.5);
  h->Observe(3.0);

  const std::string text = registry.RenderPrometheus();
  EXPECT_NE(text.find("# TYPE yask_requests_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("yask_requests_total{endpoint=\"/query\"} 7"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE yask_load gauge"), std::string::npos);
  EXPECT_NE(text.find("yask_load 1.5"), std::string::npos);
  EXPECT_NE(text.find("yask_cooling{shard=\"0\"} 2"), std::string::npos);
  EXPECT_NE(text.find("# TYPE yask_latency_ms histogram"), std::string::npos);
  EXPECT_NE(text.find("yask_latency_ms_bucket{le=\"+Inf\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("yask_latency_ms_count 2"), std::string::npos);
  // Cumulative buckets: the 0.512 bound holds one observation, 4.096 both.
  EXPECT_NE(text.find("yask_latency_ms_bucket{le=\"0.512\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("yask_latency_ms_bucket{le=\"4.096\"} 2"),
            std::string::npos);
}

TEST(MetricsTest, FormatMetricLabelsEscapes) {
  EXPECT_EQ(FormatMetricLabels({}), "");
  EXPECT_EQ(FormatMetricLabels({{"a", "b"}}), "{a=\"b\"}");
  EXPECT_EQ(FormatMetricLabels({{"a", "q\"uote\\n"}}),
            "{a=\"q\\\"uote\\\\n\"}");
}

}  // namespace
}  // namespace yask
