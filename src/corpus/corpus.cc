#include "src/corpus/corpus.h"

#include <utility>

namespace yask {

Result<uint64_t> Corpus::Save(const std::string& path,
                              const ShardManifest* shard) const {
  return WriteSnapshot(path, *store_, setr_.get(), kcr_.get(),
                       inverted_.get(), shard);
}

Corpus CorpusBuilder::Build(ObjectStore store) const {
  Corpus corpus;
  corpus.store_ = std::make_unique<ObjectStore>(std::move(store));
  corpus.setr_ = std::make_unique<SetRTree>(corpus.store_.get(),
                                            options_.rtree);
  corpus.setr_->BulkLoad();
  if (options_.build_kcr_tree) {
    corpus.kcr_ = std::make_unique<KcRTree>(corpus.store_.get(),
                                            options_.rtree);
    corpus.kcr_->BulkLoad();
  }
  if (options_.build_inverted_index) {
    corpus.inverted_ = std::make_unique<InvertedIndex>(*corpus.store_);
  }
  return corpus;
}

Result<Corpus> CorpusBuilder::FromSnapshot(
    const std::string& path,
    std::unique_ptr<ShardManifest>* manifest_out) const {
  Result<SnapshotBundle> bundle = LoadSnapshot(path);
  if (!bundle.ok()) return bundle.status();

  Corpus corpus;
  corpus.store_ = std::move(bundle->store);
  if (bundle->setr != nullptr) {
    corpus.setr_ = std::move(bundle->setr);
  } else {
    corpus.setr_ = std::make_unique<SetRTree>(corpus.store_.get(),
                                              options_.rtree);
    corpus.setr_->BulkLoad();
  }
  if (bundle->kcr != nullptr) {
    corpus.kcr_ = std::move(bundle->kcr);
  } else if (options_.build_kcr_tree) {
    corpus.kcr_ = std::make_unique<KcRTree>(corpus.store_.get(),
                                            options_.rtree);
    corpus.kcr_->BulkLoad();
  }
  corpus.inverted_ = std::move(bundle->inverted);
  if (corpus.inverted_ == nullptr && options_.build_inverted_index) {
    corpus.inverted_ = std::make_unique<InvertedIndex>(*corpus.store_);
  }
  if (manifest_out != nullptr) {
    *manifest_out = std::move(bundle->shard);
  } else if (bundle->shard != nullptr) {
    return Status::InvalidArgument(
        path + " is one shard of a " +
        std::to_string(bundle->shard->shard_count) +
        "-way partitioned corpus; load it with ShardedCorpus::Load");
  }
  return corpus;
}

}  // namespace yask
