// Copyright (c) 2026 The YASK reproduction authors.
// RemoteCorpus + RemoteTopKClient: the coordinator's owned view of a corpus
// whose shards live in other processes (yask_shard_server) — the remote
// counterpart of ShardedCorpus.
//
// Connect() dials every endpoint, fetches each shard's meta (identity,
// global bounds + SDist normaliser, local->global id map, index
// availability, SetR root MBR) and the shared vocabulary, and cross-checks
// the set exactly like ShardedCorpus::Load checks shard files: all shards
// present exactly once, bounds agreed, global ids tiling 0..total-1. After
// that the coordinator can route by global id, tokenise queries with the
// same term ids the shards use, and pick top-k home shards — everything the
// in-process fan-outs read from their ShardedCorpus, except the indexes,
// which stay behind the wire.
//
// Transport: one pooled keep-alive connection set per shard with per-call
// deadlines and retry-on-fresh-connection (transport errors only — HTTP
// error statuses are semantic and surface immediately). Failures also bump
// the corpus's error epoch, which YaskService samples around each request to
// turn a mid-algorithm shard failure into a clean 503 (the why-not oracle
// interface has no error channel of its own).

#ifndef YASK_CORPUS_REMOTE_CORPUS_H_
#define YASK_CORPUS_REMOTE_CORPUS_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/status.h"
#include "src/common/thread_pool.h"
#include "src/common/vocabulary.h"
#include "src/query/query.h"
#include "src/query/topk_engine.h"
#include "src/server/http_client.h"
#include "src/server/shard_protocol.h"
#include "src/storage/object.h"

namespace yask {

struct RemoteShardOptions {
  int connect_timeout_ms = 2000;
  /// Per-call wall deadline (send + wait + read).
  int call_deadline_ms = 15000;
  /// Extra attempts after a TRANSPORT failure, each on a fresh connection
  /// (covers server-side keep-alive recycling of pooled idle connections).
  int retries = 2;
  /// Worker threads of the coordinator fan-out pool (0 = auto like
  /// CorpusOptions::fanout_threads: one per shard, none on 1-core hosts).
  size_t fanout_threads = 0;
};

/// One shard server as the coordinator talks to it: a connection pool plus
/// the retry/deadline policy. Thread-safe; calls from concurrent fan-outs
/// each check a connection out of the pool.
class RemoteShard {
 public:
  RemoteShard(std::string host, uint16_t port, RemoteShardOptions options);

  /// One RPC. Returns the response body on HTTP 200; a semantic HTTP error
  /// becomes a Status with the mapped code (404 -> NotFound, 501 ->
  /// FailedPrecondition, else Unavailable) and is NOT retried; transport
  /// errors retry per the options, then surface as Unavailable.
  Result<std::string> Call(const std::string& method, const std::string& path,
                           std::string_view body);

  const std::string& host() const { return host_; }
  uint16_t port() const { return port_; }
  /// Wire requests issued (attempts count one each) — the round-trip meter
  /// bench_remote_shards gates on.
  uint64_t requests() const { return requests_.load(); }

 private:
  std::string host_;
  uint16_t port_;
  RemoteShardOptions options_;
  std::atomic<uint64_t> requests_{0};
  std::mutex pool_mu_;
  std::vector<std::unique_ptr<HttpClientConnection>> idle_;
};

/// The coordinator's serving-state view over N remote shards. Construct via
/// Connect(). Logically const while serving; the mutable internals (object
/// cache, connection pools, error epoch) are thread-safe.
class RemoteCorpus {
 public:
  /// Dials `endpoints` ("host:port" each, one per shard, any order — shards
  /// are indexed by their manifest identity) and validates the set.
  static Result<RemoteCorpus> Connect(const std::vector<std::string>& endpoints,
                                      const RemoteShardOptions& options = {});

  RemoteCorpus(RemoteCorpus&&) = default;
  RemoteCorpus& operator=(RemoteCorpus&&) = default;

  size_t num_shards() const { return shards_.size(); }
  size_t size() const { return shard_of_.size(); }
  const Vocabulary& vocab() const { return *vocab_; }
  const Rect& bounds() const { return bounds_; }
  double dist_norm() const { return dist_norm_; }
  /// Every shard carries its KcR-tree (the /whynot prerequisite).
  bool has_kcr() const { return has_kcr_; }
  /// Shards lacking the KcR-tree (for precise error messages).
  std::vector<uint32_t> shards_without_kcr() const;

  const shardrpc::ShardMeta& meta(size_t shard) const { return metas_[shard]; }
  RemoteShard& shard(size_t shard) const { return *shards_[shard]; }
  uint32_t ShardOf(ObjectId global_id) const { return shard_of_[global_id]; }

  /// The object with a global id, fetched over the wire on first use and
  /// cached for the corpus lifetime (objects are immutable). The returned
  /// object's `.id` is the global id. On fetch failure the error epoch bumps
  /// and a static empty object is returned — callers surface the failure via
  /// error_epoch(), exactly like every other mid-algorithm wire error.
  const SpatialObject& Object(ObjectId global_id) const;

  /// Warms the object cache with one batched fetch per owning shard.
  void Prefetch(const std::vector<ObjectId>& global_ids) const;

  /// First object whose name matches, as a global id (one fan-out);
  /// kInvalidObject if none.
  ObjectId FindByName(const std::string& name) const;

  /// The coordinator fan-out pool (null = fan-outs run inline). Shared by
  /// RemoteTopKClient and RemoteShardOracle, one pool per corpus.
  ThreadPool* pool() const { return pool_.get(); }

  /// Runs fn(shard_index) for every shard, on the pool when present.
  void ForEachShard(const std::function<void(size_t)>& fn) const;

  // --- Error channel (see file comment). ---
  uint64_t error_epoch() const { return state_->error_epoch.load(); }
  Status last_error() const;
  void RecordError(const Status& status) const;

  /// Total wire requests across all shards (bench instrumentation).
  uint64_t total_requests() const;

 private:
  RemoteCorpus() = default;

  /// Error state behind a stable allocation so the corpus stays movable.
  struct ErrorState {
    std::atomic<uint64_t> error_epoch{0};
    std::mutex mu;
    Status last;
  };

  std::vector<std::unique_ptr<RemoteShard>> shards_;
  std::vector<shardrpc::ShardMeta> metas_;
  std::unique_ptr<Vocabulary> vocab_;
  Rect bounds_ = Rect::Empty();
  double dist_norm_ = 0.0;
  bool has_kcr_ = false;
  std::vector<uint32_t> shard_of_;  // Global id -> shard index.
  std::unique_ptr<ThreadPool> pool_;
  std::unique_ptr<ErrorState> state_ = std::make_unique<ErrorState>();

  struct ObjectCache {
    std::mutex mu;
    // unique_ptr values: Object() hands out stable references.
    std::unordered_map<ObjectId, std::unique_ptr<SpatialObject>> map;
  };
  std::unique_ptr<ObjectCache> cache_ = std::make_unique<ObjectCache>();
};

/// Threshold-broadcast fan-out top-k over remote shards — the wire twin of
/// ShardedTopKEngine, merging bit-identically: home shard (nearest SetR root
/// MBR) first, its k-th score broadcast as the prune threshold, per-shard
/// rows re-sorted under the global ScoredObject order.
class RemoteTopKClient {
 public:
  explicit RemoteTopKClient(const RemoteCorpus& corpus) : corpus_(&corpus) {}

  /// Exact top-k with global ids. On a wire failure the corpus error epoch
  /// bumps and the failed shard contributes nothing — callers surface the
  /// epoch, never the partial result.
  TopKResult Query(const Query& query, TopKStats* stats = nullptr) const;

 private:
  const RemoteCorpus* corpus_;
};

}  // namespace yask

#endif  // YASK_CORPUS_REMOTE_CORPUS_H_
