#include "src/query/ranking.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "src/query/topk_engine.h"
#include "src/storage/dataset_generator.h"

namespace yask {
namespace {

class RankingProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RankingProperty, PrunedRankMatchesScan) {
  DatasetSpec spec;
  spec.num_objects = 2000;
  spec.seed = GetParam();
  const ObjectStore store = GenerateDataset(spec);
  SetRTree tree(&store);
  tree.BulkLoad();
  Rng rng(GetParam() + 9);
  for (int trial = 0; trial < 30; ++trial) {
    Query q;
    q.loc = SampleQueryLocation(store, &rng);
    q.doc = SampleQueryKeywords(store, 1 + rng.NextBounded(3), &rng);
    q.k = 10;
    q.w = Weights::FromWs(rng.NextDouble(0.1, 0.9));
    const ObjectId target =
        static_cast<ObjectId>(rng.NextBounded(store.size()));
    EXPECT_EQ(ComputeRank(store, tree, q, target),
              ComputeRankScan(store, q, target));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RankingProperty, ::testing::Values(3, 7, 19));

TEST(RankingTest, TopKObjectsHaveRanksOneThroughK) {
  DatasetSpec spec;
  spec.num_objects = 800;
  const ObjectStore store = GenerateDataset(spec);
  SetRTree tree(&store);
  tree.BulkLoad();
  SetRTopKEngine engine(store, tree);
  Query q;
  q.loc = Point{0.3, 0.3};
  q.doc = KeywordSet({0, 1});
  q.k = 10;
  const TopKResult result = engine.Query(q);
  ASSERT_EQ(result.size(), 10u);
  for (size_t i = 0; i < result.size(); ++i) {
    EXPECT_EQ(ComputeRank(store, tree, q, result[i].id), i + 1)
        << "result position " << i;
  }
}

TEST(RankingTest, RankMembershipConsistency) {
  // rank(o) <= k  <=>  o in top-k.
  DatasetSpec spec;
  spec.num_objects = 500;
  const ObjectStore store = GenerateDataset(spec);
  SetRTree tree(&store);
  tree.BulkLoad();
  SetRTopKEngine engine(store, tree);
  Query q;
  q.loc = Point{0.7, 0.2};
  q.doc = KeywordSet({0, 2, 4});
  q.k = 20;
  const TopKResult result = engine.Query(q);
  std::set<ObjectId> in_result;
  for (const ScoredObject& so : result) in_result.insert(so.id);
  Rng rng(77);
  for (int i = 0; i < 100; ++i) {
    const ObjectId id = static_cast<ObjectId>(rng.NextBounded(store.size()));
    const size_t rank = ComputeRank(store, tree, q, id);
    EXPECT_EQ(rank <= q.k, in_result.count(id) > 0) << "object " << id;
  }
}

TEST(RankingTest, LowestRankIsMaxOverMissing) {
  DatasetSpec spec;
  spec.num_objects = 300;
  const ObjectStore store = GenerateDataset(spec);
  SetRTree tree(&store);
  tree.BulkLoad();
  Query q;
  q.loc = Point{0.5, 0.5};
  q.doc = KeywordSet({0});
  q.k = 5;
  const std::vector<ObjectId> missing{10, 20, 30};
  size_t expect = 0;
  for (ObjectId m : missing) {
    expect = std::max(expect, ComputeRank(store, tree, q, m));
  }
  EXPECT_EQ(LowestRank(store, tree, q, missing), expect);
}

TEST(RankingTest, StatsShowPruning) {
  DatasetSpec spec;
  spec.num_objects = 20000;
  spec.vocabulary_size = 300;
  const ObjectStore store = GenerateDataset(spec);
  SetRTree tree(&store);
  tree.BulkLoad();
  Query q;
  q.loc = Point{0.5, 0.5};
  q.doc = KeywordSet({0, 1});
  q.k = 10;
  // A top-ranked object: most subtrees are skipped outright.
  SetRTopKEngine engine(store, tree);
  const ObjectId best = engine.Query(q)[0].id;
  RankStats stats;
  ComputeRank(store, tree, q, best, &stats);
  EXPECT_LT(stats.objects_scored, store.size() / 4);
}

TEST(RankingTest, UniformTiesRankByObjectId) {
  ObjectStore store;
  store.mutable_vocab()->Intern("x");
  for (int i = 0; i < 10; ++i) store.Add(Point{0.5, 0.5}, KeywordSet({0}));
  SetRTree tree(&store);
  tree.BulkLoad();
  Query q;
  q.loc = Point{0.5, 0.5};
  q.doc = KeywordSet({0});
  q.k = 3;
  for (ObjectId id = 0; id < 10; ++id) {
    EXPECT_EQ(ComputeRank(store, tree, q, id), id + 1);
    EXPECT_EQ(ComputeRankScan(store, q, id), id + 1);
  }
}

}  // namespace
}  // namespace yask
