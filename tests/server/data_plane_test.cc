// The coordinator data plane's caching layer: the epoch-keyed result cache
// and single-flight coalescing must be invisible in the bytes (a hit is the
// leader's response verbatim), surgical in invalidation (/forget and epoch
// bumps drop exactly what they must), and failure-isolating (a leader's
// error never fans out to its followers).

#include "src/server/result_cache.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/corpus/remote_corpus.h"
#include "src/corpus/sharded_corpus.h"
#include "src/server/json.h"
#include "src/server/shard_service.h"
#include "src/server/yask_service.h"
#include "src/storage/hotel_generator.h"

namespace yask {
namespace {

// --- ResultCache / SingleFlight units ---------------------------------------

TEST(ResultCacheTest, LruEvictionByEntryCount) {
  ResultCache cache(/*max_entries=*/2, /*max_bytes=*/0);
  cache.Put("a", HttpResponse::Json("1"), 1);
  cache.Put("b", HttpResponse::Json("2"), 2);
  ASSERT_TRUE(cache.Get("a").has_value());  // Touch: "b" is now LRU.
  cache.Put("c", HttpResponse::Json("3"), 3);
  EXPECT_EQ(cache.entries(), 2u);
  EXPECT_TRUE(cache.Get("a").has_value());
  EXPECT_FALSE(cache.Get("b").has_value());
  EXPECT_TRUE(cache.Get("c").has_value());
}

TEST(ResultCacheTest, ByteBoundEvicts) {
  ResultCache cache(/*max_entries=*/0, /*max_bytes=*/300);
  cache.Put("a", HttpResponse::Json(std::string(100, 'x')), 1);
  cache.Put("b", HttpResponse::Json(std::string(100, 'y')), 2);
  // Pushing past the byte bound evicts from the cold end.
  cache.Put("c", HttpResponse::Json(std::string(100, 'z')), 3);
  EXPECT_LE(cache.bytes(), 300u);
  EXPECT_LT(cache.entries(), 3u);
  EXPECT_FALSE(cache.Get("a").has_value());
}

TEST(ResultCacheTest, InvalidateQueryDropsEveryEntryForThatId) {
  ResultCache cache(/*max_entries=*/16, /*max_bytes=*/0);
  cache.Put("query-key", HttpResponse::Json("q"), 7);
  cache.Put("whynot-key-1", HttpResponse::Json("w1"), 7);
  cache.Put("whynot-key-2", HttpResponse::Json("w2"), 7);
  cache.Put("other", HttpResponse::Json("o"), 8);
  EXPECT_EQ(cache.InvalidateQuery(7), 3u);
  EXPECT_EQ(cache.entries(), 1u);
  EXPECT_FALSE(cache.Get("query-key").has_value());
  EXPECT_FALSE(cache.Get("whynot-key-1").has_value());
  EXPECT_TRUE(cache.Get("other").has_value());
  EXPECT_EQ(cache.InvalidateQuery(7), 0u);  // Idempotent.
}

TEST(SingleFlightTest, FollowerGetsLeaderBytesVerbatim) {
  SingleFlight flight;
  SingleFlight::Ticket leader = flight.Join("k");
  ASSERT_TRUE(leader.leader);
  SingleFlight::Ticket follower = flight.Join("k");
  ASSERT_FALSE(follower.leader);

  std::optional<HttpResponse> got;
  std::thread waiter([&] { got = flight.Wait(follower); });
  flight.Finish("k", leader, HttpResponse::Json("{\"leader\":true}"),
                /*ok=*/true);
  waiter.join();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->body, "{\"leader\":true}");

  // The flight is retired: the next join starts fresh with a new leader.
  EXPECT_TRUE(flight.Join("k").leader);
}

TEST(SingleFlightTest, LeaderFailureDoesNotPoisonFollowers) {
  SingleFlight flight;
  SingleFlight::Ticket leader = flight.Join("k");
  SingleFlight::Ticket f1 = flight.Join("k");
  SingleFlight::Ticket f2 = flight.Join("k");
  std::optional<HttpResponse> got1, got2;
  std::thread w1([&] { got1 = flight.Wait(f1); });
  std::thread w2([&] { got2 = flight.Wait(f2); });
  flight.Finish("k", leader, HttpResponse::Error(503, "shard down"),
                /*ok=*/false);
  w1.join();
  w2.join();
  // Followers are woken empty-handed — the service recomputes each one
  // independently instead of serving them the leader's failure.
  EXPECT_FALSE(got1.has_value());
  EXPECT_FALSE(got2.has_value());
}

// --- Service-level behaviour -------------------------------------------------

double MetricValue(const std::string& exposition, const std::string& family) {
  std::istringstream lines(exposition);
  for (std::string line; std::getline(lines, line);) {
    if (line.rfind(family + " ", 0) == 0 ||
        line.rfind(family + "{} ", 0) == 0) {
      return std::strtod(line.c_str() + line.rfind(' ') + 1, nullptr);
    }
  }
  return -1.0;
}

class DataPlaneCacheTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    corpus_ = new Corpus(CorpusBuilder().Build(GenerateHotelDataset()));
  }
  static void TearDownTestSuite() {
    delete corpus_;
    corpus_ = nullptr;
  }

  void SetUp() override {
    YaskServiceOptions options;
    options.enable_result_cache = true;
    service_ = std::make_unique<YaskService>(*corpus_, options);
    ASSERT_TRUE(service_->Start().ok());
  }
  void TearDown() override { service_->Stop(); }

  std::string QueryBody(double x = 114.158, double y = 22.281, int k = 3,
                        const std::string& keywords = "clean comfortable") {
    JsonValue req = JsonValue::MakeObject();
    req.Set("x", JsonValue(x));
    req.Set("y", JsonValue(y));
    req.Set("keywords", JsonValue(keywords));
    req.Set("k", JsonValue(k));
    return req.Dump();
  }

  std::string Fetch(const std::string& method, const std::string& path,
                    const std::string& body, int* status) {
    auto resp = HttpFetch(service_->port(), method, path, body, status);
    EXPECT_TRUE(resp.ok());
    return resp.ok() ? *resp : std::string();
  }

  double Metric(const std::string& family) {
    int status = 0;
    return MetricValue(Fetch("GET", "/metrics", "", &status), family);
  }

  static const Corpus* corpus_;
  std::unique_ptr<YaskService> service_;
};

const Corpus* DataPlaneCacheTest::corpus_ = nullptr;

TEST_F(DataPlaneCacheTest, HitServesIdenticalBytesIncludingQueryId) {
  int status = 0;
  const std::string first = Fetch("POST", "/query", QueryBody(), &status);
  ASSERT_EQ(status, 200);
  const std::string second = Fetch("POST", "/query", QueryBody(), &status);
  ASSERT_EQ(status, 200);
  // The hit is the leader's response VERBATIM — response_millis, query_id
  // and all. Same bytes, same id, and no second initial query was cached.
  EXPECT_EQ(first, second);
  EXPECT_EQ(service_->cached_queries(), 1u);
  EXPECT_EQ(Metric("yask_result_cache_hits_total"), 1.0);
  EXPECT_EQ(Metric("yask_result_cache_misses_total"), 1.0);
  EXPECT_EQ(Metric("yask_result_cache_entries"), 1.0);
}

TEST_F(DataPlaneCacheTest, ForgetInvalidatesExactlyThatQuery) {
  int status = 0;
  const std::string a1 = Fetch("POST", "/query", QueryBody(), &status);
  ASSERT_EQ(status, 200);
  const std::string b1 =
      Fetch("POST", "/query", QueryBody(114.158, 22.281, 5), &status);
  ASSERT_EQ(status, 200);
  const uint64_t a_id = static_cast<uint64_t>(
      JsonValue::Parse(a1)->Get("query_id").as_number());

  JsonValue forget = JsonValue::MakeObject();
  forget.Set("query_id", JsonValue(static_cast<size_t>(a_id)));
  Fetch("POST", "/forget", forget.Dump(), &status);
  ASSERT_EQ(status, 200);
  EXPECT_EQ(Metric("yask_result_cache_invalidations_total"), 1.0);

  // A's entry is gone: the repeat recomputes and mints a FRESH id (serving
  // the old bytes would hand out an id that now answers 404).
  const std::string a2 = Fetch("POST", "/query", QueryBody(), &status);
  ASSERT_EQ(status, 200);
  EXPECT_NE(a1, a2);
  EXPECT_GT(JsonValue::Parse(a2)->Get("query_id").as_number(),
            static_cast<double>(a_id));
  // B's entry was untouched: still a byte-identical hit.
  const std::string b2 =
      Fetch("POST", "/query", QueryBody(114.158, 22.281, 5), &status);
  ASSERT_EQ(status, 200);
  EXPECT_EQ(b1, b2);
}

TEST_F(DataPlaneCacheTest, WhyNotIsCachedAndInvalidatedWithItsQuery) {
  int status = 0;
  const std::string q = Fetch("POST", "/query", QueryBody(), &status);
  ASSERT_EQ(status, 200);
  const size_t id = static_cast<size_t>(
      JsonValue::Parse(q)->Get("query_id").as_number());

  JsonValue whynot = JsonValue::MakeObject();
  whynot.Set("query_id", JsonValue(id));
  JsonValue missing = JsonValue::MakeArray();
  missing.Append(JsonValue(static_cast<size_t>(81)));
  whynot.Set("missing", std::move(missing));
  whynot.Set("model", JsonValue("both"));
  const std::string w1 = Fetch("POST", "/whynot", whynot.Dump(), &status);
  ASSERT_EQ(status, 200);
  const std::string w2 = Fetch("POST", "/whynot", whynot.Dump(), &status);
  ASSERT_EQ(status, 200);
  EXPECT_EQ(w1, w2);  // Identical follow-up, identical bytes.
  EXPECT_GE(Metric("yask_result_cache_hits_total"), 1.0);

  JsonValue forget = JsonValue::MakeObject();
  forget.Set("query_id", JsonValue(id));
  Fetch("POST", "/forget", forget.Dump(), &status);
  ASSERT_EQ(status, 200);
  // Both the /query entry and the /whynot entry rendered for this id died
  // with it; the follow-up now answers 404 like any forgotten query.
  Fetch("POST", "/whynot", whynot.Dump(), &status);
  EXPECT_EQ(status, 404);
}

TEST_F(DataPlaneCacheTest, ConcurrentIdenticalQueriesCoalesce) {
  constexpr size_t kClients = 8;
  std::vector<std::string> responses(kClients);
  std::vector<int> statuses(kClients, 0);
  std::vector<std::thread> threads;
  for (size_t c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      auto resp = HttpFetch(service_->port(), "POST", "/query", QueryBody(),
                            &statuses[c]);
      if (resp.ok()) responses[c] = *resp;
    });
  }
  for (std::thread& t : threads) t.join();

  std::set<std::string> distinct_bodies;
  std::set<double> distinct_ids;
  for (size_t c = 0; c < kClients; ++c) {
    ASSERT_EQ(statuses[c], 200);
    distinct_bodies.insert(responses[c]);
    distinct_ids.insert(
        JsonValue::Parse(responses[c])->Get("query_id").as_number());
  }
  // Every response is some leader's bytes (a hit, a coalesced share, or the
  // leader's own): distinct responses == distinct leaders == the initial
  // queries actually cached, and the flight accounting adds up.
  const double hits = Metric("yask_result_cache_hits_total");
  const double misses = Metric("yask_result_cache_misses_total");
  const double coalesced = Metric("yask_coalesced_requests_total");
  EXPECT_EQ(hits + misses, static_cast<double>(kClients));
  EXPECT_EQ(distinct_ids.size(), service_->cached_queries());
  EXPECT_EQ(static_cast<double>(distinct_ids.size()), misses - coalesced);
  EXPECT_EQ(distinct_bodies.size(), distinct_ids.size());
  EXPECT_EQ(Metric("yask_coalesce_leader_failures_total"), 0.0);
}

// --- Epoch-keyed invalidation against a remote fleet -------------------------

TEST(DataPlaneEpochTest, EpochBumpRetiresCachedEntries) {
  const ObjectStore store = GenerateHotelDataset();
  const ShardedCorpus sharded =
      ShardedCorpus::Partition(store, GridShardRouter::Fit(store, 1));
  ShardService::Info info;
  info.shard_index = 0;
  info.shard_count = 1;
  info.global_bounds = sharded.bounds();
  info.dist_norm = sharded.dist_norm();
  info.to_global = sharded.shard_global_ids(0);
  info.router = sharded.router_description();
  auto shard = std::make_unique<ShardService>(sharded.shard(0), info,
                                              ShardServiceOptions{});
  ASSERT_TRUE(shard->Start().ok());
  const uint16_t shard_port = shard->port();

  auto connected = RemoteCorpus::Connect(
      {"127.0.0.1:" + std::to_string(shard_port)});
  ASSERT_TRUE(connected.ok()) << connected.status().ToString();
  const RemoteCorpus remote = std::move(connected).value();
  YaskServiceOptions options;
  options.enable_result_cache = true;
  YaskService service(remote, options);
  ASSERT_TRUE(service.Start().ok());

  JsonValue hot = JsonValue::MakeObject();
  hot.Set("x", JsonValue(114.158));
  hot.Set("y", JsonValue(22.281));
  hot.Set("keywords", JsonValue("clean comfortable"));
  hot.Set("k", JsonValue(3));
  int status = 0;
  auto first = HttpFetch(service.port(), "POST", "/query", hot.Dump(),
                         &status);
  ASSERT_TRUE(first.ok());
  ASSERT_EQ(status, 200);

  // Kill the only replica and issue a DIFFERENT query: its fan-out fails,
  // answers 503, and moves the corpus error epoch.
  shard->Stop();
  shard.reset();
  JsonValue cold = hot;
  cold.Set("k", JsonValue(7));
  auto failed = HttpFetch(service.port(), "POST", "/query", cold.Dump(),
                          &status);
  ASSERT_TRUE(failed.ok());
  EXPECT_EQ(status, 503);

  // Revive the shard at the same port. The hot query's cache entry was
  // keyed under the OLD epoch, so the repeat recomputes (fresh query_id)
  // instead of serving a pre-failure answer.
  ShardServiceOptions shard_options;
  shard_options.port = shard_port;
  shard = std::make_unique<ShardService>(sharded.shard(0), info,
                                         shard_options);
  Status started = shard->Start();
  for (int attempt = 0; !started.ok() && attempt < 100; ++attempt) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    started = shard->Start();
  }
  ASSERT_TRUE(started.ok());

  auto second = HttpFetch(service.port(), "POST", "/query", hot.Dump(),
                          &status);
  ASSERT_TRUE(second.ok());
  ASSERT_EQ(status, 200);
  EXPECT_NE(JsonValue::Parse(*first)->Get("query_id").as_number(),
            JsonValue::Parse(*second)->Get("query_id").as_number());

  service.Stop();
  shard->Stop();
}

}  // namespace
}  // namespace yask
