// Round-trip tests for the component codecs and the whole-server bundle:
// the restored state must answer top-k and why-not questions *identically*
// to the saved state, the restored trees must pass the deep structural
// check, and the vocabulary must be shared (not re-interned) by the
// restored store.

#include "src/snapshot/snapshot_codec.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "src/query/topk_engine.h"
#include "src/storage/dataset_generator.h"
#include "src/storage/hotel_generator.h"
#include "src/whynot/why_not_engine.h"

namespace yask {
namespace {

std::string TestPath(const std::string& name) {
  return ::testing::TempDir() + "yask_snapshot_codec_" + name + ".snap";
}

ObjectStore SyntheticStore(size_t n) {
  DatasetSpec spec;
  spec.num_objects = n;
  spec.vocabulary_size = 300;
  spec.seed = 7;
  return GenerateDataset(spec);
}

TEST(VocabularyCodecTest, RoundTripPreservesIds) {
  Vocabulary vocab;
  vocab.Intern("coffee");
  vocab.Intern("wifi");
  vocab.Intern("quiet");
  BufWriter out;
  SaveVocabulary(vocab, &out);

  Vocabulary loaded;
  BufReader in(out.data().data(), out.size());
  ASSERT_TRUE(LoadVocabulary(&in, &loaded).ok());
  EXPECT_TRUE(in.AtEnd());
  ASSERT_EQ(loaded.size(), 3u);
  for (TermId id = 0; id < vocab.size(); ++id) {
    EXPECT_EQ(loaded.Word(id), vocab.Word(id));
    EXPECT_EQ(loaded.Find(vocab.Word(id)), id);
  }
}

TEST(VocabularyCodecTest, DuplicateWordRejected) {
  BufWriter out;
  out.PutVarU64(2);
  out.PutString("twice");
  out.PutString("twice");
  Vocabulary loaded;
  BufReader in(out.data().data(), out.size());
  EXPECT_FALSE(LoadVocabulary(&in, &loaded).ok());
}

TEST(ObjectStoreCodecTest, RoundTripSharesVocabularyWithoutReinterning) {
  const ObjectStore original = GenerateHotelDataset();
  BufWriter vocab_out, store_out;
  SaveVocabulary(original.vocab(), &vocab_out);
  SaveObjectStore(original, &store_out);

  auto vocab = std::make_shared<Vocabulary>();
  BufReader vocab_in(vocab_out.data().data(), vocab_out.size());
  ASSERT_TRUE(LoadVocabulary(&vocab_in, vocab.get()).ok());

  ObjectStore loaded(vocab);
  BufReader store_in(store_out.data().data(), store_out.size());
  ASSERT_TRUE(LoadObjectStore(&store_in, &loaded).ok());

  // The deserialized vocabulary is reused as-is: same instance, no new ids.
  EXPECT_EQ(loaded.shared_vocab().get(), vocab.get());
  EXPECT_EQ(loaded.vocab().size(), original.vocab().size());

  ASSERT_EQ(loaded.size(), original.size());
  EXPECT_EQ(loaded.bounds(), original.bounds());
  for (ObjectId id = 0; id < original.size(); ++id) {
    const SpatialObject& a = original.Get(id);
    const SpatialObject& b = loaded.Get(id);
    EXPECT_EQ(b.id, id);
    EXPECT_EQ(b.loc, a.loc);
    EXPECT_EQ(b.doc, a.doc);
    EXPECT_EQ(b.name, a.name);
  }
}

TEST(ObjectStoreCodecTest, EmptyStoreRoundTrips) {
  ObjectStore original;
  BufWriter out;
  SaveObjectStore(original, &out);
  ObjectStore loaded;
  BufReader in(out.data().data(), out.size());
  ASSERT_TRUE(LoadObjectStore(&in, &loaded).ok());
  EXPECT_EQ(loaded.size(), 0u);
  EXPECT_TRUE(loaded.bounds().empty());
}

TEST(ObjectStoreCodecTest, KeywordOutsideVocabularyRejected) {
  ObjectStore original;  // Owns an empty vocabulary.
  original.Add(Point{1, 2}, KeywordSet({5}), "ghost-term");
  BufWriter out;
  SaveObjectStore(original, &out);
  ObjectStore loaded;  // Empty vocabulary: term 5 cannot resolve.
  BufReader in(out.data().data(), out.size());
  EXPECT_FALSE(LoadObjectStore(&in, &loaded).ok());
}

TEST(InvertedIndexCodecTest, RoundTripPostings) {
  const ObjectStore store = SyntheticStore(500);
  const InvertedIndex original(store);
  BufWriter out;
  SaveInvertedIndex(original, &out);
  BufReader in(out.data().data(), out.size());
  auto loaded = LoadInvertedIndex(&in, store.vocab().size(), store.size());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->postings(), original.postings());
}

template <typename Tree>
void ExpectTreesEquivalent(const Tree& a, const Tree& b) {
  EXPECT_EQ(b.size(), a.size());
  EXPECT_EQ(b.node_count(), a.node_count());
  EXPECT_EQ(b.height(), a.height());
  EXPECT_EQ(b.options().max_entries, a.options().max_entries);
  EXPECT_EQ(b.options().min_entries, a.options().min_entries);
  EXPECT_TRUE(b.node(b.root()).summary.Equals(a.node(a.root()).summary));
  Status valid = b.Validate();
  EXPECT_TRUE(valid.ok()) << valid.ToString();
}

TEST(RTreeCodecTest, SetRTreeRoundTripAnswersIdentically) {
  const ObjectStore store = SyntheticStore(2000);
  SetRTree original(&store);
  original.BulkLoad();
  BufWriter out;
  SaveSetRTree(original, &out);

  SetRTree loaded(&store);
  BufReader in(out.data().data(), out.size());
  ASSERT_TRUE(LoadSetRTree(&in, &loaded).ok());
  EXPECT_TRUE(in.AtEnd());
  ExpectTreesEquivalent(original, loaded);

  SetRTopKEngine before(store, original);
  SetRTopKEngine after(store, loaded);
  Rng rng(3);
  for (int i = 0; i < 20; ++i) {
    Query q;
    q.loc = SampleQueryLocation(store, &rng);
    q.doc = SampleQueryKeywords(store, 3, &rng);
    q.k = 10;
    q.w = Weights::FromWs(0.5);
    EXPECT_EQ(before.Query(q), after.Query(q));
  }
}

TEST(RTreeCodecTest, KcRTreeRoundTrip) {
  const ObjectStore store = SyntheticStore(2000);
  KcRTree original(&store);
  original.BulkLoad();
  BufWriter out;
  SaveKcRTree(original, &out);

  KcRTree loaded(&store);
  BufReader in(out.data().data(), out.size());
  ASSERT_TRUE(LoadKcRTree(&in, &loaded).ok());
  ExpectTreesEquivalent(original, loaded);
}

TEST(RTreeCodecTest, EmptyTreeRoundTrips) {
  ObjectStore store;
  SetRTree original(&store);
  original.BulkLoad();
  BufWriter out;
  SaveSetRTree(original, &out);
  SetRTree loaded(&store);
  BufReader in(out.data().data(), out.size());
  ASSERT_TRUE(LoadSetRTree(&in, &loaded).ok());
  EXPECT_EQ(loaded.size(), 0u);
  EXPECT_TRUE(loaded.Validate().ok());
}

TEST(RTreeCodecTest, LoadedTreeSupportsUpdates) {
  // AdoptArena restores the fanout options, so post-load Insert/Delete must
  // keep the structural invariants.
  const ObjectStore store = SyntheticStore(800);
  SetRTree original(&store);
  original.BulkLoad(std::vector<ObjectId>());  // Start empty.
  for (ObjectId id = 0; id < 700; ++id) original.Insert(id);
  BufWriter out;
  SaveSetRTree(original, &out);

  SetRTree loaded(&store);
  BufReader in(out.data().data(), out.size());
  ASSERT_TRUE(LoadSetRTree(&in, &loaded).ok());
  for (ObjectId id = 700; id < 800; ++id) loaded.Insert(id);
  for (ObjectId id = 0; id < 50; ++id) EXPECT_TRUE(loaded.Delete(id));
  EXPECT_EQ(loaded.size(), 750u);
  Status valid = loaded.Validate();
  EXPECT_TRUE(valid.ok()) << valid.ToString();
}

class SnapshotBundleTest : public ::testing::Test {
 protected:
  void SetUp() override {
    store_ = std::make_unique<ObjectStore>(GenerateHotelDataset());
    setr_ = std::make_unique<SetRTree>(store_.get());
    setr_->BulkLoad();
    kcr_ = std::make_unique<KcRTree>(store_.get());
    kcr_->BulkLoad();
    inverted_ = std::make_unique<InvertedIndex>(*store_);
    path_ = TestPath("bundle");
    auto bytes = WriteSnapshot(path_, *store_, setr_.get(), kcr_.get(),
                               inverted_.get());
    ASSERT_TRUE(bytes.ok()) << bytes.status().ToString();
    EXPECT_GT(*bytes, 0u);
  }
  void TearDown() override { std::remove(path_.c_str()); }

  Query CarolQuery(uint32_t k = 3) const {
    Query q;
    q.loc = Point{114.158, 22.281};
    KeywordSet doc;
    doc.Insert(store_->vocab().Find("clean"));
    doc.Insert(store_->vocab().Find("comfortable"));
    q.doc = doc;
    q.k = k;
    q.w = Weights::FromWs(0.5);
    return q;
  }

  std::unique_ptr<ObjectStore> store_;
  std::unique_ptr<SetRTree> setr_;
  std::unique_ptr<KcRTree> kcr_;
  std::unique_ptr<InvertedIndex> inverted_;
  std::string path_;
};

TEST_F(SnapshotBundleTest, TopKAndWhyNotAnswersIdenticalAfterReload) {
  auto bundle = LoadSnapshot(path_);
  ASSERT_TRUE(bundle.ok()) << bundle.status().ToString();
  ASSERT_NE(bundle->store, nullptr);
  ASSERT_NE(bundle->setr, nullptr);
  ASSERT_NE(bundle->kcr, nullptr);
  ASSERT_NE(bundle->inverted, nullptr);

  // The why-not engine runs over a Corpus; build one around each state
  // (bulk loading from the same store reproduces the identical trees).
  const Corpus before_corpus = CorpusBuilder().Build(ObjectStore(*store_));
  auto after_corpus = CorpusBuilder().FromSnapshot(path_);
  ASSERT_TRUE(after_corpus.ok()) << after_corpus.status().ToString();
  WhyNotEngine before(before_corpus);
  WhyNotEngine after(*after_corpus);

  // Top-k answers must be bit-identical (ids and scores).
  const Query q = CarolQuery();
  const TopKResult before_topk = before.TopK(q);
  const TopKResult after_topk = after.TopK(q);
  ASSERT_EQ(before_topk, after_topk);

  // A why-not question about an object outside the top-k must produce the
  // same explanation and the same refined queries.
  const Query wide = CarolQuery(25);
  const TopKResult wide_topk = before.TopK(wide);
  const ObjectId missing = wide_topk[18].id;
  auto before_answer = before.Answer(q, {missing});
  auto after_answer = after.Answer(q, {missing});
  ASSERT_TRUE(before_answer.ok());
  ASSERT_TRUE(after_answer.ok());
  ASSERT_EQ(before_answer->explanations.size(),
            after_answer->explanations.size());
  EXPECT_EQ(before_answer->explanations[0].rank,
            after_answer->explanations[0].rank);
  EXPECT_EQ(before_answer->explanations[0].text,
            after_answer->explanations[0].text);
  ASSERT_EQ(before_answer->preference.has_value(),
            after_answer->preference.has_value());
  if (before_answer->preference.has_value()) {
    EXPECT_EQ(before_answer->preference->refined.w,
              after_answer->preference->refined.w);
    EXPECT_EQ(before_answer->preference->refined.k,
              after_answer->preference->refined.k);
  }
  ASSERT_EQ(before_answer->keyword.has_value(),
            after_answer->keyword.has_value());
  if (before_answer->keyword.has_value()) {
    EXPECT_EQ(before_answer->keyword->refined.doc,
              after_answer->keyword->refined.doc);
    EXPECT_EQ(before_answer->keyword->refined.k,
              after_answer->keyword->refined.k);
  }
  EXPECT_EQ(before_answer->recommended, after_answer->recommended);
  EXPECT_EQ(before_answer->refined_result, after_answer->refined_result);
}

TEST_F(SnapshotBundleTest, StoreOnlySnapshotLeavesIndexesNull) {
  const std::string path = TestPath("store_only");
  ASSERT_TRUE(WriteSnapshot(path, *store_).ok());
  auto bundle = LoadSnapshot(path);
  ASSERT_TRUE(bundle.ok()) << bundle.status().ToString();
  EXPECT_NE(bundle->store, nullptr);
  EXPECT_EQ(bundle->setr, nullptr);
  EXPECT_EQ(bundle->kcr, nullptr);
  EXPECT_EQ(bundle->inverted, nullptr);
  std::remove(path.c_str());
}

TEST_F(SnapshotBundleTest, CorruptTreeSectionFailsCleanly) {
  std::ifstream f(path_, std::ios::binary);
  std::string bytes(std::istreambuf_iterator<char>(f), {});
  f.close();
  // Flip a byte inside the SetR-tree payload.
  auto reader = SnapshotReader::Open(path_);
  ASSERT_TRUE(reader.ok());
  for (const SnapshotSectionInfo& info : reader->sections()) {
    if (info.id == SectionId::kSetRTree) {
      bytes[info.offset + info.size / 2] ^= 0x01;
    }
  }
  std::ofstream out(path_, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.close();

  auto bundle = LoadSnapshot(path_);
  ASSERT_FALSE(bundle.ok());
  EXPECT_EQ(bundle.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(SnapshotBundleTest, InspectReportsSections) {
  auto report = InspectSnapshot(path_);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->format_version, kSnapshotFormatVersion);
  ASSERT_EQ(report->sections.size(), 5u);
  bool saw_store = false;
  for (const SnapshotSectionReport& s : report->sections) {
    EXPECT_GT(s.size, 0u);
    if (s.name == "object_store") {
      saw_store = true;
      EXPECT_EQ(s.item_count, static_cast<int64_t>(store_->size()));
    }
  }
  EXPECT_TRUE(saw_store);
}

}  // namespace
}  // namespace yask
