#include "src/query/query.h"

#include <gtest/gtest.h>

#include <cmath>

namespace yask {
namespace {

TEST(WeightsTest, FromWs) {
  const Weights w = Weights::FromWs(0.3);
  EXPECT_DOUBLE_EQ(w.ws, 0.3);
  EXPECT_DOUBLE_EQ(w.wt, 0.7);
}

TEST(WeightsTest, DistanceIsL2) {
  const Weights a = Weights::FromWs(0.5);
  const Weights b = Weights::FromWs(0.8);
  // (0.3, -0.3) -> sqrt(0.18) = 0.3 * sqrt(2).
  EXPECT_NEAR(a.DistanceTo(b), 0.3 * std::sqrt(2.0), 1e-12);
  EXPECT_DOUBLE_EQ(a.DistanceTo(a), 0.0);
}

TEST(WeightsTest, PenaltyNormalizerMatchesEqnThree) {
  const Weights w = Weights::FromWs(0.5);
  EXPECT_DOUBLE_EQ(w.PenaltyNormalizer(), std::sqrt(1.0 + 0.25 + 0.25));
}

TEST(QueryValidateTest, AcceptsWellFormed) {
  Query q;
  q.loc = Point{1, 2};
  q.doc = KeywordSet({0});
  q.k = 3;
  q.w = Weights::FromWs(0.5);
  EXPECT_TRUE(q.Validate().ok());
}

TEST(QueryValidateTest, RejectsZeroK) {
  Query q;
  q.doc = KeywordSet({0});
  q.k = 0;
  EXPECT_FALSE(q.Validate().ok());
}

TEST(QueryValidateTest, RejectsBoundaryWeights) {
  Query q;
  q.doc = KeywordSet({0});
  q.k = 1;
  q.w = Weights{1.0, 0.0};
  EXPECT_FALSE(q.Validate().ok());
  q.w = Weights{0.0, 1.0};
  EXPECT_FALSE(q.Validate().ok());
}

TEST(QueryValidateTest, RejectsNonUnitSum) {
  Query q;
  q.doc = KeywordSet({0});
  q.k = 1;
  q.w = Weights{0.5, 0.6};
  EXPECT_FALSE(q.Validate().ok());
}

TEST(QueryValidateTest, RejectsEmptyKeywords) {
  Query q;
  q.k = 1;
  EXPECT_FALSE(q.Validate().ok());
}

TEST(ScoredObjectTest, OrderingIsScoreDescIdAsc) {
  const ScoredObject a{1, 0.9};
  const ScoredObject b{2, 0.8};
  const ScoredObject c{0, 0.8};
  EXPECT_TRUE(a < b);
  EXPECT_TRUE(c < b);  // Equal score, smaller id first.
  EXPECT_FALSE(b < c);
}

TEST(QueryToStringTest, MentionsKeywords) {
  Vocabulary v;
  Query q;
  q.doc = KeywordSet({v.Intern("coffee")});
  q.k = 3;
  const std::string s = q.ToString(v);
  EXPECT_NE(s.find("coffee"), std::string::npos);
  EXPECT_NE(s.find("k=3"), std::string::npos);
}

}  // namespace
}  // namespace yask
