#include "src/whynot/keyword_adaption.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "src/query/scoring.h"

namespace yask {

namespace {

/// Iterates all size-`r` index combinations of {0..n-1} in lexicographic
/// order, invoking `fn(indices)`.
template <typename Fn>
void ForEachCombination(size_t n, size_t r, Fn fn) {
  if (r > n) return;
  if (r == 0) {
    const std::vector<size_t> empty;
    fn(empty);
    return;
  }
  std::vector<size_t> idx(r);
  for (size_t i = 0; i < r; ++i) idx[i] = i;
  while (true) {
    fn(idx);
    // Advance to the next combination.
    size_t i = r;
    while (i > 0) {
      --i;
      if (idx[i] != i + n - r) break;
      if (i == 0) return;
    }
    if (idx[i] == i + n - r) return;
    ++idx[i];
    for (size_t k = i + 1; k < r; ++k) idx[k] = idx[k - 1] + 1;
  }
}

/// Tie-aware exact count of objects outscoring `target_score` (the rank-1
/// count of the target object) by full scan.
size_t CountAboveScanExact(const ObjectStore& store, const Scorer& scorer,
                           ObjectId target, double target_score,
                           KeywordAdaptStats* stats) {
  size_t above = 0;
  for (const SpatialObject& o : store.objects()) {
    if (o.id == target) continue;
    const double s = scorer.Score(o);
    if (s > target_score || (s == target_score && o.id < target)) ++above;
  }
  stats->objects_scored += store.size();
  return above;
}

/// Per-(candidate, missing-object) progressive rank interval over the
/// KcR-tree: exact counts from resolved leaves plus per-frontier-node
/// CountBounds.
class RankRefiner {
 public:
  RankRefiner(const ObjectStore& store, const KcRTree& tree,
              const Scorer& scorer, ObjectId target,
              KeywordAdaptStats* stats)
      : store_(&store),
        tree_(&tree),
        scorer_(&scorer),
        target_(target),
        target_score_(scorer.Score(target)),
        stats_(stats) {
    const auto& root = tree.node(tree.root());
    PushNode(tree.root(), root);
  }

  size_t lower() const { return exact_ + sum_lower_ + 1; }  // Rank bounds.
  size_t upper() const { return exact_ + sum_upper_ + 1; }
  bool resolved() const { return frontier_.empty() || sum_lower_ == sum_upper_; }

  /// Descends the whole frontier one tree level ("when traversing the
  /// KcR-tree downwards, we get tighter bounds", §3.3): every frontier node
  /// is replaced by its children's bounds, leaves by exact tie-aware counts.
  /// No-op when resolved.
  void RefineLevel() {
    if (frontier_.empty()) return;
    std::vector<Frontier> previous;
    previous.swap(frontier_);
    sum_lower_ = 0;
    sum_upper_ = 0;
    for (const Frontier& f : previous) {
      const auto& node = tree_->node(f.node);
      ++stats_->kcr_nodes_expanded;
      if (node.is_leaf) {
        for (const auto& e : node.entries) {
          if (e.id == target_) continue;
          const double s = scorer_->Score(e.id);
          ++stats_->objects_scored;
          if (s > target_score_ ||
              (s == target_score_ && e.id < target_)) {
            ++exact_;
          }
        }
      } else {
        for (const auto& e : node.entries) {
          PushNode(e.id, tree_->node(e.id));
        }
      }
    }
  }

 private:
  struct Frontier {
    KcRTree::NodeId node;
    CountBounds bounds;
  };

  void PushNode(KcRTree::NodeId id, const KcRTree::Node& node) {
    if (node.summary.cnt == 0) return;
    const CountBounds b =
        BoundOutscoringCount(*scorer_, node.rect, node.summary, target_score_);
    if (b.upper == 0) return;  // Nothing below can outrank: drop.
    if (b.lower == b.upper) {
      exact_ += b.lower;  // Pinned without descending.
      // Note: the target itself is never counted by the lower bound (its own
      // score cannot strictly exceed itself), so this is tie-safe.
      return;
    }
    frontier_.push_back(Frontier{id, b});
    sum_lower_ += b.lower;
    sum_upper_ += b.upper;
  }

  const ObjectStore* store_;
  const KcRTree* tree_;
  const Scorer* scorer_;
  ObjectId target_;
  double target_score_;
  KeywordAdaptStats* stats_;
  std::vector<Frontier> frontier_;
  size_t exact_ = 0;
  size_t sum_lower_ = 0;
  size_t sum_upper_ = 0;
  uint32_t max_gap_ = 0;
};

}  // namespace

std::vector<KeywordSet> GenerateCandidatesAtDistance(
    const KeywordSet& query_doc, const KeywordSet& insertable,
    size_t distance) {
  std::vector<KeywordSet> out;
  const std::vector<TermId>& del_pool = query_doc.ids();
  const std::vector<TermId>& ins_pool = insertable.ids();
  for (size_t d = 0; d <= std::min(distance, del_pool.size()); ++d) {
    const size_t ins = distance - d;
    if (ins > ins_pool.size()) continue;
    ForEachCombination(del_pool.size(), d, [&](const std::vector<size_t>& di) {
      KeywordSet base = query_doc;
      for (size_t i : di) base.Erase(del_pool[i]);
      ForEachCombination(
          ins_pool.size(), ins, [&](const std::vector<size_t>& ii) {
            KeywordSet cand = base;
            for (size_t i : ii) cand.Insert(ins_pool[i]);
            if (!cand.empty()) out.push_back(std::move(cand));
          });
    });
  }
  return out;
}

Result<RefinedKeywordQuery> AdaptKeywords(
    const ObjectStore& store, const KcRTree& tree, const Query& query,
    const std::vector<ObjectId>& missing,
    const KeywordAdaptOptions& options) {
  if (Status s = query.Validate(); !s.ok()) return s;
  if (missing.empty()) {
    return Status::InvalidArgument("missing object set must be non-empty");
  }
  if (options.lambda < 0.0 || options.lambda > 1.0) {
    return Status::InvalidArgument("lambda must lie in [0, 1]");
  }
  std::vector<ObjectId> m_ids = missing;
  std::sort(m_ids.begin(), m_ids.end());
  m_ids.erase(std::unique(m_ids.begin(), m_ids.end()), m_ids.end());
  for (ObjectId id : m_ids) {
    if (id >= store.size()) {
      return Status::NotFound("missing object id " + std::to_string(id) +
                              " is not in the database");
    }
  }

  RefinedKeywordQuery out;
  out.refined = query;
  KeywordAdaptStats& stats = out.stats;
  const double lambda = options.lambda;
  const bool use_tree = options.mode == KwAdaptMode::kBoundAndPrune;

  // M.doc = union of the missing objects' documents; the normaliser of ∆doc.
  KeywordSet m_doc;
  for (ObjectId id : m_ids) {
    m_doc = KeywordSet::Union(m_doc, store.Get(id).doc);
  }
  const KeywordSet universe = KeywordSet::Union(query.doc, m_doc);
  const KeywordSet insertable = KeywordSet::Difference(m_doc, query.doc);
  const size_t doc_norm = universe.size();

  // --- R(M, q) under the original query (tie-aware exact ranks). A scan is
  // used in both modes: exact ranking of one object is cache-friendly O(n),
  // and measurement shows the KcR bounds prune too weakly for popular query
  // keywords to beat it (the bounds earn their keep pruning *candidates*,
  // where no exact rank is needed at all — see EXPERIMENTS.md E8/E10). ---
  Scorer base_scorer(store, query);
  size_t r0 = 0;
  for (ObjectId id : m_ids) {
    const double s = base_scorer.Score(id);
    r0 = std::max(r0,
                  CountAboveScanExact(store, base_scorer, id, s, &stats) + 1);
  }
  out.original_rank = r0;
  if (r0 <= query.k) {
    out.refined_rank = r0;
    out.already_in_result = true;
    return out;
  }

  // --- Seed: the pure-k refinement (doc unchanged, k' = r0, cost λ). ---
  struct Best {
    KeywordSet doc;
    size_t rank;
    PenaltyBreakdown penalty;
    size_t delta_doc;
  };
  Best best{query.doc, r0, KeywordPenalty(lambda, query, 0, doc_norm, r0, r0),
            0};

  const double norm_k = static_cast<double>(r0) - query.k;  // > 0 here.
  auto penalty_from_rank = [&](size_t delta_doc, size_t rank) {
    return KeywordPenalty(lambda, query, delta_doc, doc_norm, r0, rank);
  };
  auto floor_of = [&](size_t delta_doc) {
    return doc_norm == 0
               ? 0.0
               : (1.0 - lambda) * static_cast<double>(delta_doc) / doc_norm;
  };
  auto k_term_of_rank_lb = [&](size_t rank_lb) {
    const size_t dk = rank_lb > query.k ? rank_lb - query.k : 0;
    return lambda * static_cast<double>(dk) / norm_k;
  };
  // Deterministic preference among equal penalties: smaller ∆doc, then
  // lexicographically smaller keyword id vector.
  auto offer_best = [&](const KeywordSet& doc, size_t rank, size_t delta_doc,
                        const PenaltyBreakdown& pen) {
    const bool better =
        pen.value < best.penalty.value ||
        (pen.value == best.penalty.value &&
         (delta_doc < best.delta_doc ||
          (delta_doc == best.delta_doc && doc.ids() < best.doc.ids())));
    if (better) best = Best{doc, rank, pen, delta_doc};
  };

  // --- Enumerate candidates by increasing ∆doc. ---
  const size_t max_distance_pool = query.doc.size() + insertable.size();
  size_t e_cap = options.max_edit_distance == 0
                     ? max_distance_pool
                     : std::min(options.max_edit_distance, max_distance_pool);

  bool done = false;
  for (size_t e = 1; e <= e_cap && !done; ++e) {
    if (floor_of(e) >= best.penalty.value) break;  // Whole level cut.
    for (KeywordSet& cand : GenerateCandidatesAtDistance(query.doc,
                                                         insertable, e)) {
      if (options.max_candidates != 0 &&
          stats.candidates_generated >= options.max_candidates) {
        stats.truncated = true;
        done = true;
        break;
      }
      ++stats.candidates_generated;
      const double floor = floor_of(e);
      if (floor >= best.penalty.value) {
        ++stats.candidates_pruned_floor;
        continue;
      }

      Query cand_query = query;
      cand_query.doc = cand;
      Scorer scorer(store, cand_query);

      if (!use_tree) {
        // Basic: exact ranks by full scans.
        size_t rank = 0;
        for (ObjectId id : m_ids) {
          const double s = scorer.Score(id);
          rank = std::max(
              rank, CountAboveScanExact(store, scorer, id, s, &stats) + 1);
        }
        ++stats.candidates_resolved;
        offer_best(cand, rank, e, penalty_from_rank(e, rank));
        continue;
      }

      // Bound-and-prune: per-missing-object progressive rank intervals.
      std::vector<RankRefiner> refiners;
      refiners.reserve(m_ids.size());
      for (ObjectId id : m_ids) {
        refiners.emplace_back(store, tree, scorer, id, &stats);
      }
      bool pruned = false;
      while (true) {
        size_t rank_lb = 0;
        size_t rank_ub = 0;
        for (const RankRefiner& r : refiners) {
          rank_lb = std::max(rank_lb, r.lower());
          rank_ub = std::max(rank_ub, r.upper());
        }
        // Penalty interval from the rank interval.
        const double pen_lb = k_term_of_rank_lb(rank_lb) + floor;
        if (pen_lb >= best.penalty.value) {
          ++stats.candidates_pruned_bounds;
          pruned = true;
          break;
        }
        const size_t dk_lb = rank_lb > query.k ? rank_lb - query.k : 0;
        const size_t dk_ub = rank_ub > query.k ? rank_ub - query.k : 0;
        if (dk_lb == dk_ub) {
          // Penalty pinned exactly (∆k equal at both ends).
          ++stats.candidates_resolved;
          offer_best(cand, rank_ub, e, penalty_from_rank(e, rank_ub));
          break;
        }
        // Refine the missing object driving the upper rank the hardest by
        // one tree level.
        RankRefiner* widest = nullptr;
        for (RankRefiner& r : refiners) {
          if (r.resolved()) continue;
          if (widest == nullptr || r.upper() > widest->upper()) widest = &r;
        }
        if (widest == nullptr) {
          // All resolved yet ∆k interval not collapsed: ranks are exact now.
          ++stats.candidates_resolved;
          offer_best(cand, rank_ub, e, penalty_from_rank(e, rank_ub));
          break;
        }
        widest->RefineLevel();
      }
      (void)pruned;
    }
  }

  out.refined.doc = best.doc;
  out.refined.k =
      static_cast<uint32_t>(std::max<size_t>(query.k, best.rank));
  out.refined_rank = best.rank;
  out.penalty = best.penalty;
  return out;
}

}  // namespace yask
