#include "src/snapshot/snapshot_format.h"

#include <gtest/gtest.h>

#include <limits>
#include <vector>

namespace yask {
namespace {

TEST(Crc32Test, KnownVectors) {
  // The classic CRC-32 check value.
  EXPECT_EQ(Crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(Crc32("", 0), 0u);
}

TEST(Crc32Test, ChunkedEqualsWhole) {
  const std::string data = "snapshot persistence layer";
  const uint32_t whole = Crc32(data.data(), data.size());
  uint32_t chunked = Crc32(data.data(), 10);
  chunked = Crc32(data.data() + 10, data.size() - 10, chunked);
  EXPECT_EQ(whole, chunked);
}

TEST(BufCodecTest, FixedWidthRoundTrip) {
  BufWriter w;
  w.PutU8(0xAB);
  w.PutU32(0xDEADBEEF);
  w.PutU64(0x0123456789ABCDEFull);
  w.PutF64(-2.5);
  BufReader r(w.data().data(), w.size());
  EXPECT_EQ(r.GetU8(), 0xAB);
  EXPECT_EQ(r.GetU32(), 0xDEADBEEFu);
  EXPECT_EQ(r.GetU64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.GetF64(), -2.5);
  EXPECT_TRUE(r.AtEnd());
}

TEST(BufCodecTest, VarintBoundaries) {
  const std::vector<uint64_t> values = {
      0,       1,      127,        128,
      16383,   16384,  0xFFFFFFFF, 0x100000000ull,
      std::numeric_limits<uint64_t>::max()};
  BufWriter w;
  for (uint64_t v : values) w.PutVarU64(v);
  BufReader r(w.data().data(), w.size());
  for (uint64_t v : values) EXPECT_EQ(r.GetVarU64(), v);
  EXPECT_TRUE(r.AtEnd());
}

TEST(BufCodecTest, VarU64RejectsOverflowBits) {
  // 10-byte varint whose final byte carries payload bits above bit 63.
  const char overlong[10] = {'\x80', '\x80', '\x80', '\x80', '\x80',
                             '\x80', '\x80', '\x80', '\x80', '\x7F'};
  BufReader r(overlong, sizeof(overlong));
  r.GetVarU64();
  EXPECT_FALSE(r.ok());
}

TEST(BufCodecTest, VarU32RejectsWideValues) {
  BufWriter w;
  w.PutVarU64(0x100000000ull);
  BufReader r(w.data().data(), w.size());
  r.GetVarU32();
  EXPECT_FALSE(r.ok());
  EXPECT_FALSE(r.status().ok());
}

TEST(BufCodecTest, StringRoundTrip) {
  BufWriter w;
  w.PutString("");
  w.PutString("Harbour Grand");
  w.PutString(std::string(1000, 'x'));
  BufReader r(w.data().data(), w.size());
  EXPECT_EQ(r.GetString(), "");
  EXPECT_EQ(r.GetString(), "Harbour Grand");
  EXPECT_EQ(r.GetString(), std::string(1000, 'x'));
  EXPECT_TRUE(r.AtEnd());
}

TEST(BufCodecTest, DeltaIdsRoundTrip) {
  const std::vector<uint32_t> ids = {0, 1, 5, 127, 128, 4096, 0xFFFFFFFF};
  BufWriter w;
  w.PutDeltaIds(ids);
  w.PutDeltaIds({});
  w.PutDeltaIds({42});
  BufReader r(w.data().data(), w.size());
  EXPECT_EQ(r.GetDeltaIds(), ids);
  EXPECT_EQ(r.GetDeltaIds(), std::vector<uint32_t>{});
  EXPECT_EQ(r.GetDeltaIds(), std::vector<uint32_t>{42});
  EXPECT_TRUE(r.AtEnd());
}

TEST(BufCodecTest, DeltaIdsRejectWrappingDelta) {
  // A delta of 2^64-1 would wrap prev+delta back below prev, smuggling a
  // non-ascending id past the 32-bit range check.
  BufWriter w;
  w.PutVarU64(2);  // count
  w.PutVarU32(5);  // first id
  w.PutVarU64(std::numeric_limits<uint64_t>::max());  // wrapping delta
  BufReader r(w.data().data(), w.size());
  r.GetDeltaIds();
  EXPECT_FALSE(r.ok());
}

TEST(BufCodecTest, DeltaIdsRejectDuplicates) {
  // A zero delta after the first element encodes a duplicate id.
  BufWriter w;
  w.PutVarU64(2);   // count
  w.PutVarU32(7);   // first id
  w.PutVarU32(0);   // duplicate
  BufReader r(w.data().data(), w.size());
  r.GetDeltaIds();
  EXPECT_FALSE(r.ok());
}

TEST(BufCodecTest, TruncationPoisonsReader) {
  BufWriter w;
  w.PutU32(12345);
  BufReader r(w.data().data(), 2);  // Cut the u32 in half.
  r.GetU32();
  EXPECT_FALSE(r.ok());
  // Sticky: every further read keeps failing and returns zero values.
  EXPECT_EQ(r.GetU8(), 0);
  EXPECT_EQ(r.GetVarU64(), 0u);
  EXPECT_FALSE(r.ok());
}

TEST(BufCodecTest, CheckCountRejectsAbsurdCounts) {
  BufWriter w;
  w.PutVarU64(1);  // 1 byte of payload follows the count in reality.
  w.PutU8(0);
  BufReader r(w.data().data(), w.size());
  const uint64_t claimed = 1;
  EXPECT_TRUE(r.CheckCount(claimed));
  EXPECT_FALSE(r.CheckCount(std::numeric_limits<uint64_t>::max()));
  EXPECT_FALSE(r.ok());
}

TEST(BufCodecTest, SkipAdvancesAndBoundsChecks) {
  BufWriter w;
  w.PutU32(1);
  w.PutU32(2);
  BufReader r(w.data().data(), w.size());
  EXPECT_TRUE(r.Skip(4));
  EXPECT_EQ(r.GetU32(), 2u);
  EXPECT_FALSE(r.Skip(1));
  EXPECT_FALSE(r.ok());
}

}  // namespace
}  // namespace yask
