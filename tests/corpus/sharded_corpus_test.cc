// ShardedCorpus: partition invariants, global object access, per-shard
// snapshot save/load, and cross-file validation of the shard manifests.

#include "src/corpus/sharded_corpus.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <set>
#include <string>

#include "src/storage/dataset_generator.h"
#include "src/storage/hotel_generator.h"

namespace yask {
namespace {

ObjectStore SmallDataset(size_t n = 800, uint64_t seed = 21) {
  DatasetSpec spec;
  spec.num_objects = n;
  spec.vocabulary_size = 80;
  spec.seed = seed;
  return GenerateDataset(spec);
}

void RemoveShardFiles(const std::string& prefix, size_t shards) {
  for (uint32_t s = 0; s < shards; ++s) {
    std::remove(ShardedCorpus::ShardFilePath(prefix, s).c_str());
  }
}

TEST(ShardedCorpusTest, PartitionPreservesEveryObjectExactlyOnce) {
  const ObjectStore source = SmallDataset();
  const ShardedCorpus sharded =
      ShardedCorpus::Partition(source, GridShardRouter::Fit(source, 4));
  ASSERT_EQ(sharded.num_shards(), 4u);
  EXPECT_EQ(sharded.size(), source.size());
  EXPECT_EQ(sharded.bounds(), source.bounds());
  EXPECT_DOUBLE_EQ(sharded.dist_norm(), source.BoundsDiagonal());

  size_t total = 0;
  std::set<ObjectId> seen;
  for (size_t s = 0; s < sharded.num_shards(); ++s) {
    const std::vector<ObjectId>& globals = sharded.shard_global_ids(s);
    EXPECT_EQ(globals.size(), sharded.shard(s).size());
    total += globals.size();
    // Ascending global order within each shard (the D6 tie-order invariant).
    for (size_t i = 0; i + 1 < globals.size(); ++i) {
      EXPECT_LT(globals[i], globals[i + 1]);
    }
    for (ObjectId local = 0; local < globals.size(); ++local) {
      seen.insert(globals[local]);
      EXPECT_EQ(sharded.ToGlobal(s, local), globals[local]);
      // The shard store's object is the source object, verbatim.
      const SpatialObject& shard_obj = sharded.shard(s).store().Get(local);
      const SpatialObject& source_obj = source.Get(globals[local]);
      EXPECT_EQ(shard_obj.loc, source_obj.loc);
      EXPECT_EQ(shard_obj.name, source_obj.name);
      EXPECT_TRUE(shard_obj.doc == source_obj.doc);
    }
  }
  EXPECT_EQ(total, source.size());
  EXPECT_EQ(seen.size(), source.size());

  // Global accessors agree with the source store.
  for (ObjectId id = 0; id < source.size(); ++id) {
    EXPECT_EQ(sharded.Object(id).name, source.Get(id).name);
  }
  // Shards share one vocabulary instance (term ids stay valid verbatim).
  for (size_t s = 0; s < sharded.num_shards(); ++s) {
    EXPECT_EQ(&sharded.shard(s).vocab(), &source.vocab());
  }
}

TEST(ShardedCorpusTest, FindByNameMatchesUnshardedFirstHit) {
  const ObjectStore source = GenerateHotelDataset();
  const ShardedCorpus sharded =
      ShardedCorpus::Partition(source, GridShardRouter::Fit(source, 3));
  // Names repeat in generated data ("clone" styles); first-by-global-id must
  // match the unsharded scan for several probes.
  for (ObjectId probe : {0u, 100u, 538u}) {
    const std::string& name = source.Get(probe).name;
    EXPECT_EQ(sharded.FindByName(name), source.FindByName(name));
  }
  EXPECT_EQ(sharded.FindByName("no-such-hotel"), kInvalidObject);
}

TEST(ShardedCorpusTest, SaveLoadRoundTripServesIdenticalResults) {
  const std::string prefix = ::testing::TempDir() + "sharded_roundtrip";
  const ObjectStore source = SmallDataset();
  const ShardedCorpus original =
      ShardedCorpus::Partition(source, GridShardRouter::Fit(source, 3));
  auto bytes = original.Save(prefix);
  ASSERT_TRUE(bytes.ok()) << bytes.status().ToString();

  auto loaded = ShardedCorpus::Load(prefix);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->num_shards(), 3u);
  EXPECT_EQ(loaded->size(), source.size());
  EXPECT_EQ(loaded->bounds(), original.bounds());
  EXPECT_DOUBLE_EQ(loaded->dist_norm(), original.dist_norm());
  EXPECT_EQ(loaded->router_description(), original.router_description());

  const ShardedTopKEngine original_engine(original);
  const ShardedTopKEngine loaded_engine(*loaded);
  Rng rng(9);
  for (int trial = 0; trial < 20; ++trial) {
    Query q;
    q.loc = SampleQueryLocation(source, &rng);
    q.doc = SampleQueryKeywords(source, 3, &rng);
    q.k = 10;
    EXPECT_EQ(loaded_engine.Query(q), original_engine.Query(q));
  }
  RemoveShardFiles(prefix, 3);
}

TEST(ShardedCorpusTest, LoadRejectsMissingShardFile) {
  const std::string prefix = ::testing::TempDir() + "sharded_missing";
  const ObjectStore source = SmallDataset(300, 8);
  const ShardedCorpus original =
      ShardedCorpus::Partition(source, GridShardRouter::Fit(source, 3));
  ASSERT_TRUE(original.Save(prefix).ok());
  std::remove(ShardedCorpus::ShardFilePath(prefix, 1).c_str());

  auto loaded = ShardedCorpus::Load(prefix);
  EXPECT_FALSE(loaded.ok());
  RemoveShardFiles(prefix, 3);
}

TEST(ShardedCorpusTest, LoadRejectsMixedPartitions) {
  // A shard file from a *different* partition of the same data must be
  // caught by the duplicate/hole check on global ids.
  const std::string prefix_a = ::testing::TempDir() + "sharded_mix_a";
  const std::string prefix_b = ::testing::TempDir() + "sharded_mix_b";
  const ObjectStore source = SmallDataset(400, 13);
  const ShardedCorpus grid =
      ShardedCorpus::Partition(source, GridShardRouter::Fit(source, 2));
  const ShardedCorpus hash = ShardedCorpus::Partition(
      source, std::make_unique<HashShardRouter>(2));
  ASSERT_TRUE(grid.Save(prefix_a).ok());
  ASSERT_TRUE(hash.Save(prefix_b).ok());
  // Swap shard 1 of partition A for shard 1 of partition B.
  ASSERT_EQ(std::rename(ShardedCorpus::ShardFilePath(prefix_b, 1).c_str(),
                        ShardedCorpus::ShardFilePath(prefix_a, 1).c_str()),
            0);

  auto loaded = ShardedCorpus::Load(prefix_a);
  EXPECT_FALSE(loaded.ok());
  RemoveShardFiles(prefix_a, 2);
  RemoveShardFiles(prefix_b, 2);
}

TEST(ShardedCorpusTest, SingleShardBehavesLikeCorpus) {
  const ObjectStore source = SmallDataset(200, 17);
  const ShardedCorpus sharded =
      ShardedCorpus::Partition(source, GridShardRouter::Fit(source, 1));
  EXPECT_EQ(sharded.num_shards(), 1u);
  EXPECT_EQ(sharded.shard(0).size(), source.size());
  for (ObjectId id = 0; id < source.size(); ++id) {
    EXPECT_EQ(sharded.ToGlobal(0, id), id);
  }
}

}  // namespace
}  // namespace yask
