// Copyright (c) 2026 The YASK reproduction authors.
// Wall-clock timing for the query log (Panel 5 reports per-query response
// times) and for benchmark table output.

#ifndef YASK_COMMON_TIMER_H_
#define YASK_COMMON_TIMER_H_

#include <chrono>
#include <cstdint>

namespace yask {

/// Monotonic milliseconds since an arbitrary epoch — for deadlines and
/// cooldown stamps (never wall-clock time).
inline int64_t NowMillis() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Monotonic stopwatch. Starts on construction; `Restart()` resets.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

  /// Elapsed microseconds.
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace yask

#endif  // YASK_COMMON_TIMER_H_
