#include "src/whynot/explanation.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "src/query/ranking.h"
#include "src/query/scoring.h"
#include "src/query/topk_engine.h"
#include "src/whynot/whynot_oracle.h"

namespace yask {

const char* MissingReasonToString(MissingReason reason) {
  switch (reason) {
    case MissingReason::kInResult:
      return "in-result";
    case MissingReason::kTooFar:
      return "too-far";
    case MissingReason::kKeywordMismatch:
      return "keyword-mismatch";
    case MissingReason::kBoth:
      return "too-far-and-keyword-mismatch";
    case MissingReason::kNarrowlyOutranked:
      return "narrowly-outranked";
  }
  return "unknown";
}

const char* RefinementRecommendationToString(RefinementRecommendation r) {
  switch (r) {
    case RefinementRecommendation::kNone:
      return "none";
    case RefinementRecommendation::kPreferenceAdjustment:
      return "preference-adjustment";
    case RefinementRecommendation::kKeywordAdaption:
      return "keyword-adaption";
    case RefinementRecommendation::kEither:
      return "either";
  }
  return "unknown";
}

namespace {

std::string DescribeObject(const WhyNotOracle& oracle, ObjectId global_id) {
  const SpatialObject& o = oracle.Object(global_id);
  if (!o.name.empty()) return o.name;
  return "object #" + std::to_string(global_id);
}

std::string BuildText(const WhyNotOracle& oracle,
                      const MissingObjectExplanation& e, uint32_t k) {
  char buf[512];
  const std::string who = DescribeObject(oracle, e.id);
  switch (e.reason) {
    case MissingReason::kInResult:
      std::snprintf(buf, sizeof(buf),
                    "%s is already in the top-%u result (rank %zu).",
                    who.c_str(), k, e.rank);
      break;
    case MissingReason::kTooFar:
      std::snprintf(
          buf, sizeof(buf),
          "%s ranks %zu: it matches the keywords well (similarity %.2f vs "
          "%.2f for the k-th result) but is too far from the query point "
          "(normalised distance %.3f vs %.3f). Lowering the spatial weight "
          "or enlarging k can revive it.",
          who.c_str(), e.rank, e.tsim, e.kth_tsim, e.sdist, e.kth_sdist);
      break;
    case MissingReason::kKeywordMismatch:
      std::snprintf(
          buf, sizeof(buf),
          "%s ranks %zu: it is close to the query point (normalised distance "
          "%.3f vs %.3f for the k-th result) but matches the query keywords "
          "poorly (similarity %.2f vs %.2f). Adapting the query keywords can "
          "revive it.",
          who.c_str(), e.rank, e.sdist, e.kth_sdist, e.tsim, e.kth_tsim);
      break;
    case MissingReason::kBoth:
      std::snprintf(
          buf, sizeof(buf),
          "%s ranks %zu: it is both farther (%.3f vs %.3f) and a weaker "
          "keyword match (%.2f vs %.2f) than the k-th result. Keyword "
          "adaption combined with a larger k is the most promising fix.",
          who.c_str(), e.rank, e.sdist, e.kth_sdist, e.tsim, e.kth_tsim);
      break;
    case MissingReason::kNarrowlyOutranked:
      std::snprintf(
          buf, sizeof(buf),
          "%s ranks %zu, just outside the top-%u: its score %.4f trails the "
          "k-th result's %.4f only narrowly. A small preference adjustment "
          "or enlarging k suffices.",
          who.c_str(), e.rank, k, e.score, e.kth_score);
      break;
  }
  return buf;
}

}  // namespace

Result<std::vector<MissingObjectExplanation>> ExplainMissing(
    const WhyNotOracle& oracle, const Query& query,
    const std::vector<ObjectId>& missing) {
  if (Status s = query.Validate(); !s.ok()) return s;
  if (missing.empty()) {
    return Status::InvalidArgument("missing object set must be non-empty");
  }
  for (ObjectId id : missing) {
    if (id >= oracle.size()) {
      return Status::NotFound("missing object id " + std::to_string(id) +
                              " is not in the database");
    }
  }

  const double dist_norm = oracle.dist_norm();
  const TopKResult topk = oracle.TopK(query);
  // The current k-th result frames the comparison; an empty result (k = 0 or
  // empty store) cannot happen here because Validate() requires k >= 1 and
  // missing ids exist.
  const ScoredObject kth = topk.back();
  const ObjectScoreParts kth_parts =
      ScorePartsOf(query, dist_norm, oracle.Object(kth.id));
  const double kth_sdist = kth_parts.sdist;
  const double kth_tsim = kth_parts.tsim;

  std::vector<MissingObjectExplanation> out;
  out.reserve(missing.size());
  for (ObjectId id : missing) {
    MissingObjectExplanation e;
    e.id = id;
    const ObjectScoreParts parts =
        ScorePartsOf(query, dist_norm, oracle.Object(id));
    e.score = parts.score;
    e.sdist = parts.sdist;
    e.tsim = parts.tsim;
    e.kth_score = kth.score;
    e.kth_sdist = kth_sdist;
    e.kth_tsim = kth_tsim;
    e.rank = oracle.Rank(query, id);

    const bool spatial_deficit = e.sdist > kth_sdist;
    const bool textual_deficit = e.tsim < kth_tsim;
    if (e.rank <= query.k) {
      e.reason = MissingReason::kInResult;
      e.recommendation = RefinementRecommendation::kNone;
    } else if (e.rank <= static_cast<size_t>(query.k) * 2 &&
               !(spatial_deficit && textual_deficit)) {
      e.reason = MissingReason::kNarrowlyOutranked;
      e.recommendation = RefinementRecommendation::kEither;
    } else if (spatial_deficit && textual_deficit) {
      e.reason = MissingReason::kBoth;
      e.recommendation = RefinementRecommendation::kKeywordAdaption;
    } else if (spatial_deficit) {
      e.reason = MissingReason::kTooFar;
      e.recommendation = RefinementRecommendation::kPreferenceAdjustment;
    } else {
      e.reason = MissingReason::kKeywordMismatch;
      e.recommendation = RefinementRecommendation::kKeywordAdaption;
    }
    e.text = BuildText(oracle, e, query.k);
    out.push_back(std::move(e));
  }
  return out;
}

Result<std::vector<MissingObjectExplanation>> ExplainMissing(
    const ObjectStore& store, const SetRTree& tree, const Query& query,
    const std::vector<ObjectId>& missing) {
  const LocalWhyNotOracle oracle(store, &tree, /*kcr=*/nullptr);
  return ExplainMissing(oracle, query, missing);
}

}  // namespace yask
