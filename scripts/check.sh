#!/usr/bin/env bash
# Tier-1 verify (ROADMAP.md), end to end: configure, build, run the test
# suite. Run from anywhere; builds into <repo>/build.
#
#   scripts/check.sh              # configure + build + ctest
#   scripts/check.sh --bench      # additionally run bench_snapshot,
#                                 # bench_sharded, bench_whynot_sharded and
#                                 # bench_remote_shards, leaving
#                                 # BENCH_*.json in the build dir (each
#                                 # sharded/remote bench fails the run on
#                                 # any divergence from the unsharded
#                                 # answers)
#   scripts/check.sh --sanitize   # ASan/UBSan build of the whole tree into
#                                 # <repo>/build-sanitize + ctest under the
#                                 # sanitizers (use for the concurrency and
#                                 # shutdown tests; pair with TSAN_OPTIONS/
#                                 # a TSan toolchain for race hunting)
#   scripts/check.sh --ci         # machine-readable per-phase summaries:
#                                 # every phase emits one line
#                                 #   CHECK-RESULT {"phase":...,"status":
#                                 #   "pass"|"fail","seconds":N}
#                                 # before the run exits non-zero on the
#                                 # first failure — what
#                                 # .github/workflows/ci.yml greps.
#
# The distributed suite alone: (cd build && ctest -L sharded) — that label
# covers the in-process sharding tests AND the remote shard tier; the
# sanitize run below covers it too (full ctest includes every labelled
# test).
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${repo_root}/build"

run_bench=0
run_sanitize=0
ci_mode=0
for arg in "$@"; do
  case "$arg" in
    --bench) run_bench=1 ;;
    --sanitize) run_sanitize=1 ;;
    --ci) ci_mode=1 ;;
    *) echo "usage: $0 [--bench] [--sanitize] [--ci]" >&2; exit 2 ;;
  esac
done

# run_phase <name> <cmd...>: runs the command; in --ci mode emits one
# CHECK-RESULT line per phase. The first failing phase ends the run (later
# phases depend on its outputs) — after reporting.
run_phase() {
  local name="$1"
  shift
  local start end status
  start=$(date +%s)
  if "$@"; then
    status=pass
  else
    status=fail
  fi
  end=$(date +%s)
  if [[ "$ci_mode" -eq 1 ]]; then
    echo "CHECK-RESULT {\"phase\":\"${name}\",\"status\":\"${status}\",\"seconds\":$((end - start))}"
  fi
  if [[ "$status" == fail ]]; then
    echo "check.sh: phase '${name}' FAILED" >&2
    exit 1
  fi
}

if [[ "$run_sanitize" -eq 1 ]]; then
  sanitize_dir="${repo_root}/build-sanitize"
  sanitize_flags="-fsanitize=address,undefined -fno-sanitize-recover=all -fno-omit-frame-pointer"
  run_phase sanitize-configure cmake -B "$sanitize_dir" -S "$repo_root" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_CXX_FLAGS="$sanitize_flags" \
    -DCMAKE_EXE_LINKER_FLAGS="$sanitize_flags"
  run_phase sanitize-build cmake --build "$sanitize_dir" -j "$(nproc)"
  run_phase sanitize-ctest env -C "$sanitize_dir" \
    ASAN_OPTIONS=detect_leaks=1 UBSAN_OPTIONS=print_stacktrace=1 \
    ctest --output-on-failure --no-tests=error -j "$(nproc)"
  echo "check.sh: sanitize OK"
fi

run_phase configure cmake -B "$build_dir" -S "$repo_root"
run_phase build cmake --build "$build_dir" -j "$(nproc)"
# --no-tests=error: test registration is conditional on finding gtest, so a
# runner image without it must FAIL the gate, not green-light zero tests.
run_phase ctest env -C "$build_dir" ctest --output-on-failure --no-tests=error -j "$(nproc)"

if [[ "$run_bench" -eq 1 ]]; then
  run_phase bench-snapshot env -C "$build_dir" ./bench_snapshot --json=BENCH_snapshot.json
  run_phase bench-sharded env -C "$build_dir" ./bench_sharded --json=BENCH_sharded.json
  run_phase bench-whynot-sharded env -C "$build_dir" ./bench_whynot_sharded --json=BENCH_whynot_sharded.json
  run_phase bench-remote-shards env -C "$build_dir" ./bench_remote_shards --json=BENCH_remote_shards.json
fi

echo "check.sh: OK"
