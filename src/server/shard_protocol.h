// Copyright (c) 2026 The YASK reproduction authors.
// The coordinator <-> shard-server wire protocol: route names and the binary
// codecs shared by ShardService (src/server/shard_service.h) and the remote
// client stack (src/corpus/remote_corpus.h).
//
// Why binary and not the service's JSON: the remote tier's exactness
// contract is BIT-identity with the in-process sharded engines, and every
// score, threshold, plane coordinate and crossing weight that crosses the
// wire must round-trip as the exact same double. The snapshot layer's
// little-endian BufWriter/BufReader already do that (F64 = raw IEEE bits)
// and give bounds-checked, corruption-safe decoding for free — a shard
// server must never crash on a malformed peer request. Bodies travel as
// application/octet-stream over plain HTTP POST, so the transport stays the
// same embedded HttpServer the service already runs.
//
// Endpoints (all on the shard server; full request/response layouts are
// documented at the codec of each message below or inline at the two call
// sites):
//   GET  /health           JSON status + index availability
//   GET  /shard/meta       ShardMeta (identity, bounds, id map, indexes)
//   GET  /shard/vocab      the shared vocabulary (snapshot codec section)
//   POST /shard/objects    [gid...] -> objects (loc, doc, name) by GLOBAL id
//   POST /shard/find       name -> first matching GLOBAL id
//   POST /shard/topk       query + prune_below -> thresholded shard top-k
//   POST /shard/count      batched tie-aware outscoring counts (scan / SetR)
//   POST /shard/plane/open|count|count_batch|crossings|close  Eqn. (3)
//                                                              sessions
//   POST /shard/probe/open|refine|close             Eqn. (4) probe batches
//   GET  /shard/trace?id=…  JSON spans recorded under a propagated trace id
//   GET  /metrics           Prometheus text exposition (docs/observability.md)

#ifndef YASK_SERVER_SHARD_PROTOCOL_H_
#define YASK_SERVER_SHARD_PROTOCOL_H_

#include <string>
#include <vector>

#include "src/common/geometry.h"
#include "src/common/status.h"
#include "src/index/score_plane_index.h"
#include "src/query/query.h"
#include "src/snapshot/snapshot_format.h"
#include "src/storage/object.h"

namespace yask {
namespace shardrpc {

/// Bumped on any incompatible message change; the coordinator refuses a
/// shard server speaking a version outside
/// [kMinSupportedProtocolVersion, kProtocolVersion] at Connect() time.
/// v2: request framing carries an optional `x-yask-trace` header
/// ("<trace_id>:<parent_span_hex>") on every RPC, and the shard server
/// grows GET /shard/trace (+ /metrics). A server must TOLERATE the header's
/// absence — untraced requests are served identically.
/// v3: adds POST /shard/plane/count_batch (K weights × A anchors per
/// request — the Eqn. (3) sweep-segment batch). Purely additive: every v2
/// route is unchanged, so a v3 coordinator serves a v2 shard by falling
/// back to per-pair /shard/plane/count, and a v3 shard serves a v2
/// coordinator verbatim.
inline constexpr uint32_t kProtocolVersion = 3;

/// Oldest shard-server version this coordinator still speaks (v3 only added
/// a route, so v2 servers remain fully usable minus the batch fast path).
inline constexpr uint32_t kMinSupportedProtocolVersion = 2;

inline constexpr char kHealthPath[] = "/health";
inline constexpr char kMetaPath[] = "/shard/meta";
inline constexpr char kVocabPath[] = "/shard/vocab";
inline constexpr char kObjectsPath[] = "/shard/objects";
inline constexpr char kFindPath[] = "/shard/find";
inline constexpr char kTopKPath[] = "/shard/topk";
inline constexpr char kCountPath[] = "/shard/count";
inline constexpr char kPlaneOpenPath[] = "/shard/plane/open";
inline constexpr char kPlaneCountPath[] = "/shard/plane/count";
/// v3+. Request: u64 session slot, varu64 K + K raw-F64 weights, varu64 A +
/// A plane points. Response: varu64 K*A + K*A u64 counts (row-major, weight
///-major: index wi*A + a), u64 nodes_visited.
inline constexpr char kPlaneCountBatchPath[] = "/shard/plane/count_batch";
inline constexpr char kPlaneCrossingsPath[] = "/shard/plane/crossings";
inline constexpr char kPlaneClosePath[] = "/shard/plane/close";
inline constexpr char kProbeOpenPath[] = "/shard/probe/open";
inline constexpr char kProbeRefinePath[] = "/shard/probe/refine";
inline constexpr char kProbeClosePath[] = "/shard/probe/close";
/// GET, JSON: the shard-side spans of one trace (?id=<trace_id>) — the
/// coordinator stitches these under its own spans at GET /trace/<id>.
inline constexpr char kTracePath[] = "/shard/trace";
/// GET, Prometheus text format (v2, docs/observability.md).
inline constexpr char kMetricsPath[] = "/metrics";

/// /shard/count entry method selector.
enum class CountMethod : uint8_t {
  kScan = 0,  // Full-store scan (keyword model's OutscoringCount).
  kSetR = 1,  // SetR-tree pruned count (rank-of-object).
};

/// Everything the coordinator learns about one shard at connect time.
struct ShardMeta {
  uint32_t protocol_version = kProtocolVersion;
  uint32_t shard_index = 0;
  uint32_t shard_count = 1;
  uint64_t object_count = 0;       // This shard's local store size.
  double dist_norm = 0.0;          // GLOBAL SDist normaliser.
  Rect global_bounds = Rect::Empty();
  bool has_kcr = false;            // /whynot refinement availability.
  bool setr_empty = true;
  Rect setr_root_mbr = Rect::Empty();  // Home-shard selection input.
  std::string router;              // Informational placement description.
  /// Local->global id map; empty means ids are already global (a standalone
  /// corpus served as shard 0 of 1).
  std::vector<ObjectId> global_ids;
};

void PutRect(BufWriter* out, const Rect& r);
Rect GetRect(BufReader* in);

void PutQuery(BufWriter* out, const Query& q);
Query GetQuery(BufReader* in);

void PutPlanePoint(BufWriter* out, const PlanePoint& p);
PlanePoint GetPlanePoint(BufReader* in);

/// Result rows (GLOBAL ids + scores), count-prefixed.
void PutScoredRows(BufWriter* out, const std::vector<ScoredObject>& rows);
std::vector<ScoredObject> GetScoredRows(BufReader* in);

void PutShardMeta(BufWriter* out, const ShardMeta& meta);
Result<ShardMeta> GetShardMeta(BufReader* in);

/// One object crossing the wire, keyed by GLOBAL id. The decoded
/// SpatialObject carries the global id in `.id` (the coordinator's object
/// cache is global-id keyed; there is no local store to index into).
void PutObject(BufWriter* out, ObjectId global_id, const SpatialObject& o);
SpatialObject GetObject(BufReader* in);

}  // namespace shardrpc
}  // namespace yask

#endif  // YASK_SERVER_SHARD_PROTOCOL_H_
