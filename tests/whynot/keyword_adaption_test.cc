#include "src/whynot/keyword_adaption.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <tuple>

#include "src/query/ranking.h"
#include "src/query/topk_engine.h"
#include "src/storage/dataset_generator.h"

namespace yask {
namespace {

ObjectStore MakeStore(size_t n, uint64_t seed) {
  DatasetSpec spec;
  spec.num_objects = n;
  spec.seed = seed;
  spec.vocabulary_size = 50;
  spec.min_keywords = 2;
  spec.max_keywords = 6;
  return GenerateDataset(spec);
}

std::vector<ObjectId> PickMissing(const ObjectStore& store, const Query& q,
                                  size_t count, size_t offset = 3) {
  Query probe = q;
  probe.k = static_cast<uint32_t>(q.k + offset + count + 5);
  const TopKResult wide = TopKScan(store, probe);
  std::vector<ObjectId> missing;
  for (size_t i = q.k + offset; i < wide.size() && missing.size() < count;
       ++i) {
    missing.push_back(wide[i].id);
  }
  return missing;
}

TEST(GenerateCandidatesTest, CountsMatchBinomials) {
  const KeywordSet qdoc({0, 1, 2});
  const KeywordSet ins({10, 11});
  // Distance 1: delete one of 3, or insert one of 2 => 5 candidates.
  EXPECT_EQ(GenerateCandidatesAtDistance(qdoc, ins, 1).size(), 5u);
  // Distance 2: C(3,2) + C(3,1)*C(2,1) + C(2,2) = 3 + 6 + 1 = 10.
  EXPECT_EQ(GenerateCandidatesAtDistance(qdoc, ins, 2).size(), 10u);
  // Distance 3: C(3,3)[empty, dropped] + C(3,2)*2 + C(3,1)*1 = 0+6+3 = 9.
  EXPECT_EQ(GenerateCandidatesAtDistance(qdoc, ins, 3).size(), 9u);
}

TEST(GenerateCandidatesTest, AllAtCorrectEditDistance) {
  const KeywordSet qdoc({0, 1, 2, 3});
  const KeywordSet ins({10, 11, 12});
  for (size_t e = 1; e <= 4; ++e) {
    for (const KeywordSet& c : GenerateCandidatesAtDistance(qdoc, ins, e)) {
      EXPECT_EQ(KeywordSet::EditDistance(qdoc, c), e);
      EXPECT_FALSE(c.empty());
      // Inserted keywords come only from the insertable pool.
      for (TermId t : KeywordSet::Difference(c, qdoc)) {
        EXPECT_TRUE(ins.Contains(t));
      }
    }
  }
}

TEST(GenerateCandidatesTest, NoDuplicates) {
  const KeywordSet qdoc({0, 1, 2});
  const KeywordSet ins({5, 6, 7});
  for (size_t e = 1; e <= 5; ++e) {
    const auto cands = GenerateCandidatesAtDistance(qdoc, ins, e);
    std::set<std::vector<TermId>> unique;
    for (const KeywordSet& c : cands) unique.insert(c.ids());
    EXPECT_EQ(unique.size(), cands.size()) << "distance " << e;
  }
}

TEST(AdaptKeywordsTest, RejectsInvalidInput) {
  const ObjectStore store = MakeStore(100, 1);
  KcRTree tree(&store);
  tree.BulkLoad();
  Query q;
  q.loc = Point{0.5, 0.5};
  q.doc = KeywordSet({0});
  q.k = 3;
  EXPECT_FALSE(AdaptKeywords(store, tree, q, {}).ok());
  EXPECT_FALSE(AdaptKeywords(store, tree, q, {999999}).ok());
  KeywordAdaptOptions opts;
  opts.lambda = -0.1;
  EXPECT_FALSE(AdaptKeywords(store, tree, q, {1}, opts).ok());
}

TEST(AdaptKeywordsTest, AlreadyInResult) {
  const ObjectStore store = MakeStore(300, 2);
  KcRTree tree(&store);
  tree.BulkLoad();
  Query q;
  q.loc = Point{0.5, 0.5};
  q.doc = KeywordSet({0, 1});
  q.k = 10;
  const TopKResult top = TopKScan(store, q);
  auto result = AdaptKeywords(store, tree, q, {top[0].id});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->already_in_result);
  EXPECT_DOUBLE_EQ(result->penalty.value, 0.0);
  EXPECT_EQ(result->refined.doc, q.doc);
}

TEST(AdaptKeywordsTest, RefinedQueryRevivesMissing) {
  const ObjectStore store = MakeStore(800, 3);
  KcRTree tree(&store);
  tree.BulkLoad();
  Query q;
  q.loc = Point{0.4, 0.4};
  q.doc = KeywordSet({0, 1});
  q.k = 5;
  const std::vector<ObjectId> missing = PickMissing(store, q, 1);
  ASSERT_FALSE(missing.empty());
  auto result = AdaptKeywords(store, tree, q, missing);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(result->already_in_result);

  const TopKResult refined = TopKScan(store, result->refined);
  std::set<ObjectId> ids;
  for (const ScoredObject& so : refined) ids.insert(so.id);
  for (ObjectId m : missing) {
    EXPECT_TRUE(ids.count(m)) << "missing object " << m << " not revived";
  }
  // The refined query keeps loc and w; only doc/k may change.
  EXPECT_EQ(result->refined.loc, q.loc);
  EXPECT_EQ(result->refined.w, q.w);
}

TEST(AdaptKeywordsTest, PenaltyNeverExceedsLambda) {
  const ObjectStore store = MakeStore(400, 4);
  KcRTree tree(&store);
  tree.BulkLoad();
  Rng rng(17);
  for (double lambda : {0.2, 0.5, 0.8}) {
    Query q;
    q.loc = SampleQueryLocation(store, &rng);
    q.doc = SampleQueryKeywords(store, 2, &rng);
    q.k = 5;
    const std::vector<ObjectId> missing = PickMissing(store, q, 1);
    if (missing.empty()) continue;
    KeywordAdaptOptions opts;
    opts.lambda = lambda;
    auto result = AdaptKeywords(store, tree, q, missing, opts);
    ASSERT_TRUE(result.ok());
    EXPECT_LE(result->penalty.value, lambda + 1e-12);
  }
}

TEST(AdaptKeywordsTest, LambdaZeroKeepsDoc) {
  // λ=0: editing doc is pure cost; keep doc, k'=R0, penalty 0.
  const ObjectStore store = MakeStore(300, 5);
  KcRTree tree(&store);
  tree.BulkLoad();
  Query q;
  q.loc = Point{0.6, 0.6};
  q.doc = KeywordSet({0, 2});
  q.k = 4;
  const std::vector<ObjectId> missing = PickMissing(store, q, 1);
  ASSERT_FALSE(missing.empty());
  KeywordAdaptOptions opts;
  opts.lambda = 0.0;
  auto result = AdaptKeywords(store, tree, q, missing, opts);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->refined.doc, q.doc);
  EXPECT_EQ(result->refined.k, result->original_rank);
  EXPECT_DOUBLE_EQ(result->penalty.value, 0.0);
}

TEST(AdaptKeywordsTest, LambdaOnePrefersDocEditsOverK) {
  // λ=1: ∆doc is free, only ∆k is penalised — the refinement should reach
  // the best achievable rank through keyword edits alone, never settling for
  // the pure-k fallback if any candidate improves the rank.
  const ObjectStore store = MakeStore(300, 9);
  KcRTree tree(&store);
  tree.BulkLoad();
  Query q;
  q.loc = Point{0.4, 0.6};
  q.doc = KeywordSet({0, 1});
  q.k = 4;
  const std::vector<ObjectId> missing = PickMissing(store, q, 1);
  ASSERT_FALSE(missing.empty());
  KeywordAdaptOptions opts;
  opts.lambda = 1.0;
  // The unbounded λ=1 candidate space is the whole power set; cap the edit
  // distance to keep the audit exhaustive-checkable.
  opts.max_edit_distance = 2;
  auto result = AdaptKeywords(store, tree, q, missing, opts);
  ASSERT_TRUE(result.ok());

  // No candidate within the same edit budget achieves a better rank.
  const KeywordSet m_doc = store.Get(missing[0]).doc;
  const KeywordSet insertable = KeywordSet::Difference(m_doc, q.doc);
  size_t best_rank = result->original_rank;  // Pure-k fallback.
  for (size_t e = 1; e <= 2; ++e) {
    for (const KeywordSet& cand :
         GenerateCandidatesAtDistance(q.doc, insertable, e)) {
      Query cq = q;
      cq.doc = cand;
      Scorer scorer(store, cq);
      const double s = scorer.Score(missing[0]);
      size_t above = 0;
      for (const SpatialObject& o : store.objects()) {
        if (o.id == missing[0]) continue;
        const double so = scorer.Score(o);
        if (so > s || (so == s && o.id < missing[0])) ++above;
      }
      best_rank = std::min(best_rank, above + 1);
    }
  }
  EXPECT_EQ(result->refined_rank, best_rank);
}

// Basic and bound-and-prune must return identical refinements.
class KwModesAgree
    : public ::testing::TestWithParam<std::tuple<uint64_t, double, size_t>> {};

TEST_P(KwModesAgree, BasicEqualsBoundAndPrune) {
  const auto [seed, lambda, m_count] = GetParam();
  const ObjectStore store = MakeStore(250, seed);
  KcRTree tree(&store);
  tree.BulkLoad();
  Rng rng(seed * 7 + 1);
  for (int trial = 0; trial < 3; ++trial) {
    Query q;
    q.loc = SampleQueryLocation(store, &rng);
    q.doc = SampleQueryKeywords(store, 1 + rng.NextBounded(3), &rng);
    q.k = 3 + static_cast<uint32_t>(rng.NextBounded(4));
    const std::vector<ObjectId> missing = PickMissing(store, q, m_count);
    if (missing.size() != m_count) continue;

    KeywordAdaptOptions basic;
    basic.lambda = lambda;
    basic.mode = KwAdaptMode::kBasic;
    KeywordAdaptOptions pruned;
    pruned.lambda = lambda;
    pruned.mode = KwAdaptMode::kBoundAndPrune;

    auto rb = AdaptKeywords(store, tree, q, missing, basic);
    auto rp = AdaptKeywords(store, tree, q, missing, pruned);
    ASSERT_TRUE(rb.ok());
    ASSERT_TRUE(rp.ok());
    EXPECT_EQ(rb->already_in_result, rp->already_in_result);
    if (rb->already_in_result) continue;
    EXPECT_NEAR(rb->penalty.value, rp->penalty.value, 1e-12)
        << "seed=" << seed << " λ=" << lambda << " trial=" << trial;
    EXPECT_EQ(rb->refined.doc.ids(), rp->refined.doc.ids());
    EXPECT_EQ(rb->refined.k, rp->refined.k);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, KwModesAgree,
    ::testing::Combine(::testing::Values(3, 11, 23),
                       ::testing::Values(0.3, 0.5, 0.7),
                       ::testing::Values(1u, 2u)));

// The batched level-synchronous search must return the exact refinement the
// per-probe search returns — the strict-cut argument makes the winner
// independent of the probing schedule — while issuing exactly one refine
// fan-out per refinement level (the remote round-trip gate).
class KwBatchingAgrees
    : public ::testing::TestWithParam<std::tuple<uint64_t, double, size_t>> {};

TEST_P(KwBatchingAgrees, BatchedEqualsPerProbe) {
  const auto [seed, lambda, m_count] = GetParam();
  const ObjectStore store = MakeStore(250, seed);
  KcRTree tree(&store);
  tree.BulkLoad();
  Rng rng(seed * 13 + 5);
  for (int trial = 0; trial < 3; ++trial) {
    Query q;
    q.loc = SampleQueryLocation(store, &rng);
    q.doc = SampleQueryKeywords(store, 1 + rng.NextBounded(3), &rng);
    q.k = 3 + static_cast<uint32_t>(rng.NextBounded(4));
    const std::vector<ObjectId> missing = PickMissing(store, q, m_count);
    if (missing.size() != m_count) continue;

    for (const KwAdaptMode mode :
         {KwAdaptMode::kBoundAndPrune, KwAdaptMode::kBasic}) {
      KeywordAdaptOptions batched;
      batched.lambda = lambda;
      batched.mode = mode;
      batched.batch_probes = true;
      KeywordAdaptOptions per_probe = batched;
      per_probe.batch_probes = false;

      auto rb = AdaptKeywords(store, tree, q, missing, batched);
      auto rp = AdaptKeywords(store, tree, q, missing, per_probe);
      ASSERT_TRUE(rb.ok());
      ASSERT_TRUE(rp.ok());
      EXPECT_EQ(rb->already_in_result, rp->already_in_result);
      // Bit-identical, not just near: the same floating-point winner.
      EXPECT_EQ(rb->penalty.value, rp->penalty.value)
          << "seed=" << seed << " λ=" << lambda << " trial=" << trial;
      EXPECT_EQ(rb->refined.doc.ids(), rp->refined.doc.ids());
      EXPECT_EQ(rb->refined.k, rp->refined.k);
      EXPECT_EQ(rb->original_rank, rp->original_rank);
      EXPECT_EQ(rb->refined_rank, rp->refined_rank);

      // The round-trip shape: one fan-out per refinement level when
      // batching; the per-probe path pays one per probe per level.
      EXPECT_EQ(rb->stats.probe_fanouts, rb->stats.refine_levels);
      EXPECT_GE(rp->stats.probe_fanouts, rb->stats.probe_fanouts);
    }

    // A tiny batch cap still returns the same winner (chunked levels).
    KeywordAdaptOptions tiny;
    tiny.lambda = lambda;
    tiny.probe_batch_size = 2;
    KeywordAdaptOptions unbounded;
    unbounded.lambda = lambda;
    unbounded.probe_batch_size = 0;
    auto rt = AdaptKeywords(store, tree, q, missing, tiny);
    auto ru = AdaptKeywords(store, tree, q, missing, unbounded);
    ASSERT_TRUE(rt.ok());
    ASSERT_TRUE(ru.ok());
    EXPECT_EQ(rt->penalty.value, ru->penalty.value);
    EXPECT_EQ(rt->refined.doc.ids(), ru->refined.doc.ids());
    EXPECT_EQ(rt->refined.k, ru->refined.k);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, KwBatchingAgrees,
    ::testing::Combine(::testing::Values(5, 17, 29),
                       ::testing::Values(0.3, 0.5, 0.7),
                       ::testing::Values(1u, 2u)));

TEST(AdaptKeywordsTest, PruningStatsShowWork) {
  const ObjectStore store = MakeStore(600, 6);
  KcRTree tree(&store);
  tree.BulkLoad();
  Query q;
  q.loc = Point{0.3, 0.7};
  q.doc = KeywordSet({0, 1, 2});
  q.k = 5;
  const std::vector<ObjectId> missing = PickMissing(store, q, 1);
  ASSERT_FALSE(missing.empty());
  auto result = AdaptKeywords(store, tree, q, missing);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->stats.candidates_generated, 0u);
  EXPECT_GT(result->stats.kcr_nodes_expanded, 0u);
  // Pruning should discard at least one candidate without exact resolution.
  EXPECT_GT(result->stats.candidates_pruned_bounds +
                result->stats.candidates_pruned_floor,
            0u);
}

TEST(AdaptKeywordsTest, MaxEditDistanceCapsSearch) {
  const ObjectStore store = MakeStore(300, 7);
  KcRTree tree(&store);
  tree.BulkLoad();
  Query q;
  q.loc = Point{0.5, 0.5};
  q.doc = KeywordSet({0, 1});
  q.k = 4;
  const std::vector<ObjectId> missing = PickMissing(store, q, 1);
  ASSERT_FALSE(missing.empty());
  KeywordAdaptOptions opts;
  opts.max_edit_distance = 1;
  auto result = AdaptKeywords(store, tree, q, missing, opts);
  ASSERT_TRUE(result.ok());
  EXPECT_LE(result->penalty.delta_doc, 1u);
}

// Exhaustive optimality audit: on a small dataset, enumerate EVERY candidate
// keyword set over q.doc ∪ M.doc (all edit distances), rank by full scan,
// and verify AdaptKeywords returns the true minimum penalty.
class KwOptimalityAudit : public ::testing::TestWithParam<uint64_t> {};

TEST_P(KwOptimalityAudit, MatchesExhaustiveSearch) {
  DatasetSpec spec;
  spec.num_objects = 120;
  spec.seed = GetParam();
  spec.vocabulary_size = 25;
  spec.min_keywords = 2;
  spec.max_keywords = 4;
  const ObjectStore store = GenerateDataset(spec);
  KcRTree tree(&store);
  tree.BulkLoad();
  Rng rng(GetParam() ^ 0xF00D);

  for (int trial = 0; trial < 3; ++trial) {
    Query q;
    q.loc = SampleQueryLocation(store, &rng);
    q.doc = SampleQueryKeywords(store, 2, &rng);
    q.k = 3;
    const std::vector<ObjectId> missing = PickMissing(store, q, 1);
    if (missing.empty()) continue;

    const double lambda = 0.5;
    KeywordAdaptOptions opts;
    opts.lambda = lambda;
    auto result = AdaptKeywords(store, tree, q, missing, opts);
    ASSERT_TRUE(result.ok());
    if (result->already_in_result) continue;
    const size_t r0 = result->original_rank;

    // Exhaustive reference: every candidate at every edit distance.
    KeywordSet m_doc = store.Get(missing[0]).doc;
    const KeywordSet universe = KeywordSet::Union(q.doc, m_doc);
    const KeywordSet insertable = KeywordSet::Difference(m_doc, q.doc);
    double best = lambda;  // Pure-k refinement.
    for (size_t e = 1; e <= q.doc.size() + insertable.size(); ++e) {
      for (const KeywordSet& cand :
           GenerateCandidatesAtDistance(q.doc, insertable, e)) {
        Query cq = q;
        cq.doc = cand;
        Scorer scorer(store, cq);
        const double s = scorer.Score(missing[0]);
        size_t above = 0;
        for (const SpatialObject& o : store.objects()) {
          if (o.id == missing[0]) continue;
          const double so = scorer.Score(o);
          if (so > s || (so == s && o.id < missing[0])) ++above;
        }
        const PenaltyBreakdown pen =
            KeywordPenalty(lambda, q, e, universe.size(), r0, above + 1);
        best = std::min(best, pen.value);
      }
    }
    EXPECT_NEAR(result->penalty.value, best, 1e-12)
        << "seed=" << GetParam() << " trial=" << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KwOptimalityAudit,
                         ::testing::Values(5, 17, 41));

TEST(AdaptKeywordsTest, RefinedDocOnlyUsesAllowedKeywords) {
  const ObjectStore store = MakeStore(400, 8);
  KcRTree tree(&store);
  tree.BulkLoad();
  Query q;
  q.loc = Point{0.2, 0.2};
  q.doc = KeywordSet({0, 1});
  q.k = 5;
  const std::vector<ObjectId> missing = PickMissing(store, q, 2);
  ASSERT_EQ(missing.size(), 2u);
  auto result = AdaptKeywords(store, tree, q, missing);
  ASSERT_TRUE(result.ok());
  KeywordSet m_doc;
  for (ObjectId m : missing) {
    m_doc = KeywordSet::Union(m_doc, store.Get(m).doc);
  }
  const KeywordSet universe = KeywordSet::Union(q.doc, m_doc);
  EXPECT_TRUE(result->refined.doc.IsSubsetOf(universe));
}

}  // namespace
}  // namespace yask
