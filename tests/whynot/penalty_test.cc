#include "src/whynot/penalty.h"

#include <gtest/gtest.h>

#include <cmath>

namespace yask {
namespace {

Query BaseQuery() {
  Query q;
  q.loc = Point{0, 0};
  q.doc = KeywordSet({0, 1});
  q.k = 3;
  q.w = Weights::FromWs(0.5);
  return q;
}

TEST(DeltaKTermTest, ZeroWhenRefinedWithinK) {
  EXPECT_DOUBLE_EQ(DeltaKTerm(0.5, 3, 10, 3), 0.0);
  EXPECT_DOUBLE_EQ(DeltaKTerm(0.5, 3, 10, 2), 0.0);
}

TEST(DeltaKTermTest, MatchesEqnThreeNumerator) {
  // λ=0.5, k=3, R(M,q)=10, R(M,q')=7: 0.5 * (7-3)/(10-3).
  EXPECT_DOUBLE_EQ(DeltaKTerm(0.5, 3, 10, 7), 0.5 * 4.0 / 7.0);
}

TEST(DeltaKTermTest, DegenerateNormaliser) {
  // R(M,q) == k: the missing objects are not missing; term is 0.
  EXPECT_DOUBLE_EQ(DeltaKTerm(0.5, 3, 3, 9), 0.0);
}

TEST(PreferencePenaltyTest, HandComputedExample) {
  const Query q = BaseQuery();
  // Refined weight <0.7, 0.3>: ∆w = sqrt(0.04+0.04) = 0.2*sqrt(2)/... wait:
  // (0.7-0.5, 0.3-0.5) = (0.2, -0.2), ||.||2 = 0.2*sqrt(2).
  const Weights refined = Weights::FromWs(0.7);
  // R(M,q)=10, R(M,q')=5 => ∆k = 2, normaliser = 10-3 = 7.
  const PenaltyBreakdown p = PreferencePenalty(0.5, q, refined, 10, 5);
  EXPECT_EQ(p.delta_k, 2u);
  EXPECT_NEAR(p.delta_w, 0.2 * std::sqrt(2.0), 1e-12);
  const double expect_k = 0.5 * 2.0 / 7.0;
  const double expect_w =
      0.5 * (0.2 * std::sqrt(2.0)) / std::sqrt(1.0 + 0.25 + 0.25);
  EXPECT_NEAR(p.k_term, expect_k, 1e-12);
  EXPECT_NEAR(p.mod_term, expect_w, 1e-12);
  EXPECT_NEAR(p.value, expect_k + expect_w, 1e-12);
}

TEST(PreferencePenaltyTest, PureKRefinementCostsLambda) {
  const Query q = BaseQuery();
  // Unchanged w, k' = R(M,q): ∆k = R - k, term = λ * (R-k)/(R-k) = λ.
  const PenaltyBreakdown p = PreferencePenalty(0.3, q, q.w, 10, 10);
  EXPECT_NEAR(p.value, 0.3, 1e-12);
  EXPECT_DOUBLE_EQ(p.mod_term, 0.0);
}

TEST(PreferencePenaltyTest, LambdaExtremes) {
  const Query q = BaseQuery();
  const Weights refined = Weights::FromWs(0.6);
  const PenaltyBreakdown p0 = PreferencePenalty(0.0, q, refined, 10, 10);
  EXPECT_DOUBLE_EQ(p0.k_term, 0.0);
  EXPECT_GT(p0.mod_term, 0.0);
  const PenaltyBreakdown p1 = PreferencePenalty(1.0, q, refined, 10, 10);
  EXPECT_GT(p1.k_term, 0.0);
  EXPECT_DOUBLE_EQ(p1.mod_term, 0.0);
}

TEST(PreferencePenaltyTest, BothTermsBoundedByOne) {
  const Query q = BaseQuery();
  // Extreme modification: w from 0.5 to nearly 1.
  const PenaltyBreakdown p =
      PreferencePenalty(0.5, q, Weights::FromWs(0.999), 100, 100);
  EXPECT_LE(p.value, 1.0);
  EXPECT_LE(p.k_term, 0.5);
  EXPECT_LE(p.mod_term, 0.5);
}

TEST(KeywordPenaltyTest, HandComputedExample) {
  const Query q = BaseQuery();
  // ∆doc = 2, |q.doc ∪ M.doc| = 6, R=10, R'=8, k=3, λ=0.4.
  const PenaltyBreakdown p = KeywordPenalty(0.4, q, 2, 6, 10, 8);
  EXPECT_EQ(p.delta_doc, 2u);
  EXPECT_EQ(p.delta_k, 5u);
  EXPECT_NEAR(p.k_term, 0.4 * 5.0 / 7.0, 1e-12);
  EXPECT_NEAR(p.mod_term, 0.6 * 2.0 / 6.0, 1e-12);
}

TEST(KeywordPenaltyTest, ZeroDocNormGuard) {
  const Query q = BaseQuery();
  const PenaltyBreakdown p = KeywordPenalty(0.4, q, 0, 0, 10, 10);
  EXPECT_DOUBLE_EQ(p.mod_term, 0.0);
}

TEST(KeywordPenaltyTest, PureKRefinementCostsLambda) {
  const Query q = BaseQuery();
  const PenaltyBreakdown p = KeywordPenalty(0.7, q, 0, 6, 12, 12);
  EXPECT_NEAR(p.value, 0.7, 1e-12);
}

TEST(KeywordPenaltyTest, MonotoneInDeltaDoc) {
  const Query q = BaseQuery();
  double prev = -1.0;
  for (size_t d = 0; d <= 6; ++d) {
    const PenaltyBreakdown p = KeywordPenalty(0.5, q, d, 6, 10, 5);
    EXPECT_GT(p.value, prev);
    prev = p.value;
  }
}

}  // namespace
}  // namespace yask
