#include "src/corpus/remote_whynot_oracle.h"

#include <algorithm>
#include <cstring>

#include "src/server/shard_protocol.h"

namespace yask {

namespace {

/// Encodes one /shard/count request for the given specs (target scores are
/// resolved coordinator-side — a spec's target need not live on the shard
/// being asked).
std::string EncodeCountRequest(const std::vector<OracleTargetSpec>& specs,
                               const std::vector<double>& target_scores,
                               uint8_t method) {
  BufWriter req;
  req.PutVarU64(specs.size());
  for (size_t i = 0; i < specs.size(); ++i) {
    shardrpc::PutQuery(&req, *specs[i].query);
    req.PutU32(specs[i].target);
    req.PutF64(target_scores[i]);
    req.PutU8(method);
  }
  return req.data();
}

// --- Session failover channel ------------------------------------------------

/// One shard's server-side session (Eqn. (3) plane or Eqn. (4) probe batch)
/// with mid-request failover. The session is replica-sticky: it lives on ONE
/// replica of the shard's ReplicaSet. When a session call fails on the wire —
/// or the replica restarted and answers 404 for an id it no longer knows —
/// the channel re-opens the session on a live replica (possibly the restarted
/// one), REPLAYS the state-mutating calls already applied so the fresh
/// session reaches the same refinement level, and re-issues the failed call.
/// Because every replica boots from the same snapshot, the replayed session
/// is byte-identical to the lost one, and the caller never sees the kill.
///
/// Every session request body leads with an 8-byte session-id slot the
/// channel stamps per attempt. Not thread-safe (one logical why-not question
/// drives one channel at a time, matching the shard server's own per-session
/// serialisation).
class ShardSessionChannel {
 public:
  ShardSessionChannel(const RemoteCorpus& corpus, size_t shard,
                      const char* open_path, const char* close_path)
      : corpus_(&corpus),
        shard_(shard),
        open_path_(open_path),
        close_path_(close_path) {}

  ~ShardSessionChannel() { Close(); }

  /// First open, trying every replica. On success open_response() holds the
  /// raw response (leading U64 session id included — parse and skip it).
  bool Open(std::string open_body) {
    open_body_ = std::move(open_body);
    std::vector<bool> tried(set().num_replicas(), false);
    return Reopen(&tried);
  }

  bool live() const { return session_ != 0; }
  const std::string& open_response() const { return open_resp_; }
  const Status& last_error() const { return last_error_; }

  /// One session call; `body` leads with 8 bytes the channel overwrites with
  /// the session id. `mutates` records the body for replay after failover
  /// (probe refines advance server-side frontiers; plane calls are pure).
  /// Errors only when no replica can serve the session.
  Result<std::string> Call(const char* path, std::string body, bool mutates) {
    if (!live()) {
      return Status::Unavailable("shard " + set().description() +
                                 ": no live session");
    }
    std::vector<bool> tried(set().num_replicas(), false);
    // A restarted replica is healthy but sessionless: it answers 404, we
    // re-open (maybe on it) and retry. Bound those loops — a server that
    // keeps losing fresh sessions is broken, not restarting.
    size_t lost_sessions = 0;
    bool failed_over = false;
    for (;;) {
      StampSession(&body, session_);
      Result<std::string> raw = set().CallOn(replica_, "POST", path, body);
      if (raw.ok()) {
        if (mutates) replay_.push_back({path, body});
        if (failed_over) set().NoteFailover();
        return raw;
      }
      const StatusCode code = raw.status().code();
      if (code == StatusCode::kUnavailable) {
        tried[replica_] = true;  // This replica failed on the wire.
      } else if (code == StatusCode::kNotFound) {
        // Session gone (replica restart or server-side eviction); the
        // replica itself stays eligible for the re-open.
        if (++lost_sessions > set().num_replicas() + 1) {
          last_error_ = raw.status();
          return raw;
        }
      } else {
        return raw;  // Deterministic semantic error; retries would repeat it.
      }
      failed_over = true;
      session_ = 0;
      if (!Reopen(&tried)) {
        return Status::Unavailable("shard " + set().description() +
                                   ": no replica could serve the session: " +
                                   last_error_.message());
      }
    }
  }

  /// Best-effort close; an unreachable replica's session falls to the
  /// server-side LRU cap eventually.
  void Close() {
    if (!live()) return;
    BufWriter req;
    req.PutU64(session_);
    (void)set().CallOn(replica_, "POST", close_path_, req.data());
    session_ = 0;
  }

 private:
  ReplicaSet& set() const { return corpus_->replicas(shard_); }

  static void StampSession(std::string* body, uint64_t session) {
    std::memcpy(body->data(), &session, sizeof(session));
  }

  /// Opens on some not-yet-tried replica and replays the mutation history.
  bool Reopen(std::vector<bool>* tried) {
    session_ = 0;
    for (;;) {
      const std::optional<size_t> r = set().PickReplica(tried);
      if (!r.has_value()) return false;
      if (OpenOn(*r)) return true;
      (*tried)[*r] = true;
    }
  }

  bool OpenOn(size_t r) {
    Result<std::string> raw =
        set().CallOn(r, "POST", open_path_, open_body_);
    if (!raw.ok()) {
      last_error_ = raw.status();
      return false;
    }
    BufReader in(raw->data(), raw->size());
    const uint64_t id = in.GetU64();
    if (!in.ok() || id == 0) {
      last_error_ = Status::InvalidArgument("bad session-open response");
      return false;
    }
    // Replay, in order, what the lost session had already applied. The
    // responses repeat bounds the coordinator has already merged (replicas
    // are deterministic twins), so they are dropped — and NOT re-counted in
    // any stats: the logical work happened once.
    for (const ReplayEntry& entry : replay_) {
      std::string body = entry.body;
      StampSession(&body, id);
      Result<std::string> replayed =
          set().CallOn(r, "POST", entry.path, body);
      if (!replayed.ok()) {
        last_error_ = replayed.status();
        BufWriter close;
        close.PutU64(id);
        (void)set().CallOn(r, "POST", close_path_, close.data());
        return false;
      }
    }
    // A re-open after the first success IS a session replay: the lost
    // session was re-established (history re-applied) on a live replica.
    if (opened_once_) corpus_->session_replays()->Add();
    opened_once_ = true;
    session_ = id;
    replica_ = r;
    open_resp_ = *std::move(raw);
    return true;
  }

  struct ReplayEntry {
    const char* path;
    std::string body;  // Session slot re-stamped at replay time.
  };

  const RemoteCorpus* corpus_;
  size_t shard_;
  const char* open_path_;
  const char* close_path_;
  std::string open_body_;
  std::vector<ReplayEntry> replay_;
  size_t replica_ = 0;
  uint64_t session_ = 0;
  bool opened_once_ = false;
  std::string open_resp_;
  Status last_error_ = Status::Unavailable("never opened");
};

}  // namespace

std::vector<size_t> RemoteShardOracle::CountFanout(
    const std::vector<OracleTargetSpec>& specs, uint8_t method) const {
  std::vector<double> target_scores;
  target_scores.reserve(specs.size());
  for (const OracleTargetSpec& spec : specs) {
    target_scores.push_back(
        ScorePartsOf(*spec.query, corpus_->dist_norm(), Object(spec.target))
            .score);
  }
  const std::string body = EncodeCountRequest(specs, target_scores, method);

  const size_t n = corpus_->num_shards();
  std::vector<std::vector<size_t>> counts(n);
  corpus_->ForEachShard([&](size_t s) {
    Result<std::string> raw =
        corpus_->replicas(s).Call("POST", shardrpc::kCountPath, body);
    if (!raw.ok()) {
      corpus_->RecordError(raw.status());
      return;
    }
    BufReader in(raw->data(), raw->size());
    const uint64_t count = in.GetVarU64();
    if (count != specs.size()) {
      corpus_->RecordError(
          Status::InvalidArgument("bad /shard/count response"));
      return;
    }
    counts[s].reserve(count);
    for (uint64_t i = 0; i < count; ++i) counts[s].push_back(in.GetU64());
    if (!in.ok()) {
      corpus_->RecordError(in.status());
      counts[s].clear();
    }
  });

  std::vector<size_t> total(specs.size(), 0);
  for (size_t s = 0; s < n; ++s) {
    if (counts[s].empty()) continue;  // Failed shard: epoch already bumped.
    for (size_t i = 0; i < specs.size(); ++i) total[i] += counts[s][i];
  }
  return total;
}

size_t RemoteShardOracle::Rank(const Query& query, ObjectId global_id) const {
  const std::vector<OracleTargetSpec> specs{{&query, global_id}};
  return CountFanout(specs,
                     static_cast<uint8_t>(shardrpc::CountMethod::kSetR))[0] +
         1;
}

size_t RemoteShardOracle::OutscoringCount(const Query& query,
                                          ObjectId global_id,
                                          KeywordAdaptStats* stats) const {
  const std::vector<OracleTargetSpec> specs{{&query, global_id}};
  return OutscoringCountBatch(specs, stats)[0];
}

std::vector<size_t> RemoteShardOracle::OutscoringCountBatch(
    const std::vector<OracleTargetSpec>& specs,
    KeywordAdaptStats* stats) const {
  stats->objects_scored += corpus_->size() * specs.size();
  return CountFanout(specs,
                     static_cast<uint8_t>(shardrpc::CountMethod::kScan));
}

// --- Score-plane sessions ----------------------------------------------------

namespace {

class RemoteScorePlaneSession : public ScorePlaneSession {
 public:
  RemoteScorePlaneSession(const RemoteCorpus* corpus,
                          const WhyNotOracle* oracle, const Query* query,
                          PrefAdjustMode mode)
      : corpus_(corpus),
        oracle_(oracle),
        query_(query),
        optimized_(mode == PrefAdjustMode::kOptimized) {
    // The batch route is v3; with any older shard in the fleet the session
    // falls back to the per-pair route (the base-class CountAboveBatch loop)
    // and advertises segment size 1 so the sweep doesn't speculate for
    // nothing.
    batch_route_ = true;
    for (size_t s = 0; s < corpus->num_shards(); ++s) {
      batch_route_ = batch_route_ && corpus->meta(s).protocol_version >= 3;
    }
    BufWriter req;
    shardrpc::PutQuery(&req, *query);
    req.PutU8(optimized_ ? 1 : 0);
    const std::string body = req.data();
    const size_t n = corpus->num_shards();
    channels_.reserve(n);
    for (size_t s = 0; s < n; ++s) {
      channels_.push_back(std::make_unique<ShardSessionChannel>(
          *corpus, s, shardrpc::kPlaneOpenPath, shardrpc::kPlaneClosePath));
    }
    corpus_->ForEachShard([&](size_t s) {
      if (!channels_[s]->Open(body)) {
        corpus_->RecordError(channels_[s]->last_error());
      }
    });
  }

  PlanePoint Anchor(ObjectId global_id) const override {
    const ObjectScoreParts parts = ScorePartsOf(*query_, corpus_->dist_norm(),
                                                oracle_->Object(global_id));
    return PlanePoint{1.0 - parts.sdist, parts.tsim, global_id};
  }

  size_t CountAbove(double w, const PlanePoint& anchor,
                    PreferenceAdjustStats* stats) const override {
    BufWriter req;
    req.PutU64(0);  // Session slot, stamped by the channel.
    req.PutF64(w);
    shardrpc::PutPlanePoint(&req, anchor);
    const std::string body = req.data();
    const size_t n = channels_.size();
    std::vector<size_t> counts(n, 0);
    std::vector<size_t> nodes(n, 0);
    corpus_->ForEachShard([&](size_t s) {
      // Open failed on every replica: the epoch is already bumped; re-asking
      // would just burn one doomed round-trip per sweep event.
      if (!channels_[s]->live()) return;
      Result<std::string> raw =
          channels_[s]->Call(shardrpc::kPlaneCountPath, body,
                             /*mutates=*/false);
      if (!raw.ok()) {
        corpus_->RecordError(raw.status());
        return;
      }
      BufReader in(raw->data(), raw->size());
      counts[s] = in.GetU64();
      nodes[s] = in.GetU64();
      if (!in.ok()) corpus_->RecordError(in.status());
    });
    size_t total = 0;
    for (size_t s = 0; s < n; ++s) {
      total += counts[s];
      stats->index_nodes_visited += nodes[s];
    }
    if (!optimized_) ++stats->full_rescans;  // One logical dataset rescan.
    return total;
  }

  std::vector<size_t> CountAboveBatch(
      const std::vector<double>& weights,
      const std::vector<PlanePoint>& anchors,
      PreferenceAdjustStats* stats) const override {
    if (!batch_route_) {
      // Pre-v3 shard in the fleet: per-pair /shard/plane/count calls (the
      // base-class loop over CountAbove) — identical counts, more trips.
      return ScorePlaneSession::CountAboveBatch(weights, anchors, stats);
    }
    BufWriter req;
    req.PutU64(0);  // Session slot, stamped by the channel.
    req.PutVarU64(weights.size());
    for (const double w : weights) req.PutF64(w);
    req.PutVarU64(anchors.size());
    for (const PlanePoint& anchor : anchors) {
      shardrpc::PutPlanePoint(&req, anchor);
    }
    const std::string body = req.data();
    const size_t pairs = weights.size() * anchors.size();
    const size_t n = channels_.size();
    std::vector<std::vector<size_t>> counts(n);
    std::vector<size_t> nodes(n, 0);
    corpus_->ForEachShard([&](size_t s) {
      if (!channels_[s]->live()) return;  // Open failed; epoch already bumped.
      Result<std::string> raw =
          channels_[s]->Call(shardrpc::kPlaneCountBatchPath, body,
                             /*mutates=*/false);
      if (!raw.ok()) {
        corpus_->RecordError(raw.status());
        return;
      }
      BufReader in(raw->data(), raw->size());
      const uint64_t count = in.GetVarU64();
      if (count != pairs) {
        corpus_->RecordError(
            Status::InvalidArgument("bad /shard/plane/count_batch response"));
        return;
      }
      counts[s].reserve(pairs);
      for (uint64_t i = 0; i < pairs; ++i) counts[s].push_back(in.GetU64());
      nodes[s] = in.GetU64();
      if (!in.ok()) {
        corpus_->RecordError(in.status());
        counts[s].clear();
      }
    });
    std::vector<size_t> total(pairs, 0);
    for (size_t s = 0; s < n; ++s) {
      if (counts[s].empty()) continue;  // Failed shard: epoch already bumped.
      for (size_t i = 0; i < pairs; ++i) total[i] += counts[s][i];
      stats->index_nodes_visited += nodes[s];
    }
    if (!optimized_) stats->full_rescans += pairs;
    return total;
  }

  size_t PreferredSweepBatch() const override {
    if (!batch_route_) return 1;  // No batch route: speculation buys nothing.
    // The fleet's slowest shard gates every fan-out, so IT sets how much a
    // saved round-trip is worth.
    size_t batch = 1;
    for (size_t s = 0; s < corpus_->num_shards(); ++s) {
      batch = std::max(batch, corpus_->replicas(s).adaptive_sweep_batch());
    }
    return batch;
  }

  void CollectCrossings(const PlanePoint& anchor, double wlo, double whi,
                        std::vector<double>* events,
                        PreferenceAdjustStats* stats) const override {
    BufWriter req;
    req.PutU64(0);  // Session slot, stamped by the channel.
    shardrpc::PutPlanePoint(&req, anchor);
    req.PutF64(wlo);
    req.PutF64(whi);
    const std::string body = req.data();
    const size_t n = channels_.size();
    std::vector<std::vector<double>> parts(n);
    std::vector<size_t> nodes(n, 0);
    corpus_->ForEachShard([&](size_t s) {
      if (!channels_[s]->live()) return;  // Open failed; epoch already bumped.
      Result<std::string> raw =
          channels_[s]->Call(shardrpc::kPlaneCrossingsPath, body,
                             /*mutates=*/false);
      if (!raw.ok()) {
        corpus_->RecordError(raw.status());
        return;
      }
      BufReader in(raw->data(), raw->size());
      const uint64_t count = in.GetVarU64();
      if (!in.CheckCount(count, sizeof(double))) {
        corpus_->RecordError(
            Status::InvalidArgument("bad /shard/plane/crossings response"));
        return;
      }
      parts[s].reserve(count);
      for (uint64_t i = 0; i < count; ++i) parts[s].push_back(in.GetF64());
      nodes[s] = in.GetU64();
      if (!in.ok()) corpus_->RecordError(in.status());
    });
    // Union in shard order; the caller sorts + deduplicates the merged set.
    for (size_t s = 0; s < n; ++s) {
      events->insert(events->end(), parts[s].begin(), parts[s].end());
      stats->index_nodes_visited += nodes[s];
    }
  }

 private:
  const RemoteCorpus* corpus_;
  const WhyNotOracle* oracle_;
  const Query* query_;
  bool optimized_;
  bool batch_route_ = true;  // Every shard speaks shardrpc v3+.
  // mutable: channels fail over (re-open + re-pin) inside const sweeps.
  mutable std::vector<std::unique_ptr<ShardSessionChannel>> channels_;
};

// --- Rank-probe batches ------------------------------------------------------

class RemoteRankProbeBatch : public RankProbeBatch {
 public:
  RemoteRankProbeBatch(const RemoteCorpus* corpus, const WhyNotOracle* oracle,
                       const std::vector<OracleTargetSpec>& specs,
                       KeywordAdaptStats* stats)
      : corpus_(corpus), stats_(stats), members_(specs.size()) {
    // Target scores resolve coordinator-side, then ONE open per shard
    // creates every member's refiner there.
    BufWriter req;
    req.PutVarU64(specs.size());
    for (const OracleTargetSpec& spec : specs) {
      const double target_score =
          ScorePartsOf(*spec.query, corpus_->dist_norm(),
                       oracle->Object(spec.target))
              .score;
      shardrpc::PutQuery(&req, *spec.query);
      req.PutU32(spec.target);
      req.PutF64(target_score);
    }
    const std::string body = req.data();

    const size_t n = corpus_->num_shards();
    shards_.resize(n);
    channels_.reserve(n);
    for (size_t s = 0; s < n; ++s) {
      shards_[s].members.resize(specs.size());
      channels_.push_back(std::make_unique<ShardSessionChannel>(
          *corpus, s, shardrpc::kProbeOpenPath, shardrpc::kProbeClosePath));
    }
    corpus_->ForEachShard([&](size_t s) {
      if (!channels_[s]->Open(body)) {
        corpus_->RecordError(channels_[s]->last_error());
        return;
      }
      const std::string& resp = channels_[s]->open_response();
      BufReader in(resp.data(), resp.size());
      in.GetU64();  // Session id — the channel's concern.
      for (MemberBounds& member : shards_[s].members) {
        member.lower = in.GetU64();
        member.upper = in.GetU64();
        member.resolved = in.GetU8() != 0;
      }
      if (!in.ok()) {
        corpus_->RecordError(in.status());
        // Back to the pinned-zero defaults: a half-parsed member with
        // resolved=false would make the refinement loop spin forever on a
        // shard that can no longer answer (the request 503s via the epoch).
        channels_[s]->Close();
        shards_[s].members.assign(shards_[s].members.size(), MemberBounds{});
      }
    });
  }

  size_t size() const override { return members_; }

  size_t lower(size_t i) const override {
    size_t sum = 0;
    for (const ShardState& shard : shards_) sum += shard.members[i].lower;
    return sum + 1;
  }
  size_t upper(size_t i) const override {
    size_t sum = 0;
    for (const ShardState& shard : shards_) sum += shard.members[i].upper;
    return sum + 1;
  }
  bool resolved(size_t i) const override {
    for (const ShardState& shard : shards_) {
      if (!shard.members[i].resolved) return false;
    }
    return true;
  }

  void RefineLevel(const std::vector<size_t>& members) override {
    const size_t n = shards_.size();
    std::vector<uint64_t> kcr_deltas(n, 0);
    std::vector<uint64_t> scored_deltas(n, 0);
    corpus_->ForEachShard([&](size_t s) {
      ShardState& shard = shards_[s];
      if (!channels_[s]->live()) return;  // Open failed; epoch already bumped.
      // Only the members with an open frontier on THIS shard are sent.
      std::vector<size_t> wanted;
      for (size_t m : members) {
        if (!shard.members[m].resolved) wanted.push_back(m);
      }
      if (wanted.empty()) return;
      BufWriter req;
      req.PutU64(0);  // Session slot, stamped by the channel.
      req.PutVarU64(wanted.size());
      for (size_t m : wanted) req.PutVarU32(static_cast<uint32_t>(m));
      // mutates=true: a refine advances the server-side frontiers, so it
      // joins the channel's replay log — a later failover re-runs the whole
      // history on the fresh replica before anything new is asked of it.
      Result<std::string> raw =
          channels_[s]->Call(shardrpc::kProbeRefinePath, req.data(),
                             /*mutates=*/true);
      // Any failure (every replica down) pins the asked members on this
      // shard: bounds stop narrowing but resolved() becomes true, so the
      // caller's refinement loop TERMINATES and the request surfaces the
      // bumped epoch as a 503 — instead of re-issuing a doomed RPC (or
      // spinning) forever.
      auto pin_wanted = [&] {
        for (size_t m : wanted) shard.members[m].resolved = true;
      };
      if (!raw.ok()) {
        corpus_->RecordError(raw.status());
        pin_wanted();
        return;
      }
      BufReader in(raw->data(), raw->size());
      const uint64_t count = in.GetVarU64();
      if (count != wanted.size()) {
        corpus_->RecordError(
            Status::InvalidArgument("bad /shard/probe/refine response"));
        pin_wanted();
        return;
      }
      for (size_t m : wanted) {
        shard.members[m].lower = in.GetU64();
        shard.members[m].upper = in.GetU64();
        shard.members[m].resolved = in.GetU8() != 0;
      }
      kcr_deltas[s] = in.GetU64();
      scored_deltas[s] = in.GetU64();
      if (!in.ok()) {
        corpus_->RecordError(in.status());
        pin_wanted();
      }
    });
    for (size_t s = 0; s < n; ++s) {
      stats_->kcr_nodes_expanded += kcr_deltas[s];
      stats_->objects_scored += scored_deltas[s];
    }
  }

 private:
  struct MemberBounds {
    uint64_t lower = 0;
    uint64_t upper = 0;
    bool resolved = true;  // A failed shard contributes a pinned zero.
  };
  struct ShardState {
    std::vector<MemberBounds> members;
  };

  const RemoteCorpus* corpus_;
  KeywordAdaptStats* stats_;
  size_t members_;
  std::vector<ShardState> shards_;
  std::vector<std::unique_ptr<ShardSessionChannel>> channels_;
};

}  // namespace

std::unique_ptr<ScorePlaneSession> RemoteShardOracle::PrepareScorePlane(
    const Query& query, PrefAdjustMode mode) const {
  return std::make_unique<RemoteScorePlaneSession>(corpus_, this, &query,
                                                   mode);
}

std::unique_ptr<RankProbe> RemoteShardOracle::ProbeRank(
    const Query& candidate, ObjectId global_id,
    KeywordAdaptStats* stats) const {
  const std::vector<OracleTargetSpec> specs{{&candidate, global_id}};
  return std::make_unique<BatchOfOneProbe>(
      std::make_unique<RemoteRankProbeBatch>(corpus_, this, specs, stats));
}

std::unique_ptr<RankProbeBatch> RemoteShardOracle::ProbeRankBatch(
    const std::vector<OracleTargetSpec>& specs,
    KeywordAdaptStats* stats) const {
  return std::make_unique<RemoteRankProbeBatch>(corpus_, this, specs, stats);
}

}  // namespace yask
