// Degenerate-input robustness: duplicate locations, identical documents,
// single-object stores, zero-similarity queries. Real POI crawls contain all
// of these (chain stores share coordinates and boilerplate descriptions), so
// the engines must stay correct — not merely not crash — on them.

#include <gtest/gtest.h>

#include <optional>
#include <set>

#include "src/corpus/corpus.h"
#include "src/query/ranking.h"
#include "src/query/topk_engine.h"
#include "src/whynot/why_not_engine.h"

namespace yask {
namespace {

/// 100 objects all at the same point with the same document: every score
/// ties, so everything is decided by the id tie-break.
class FullyDegenerateStore : public ::testing::Test {
 protected:
  void SetUp() override {
    ObjectStore store;
    kw_ = store.mutable_vocab()->Intern("dim");
    for (int i = 0; i < 100; ++i) {
      store.Add(Point{0.5, 0.5}, KeywordSet({kw_}), "clone");
    }
    corpus_.emplace(CorpusBuilder().Build(std::move(store)));
  }
  Query MakeQuery(uint32_t k) {
    Query q;
    q.loc = Point{0.25, 0.75};
    q.doc = KeywordSet({kw_});
    q.k = k;
    return q;
  }
  TermId kw_;
  std::optional<Corpus> corpus_;
};

TEST_F(FullyDegenerateStore, IndexesValidate) {
  EXPECT_TRUE(corpus_->setr().Validate().ok())
      << corpus_->setr().Validate().ToString();
  EXPECT_TRUE(corpus_->kcr().Validate().ok())
      << corpus_->kcr().Validate().ToString();
}

TEST_F(FullyDegenerateStore, TopKReturnsLowestIds) {
  const SetRTopKEngine engine = corpus_->topk();
  const TopKResult r = engine.Query(MakeQuery(7));
  ASSERT_EQ(r.size(), 7u);
  for (uint32_t i = 0; i < 7; ++i) EXPECT_EQ(r[i].id, i);
}

TEST_F(FullyDegenerateStore, RanksAreIdPlusOne) {
  const Query q = MakeQuery(5);
  for (ObjectId id : {0u, 42u, 99u}) {
    EXPECT_EQ(ComputeRank(corpus_->store(), corpus_->setr(), q, id), id + 1);
  }
}

TEST_F(FullyDegenerateStore, WhyNotStillRevives) {
  WhyNotEngine engine(*corpus_);
  const Query q = MakeQuery(5);
  // Object 50 ranks 51 purely by tie-break; only k-enlargement can help
  // (neither w nor doc changes can reorder perfect ties).
  auto answer = engine.Answer(q, {50});
  ASSERT_TRUE(answer.ok()) << answer.status().ToString();
  ASSERT_TRUE(answer->preference.has_value());
  EXPECT_EQ(answer->preference->original_rank, 51u);
  EXPECT_GE(answer->preference->refined.k, 51u);
  std::set<ObjectId> ids;
  for (const ScoredObject& so : answer->refined_result) ids.insert(so.id);
  EXPECT_TRUE(ids.count(50));
}

TEST(DegenerateTest, SingleObjectStore) {
  ObjectStore store;
  const TermId kw = store.mutable_vocab()->Intern("solo");
  store.Add(Point{0.1, 0.9}, KeywordSet({kw}), "only");
  const Corpus corpus = CorpusBuilder().Build(std::move(store));
  const SetRTopKEngine engine = corpus.topk();
  Query q;
  q.loc = Point{0.5, 0.5};
  q.doc = KeywordSet({kw});
  q.k = 3;
  const TopKResult r = engine.Query(q);
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0].id, 0u);
  // A why-not question about the only object: it is trivially in the result.
  WhyNotEngine why(corpus);
  auto answer = why.Answer(q, {0});
  ASSERT_TRUE(answer.ok());
  EXPECT_EQ(answer->recommended, RefinementModel::kNone);
}

TEST(DegenerateTest, ZeroSimilarityQueryStillRanksSpatially) {
  ObjectStore store;
  const TermId a = store.mutable_vocab()->Intern("a");
  const TermId b = store.mutable_vocab()->Intern("b");
  store.Add(Point{0.9, 0.9}, KeywordSet({a}), "far");
  store.Add(Point{0.2, 0.2}, KeywordSet({a}), "near");
  store.Add(Point{0.0, 1.0}, KeywordSet({a}), "corner");
  SetRTree setr(&store);
  setr.BulkLoad();
  SetRTopKEngine engine(store, setr);
  Query q;
  q.loc = Point{0.2, 0.2};
  q.doc = KeywordSet({b});  // Matches nothing: pure spatial ranking.
  q.k = 2;
  const TopKResult r = engine.Query(q);
  ASSERT_EQ(r.size(), 2u);
  EXPECT_EQ(r[0].id, 1u);  // "near".
  EXPECT_EQ(r, TopKScan(store, q));
}

TEST(DegenerateTest, CollinearScorePlanePoints) {
  // All objects on the same score line (identical SDist and TSim): the
  // preference module must fall back to pure-k (no crossing can help).
  ObjectStore store;
  const TermId kw = store.mutable_vocab()->Intern("x");
  for (int i = 0; i < 20; ++i) {
    store.Add(Point{0.3, 0.7}, KeywordSet({kw}), "same");
  }
  Query q;
  q.loc = Point{0.3, 0.3};
  q.doc = KeywordSet({kw});
  q.k = 3;
  auto result = AdjustPreference(store, q, {10});
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->already_in_result);
  EXPECT_EQ(result->refined.w, q.w);        // No weight can reorder ties.
  EXPECT_EQ(result->refined.k, 11u);        // Rank 11 by id tie-break.
  EXPECT_EQ(result->stats.crossings_found, 0u);
}

TEST(DegenerateTest, MissingObjectWithEmptyDocument) {
  // An object with no keywords at all: TSim == 0 under every candidate doc,
  // so keyword adaption must fall back to pure-k enlargement.
  ObjectStore store;
  const TermId kw = store.mutable_vocab()->Intern("match");
  for (int i = 0; i < 30; ++i) {
    store.Add(Point{0.5 + 0.01 * i, 0.5}, KeywordSet({kw}), "normal");
  }
  const ObjectId mute = store.Add(Point{0.9, 0.9}, KeywordSet(), "mute");
  KcRTree kcr(&store);
  kcr.BulkLoad();
  Query q;
  q.loc = Point{0.5, 0.5};
  q.doc = KeywordSet({kw});
  q.k = 3;
  auto result = AdaptKeywords(store, kcr, q, {mute});
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->already_in_result);
  // M.doc is empty: no insertable keywords; only deletions/pure-k remain.
  EXPECT_TRUE(result->refined.doc.IsSubsetOf(q.doc));
  EXPECT_GE(result->refined.k, result->refined_rank);
  // The revival guarantee still holds.
  const TopKResult r = TopKScan(store, result->refined);
  bool revived = false;
  for (const ScoredObject& so : r) {
    if (so.id == mute) revived = true;
  }
  EXPECT_TRUE(revived);
}

TEST(DegenerateTest, AllMissingObjectsAlreadyTop) {
  ObjectStore store;
  const TermId kw = store.mutable_vocab()->Intern("z");
  for (int i = 0; i < 10; ++i) {
    store.Add(Point{0.1 * i, 0.1 * i}, KeywordSet({kw}), "o");
  }
  const Corpus corpus = CorpusBuilder().Build(std::move(store));
  WhyNotEngine engine(corpus);
  Query q;
  q.loc = Point{0, 0};
  q.doc = KeywordSet({kw});
  q.k = 5;
  const TopKResult top = engine.TopK(q);
  auto answer =
      engine.Answer(q, {top[0].id, top[1].id, top[2].id});
  ASSERT_TRUE(answer.ok());
  EXPECT_EQ(answer->recommended, RefinementModel::kNone);
  for (const auto& e : answer->explanations) {
    EXPECT_EQ(e.reason, MissingReason::kInResult);
  }
}

}  // namespace
}  // namespace yask
