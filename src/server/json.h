// Copyright (c) 2026 The YASK reproduction authors.
// A small self-contained JSON DOM (writer + recursive-descent parser) for the
// YASK service protocol. The demo client/server exchange queries and results
// over HTTP; this module replaces the Java/Tomcat serialisation stack.
//
// Supported: null, bool, finite doubles, strings (with \uXXXX escapes for
// input; output escapes control characters), arrays, objects. Numbers are
// stored as double (adequate: the protocol carries coordinates, scores, ids).

#ifndef YASK_SERVER_JSON_H_
#define YASK_SERVER_JSON_H_

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/status.h"

namespace yask {

/// A JSON value. Value-semantic; copies are deep.
class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() : type_(Type::kNull) {}
  JsonValue(bool b) : type_(Type::kBool), bool_(b) {}            // NOLINT
  JsonValue(double d) : type_(Type::kNumber), number_(d) {}      // NOLINT
  JsonValue(int i) : type_(Type::kNumber), number_(i) {}         // NOLINT
  JsonValue(size_t u)                                            // NOLINT
      : type_(Type::kNumber), number_(static_cast<double>(u)) {}
  JsonValue(const char* s) : type_(Type::kString), string_(s) {} // NOLINT
  JsonValue(std::string s)                                       // NOLINT
      : type_(Type::kString), string_(std::move(s)) {}

  static JsonValue MakeArray() {
    JsonValue v;
    v.type_ = Type::kArray;
    return v;
  }
  static JsonValue MakeObject() {
    JsonValue v;
    v.type_ = Type::kObject;
    return v;
  }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool as_bool() const { return bool_; }
  double as_number() const { return number_; }
  const std::string& as_string() const { return string_; }

  /// Object field access; returns a shared null for absent keys.
  const JsonValue& Get(const std::string& key) const;
  bool Has(const std::string& key) const;
  /// Sets/overwrites an object field (this must be an object).
  JsonValue& Set(std::string key, JsonValue value);

  /// Array element access.
  const JsonValue& At(size_t i) const;
  /// Appends to an array (this must be an array).
  JsonValue& Append(JsonValue value);

  size_t size() const;

  const std::vector<JsonValue>& array_items() const { return array_; }
  const std::map<std::string, JsonValue>& object_items() const {
    return object_;
  }

  /// Serialises to a compact JSON string.
  std::string Dump() const;

  /// Parses a complete JSON document (trailing whitespace allowed, trailing
  /// garbage rejected).
  static Result<JsonValue> Parse(std::string_view text);

 private:
  void DumpTo(std::string* out) const;

  Type type_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::map<std::string, JsonValue> object_;
};

/// Escapes a string into a JSON string literal (with surrounding quotes).
std::string JsonEscape(std::string_view s);

}  // namespace yask

#endif  // YASK_SERVER_JSON_H_
