// Copyright (c) 2026 The YASK reproduction authors.
// Hong-Kong-hotels demo dataset (DESIGN.md substitution table).
//
// The VLDB'16 demo uses ~539 hotels crawled from booking.com with keywords
// from facility lists and user comments. The crawl is not redistributable, so
// this module deterministically synthesises an equivalent dataset: 539 hotels
// placed over the Hong Kong bounding box (clustered around Central, Tsim Sha
// Tsui, Causeway Bay, Mong Kok and the airport), each described by facility
// and comment keywords with realistic skew ("wifi" common, "butler" rare).

#ifndef YASK_STORAGE_HOTEL_GENERATOR_H_
#define YASK_STORAGE_HOTEL_GENERATOR_H_

#include <cstdint>

#include "src/storage/object_store.h"

namespace yask {

/// Parameters for the hotel demo dataset.
struct HotelDatasetSpec {
  /// The demo crawl contained "some 539 hotels".
  size_t num_hotels = 539;
  uint64_t seed = 2016;
};

/// Generates the demo dataset. Hotels get names like "Harbour Grand Hotel 17"
/// and documents mixing category, facility and comment keywords.
ObjectStore GenerateHotelDataset(const HotelDatasetSpec& spec = {});

/// Geographic frame used by the generator (approximate Hong Kong lon/lat box:
/// lon 113.83..114.41, lat 22.15..22.56). Exposed for map rendering in the
/// examples.
Rect HongKongBounds();

}  // namespace yask

#endif  // YASK_STORAGE_HOTEL_GENERATOR_H_
