#include "src/common/geometry.h"

#include <gtest/gtest.h>

#include "src/common/random.h"

namespace yask {
namespace {

TEST(PointTest, Distance) {
  EXPECT_DOUBLE_EQ(Distance({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(Distance({1, 1}, {1, 1}), 0.0);
  EXPECT_DOUBLE_EQ(SquaredDistance({0, 0}, {3, 4}), 25.0);
}

TEST(RectTest, EmptyBasics) {
  Rect r = Rect::Empty();
  EXPECT_TRUE(r.empty());
  EXPECT_DOUBLE_EQ(r.Area(), 0.0);
  EXPECT_DOUBLE_EQ(r.Margin(), 0.0);
  EXPECT_FALSE(r.Intersects(r));
}

TEST(RectTest, FromPointIsDegenerate) {
  Rect r = Rect::FromPoint({2, 3});
  EXPECT_FALSE(r.empty());
  EXPECT_DOUBLE_EQ(r.Area(), 0.0);
  EXPECT_TRUE(r.Contains(Point{2, 3}));
  EXPECT_FALSE(r.Contains(Point{2.1, 3}));
}

TEST(RectTest, ExtendPoint) {
  Rect r = Rect::Empty();
  r.Extend(Point{1, 2});
  r.Extend(Point{-1, 5});
  EXPECT_EQ(r, Rect::FromBounds(-1, 2, 1, 5));
  EXPECT_DOUBLE_EQ(r.Area(), 6.0);
  EXPECT_DOUBLE_EQ(r.Margin(), 5.0);
}

TEST(RectTest, ExtendEmptyRectIsNoop) {
  Rect r = Rect::FromBounds(0, 0, 1, 1);
  r.Extend(Rect::Empty());
  EXPECT_EQ(r, Rect::FromBounds(0, 0, 1, 1));
}

TEST(RectTest, UnionAndIntersection) {
  Rect a = Rect::FromBounds(0, 0, 2, 2);
  Rect b = Rect::FromBounds(1, 1, 3, 3);
  EXPECT_EQ(Rect::Union(a, b), Rect::FromBounds(0, 0, 3, 3));
  EXPECT_EQ(Rect::Intersection(a, b), Rect::FromBounds(1, 1, 2, 2));
  Rect c = Rect::FromBounds(5, 5, 6, 6);
  EXPECT_TRUE(Rect::Intersection(a, c).empty());
}

TEST(RectTest, ContainsRect) {
  Rect outer = Rect::FromBounds(0, 0, 10, 10);
  EXPECT_TRUE(outer.Contains(Rect::FromBounds(1, 1, 9, 9)));
  EXPECT_TRUE(outer.Contains(outer));
  EXPECT_FALSE(outer.Contains(Rect::FromBounds(1, 1, 11, 9)));
  EXPECT_TRUE(outer.Contains(Rect::Empty()));  // Vacuous.
}

TEST(RectTest, IntersectsIsSymmetricOnTouch) {
  Rect a = Rect::FromBounds(0, 0, 1, 1);
  Rect b = Rect::FromBounds(1, 1, 2, 2);  // Shares the corner point.
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_TRUE(b.Intersects(a));
}

TEST(RectTest, Enlargement) {
  Rect a = Rect::FromBounds(0, 0, 2, 2);
  EXPECT_DOUBLE_EQ(a.Enlargement(Rect::FromBounds(1, 1, 1.5, 1.5)), 0.0);
  EXPECT_DOUBLE_EQ(a.Enlargement(Rect::FromBounds(0, 0, 4, 2)), 4.0);
}

TEST(RectTest, MinMaxDistanceHandComputed) {
  Rect r = Rect::FromBounds(1, 1, 3, 3);
  EXPECT_DOUBLE_EQ(r.MinDistance(Point{2, 2}), 0.0);     // Inside.
  EXPECT_DOUBLE_EQ(r.MinDistance(Point{0, 2}), 1.0);     // Left of.
  EXPECT_DOUBLE_EQ(r.MinDistance(Point{0, 0}), std::sqrt(2.0));
  EXPECT_DOUBLE_EQ(r.MaxDistance(Point{0, 0}), std::sqrt(18.0));
  EXPECT_DOUBLE_EQ(r.MaxDistance(Point{2, 2}), std::sqrt(2.0));
}

TEST(RectTest, CenterAndToString) {
  Rect r = Rect::FromBounds(0, 2, 4, 6);
  EXPECT_EQ(r.Center(), (Point{2, 4}));
  EXPECT_FALSE(r.ToString().empty());
}

// Property sweep: MINDIST <= distance-to-any-contained-point <= MAXDIST.
class RectDistanceProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RectDistanceProperty, MinMaxDistanceBracketContainedPoints) {
  Rng rng(GetParam());
  for (int iter = 0; iter < 200; ++iter) {
    const double x1 = rng.NextDouble(-10, 10);
    const double y1 = rng.NextDouble(-10, 10);
    Rect r = Rect::FromBounds(x1, y1, x1 + rng.NextDouble(0, 5),
                              y1 + rng.NextDouble(0, 5));
    const Point q{rng.NextDouble(-20, 20), rng.NextDouble(-20, 20)};
    // A random point inside the rect.
    const Point inside{rng.NextDouble(r.min_x, r.max_x),
                       rng.NextDouble(r.min_y, r.max_y)};
    ASSERT_TRUE(r.Contains(inside));
    const double d = Distance(q, inside);
    EXPECT_LE(r.MinDistance(q), d + 1e-12);
    EXPECT_GE(r.MaxDistance(q), d - 1e-12);
  }
}

TEST_P(RectDistanceProperty, UnionContainsBothAndIntersectionContained) {
  Rng rng(GetParam() ^ 0xABCD);
  for (int iter = 0; iter < 200; ++iter) {
    auto random_rect = [&] {
      const double x1 = rng.NextDouble(-10, 10);
      const double y1 = rng.NextDouble(-10, 10);
      return Rect::FromBounds(x1, y1, x1 + rng.NextDouble(0, 5),
                              y1 + rng.NextDouble(0, 5));
    };
    const Rect a = random_rect();
    const Rect b = random_rect();
    const Rect u = Rect::Union(a, b);
    EXPECT_TRUE(u.Contains(a));
    EXPECT_TRUE(u.Contains(b));
    const Rect i = Rect::Intersection(a, b);
    if (!i.empty()) {
      EXPECT_TRUE(a.Contains(i));
      EXPECT_TRUE(b.Contains(i));
      EXPECT_GE(u.Area() + 1e-12, a.Area());
      EXPECT_GE(a.Area() + b.Area() - i.Area(), 0.0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RectDistanceProperty,
                         ::testing::Values(1, 2, 3, 17, 99));

}  // namespace
}  // namespace yask
