// Copyright (c) 2026 The YASK reproduction authors.
// ObjectStore: the in-memory object table D that every index and engine is
// built over. Owns the objects and the shared Vocabulary.

#ifndef YASK_STORAGE_OBJECT_STORE_H_
#define YASK_STORAGE_OBJECT_STORE_H_

#include <memory>
#include <string>
#include <vector>

#include "src/common/geometry.h"
#include "src/common/status.h"
#include "src/common/vocabulary.h"
#include "src/storage/object.h"

namespace yask {

/// The database of spatial objects D (§2.1). Append-only.
///
/// Ids are dense: `store.Get(i).id == i`. After loading, the store is
/// read-only and safe to share across threads.
class ObjectStore {
 public:
  ObjectStore() : vocab_(std::make_shared<Vocabulary>()) {}

  /// Creates a store sharing an existing vocabulary.
  explicit ObjectStore(std::shared_ptr<Vocabulary> vocab)
      : vocab_(std::move(vocab)) {}

  /// Appends an object; assigns and returns its id. The id field of `object`
  /// is overwritten.
  ObjectId Add(SpatialObject object);

  /// Convenience: appends from parts.
  ObjectId Add(Point loc, KeywordSet doc, std::string name = "");

  /// Pre-sizes the object table (bulk loads and snapshot restore).
  void Reserve(size_t n) { objects_.reserve(n); }

  /// Installs a fully-decoded object table wholesale (the snapshot-load
  /// hook; stripes are decoded in parallel straight into the vector). Each
  /// object's id must equal its position. Recomputes the bounds. The store
  /// must be empty.
  void AdoptObjects(std::vector<SpatialObject> objects);

  const SpatialObject& Get(ObjectId id) const { return objects_[id]; }

  size_t size() const { return objects_.size(); }
  bool empty() const { return objects_.empty(); }

  const std::vector<SpatialObject>& objects() const { return objects_; }

  Vocabulary* mutable_vocab() { return vocab_.get(); }
  const Vocabulary& vocab() const { return *vocab_; }
  std::shared_ptr<Vocabulary> shared_vocab() const { return vocab_; }

  /// The MBR of all object locations; empty rect when the store is empty.
  /// Used to normalise SDist (Eqn. (1) requires SDist ∈ [0,1]).
  const Rect& bounds() const { return bounds_; }

  /// Finds the first object whose name equals `name` (demo lookups);
  /// kInvalidObject when absent.
  ObjectId FindByName(const std::string& name) const;

  /// Diameter of the bounding box; the default SDist normalisation constant.
  double BoundsDiagonal() const;

 private:
  std::shared_ptr<Vocabulary> vocab_;
  std::vector<SpatialObject> objects_;
  Rect bounds_ = Rect::Empty();
};

}  // namespace yask

#endif  // YASK_STORAGE_OBJECT_STORE_H_
