#include "src/common/string_util.h"

#include <cctype>
#include <charconv>
#include <cstdlib>

namespace yask {

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::vector<std::string> SplitWhitespace(std::string_view s) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string ToLowerAscii(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

bool ParseDouble(std::string_view s, double* out) {
  s = Trim(s);
  if (s.empty()) return false;
  // std::from_chars for double is available in libstdc++ >= 11.
  std::string buf(s);
  char* end = nullptr;
  const double v = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size()) return false;
  *out = v;
  return true;
}

bool ParseUint64(std::string_view s, uint64_t* out) {
  s = Trim(s);
  if (s.empty()) return false;
  uint64_t v = 0;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc() || ptr != s.data() + s.size()) return false;
  *out = v;
  return true;
}

}  // namespace yask
