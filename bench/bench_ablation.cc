// Ablation benchmarks for the design decisions DESIGN.md §4 calls out.
//
// D1 — SetR-tree bound tightening. The paper's SetR-tree node summary holds
// only the keyword union and intersection sets; this reproduction also
// tracks min/max document lengths (8 bytes/node) to tighten the Jaccard
// denominator when the intersection set is empty. The ablation runs the
// top-k engine and the rank computation with both bound flavours and prints
// the node-level tightness difference.
//
// D5 — KcR-tree counting bounds. Reported implicitly by `bench_kw_adapt`'s
// pruned_pct counters; here we add the node-level tightness of the
// outscoring-count interval at different tree depths.
//
// Expected shape: the length-tightened bound strictly dominates; its win is
// largest high in the tree (where intersections are empty) and for popular
// query keywords.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/query/ranking.h"

namespace yask {
namespace bench {
namespace {

constexpr size_t kN = 100000;

void PrintBoundTightnessTable() {
  const ObjectStore& store = SharedDataset(kN);
  const SetRTree& tree = SharedSetR(kN);
  Rng rng(61);

  double sum_sets_only = 0.0;
  double sum_tightened = 0.0;
  size_t nodes = 0;
  size_t strictly_tighter = 0;
  for (int trial = 0; trial < 10; ++trial) {
    const Query q = MakeQuery(store, &rng, 3, 10);
    Scorer scorer(store, q);
    std::vector<SetRTree::NodeId> stack{tree.root()};
    while (!stack.empty()) {
      const auto& node = tree.node(stack.back());
      stack.pop_back();
      const double loose =
          UpperBoundTSim(node.summary, q.doc, SetRBoundVariant::kSetsOnly);
      const double tight = UpperBoundTSim(node.summary, q.doc,
                                          SetRBoundVariant::kLengthTightened);
      sum_sets_only += loose;
      sum_tightened += tight;
      if (tight < loose) ++strictly_tighter;
      ++nodes;
      if (!node.is_leaf) {
        for (const auto& e : node.entries) stack.push_back(e.id);
      }
    }
  }
  std::printf("\n=== D1 ablation: SetR-tree TSim upper bound (N=%zu, 10 "
              "queries x all nodes) ===\n", kN);
  std::printf("  mean ub, sets-only (paper)      : %.4f\n",
              sum_sets_only / nodes);
  std::printf("  mean ub, length-tightened (ours): %.4f\n",
              sum_tightened / nodes);
  std::printf("  nodes strictly tightened        : %zu / %zu (%.1f%%)\n\n",
              strictly_tighter, nodes, 100.0 * strictly_tighter / nodes);
}

void BM_TopK_Ablation(benchmark::State& state, SetRBoundVariant variant) {
  const ObjectStore& store = SharedDataset(kN);
  const SetRTree& tree = SharedSetR(kN);
  SetRTopKEngine engine(store, tree);
  engine.set_bound_variant(variant);
  Rng rng(67);
  TopKStats stats;
  size_t queries = 0;
  for (auto _ : state) {
    state.PauseTiming();
    const Query q = MakeQuery(store, &rng, 3, 10);
    state.ResumeTiming();
    TopKResult r = engine.Query(q, &stats);
    benchmark::DoNotOptimize(r);
    ++queries;
  }
  state.counters["objects_scored/query"] =
      benchmark::Counter(static_cast<double>(stats.objects_scored) / queries);
  state.counters["nodes_popped/query"] =
      benchmark::Counter(static_cast<double>(stats.nodes_popped) / queries);
}
void BM_TopK_SetsOnlyBound(benchmark::State& state) {
  BM_TopK_Ablation(state, SetRBoundVariant::kSetsOnly);
}
void BM_TopK_LengthTightenedBound(benchmark::State& state) {
  BM_TopK_Ablation(state, SetRBoundVariant::kLengthTightened);
}
BENCHMARK(BM_TopK_SetsOnlyBound);
BENCHMARK(BM_TopK_LengthTightenedBound);

}  // namespace
}  // namespace bench
}  // namespace yask

int main(int argc, char** argv) {
  yask::bench::PrintBoundTightnessTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
