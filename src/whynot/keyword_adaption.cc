#include "src/whynot/keyword_adaption.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <memory>

#include "src/query/scoring.h"
#include "src/whynot/whynot_oracle.h"

namespace yask {

namespace {

/// Iterates all size-`r` index combinations of {0..n-1} in lexicographic
/// order, invoking `fn(indices)`.
template <typename Fn>
void ForEachCombination(size_t n, size_t r, Fn fn) {
  if (r > n) return;
  if (r == 0) {
    const std::vector<size_t> empty;
    fn(empty);
    return;
  }
  std::vector<size_t> idx(r);
  for (size_t i = 0; i < r; ++i) idx[i] = i;
  while (true) {
    fn(idx);
    // Advance to the next combination.
    size_t i = r;
    while (i > 0) {
      --i;
      if (idx[i] != i + n - r) break;
      if (i == 0) return;
    }
    if (idx[i] == i + n - r) return;
    ++idx[i];
    for (size_t k = i + 1; k < r; ++k) idx[k] = idx[k - 1] + 1;
  }
}

}  // namespace

std::vector<KeywordSet> GenerateCandidatesAtDistance(
    const KeywordSet& query_doc, const KeywordSet& insertable,
    size_t distance) {
  std::vector<KeywordSet> out;
  const std::vector<TermId>& del_pool = query_doc.ids();
  const std::vector<TermId>& ins_pool = insertable.ids();
  for (size_t d = 0; d <= std::min(distance, del_pool.size()); ++d) {
    const size_t ins = distance - d;
    if (ins > ins_pool.size()) continue;
    ForEachCombination(del_pool.size(), d, [&](const std::vector<size_t>& di) {
      KeywordSet base = query_doc;
      for (size_t i : di) base.Erase(del_pool[i]);
      ForEachCombination(
          ins_pool.size(), ins, [&](const std::vector<size_t>& ii) {
            KeywordSet cand = base;
            for (size_t i : ii) cand.Insert(ins_pool[i]);
            if (!cand.empty()) out.push_back(std::move(cand));
          });
    });
  }
  return out;
}

Result<RefinedKeywordQuery> AdaptKeywords(
    const WhyNotOracle& oracle, const Query& query,
    const std::vector<ObjectId>& missing,
    const KeywordAdaptOptions& options) {
  if (Status s = query.Validate(); !s.ok()) return s;
  if (missing.empty()) {
    return Status::InvalidArgument("missing object set must be non-empty");
  }
  if (options.lambda < 0.0 || options.lambda > 1.0) {
    return Status::InvalidArgument("lambda must lie in [0, 1]");
  }
  std::vector<ObjectId> m_ids = missing;
  std::sort(m_ids.begin(), m_ids.end());
  m_ids.erase(std::unique(m_ids.begin(), m_ids.end()), m_ids.end());
  for (ObjectId id : m_ids) {
    if (id >= oracle.size()) {
      return Status::NotFound("missing object id " + std::to_string(id) +
                              " is not in the database");
    }
  }

  RefinedKeywordQuery out;
  out.refined = query;
  KeywordAdaptStats& stats = out.stats;
  const double lambda = options.lambda;
  const bool use_tree = options.mode == KwAdaptMode::kBoundAndPrune;

  // M.doc = union of the missing objects' documents; the normaliser of ∆doc.
  KeywordSet m_doc;
  for (ObjectId id : m_ids) {
    m_doc = KeywordSet::Union(m_doc, oracle.Object(id).doc);
  }
  const KeywordSet universe = KeywordSet::Union(query.doc, m_doc);
  const KeywordSet insertable = KeywordSet::Difference(m_doc, query.doc);
  const size_t doc_norm = universe.size();

  // --- R(M, q) under the original query (tie-aware exact ranks). A scan is
  // used in both modes: exact ranking of one object is cache-friendly O(n),
  // and measurement shows the KcR bounds prune too weakly for popular query
  // keywords to beat it (the bounds earn their keep pruning *candidates*,
  // where no exact rank is needed at all — see EXPERIMENTS.md E8/E10). ---
  size_t r0 = 0;
  for (ObjectId id : m_ids) {
    r0 = std::max(r0, oracle.OutscoringCount(query, id, &stats) + 1);
  }
  out.original_rank = r0;
  if (r0 <= query.k) {
    out.refined_rank = r0;
    out.already_in_result = true;
    return out;
  }

  // --- Seed: the pure-k refinement (doc unchanged, k' = r0, cost λ). ---
  struct Best {
    KeywordSet doc;
    size_t rank;
    PenaltyBreakdown penalty;
    size_t delta_doc;
    // Whether `rank` is the exact R(M, q'). A candidate's penalty can pin
    // (∆k interval collapsed at 0) while its rank interval is still open;
    // the winner's exact rank is recomputed once at the end so the reported
    // refined_rank never depends on how the bounds happened to tighten.
    bool rank_exact;
  };
  Best best{query.doc, r0, KeywordPenalty(lambda, query, 0, doc_norm, r0, r0),
            0, true};

  const double norm_k = static_cast<double>(r0) - query.k;  // > 0 here.
  auto penalty_from_rank = [&](size_t delta_doc, size_t rank) {
    return KeywordPenalty(lambda, query, delta_doc, doc_norm, r0, rank);
  };
  auto floor_of = [&](size_t delta_doc) {
    return doc_norm == 0
               ? 0.0
               : (1.0 - lambda) * static_cast<double>(delta_doc) / doc_norm;
  };
  auto k_term_of_rank_lb = [&](size_t rank_lb) {
    const size_t dk = rank_lb > query.k ? rank_lb - query.k : 0;
    return lambda * static_cast<double>(dk) / norm_k;
  };
  // Deterministic preference among equal penalties: smaller ∆doc, then
  // lexicographically smaller keyword id vector.
  auto offer_best = [&](const KeywordSet& doc, size_t rank, size_t delta_doc,
                        const PenaltyBreakdown& pen, bool rank_exact) {
    const bool better =
        pen.value < best.penalty.value ||
        (pen.value == best.penalty.value &&
         (delta_doc < best.delta_doc ||
          (delta_doc == best.delta_doc && doc.ids() < best.doc.ids())));
    if (better) best = Best{doc, rank, pen, delta_doc, rank_exact};
  };

  // --- Enumerate candidates by increasing ∆doc. ---
  const size_t max_distance_pool = query.doc.size() + insertable.size();
  size_t e_cap = options.max_edit_distance == 0
                     ? max_distance_pool
                     : std::min(options.max_edit_distance, max_distance_pool);

  bool done = false;
  for (size_t e = 1; e <= e_cap && !done; ++e) {
    if (floor_of(e) >= best.penalty.value) break;  // Whole level cut.
    for (KeywordSet& cand : GenerateCandidatesAtDistance(query.doc,
                                                         insertable, e)) {
      if (options.max_candidates != 0 &&
          stats.candidates_generated >= options.max_candidates) {
        stats.truncated = true;
        done = true;
        break;
      }
      ++stats.candidates_generated;
      const double floor = floor_of(e);
      if (floor >= best.penalty.value) {
        ++stats.candidates_pruned_floor;
        continue;
      }

      Query cand_query = query;
      cand_query.doc = cand;

      if (!use_tree) {
        // Basic: exact ranks by full scans.
        size_t rank = 0;
        for (ObjectId id : m_ids) {
          rank = std::max(
              rank, oracle.OutscoringCount(cand_query, id, &stats) + 1);
        }
        ++stats.candidates_resolved;
        offer_best(cand, rank, e, penalty_from_rank(e, rank),
                   /*rank_exact=*/true);
        continue;
      }

      // Bound-and-prune: per-missing-object progressive rank intervals
      // (each probe sums per-shard KcR count intervals behind the seam).
      std::vector<std::unique_ptr<RankProbe>> probes;
      probes.reserve(m_ids.size());
      for (ObjectId id : m_ids) {
        probes.push_back(oracle.ProbeRank(cand_query, id, &stats));
      }
      while (true) {
        size_t rank_lb = 0;
        size_t rank_ub = 0;
        for (const auto& p : probes) {
          rank_lb = std::max(rank_lb, p->lower());
          rank_ub = std::max(rank_ub, p->upper());
        }
        // Penalty interval from the rank interval. The cut is STRICT: a
        // candidate whose penalty lower bound merely ties the best keeps
        // refining until the ∆k pins, so exact-tie candidates always reach
        // offer_best and its layout-independent tie order — bounds tighten
        // differently over different shard layouts, and a >= cut here would
        // let that difference decide ties.
        const double pen_lb = k_term_of_rank_lb(rank_lb) + floor;
        if (pen_lb > best.penalty.value) {
          ++stats.candidates_pruned_bounds;
          break;
        }
        const size_t dk_lb = rank_lb > query.k ? rank_lb - query.k : 0;
        const size_t dk_ub = rank_ub > query.k ? rank_ub - query.k : 0;
        if (dk_lb == dk_ub) {
          // Penalty pinned exactly (∆k equal at both ends).
          ++stats.candidates_resolved;
          offer_best(cand, rank_ub, e, penalty_from_rank(e, rank_ub),
                     /*rank_exact=*/rank_lb == rank_ub);
          break;
        }
        // Refine the missing object driving the upper rank the hardest by
        // one tree level.
        RankProbe* widest = nullptr;
        for (const auto& p : probes) {
          if (p->resolved()) continue;
          if (widest == nullptr || p->upper() > widest->upper()) {
            widest = p.get();
          }
        }
        if (widest == nullptr) {
          // All resolved yet ∆k interval not collapsed: ranks are exact now.
          ++stats.candidates_resolved;
          offer_best(cand, rank_ub, e, penalty_from_rank(e, rank_ub),
                     /*rank_exact=*/true);
          break;
        }
        widest->RefineLevel();
      }
    }
  }

  if (!best.rank_exact) {
    // The winner's ∆k pinned at 0 before its rank interval collapsed (the
    // candidate revives M inside the original k). Resolve the exact rank so
    // refined_rank is the true R(M, q') in every layout.
    Query best_query = query;
    best_query.doc = best.doc;
    size_t rank = 0;
    for (ObjectId id : m_ids) {
      rank = std::max(rank,
                      oracle.OutscoringCount(best_query, id, &stats) + 1);
    }
    best.rank = rank;
  }

  out.refined.doc = best.doc;
  out.refined.k =
      static_cast<uint32_t>(std::max<size_t>(query.k, best.rank));
  out.refined_rank = best.rank;
  out.penalty = best.penalty;
  return out;
}

Result<RefinedKeywordQuery> AdaptKeywords(
    const ObjectStore& store, const KcRTree& tree, const Query& query,
    const std::vector<ObjectId>& missing,
    const KeywordAdaptOptions& options) {
  const LocalWhyNotOracle oracle(store, /*setr=*/nullptr, &tree);
  return AdaptKeywords(oracle, query, missing, options);
}

}  // namespace yask
