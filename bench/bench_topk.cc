// Experiment E2 (DESIGN.md): the spatial keyword top-k engine.
//
// Regenerates the engine comparison underlying §3.3 / ref [4]: the SetR-tree
// best-first engine versus the inverted-index + R-tree hybrid baseline versus
// a full linear scan, swept over dataset size N and result size k.
//
// Expected shape (paper): the index engines beat the scan by orders of
// magnitude at large N; the SetR-tree engine touches a small fraction of the
// corpus (see the objects_scored counter).

#include <benchmark/benchmark.h>

#include <map>
#include <memory>

#include "bench/bench_util.h"
#include "src/index/ir_tree.h"

namespace yask {
namespace bench {
namespace {

constexpr size_t kQueryKeywords = 3;

void BM_TopK_SetRTree(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const uint32_t k = static_cast<uint32_t>(state.range(1));
  const ObjectStore& store = SharedDataset(n);
  const SetRTree& tree = SharedSetR(n);
  SetRTopKEngine engine(store, tree);
  Rng rng(1);
  TopKStats stats;
  size_t queries = 0;
  for (auto _ : state) {
    state.PauseTiming();
    const Query q = MakeQuery(store, &rng, kQueryKeywords, k);
    state.ResumeTiming();
    TopKResult r = engine.Query(q, &stats);
    benchmark::DoNotOptimize(r);
    ++queries;
  }
  state.counters["objects_scored/query"] =
      benchmark::Counter(static_cast<double>(stats.objects_scored) / queries);
  state.counters["nodes_popped/query"] =
      benchmark::Counter(static_cast<double>(stats.nodes_popped) / queries);
}
BENCHMARK(BM_TopK_SetRTree)
    ->ArgNames({"N", "k"})
    ->Args({10000, 10})
    ->Args({50000, 10})
    ->Args({100000, 10})
    ->Args({200000, 10})
    ->Args({100000, 1})
    ->Args({100000, 20})
    ->Args({100000, 50});

void BM_TopK_InvertedHybrid(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const uint32_t k = static_cast<uint32_t>(state.range(1));
  const ObjectStore& store = SharedDataset(n);
  const InvertedIndex& inverted = SharedInverted(n);
  const RTree& rtree = SharedRTree(n);
  InvertedTopKEngine engine(store, inverted, rtree);
  Rng rng(1);
  TopKStats stats;
  size_t queries = 0;
  for (auto _ : state) {
    state.PauseTiming();
    const Query q = MakeQuery(store, &rng, kQueryKeywords, k);
    state.ResumeTiming();
    TopKResult r = engine.Query(q, &stats);
    benchmark::DoNotOptimize(r);
    ++queries;
  }
  state.counters["objects_scored/query"] =
      benchmark::Counter(static_cast<double>(stats.objects_scored) / queries);
}
BENCHMARK(BM_TopK_InvertedHybrid)
    ->ArgNames({"N", "k"})
    ->Args({10000, 10})
    ->Args({50000, 10})
    ->Args({100000, 10})
    ->Args({200000, 10});

void BM_TopK_IrTreeCosine(benchmark::State& state) {
  // The ref [4] index family under the cosine text model (see ir_tree.h):
  // not directly comparable to the Jaccard engines' scores, but it shows the
  // pruning power the IR-tree regains once its per-term bound applies.
  const size_t n = static_cast<size_t>(state.range(0));
  const uint32_t k = static_cast<uint32_t>(state.range(1));
  const ObjectStore& store = SharedDataset(n);
  static std::map<size_t, std::unique_ptr<IdfTable>>* idf_cache =
      new std::map<size_t, std::unique_ptr<IdfTable>>();
  static std::map<size_t, std::unique_ptr<IrTree>>* tree_cache =
      new std::map<size_t, std::unique_ptr<IrTree>>();
  if (!idf_cache->count(n)) {
    idf_cache->emplace(n, std::make_unique<IdfTable>(store));
    auto tree = std::make_unique<IrTree>(
        &store, RTreeOptions{}, IrSummary::WithIdf(idf_cache->at(n).get()));
    tree->BulkLoad();
    tree_cache->emplace(n, std::move(tree));
  }
  IrTopKEngine engine(store, *idf_cache->at(n), *tree_cache->at(n));
  Rng rng(1);
  TopKStats stats;
  size_t queries = 0;
  for (auto _ : state) {
    state.PauseTiming();
    const Query q = MakeQuery(store, &rng, kQueryKeywords, k);
    state.ResumeTiming();
    TopKResult r = engine.Query(q);
    benchmark::DoNotOptimize(r);
    ++queries;
  }
  (void)stats;
}
BENCHMARK(BM_TopK_IrTreeCosine)
    ->ArgNames({"N", "k"})
    ->Args({10000, 10})
    ->Args({100000, 10});

void BM_TopK_Scan(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const uint32_t k = static_cast<uint32_t>(state.range(1));
  const ObjectStore& store = SharedDataset(n);
  Rng rng(1);
  for (auto _ : state) {
    state.PauseTiming();
    const Query q = MakeQuery(store, &rng, kQueryKeywords, k);
    state.ResumeTiming();
    TopKResult r = TopKScan(store, q);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_TopK_Scan)
    ->ArgNames({"N", "k"})
    ->Args({10000, 10})
    ->Args({50000, 10})
    ->Args({100000, 10})
    ->Args({200000, 10});

}  // namespace
}  // namespace bench
}  // namespace yask

BENCHMARK_MAIN();
