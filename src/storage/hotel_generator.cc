#include "src/storage/hotel_generator.h"

#include <array>
#include <string>
#include <string_view>

#include "src/common/random.h"

namespace yask {

namespace {

// Keyword pools. Order matters: earlier entries are more popular.
constexpr std::array<std::string_view, 12> kCategories = {
    "hotel", "hostel", "guesthouse", "resort", "apartment", "inn",
    "motel", "boutique", "serviced", "lodge", "capsule", "villa"};

constexpr std::array<std::string_view, 30> kFacilities = {
    "wifi",      "breakfast", "parking",  "pool",       "gym",
    "restaurant", "bar",      "spa",      "laundry",    "aircon",
    "elevator",  "reception", "luggage",  "concierge",  "minibar",
    "balcony",   "kitchen",   "terrace",  "sauna",      "jacuzzi",
    "shuttle",   "business",  "meeting",  "babysitting", "rooftop",
    "garden",    "karaoke",   "valet",    "butler",     "helipad"};

constexpr std::array<std::string_view, 24> kComments = {
    "clean",    "comfortable", "friendly", "quiet",    "spacious",
    "modern",   "cozy",        "central",  "cheap",    "luxury",
    "romantic", "family",      "stylish",  "charming", "elegant",
    "seaview",  "harbourview", "historic", "trendy",   "budget",
    "upscale",  "convenient",  "scenic",   "exclusive"};

constexpr std::array<std::string_view, 16> kNameStems = {
    "Harbour Grand", "Victoria Peak", "Golden Dragon", "Kowloon Star",
    "Pearl River",   "Jade Garden",   "Lucky Plaza",   "Royal Orchid",
    "Silver Bay",    "Emerald Court", "Sunrise Tower", "Bauhinia",
    "Ocean Gate",    "Lion Rock",     "Temple Street", "Dragon Boat"};

struct District {
  const char* name;
  double lon, lat;   // Centre.
  double stddev;     // Spread in degrees.
  double weight;     // Relative hotel density.
};

// Five hotel districts; Central/TST dominate, as in the real crawl.
constexpr std::array<District, 5> kDistricts = {{
    {"central", 114.158, 22.281, 0.012, 0.30},
    {"tsimshatsui", 114.172, 22.298, 0.010, 0.30},
    {"causewaybay", 114.185, 22.280, 0.008, 0.18},
    {"mongkok", 114.169, 22.319, 0.010, 0.14},
    {"airport", 113.936, 22.316, 0.015, 0.08},
}};

}  // namespace

Rect HongKongBounds() {
  return Rect::FromBounds(113.83, 22.15, 114.41, 22.56);
}

ObjectStore GenerateHotelDataset(const HotelDatasetSpec& spec) {
  ObjectStore store;
  Rng rng(spec.seed);
  Vocabulary* vocab = store.mutable_vocab();

  // Intern pools up-front so ids are stable regardless of draw order.
  for (auto w : kCategories) vocab->Intern(w);
  for (auto w : kFacilities) vocab->Intern(w);
  for (auto w : kComments) vocab->Intern(w);

  // Zipf samplers: categories are near-deterministic ("hotel"), facilities
  // and comments moderately skewed.
  ZipfSampler cat_sampler(kCategories.size(), 1.6);
  ZipfSampler fac_sampler(kFacilities.size(), 0.9);
  ZipfSampler com_sampler(kComments.size(), 0.8);

  const Rect frame = HongKongBounds();

  for (size_t i = 0; i < spec.num_hotels; ++i) {
    // District by weighted draw.
    double u = rng.NextDouble();
    const District* d = &kDistricts.back();
    for (const District& cand : kDistricts) {
      if (u < cand.weight) {
        d = &cand;
        break;
      }
      u -= cand.weight;
    }
    Point loc;
    loc.x = std::clamp(rng.NextGaussian(d->lon, d->stddev), frame.min_x,
                       frame.max_x);
    loc.y = std::clamp(rng.NextGaussian(d->lat, d->stddev), frame.min_y,
                       frame.max_y);

    KeywordSet doc;
    doc.Insert(vocab->Intern(kCategories[cat_sampler.Sample(&rng)]));
    doc.Insert(vocab->Intern(d->name));  // District keyword ("central", ...).
    const size_t n_fac = static_cast<size_t>(rng.NextInt(2, 6));
    for (size_t j = 0; j < n_fac; ++j) {
      doc.Insert(vocab->Intern(kFacilities[fac_sampler.Sample(&rng)]));
    }
    const size_t n_com = static_cast<size_t>(rng.NextInt(1, 4));
    for (size_t j = 0; j < n_com; ++j) {
      doc.Insert(vocab->Intern(kComments[com_sampler.Sample(&rng)]));
    }

    std::string name(kNameStems[rng.NextBounded(kNameStems.size())]);
    name += " Hotel ";
    name += std::to_string(i);
    store.Add(loc, std::move(doc), std::move(name));
  }
  return store;
}

}  // namespace yask
