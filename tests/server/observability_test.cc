// Observability acceptance: the /metrics and /trace surfaces across the
// three corpus layouts (in-process Corpus, in-process ShardedCorpus, remote
// coordinator over a ShardService fleet).
//   * /query and /whynot payloads stay BYTE-identical across layouts with
//     tracing always on — instrumentation must not leak into the contract;
//   * every layout records the same engine-level span skeleton (query/topk,
//     whynot/*, kw/refine_level) for the same request shape;
//   * the remote layout additionally shows per-replica rpc spans AND
//     shard-side child spans stitched in by the propagated trace id, with
//     each shard span's parent being a coordinator rpc span;
//   * GET /metrics exposes the expected families on the coordinator and on
//     the shard server, and /log hands out the trace ids /trace serves;
//   * a slow-trace threshold of 0 pins every trace.

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/corpus/corpus.h"
#include "src/corpus/remote_corpus.h"
#include "src/corpus/sharded_corpus.h"
#include "src/server/json.h"
#include "src/server/shard_protocol.h"
#include "src/server/shard_service.h"
#include "src/server/yask_service.h"
#include "src/storage/hotel_generator.h"

namespace yask {
namespace {

constexpr char kQueryBody[] =
    "{\"x\":114.158,\"y\":22.281,\"keywords\":\"clean comfortable\",\"k\":3}";
constexpr char kWhyNotBody[] =
    "{\"query_id\":1,\"missing\":[81],\"model\":\"both\"}";

struct ShardFleet {
  std::vector<std::unique_ptr<ShardService>> services;
  std::vector<std::string> endpoints;

  explicit ShardFleet(const ShardedCorpus& corpus) {
    for (size_t s = 0; s < corpus.num_shards(); ++s) {
      ShardService::Info info;
      info.shard_index = static_cast<uint32_t>(s);
      info.shard_count = static_cast<uint32_t>(corpus.num_shards());
      info.global_bounds = corpus.bounds();
      info.dist_norm = corpus.dist_norm();
      info.to_global = corpus.shard_global_ids(s);
      info.router = corpus.router_description();
      services.push_back(
          std::make_unique<ShardService>(corpus.shard(s), std::move(info)));
      EXPECT_TRUE(services.back()->Start().ok());
      endpoints.push_back("127.0.0.1:" +
                          std::to_string(services.back()->port()));
    }
  }

  ~ShardFleet() {
    for (auto& service : services) service->Stop();
  }
};

std::string Fetch(uint16_t port, const std::string& method,
                  const std::string& path, const std::string& body = "",
                  int expect_status = 200) {
  int status = 0;
  auto result = HttpFetch(port, method, path, body, &status);
  EXPECT_TRUE(result.ok()) << method << " " << path;
  EXPECT_EQ(status, expect_status) << method << " " << path << ": "
                                   << (result.ok() ? *result : "");
  return result.ok() ? *result : "";
}

/// Runs one query + one why-not and returns the why-not's trace id (from
/// GET /log) plus both payloads with the timing field stripped.
struct Driven {
  std::string query_payload;
  std::string whynot_payload;
  std::string query_trace_id;
  std::string whynot_trace_id;
};

JsonValue StripTiming(const JsonValue& v) {
  if (v.is_object()) {
    JsonValue out = JsonValue::MakeObject();
    for (const auto& [key, value] : v.object_items()) {
      if (key == "response_millis") continue;
      out.Set(key, StripTiming(value));
    }
    return out;
  }
  if (v.is_array()) {
    JsonValue out = JsonValue::MakeArray();
    for (const JsonValue& item : v.array_items()) {
      out.Append(StripTiming(item));
    }
    return out;
  }
  return v;
}

std::string Normalized(const std::string& payload) {
  auto parsed = JsonValue::Parse(payload);
  EXPECT_TRUE(parsed.ok()) << payload;
  if (!parsed.ok()) return payload;
  return StripTiming(parsed.value()).Dump();
}

Driven Drive(const YaskService& service) {
  Driven out;
  out.query_payload = Normalized(
      Fetch(service.port(), "POST", "/query", kQueryBody));
  out.whynot_payload = Normalized(
      Fetch(service.port(), "POST", "/whynot", kWhyNotBody));

  const std::string log = Fetch(service.port(), "GET", "/log");
  auto parsed = JsonValue::Parse(log);
  EXPECT_TRUE(parsed.ok());
  const JsonValue& entries = parsed->Get("entries");
  EXPECT_EQ(entries.size(), 2u);
  out.query_trace_id = entries.At(0).Get("trace_id").as_string();
  out.whynot_trace_id = entries.At(1).Get("trace_id").as_string();
  EXPECT_EQ(out.query_trace_id.size(), 16u);
  EXPECT_EQ(out.whynot_trace_id.size(), 16u);
  EXPECT_NE(out.query_trace_id, out.whynot_trace_id);
  return out;
}

JsonValue FetchTrace(const YaskService& service, const std::string& id) {
  const std::string body = Fetch(service.port(), "GET", "/trace/" + id);
  auto parsed = JsonValue::Parse(body);
  EXPECT_TRUE(parsed.ok()) << body;
  EXPECT_EQ(parsed->Get("trace_id").as_string(), id);
  return parsed.ok() ? parsed.value() : JsonValue();
}

/// The layout-independent span-name skeleton of a trace: engine-level
/// stages only (transport spans — rpc, fan-out, shard endpoints — are
/// remote-mode extras by design).
std::multiset<std::string> Skeleton(const JsonValue& trace) {
  std::multiset<std::string> names;
  for (const JsonValue& span : trace.Get("spans").array_items()) {
    const std::string& name = span.Get("name").as_string();
    if (name.rfind("whynot/", 0) == 0 || name.rfind("kw/", 0) == 0 ||
        name.rfind("query/", 0) == 0 || name.rfind("POST ", 0) == 0) {
      names.insert(name);
    }
  }
  return names;
}

TEST(ObservabilityTest, PayloadParityAndSpanSkeletonAcrossLayouts) {
  const ObjectStore store = GenerateHotelDataset();

  // Layout 1: one full corpus.
  const Corpus corpus = CorpusBuilder().Build(GenerateHotelDataset());
  YaskService single(corpus);
  ASSERT_TRUE(single.Start().ok());
  const Driven single_run = Drive(single);

  // Layout 2: in-process sharded.
  const ShardedCorpus sharded =
      ShardedCorpus::Partition(store, GridShardRouter::Fit(store, 2));
  YaskService local(sharded);
  ASSERT_TRUE(local.Start().ok());
  const Driven local_run = Drive(local);

  // Layout 3: remote coordinator over a 2-shard fleet.
  ShardFleet fleet(sharded);
  auto connected = RemoteCorpus::Connect(fleet.endpoints);
  ASSERT_TRUE(connected.ok()) << connected.status().ToString();
  const RemoteCorpus remote_corpus = std::move(connected).value();
  YaskService remote(remote_corpus);
  ASSERT_TRUE(remote.Start().ok());
  const Driven remote_run = Drive(remote);

  // Byte parity with tracing on: instrumentation never leaks into payloads.
  EXPECT_EQ(single_run.query_payload, local_run.query_payload);
  EXPECT_EQ(single_run.query_payload, remote_run.query_payload);
  EXPECT_EQ(single_run.whynot_payload, local_run.whynot_payload);
  EXPECT_EQ(single_run.whynot_payload, remote_run.whynot_payload);

  // Same engine-level span skeleton for the same request shape.
  const JsonValue single_trace = FetchTrace(single, single_run.whynot_trace_id);
  const JsonValue local_trace = FetchTrace(local, local_run.whynot_trace_id);
  const JsonValue remote_trace = FetchTrace(remote, remote_run.whynot_trace_id);
  const auto skeleton = Skeleton(single_trace);
  EXPECT_EQ(skeleton, Skeleton(local_trace));
  EXPECT_EQ(skeleton, Skeleton(remote_trace));
  EXPECT_EQ(skeleton.count("POST /whynot"), 1u);
  EXPECT_EQ(skeleton.count("whynot/explain"), 1u);
  EXPECT_EQ(skeleton.count("whynot/preference"), 1u);
  EXPECT_EQ(skeleton.count("whynot/keyword"), 1u);
  EXPECT_EQ(skeleton.count("whynot/refined_topk"), 1u);

  // The query trace carries the top-k stage in every layout.
  const JsonValue query_trace = FetchTrace(single, single_run.query_trace_id);
  EXPECT_EQ(Skeleton(query_trace).count("query/topk"), 1u);

  // Remote-only structure: rpc spans on the coordinator, shard-side child
  // spans stitched under them by the propagated trace id.
  std::set<std::string> coordinator_span_ids;
  size_t rpc_spans = 0;
  size_t shard_spans = 0;
  size_t stitched = 0;
  for (const JsonValue& span : remote_trace.Get("spans").array_items()) {
    if (span.Get("node").as_string() == "coordinator") {
      coordinator_span_ids.insert(span.Get("id").as_string());
      if (span.Get("name").as_string().rfind("rpc ", 0) == 0) ++rpc_spans;
    }
  }
  for (const JsonValue& span : remote_trace.Get("spans").array_items()) {
    if (span.Get("node").as_string().rfind("shard", 0) == 0) {
      ++shard_spans;
      if (coordinator_span_ids.count(span.Get("parent").as_string()) > 0) {
        ++stitched;
      }
    }
  }
  EXPECT_GT(rpc_spans, 0u);
  EXPECT_GT(shard_spans, 0u);
  // Shard-side root spans hang off coordinator rpc spans. Not every shard
  // span need stitch: past the coordinator's span cap, rpc spans are shed
  // while the header (and thus the shard-side span) still exists.
  EXPECT_GT(stitched, 0u);
  EXPECT_LE(stitched, shard_spans);

  // An unknown trace id is a clean 404.
  Fetch(remote.port(), "GET", "/trace/deadbeefdeadbeef", "", 404);

  single.Stop();
  local.Stop();
  remote.Stop();
}

TEST(ObservabilityTest, MetricsFamiliesOnCoordinatorAndShard) {
  const ObjectStore store = GenerateHotelDataset();
  const ShardedCorpus sharded =
      ShardedCorpus::Partition(store, GridShardRouter::Fit(store, 2));
  ShardFleet fleet(sharded);
  auto connected = RemoteCorpus::Connect(fleet.endpoints);
  ASSERT_TRUE(connected.ok());
  const RemoteCorpus remote_corpus = std::move(connected).value();
  YaskService service(remote_corpus);
  ASSERT_TRUE(service.Start().ok());
  Drive(service);

  // Coordinator: per-endpoint HTTP metrics, stage histograms, and the
  // remote corpus's replica/shard RPC families in ONE exposition.
  const std::string metrics = Fetch(service.port(), "GET", "/metrics");
  for (const char* needle : {
           "# TYPE yask_http_requests_total counter",
           "yask_http_requests_total{code=\"200\",endpoint=\"/query\"}",
           "yask_http_requests_total{code=\"200\",endpoint=\"/whynot\"}",
           "# TYPE yask_http_request_ms histogram",
           "# TYPE yask_stage_ms histogram",
           "yask_stage_ms_bucket{stage=\"whynot/keyword\",le=\"+Inf\"}",
           "yask_stage_ms_bucket{stage=\"query/topk\",le=\"+Inf\"}",
           "# TYPE yask_replica_rpc_latency_ms histogram",
           "# TYPE yask_replica_requests_total counter",
           "# TYPE yask_shard_rpc_latency_ms histogram",
           "# TYPE yask_failovers_total counter",
           "yask_failovers_total{shard=\"0\"} 0",
           "# TYPE yask_session_replays_total counter",
           "# TYPE yask_replicas_cooling gauge",
           "# TYPE yask_cached_queries gauge",
           "# TYPE yask_shard_rpc_ewma_ms gauge",
           "# TYPE yask_sweep_batch_events gauge",
       }) {
    EXPECT_NE(metrics.find(needle), std::string::npos) << needle;
  }
  // Each replica appears as a label on the RPC latency family.
  for (const std::string& endpoint : fleet.endpoints) {
    EXPECT_NE(metrics.find("replica=\"" + endpoint + "\""), std::string::npos)
        << endpoint;
  }

  // Shard server: per-endpoint RPC metrics and session gauges.
  const std::string shard_metrics =
      Fetch(fleet.services[0]->port(), "GET", "/metrics");
  for (const char* needle : {
           "# TYPE yask_shard_requests_total counter",
           "yask_shard_requests_total{code=\"200\",endpoint=\"/shard/topk\"}",
           "# TYPE yask_shard_request_ms histogram",
           "# TYPE yask_shard_open_plane_sessions gauge",
           "# TYPE yask_shard_open_probe_sessions gauge",
           "# TYPE yask_shard_sessions_evicted_total counter",
           "yask_shard_sessions_evicted_total{kind=\"plane\",shard=\"0\"} 0",
           "yask_shard_sessions_evicted_total{kind=\"probe\",shard=\"0\"} 0",
           "yask_shard_objects{shard=\"0\"}",
       }) {
    EXPECT_NE(shard_metrics.find(needle), std::string::npos) << needle;
  }

  // The adaptive fan-out gauges carry real samples once traffic has flowed:
  // the RPC EWMA is positive, and the sweep segment preference sits inside
  // its documented clamp [8, 256].
  const auto gauge_value = [&](const std::string& family) {
    const std::string needle = family + "{shard=\"0\"} ";
    const size_t at = metrics.find(needle);
    EXPECT_NE(at, std::string::npos) << family;
    if (at == std::string::npos) return 0.0;
    return std::strtod(metrics.c_str() + at + needle.size(), nullptr);
  };
  EXPECT_GT(gauge_value("yask_shard_rpc_ewma_ms"), 0.0);
  EXPECT_GE(gauge_value("yask_sweep_batch_events"), 8.0);
  EXPECT_LE(gauge_value("yask_sweep_batch_events"), 256.0);

  // /health still reports the same numbers the registry exports (single
  // source of truth): zero failovers and per-replica request counts > 0.
  const std::string health = Fetch(service.port(), "GET", "/health");
  auto parsed = JsonValue::Parse(health);
  ASSERT_TRUE(parsed.ok());
  const JsonValue& shards = parsed->Get("remote_shards");
  ASSERT_EQ(shards.size(), 2u);
  for (const JsonValue& row : shards.array_items()) {
    EXPECT_EQ(row.Get("failovers").as_number(), 0);
    for (const JsonValue& rep : row.Get("replicas").array_items()) {
      EXPECT_GT(rep.Get("requests").as_number(), 0);
    }
  }

  service.Stop();
}

TEST(ObservabilityTest, ZeroThresholdPinsEveryTrace) {
  const Corpus corpus = CorpusBuilder().Build(GenerateHotelDataset());
  YaskServiceOptions options;
  options.slow_trace_threshold_ms = 0.0;
  YaskService service(corpus, options);
  ASSERT_TRUE(service.Start().ok());
  const Driven run = Drive(service);

  const JsonValue trace = FetchTrace(service, run.whynot_trace_id);
  EXPECT_TRUE(trace.Get("pinned").as_bool());
  EXPECT_EQ(service.traces().pinned_count(), 2u);  // query + whynot

  // The shard-side trace endpoint answers 404 for ids it never saw — via a
  // standalone single-shard server, checking the GET /shard/trace surface.
  ShardService shard(corpus, ShardService::StandaloneInfo(corpus));
  ASSERT_TRUE(shard.Start().ok());
  Fetch(shard.port(), "GET",
        std::string(shardrpc::kTracePath) + "?id=" + run.whynot_trace_id, "",
        404);
  Fetch(shard.port(), "GET", shardrpc::kTracePath, "", 400);
  shard.Stop();
  service.Stop();
}

}  // namespace
}  // namespace yask
