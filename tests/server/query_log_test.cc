#include "src/server/query_log.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace yask {
namespace {

TEST(QueryLogTest, AppendAssignsMonotonicIds) {
  QueryLog log;
  EXPECT_EQ(log.Append("topk", "q1", 1.5), 1u);
  EXPECT_EQ(log.Append("whynot", "q2", 2.5, 0.25), 2u);
  EXPECT_EQ(log.size(), 2u);
}

TEST(QueryLogTest, SnapshotPreservesOrderAndFields) {
  QueryLog log;
  log.Append("topk", "first", 1.0);
  log.Append("whynot", "second", 2.0, 0.125);
  const auto entries = log.Snapshot();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].kind, "topk");
  EXPECT_EQ(entries[0].description, "first");
  EXPECT_DOUBLE_EQ(entries[0].response_millis, 1.0);
  EXPECT_DOUBLE_EQ(entries[0].penalty, -1.0);  // N/A marker.
  EXPECT_EQ(entries[1].kind, "whynot");
  EXPECT_DOUBLE_EQ(entries[1].penalty, 0.125);
}

TEST(QueryLogTest, CapacityEvictsOldest) {
  QueryLog log(3);
  for (int i = 0; i < 10; ++i) {
    log.Append("topk", "q" + std::to_string(i), 0.1);
  }
  const auto entries = log.Snapshot();
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0].description, "q7");
  EXPECT_EQ(entries[2].description, "q9");
  // Ids keep counting across evictions.
  EXPECT_EQ(entries[2].id, 10u);
}

TEST(QueryLogTest, ConcurrentAppendsAreSafeAndComplete) {
  QueryLog log(10000);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&log, t] {
      for (int i = 0; i < kPerThread; ++i) {
        log.Append("topk", "t" + std::to_string(t), 0.01);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(log.size(), static_cast<size_t>(kThreads * kPerThread));
  // Ids are unique.
  std::vector<uint64_t> ids;
  for (const auto& e : log.Snapshot()) ids.push_back(e.id);
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(std::unique(ids.begin(), ids.end()), ids.end());
}

}  // namespace
}  // namespace yask
