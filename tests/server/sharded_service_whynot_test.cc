// Sharded /whynot over HTTP: the full why-not contract in scale-out mode.
//   * Parity: a sharded service's /whynot payload matches an unsharded
//     service's for the same query (explanations, both refinements, the
//     recommendation, the refined results).
//   * Staleness: a query_id that was LRU-evicted or POST /forget-ten answers
//     404 — never a recompute from a dead cache entry.
//   * Concurrency: mixed /query + /whynot + /forget traffic over the shared
//     shard pool stays consistent (run under scripts/check.sh --sanitize).

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/corpus/corpus.h"
#include "src/corpus/sharded_corpus.h"
#include "src/server/yask_service.h"
#include "src/storage/hotel_generator.h"

namespace yask {
namespace {

class ShardedServiceWhyNotTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    corpus_ = new Corpus(CorpusBuilder().Build(GenerateHotelDataset()));
    CorpusOptions options;
    options.fanout_threads = 2;  // Exercise the pool path on any host.
    sharded_ = new ShardedCorpus(ShardedCorpus::Partition(
        corpus_->store(), GridShardRouter::Fit(corpus_->store(), 4),
        options));
  }
  static void TearDownTestSuite() {
    delete sharded_;
    sharded_ = nullptr;
    delete corpus_;
    corpus_ = nullptr;
  }

  static JsonValue CarolQuery(int k) {
    JsonValue req = JsonValue::MakeObject();
    req.Set("x", JsonValue(114.158));
    req.Set("y", JsonValue(22.281));
    req.Set("keywords", JsonValue("clean comfortable"));
    req.Set("k", JsonValue(k));
    return req;
  }

  static uint64_t IssueQuery(const YaskService& service, int k,
                             JsonValue* response = nullptr) {
    int status = 0;
    auto body = HttpFetch(service.port(), "POST", "/query",
                          CarolQuery(k).Dump(), &status);
    EXPECT_TRUE(body.ok());
    EXPECT_EQ(status, 200) << *body;
    auto parsed = JsonValue::Parse(*body);
    EXPECT_TRUE(parsed.ok());
    const uint64_t id =
        static_cast<uint64_t>(parsed->Get("query_id").as_number());
    if (response != nullptr) *response = std::move(parsed).value();
    return id;
  }

  static int WhyNotStatus(const YaskService& service, uint64_t query_id,
                          double missing_id, JsonValue* response = nullptr) {
    JsonValue wn = JsonValue::MakeObject();
    wn.Set("query_id", JsonValue(static_cast<size_t>(query_id)));
    JsonValue missing = JsonValue::MakeArray();
    missing.Append(JsonValue(missing_id));
    wn.Set("missing", std::move(missing));
    wn.Set("model", JsonValue("both"));
    int status = 0;
    auto body =
        HttpFetch(service.port(), "POST", "/whynot", wn.Dump(), &status);
    EXPECT_TRUE(body.ok());
    if (response != nullptr && status == 200) {
      auto parsed = JsonValue::Parse(*body);
      EXPECT_TRUE(parsed.ok());
      *response = std::move(parsed).value();
    }
    return status;
  }

  static const Corpus* corpus_;
  static const ShardedCorpus* sharded_;
};

const Corpus* ShardedServiceWhyNotTest::corpus_ = nullptr;
const ShardedCorpus* ShardedServiceWhyNotTest::sharded_ = nullptr;

TEST_F(ShardedServiceWhyNotTest, PayloadMatchesUnshardedService) {
  YaskService unsharded(*corpus_);
  YaskService sharded(*sharded_);
  ASSERT_TRUE(unsharded.Start().ok());
  ASSERT_TRUE(sharded.Start().ok());

  JsonValue uq, sq;
  const uint64_t uid = IssueQuery(unsharded, 3, &uq);
  const uint64_t sid = IssueQuery(sharded, 3, &sq);
  EXPECT_EQ(uq.Get("results").Dump(), sq.Get("results").Dump());

  // A hotel ranked outside the top-3 (taken from a wider unsharded query).
  JsonValue wide;
  IssueQuery(unsharded, 20, &wide);
  const double missing_id = wide.Get("results").At(15).Get("id").as_number();

  JsonValue ua, sa;
  ASSERT_EQ(WhyNotStatus(unsharded, uid, missing_id, &ua), 200);
  ASSERT_EQ(WhyNotStatus(sharded, sid, missing_id, &sa), 200);

  // Bit-identical payloads, field by field (response_millis aside).
  EXPECT_EQ(ua.Get("explanations").Dump(), sa.Get("explanations").Dump());
  EXPECT_EQ(ua.Get("preference").Dump(), sa.Get("preference").Dump());
  EXPECT_EQ(ua.Get("keyword").Dump(), sa.Get("keyword").Dump());
  EXPECT_EQ(ua.Get("recommended").Dump(), sa.Get("recommended").Dump());
  EXPECT_EQ(ua.Get("refined_results").Dump(), sa.Get("refined_results").Dump());

  // The combined model serves in sharded mode too.
  JsonValue wn = JsonValue::MakeObject();
  wn.Set("query_id", JsonValue(static_cast<size_t>(sid)));
  JsonValue missing = JsonValue::MakeArray();
  missing.Append(JsonValue(missing_id));
  wn.Set("missing", std::move(missing));
  wn.Set("model", JsonValue("combined"));
  int status = 0;
  auto body = HttpFetch(sharded.port(), "POST", "/whynot", wn.Dump(), &status);
  ASSERT_TRUE(body.ok());
  EXPECT_EQ(status, 200) << *body;

  sharded.Stop();
  unsharded.Stop();
}

TEST_F(ShardedServiceWhyNotTest, EvictedQueryIdIs404) {
  YaskServiceOptions options;
  options.max_cached_queries = 2;
  YaskService service(*sharded_, options);
  ASSERT_TRUE(service.Start().ok());

  const uint64_t q1 = IssueQuery(service, 3);
  const uint64_t q2 = IssueQuery(service, 4);
  const uint64_t q3 = IssueQuery(service, 5);  // Evicts q1 (LRU).
  EXPECT_EQ(service.cached_queries(), 2u);

  // The evicted id must answer 404 — the service never recomputes a why-not
  // from a dead cache entry.
  EXPECT_EQ(WhyNotStatus(service, q1, 5), 404);
  EXPECT_EQ(WhyNotStatus(service, q2, 5), 200);
  EXPECT_EQ(WhyNotStatus(service, q3, 5), 200);
  service.Stop();
}

TEST_F(ShardedServiceWhyNotTest, ForgottenQueryIdIs404) {
  YaskService service(*sharded_);
  ASSERT_TRUE(service.Start().ok());

  const uint64_t id = IssueQuery(service, 3);
  EXPECT_EQ(WhyNotStatus(service, id, 5), 200);

  JsonValue req = JsonValue::MakeObject();
  req.Set("query_id", JsonValue(static_cast<size_t>(id)));
  int status = 0;
  auto body =
      HttpFetch(service.port(), "POST", "/forget", req.Dump(), &status);
  ASSERT_TRUE(body.ok());
  EXPECT_EQ(status, 200);

  EXPECT_EQ(WhyNotStatus(service, id, 5), 404);
  service.Stop();
}

TEST_F(ShardedServiceWhyNotTest, KcrLessCorpusAnswers501NotCrash) {
  // A top-k-only deployment (KcR-trees skipped) cannot answer why-not; the
  // request must fail cleanly, not chase a missing index.
  CorpusOptions options;
  options.build_kcr_tree = false;
  const ShardedCorpus topk_only = ShardedCorpus::Partition(
      corpus_->store(), GridShardRouter::Fit(corpus_->store(), 2), options);
  YaskService service(topk_only);
  ASSERT_TRUE(service.Start().ok());
  const uint64_t id = IssueQuery(service, 3);  // /query still serves.
  EXPECT_EQ(WhyNotStatus(service, id, 5), 501);
  service.Stop();
}

TEST_F(ShardedServiceWhyNotTest, ConcurrentWhyNotTrafficOverSharedPool) {
  YaskServiceOptions options;
  options.num_workers = 4;
  YaskService service(*sharded_, options);
  ASSERT_TRUE(service.Start().ok());

  // The reference payload every concurrent why-not must reproduce.
  JsonValue wide;
  IssueQuery(service, 20, &wide);
  const double missing_id = wide.Get("results").At(15).Get("id").as_number();
  const uint64_t shared_id = IssueQuery(service, 3);
  JsonValue reference;
  ASSERT_EQ(WhyNotStatus(service, shared_id, missing_id, &reference), 200);
  const std::string expected = reference.Get("refined_results").Dump();

  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < 3; ++t) {
    clients.emplace_back([&] {
      for (int i = 0; i < 6; ++i) {
        // Each client interleaves its own query/forget churn with why-nots
        // against the shared cached query.
        const uint64_t own = IssueQuery(service, 4 + i % 3);
        JsonValue answer;
        if (WhyNotStatus(service, shared_id, missing_id, &answer) != 200 ||
            answer.Get("refined_results").Dump() != expected) {
          ++failures;
        }
        JsonValue req = JsonValue::MakeObject();
        req.Set("query_id", JsonValue(static_cast<size_t>(own)));
        int status = 0;
        HttpFetch(service.port(), "POST", "/forget", req.Dump(), &status);
        if (status != 200) ++failures;
      }
    });
  }
  for (std::thread& c : clients) c.join();
  EXPECT_EQ(failures.load(), 0);
  service.Stop();
}

}  // namespace
}  // namespace yask
