#include "src/index/rtree.h"

namespace yask {

// The plain spatial R-tree instantiation. SetR-tree and KcR-tree variants are
// instantiated in their own translation units.
template class RTreeT<EmptySummary>;

}  // namespace yask
