// Experiment E14: replica failover under fire.
//
// Boots a loopback replica fleet — `--shards` logical shards x `--replicas`
// ShardService replicas each, every replica of a shard serving the same
// shard corpus (the in-process stand-in for "booted from the same snapshot
// file") — connects a YaskService coordinator over it, and hammers /query +
// /whynot from client threads WHILE a killer thread cycles through the
// fleet stopping and restarting one replica at a time (so every shard
// always keeps at least one live replica, the deployment invariant).
//
// Gates (non-zero exit on any failure, like the other sharded benches):
//   * ZERO client-visible errors: every response during the chaos phase is
//     HTTP 200 — kills are absorbed by replica failover + session replay,
//     never surfaced as 503;
//   * exactness: every chaos-phase payload is byte-identical (modulo the
//     response_millis timing fields and /query's fresh query_id) to the
//     in-process sharded service's answer for the same request;
//   * the chaos actually bit: at least one kill happened and at least one
//     call failed over (otherwise the run proves nothing).
//
// Headline numbers: chaos-phase throughput (the fleet keeps serving while
// dying), failovers absorbed, and the healthy-fleet /query + /whynot
// latencies for the perf trajectory.
//
//   $ ./bench_replica_failover [--n=20000] [--shards=2] [--replicas=2]
//                              [--clients=4] [--seconds=4]
//                              [--json=BENCH_replica_failover.json]

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/text.h"
#include "src/common/timer.h"
#include "src/corpus/remote_corpus.h"
#include "src/corpus/sharded_corpus.h"
#include "src/server/json.h"
#include "src/server/shard_service.h"
#include "src/server/yask_service.h"

namespace yask {
namespace bench {
namespace {

/// N shards x R replicas of ShardService over one ShardedCorpus, with
/// kill/restart at a stable port (the supervised-process model).
struct ReplicaFleet {
  const ShardedCorpus* corpus;
  std::vector<std::vector<std::unique_ptr<ShardService>>> services;
  std::vector<std::vector<uint16_t>> ports;

  ReplicaFleet(const ShardedCorpus& sharded, size_t replicas)
      : corpus(&sharded) {
    services.resize(sharded.num_shards());
    ports.resize(sharded.num_shards());
    for (size_t s = 0; s < sharded.num_shards(); ++s) {
      for (size_t r = 0; r < replicas; ++r) {
        auto service = std::make_unique<ShardService>(
            sharded.shard(s), InfoFor(s), ShardServiceOptions{});
        if (!service->Start().ok()) {
          std::fprintf(stderr, "cannot start shard %zu replica %zu\n", s, r);
          std::exit(1);
        }
        ports[s].push_back(service->port());
        services[s].push_back(std::move(service));
      }
    }
  }

  ~ReplicaFleet() {
    for (auto& shard : services) {
      for (auto& service : shard) {
        if (service != nullptr) service->Stop();
      }
    }
  }

  ShardService::Info InfoFor(size_t s) const {
    ShardService::Info info;
    info.shard_index = static_cast<uint32_t>(s);
    info.shard_count = static_cast<uint32_t>(corpus->num_shards());
    info.global_bounds = corpus->bounds();
    info.dist_norm = corpus->dist_norm();
    info.to_global = corpus->shard_global_ids(s);
    info.router = corpus->router_description();
    return info;
  }

  std::vector<std::string> Endpoints() const {
    std::vector<std::string> groups;
    for (const auto& shard_ports : ports) {
      std::string group;
      for (const uint16_t port : shard_ports) {
        if (!group.empty()) group += '|';
        group += "127.0.0.1:" + std::to_string(port);
      }
      groups.push_back(std::move(group));
    }
    return groups;
  }

  void Kill(size_t s, size_t r) {
    services[s][r]->Stop();
    services[s][r].reset();
  }

  bool Restart(size_t s, size_t r) {
    ShardServiceOptions options;
    options.port = ports[s][r];
    auto service = std::make_unique<ShardService>(corpus->shard(s),
                                                  InfoFor(s), options);
    Status started = service->Start();
    for (int attempt = 0; !started.ok() && attempt < 100; ++attempt) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      started = service->Start();
    }
    if (!started.ok()) return false;
    services[s][r] = std::move(service);
    return true;
  }
};

/// Drops timing (and optionally the fresh query_id) and re-dumps, so chaos
/// payloads compare byte-for-byte against the healthy reference.
JsonValue Strip(const JsonValue& v, bool strip_query_id) {
  if (v.is_object()) {
    JsonValue out = JsonValue::MakeObject();
    for (const auto& [key, value] : v.object_items()) {
      if (key == "response_millis") continue;
      if (strip_query_id && key == "query_id") continue;
      out.Set(key, Strip(value, strip_query_id));
    }
    return out;
  }
  if (v.is_array()) {
    JsonValue out = JsonValue::MakeArray();
    for (const JsonValue& item : v.array_items()) {
      out.Append(Strip(item, strip_query_id));
    }
    return out;
  }
  return v;
}

bool Normalize(const std::string& payload, bool strip_query_id,
               std::string* out) {
  auto parsed = JsonValue::Parse(payload);
  if (!parsed.ok()) return false;
  *out = Strip(parsed.value(), strip_query_id).Dump();
  return true;
}

struct Workload {
  std::string query_body;    // POST /query
  std::string whynot_body;   // POST /whynot against the warm query_id
  std::string expected_query;   // Normalized, query_id stripped.
  std::string expected_whynot;  // Normalized.
};

}  // namespace
}  // namespace bench
}  // namespace yask

int main(int argc, char** argv) {
  using namespace yask;
  using namespace yask::bench;

  size_t n = 20000;
  size_t shards = 2;
  size_t replicas = 2;
  size_t clients = 4;
  double seconds = 4.0;
  std::string json_path = "BENCH_replica_failover.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--n=", 0) == 0) {
      n = static_cast<size_t>(std::strtoull(arg.c_str() + 4, nullptr, 10));
    } else if (arg.rfind("--shards=", 0) == 0) {
      shards = static_cast<size_t>(std::strtoull(arg.c_str() + 9, nullptr,
                                                 10));
    } else if (arg.rfind("--replicas=", 0) == 0) {
      replicas = static_cast<size_t>(std::strtoull(arg.c_str() + 11, nullptr,
                                                   10));
    } else if (arg.rfind("--clients=", 0) == 0) {
      clients = static_cast<size_t>(std::strtoull(arg.c_str() + 10, nullptr,
                                                  10));
    } else if (arg.rfind("--seconds=", 0) == 0) {
      seconds = std::strtod(arg.c_str() + 10, nullptr);
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--n=N] [--shards=S] [--replicas=R] "
                   "[--clients=C] [--seconds=T] [--json=PATH]\n",
                   argv[0]);
      return 2;
    }
  }
  if (replicas < 2) {
    std::fprintf(stderr, "--replicas must be >= 2 (failover needs a "
                         "sibling)\n");
    return 2;
  }

  Timer setup_timer;
  const ObjectStore store = GenerateDataset(SharedDatasetSpec(n));
  const ShardedCorpus sharded = ShardedCorpus::Partition(
      store, GridShardRouter::Fit(store, static_cast<uint32_t>(shards)));
  ReplicaFleet fleet(sharded, replicas);
  auto connected = RemoteCorpus::Connect(fleet.Endpoints());
  if (!connected.ok()) {
    std::fprintf(stderr, "connect failed: %s\n",
                 connected.status().ToString().c_str());
    return 1;
  }
  const RemoteCorpus remote_corpus = std::move(connected).value();
  YaskService remote(remote_corpus);
  YaskService local(sharded);
  if (!remote.Start().ok() || !local.Start().ok()) {
    std::fprintf(stderr, "cannot start services\n");
    return 1;
  }
  std::printf("fleet up: n=%zu, %zu shards x %zu replicas, %zu clients "
              "(setup %.0f ms)\n",
              n, shards, replicas, clients, setup_timer.ElapsedMillis());

  // --- Warm phase: build the workload and its reference payloads on the
  // healthy fleet; every warm response must already match in-process. ---
  const size_t kWarmQueries = 6;
  Rng rng(kDatasetSeed + 21);
  std::vector<Workload> workload;
  bool warm_ok = true;
  double topk_ms = 0.0;
  double whynot_ms = 0.0;
  size_t whynot_timed = 0;  // Some warm queries yield no why-not probe.
  for (size_t i = 0; i < kWarmQueries; ++i) {
    Query q = MakeQuery(store, &rng, /*num_keywords=*/3, /*k=*/10);
    Workload w;
    {
      JsonValue body = JsonValue::MakeObject();
      body.Set("x", JsonValue(q.loc.x));
      body.Set("y", JsonValue(q.loc.y));
      body.Set("keywords", JsonValue(q.doc.ToString(sharded.vocab())));
      body.Set("k", JsonValue(static_cast<size_t>(q.k)));
      w.query_body = body.Dump();
    }
    int remote_status = 0;
    int local_status = 0;
    Timer timer;
    auto remote_resp =
        HttpFetch(remote.port(), "POST", "/query", w.query_body,
                  &remote_status);
    topk_ms += timer.ElapsedMillis();
    auto local_resp = HttpFetch(local.port(), "POST", "/query", w.query_body,
                                &local_status);
    std::string remote_norm;
    if (!remote_resp.ok() || !local_resp.ok() || remote_status != 200 ||
        local_status != 200 ||
        !Normalize(*remote_resp, /*strip_query_id=*/true, &remote_norm) ||
        !Normalize(*local_resp, /*strip_query_id=*/true,
                   &w.expected_query) ||
        remote_norm != w.expected_query) {
      warm_ok = false;
      continue;
    }

    const std::vector<ObjectId> missing =
        PickMissing(store, q, 1 + i % 2, /*offset=*/4);
    if (missing.empty()) continue;
    {
      JsonValue body = JsonValue::MakeObject();
      body.Set("query_id", JsonValue(i + 1));  // Both services count from 1.
      JsonValue ids = JsonValue::MakeArray();
      for (const ObjectId id : missing) {
        ids.Append(JsonValue(static_cast<size_t>(id)));
      }
      body.Set("missing", std::move(ids));
      body.Set("model", JsonValue("both"));
      w.whynot_body = body.Dump();
    }
    timer = Timer();
    remote_resp = HttpFetch(remote.port(), "POST", "/whynot", w.whynot_body,
                            &remote_status);
    whynot_ms += timer.ElapsedMillis();
    ++whynot_timed;
    local_resp = HttpFetch(local.port(), "POST", "/whynot", w.whynot_body,
                           &local_status);
    if (!remote_resp.ok() || !local_resp.ok() || remote_status != 200 ||
        local_status != 200 ||
        !Normalize(*remote_resp, /*strip_query_id=*/false, &remote_norm) ||
        !Normalize(*local_resp, /*strip_query_id=*/false,
                   &w.expected_whynot) ||
        remote_norm != w.expected_whynot) {
      warm_ok = false;
      continue;
    }
    workload.push_back(std::move(w));
  }
  if (!warm_ok || workload.empty()) {
    std::fprintf(stderr, "EXACTNESS BUG: healthy-fleet payloads diverge "
                         "from the in-process sharded service\n");
    return 1;
  }
  topk_ms /= kWarmQueries;
  whynot_ms /= whynot_timed;  // workload non-empty => whynot_timed >= 1.

  // --- Chaos phase: clients hammer the coordinator while the killer cycles
  // one replica at a time through kill -> dead window -> restart. ---
  std::atomic<bool> chaos_running{true};
  std::atomic<uint64_t> total_requests{0};
  std::atomic<uint64_t> non_200{0};
  std::atomic<uint64_t> mismatches{0};
  std::atomic<uint64_t> kills{0};
  std::atomic<bool> restart_failed{false};

  // Per-client request latencies, merged after the join for the chaos
  // latency distribution (p50/p99 including requests that rode a failover).
  std::vector<std::vector<double>> client_latencies(clients);

  std::vector<std::thread> client_threads;
  for (size_t c = 0; c < clients; ++c) {
    client_threads.emplace_back([&, c] {
      std::vector<double>& latencies = client_latencies[c];
      size_t i = c;  // Stagger the workload across clients.
      while (chaos_running.load()) {
        const Workload& w = workload[i++ % workload.size()];
        const bool ask_whynot = i % 2 == 0;
        int status = 0;
        Timer request_timer;
        auto resp = HttpFetch(remote.port(), "POST",
                              ask_whynot ? "/whynot" : "/query",
                              ask_whynot ? w.whynot_body : w.query_body,
                              &status);
        latencies.push_back(request_timer.ElapsedMillis());
        total_requests.fetch_add(1);
        if (!resp.ok() || status != 200) {
          non_200.fetch_add(1);
          continue;
        }
        std::string norm;
        if (!Normalize(*resp, /*strip_query_id=*/!ask_whynot, &norm) ||
            norm != (ask_whynot ? w.expected_whynot : w.expected_query)) {
          mismatches.fetch_add(1);
        }
      }
    });
  }

  std::thread killer([&] {
    const Timer killer_timer;
    size_t victim = 0;
    while (killer_timer.ElapsedMillis() < seconds * 1000.0) {
      const size_t s = victim % shards;
      const size_t r = (victim / shards) % replicas;
      ++victim;
      fleet.Kill(s, r);
      kills.fetch_add(1);
      // The dead window: traffic keeps flowing against the survivors.
      std::this_thread::sleep_for(std::chrono::milliseconds(300));
      if (!fleet.Restart(s, r)) {
        restart_failed.store(true);
        return;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(150));
    }
  });

  Timer chaos_timer;
  killer.join();
  chaos_running.store(false);
  for (std::thread& t : client_threads) t.join();
  const double chaos_secs = chaos_timer.ElapsedMillis() / 1000.0;

  std::vector<double> chaos_latencies;
  for (const auto& per_client : client_latencies) {
    chaos_latencies.insert(chaos_latencies.end(), per_client.begin(),
                           per_client.end());
  }
  std::sort(chaos_latencies.begin(), chaos_latencies.end());
  auto quantile = [&](double q) {
    if (chaos_latencies.empty()) return 0.0;
    const size_t rank = static_cast<size_t>(
        q * static_cast<double>(chaos_latencies.size() - 1));
    return chaos_latencies[rank];
  };
  const double chaos_p50 = quantile(0.50);
  const double chaos_p99 = quantile(0.99);

  const uint64_t failovers = remote_corpus.total_failovers();
  const double rps =
      chaos_secs > 0.0 ? static_cast<double>(total_requests.load()) /
                             chaos_secs
                       : 0.0;
  const bool zero_errors = non_200.load() == 0 && !restart_failed.load();
  const bool exact = mismatches.load() == 0;
  const bool chaos_bit = kills.load() >= 1 && failovers >= 1;

  std::printf(
      "chaos: %llu requests in %.1fs (%.0f req/s), %llu kills, %llu "
      "failovers absorbed, %llu non-200, %llu mismatches\n",
      static_cast<unsigned long long>(total_requests.load()), chaos_secs,
      rps, static_cast<unsigned long long>(kills.load()),
      static_cast<unsigned long long>(failovers),
      static_cast<unsigned long long>(non_200.load()),
      static_cast<unsigned long long>(mismatches.load()));
  std::printf("chaos latency: p50 %.2f ms, p99 %.2f ms (tail includes "
              "failed-over requests)\n",
              chaos_p50, chaos_p99);
  std::printf("healthy fleet: topk %.2f ms/q, whynot %.2f ms/q\n", topk_ms,
              whynot_ms);
  if (!zero_errors) std::printf("ZERO-ERROR GATE FAILED\n");
  if (!exact) std::printf("EXACTNESS BUG\n");
  if (!chaos_bit) std::printf("CHAOS DID NOT BITE (no kill/failover)\n");

  remote.Stop();
  local.Stop();

  JsonValue context = JsonValue::MakeObject();
  context.Set("bench", JsonValue("replica_failover"));
  context.Set("n", JsonValue(n));
  context.Set("shards", JsonValue(shards));
  context.Set("replicas", JsonValue(replicas));
  context.Set("clients", JsonValue(clients));
  context.Set("chaos_seconds", JsonValue(chaos_secs));
  context.Set("requests", JsonValue(static_cast<size_t>(
                              total_requests.load())));
  context.Set("kills", JsonValue(static_cast<size_t>(kills.load())));
  context.Set("failovers", JsonValue(static_cast<size_t>(failovers)));
  context.Set("non_200", JsonValue(static_cast<size_t>(non_200.load())));
  context.Set("mismatches", JsonValue(static_cast<size_t>(
                                mismatches.load())));
  context.Set("results_match", JsonValue(zero_errors && exact && chaos_bit));

  JsonValue benches = JsonValue::MakeArray();
  auto bench_row = [&](const std::string& name, double value,
                       const std::string& unit) {
    JsonValue row = JsonValue::MakeObject();
    row.Set("name", JsonValue(name));
    row.Set("run_type", JsonValue("iteration"));
    row.Set("iterations", JsonValue(static_cast<size_t>(1)));
    row.Set("real_time", JsonValue(value));
    row.Set("cpu_time", JsonValue(value));
    row.Set("time_unit", JsonValue(unit));
    benches.Append(std::move(row));
  };
  const std::string tag = "/shards:" + std::to_string(shards) +
                          "/replicas:" + std::to_string(replicas) + "/" +
                          std::to_string(n);
  bench_row("replica_failover/topk" + tag, topk_ms, "ms");
  bench_row("replica_failover/whynot" + tag, whynot_ms, "ms");
  bench_row("replica_failover/chaos_rps" + tag, rps, "req/s");
  bench_row("replica_failover/chaos_p50" + tag, chaos_p50, "ms");
  bench_row("replica_failover/chaos_p99" + tag, chaos_p99, "ms");
  bench_row("replica_failover/failovers" + tag,
            static_cast<double>(failovers), "count");

  JsonValue doc = JsonValue::MakeObject();
  doc.Set("context", std::move(context));
  doc.Set("benchmarks", std::move(benches));
  std::ofstream out(json_path, std::ios::trunc);
  out << doc.Dump() << "\n";
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", json_path.c_str());

  return zero_errors && exact && chaos_bit ? 0 : 1;
}
