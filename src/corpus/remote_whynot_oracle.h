// Copyright (c) 2026 The YASK reproduction authors.
// RemoteShardOracle: the WhyNotOracle seam over the wire — every per-shard
// primitive becomes one RPC per shard against yask_shard_server processes,
// merged with exactly the discipline of ShardedWhyNotOracle (counts sum,
// crossing sets union + sort + dedupe, KcR intervals sum elementwise).
// Because the shard servers run the same per-shard code
// (src/whynot/shard_primitives.h) and every double rides the wire as raw
// bits, a coordinator's /whynot answers are byte-identical to the
// in-process sharded path.
//
// Round-trip shape per why-not question (what the batch APIs buy):
//   * OutscoringCountBatch: one /shard/count per shard for ALL
//     (candidate, missing) pairs of a chunk;
//   * ProbeRankBatch: one /shard/probe/open per shard, then ONE
//     /shard/probe/refine per shard per refinement level across all live
//     candidates — instead of one round-trip per probe per level;
//   * the Eqn. (3) weight sweep holds one server-side plane session per
//     shard and pays one round-trip per sweep event.
//
// Failure model: every stateless fan-out rides ReplicaSet::Call, which
// fails over to a sibling replica mid-call; the plane/probe sessions are
// replica-sticky id-keyed server-side state, so their failover re-opens the
// session on a live replica and REPLAYS the applied refine history before
// re-issuing the failed call (see ShardSessionChannel in the .cc) — a killed
// replica costs latency, never correctness. Only when every replica of a
// shard is gone does the wire failure bump the owning RemoteCorpus's error
// epoch (the oracle interface has no error channel) and contribute neutral
// values; YaskService samples the epoch around each request and answers 503.

#ifndef YASK_CORPUS_REMOTE_WHYNOT_ORACLE_H_
#define YASK_CORPUS_REMOTE_WHYNOT_ORACLE_H_

#include <memory>
#include <vector>

#include "src/corpus/remote_corpus.h"
#include "src/whynot/whynot_oracle.h"

namespace yask {

/// The corpus must outlive the oracle. ProbeRank/ProbeRankBatch require
/// every remote shard to carry its KcR-tree (corpus.has_kcr()).
class RemoteShardOracle : public WhyNotOracle {
 public:
  explicit RemoteShardOracle(const RemoteCorpus& corpus)
      : corpus_(&corpus), topk_(corpus) {}

  size_t size() const override { return corpus_->size(); }
  double dist_norm() const override { return corpus_->dist_norm(); }
  const SpatialObject& Object(ObjectId global_id) const override {
    return corpus_->Object(global_id);
  }

  TopKResult TopK(const Query& query, TopKStats* stats) const override {
    return topk_.Query(query, stats);
  }

  size_t Rank(const Query& query, ObjectId global_id) const override;
  size_t OutscoringCount(const Query& query, ObjectId global_id,
                         KeywordAdaptStats* stats) const override;
  std::vector<size_t> OutscoringCountBatch(
      const std::vector<OracleTargetSpec>& specs,
      KeywordAdaptStats* stats) const override;
  std::unique_ptr<ScorePlaneSession> PrepareScorePlane(
      const Query& query, PrefAdjustMode mode) const override;
  std::unique_ptr<RankProbe> ProbeRank(const Query& candidate,
                                       ObjectId global_id,
                                       KeywordAdaptStats* stats) const override;
  std::unique_ptr<RankProbeBatch> ProbeRankBatch(
      const std::vector<OracleTargetSpec>& specs,
      KeywordAdaptStats* stats) const override;

  const RemoteCorpus& corpus() const { return *corpus_; }

 private:
  /// Batched /shard/count fan-out shared by Rank / OutscoringCount(Batch).
  std::vector<size_t> CountFanout(const std::vector<OracleTargetSpec>& specs,
                                  uint8_t method) const;

  const RemoteCorpus* corpus_;
  RemoteTopKClient topk_;
};

}  // namespace yask

#endif  // YASK_CORPUS_REMOTE_WHYNOT_ORACLE_H_
