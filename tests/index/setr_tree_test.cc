#include "src/index/setr_tree.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/query/topk_engine.h"
#include "src/storage/dataset_generator.h"

namespace yask {
namespace {

ObjectStore MakeStore(size_t n, uint64_t seed = 42) {
  DatasetSpec spec;
  spec.num_objects = n;
  spec.seed = seed;
  spec.vocabulary_size = 60;
  spec.min_keywords = 2;
  spec.max_keywords = 8;
  return GenerateDataset(spec);
}

TEST(SetSummaryTest, AddObjectTracksUnionAndIntersection) {
  SetSummary s;
  s.Clear();
  SpatialObject a;
  a.doc = KeywordSet({1, 2, 3});
  SpatialObject b;
  b.doc = KeywordSet({2, 3, 4});
  s.AddObject(a);
  EXPECT_EQ(s.union_set, a.doc);
  EXPECT_EQ(s.inter_set, a.doc);
  s.AddObject(b);
  EXPECT_EQ(s.union_set, KeywordSet({1, 2, 3, 4}));
  EXPECT_EQ(s.inter_set, KeywordSet({2, 3}));
  EXPECT_EQ(s.count, 2u);
}

TEST(SetSummaryTest, MergeMatchesSequentialAdds) {
  SpatialObject a, b, c;
  a.doc = KeywordSet({1, 2});
  b.doc = KeywordSet({2, 3});
  c.doc = KeywordSet({2, 4});
  SetSummary s1;
  s1.AddObject(a);
  s1.AddObject(b);
  SetSummary s2;
  s2.AddObject(c);
  SetSummary merged = s1;
  merged.Merge(s2);
  SetSummary direct;
  direct.AddObject(a);
  direct.AddObject(b);
  direct.AddObject(c);
  EXPECT_TRUE(merged.Equals(direct));
}

TEST(SetSummaryTest, MergeWithEmptyIsIdentity) {
  SpatialObject a;
  a.doc = KeywordSet({5});
  SetSummary s;
  s.AddObject(a);
  SetSummary copy = s;
  SetSummary empty;
  s.Merge(empty);
  EXPECT_TRUE(s.Equals(copy));
  empty.Merge(s);
  EXPECT_TRUE(empty.Equals(copy));
}

TEST(SetRTreeTest, BulkLoadSummariesValidate) {
  const ObjectStore store = MakeStore(3000);
  SetRTree tree(&store);
  tree.BulkLoad();
  Status s = tree.Validate();
  ASSERT_TRUE(s.ok()) << s.ToString();
}

TEST(SetRTreeTest, InsertAndDeleteKeepSummariesConsistent) {
  const ObjectStore store = MakeStore(600, 9);
  SetRTree tree(&store);
  for (ObjectId id = 0; id < 400; ++id) tree.Insert(id);
  ASSERT_TRUE(tree.Validate().ok()) << tree.Validate().ToString();
  for (ObjectId id = 0; id < 200; id += 2) ASSERT_TRUE(tree.Delete(id));
  Status s = tree.Validate();
  ASSERT_TRUE(s.ok()) << s.ToString();
}

TEST(SetRTreeTest, RootSummaryCoversWholeCorpus) {
  const ObjectStore store = MakeStore(500, 3);
  SetRTree tree(&store);
  tree.BulkLoad();
  const SetSummary& root = tree.node(tree.root()).summary;
  EXPECT_EQ(root.count, 500u);
  KeywordSet all_union;
  for (const SpatialObject& o : store.objects()) {
    all_union = KeywordSet::Union(all_union, o.doc);
  }
  EXPECT_EQ(root.union_set, all_union);
}

// Bound admissibility: every object under every node respects the TSim and
// score bounds derived from the node summary.
class SetRTreeBoundProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SetRTreeBoundProperty, TSimAndScoreBoundsAreAdmissible) {
  const ObjectStore store = MakeStore(1500, GetParam());
  SetRTree tree(&store);
  tree.BulkLoad();
  Rng rng(GetParam() ^ 0xBEEF);

  for (int trial = 0; trial < 20; ++trial) {
    Query q;
    q.loc = SampleQueryLocation(store, &rng);
    q.doc = SampleQueryKeywords(store, 1 + rng.NextBounded(4), &rng);
    q.k = 5;
    q.w = Weights::FromWs(rng.NextDouble(0.1, 0.9));
    Scorer scorer(store, q);

    // Walk every node; verify bounds against every object beneath it.
    std::vector<SetRTree::NodeId> stack{tree.root()};
    while (!stack.empty()) {
      const auto& node = tree.node(stack.back());
      stack.pop_back();
      const double ub_t = UpperBoundTSim(node.summary, q.doc);
      const double lb_t = LowerBoundTSim(node.summary, q.doc);
      const double ub_s = UpperBoundScore(scorer, node.rect, node.summary);
      const double lb_s = LowerBoundScore(scorer, node.rect, node.summary);
      EXPECT_LE(lb_t, ub_t + 1e-12);
      EXPECT_LE(lb_s, ub_s + 1e-12);

      std::vector<ObjectId> under;
      if (node.is_leaf) {
        for (const auto& e : node.entries) under.push_back(e.id);
      } else {
        for (const auto& e : node.entries) stack.push_back(e.id);
        continue;  // Bounds checked transitively via children + leaf check.
      }
      for (ObjectId id : under) {
        const SpatialObject& o = store.Get(id);
        const double tsim = scorer.TSim(o.doc);
        const double score = scorer.Score(o);
        EXPECT_LE(tsim, ub_t + 1e-12) << "node TSim ub violated";
        EXPECT_GE(tsim, lb_t - 1e-12) << "node TSim lb violated";
        EXPECT_LE(score, ub_s + 1e-12) << "node score ub violated";
        EXPECT_GE(score, lb_s - 1e-12) << "node score lb violated";
      }
    }
  }
}

// Internal-node bounds must also cover all transitive objects, not only
// direct leaf children.
TEST_P(SetRTreeBoundProperty, InternalNodeBoundsCoverSubtree) {
  const ObjectStore store = MakeStore(2000, GetParam() + 100);
  SetRTree tree(&store);
  tree.BulkLoad();
  Rng rng(GetParam());
  Query q;
  q.loc = SampleQueryLocation(store, &rng);
  q.doc = SampleQueryKeywords(store, 3, &rng);
  q.k = 5;
  Scorer scorer(store, q);

  // Collect objects under the first internal child of the root.
  const auto& root = tree.node(tree.root());
  if (root.is_leaf) GTEST_SKIP() << "tree too small";
  const auto child_id = root.entries[0].id;
  const auto& child = tree.node(child_id);
  const double ub_s = UpperBoundScore(scorer, child.rect, child.summary);
  const double lb_s = LowerBoundScore(scorer, child.rect, child.summary);

  std::vector<SetRTree::NodeId> stack{child_id};
  while (!stack.empty()) {
    const auto& n = tree.node(stack.back());
    stack.pop_back();
    if (n.is_leaf) {
      for (const auto& e : n.entries) {
        const double s = scorer.Score(e.id);
        EXPECT_LE(s, ub_s + 1e-12);
        EXPECT_GE(s, lb_s - 1e-12);
      }
    } else {
      for (const auto& e : n.entries) stack.push_back(e.id);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SetRTreeBoundProperty,
                         ::testing::Values(1, 5, 23));

TEST(SetRTreeBoundsTest, LengthTightenedDominatesSetsOnly) {
  // Both variants must be admissible; the tightened one is never looser
  // (D1 ablation contract).
  const ObjectStore store = MakeStore(800, 31);
  SetRTree tree(&store);
  tree.BulkLoad();
  Rng rng(77);
  for (int trial = 0; trial < 10; ++trial) {
    Query q;
    q.loc = SampleQueryLocation(store, &rng);
    q.doc = SampleQueryKeywords(store, 1 + rng.NextBounded(4), &rng);
    q.k = 5;
    std::vector<SetRTree::NodeId> stack{tree.root()};
    while (!stack.empty()) {
      const auto& node = tree.node(stack.back());
      stack.pop_back();
      const double loose =
          UpperBoundTSim(node.summary, q.doc, SetRBoundVariant::kSetsOnly);
      const double tight = UpperBoundTSim(node.summary, q.doc,
                                          SetRBoundVariant::kLengthTightened);
      EXPECT_LE(tight, loose + 1e-15);
      const double lb_loose =
          LowerBoundTSim(node.summary, q.doc, SetRBoundVariant::kSetsOnly);
      const double lb_tight = LowerBoundTSim(
          node.summary, q.doc, SetRBoundVariant::kLengthTightened);
      EXPECT_GE(lb_tight, lb_loose - 1e-15);
      // Admissibility of the sets-only variant at leaves.
      if (node.is_leaf) {
        for (const auto& e : node.entries) {
          const double tsim = q.doc.Jaccard(store.Get(e.id).doc);
          EXPECT_LE(tsim, loose + 1e-12);
          EXPECT_GE(tsim, lb_loose - 1e-12);
        }
      } else {
        for (const auto& e : node.entries) stack.push_back(e.id);
      }
    }
  }
}

TEST(SetRTreeBoundsTest, EngineResultsIdenticalAcrossBoundVariants) {
  const ObjectStore store = MakeStore(1000, 37);
  SetRTree tree(&store);
  tree.BulkLoad();
  SetRTopKEngine tightened(store, tree);
  SetRTopKEngine loose(store, tree);
  loose.set_bound_variant(SetRBoundVariant::kSetsOnly);
  Rng rng(83);
  for (int trial = 0; trial < 10; ++trial) {
    Query q;
    q.loc = SampleQueryLocation(store, &rng);
    q.doc = SampleQueryKeywords(store, 2, &rng);
    q.k = 10;
    const TopKResult a = tightened.Query(q);
    const TopKResult b = loose.Query(q);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i].id, b[i].id);
  }
}

TEST(SetRTreeBoundsTest, EmptyQueryDocYieldsZeroTSimBounds) {
  SetSummary s;
  SpatialObject o;
  o.doc = KeywordSet({1, 2});
  s.AddObject(o);
  EXPECT_DOUBLE_EQ(UpperBoundTSim(s, KeywordSet()), 0.0);
  EXPECT_DOUBLE_EQ(LowerBoundTSim(s, KeywordSet()), 0.0);
}

TEST(SetRTreeBoundsTest, DisjointVocabularyanishes) {
  SetSummary s;
  SpatialObject o;
  o.doc = KeywordSet({1, 2});
  s.AddObject(o);
  EXPECT_DOUBLE_EQ(UpperBoundTSim(s, KeywordSet({7, 9})), 0.0);
}

TEST(SetRTreeBoundsTest, HomogeneousNodeHasTightBounds) {
  // All objects share the same doc: union == intersection, so the TSim
  // bounds collapse to the exact value.
  SetSummary s;
  SpatialObject o;
  o.doc = KeywordSet({1, 2, 3});
  s.AddObject(o);
  s.AddObject(o);
  const KeywordSet q({2, 3, 4});
  EXPECT_DOUBLE_EQ(UpperBoundTSim(s, q), o.doc.Jaccard(q));
  EXPECT_DOUBLE_EQ(LowerBoundTSim(s, q), o.doc.Jaccard(q));
}

}  // namespace
}  // namespace yask
