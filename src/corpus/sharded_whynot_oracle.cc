#include "src/corpus/sharded_whynot_oracle.h"

namespace yask {

ShardedWhyNotOracle::ShardedWhyNotOracle(const ShardedCorpus& corpus)
    : corpus_(&corpus), topk_(corpus) {
  ctx_.views.reserve(corpus.num_shards());
  ctx_.all_shards.reserve(corpus.num_shards());
  for (size_t s = 0; s < corpus.num_shards(); ++s) {
    const Corpus& shard = corpus.shard(s);
    ctx_.views.push_back(OracleShardView{
        &shard.store(), &shard.setr(),
        shard.has_kcr() ? &shard.kcr() : nullptr,
        &corpus.shard_global_ids(s)});
    ctx_.all_shards.push_back(s);
  }
  ctx_.dist_norm = corpus.dist_norm();
  ctx_.pool = corpus.pool();
}

TopKResult ShardedWhyNotOracle::TopK(const Query& query,
                                     TopKStats* stats) const {
  return topk_.Query(query, stats);
}

}  // namespace yask
