// Quickstart: the YASK library in ~60 lines.
//
// Builds a small synthetic dataset, indexes it, runs a spatial keyword top-k
// query (Definition 1), poses a why-not question for an object missing from
// the result, and prints the explanation plus both refined queries.
//
//   $ ./quickstart

#include <cstdio>

#include "src/corpus/corpus.h"
#include "src/storage/dataset_generator.h"
#include "src/whynot/why_not_engine.h"

using namespace yask;

int main() {
  // 1. A dataset: 10,000 objects, Zipf keywords, clustered locations.
  DatasetSpec spec;
  spec.num_objects = 10000;
  spec.seed = 7;

  // 2. A corpus owns the store plus the indexes the engines need.
  const Corpus corpus = CorpusBuilder().Build(GenerateDataset(spec));
  const ObjectStore& store = corpus.store();
  WhyNotEngine engine(corpus);

  // 3. A top-5 query: location + keywords (+ the default <0.5,0.5> weights).
  Query q;
  q.loc = Point{0.5, 0.5};
  q.doc = KeywordSet({0, 1});  // The two most popular keywords, "kw0 kw1".
  q.k = 5;

  const TopKResult result = engine.TopK(q);
  std::printf("Top-%u for %s\n", q.k, q.ToString(store.vocab()).c_str());
  for (size_t i = 0; i < result.size(); ++i) {
    std::printf("  %zu. object %-6u score %.4f\n", i + 1, result[i].id,
                result[i].score);
  }

  // 4. "Why is object X not in my result?" -- pick the object at rank 9.
  Query probe = q;
  probe.k = 9;
  const ObjectId missing = engine.TopK(probe).back().id;
  std::printf("\nWhy-not question for object %u:\n", missing);

  auto answer = engine.Answer(q, {missing});
  if (!answer.ok()) {
    std::printf("error: %s\n", answer.status().ToString().c_str());
    return 1;
  }
  std::printf("  %s\n", answer->explanations[0].text.c_str());

  // 5. The two refinement models (Definitions 2 and 3).
  const RefinedPreferenceQuery& pref = *answer->preference;
  std::printf(
      "\nPreference adjustment: w=<%.3f,%.3f>, k=%u  (penalty %.4f)\n",
      pref.refined.w.ws, pref.refined.w.wt, pref.refined.k,
      pref.penalty.value);
  const RefinedKeywordQuery& kw = *answer->keyword;
  std::printf("Keyword adaption:      doc={%s}, k=%u  (penalty %.4f)\n",
              kw.refined.doc.ToString(store.vocab()).c_str(), kw.refined.k,
              kw.penalty.value);
  std::printf("Recommended model:     %s\n",
              answer->recommended == RefinementModel::kPreference
                  ? "preference adjustment"
                  : "keyword adaption");

  // 6. The refined result now contains the missing object.
  bool revived = false;
  for (const ScoredObject& so : answer->refined_result) {
    if (so.id == missing) revived = true;
  }
  std::printf("Missing object revived: %s\n", revived ? "yes" : "NO (bug!)");
  return revived ? 0 : 1;
}
