// Copyright (c) 2026 The YASK reproduction authors.
// Geographic helpers for lon/lat datasets (the demo's Hong Kong hotels are
// WGS84 coordinates). The engines rank by normalised Euclidean distance per
// Eqn. (1) — fine within a city — but user-facing output ("1.3 km away")
// and radius filters need great-circle distances.
//
// Convention: Point.x = longitude in degrees, Point.y = latitude in degrees.

#ifndef YASK_COMMON_GEO_H_
#define YASK_COMMON_GEO_H_

#include "src/common/geometry.h"

namespace yask {

/// Mean Earth radius (IUGG).
inline constexpr double kEarthRadiusKm = 6371.0088;

/// Great-circle distance between two lon/lat points, in kilometres
/// (haversine formula; good to ~0.5% everywhere).
double HaversineKm(const Point& lonlat_a, const Point& lonlat_b);

/// A lon/lat bounding box that contains every point within `radius_km` of
/// `center` (conservative: the box is a superset of the disk). Useful as an
/// R-tree pre-filter before exact haversine checks. Longitude spans are
/// clamped to [-180, 180] without wrap-around handling; near the poles the
/// box degenerates to the full longitude range.
Rect GeoBoundingBox(const Point& center, double radius_km);

}  // namespace yask

#endif  // YASK_COMMON_GEO_H_
