// Copyright (c) 2026 The YASK reproduction authors.
// The preference-adjusted why-not module (§2.2 Definition 2, §3.3, ref [5]).
//
// Goal: given the initial query q and missing objects M, find the refined
// query q' = (loc, doc, k', w') minimising penalty Eqn. (3) whose result
// contains all of M.
//
// Method (ref [5]): with ws + wt = 1, each object o becomes the line
//   f_o(w) = w·(1 − SDist(o,q)) + (1−w)·TSim(o,q) ,  w := ws ∈ (0,1) ,
// and rank(m, w) changes only where f_m crosses another object's line. The
// optimal w' therefore lies at a crossing of a missing object's line (or at
// the original w, adjusting only k). The module:
//   1. computes R(M, q) = R0; the pure-k refinement (w unchanged,
//      k' = R0) costs exactly λ and bounds the search;
//   2. derives the feasible interval |w − w0| <= λ·‖(1,ws,wt)‖ / ((1−λ)·√2)
//      outside which the ∆w term alone exceeds the best penalty (D3);
//   3. finds all crossings of missing objects' lines inside the interval —
//      via the two half-plane range queries on the ScorePlaneIndex
//      (optimized) or by brute force (basic);
//   4. evaluates candidate weights nearest-to-w0 first, stopping as soon as
//      the ∆w penalty floor alone exceeds the best penalty found; candidate
//      ranks are computed exactly — by pruned counting on the score-plane
//      index (optimized) or by a full rescan per candidate (the paper's
//      basic baseline);
//   5. returns the candidate with the lowest penalty; ties prefer smaller
//      |w − w0|, then smaller w.
//
// Tie handling. Exactly at a crossing the two objects' scores can tie, and
// the top-k order resolves ties by object id (D6); in evaluated floating-
// point arithmetic the materialised rank change lands within a small jitter
// zone around the algebraic crossing. Each crossing therefore spawns a
// second candidate a fixed small offset beyond it on the far side from w0
// (1e-7; see kStepPastCrossing in the implementation). Ranks are always
// evaluated with the same floating-point score semantics the top-k engine
// uses, so the refinement's k' is guaranteed sufficient to revive M, and
// the result is optimal over all w up to that ∆w resolution.

#ifndef YASK_WHYNOT_PREFERENCE_ADJUSTMENT_H_
#define YASK_WHYNOT_PREFERENCE_ADJUSTMENT_H_

#include <vector>

#include "src/common/status.h"
#include "src/index/score_plane_index.h"
#include "src/query/query.h"
#include "src/query/scoring.h"
#include "src/storage/object_store.h"
#include "src/whynot/penalty.h"

namespace yask {

class WhyNotOracle;  // src/whynot/whynot_oracle.h

/// Algorithm selector for AdjustPreference.
enum class PrefAdjustMode {
  kBasic,      // Brute-force crossings + full rescan per candidate (O(C·n)).
  kOptimized,  // Score-plane index + incremental rank-update sweep.
};

struct PreferenceAdjustOptions {
  /// The λ of Eqn. (3): weight of the ∆k term versus the ∆w term.
  double lambda = 0.5;
  PrefAdjustMode mode = PrefAdjustMode::kOptimized;
  /// Evaluate the Step-4 sweep in speculative nearest-to-w0 segments via
  /// ScorePlaneSession::CountAboveBatch (one oracle fan-out per segment)
  /// instead of one fan-out per candidate weight. The refinement and the
  /// crossing/candidate counters are bit-identical either way: the ∆w floor
  /// is monotone in the nearest-first event order, so the floor cut is
  /// re-applied while consuming a segment and over-fetched results past the
  /// cut are discarded deterministically.
  bool batch_sweep = true;
  /// Events per speculative segment. 0 = ask the session
  /// (ScorePlaneSession::PreferredSweepBatch — latency-adaptive for remote
  /// oracles, 1 for in-process ones, where speculation buys nothing).
  size_t sweep_batch_size = 0;
};

/// Work counters (benchmarks E4/E5/E7).
struct PreferenceAdjustStats {
  size_t crossings_found = 0;       // Candidate events inside the interval.
  size_t candidates_evaluated = 0;  // Penalty evaluations.
  size_t index_nodes_visited = 0;   // ScorePlaneIndex traversal nodes.
  size_t full_rescans = 0;          // O(n) rank scans (basic mode).
  size_t sweep_fanouts = 0;         // Oracle count fan-outs in the sweep.
};

/// The outcome: a refined query plus its cost and diagnostics.
struct RefinedPreferenceQuery {
  Query refined;             // Same loc/doc; adjusted w and k.
  PenaltyBreakdown penalty;  // Eqn. (3) breakdown.
  size_t original_rank = 0;  // R(M, q).
  size_t refined_rank = 0;   // R(M, q').
  bool already_in_result = false;  // M ⊆ top-k(q): nothing to refine.
  PreferenceAdjustStats stats;
};

/// One object's score-plane point — the single expression both layouts use,
/// so a given object maps to bit-identical coordinates everywhere.
inline PlanePoint MakePlanePoint(const Scorer& scorer, const SpatialObject& o,
                                 ObjectId global_id) {
  return PlanePoint{1.0 - scorer.SDist(o.loc), scorer.TSim(o.doc), global_id};
}

/// Maps every object to its score-plane point (1 − SDist, TSim) for `query`.
/// Index i of the result corresponds to ObjectId i.
std::vector<PlanePoint> BuildPlanePoints(const ObjectStore& store,
                                         const Query& query);

/// Shard-aware variant: normalises SDist by `dist_norm` (a sharded corpus
/// passes the GLOBAL dataset diagonal) and stamps each point with its global
/// id via `to_global` (null = local ids are global).
std::vector<PlanePoint> BuildPlanePoints(const ObjectStore& store,
                                         const Query& query, double dist_norm,
                                         const std::vector<ObjectId>* to_global);

/// Solves Definition 2 over any corpus layout behind the oracle seam. The
/// search is layout-independent: every candidate weight's rank is an exact
/// partition-sum, so the refinement is bit-identical across layouts.
Result<RefinedPreferenceQuery> AdjustPreference(
    const WhyNotOracle& oracle, const Query& query,
    const std::vector<ObjectId>& missing,
    const PreferenceAdjustOptions& options = {});

/// Solves Definition 2 over one unsharded store. Errors: invalid query,
/// empty/duplicate-only/unknown missing ids.
Result<RefinedPreferenceQuery> AdjustPreference(
    const ObjectStore& store, const Query& query,
    const std::vector<ObjectId>& missing,
    const PreferenceAdjustOptions& options = {});

}  // namespace yask

#endif  // YASK_WHYNOT_PREFERENCE_ADJUSTMENT_H_
