#include "src/storage/dataset_generator.h"

#include <algorithm>
#include <cassert>
#include <string>

namespace yask {

ObjectStore GenerateDataset(const DatasetSpec& spec) {
  assert(spec.num_objects > 0);
  assert(spec.vocabulary_size > 0);
  assert(spec.min_keywords >= 1 && spec.min_keywords <= spec.max_keywords);

  ObjectStore store;
  Rng rng(spec.seed);

  // Intern the whole vocabulary up front so TermId == popularity rank.
  Vocabulary* vocab = store.mutable_vocab();
  for (size_t i = 0; i < spec.vocabulary_size; ++i) {
    vocab->Intern("kw" + std::to_string(i));
  }
  ZipfSampler zipf(spec.vocabulary_size, spec.keyword_zipf);

  // Cluster centres for kClustered placement.
  std::vector<Point> centres;
  for (size_t i = 0; i < spec.num_clusters; ++i) {
    centres.push_back(Point{rng.NextDouble(), rng.NextDouble()});
  }

  for (size_t i = 0; i < spec.num_objects; ++i) {
    Point loc;
    if (spec.spatial == SpatialDistribution::kUniform || centres.empty()) {
      loc = Point{rng.NextDouble(), rng.NextDouble()};
    } else {
      const Point& c = centres[rng.NextBounded(centres.size())];
      loc.x = std::clamp(rng.NextGaussian(c.x, spec.cluster_stddev), 0.0, 1.0);
      loc.y = std::clamp(rng.NextGaussian(c.y, spec.cluster_stddev), 0.0, 1.0);
    }

    const size_t want = static_cast<size_t>(
        rng.NextInt(static_cast<int64_t>(spec.min_keywords),
                    static_cast<int64_t>(spec.max_keywords)));
    KeywordSet doc;
    // Rejection sampling for distinct keywords; cap attempts to stay O(1)
    // even with tiny vocabularies.
    size_t attempts = 0;
    while (doc.size() < want && attempts < want * 20) {
      doc.Insert(static_cast<TermId>(zipf.Sample(&rng)));
      ++attempts;
    }
    if (doc.empty()) doc.Insert(0);
    store.Add(loc, std::move(doc));
  }
  return store;
}

Point SampleQueryLocation(const ObjectStore& store, Rng* rng,
                          double perturbation) {
  assert(!store.empty());
  const SpatialObject& o = store.Get(
      static_cast<ObjectId>(rng->NextBounded(store.size())));
  return Point{o.loc.x + rng->NextGaussian(0.0, perturbation),
               o.loc.y + rng->NextGaussian(0.0, perturbation)};
}

KeywordSet SampleQueryKeywords(const ObjectStore& store, size_t count,
                               Rng* rng) {
  assert(!store.empty());
  // Draw from a random object's document: guarantees non-empty matches, the
  // way real users type words they expect to exist.
  KeywordSet result;
  size_t guard = 0;
  while (result.size() < count && guard < count * 50) {
    const SpatialObject& o =
        store.Get(static_cast<ObjectId>(rng->NextBounded(store.size())));
    if (!o.doc.empty()) {
      const auto& ids = o.doc.ids();
      result.Insert(ids[rng->NextBounded(ids.size())]);
    }
    ++guard;
  }
  if (result.empty() && store.vocab().size() > 0) result.Insert(0);
  return result;
}

}  // namespace yask
