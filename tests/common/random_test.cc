#include "src/common/random.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace yask {
namespace {

TEST(RngTest, DeterministicForEqualSeeds) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, NextBoundedStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
    EXPECT_EQ(rng.NextBounded(1), 0u);
  }
}

TEST(RngTest, NextBoundedCoversRange) {
  Rng rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.NextBounded(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, NextDoubleUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, NextDoubleRange) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble(-2.5, 4.5);
    EXPECT_GE(d, -2.5);
    EXPECT_LT(d, 4.5);
  }
}

TEST(RngTest, NextIntInclusiveRange) {
  Rng rng(9);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.NextInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // All values hit.
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.NextBernoulli(0.0));
    EXPECT_TRUE(rng.NextBernoulli(1.0));
  }
}

TEST(RngTest, BernoulliRoughlyFair) {
  Rng rng(17);
  int heads = 0;
  for (int i = 0; i < 10000; ++i) heads += rng.NextBernoulli(0.5);
  EXPECT_NEAR(heads, 5000, 300);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(21);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(RngTest, GaussianShifted) {
  Rng rng(23);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.NextGaussian(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(29);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[i] = i;
  std::vector<int> shuffled = v;
  rng.Shuffle(&shuffled);
  EXPECT_NE(shuffled, v);  // Astronomically unlikely to be identity.
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(ZipfSamplerTest, UniformWhenExponentZero) {
  Rng rng(31);
  ZipfSampler zipf(10, 0.0);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 20000; ++i) ++counts[zipf.Sample(&rng)];
  for (int c : counts) EXPECT_NEAR(c, 2000, 300);
}

TEST(ZipfSamplerTest, SkewPrefersLowRanks) {
  Rng rng(37);
  ZipfSampler zipf(100, 1.0);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 50000; ++i) ++counts[zipf.Sample(&rng)];
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[0], 5 * counts[50]);
  // Rank-0 frequency should be near 1/H_100 ~ 0.1928.
  EXPECT_NEAR(counts[0] / 50000.0, 0.1928, 0.02);
}

TEST(ZipfSamplerTest, SingleElement) {
  Rng rng(41);
  ZipfSampler zipf(1, 1.5);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(zipf.Sample(&rng), 0u);
}

TEST(ZipfSamplerTest, SamplesAlwaysInRange) {
  Rng rng(43);
  ZipfSampler zipf(7, 2.0);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(zipf.Sample(&rng), 7u);
}

}  // namespace
}  // namespace yask
