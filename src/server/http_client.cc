#include "src/server/http_client.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <sstream>

#include "src/common/string_util.h"
#include "src/common/timer.h"

namespace yask {

namespace {

/// Sets the socket's recv timeout so a dead peer cannot block past the tick.
void SetRecvTimeout(int fd, int millis) {
  timeval tv{};
  tv.tv_sec = millis / 1000;
  tv.tv_usec = (millis % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

}  // namespace

HttpClientConnection::~HttpClientConnection() { Close(); }

void HttpClientConnection::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  pending_.clear();
}

void HttpClientConnection::FailTransport(bool close_on_error) {
  if (close_on_error) {
    Close();
    return;
  }
  // Deferred teardown (PipelinedHttpChannel): other threads may hold fd_ in
  // send()/recv() right now, so the fd number must stay valid — close()ing
  // it here could hand the number to an unrelated socket mid-write.
  // shutdown() kills the byte stream both ways (wakes a blocked reader with
  // EOF) without freeing the fd; the owner close()s under its lock once no
  // reader is active.
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

bool HttpClientConnection::LooksAlive() {
  if (fd_ < 0) return false;
  pollfd pfd{fd_, POLLIN, 0};
  const int ready = ::poll(&pfd, 1, 0);
  if (ready == 0) return true;  // Quiet socket: the healthy idle state.
  if (ready < 0 || (pfd.revents & (POLLHUP | POLLERR | POLLNVAL)) != 0) {
    Close();
    return false;
  }
  // Readable while idle: either EOF (peer closed) or stray bytes that would
  // desynchronise the next response. Dead either way.
  char b;
  const ssize_t n = ::recv(fd_, &b, 1, MSG_PEEK | MSG_DONTWAIT);
  if (n > 0 || n == 0) {
    Close();
    return false;
  }
  return errno == EAGAIN || errno == EWOULDBLOCK;
}

Status HttpClientConnection::Connect(const std::string& host, uint16_t port,
                                     int timeout_ms) {
  Close();

  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  if (::getaddrinfo(host.c_str(), nullptr, &hints, &res) != 0 ||
      res == nullptr) {
    return Status::Unavailable("cannot resolve host " + host);
  }
  sockaddr_in addr = *reinterpret_cast<sockaddr_in*>(res->ai_addr);
  addr.sin_port = htons(port);
  ::freeaddrinfo(res);

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::Unavailable("socket() failed");

  // Non-blocking connect so the dial honours the timeout.
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  const int rc =
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc < 0 && errno != EINPROGRESS) {
    ::close(fd);
    return Status::Unavailable("connect() to " + host + ":" +
                               std::to_string(port) + " failed: " +
                               std::strerror(errno));
  }
  if (rc < 0) {
    pollfd pfd{fd, POLLOUT, 0};
    const int ready = ::poll(&pfd, 1, timeout_ms);
    int err = 0;
    socklen_t len = sizeof(err);
    if (ready <= 0 ||
        ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) < 0 || err != 0) {
      ::close(fd);
      return Status::Unavailable("connect() to " + host + ":" +
                                 std::to_string(port) +
                                 (ready <= 0 ? " timed out"
                                             : std::string(" failed: ") +
                                                   std::strerror(err)));
    }
  }
  ::fcntl(fd, F_SETFL, flags);

  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  fd_ = fd;
  return Status::OK();
}

Status HttpClientConnection::SendRequest(const std::string& method,
                                         const std::string& path,
                                         std::string_view body, int timeout_ms,
                                         const std::string& extra_headers,
                                         bool close_on_error) {
  if (fd_ < 0) return Status::FailedPrecondition("not connected");
  // Bound the send side: a stalled peer must not block past the deadline
  // once the kernel send buffer fills.
  timeval send_tv{};
  send_tv.tv_sec = timeout_ms / 1000;
  send_tv.tv_usec = (timeout_ms % 1000) * 1000;
  ::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &send_tv, sizeof(send_tv));

  std::ostringstream req;
  req << method << ' ' << path
      << " HTTP/1.1\r\nHost: shard\r\nContent-Type: application/octet-stream"
      << "\r\nContent-Length: " << body.size()
      << "\r\nConnection: keep-alive\r\n" << extra_headers << "\r\n";
  std::string head = req.str();
  head.append(body.data(), body.size());

  size_t sent = 0;
  while (sent < head.size()) {
    const ssize_t n =
        ::send(fd_, head.data() + sent, head.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      FailTransport(close_on_error);
      return Status::Unavailable("send failed: " + std::string(
                                     n < 0 ? std::strerror(errno) : "closed"));
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

Result<std::string> HttpClientConnection::ReadResponse(int deadline_ms,
                                                       int* status_out,
                                                       bool close_on_error) {
  if (fd_ < 0) return Status::FailedPrecondition("not connected");
  const int64_t deadline = NowMillis() + deadline_ms;
  // Start from the pipelined leftover of the previous read, if any.
  std::string raw = std::move(pending_);
  pending_.clear();
  char buf[8192];
  size_t header_end = std::string::npos;
  size_t content_length = 0;
  bool have_length = false;
  while (true) {
    if (header_end == std::string::npos) {
      header_end = raw.find("\r\n\r\n");
      if (header_end != std::string::npos) {
        std::istringstream hs(raw.substr(0, header_end));
        std::string line;
        while (std::getline(hs, line)) {
          if (!line.empty() && line.back() == '\r') line.pop_back();
          const std::string lower = ToLowerAscii(line);
          if (StartsWith(lower, "content-length:")) {
            uint64_t v = 0;
            if (ParseUint64(Trim(line.substr(15)), &v)) {
              content_length = static_cast<size_t>(v);
              have_length = true;
            }
          }
        }
        if (!have_length) {
          FailTransport(close_on_error);
          return Status::Unavailable("response without Content-Length");
        }
      }
    }
    if (header_end != std::string::npos &&
        raw.size() - (header_end + 4) >= content_length) {
      break;
    }
    const int64_t remaining = deadline - NowMillis();
    if (remaining <= 0) {
      // The stale response would desynchronise the next call, so the
      // connection must die with the deadline.
      FailTransport(close_on_error);
      return Status::Unavailable("response read timed out");
    }
    SetRecvTimeout(fd_, static_cast<int>(std::min<int64_t>(remaining, 500)));
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n > 0) {
      raw.append(buf, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR)) {
      continue;  // Tick; the deadline check above bounds the total wait.
    }
    FailTransport(close_on_error);
    return Status::Unavailable("connection closed mid-response");
  }

  if (status_out != nullptr) {
    *status_out = 0;
    const size_t sp = raw.find(' ');
    if (sp != std::string::npos) {
      uint64_t code = 0;
      if (ParseUint64(raw.substr(sp + 1, 3), &code)) {
        *status_out = static_cast<int>(code);
      }
    }
  }
  // Keep whatever followed this response — the next pipelined one.
  const size_t consumed = header_end + 4 + content_length;
  if (raw.size() > consumed) pending_ = raw.substr(consumed);
  return raw.substr(header_end + 4, content_length);
}

Result<std::string> HttpClientConnection::Call(const std::string& method,
                                               const std::string& path,
                                               std::string_view body,
                                               int deadline_ms,
                                               int* status_out,
                                               const std::string& extra_headers) {
  if (Status s = SendRequest(method, path, body, deadline_ms, extra_headers);
      !s.ok()) {
    return s;
  }
  return ReadResponse(deadline_ms, status_out);
}

void PipelinedHttpChannel::FailGenerationLocked() {
  // Contract: never called while a reader holds the fd outside mu_ —
  // Close() frees the fd number, and a recv() racing that close could land
  // on an unrelated socket if the number is reused.
  ++generation_;
  conn_.Close();
  inflight_ = 0;
  next_ticket_ = 0;
  next_read_ = 0;
  kill_pending_ = false;
  cv_.notify_all();
}

size_t PipelinedHttpChannel::inflight() const {
  std::lock_guard<std::mutex> lock(mu_);
  return inflight_;
}

Result<std::string> PipelinedHttpChannel::Call(
    const std::string& method, const std::string& path, std::string_view body,
    int connect_timeout_ms, int deadline_ms, int* status_out,
    const std::string& extra_headers, bool* attempted_out) {
  std::unique_lock<std::mutex> lock(mu_);
  if (!conn_.connected()) {
    if (inflight_ > 0) {
      // A concurrent call is mid-teardown; don't redial under its feet.
      return Status::Unavailable("channel resetting");
    }
    if (Status s = conn_.Connect(host_, port_, connect_timeout_ms); !s.ok()) {
      return s;
    }
    next_ticket_ = 0;
    next_read_ = 0;
  } else if (inflight_ == 0 && !conn_.LooksAlive()) {
    // The peer recycled the idle keep-alive: redial silently — a stale
    // socket must not burn the caller's retry budget.
    if (Status s = conn_.Connect(host_, port_, connect_timeout_ms); !s.ok()) {
      return s;
    }
    next_ticket_ = 0;
    next_read_ = 0;
  }

  if (attempted_out != nullptr) *attempted_out = true;
  const uint64_t gen = generation_;
  const uint64_t ticket = next_ticket_++;
  ++inflight_;
  // Send under the lock: ticket order must equal wire order. close_on_error
  // is off for every conn_ call on this channel — a reader may be blocked in
  // recv() on this fd with mu_ released, so error paths only shutdown() the
  // socket; the actual close() happens in FailGenerationLocked, which only
  // ever runs with no reader active.
  if (Status s = conn_.SendRequest(method, path, body, deadline_ms,
                                   extra_headers, /*close_on_error=*/false);
      !s.ok()) {
    if (reader_active_) {
      // SendRequest shut the socket down, so the reader surfaces promptly
      // (EOF or error) and runs the teardown once it relocks.
      kill_pending_ = true;
    } else {
      FailGenerationLocked();
    }
    return s;
  }

  // Wait for this ticket's turn at the read head.
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(deadline_ms);
  while (generation_ == gen && (reader_active_ || next_read_ != ticket)) {
    if (cv_.wait_until(lock, deadline) == std::cv_status::timeout &&
        generation_ == gen && (reader_active_ || next_read_ != ticket)) {
      // The pipeline is stuck ahead of us. Abandoning a ticket would
      // desynchronise every later response, so the whole pipe dies: either
      // right now, or — if a reader is blocked on the wire — as soon as it
      // surfaces (its own deadline bounds that).
      if (reader_active_) {
        kill_pending_ = true;
      } else {
        FailGenerationLocked();
      }
      return Status::Unavailable("pipelined call to " + path + " timed out");
    }
  }
  if (generation_ != gen) {
    return Status::Unavailable("connection reset mid-pipeline (a concurrent "
                               "call on this channel failed)");
  }

  reader_active_ = true;
  lock.unlock();
  const int64_t remaining_ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(
          deadline - std::chrono::steady_clock::now())
          .count();
  int status = 0;
  Result<std::string> resp = conn_.ReadResponse(
      static_cast<int>(remaining_ms < 1 ? 1 : remaining_ms), &status,
      /*close_on_error=*/false);
  lock.lock();
  reader_active_ = false;
  if (!resp.ok()) {
    // ReadResponse shut the socket down but left the fd open (a concurrent
    // sender may still hold it); now that we are back under mu_ with no
    // reader active, fail the generation — which close()s — so every
    // pipelined waiter returns instead of waiting for bytes that can't come.
    FailGenerationLocked();
    return resp;
  }
  ++next_read_;
  if (inflight_ > 0) --inflight_;
  if (kill_pending_) {
    // A waiter abandoned its ticket while we were reading: its response is
    // still on the wire and would desynchronise the next read. Kill the pipe
    // now that the socket is quiet (our own response was consumed).
    FailGenerationLocked();
  } else {
    cv_.notify_all();
  }
  if (status_out != nullptr) *status_out = status;
  return resp;
}

}  // namespace yask
