#include "src/corpus/remote_corpus.h"

#include <algorithm>
#include <chrono>
#include <latch>
#include <optional>
#include <thread>

#include "src/common/geometry.h"
#include "src/common/string_util.h"
#include "src/common/trace.h"
#include "src/common/timer.h"
#include "src/snapshot/snapshot_codec.h"

namespace yask {

// --- RemoteShard -------------------------------------------------------------

RemoteShard::RemoteShard(std::string host, uint16_t port,
                         RemoteShardOptions options,
                         const MetricsRegistry* metrics)
    : host_(std::move(host)), port_(port), options_(options) {
  if (metrics == nullptr) {
    own_metrics_ = std::make_unique<MetricsRegistry>();
    metrics = own_metrics_.get();
  }
  const MetricLabels labels{{"replica", endpoint()}};
  requests_ = metrics->GetCounter("yask_replica_requests_total", labels);
  errors_ = metrics->GetCounter("yask_replica_errors_total", labels);
  retries_ = metrics->GetCounter("yask_replica_retries_total", labels);
  latency_ = metrics->GetHistogram("yask_replica_rpc_latency_ms", labels);
  const size_t channels =
      options_.mux_connections == 0 ? 1 : options_.mux_connections;
  channels_.reserve(channels);
  for (size_t i = 0; i < channels; ++i) {
    channels_.push_back(std::make_unique<PipelinedHttpChannel>(host_, port_));
  }
  trace_channel_ = std::make_unique<PipelinedHttpChannel>(host_, port_);
}

PipelinedHttpChannel* RemoteShard::PickChannel() {
  const size_t n = channels_.size();
  const size_t start = rr_.fetch_add(1, std::memory_order_relaxed) % n;
  PipelinedHttpChannel* best = channels_[start].get();
  size_t best_load = best->inflight();
  for (size_t i = 1; i < n && best_load > 0; ++i) {
    PipelinedHttpChannel* ch = channels_[(start + i) % n].get();
    const size_t load = ch->inflight();
    if (load < best_load) {
      best = ch;
      best_load = load;
    }
  }
  return best;
}

Result<std::string> RemoteShard::Call(const std::string& method,
                                      const std::string& path,
                                      std::string_view body) {
  // One span per replica attempt sequence: a mid-request failover shows up
  // in the trace as a second rpc span on the sibling replica.
  ScopedSpan span("rpc " + path, endpoint());
  Timer timer;
  Result<std::string> out = CallInternal(method, path, body);
  latency_->Observe(timer.ElapsedMillis());
  return out;
}

Result<std::string> RemoteShard::CallInternal(const std::string& method,
                                              const std::string& path,
                                              std::string_view body) {
  // Propagate the trace context (if any) on every attempt; old servers
  // ignore the header, untraced requests send nothing.
  const std::string trace_header = TraceHeaderLine();

  Status last = Status::Unavailable("no attempt made");
  // Each attempt pipelines onto a channel (rotating on retry, so a retry
  // lands on a different connection while the failed one redials lazily).
  // The channel absorbs keep-alive staleness itself: a half-closed idle
  // socket is redialled WITHOUT counting as an attempt, so recycling cannot
  // burn the retry budget; `attempted` only flips once a live connection
  // carried the request — connect failures don't move the requests meter.
  for (int attempt = 0; attempt <= options_.retries; ++attempt) {
    if (attempt > 0) retries_->Add();
    PipelinedHttpChannel* channel = PickChannel();
    bool attempted = false;
    int http_status = 0;
    Result<std::string> resp = channel->Call(
        method, path, body, options_.connect_timeout_ms,
        options_.call_deadline_ms, &http_status, trace_header, &attempted);
    if (attempted) requests_->Add();
    if (!resp.ok()) {
      last = resp.status();
      continue;
    }
    if (http_status == 200) return resp;
    // Semantic error: surface immediately (a retry would just repeat it).
    const std::string detail = "shard " + host_ + ":" +
                               std::to_string(port_) + " " + path + " -> " +
                               std::to_string(http_status) + " " + *resp;
    switch (http_status) {
      case 404: return Status::NotFound(detail);
      case 501: return Status::FailedPrecondition(detail);
      default: return Status::Unavailable(detail);
    }
  }
  errors_->Add();
  return Status::Unavailable("shard " + host_ + ":" + std::to_string(port_) +
                             " unreachable: " + last.message());
}

Result<std::string> RemoteShard::CallUnmetered(const std::string& method,
                                               const std::string& path,
                                               std::string_view body,
                                               int deadline_ms) {
  int http_status = 0;
  // A dead replica must not stall the caller for the full RPC dial budget:
  // the read's own deadline also bounds the (re)dial.
  const int connect_ms = std::min(options_.connect_timeout_ms, deadline_ms);
  // Never the metered channels: a transport failure on a pipelined channel
  // fails every call in flight on it, so a trace read timing out at the
  // head of a shared pipeline would fail concurrent metered RPCs — moving
  // the very requests/errors meters (and error epoch) the trace reader is
  // trying to observe. Trace reads get their own keep-alive channel.
  Result<std::string> resp = trace_channel_->Call(method, path, body,
                                                  connect_ms, deadline_ms,
                                                  &http_status);
  if (!resp.ok()) return resp;
  if (http_status != 200) {
    return Status::Unavailable("shard " + endpoint() + " " + path + " -> " +
                               std::to_string(http_status));
  }
  return resp;
}

namespace {

/// Replicas booted from the same shard snapshot must agree on the shard's
/// whole identity; any disagreement means the operator pointed a group at
/// mixed builds, and failover between them would corrupt results.
bool SameShardIdentity(const shardrpc::ShardMeta& a,
                       const shardrpc::ShardMeta& b) {
  return a.shard_index == b.shard_index && a.shard_count == b.shard_count &&
         a.object_count == b.object_count && a.dist_norm == b.dist_norm &&
         a.global_bounds == b.global_bounds && a.has_kcr == b.has_kcr &&
         a.setr_empty == b.setr_empty &&
         a.setr_root_mbr == b.setr_root_mbr && a.global_ids == b.global_ids;
}

/// The Connect-time protocol handshake, shared with lazy validation.
Status CheckProtocolRange(const std::string& endpoint,
                          const shardrpc::ShardMeta& meta) {
  if (meta.protocol_version < shardrpc::kMinSupportedProtocolVersion ||
      meta.protocol_version > shardrpc::kProtocolVersion) {
    return Status::FailedPrecondition(
        endpoint + " speaks shard protocol version " +
        std::to_string(meta.protocol_version) + ", coordinator supports " +
        std::to_string(shardrpc::kMinSupportedProtocolVersion) + ".." +
        std::to_string(shardrpc::kProtocolVersion));
  }
  return Status::OK();
}

}  // namespace

// --- ReplicaSet --------------------------------------------------------------

ReplicaSet::ReplicaSet(std::vector<std::unique_ptr<RemoteShard>> replicas,
                       RemoteShardOptions options,
                       const MetricsRegistry* metrics, uint32_t shard_index)
    : replicas_(std::move(replicas)), options_(options) {
  health_.reserve(replicas_.size());
  for (size_t r = 0; r < replicas_.size(); ++r) {
    health_.push_back(std::make_unique<Health>());
  }
  const MetricLabels labels{{"shard", std::to_string(shard_index)}};
  failovers_ = metrics->GetCounter("yask_failovers_total", labels);
  cooldown_entries_ =
      metrics->GetCounter("yask_cooldown_entries_total", labels);
  lazy_validations_ =
      metrics->GetCounter("yask_replica_lazy_validations_total", labels);
  lazy_rejections_ =
      metrics->GetCounter("yask_replica_rejections_total", labels);
  call_latency_ = metrics->GetHistogram("yask_shard_rpc_latency_ms", labels);
  metrics->AddGaugeCallback("yask_replicas_pending_validation", labels,
                            [this] {
                              double pending = 0;
                              for (size_t r = 0; r < replicas_.size(); ++r) {
                                if (validation(r) ==
                                    ReplicaValidation::kPending) {
                                  ++pending;
                                }
                              }
                              return pending;
                            });
  // Computed at scrape time; `this` lives behind a unique_ptr in the corpus
  // that also owns the registry, so the callback cannot outlive the set.
  metrics->AddGaugeCallback("yask_replicas_cooling", labels, [this] {
    double cooling = 0;
    for (size_t r = 0; r < replicas_.size(); ++r) {
      if (InCooldown(r)) ++cooling;
    }
    return cooling;
  });
  metrics->AddGaugeCallback("yask_shard_rpc_ewma_ms", labels,
                            [this] { return rpc_ewma_ms(); });
  metrics->AddGaugeCallback("yask_sweep_batch_events", labels, [this] {
    return static_cast<double>(adaptive_sweep_batch());
  });
}

void ReplicaSet::ObserveLatency(double ms) const {
  call_latency_->Observe(ms);
  // EWMA seeded by the first sample. CAS loop: concurrent fan-out threads
  // land observations here, and a lost update would silently drop samples.
  double prev = rpc_ewma_ms_->load(std::memory_order_relaxed);
  double next;
  do {
    next = prev == 0.0 ? ms : prev + 0.2 * (ms - prev);
  } while (!rpc_ewma_ms_->compare_exchange_weak(prev, next,
                                                std::memory_order_relaxed));
}

size_t ReplicaSet::adaptive_sweep_batch() const {
  const double events = 8.0 + 4.0 * rpc_ewma_ms();
  return static_cast<size_t>(std::min(256.0, std::max(8.0, events)));
}

std::string ReplicaSet::description() const {
  std::string out;
  for (const auto& replica : replicas_) {
    if (!out.empty()) out += '|';
    out += replica->endpoint();
  }
  return out;
}

bool ReplicaSet::InCooldown(size_t r) const {
  const int64_t until = health_[r]->cooldown_until_ms.load();
  return until != 0 && NowMillis() < until;
}

void ReplicaSet::MarkFailure(size_t r) const {
  Health& h = *health_[r];
  const uint32_t fails = h.consecutive_failures.fetch_add(1) + 1;
  if (options_.cooldown_base_ms <= 0) return;
  cooldown_entries_->Add();
  // Exponential backoff: base * 2^(fails-1), capped. A replica that keeps
  // failing is probed ever less often — but always again eventually, which
  // is how a restarted process rejoins the rotation.
  int64_t cooldown = options_.cooldown_base_ms;
  for (uint32_t i = 1; i < fails && cooldown < options_.cooldown_max_ms; ++i) {
    cooldown *= 2;
  }
  cooldown = std::min<int64_t>(cooldown, options_.cooldown_max_ms);
  h.cooldown_until_ms.store(NowMillis() + cooldown);
}

void ReplicaSet::MarkSuccess(size_t r) const {
  Health& h = *health_[r];
  h.consecutive_failures.store(0);
  h.cooldown_until_ms.store(0);
}

void ReplicaSet::SetExpectedIdentity(const shardrpc::ShardMeta& meta) {
  expected_meta_ = std::make_unique<shardrpc::ShardMeta>(meta);
}

void ReplicaSet::MarkPendingValidation(size_t r) const {
  health_[r]->validation.store(
      static_cast<uint8_t>(ReplicaValidation::kPending),
      std::memory_order_release);
  // A cooldown so routing prefers the already-validated siblings; when it
  // expires the replica is probed, which runs the deferred validation.
  MarkFailure(r);
}

Status ReplicaSet::EnsureValidated(size_t r) const {
  switch (validation(r)) {
    case ReplicaValidation::kValidated:
      return Status::OK();
    case ReplicaValidation::kRejected:
      return Status::FailedPrecondition(
          "replica " + replicas_[r]->endpoint() +
          " was rejected: it presented a different shard identity than its "
          "group " + description());
    case ReplicaValidation::kPending:
      break;
  }
  // First contact with a replica that was down at Connect: run the deferred
  // handshake. Concurrent validators are benign — the check is idempotent
  // and both land on the same verdict.
  RemoteShard& replica = *replicas_[r];
  Result<std::string> raw = replica.Call("GET", shardrpc::kMetaPath, "");
  if (!raw.ok()) {
    // Still unreachable (or a semantic error from something that is not a
    // shard server) — stays pending, the caller fails over.
    return Status::Unavailable("replica " + replica.endpoint() +
                               " still pending validation: " +
                               raw.status().message());
  }
  BufReader in(raw->data(), raw->size());
  Result<shardrpc::ShardMeta> meta = shardrpc::GetShardMeta(&in);
  Status verdict = Status::OK();
  if (!meta.ok()) {
    verdict = Status::FailedPrecondition(replica.endpoint() +
                                         " answered with undecodable shard "
                                         "meta: " + meta.status().message());
  } else if (Status range = CheckProtocolRange(replica.endpoint(), *meta);
             !range.ok()) {
    verdict = range;
  } else if (expected_meta_ != nullptr &&
             !SameShardIdentity(*expected_meta_, *meta)) {
    verdict = Status::FailedPrecondition(
        replica.endpoint() + " disagrees with its replica group " +
        description() +
        " on the shard identity — replicas of one shard must be booted from "
        "the same shard snapshot");
  }
  if (!verdict.ok()) {
    // Permanently out: failing over onto a wrong-snapshot replica would
    // corrupt results, so routing must never pick it again.
    health_[r]->validation.store(
        static_cast<uint8_t>(ReplicaValidation::kRejected),
        std::memory_order_release);
    lazy_rejections_->Add();
    return verdict;
  }
  health_[r]->validation.store(
      static_cast<uint8_t>(ReplicaValidation::kValidated),
      std::memory_order_release);
  lazy_validations_->Add();
  return Status::OK();
}

std::optional<size_t> ReplicaSet::PickReplica(
    const std::vector<bool>* exclude) const {
  const size_t n = replicas_.size();
  const size_t start = rr_.fetch_add(1, std::memory_order_relaxed) % n;
  // Pass 0 takes healthy replicas only; pass 1 accepts the cooling ones —
  // when everything is cooling, an attempt that might succeed beats a
  // guaranteed error.
  for (int pass = 0; pass < 2; ++pass) {
    for (size_t i = 0; i < n; ++i) {
      const size_t r = (start + i) % n;
      if (exclude != nullptr && (*exclude)[r]) continue;
      // A rejected replica serves the WRONG data — never routable.
      if (validation(r) == ReplicaValidation::kRejected) continue;
      if (pass == 0 && InCooldown(r)) continue;
      return r;
    }
  }
  return std::nullopt;
}

Result<std::string> ReplicaSet::Call(const std::string& method,
                                     const std::string& path,
                                     std::string_view body) const {
  Timer timer;
  Status last = Status::Unavailable("no replica attempted");
  std::vector<bool> tried(replicas_.size(), false);
  bool failed_over = false;
  // One routing policy: PickReplica prefers healthy replicas and only then
  // the cooling leftovers; each wire failure excludes that replica and asks
  // again until the set is exhausted.
  while (const std::optional<size_t> r = PickReplica(&tried)) {
    tried[*r] = true;
    // Lazy connect: a replica that was down at Connect validates on first
    // contact. Still-dead or rejected replicas fail over like wire errors.
    if (Status v = EnsureValidated(*r); !v.ok()) {
      last = v;
      failed_over = true;
      if (v.code() == StatusCode::kUnavailable) MarkFailure(*r);
      continue;
    }
    Result<std::string> resp = replicas_[*r]->Call(method, path, body);
    if (resp.ok() || resp.status().code() != StatusCode::kUnavailable) {
      // The wire worked; a semantic HTTP error is an answer, and retrying
      // it on a sibling would just repeat it.
      MarkSuccess(*r);
      if (failed_over) NoteFailover();
      ObserveLatency(timer.ElapsedMillis());
      return resp;
    }
    last = resp.status();
    failed_over = true;
    MarkFailure(*r);
  }
  ObserveLatency(timer.ElapsedMillis());
  return Status::Unavailable("all " + std::to_string(replicas_.size()) +
                             " replica(s) of " + description() +
                             " failed: " + last.message());
}

Result<std::string> ReplicaSet::CallOn(size_t r, const std::string& method,
                                       const std::string& path,
                                       std::string_view body) const {
  // Session placement may land on a pending replica: validate before any
  // session state is built on it. Surface failures as Unavailable so the
  // session owner runs its normal failover + replay.
  if (Status v = EnsureValidated(r); !v.ok()) {
    if (v.code() == StatusCode::kUnavailable) MarkFailure(r);
    return Status::Unavailable(v.message());
  }
  Timer timer;
  Result<std::string> resp = replicas_[r]->Call(method, path, body);
  ObserveLatency(timer.ElapsedMillis());
  if (!resp.ok() && resp.status().code() == StatusCode::kUnavailable) {
    MarkFailure(r);
  } else {
    MarkSuccess(r);
  }
  return resp;
}

uint64_t ReplicaSet::requests() const {
  uint64_t total = 0;
  for (const auto& replica : replicas_) total += replica->requests();
  return total;
}

// --- RemoteCorpus ------------------------------------------------------------

Result<RemoteCorpus> RemoteCorpus::Connect(
    const std::vector<std::string>& endpoints,
    const RemoteShardOptions& options) {
  if (endpoints.empty()) {
    return Status::InvalidArgument("no shard endpoints given");
  }

  // The registry the replicas meter into; adopted by the corpus at the end
  // (unique_ptr keeps the instrument addresses stable across the move).
  auto metrics = std::make_unique<MetricsRegistry>();

  // Dial every replica of every group and fetch its identity. Lazy connect:
  // a replica the dial cannot REACH joins its group as pending (validated on
  // first contact), so one rebooting process never blocks coordinator boot.
  // A replica that ANSWERS anything must pass the full handshake now — and a
  // group with zero live replicas fails fast, because its identity (and the
  // shard set's very shape) is unknowable without at least one answer.
  struct DialedGroup {
    std::vector<std::unique_ptr<RemoteShard>> replicas;
    std::vector<size_t> pending;  // Indices the dial could not reach.
    bool has_meta = false;
    shardrpc::ShardMeta meta;  // The agreed group identity (live replicas).
    std::string label;         // The group as given (error messages).
  };
  std::vector<DialedGroup> groups;
  for (const std::string& group_spec : endpoints) {
    DialedGroup group;
    group.label = group_spec;
    Status last_dial = Status::OK();
    for (const std::string& endpoint : Split(group_spec, '|')) {
      const size_t colon = endpoint.rfind(':');
      uint64_t port = 0;
      if (colon == std::string::npos || colon == 0 ||
          !ParseUint64(endpoint.substr(colon + 1), &port) || port == 0 ||
          port > 65535) {
        return Status::InvalidArgument(
            "bad shard endpoint '" + endpoint +
            "' (want host:port, replicas '|'-joined)");
      }
      auto replica = std::make_unique<RemoteShard>(
          endpoint.substr(0, colon), static_cast<uint16_t>(port), options,
          metrics.get());
      Result<std::string> raw = replica->Call("GET", shardrpc::kMetaPath, "");
      if (!raw.ok()) {
        if (raw.status().code() != StatusCode::kUnavailable) {
          // The endpoint ANSWERED with a semantic error — that is a live
          // process that is not a compatible shard server, not an outage.
          return raw.status();
        }
        last_dial = raw.status();
        group.pending.push_back(group.replicas.size());
        group.replicas.push_back(std::move(replica));
        continue;
      }
      BufReader in(raw->data(), raw->size());
      Result<shardrpc::ShardMeta> meta = shardrpc::GetShardMeta(&in);
      if (!meta.ok()) {
        return Status::InvalidArgument(endpoint + ": bad shard meta: " +
                                       meta.status().message());
      }
      if (Status range = CheckProtocolRange(endpoint, *meta); !range.ok()) {
        return range;
      }
      if (!group.has_meta) {
        group.meta = std::move(meta).value();
        group.has_meta = true;
      } else if (!SameShardIdentity(group.meta, *meta)) {
        return Status::InvalidArgument(
            endpoint + " disagrees with its replica group '" + group_spec +
            "' on the shard identity — replicas of one shard must be booted "
            "from the same shard snapshot");
      }
      group.replicas.push_back(std::move(replica));
    }
    // Split keeps empty fields, so even "" yields one (invalid) endpoint and
    // the loop above has already rejected it — every group here is non-empty.
    if (!group.has_meta) {
      return Status::Unavailable(
          "every replica of shard group '" + group_spec +
          "' is unreachable — a whole-group outage cannot be deferred (the "
          "shard's identity is unknown): " + last_dial.message());
    }
    groups.push_back(std::move(group));
  }

  // Reassemble by manifest identity, exactly one group per shard index.
  const uint32_t shard_count = groups[0].meta.shard_count;
  if (shard_count != groups.size()) {
    return Status::InvalidArgument(
        groups[0].label + " belongs to a " + std::to_string(shard_count) +
        "-shard corpus, but " + std::to_string(groups.size()) +
        " endpoint groups were given");
  }
  RemoteCorpus corpus;
  corpus.shards_.resize(shard_count);
  corpus.metas_.resize(shard_count);
  for (DialedGroup& group : groups) {
    const shardrpc::ShardMeta& meta = group.meta;
    if (meta.shard_count != shard_count) {
      return Status::InvalidArgument(group.label + " claims " +
                                     std::to_string(meta.shard_count) +
                                     " shards, expected " +
                                     std::to_string(shard_count));
    }
    if (meta.shard_index >= shard_count ||
        corpus.shards_[meta.shard_index] != nullptr) {
      return Status::InvalidArgument(
          group.label + " claims shard index " +
          std::to_string(meta.shard_index) +
          (meta.shard_index < shard_count ? ", already served by another "
                                            "endpoint group"
                                          : ", out of range"));
    }
    if (!(meta.global_bounds == groups[0].meta.global_bounds)) {
      return Status::InvalidArgument(group.label +
                                     " disagrees on the global bounds");
    }
    if (meta.dist_norm != groups[0].meta.dist_norm) {
      return Status::InvalidArgument(
          group.label + " disagrees on the SDist normaliser (" +
          std::to_string(meta.dist_norm) + " vs " +
          std::to_string(groups[0].meta.dist_norm) +
          ") — shard snapshots from different builds?");
    }
    const std::vector<size_t> pending = std::move(group.pending);
    auto set = std::make_unique<ReplicaSet>(
        std::move(group.replicas), options, metrics.get(), meta.shard_index);
    // Unreached replicas owe the identity handshake on first contact.
    set->SetExpectedIdentity(meta);
    for (const size_t r : pending) set->MarkPendingValidation(r);
    corpus.shards_[meta.shard_index] = std::move(set);
    corpus.metas_[meta.shard_index] = meta;
  }

  // Global ids must tile 0..total-1 exactly (same check as ShardedCorpus::
  // Load): a missing or doubled object would silently corrupt results.
  uint64_t total = 0;
  for (const shardrpc::ShardMeta& meta : corpus.metas_) {
    total += meta.object_count;
  }
  constexpr auto kUnset = static_cast<uint32_t>(-1);
  corpus.shard_of_.assign(static_cast<size_t>(total), kUnset);
  for (uint32_t s = 0; s < shard_count; ++s) {
    const shardrpc::ShardMeta& meta = corpus.metas_[s];
    if (meta.global_ids.empty()) {
      // Identity mapping is only coherent for a standalone single shard.
      if (shard_count != 1) {
        return Status::InvalidArgument(
            "shard " + std::to_string(s) +
            " reports an identity id map inside a multi-shard corpus");
      }
      std::fill(corpus.shard_of_.begin(), corpus.shard_of_.end(), 0u);
      break;
    }
    for (const ObjectId global : meta.global_ids) {
      if (global >= total || corpus.shard_of_[global] != kUnset) {
        return Status::InvalidArgument(
            "shard metas disagree: global object id " +
            std::to_string(global) + " is out of range or duplicated");
      }
      corpus.shard_of_[global] = s;
    }
  }

  corpus.bounds_ = corpus.metas_[0].global_bounds;
  corpus.dist_norm_ = corpus.metas_[0].dist_norm;
  corpus.has_kcr_ = true;
  for (const shardrpc::ShardMeta& meta : corpus.metas_) {
    corpus.has_kcr_ = corpus.has_kcr_ && meta.has_kcr;
  }

  // The shared vocabulary: fetched once — every shard serialises the same
  // instance (the partitioner shares it), so shard 0's copy is THE copy.
  {
    Result<std::string> raw =
        corpus.shards_[0]->Call("GET", shardrpc::kVocabPath, "");
    if (!raw.ok()) return raw.status();
    BufReader in(raw->data(), raw->size());
    auto vocab = std::make_unique<Vocabulary>();
    if (Status s = LoadVocabulary(&in, vocab.get()); !s.ok()) {
      return Status::InvalidArgument("bad shard vocabulary: " + s.message());
    }
    corpus.vocab_ = std::move(vocab);
  }

  // Coordinator fan-out pool. Unlike the in-process ShardedCorpus::pool()
  // (CPU-bound shard scans, where a 1-core host gains nothing from extra
  // threads), remote fan-out tasks BLOCK on the wire — without a pool every
  // multi-shard plane count or crossing collection degrades to sequential
  // per-shard RPCs and one slow shard serializes the whole round. So every
  // multi-shard corpus gets a pool, one thread per shard unless overridden.
  if (shard_count > 1) {
    size_t threads = options.fanout_threads;
    if (threads == 0) threads = shard_count;
    threads = std::min(threads, static_cast<size_t>(shard_count));
    corpus.pool_ = std::make_unique<ThreadPool>(threads);
  }
  corpus.session_replays_ =
      metrics->GetCounter("yask_session_replays_total");
  corpus.metrics_ = std::move(metrics);
  return corpus;
}

std::vector<uint32_t> RemoteCorpus::shards_without_kcr() const {
  std::vector<uint32_t> missing;
  for (uint32_t s = 0; s < metas_.size(); ++s) {
    if (!metas_[s].has_kcr) missing.push_back(s);
  }
  return missing;
}

void RemoteCorpus::ForEachShard(const std::function<void(size_t)>& fn) const {
  const size_t n = shards_.size();
  if (pool_ == nullptr || n <= 1) {
    for (size_t s = 0; s < n; ++s) fn(s);
    return;
  }
  // Pool workers inherit the submitter's trace context: the rpc spans a
  // fan-out records land in the request's recorder, parented under whatever
  // span was open at the fan-out site.
  const TraceContext trace_ctx = CurrentTraceContext();
  std::latch latch(static_cast<ptrdiff_t>(n));
  for (size_t s = 0; s < n; ++s) {
    pool_->Submit([&fn, &latch, trace_ctx, s] {
      TraceContextScope scope(trace_ctx);
      fn(s);
      latch.count_down();
    });
  }
  latch.wait();
}

Status RemoteCorpus::last_error() const {
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->last;
}

void RemoteCorpus::RecordError(const Status& status) const {
  {
    std::lock_guard<std::mutex> lock(state_->mu);
    state_->last = status;
  }
  state_->error_epoch.fetch_add(1);
}

uint64_t RemoteCorpus::total_requests() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) total += shard->requests();
  return total;
}

uint64_t RemoteCorpus::total_failovers() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) total += shard->failovers();
  return total;
}

const SpatialObject& RemoteCorpus::Object(ObjectId global_id) const {
  static const SpatialObject kEmpty{};
  {
    std::lock_guard<std::mutex> lock(cache_->mu);
    const auto it = cache_->map.find(global_id);
    if (it != cache_->map.end()) return *it->second;
  }
  if (global_id >= shard_of_.size()) {
    RecordError(Status::NotFound("object " + std::to_string(global_id) +
                                 " out of range"));
    return kEmpty;
  }
  Prefetch({global_id});
  std::lock_guard<std::mutex> lock(cache_->mu);
  const auto it = cache_->map.find(global_id);
  return it != cache_->map.end() ? *it->second : kEmpty;
}

void RemoteCorpus::Prefetch(const std::vector<ObjectId>& global_ids) const {
  // Group the ids not yet cached by owning shard.
  std::vector<std::vector<ObjectId>> wanted(shards_.size());
  {
    std::lock_guard<std::mutex> lock(cache_->mu);
    for (const ObjectId global : global_ids) {
      if (global >= shard_of_.size()) continue;
      if (cache_->map.find(global) != cache_->map.end()) continue;
      wanted[shard_of_[global]].push_back(global);
    }
  }
  for (size_t s = 0; s < shards_.size(); ++s) {
    if (wanted[s].empty()) continue;
    std::sort(wanted[s].begin(), wanted[s].end());
    wanted[s].erase(std::unique(wanted[s].begin(), wanted[s].end()),
                    wanted[s].end());
    BufWriter req;
    req.PutVarU64(wanted[s].size());
    for (const ObjectId global : wanted[s]) req.PutU32(global);
    Result<std::string> raw =
        shards_[s]->Call("POST", shardrpc::kObjectsPath, req.data());
    if (!raw.ok()) {
      RecordError(raw.status());
      continue;
    }
    BufReader in(raw->data(), raw->size());
    const uint64_t count = in.GetVarU64();
    std::lock_guard<std::mutex> lock(cache_->mu);
    for (uint64_t i = 0; i < count && in.ok(); ++i) {
      SpatialObject o = shardrpc::GetObject(&in);
      if (!in.ok()) break;
      const ObjectId global = o.id;
      cache_->map[global] = std::make_unique<SpatialObject>(std::move(o));
    }
    if (!in.ok()) {
      RecordError(Status::InvalidArgument("bad /shard/objects response"));
    }
  }
}

ObjectId RemoteCorpus::FindByName(const std::string& name) const {
  BufWriter req;
  req.PutString(name);
  std::vector<ObjectId> found(shards_.size(), kInvalidObject);
  ForEachShard([&](size_t s) {
    Result<std::string> raw =
        shards_[s]->Call("POST", shardrpc::kFindPath, req.data());
    if (!raw.ok()) {
      RecordError(raw.status());
      return;
    }
    BufReader in(raw->data(), raw->size());
    found[s] = in.GetU32();
    if (!in.ok()) found[s] = kInvalidObject;
  });
  // The smallest matching global id across shards IS the global first match
  // (within a shard, local order is global order restricted to the shard).
  ObjectId best = kInvalidObject;
  for (const ObjectId id : found) {
    if (id != kInvalidObject && (best == kInvalidObject || id < best)) {
      best = id;
    }
  }
  return best;
}

// --- RemoteTopKClient --------------------------------------------------------

namespace {

/// One /shard/topk call. Returns false (and records the error) on failure.
bool ShardTopK(const RemoteCorpus& corpus, size_t s, const Query& query,
               double prune_below, TopKResult* rows, TopKStats* stats) {
  BufWriter req;
  shardrpc::PutQuery(&req, query);
  req.PutF64(prune_below);
  Result<std::string> raw =
      corpus.replicas(s).Call("POST", shardrpc::kTopKPath, req.data());
  if (!raw.ok()) {
    corpus.RecordError(raw.status());
    return false;
  }
  BufReader in(raw->data(), raw->size());
  *rows = shardrpc::GetScoredRows(&in);
  stats->nodes_popped += in.GetU64();
  stats->objects_scored += in.GetU64();
  if (!in.ok()) {
    corpus.RecordError(
        Status::InvalidArgument("bad /shard/topk response"));
    rows->clear();
    return false;
  }
  return true;
}

}  // namespace

TopKResult RemoteTopKClient::Query(const ::yask::Query& query,
                                   TopKStats* stats) const {
  if (query.k == 0) return {};  // Same guard as the in-process engines.
  const size_t n = corpus_->num_shards();
  std::vector<TopKResult> parts(n);
  std::vector<TopKStats> part_stats(n);

  // Phase 1: the home shard — nearest SetR root MBR, the same choice the
  // in-process ShardedTopKEngine makes from the trees themselves (the MBRs
  // travelled in the shard metas).
  size_t home = 0;
  double best_distance = std::numeric_limits<double>::infinity();
  for (size_t s = 0; s < n; ++s) {
    const shardrpc::ShardMeta& meta = corpus_->meta(s);
    if (meta.setr_empty) continue;
    const double d = meta.setr_root_mbr.MinDistance(query.loc);
    if (d < best_distance) {
      best_distance = d;
      home = s;
    }
  }
  ShardTopK(*corpus_, home, query,
            -std::numeric_limits<double>::infinity(), &parts[home],
            &part_stats[home]);

  // Identical merge discipline to ShardedTopKEngine (rows already carry
  // global ids): sort under the ScoredObject order, truncate to k.
  TopKResult merged;
  auto merge_part = [&](size_t s) {
    merged.insert(merged.end(), parts[s].begin(), parts[s].end());
    std::sort(merged.begin(), merged.end());
    if (merged.size() > query.k) merged.resize(query.k);
  };
  merge_part(home);

  auto threshold = [&] {
    return merged.size() == query.k
               ? merged.back().score
               : -std::numeric_limits<double>::infinity();
  };

  // Phase 2: the remaining shards, thresholded — broadcast in parallel on
  // the pool, or sequentially nearest-first with a re-tightened threshold.
  if (n > 1 && corpus_->pool() != nullptr) {
    const double prune_below = threshold();
    {
      ScopedSpan fanout_span("topk/fanout",
                             std::to_string(n - 1) + " shards");
      // Captured after the span opens, so the per-replica rpc spans the
      // workers record become its children.
      const TraceContext trace_ctx = CurrentTraceContext();
      std::latch latch(static_cast<ptrdiff_t>(n - 1));
      for (size_t s = 0; s < n; ++s) {
        if (s == home) continue;
        corpus_->pool()->Submit([&, trace_ctx, s] {
          TraceContextScope scope(trace_ctx);
          ShardTopK(*corpus_, s, query, prune_below, &parts[s],
                    &part_stats[s]);
          latch.count_down();
        });
      }
      latch.wait();
    }
    ScopedSpan merge_span("topk/merge");
    for (size_t s = 0; s < n; ++s) {
      if (s != home) merge_part(s);
    }
  } else if (n > 1) {
    std::vector<std::pair<double, size_t>> order;
    for (size_t s = 0; s < n; ++s) {
      if (s == home) continue;
      const shardrpc::ShardMeta& meta = corpus_->meta(s);
      const double d = meta.setr_empty
                           ? std::numeric_limits<double>::infinity()
                           : meta.setr_root_mbr.MinDistance(query.loc);
      order.emplace_back(d, s);
    }
    std::sort(order.begin(), order.end());
    for (const auto& [distance, s] : order) {
      ShardTopK(*corpus_, s, query, threshold(), &parts[s], &part_stats[s]);
      merge_part(s);
    }
  }

  if (stats != nullptr) {
    for (const TopKStats& ps : part_stats) {
      stats->nodes_popped += ps.nodes_popped;
      stats->objects_scored += ps.objects_scored;
    }
  }
  return merged;
}

}  // namespace yask
