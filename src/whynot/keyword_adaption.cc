#include "src/whynot/keyword_adaption.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <memory>
#include <string>

#include "src/common/trace.h"
#include "src/query/scoring.h"
#include "src/whynot/whynot_oracle.h"

namespace yask {

namespace {

/// Iterates all size-`r` index combinations of {0..n-1} in lexicographic
/// order, invoking `fn(indices)`.
template <typename Fn>
void ForEachCombination(size_t n, size_t r, Fn fn) {
  if (r > n) return;
  if (r == 0) {
    const std::vector<size_t> empty;
    fn(empty);
    return;
  }
  std::vector<size_t> idx(r);
  for (size_t i = 0; i < r; ++i) idx[i] = i;
  while (true) {
    fn(idx);
    // Advance to the next combination.
    size_t i = r;
    while (i > 0) {
      --i;
      if (idx[i] != i + n - r) break;
      if (i == 0) return;
    }
    if (idx[i] == i + n - r) return;
    ++idx[i];
    for (size_t k = i + 1; k < r; ++k) idx[k] = idx[k - 1] + 1;
  }
}

}  // namespace

std::vector<KeywordSet> GenerateCandidatesAtDistance(
    const KeywordSet& query_doc, const KeywordSet& insertable,
    size_t distance) {
  std::vector<KeywordSet> out;
  const std::vector<TermId>& del_pool = query_doc.ids();
  const std::vector<TermId>& ins_pool = insertable.ids();
  for (size_t d = 0; d <= std::min(distance, del_pool.size()); ++d) {
    const size_t ins = distance - d;
    if (ins > ins_pool.size()) continue;
    ForEachCombination(del_pool.size(), d, [&](const std::vector<size_t>& di) {
      KeywordSet base = query_doc;
      for (size_t i : di) base.Erase(del_pool[i]);
      ForEachCombination(
          ins_pool.size(), ins, [&](const std::vector<size_t>& ii) {
            KeywordSet cand = base;
            for (size_t i : ii) cand.Insert(ins_pool[i]);
            if (!cand.empty()) out.push_back(std::move(cand));
          });
    });
  }
  return out;
}

Result<RefinedKeywordQuery> AdaptKeywords(
    const WhyNotOracle& oracle, const Query& query,
    const std::vector<ObjectId>& missing,
    const KeywordAdaptOptions& options) {
  if (Status s = query.Validate(); !s.ok()) return s;
  if (missing.empty()) {
    return Status::InvalidArgument("missing object set must be non-empty");
  }
  if (options.lambda < 0.0 || options.lambda > 1.0) {
    return Status::InvalidArgument("lambda must lie in [0, 1]");
  }
  std::vector<ObjectId> m_ids = missing;
  std::sort(m_ids.begin(), m_ids.end());
  m_ids.erase(std::unique(m_ids.begin(), m_ids.end()), m_ids.end());
  for (ObjectId id : m_ids) {
    if (id >= oracle.size()) {
      return Status::NotFound("missing object id " + std::to_string(id) +
                              " is not in the database");
    }
  }

  RefinedKeywordQuery out;
  out.refined = query;
  KeywordAdaptStats& stats = out.stats;
  const double lambda = options.lambda;
  const bool use_tree = options.mode == KwAdaptMode::kBoundAndPrune;

  // M.doc = union of the missing objects' documents; the normaliser of ∆doc.
  KeywordSet m_doc;
  for (ObjectId id : m_ids) {
    m_doc = KeywordSet::Union(m_doc, oracle.Object(id).doc);
  }
  const KeywordSet universe = KeywordSet::Union(query.doc, m_doc);
  const KeywordSet insertable = KeywordSet::Difference(m_doc, query.doc);
  const size_t doc_norm = universe.size();

  // --- R(M, q) under the original query (tie-aware exact ranks). A scan is
  // used in both modes: exact ranking of one object is cache-friendly O(n),
  // and measurement shows the KcR bounds prune too weakly for popular query
  // keywords to beat it (the bounds earn their keep pruning *candidates*,
  // where no exact rank is needed at all — see EXPERIMENTS.md E8/E10).
  // All missing objects go through one batched fan-out. ---
  auto exact_rank_of = [&](const Query& q) {
    std::vector<OracleTargetSpec> specs;
    specs.reserve(m_ids.size());
    for (ObjectId id : m_ids) specs.push_back(OracleTargetSpec{&q, id});
    size_t rank = 0;
    for (size_t count : oracle.OutscoringCountBatch(specs, &stats)) {
      rank = std::max(rank, count + 1);
    }
    return rank;
  };
  const size_t r0 = exact_rank_of(query);
  out.original_rank = r0;
  if (r0 <= query.k) {
    out.refined_rank = r0;
    out.already_in_result = true;
    return out;
  }

  // --- Seed: the pure-k refinement (doc unchanged, k' = r0, cost λ). ---
  struct Best {
    KeywordSet doc;
    size_t rank;
    PenaltyBreakdown penalty;
    size_t delta_doc;
    // Whether `rank` is the exact R(M, q'). A candidate's penalty can pin
    // (∆k interval collapsed at 0) while its rank interval is still open;
    // the winner's exact rank is recomputed once at the end so the reported
    // refined_rank never depends on how the bounds happened to tighten.
    bool rank_exact;
  };
  Best best{query.doc, r0, KeywordPenalty(lambda, query, 0, doc_norm, r0, r0),
            0, true};

  const double norm_k = static_cast<double>(r0) - query.k;  // > 0 here.
  auto penalty_from_rank = [&](size_t delta_doc, size_t rank) {
    return KeywordPenalty(lambda, query, delta_doc, doc_norm, r0, rank);
  };
  auto floor_of = [&](size_t delta_doc) {
    return doc_norm == 0
               ? 0.0
               : (1.0 - lambda) * static_cast<double>(delta_doc) / doc_norm;
  };
  auto k_term_of_rank_lb = [&](size_t rank_lb) {
    const size_t dk = rank_lb > query.k ? rank_lb - query.k : 0;
    return lambda * static_cast<double>(dk) / norm_k;
  };
  // Deterministic preference among equal penalties: smaller ∆doc, then
  // lexicographically smaller keyword id vector.
  auto offer_best = [&](const KeywordSet& doc, size_t rank, size_t delta_doc,
                        const PenaltyBreakdown& pen, bool rank_exact) {
    const bool better =
        pen.value < best.penalty.value ||
        (pen.value == best.penalty.value &&
         (delta_doc < best.delta_doc ||
          (delta_doc == best.delta_doc && doc.ids() < best.doc.ids())));
    if (better) best = Best{doc, rank, pen, delta_doc, rank_exact};
  };

  // --- Candidate evaluators. Both offer a candidate to the running best
  // exactly when its true penalty is at most the best so far, and every cut
  // is strict, so the final winner is independent of the evaluation
  // schedule — which is what lets the batched path regroup the work without
  // changing the answer. ---

  // Per-candidate bound-and-prune (the per-probe legacy path, kept for the
  // before/after round-trip comparison of bench_remote_shards): one rank
  // probe per missing object, refining the widest probe one level per
  // oracle call.
  auto evaluate_with_probes = [&](const KeywordSet& cand,
                                  const Query& cand_query, size_t e,
                                  double floor) {
    std::vector<std::unique_ptr<RankProbe>> probes;
    probes.reserve(m_ids.size());
    for (ObjectId id : m_ids) {
      probes.push_back(oracle.ProbeRank(cand_query, id, &stats));
    }
    while (true) {
      size_t rank_lb = 0;
      size_t rank_ub = 0;
      for (const auto& p : probes) {
        rank_lb = std::max(rank_lb, p->lower());
        rank_ub = std::max(rank_ub, p->upper());
      }
      // Penalty interval from the rank interval. The cut is STRICT: a
      // candidate whose penalty lower bound merely ties the best keeps
      // refining until the ∆k pins, so exact-tie candidates always reach
      // offer_best and its layout-independent tie order — bounds tighten
      // differently over different shard layouts, and a >= cut here would
      // let that difference decide ties.
      const double pen_lb = k_term_of_rank_lb(rank_lb) + floor;
      if (pen_lb > best.penalty.value) {
        ++stats.candidates_pruned_bounds;
        return;
      }
      const size_t dk_lb = rank_lb > query.k ? rank_lb - query.k : 0;
      const size_t dk_ub = rank_ub > query.k ? rank_ub - query.k : 0;
      if (dk_lb == dk_ub) {
        // Penalty pinned exactly (∆k equal at both ends).
        ++stats.candidates_resolved;
        offer_best(cand, rank_ub, e, penalty_from_rank(e, rank_ub),
                   /*rank_exact=*/rank_lb == rank_ub);
        return;
      }
      // Refine the missing object driving the upper rank the hardest by
      // one tree level.
      RankProbe* widest = nullptr;
      for (const auto& p : probes) {
        if (p->resolved()) continue;
        if (widest == nullptr || p->upper() > widest->upper()) {
          widest = p.get();
        }
      }
      if (widest == nullptr) {
        // All resolved yet ∆k interval not collapsed: ranks are exact now.
        ++stats.candidates_resolved;
        offer_best(cand, rank_ub, e, penalty_from_rank(e, rank_ub),
                   /*rank_exact=*/true);
        return;
      }
      {
        ScopedSpan span("kw/refine_level", "probes=1");
        widest->RefineLevel();
      }
      ++stats.probe_fanouts;
      ++stats.refine_levels;
    }
  };

  // Batched bound-and-prune over one chunk of candidates: a single
  // ProbeRankBatch covers every (candidate, missing object) pair, and every
  // refinement level is ONE oracle fan-out across all still-live candidates
  // — one round-trip per shard per level on a remote oracle, instead of one
  // per probe per level.
  auto evaluate_chunk_batched = [&](std::vector<KeywordSet>& chunk, size_t e,
                                    double floor) {
    const size_t m = m_ids.size();
    std::vector<Query> cand_queries;
    cand_queries.reserve(chunk.size());
    for (KeywordSet& cand : chunk) {
      Query cand_query = query;
      cand_query.doc = cand;
      cand_queries.push_back(std::move(cand_query));
    }
    std::vector<OracleTargetSpec> specs;
    specs.reserve(cand_queries.size() * m);
    for (const Query& cq : cand_queries) {
      for (ObjectId id : m_ids) specs.push_back(OracleTargetSpec{&cq, id});
    }

    if (!use_tree) {
      // Basic: exact ranks by (batched) full scans.
      const std::vector<size_t> counts =
          oracle.OutscoringCountBatch(specs, &stats);
      for (size_t c = 0; c < cand_queries.size(); ++c) {
        size_t rank = 0;
        for (size_t j = 0; j < m; ++j) {
          rank = std::max(rank, counts[c * m + j] + 1);
        }
        ++stats.candidates_resolved;
        offer_best(cand_queries[c].doc, rank, e, penalty_from_rank(e, rank),
                   /*rank_exact=*/true);
      }
      return;
    }

    auto batch = oracle.ProbeRankBatch(specs, &stats);
    std::vector<char> live(cand_queries.size(), 1);
    size_t live_count = cand_queries.size();
    std::vector<size_t> to_refine;
    while (live_count > 0) {
      to_refine.clear();
      for (size_t c = 0; c < cand_queries.size(); ++c) {
        if (!live[c]) continue;
        size_t rank_lb = 0;
        size_t rank_ub = 0;
        bool all_resolved = true;
        for (size_t j = 0; j < m; ++j) {
          const size_t i = c * m + j;
          rank_lb = std::max(rank_lb, batch->lower(i));
          rank_ub = std::max(rank_ub, batch->upper(i));
          all_resolved = all_resolved && batch->resolved(i);
        }
        // Same strict cut / exact-pin rules as the per-probe path (see the
        // comment there); only the regrouping of the refinement differs.
        const double pen_lb = k_term_of_rank_lb(rank_lb) + floor;
        if (pen_lb > best.penalty.value) {
          ++stats.candidates_pruned_bounds;
          live[c] = 0;
          --live_count;
          continue;
        }
        const size_t dk_lb = rank_lb > query.k ? rank_lb - query.k : 0;
        const size_t dk_ub = rank_ub > query.k ? rank_ub - query.k : 0;
        if (dk_lb == dk_ub || all_resolved) {
          ++stats.candidates_resolved;
          offer_best(cand_queries[c].doc, rank_ub, e,
                     penalty_from_rank(e, rank_ub),
                     /*rank_exact=*/rank_lb == rank_ub);
          live[c] = 0;
          --live_count;
          continue;
        }
        for (size_t j = 0; j < m; ++j) {
          const size_t i = c * m + j;
          if (!batch->resolved(i)) to_refine.push_back(i);
        }
      }
      if (live_count == 0 || to_refine.empty()) break;
      {
        ScopedSpan span("kw/refine_level",
                        "probes=" + std::to_string(to_refine.size()));
        batch->RefineLevel(to_refine);
      }
      ++stats.probe_fanouts;
      ++stats.refine_levels;
    }
  };

  // --- Enumerate candidates by increasing ∆doc. ---
  const size_t max_distance_pool = query.doc.size() + insertable.size();
  size_t e_cap = options.max_edit_distance == 0
                     ? max_distance_pool
                     : std::min(options.max_edit_distance, max_distance_pool);

  bool done = false;
  std::vector<KeywordSet> chunk;
  for (size_t e = 1; e <= e_cap && !done; ++e) {
    // Whole-level cut. >= is safe HERE (unlike the per-candidate floor cut
    // below): at a level's start `best` came from a smaller ∆doc, so a
    // level-e candidate tying it loses the ∆doc tie-break anyway.
    if (floor_of(e) >= best.penalty.value) break;
    std::vector<KeywordSet> level_candidates =
        GenerateCandidatesAtDistance(query.doc, insertable, e);
    chunk.clear();
    auto flush_chunk = [&] {
      if (chunk.empty()) return;
      evaluate_chunk_batched(chunk, e, floor_of(e));
      chunk.clear();
    };
    for (KeywordSet& cand : level_candidates) {
      if (options.max_candidates != 0 &&
          stats.candidates_generated >= options.max_candidates) {
        stats.truncated = true;
        done = true;
        break;
      }
      ++stats.candidates_generated;
      const double floor = floor_of(e);
      // STRICT, like every other cut: a candidate whose floor merely TIES
      // the best may still win offer_best's deterministic tie order
      // (smaller ∆doc, then smaller keyword ids), so it must be evaluated.
      // A >= cut here would let evaluation order decide exact ties — the
      // per-probe and batched schedules would return different (equally
      // optimal) refinements.
      if (floor > best.penalty.value) {
        ++stats.candidates_pruned_floor;
        continue;
      }

      if (!options.batch_probes) {
        Query cand_query = query;
        cand_query.doc = cand;
        if (!use_tree) {
          // Basic: exact ranks by full scans.
          size_t rank = 0;
          for (ObjectId id : m_ids) {
            rank = std::max(
                rank, oracle.OutscoringCount(cand_query, id, &stats) + 1);
          }
          ++stats.candidates_resolved;
          offer_best(cand, rank, e, penalty_from_rank(e, rank),
                     /*rank_exact=*/true);
        } else {
          evaluate_with_probes(cand, cand_query, e, floor);
        }
        continue;
      }

      chunk.push_back(std::move(cand));
      if (options.probe_batch_size != 0 &&
          chunk.size() >= options.probe_batch_size) {
        flush_chunk();
      }
    }
    flush_chunk();
  }

  if (!best.rank_exact) {
    // The winner's ∆k pinned at 0 before its rank interval collapsed (the
    // candidate revives M inside the original k). Resolve the exact rank so
    // refined_rank is the true R(M, q') in every layout.
    Query best_query = query;
    best_query.doc = best.doc;
    best.rank = exact_rank_of(best_query);
  }

  out.refined.doc = best.doc;
  out.refined.k =
      static_cast<uint32_t>(std::max<size_t>(query.k, best.rank));
  out.refined_rank = best.rank;
  out.penalty = best.penalty;
  return out;
}

Result<RefinedKeywordQuery> AdaptKeywords(
    const ObjectStore& store, const KcRTree& tree, const Query& query,
    const std::vector<ObjectId>& missing,
    const KeywordAdaptOptions& options) {
  const LocalWhyNotOracle oracle(store, /*setr=*/nullptr, &tree);
  return AdaptKeywords(oracle, query, missing, options);
}

}  // namespace yask
