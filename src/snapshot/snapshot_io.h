// Copyright (c) 2026 The YASK reproduction authors.
// SnapshotWriter / SnapshotReader: the container layer of the snapshot file.
//
// File layout (all integers little-endian; see docs/snapshot_format.md):
//
//   header   : u64 magic | u32 format_version | u32 section_count
//            | u64 table_offset
//   payloads : the section payloads, back to back, in AddSection() order
//   table    : section_count entries of
//                u32 section_id | u32 reserved(0) | u64 offset | u64 size
//              | u32 crc32(payload)
//   footer   : u32 crc32(table bytes)
//
// The writer buffers payloads and emits the whole file in one pass; the
// reader slurps the file, validates magic, version, table checksum and
// bounds, then hands out per-section BufReaders after verifying the
// section's own CRC. Every failure path returns a Status.

#ifndef YASK_SNAPSHOT_SNAPSHOT_IO_H_
#define YASK_SNAPSHOT_SNAPSHOT_IO_H_

#include <string>
#include <utility>
#include <vector>

#include "src/common/status.h"
#include "src/snapshot/snapshot_format.h"

namespace yask {

/// Size in bytes of the fixed file header.
inline constexpr size_t kSnapshotHeaderBytes = 24;
/// Size in bytes of one section-table entry.
inline constexpr size_t kSnapshotTableEntryBytes = 28;

/// Descriptor of one section as recorded in the table.
struct SnapshotSectionInfo {
  SectionId id;
  uint64_t offset = 0;  // Absolute file offset of the payload.
  uint64_t size = 0;    // Payload bytes.
  uint32_t crc32 = 0;   // CRC-32 of the payload.
};

/// Assembles a snapshot file section by section.
///
/// Usage:
///   SnapshotWriter w;
///   SaveVocabulary(vocab, w.AddSection(SectionId::kVocabulary));
///   ...
///   Status s = w.WriteTo(path);
class SnapshotWriter {
 public:
  /// Starts a new section and returns the encoder for its payload. The
  /// returned pointer is valid until the next AddSection()/WriteTo() call.
  /// A section id may appear at most once per file.
  BufWriter* AddSection(SectionId id);

  /// Writes header, payloads, table and footer to `path` (atomically via a
  /// temporary sibling file + rename, so a crash never leaves a half-written
  /// snapshot under the target name). Returns the total bytes written via
  /// `bytes_written_out` when non-null.
  Status WriteTo(const std::string& path,
                 uint64_t* bytes_written_out = nullptr) const;

 private:
  std::vector<std::pair<SectionId, BufWriter>> sections_;
};

/// Opens and validates a snapshot file; hands out checksum-verified section
/// payloads. Holds the whole file in memory — section readers alias its
/// buffer, so the SnapshotReader must outlive them.
class SnapshotReader {
 public:
  /// Reads and validates `path` (magic, version, table bounds, table CRC).
  /// Section payload CRCs are verified lazily, per OpenSection() call.
  static Result<SnapshotReader> Open(const std::string& path);

  uint32_t format_version() const { return format_version_; }
  uint64_t file_size() const { return buffer_.size(); }
  const std::vector<SnapshotSectionInfo>& sections() const { return sections_; }

  bool Has(SectionId id) const;

  /// Verifies the section's CRC and returns a decoder over its payload.
  /// NotFound if the file has no such section; InvalidArgument on checksum
  /// mismatch or out-of-bounds extent.
  Result<BufReader> OpenSection(SectionId id) const;

 private:
  SnapshotReader() = default;

  std::string buffer_;
  uint32_t format_version_ = 0;
  std::vector<SnapshotSectionInfo> sections_;
};

}  // namespace yask

#endif  // YASK_SNAPSHOT_SNAPSHOT_IO_H_
