#!/usr/bin/env bash
# Tier-1 verify (ROADMAP.md), end to end: configure, build, run the test
# suite. Run from anywhere; builds into <repo>/build.
#
#   scripts/check.sh              # configure + build + ctest
#   scripts/check.sh --bench      # additionally run bench_snapshot,
#                                 # bench_sharded, bench_whynot_sharded,
#                                 # bench_remote_shards,
#                                 # bench_replica_failover and bench_load,
#                                 # leaving BENCH_*.json in the build dir
#                                 # (each sharded/remote bench fails the run
#                                 # on any divergence from the unsharded
#                                 # answers; the failover bench additionally
#                                 # fails on any client-visible error while
#                                 # replicas are killed under load; the load
#                                 # bench drives open-loop traffic over 64
#                                 # keep-alive connections and fails on any
#                                 # non-200 or payload divergence)
#   scripts/check.sh --fleet      # additionally run scripts/fleet_smoke.sh:
#                                 # a real loopback process fleet (2 shards
#                                 # x 2 replicas of yask_shard_server booted
#                                 # from snapshot files behind a coordinator)
#                                 # serving /query + /whynot while one
#                                 # replica is kill -9ed and restarted —
#                                 # asserts zero non-200 responses, payload
#                                 # parity with the in-process sharded
#                                 # server, and that the /metrics failover
#                                 # counters moved across the kill window —
#                                 # and scripts/fleet_rolling.sh: the
#                                 # rolling-upgrade smoke (dataset_tool
#                                 # reshard 2 -> 4 shards, POST /admin/layout
#                                 # cutover, replica add/remove, and a
#                                 # kill -9 rolling restart of every replica,
#                                 # all under live traffic with byte parity)
#   scripts/check.sh --sanitize   # ASan/UBSan build of the whole tree into
#                                 # <repo>/build-sanitize + ctest under the
#                                 # sanitizers (use for the concurrency and
#                                 # shutdown tests; pair with TSAN_OPTIONS/
#                                 # a TSan toolchain for race hunting)
#   scripts/check.sh --ci         # machine-readable per-phase summaries:
#                                 # every phase emits one line
#                                 #   CHECK-RESULT {"phase":...,"status":
#                                 #   "pass"|"fail","seconds":N}
#                                 # before the run exits non-zero on the
#                                 # first failure, plus one
#                                 #   CHECK-RESULT fleet=<pass|fail|skipped>
#                                 # line so the fleet job is grep-able even
#                                 # when the smoke was not requested — what
#                                 # .github/workflows/ci.yml greps.
#
# The distributed suite alone: (cd build && ctest -L sharded) — that label
# covers the in-process sharding tests AND the remote shard/replica tier;
# the sanitize run below covers it too (full ctest includes every labelled
# test).
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${repo_root}/build"

run_bench=0
run_sanitize=0
run_fleet=0
ci_mode=0
for arg in "$@"; do
  case "$arg" in
    --bench) run_bench=1 ;;
    --sanitize) run_sanitize=1 ;;
    --fleet) run_fleet=1 ;;
    --ci) ci_mode=1 ;;
    *) echo "usage: $0 [--bench] [--fleet] [--sanitize] [--ci]" >&2; exit 2 ;;
  esac
done

# run_phase <name> <cmd...>: runs the command; in --ci mode emits one
# CHECK-RESULT line per phase. The first failing phase ends the run (later
# phases depend on its outputs) — after reporting.
run_phase() {
  local name="$1"
  shift
  local start end status
  start=$(date +%s)
  if "$@"; then
    status=pass
  else
    status=fail
  fi
  end=$(date +%s)
  if [[ "$ci_mode" -eq 1 ]]; then
    echo "CHECK-RESULT {\"phase\":\"${name}\",\"status\":\"${status}\",\"seconds\":$((end - start))}"
  fi
  if [[ "$status" == fail ]]; then
    echo "check.sh: phase '${name}' FAILED" >&2
    exit 1
  fi
}

if [[ "$run_sanitize" -eq 1 ]]; then
  sanitize_dir="${repo_root}/build-sanitize"
  sanitize_flags="-fsanitize=address,undefined -fno-sanitize-recover=all -fno-omit-frame-pointer"
  run_phase sanitize-configure cmake -B "$sanitize_dir" -S "$repo_root" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_CXX_FLAGS="$sanitize_flags" \
    -DCMAKE_EXE_LINKER_FLAGS="$sanitize_flags"
  run_phase sanitize-build cmake --build "$sanitize_dir" -j "$(nproc)"
  run_phase sanitize-ctest env -C "$sanitize_dir" \
    ASAN_OPTIONS=detect_leaks=1 UBSAN_OPTIONS=print_stacktrace=1 \
    ctest --output-on-failure --no-tests=error -j "$(nproc)"
  echo "check.sh: sanitize OK"
fi

run_phase configure cmake -B "$build_dir" -S "$repo_root"
run_phase build cmake --build "$build_dir" -j "$(nproc)"
# --no-tests=error: test registration is conditional on finding gtest, so a
# runner image without it must FAIL the gate, not green-light zero tests.
run_phase ctest env -C "$build_dir" ctest --output-on-failure --no-tests=error -j "$(nproc)"

if [[ "$run_bench" -eq 1 ]]; then
  run_phase bench-snapshot env -C "$build_dir" ./bench_snapshot --json=BENCH_snapshot.json
  run_phase bench-sharded env -C "$build_dir" ./bench_sharded --json=BENCH_sharded.json
  run_phase bench-whynot-sharded env -C "$build_dir" ./bench_whynot_sharded --json=BENCH_whynot_sharded.json
  run_phase bench-remote-shards env -C "$build_dir" ./bench_remote_shards --json=BENCH_remote_shards.json
  run_phase bench-replica-failover env -C "$build_dir" ./bench_replica_failover --json=BENCH_replica_failover.json
  run_phase bench-load env -C "$build_dir" ./bench_load --json=BENCH_load.json
fi

# The fleet smokes emit their satellite CHECK-RESULT lines (pass/fail/
# skipped) so the CI fleet jobs stay grep-able even when the phase is off.
if [[ "$run_fleet" -eq 1 ]]; then
  fleet_status=pass
  "${repo_root}/scripts/fleet_smoke.sh" "$build_dir" || fleet_status=fail
  if [[ "$ci_mode" -eq 1 ]]; then
    echo "CHECK-RESULT fleet=${fleet_status}"
  fi
  if [[ "$fleet_status" == fail ]]; then
    echo "check.sh: phase 'fleet' FAILED" >&2
    exit 1
  fi
  rolling_status=pass
  "${repo_root}/scripts/fleet_rolling.sh" "$build_dir" || rolling_status=fail
  if [[ "$ci_mode" -eq 1 ]]; then
    echo "CHECK-RESULT fleet_rolling=${rolling_status}"
  fi
  if [[ "$rolling_status" == fail ]]; then
    echo "check.sh: phase 'fleet-rolling' FAILED" >&2
    exit 1
  fi
elif [[ "$ci_mode" -eq 1 ]]; then
  echo "CHECK-RESULT fleet=skipped"
  echo "CHECK-RESULT fleet_rolling=skipped"
fi

echo "check.sh: OK"
