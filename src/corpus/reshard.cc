#include "src/corpus/reshard.h"

#include <memory>
#include <utility>

#include "src/corpus/shard_router.h"
#include "src/corpus/sharded_corpus.h"
#include "src/storage/object_store.h"

namespace yask {

Result<ReshardReport> ReshardSnapshots(const std::string& in_prefix,
                                       const std::string& out_prefix,
                                       const ReshardOptions& options) {
  if (options.num_shards == 0) {
    return Status::InvalidArgument("reshard: output shard count must be >= 1");
  }
  if (in_prefix == out_prefix) {
    return Status::InvalidArgument(
        "reshard: output prefix equals input prefix — the old layout must "
        "survive until the new one is validated and cut over to");
  }

  // The input indexes are never queried here, so skip rebuilding any the
  // files lack; the output shards get fresh indexes per options.corpus.
  CorpusOptions load_options;
  load_options.build_kcr_tree = false;
  load_options.build_inverted_index = false;
  Result<ShardedCorpus> loaded = ShardedCorpus::Load(in_prefix, load_options);
  if (!loaded.ok()) {
    return Status(loaded.status().code(),
                  "reshard: loading '" + in_prefix +
                      "': " + loaded.status().message());
  }
  const ShardedCorpus& in = *loaded;

  // Rebuild the global store: ascending global id order with the input's own
  // vocabulary instance reproduces the pre-partition corpus exactly (bounds
  // accumulation order, term ids, D6 id-order ties — see the header).
  ObjectStore store(in.shard(0).store().shared_vocab());
  store.Reserve(in.size());
  for (ObjectId global = 0; global < in.size(); ++global) {
    store.Add(in.Object(global));
  }

  std::unique_ptr<ShardRouter> router;
  if (options.router == "grid") {
    router = GridShardRouter::Fit(store, options.num_shards);
  } else if (options.router == "hash") {
    router = std::make_unique<HashShardRouter>(options.num_shards);
  } else {
    return Status::InvalidArgument("reshard: unknown router '" +
                                   options.router + "' (want grid or hash)");
  }

  ReshardReport report;
  report.from_shards = static_cast<uint32_t>(in.num_shards());
  report.to_shards = options.num_shards;
  report.objects = store.size();
  report.router = router->Describe();

  const ShardedCorpus out =
      ShardedCorpus::Partition(store, std::move(router), options.corpus);
  Result<uint64_t> bytes = out.Save(out_prefix);
  if (!bytes.ok()) {
    return Status(bytes.status().code(), "reshard: saving '" + out_prefix +
                                             "': " + bytes.status().message());
  }
  report.bytes_written = *bytes;
  return report;
}

}  // namespace yask
