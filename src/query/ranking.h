// Copyright (c) 2026 The YASK reproduction authors.
// Rank computation: the position a given object would take in the full
// ranking of D under a query. The why-not machinery is built on ranks:
// R(M, q) — "the lowest rank of the missing objects under q" — normalises
// both penalty functions (Eqns. (3) and (4)), and explanations report the
// rank of each missing object (§3.3).
//
// Rank convention (DESIGN.md D6), consistent with the top-k engines' result
// order: rank(o, q) = 1 + #{o' : ST(o',q) > ST(o,q) or
//                                (ST(o',q) == ST(o,q) and o'.id < o.id)} ,
// which guarantees o ∈ top-k(q) iff rank(o, q) <= k.

#ifndef YASK_QUERY_RANKING_H_
#define YASK_QUERY_RANKING_H_

#include <cstddef>
#include <vector>

#include "src/index/setr_tree.h"
#include "src/query/query.h"
#include "src/query/scoring.h"
#include "src/storage/object_store.h"

namespace yask {

/// Work counters for the pruned rank computation.
struct RankStats {
  size_t nodes_visited = 0;
  size_t objects_scored = 0;
  size_t nodes_counted_wholesale = 0;  // Subtrees resolved by bounds alone.
};

/// THE tie-aware "outranks the target" predicate (D6) — the single source of
/// the rank order every engine, oracle and merge rule must agree on. Ids are
/// compared as GLOBAL ids; the whole cross-layout bit-identity argument of
/// the sharded why-not stack rests on every site using this one rule.
inline bool OutranksTarget(double score, ObjectId id, double target_score,
                           ObjectId target_id) {
  return score > target_score || (score == target_score && id < target_id);
}

/// Exact rank by full scan; the reference implementation.
size_t ComputeRankScan(const ObjectStore& store, const Query& query,
                       ObjectId target);

/// Tie-aware count of objects in `store` (indexed by `tree`) that outrank a
/// target scoring `target_score`: score strictly greater, or equal with
/// global id below `target_global` (D6). `scorer` carries the query and the
/// SDist normaliser (a sharded corpus passes the GLOBAL diagonal). When
/// `to_global` is non-null it maps the store's local ids to global ids (the
/// sharded layout; the target itself need not live in this store); null
/// means ids are already global. This is the partition-sum primitive behind
/// distributed rank: R(o, q) = 1 + Σ over shards of this count.
size_t CountOutscoring(const ObjectStore& store, const SetRTree& tree,
                       const Scorer& scorer, double target_score,
                       ObjectId target_global,
                       const std::vector<ObjectId>* to_global,
                       RankStats* stats = nullptr);

/// Exact rank using SetR-tree score bounds: subtrees whose upper bound falls
/// below the target score are skipped, subtrees whose lower bound exceeds it
/// are counted wholesale, only straddling paths are opened.
size_t ComputeRank(const ObjectStore& store, const SetRTree& tree,
                   const Query& query, ObjectId target,
                   RankStats* stats = nullptr);

/// R(M, q): the lowest (i.e. numerically largest) rank among the missing
/// objects — the rank the refined k' must reach to cover all of M.
size_t LowestRank(const ObjectStore& store, const SetRTree& tree,
                  const Query& query, const std::vector<ObjectId>& missing,
                  RankStats* stats = nullptr);

}  // namespace yask

#endif  // YASK_QUERY_RANKING_H_
