// Copyright (c) 2026 The YASK reproduction authors.
// Synthetic dataset generation (DESIGN.md S3).
//
// The paper's engines were evaluated on datasets "with millions of objects";
// those POI crawls are not redistributable, so benchmarks and tests use
// deterministic synthetic datasets with matched characteristics: clustered or
// uniform spatial distributions and Zipf-skewed keyword popularity.

#ifndef YASK_STORAGE_DATASET_GENERATOR_H_
#define YASK_STORAGE_DATASET_GENERATOR_H_

#include <cstddef>
#include <cstdint>

#include "src/common/random.h"
#include "src/storage/object_store.h"

namespace yask {

/// Spatial placement of generated objects.
enum class SpatialDistribution {
  kUniform,    // i.i.d. uniform over the unit square.
  kClustered,  // Gaussian clusters (city-like hot spots).
};

/// Parameters for GenerateDataset.
struct DatasetSpec {
  size_t num_objects = 10000;
  /// Distinct keywords in the vocabulary.
  size_t vocabulary_size = 1000;
  /// Zipf exponent for keyword popularity (0 = uniform).
  double keyword_zipf = 1.0;
  /// Keywords per object drawn uniformly in [min, max].
  size_t min_keywords = 3;
  size_t max_keywords = 10;
  SpatialDistribution spatial = SpatialDistribution::kClustered;
  /// Number of Gaussian clusters when spatial == kClustered.
  size_t num_clusters = 16;
  /// Cluster standard deviation (fraction of the unit square).
  double cluster_stddev = 0.05;
  uint64_t seed = 42;
};

/// Generates a dataset into a fresh ObjectStore.
///
/// Keywords are named "kw<rank>" (rank 0 the most popular). Locations are
/// clamped to the unit square. Every object has >= 1 keyword and distinct
/// keyword draws (rejection on duplicates), so |o.doc| is exactly the drawn
/// size whenever the vocabulary allows it.
ObjectStore GenerateDataset(const DatasetSpec& spec);

/// Draws a query location by picking a random object and perturbing it;
/// mimics the demo, where queries are clicks near hotels.
Point SampleQueryLocation(const ObjectStore& store, Rng* rng,
                          double perturbation = 0.02);

/// Draws `count` query keywords biased to popular keywords (the terms a user
/// would actually type); returns at least one keyword.
KeywordSet SampleQueryKeywords(const ObjectStore& store, size_t count,
                               Rng* rng);

}  // namespace yask

#endif  // YASK_STORAGE_DATASET_GENERATOR_H_
