// Experiment E1 (DESIGN.md): end-to-end service latency (Fig. 1
// architecture), on the demo's Hong Kong hotel dataset.
//
// Measures the full query -> why-not workflow at three depths:
//   * engine-only (the query processor of Fig. 1),
//   * HTTP round trip for /query (client -> server -> engines -> JSON),
//   * HTTP round trip for /whynot against the cached initial query.
//
// Expected shape: the transport+JSON overhead is a small constant on top of
// the engine time; /whynot dominates /query (it runs both refinement
// models).

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "src/corpus/corpus.h"
#include "src/server/yask_service.h"
#include "src/storage/hotel_generator.h"
#include "src/whynot/why_not_engine.h"

namespace yask {
namespace bench {
namespace {

struct ServiceFixture {
  Corpus corpus;
  const ObjectStore& store;
  YaskService service;

  ServiceFixture()
      : corpus(CorpusBuilder().Build(GenerateHotelDataset())),
        store(corpus.store()),
        service(corpus) {
    Status s = service.Start();
    if (!s.ok()) std::abort();
  }
};

ServiceFixture& Fixture() {
  static ServiceFixture* fixture = new ServiceFixture();
  return *fixture;
}

void BM_EndToEnd_EngineTopK(benchmark::State& state) {
  ServiceFixture& f = Fixture();
  WhyNotEngine engine(f.corpus);
  Rng rng(3);
  const Query q = MakeQuery(f.store, &rng, 2, 3);
  for (auto _ : state) {
    TopKResult r = engine.TopK(q);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_EndToEnd_EngineTopK);

void BM_EndToEnd_EngineWhyNot(benchmark::State& state) {
  ServiceFixture& f = Fixture();
  WhyNotEngine engine(f.corpus);
  Rng rng(3);
  const Query q = MakeQuery(f.store, &rng, 2, 3);
  const std::vector<ObjectId> missing = PickMissing(f.store, q, 1, 7);
  for (auto _ : state) {
    auto answer = engine.Answer(q, missing);
    benchmark::DoNotOptimize(answer);
  }
}
BENCHMARK(BM_EndToEnd_EngineWhyNot);

void BM_EndToEnd_HttpQuery(benchmark::State& state) {
  ServiceFixture& f = Fixture();
  const std::string body =
      R"({"x":114.158,"y":22.281,"keywords":"clean comfortable","k":3})";
  for (auto _ : state) {
    auto resp = HttpFetch(f.service.port(), "POST", "/query", body);
    benchmark::DoNotOptimize(resp);
  }
}
BENCHMARK(BM_EndToEnd_HttpQuery);

void BM_EndToEnd_HttpWhyNot(benchmark::State& state) {
  ServiceFixture& f = Fixture();
  // Issue one initial query to obtain a cached query id and a missing hotel.
  const std::string qbody =
      R"({"x":114.158,"y":22.281,"keywords":"clean comfortable","k":3})";
  auto qresp = HttpFetch(f.service.port(), "POST", "/query", qbody);
  auto parsed = JsonValue::Parse(*qresp);
  const size_t query_id =
      static_cast<size_t>(parsed->Get("query_id").as_number());

  WhyNotEngine engine(f.corpus);
  Rng rng(5);
  Query q;
  q.loc = Point{114.158, 22.281};
  const Vocabulary& v = f.store.vocab();
  q.doc = KeywordSet({v.Find("clean"), v.Find("comfortable")});
  q.k = 3;
  const ObjectId missing = PickMissing(f.store, q, 1, 7)[0];

  JsonValue wn = JsonValue::MakeObject();
  wn.Set("query_id", JsonValue(query_id));
  JsonValue arr = JsonValue::MakeArray();
  arr.Append(JsonValue(static_cast<size_t>(missing)));
  wn.Set("missing", std::move(arr));
  const std::string body = wn.Dump();
  for (auto _ : state) {
    auto resp = HttpFetch(f.service.port(), "POST", "/whynot", body);
    benchmark::DoNotOptimize(resp);
  }
}
BENCHMARK(BM_EndToEnd_HttpWhyNot);

}  // namespace
}  // namespace bench
}  // namespace yask

BENCHMARK_MAIN();
