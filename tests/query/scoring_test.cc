#include "src/query/scoring.h"

#include <gtest/gtest.h>

#include "src/storage/dataset_generator.h"

namespace yask {
namespace {

TEST(NormalizedSpatialDistanceTest, Basics) {
  EXPECT_DOUBLE_EQ(NormalizedSpatialDistance({0, 0}, {3, 4}, 10.0), 0.5);
  EXPECT_DOUBLE_EQ(NormalizedSpatialDistance({0, 0}, {3, 4}, 5.0), 1.0);
  // Clamped to 1 beyond the normaliser.
  EXPECT_DOUBLE_EQ(NormalizedSpatialDistance({0, 0}, {30, 40}, 5.0), 1.0);
  // Degenerate normaliser.
  EXPECT_DOUBLE_EQ(NormalizedSpatialDistance({0, 0}, {3, 4}, 0.0), 0.0);
}

class ScorerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Vocabulary* v = store_.mutable_vocab();
    coffee_ = v->Intern("coffee");
    wifi_ = v->Intern("wifi");
    cozy_ = v->Intern("cozy");
    // Two objects on a 3-4-5 triangle; diag of bounds = 5.
    store_.Add(Point{0, 0}, KeywordSet({coffee_, wifi_}), "near");
    store_.Add(Point{3, 4}, KeywordSet({coffee_, cozy_}), "far");
    query_.loc = Point{0, 0};
    query_.doc = KeywordSet({coffee_, wifi_});
    query_.k = 1;
    query_.w = Weights::FromWs(0.6);
  }
  ObjectStore store_;
  Query query_;
  TermId coffee_, wifi_, cozy_;
};

TEST_F(ScorerTest, EqnOneHandComputed) {
  Scorer scorer(store_, query_);
  // Object 0: SDist = 0, TSim = 1 -> 0.6*1 + 0.4*1 = 1.0.
  EXPECT_DOUBLE_EQ(scorer.Score(ObjectId{0}), 1.0);
  // Object 1: SDist = 5/5 = 1, TSim = |{coffee}|/|{coffee,wifi,cozy}| = 1/3.
  EXPECT_DOUBLE_EQ(scorer.Score(ObjectId{1}), 0.6 * 0.0 + 0.4 * (1.0 / 3.0));
}

TEST_F(ScorerTest, ExplicitNormalizerOverride) {
  Scorer scorer(store_, query_, 10.0);
  EXPECT_DOUBLE_EQ(scorer.SDist(Point{3, 4}), 0.5);
}

TEST_F(ScorerTest, ScoreFromPartsConsistent) {
  Scorer scorer(store_, query_);
  const SpatialObject& o = store_.Get(1);
  EXPECT_DOUBLE_EQ(scorer.Score(o),
                   scorer.ScoreFromParts(scorer.SDist(o.loc),
                                         scorer.TSim(o.doc)));
}

TEST_F(ScorerTest, SpatialComponentBoundsBracketObjects) {
  Scorer scorer(store_, query_);
  const Rect mbr = Rect::FromBounds(1, 1, 4, 5);
  const double max_c = scorer.MaxSpatialComponent(mbr);
  const double min_c = scorer.MinSpatialComponent(mbr);
  EXPECT_LE(min_c, max_c);
  // A point inside the MBR has its spatial component inside the bracket.
  const double c = 1.0 - scorer.SDist(Point{2, 3});
  EXPECT_GE(c, min_c - 1e-12);
  EXPECT_LE(c, max_c + 1e-12);
}

TEST(ScorerPropertyTest, ScoresAlwaysInUnitInterval) {
  DatasetSpec spec;
  spec.num_objects = 500;
  const ObjectStore store = GenerateDataset(spec);
  Rng rng(5);
  for (int t = 0; t < 10; ++t) {
    Query q;
    q.loc = SampleQueryLocation(store, &rng);
    q.doc = SampleQueryKeywords(store, 3, &rng);
    q.k = 10;
    q.w = Weights::FromWs(rng.NextDouble(0.05, 0.95));
    Scorer scorer(store, q);
    for (const SpatialObject& o : store.objects()) {
      const double s = scorer.Score(o);
      EXPECT_GE(s, 0.0);
      EXPECT_LE(s, 1.0);
      EXPECT_GE(scorer.SDist(o.loc), 0.0);
      EXPECT_LE(scorer.SDist(o.loc), 1.0);
    }
  }
}

TEST(ScorerPropertyTest, ScoreMonotoneInWeightForFixedParts) {
  // With SDist < TSim... the weight trade-off: increasing ws favours nearer
  // objects. Check directional consistency via ScoreFromParts.
  ObjectStore store;
  store.Add(Point{0, 0}, KeywordSet());
  Query qa;
  qa.loc = Point{0, 0};
  qa.k = 1;
  qa.w = Weights::FromWs(0.3);
  Query qb = qa;
  qb.w = Weights::FromWs(0.7);
  Scorer sa(store, qa, 1.0);
  Scorer sb(store, qb, 1.0);
  // Near-but-textually-poor part set: sdist 0.1, tsim 0.2.
  EXPECT_LT(sa.ScoreFromParts(0.1, 0.2), sb.ScoreFromParts(0.1, 0.2));
  // Far-but-textually-rich: sdist 0.9, tsim 0.9.
  EXPECT_GT(sa.ScoreFromParts(0.9, 0.9), sb.ScoreFromParts(0.9, 0.9));
}

}  // namespace
}  // namespace yask
