#include "src/common/vocabulary.h"

#include <cassert>

namespace yask {

TermId Vocabulary::Intern(std::string_view word) {
  auto it = index_.find(std::string(word));
  if (it != index_.end()) return it->second;
  const TermId id = static_cast<TermId>(words_.size());
  assert(id != kInvalidTerm);
  words_.emplace_back(word);
  index_.emplace(words_.back(), id);
  return id;
}

TermId Vocabulary::Find(std::string_view word) const {
  auto it = index_.find(std::string(word));
  if (it == index_.end()) return kInvalidTerm;
  return it->second;
}

}  // namespace yask
