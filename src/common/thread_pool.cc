#include "src/common/thread_pool.h"

#include <algorithm>
#include <utility>

namespace yask {

ThreadPool::ThreadPool(size_t num_threads) {
  const size_t n = std::max<size_t>(1, num_threads);
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back(&ThreadPool::WorkerLoop, this);
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    tasks_.push(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] { return !tasks_.empty() || stopping_; });
      if (tasks_.empty()) return;  // stopping_ and fully drained.
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

}  // namespace yask
