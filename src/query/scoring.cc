#include "src/query/scoring.h"

namespace yask {

double NormalizedSpatialDistance(const Point& a, const Point& b, double norm) {
  if (norm <= 0.0) return 0.0;
  return std::min(1.0, Distance(a, b) / norm);
}

Scorer::Scorer(const ObjectStore& store, const Query& query)
    : Scorer(store, query, store.BoundsDiagonal()) {}

Scorer::Scorer(const ObjectStore& store, const Query& query, double dist_norm)
    : store_(&store), query_(&query), dist_norm_(dist_norm) {}

}  // namespace yask
