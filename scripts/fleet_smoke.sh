#!/usr/bin/env bash
# The fleet smoke: a REAL loopback process fleet proving the replica tier's
# contract end to end — the CI `fleet` job's payload, runnable locally via
# scripts/check.sh --fleet (or directly: scripts/fleet_smoke.sh <build_dir>).
#
#   1. Seeds 2-shard snapshot files (one yask_server_demo scripted run).
#   2. Boots 2 shards x 2 replicas: four yask_shard_server PROCESSES, each
#      pair booted from the same shard snapshot file.
#   3. Boots a coordinator (yask_server_demo --serve --remote-shards
#      "a|b,c|d") and an in-process sharded reference server from the same
#      snapshots.
#   4. Runs /query + /whynot traffic against both; every coordinator payload
#      must equal the reference payload byte-for-byte (modulo the
#      response_millis timing fields).
#   5. MID-RUN, kill -9s one replica, later restarts it at the same port,
#      then kill -9s a different replica and leaves it dead.
#   6. Scrapes GET /metrics right before the first kill and again mid-run:
#      yask_failovers_total must MOVE across the kill window, the
#      session-replay counter family must be exported, and a live replica
#      must serve its own shard-side registry.
#   7. Fails on ANY non-200 response, ANY payload divergence, or a fleet
#      that absorbed zero failovers (the kill must actually bite).
#
# shellcheck disable=SC2154  # pid_*/port_* are bound via start_replica's eval.
set -euo pipefail

build_dir="${1:?usage: $0 <build_dir>}"
for bin in yask_server_demo yask_shard_server; do
  if [[ ! -x "${build_dir}/${bin}" ]]; then
    echo "fleet_smoke: ${build_dir}/${bin} not built" >&2
    exit 1
  fi
done

work="$(mktemp -d)"
declare -a fleet_pids=()
cleanup() {
  local pid
  for pid in "${fleet_pids[@]:-}"; do
    kill -9 "$pid" 2>/dev/null || true
  done
  rm -rf "$work"
}
trap cleanup EXIT

# Polls a server log for the bound port ("listening on 127.0.0.1:<port>").
wait_port() {
  local log="$1" port="" tries=0
  while [[ -z "$port" ]]; do
    port="$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9][0-9]*\).*/\1/p' \
              "$log" 2>/dev/null | head -1)"
    if [[ -z "$port" ]]; then
      tries=$((tries + 1))
      if [[ "$tries" -gt 100 ]]; then
        echo "fleet_smoke: server did not come up; log:" >&2
        cat "$log" >&2
        return 1
      fi
      sleep 0.1
    fi
  done
  echo "$port"
}

echo "fleet_smoke: seeding 2-shard snapshots"
"${build_dir}/yask_server_demo" --shards 2 --snapshot "${work}/state" \
  > "${work}/seed.log" 2>&1
for shard in 0 1; do
  if [[ ! -f "${work}/state.shard-${shard}.snap" ]]; then
    echo "fleet_smoke: snapshot state.shard-${shard}.snap missing" >&2
    cat "${work}/seed.log" >&2
    exit 1
  fi
done

# start_replica <shard> <replica> [port] -> sets pid_<s>_<r> / port_<s>_<r>.
start_replica() {
  local s="$1" r="$2" port_arg=()
  [[ "${3:-}" != "" ]] && port_arg=(--port "$3")
  "${build_dir}/yask_shard_server" --snapshot "${work}/state.shard-${s}.snap" \
    ${port_arg[@]:+"${port_arg[@]}"} > "${work}/shard-${s}-${r}.log" 2>&1 &
  local pid=$!
  disown "$pid"  # kill -9 is the point; keep bash's job reaper quiet.
  fleet_pids+=("$pid")
  local port
  port="$(wait_port "${work}/shard-${s}-${r}.log")"
  eval "pid_${s}_${r}=${pid}"
  eval "port_${s}_${r}=${port}"
}

echo "fleet_smoke: booting 2 shards x 2 replicas"
for s in 0 1; do
  for r in 0 1; do
    start_replica "$s" "$r"
  done
done

"${build_dir}/yask_server_demo" --serve --remote-shards \
  "127.0.0.1:${port_0_0}|127.0.0.1:${port_0_1},127.0.0.1:${port_1_0}|127.0.0.1:${port_1_1}" \
  > "${work}/coordinator.log" 2>&1 &
fleet_pids+=("$!")
disown "$!"
coordinator_port="$(wait_port "${work}/coordinator.log")"

"${build_dir}/yask_server_demo" --serve --shards 2 \
  --snapshot "${work}/state" > "${work}/reference.log" 2>&1 &
fleet_pids+=("$!")
disown "$!"
reference_port="$(wait_port "${work}/reference.log")"
echo "fleet_smoke: coordinator :${coordinator_port}, reference :${reference_port}"

# Timing is the one legitimate payload difference between transports.
strip_timing() {
  sed -E 's/"response_millis":[0-9.eE+-]+/"response_millis":0/g'
}

# fetch <port> <path> <body> <outfile> -> echoes the HTTP code.
fetch() {
  curl -s -o "$4" -w '%{http_code}' -X POST -H 'Content-Type: application/json' \
    --data "$3" "http://127.0.0.1:$1$2" || echo 000
}

query_body='{"x":114.158,"y":22.281,"keywords":"clean comfortable","k":3}'
rounds=36
failures=0
for round in $(seq 1 "$rounds"); do
  case "$round" in
    11)
      # Baseline scrape: the failover counters before any replica dies.
      curl -s "http://127.0.0.1:${coordinator_port}/metrics" \
        > "${work}/metrics_before_kill.txt"
      ;;
    12)
      echo "fleet_smoke: kill -9 shard 0 replica 0 (pid ${pid_0_0})"
      kill -9 "${pid_0_0}"
      ;;
    20)
      echo "fleet_smoke: restarting shard 0 replica 0 on port ${port_0_0}"
      start_replica 0 0 "${port_0_0}"
      ;;
    24)
      # Mid-run scrape: the round-12 kill has been absorbed by now.
      curl -s "http://127.0.0.1:${coordinator_port}/metrics" \
        > "${work}/metrics_mid.txt"
      ;;
    28)
      echo "fleet_smoke: kill -9 shard 1 replica 1 (pid ${pid_1_1}) — stays dead"
      kill -9 "${pid_1_1}"
      ;;
  esac

  whynot_body="{\"query_id\":${round},\"missing\":[81],\"model\":\"both\"}"
  for call in query whynot; do
    if [[ "$call" == query ]]; then body="$query_body"; else body="$whynot_body"; fi
    coord_code="$(fetch "$coordinator_port" "/${call}" "$body" "${work}/coord.json")"
    ref_code="$(fetch "$reference_port" "/${call}" "$body" "${work}/ref.json")"
    if [[ "$coord_code" != 200 || "$ref_code" != 200 ]]; then
      echo "fleet_smoke: round ${round} /${call}: coordinator=${coord_code} reference=${ref_code} (want 200/200)" >&2
      failures=$((failures + 1))
      continue
    fi
    if ! diff <(strip_timing < "${work}/coord.json") \
              <(strip_timing < "${work}/ref.json") > /dev/null; then
      echo "fleet_smoke: round ${round} /${call}: payload DIVERGED" >&2
      failures=$((failures + 1))
    fi
  done
done

# metric_sum <file> <family> -> sum over every labeled sample of a counter.
metric_sum() {
  grep -E "^$2(\{[^}]*\})? " "$1" 2>/dev/null \
    | awk '{sum += $NF} END {print sum + 0}'
}

echo "fleet_smoke: checking /metrics moved with the kills"
before_failovers="$(metric_sum "${work}/metrics_before_kill.txt" yask_failovers_total)"
mid_failovers="$(metric_sum "${work}/metrics_mid.txt" yask_failovers_total)"
if [[ "$mid_failovers" -le "$before_failovers" ]]; then
  echo "fleet_smoke: FAILED (yask_failovers_total did not move across the kill window: ${before_failovers} -> ${mid_failovers})" >&2
  exit 1
fi
echo "fleet_smoke: yask_failovers_total ${before_failovers} -> ${mid_failovers} across the kill"
if ! grep -q '^yask_session_replays_total' "${work}/metrics_mid.txt"; then
  echo "fleet_smoke: FAILED (yask_session_replays_total missing from coordinator /metrics)" >&2
  exit 1
fi
# A live replica serves its own shard-side registry on the same path. A
# few retries absorb transient connect hiccups — this asserts the family
# exists, not a single scrape's luck.
replica_ok=0
for attempt in 1 2 3 4 5; do
  curl -s "http://127.0.0.1:${port_0_1}/metrics" > "${work}/replica_metrics.txt" || true
  if grep -q '^yask_shard_requests_total' "${work}/replica_metrics.txt"; then
    replica_ok=1
    break
  fi
  sleep 0.2
done
if [[ "$replica_ok" -ne 1 ]]; then
  echo "fleet_smoke: FAILED (replica /metrics missing yask_shard_requests_total); last scrape was:" >&2
  cat "${work}/replica_metrics.txt" >&2
  exit 1
fi

# The kill must have actually been absorbed as failovers, not dodged.
health="$(curl -s "http://127.0.0.1:${coordinator_port}/health")"
failovers="$(echo "$health" | grep -o '"failovers":[0-9]*' | cut -d: -f2 \
               | awk '{sum += $1} END {print sum + 0}')"
echo "fleet_smoke: ${rounds} rounds, ${failures} failures, ${failovers:-0} failovers absorbed"
if [[ "$failures" -ne 0 ]]; then
  echo "fleet_smoke: FAILED (${failures} bad responses)" >&2
  exit 1
fi
if [[ "${failovers:-0}" -lt 1 ]]; then
  echo "fleet_smoke: FAILED (zero failovers — the kill did not bite)" >&2
  exit 1
fi
echo "fleet_smoke: OK — kills stayed invisible, payloads byte-identical"
