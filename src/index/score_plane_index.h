// Copyright (c) 2026 The YASK reproduction authors.
// The score-plane index behind the preference-adjusted why-not module
// (§3.3, ref [5]).
//
// For a fixed query q, every object o maps to a point
//     P(o) = (x, y) = (1 − SDist(o,q), TSim(o,q))
// and its score as a function of the (normalised, ws + wt = 1) weight
// w := ws is the line
//     f_o(w) = w·x + (1−w)·y .
// The best refined weight must sit where a missing object's line crosses
// another object's line (ref [5]); the module therefore needs, per missing
// object m and feasible interval [wlo, whi], all objects whose line crosses
// f_m inside the interval. The paper retrieves them "using two range
// queries"; this index serves exactly those queries: an STR-packed R-tree
// over the P(o) points supporting
//   * crossing queries (the two half-plane conditions merged into one
//     traversal: a node is pruned iff every point in its MBR keeps a strict
//     sign at both interval ends), and
//   * above-threshold counting (rank of m at a given w).
//
// The index is per-query (P(o) depends on q) and bulk-built in O(n log n).

#ifndef YASK_INDEX_SCORE_PLANE_INDEX_H_
#define YASK_INDEX_SCORE_PLANE_INDEX_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/storage/object.h"

namespace yask {

/// One object in the score plane.
struct PlanePoint {
  double x = 0.0;  // 1 - SDist(o, q)
  double y = 0.0;  // TSim(o, q)
  ObjectId id = kInvalidObject;

  /// Score at weight w (ws = w, wt = 1-w).
  double ScoreAt(double w) const { return w * x + (1.0 - w) * y; }
};

/// A static packed R-tree over score-plane points.
class ScorePlaneIndex {
 public:
  /// Builds over the given points (copied); O(n log n).
  explicit ScorePlaneIndex(std::vector<PlanePoint> points,
                           size_t fanout = 32);

  /// Invokes `fn` for every object whose score line crosses the line through
  /// (anchor.x, anchor.y) within the weight interval [wlo, whi], i.e. whose
  /// score difference to the anchor changes sign (or touches zero) between
  /// the interval ends. A small epsilon slack makes the retrieval a superset
  /// near boundaries: callers re-filter by the crossing weight they compute
  /// from the line coefficients. The anchor object itself, if present in the
  /// index, trivially "crosses" everywhere and is reported too.
  void ForEachCrossing(const PlanePoint& anchor, double wlo, double whi,
                       const std::function<void(const PlanePoint&)>& fn) const;

  /// Number of points whose score at `w` is strictly greater than
  /// `threshold`, plus the number equal to it with id < tie_id (deterministic
  /// rank order, DESIGN.md D6). Runs in O(log n + answer-ish) via subtree
  /// counts.
  size_t CountAbove(double w, double threshold, ObjectId tie_id) const;

  size_t size() const { return points_.size(); }

  /// Nodes visited by the last ForEachCrossing/CountAbove call (for the
  /// pruning-effectiveness benchmark E10/E4).
  size_t last_nodes_visited() const { return last_nodes_visited_; }

 private:
  struct Node {
    // MBR in the score plane.
    double min_x, min_y, max_x, max_y;
    // Leaf: [begin, end) into points_. Internal: [begin, end) into nodes_.
    uint32_t begin, end;
    bool is_leaf;
    uint32_t count;  // Points in the subtree.
  };

  /// Min/max of f(w) = w*x + (1-w)*y over the node MBR (w in [0,1]).
  static double MinScoreAt(const Node& n, double w) {
    return w * n.min_x + (1.0 - w) * n.min_y;
  }
  static double MaxScoreAt(const Node& n, double w) {
    return w * n.max_x + (1.0 - w) * n.max_y;
  }

  std::vector<PlanePoint> points_;
  std::vector<Node> nodes_;
  uint32_t root_ = 0;
  size_t fanout_;
  mutable size_t last_nodes_visited_ = 0;
};

}  // namespace yask

#endif  // YASK_INDEX_SCORE_PLANE_INDEX_H_
