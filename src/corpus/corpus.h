// Copyright (c) 2026 The YASK reproduction authors.
// Corpus: one shard's serving state as a first-class owned object.
//
// Before this layer existed, every binary that wanted to serve queries —
// the server demo, each benchmark, the integration tests, YaskService —
// hand-assembled the same five pieces (ObjectStore + Vocabulary + SetR-tree
// + KcR-tree + inverted index) and wired them together with borrowed
// references. A Corpus owns all of it: the store (which owns the shared
// vocabulary) plus the indexes built over it, with stable addresses (the
// store lives behind a unique_ptr, so moving a Corpus never invalidates the
// trees' store pointers).
//
// Build one with CorpusBuilder — from raw objects (bulk-loads the indexes)
// or from a snapshot file (adopts the serialized arenas; missing indexes are
// rebuilt). Save() writes the whole serving state back to one snapshot file;
// for a partitioned corpus the per-shard file is the shippable unit (see
// sharded_corpus.h).

#ifndef YASK_CORPUS_CORPUS_H_
#define YASK_CORPUS_CORPUS_H_

#include <memory>
#include <string>

#include "src/common/status.h"
#include "src/index/inverted_index.h"
#include "src/index/kcr_tree.h"
#include "src/index/setr_tree.h"
#include "src/query/topk_engine.h"
#include "src/snapshot/snapshot_codec.h"
#include "src/storage/object_store.h"

namespace yask {

/// What CorpusBuilder builds (and what Save() persists).
struct CorpusOptions {
  /// The SetR-tree is mandatory (the top-k engine runs on it); the KcR-tree
  /// powers keyword adaption and the inverted index the baseline engine.
  bool build_kcr_tree = true;
  bool build_inverted_index = false;
  RTreeOptions rtree;
  /// Worker threads of the fan-out pool a ShardedCorpus built with these
  /// options owns (ShardedTopKEngine and ShardedWhyNotOracle share that one
  /// pool; it is created lazily on first use). 0 = auto: one thread per
  /// shard capped by the hardware concurrency, and no pool at all on a
  /// single-core host or a single-shard corpus (fan-outs then run inline,
  /// which is strictly better there). Forced values are clamped to the
  /// shard count — more workers than shards can never help. Ignored by
  /// standalone Corpus builds; not persisted in snapshots.
  size_t fanout_threads = 0;
};

/// One shard's store + indexes, owned. Movable, not copyable.
class Corpus {
 public:
  Corpus(Corpus&&) = default;
  Corpus& operator=(Corpus&&) = default;

  const ObjectStore& store() const { return *store_; }
  const Vocabulary& vocab() const { return store_->vocab(); }
  const SetRTree& setr() const { return *setr_; }

  bool has_kcr() const { return kcr_ != nullptr; }
  /// Requires has_kcr().
  const KcRTree& kcr() const { return *kcr_; }

  /// Null unless built with build_inverted_index or restored from a snapshot
  /// that contained one.
  const InvertedIndex* inverted() const { return inverted_.get(); }

  size_t size() const { return store_->size(); }

  /// A top-k engine over this corpus. The engine borrows; the corpus must
  /// outlive it.
  SetRTopKEngine topk() const { return SetRTopKEngine(*store_, *setr_); }

  /// Serialises the whole serving state (store + vocabulary + every built
  /// index) into one snapshot file. `shard` tags the file as one shard of a
  /// partitioned corpus (ShardedCorpus::Save passes it; standalone corpora
  /// leave it null). Returns the file size in bytes.
  Result<uint64_t> Save(const std::string& path,
                        const ShardManifest* shard = nullptr) const;

 private:
  friend class CorpusBuilder;
  friend class ShardedCorpus;
  Corpus() = default;

  std::unique_ptr<ObjectStore> store_;
  std::unique_ptr<SetRTree> setr_;
  std::unique_ptr<KcRTree> kcr_;
  std::unique_ptr<InvertedIndex> inverted_;
};

/// Builds Corpus instances from raw objects or snapshot files.
///
///   Corpus corpus = CorpusBuilder().Build(GenerateHotelDataset());
///   Result<Corpus> restored = CorpusBuilder().FromSnapshot("state.snap");
class CorpusBuilder {
 public:
  CorpusBuilder() = default;
  explicit CorpusBuilder(CorpusOptions options) : options_(options) {}

  CorpusBuilder& set_options(const CorpusOptions& options) {
    options_ = options;
    return *this;
  }
  const CorpusOptions& options() const { return options_; }

  /// Takes ownership of the store and bulk-loads the configured indexes.
  Corpus Build(ObjectStore store) const;

  /// Restores a corpus from a snapshot file (standalone or per-shard).
  /// Indexes present in the file are adopted; the SetR-tree (always) and the
  /// KcR-tree (when options ask for it) are rebuilt if the file lacks them.
  /// When `manifest_out` is non-null, a per-shard file's manifest is moved
  /// there (callers that expect a standalone file can reject it).
  Result<Corpus> FromSnapshot(
      const std::string& path,
      std::unique_ptr<ShardManifest>* manifest_out = nullptr) const;

 private:
  CorpusOptions options_;
};

}  // namespace yask

#endif  // YASK_CORPUS_CORPUS_H_
