// Copyright (c) 2026 The YASK reproduction authors.
// ShardRouter: the pluggable object -> shard placement policy of a
// ShardedCorpus.
//
// Correctness never depends on the router — the fan-out engine queries every
// shard and the merge is exact — so a router only shapes balance and
// locality. The default GridShardRouter learns an equi-count quantile grid
// from the data (x-quantile columns, y-quantile cells per column, the STR
// idea applied to partitioning), which keeps shards balanced and spatially
// tight so per-shard SetR-tree MBRs stay small. HashShardRouter scatters by
// location hash: balanced but locality-free, useful as a worst-case
// comparison and to prove the seam is pluggable.

#ifndef YASK_CORPUS_SHARD_ROUTER_H_
#define YASK_CORPUS_SHARD_ROUTER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/storage/object_store.h"

namespace yask {

/// Maps objects to shard indexes in [0, num_shards).
class ShardRouter {
 public:
  virtual ~ShardRouter() = default;

  virtual uint32_t num_shards() const = 0;

  /// The shard an object with this location belongs to. Pure: the same
  /// location always routes to the same shard.
  virtual uint32_t Route(const Point& loc) const = 0;

  /// One-line description for manifests and logs ("grid 2x2", "hash 4").
  virtual std::string Describe() const = 0;
};

/// Equi-count spatial grid learned from a store (the default router).
///
/// The data is cut into C = ceil(sqrt(N)) x-quantile columns; each column is
/// cut into y-quantile cells so that the cell counts across columns differ
/// by at most one and exactly N cells exist. Routing is two binary searches.
class GridShardRouter : public ShardRouter {
 public:
  /// Learns the quantile boundaries of `store` for `num_shards` shards
  /// (clamped to >= 1). An empty store yields a router sending everything to
  /// shard 0's cell block.
  static std::unique_ptr<GridShardRouter> Fit(const ObjectStore& store,
                                              uint32_t num_shards);

  uint32_t num_shards() const override { return num_shards_; }
  uint32_t Route(const Point& loc) const override;
  std::string Describe() const override;

 private:
  GridShardRouter() = default;

  uint32_t num_shards_ = 1;
  /// Upper x bounds of columns 0..C-2 (column C-1 is unbounded).
  std::vector<double> col_upper_x_;
  /// Per column: upper y bounds of its cells 0..R_c-2.
  std::vector<std::vector<double>> cell_upper_y_;
  /// Per column: index of its first cell in the flat shard numbering.
  std::vector<uint32_t> col_offset_;
};

/// Stateless location-hash router: balanced in expectation, no locality.
class HashShardRouter : public ShardRouter {
 public:
  explicit HashShardRouter(uint32_t num_shards)
      : num_shards_(num_shards == 0 ? 1 : num_shards) {}

  uint32_t num_shards() const override { return num_shards_; }
  uint32_t Route(const Point& loc) const override;
  std::string Describe() const override;

 private:
  uint32_t num_shards_;
};

}  // namespace yask

#endif  // YASK_CORPUS_SHARD_ROUTER_H_
