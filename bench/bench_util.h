// Shared fixtures for the benchmark harness: datasets and indexes are built
// once per size and cached for the lifetime of the binary, so google-benchmark
// timings measure the operation under test, not repeated setup.
//
// All workloads are seeded: every run of a bench binary replays the identical
// experiment (EXPERIMENTS.md reports these numbers).

#ifndef YASK_BENCH_BENCH_UTIL_H_
#define YASK_BENCH_BENCH_UTIL_H_

#include <map>
#include <memory>
#include <vector>

#include "src/corpus/corpus.h"
#include "src/index/inverted_index.h"
#include "src/index/kcr_tree.h"
#include "src/index/setr_tree.h"
#include "src/query/topk_engine.h"
#include "src/storage/dataset_generator.h"

namespace yask {
namespace bench {

inline constexpr uint64_t kDatasetSeed = 20160901;  // VLDB'16 proceedings.

/// The spec of the benchmark dataset family: clustered spatial placement,
/// Zipf keywords, |vocab| = 2000 — the synthetic stand-in for the POI crawls
/// of refs [5,6].
inline DatasetSpec SharedDatasetSpec(size_t n) {
  DatasetSpec spec;
  spec.num_objects = n;
  spec.vocabulary_size = 2000;
  spec.keyword_zipf = 1.0;
  spec.min_keywords = 3;
  spec.max_keywords = 10;
  spec.seed = kDatasetSeed;
  return spec;
}

/// The benchmark corpus family: the shared dataset plus its SetR-tree, as
/// one owned Corpus. Heavier indexes (KcR-tree, plain R-tree, inverted) stay
/// in their own lazy caches below so a bench only pays for what it uses.
inline const Corpus& SharedCorpus(size_t n) {
  static std::map<size_t, std::unique_ptr<Corpus>>* cache =
      new std::map<size_t, std::unique_ptr<Corpus>>();
  auto it = cache->find(n);
  if (it == cache->end()) {
    CorpusOptions options;
    options.build_kcr_tree = false;
    it = cache
             ->emplace(n, std::make_unique<Corpus>(CorpusBuilder(options).Build(
                              GenerateDataset(SharedDatasetSpec(n)))))
             .first;
  }
  return *it->second;
}

inline const ObjectStore& SharedDataset(size_t n) {
  return SharedCorpus(n).store();
}

inline const SetRTree& SharedSetR(size_t n) { return SharedCorpus(n).setr(); }

inline const KcRTree& SharedKcR(size_t n) {
  static std::map<size_t, std::unique_ptr<KcRTree>>* cache =
      new std::map<size_t, std::unique_ptr<KcRTree>>();
  auto it = cache->find(n);
  if (it == cache->end()) {
    auto tree = std::make_unique<KcRTree>(&SharedDataset(n));
    tree->BulkLoad();
    it = cache->emplace(n, std::move(tree)).first;
  }
  return *it->second;
}

inline const RTree& SharedRTree(size_t n) {
  static std::map<size_t, std::unique_ptr<RTree>>* cache =
      new std::map<size_t, std::unique_ptr<RTree>>();
  auto it = cache->find(n);
  if (it == cache->end()) {
    auto tree = std::make_unique<RTree>(&SharedDataset(n));
    tree->BulkLoad();
    it = cache->emplace(n, std::move(tree)).first;
  }
  return *it->second;
}

inline const InvertedIndex& SharedInverted(size_t n) {
  static std::map<size_t, std::unique_ptr<InvertedIndex>>* cache =
      new std::map<size_t, std::unique_ptr<InvertedIndex>>();
  auto it = cache->find(n);
  if (it == cache->end()) {
    it = cache->emplace(n, std::make_unique<InvertedIndex>(SharedDataset(n)))
             .first;
  }
  return *it->second;
}

/// A query whose location hugs the data and whose keywords certainly match
/// something (the way demo users click the map and type known words).
inline Query MakeQuery(const ObjectStore& store, Rng* rng, size_t num_keywords,
                       uint32_t k) {
  Query q;
  q.loc = SampleQueryLocation(store, rng);
  q.doc = SampleQueryKeywords(store, num_keywords, rng);
  q.k = k;
  q.w = Weights::FromWs(0.5);
  return q;
}

/// Missing objects ranked just outside the top-k (offset .. offset+count).
inline std::vector<ObjectId> PickMissing(const ObjectStore& store,
                                         const Query& q, size_t count,
                                         size_t offset = 5) {
  Query probe = q;
  probe.k = static_cast<uint32_t>(q.k + offset + count + 5);
  const TopKResult wide = TopKScan(store, probe);
  std::vector<ObjectId> missing;
  for (size_t i = q.k + offset; i < wide.size() && missing.size() < count;
       ++i) {
    missing.push_back(wide[i].id);
  }
  return missing;
}

}  // namespace bench
}  // namespace yask

#endif  // YASK_BENCH_BENCH_UTIL_H_
