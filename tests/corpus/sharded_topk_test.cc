// ShardedTopKEngine property test: for randomized datasets, shard counts,
// routers and queries, the parallel fan-out/merge result must be
// BIT-IDENTICAL to the unsharded SetRTopKEngine — same ids in the same
// order, and score doubles that compare equal with ==. This is the
// acceptance gate of the sharding layer: if it ever diverges, the merge (or
// the per-shard scoring normaliser) broke.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/corpus/sharded_corpus.h"
#include "src/query/topk_engine.h"
#include "src/storage/dataset_generator.h"
#include "src/storage/hotel_generator.h"

namespace yask {
namespace {

/// Compares full equality and prints a useful diff on mismatch.
void ExpectBitIdentical(const TopKResult& sharded, const TopKResult& expected,
                        const std::string& label) {
  ASSERT_EQ(sharded.size(), expected.size()) << label;
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(sharded[i].id, expected[i].id)
        << label << " rank " << i << ": id " << sharded[i].id << " vs "
        << expected[i].id;
    // Bit-identity, not near-equality: the sharded path must run the exact
    // same floating-point arithmetic.
    EXPECT_EQ(sharded[i].score, expected[i].score)
        << label << " rank " << i;
  }
}

void RunPropertyTrials(const ObjectStore& store, uint64_t query_seed) {
  const Corpus baseline = CorpusBuilder().Build(ObjectStore(store));
  const SetRTopKEngine reference = baseline.topk();

  CorpusOptions options;
  options.build_kcr_tree = false;
  for (const uint32_t shards : {1u, 2u, 3u, 4u, 7u}) {
    for (const bool use_hash : {false, true}) {
      std::unique_ptr<ShardRouter> router;
      if (use_hash) {
        router = std::make_unique<HashShardRouter>(shards);
      } else {
        router = GridShardRouter::Fit(store, shards);
      }
      const std::string label = router->Describe();
      const ShardedCorpus sharded =
          ShardedCorpus::Partition(store, std::move(router), options);
      const ShardedTopKEngine engine(sharded);

      Rng rng(query_seed);
      for (int trial = 0; trial < 12; ++trial) {
        Query q;
        q.loc = SampleQueryLocation(store, &rng);
        q.doc = SampleQueryKeywords(store, 1 + trial % 4, &rng);
        // Sweep k from tiny through larger-than-corpus (clamped results).
        const uint32_t ks[] = {1, 3, 10, 50,
                               static_cast<uint32_t>(store.size() + 5)};
        q.k = ks[trial % 5];
        ExpectBitIdentical(engine.Query(q), reference.Query(q),
                           label + " trial " + std::to_string(trial));
      }
    }
  }
}

TEST(ShardedTopKPropertyTest, ClusteredSyntheticDataset) {
  DatasetSpec spec;
  spec.num_objects = 3000;
  spec.vocabulary_size = 300;
  spec.seed = 77;
  RunPropertyTrials(GenerateDataset(spec), /*query_seed=*/101);
}

TEST(ShardedTopKPropertyTest, UniformSyntheticDataset) {
  DatasetSpec spec;
  spec.num_objects = 1500;
  spec.vocabulary_size = 100;
  spec.spatial = SpatialDistribution::kUniform;
  spec.seed = 78;
  RunPropertyTrials(GenerateDataset(spec), /*query_seed=*/102);
}

TEST(ShardedTopKPropertyTest, HotelDemoDataset) {
  RunPropertyTrials(GenerateHotelDataset(), /*query_seed=*/103);
}

TEST(ShardedTopKPropertyTest, TieHeavyDegenerateDataset) {
  // Exact score ties everywhere: clones at shared points with shared docs.
  // The merge must reproduce the global id tie-break across shard borders.
  ObjectStore store;
  const TermId a = store.mutable_vocab()->Intern("a");
  const TermId b = store.mutable_vocab()->Intern("b");
  for (int i = 0; i < 300; ++i) {
    const double x = 0.1 + 0.2 * (i % 5);  // Five stacked columns.
    store.Add(Point{x, 0.5}, KeywordSet(i % 2 == 0 ? std::vector<TermId>{a}
                                                   : std::vector<TermId>{a, b}),
              "clone");
  }
  RunPropertyTrials(store, /*query_seed=*/104);
}

TEST(ShardedTopKPropertyTest, StatsAreAccumulatedAcrossShards) {
  DatasetSpec spec;
  spec.num_objects = 2000;
  spec.seed = 79;
  const ObjectStore store = GenerateDataset(spec);
  CorpusOptions options;
  options.build_kcr_tree = false;
  const ShardedCorpus sharded =
      ShardedCorpus::Partition(store, GridShardRouter::Fit(store, 4), options);
  const ShardedTopKEngine engine(sharded);
  Rng rng(5);
  Query q;
  q.loc = SampleQueryLocation(store, &rng);
  q.doc = SampleQueryKeywords(store, 3, &rng);
  q.k = 10;
  TopKStats stats;
  const TopKResult r = engine.Query(q, &stats);
  EXPECT_EQ(r.size(), 10u);
  EXPECT_GT(stats.nodes_popped, 0u);
  EXPECT_GT(stats.objects_scored, 0u);
}

}  // namespace
}  // namespace yask
