// End-to-end integration tests: the full YASK pipeline — dataset, indexes,
// top-k engine, why-not engine, refinement guarantees — on both synthetic
// data and the demo's Hong Kong hotels, mirroring §4's demonstration
// scenarios (Bob's coffee, Carol's conference hotel).

#include <gtest/gtest.h>

#include <set>

#include "src/corpus/corpus.h"
#include "src/query/ranking.h"
#include "src/query/topk_engine.h"
#include "src/storage/dataset_generator.h"
#include "src/storage/hotel_generator.h"
#include "src/whynot/why_not_engine.h"

namespace yask {
namespace {

/// Exercises the complete workflow on one dataset + query + missing pick.
void RunWorkflow(ObjectStore dataset, const Query& q, size_t missing_rank,
                 double lambda) {
  const Corpus corpus = CorpusBuilder().Build(std::move(dataset));
  const ObjectStore& store = corpus.store();
  ASSERT_TRUE(corpus.setr().Validate().ok());
  ASSERT_TRUE(corpus.kcr().Validate().ok());
  WhyNotEngine engine(corpus);

  // Step 1: initial top-k query.
  const TopKResult initial = engine.TopK(q);
  ASSERT_EQ(initial.size(), q.k);

  // Step 2: the user expected the object at rank `missing_rank`.
  Query probe = q;
  probe.k = static_cast<uint32_t>(missing_rank + 1);
  const TopKResult wide = engine.TopK(probe);
  ASSERT_GT(wide.size(), missing_rank);
  const ObjectId expected = wide[missing_rank].id;

  // Step 3: why-not question, both models.
  WhyNotOptions options;
  options.lambda = lambda;
  auto answer = engine.Answer(q, {expected}, options);
  ASSERT_TRUE(answer.ok()) << answer.status().ToString();
  const WhyNotAnswer& a = answer.value();

  // Explanations agree with independent rank computation.
  ASSERT_EQ(a.explanations.size(), 1u);
  EXPECT_EQ(a.explanations[0].rank, missing_rank + 1);
  EXPECT_EQ(a.explanations[0].rank,
            ComputeRank(store, corpus.setr(), q, expected));

  // Both refinements revive the expected object.
  ASSERT_TRUE(a.preference.has_value());
  ASSERT_TRUE(a.keyword.has_value());
  for (const Query& refined :
       {a.preference->refined, a.keyword->refined}) {
    const TopKResult result = engine.TopK(refined);
    std::set<ObjectId> ids;
    for (const ScoredObject& so : result) ids.insert(so.id);
    EXPECT_TRUE(ids.count(expected))
        << "refined query failed to revive object " << expected;
  }

  // Penalties bounded by the pure-k fallback.
  EXPECT_LE(a.preference->penalty.value, lambda + 1e-12);
  EXPECT_LE(a.keyword->penalty.value, lambda + 1e-12);

  // Both models must report the same original rank R(M, q).
  EXPECT_EQ(a.preference->original_rank, a.keyword->original_rank);
  EXPECT_EQ(a.preference->original_rank, missing_rank + 1);
}

TEST(EndToEndTest, BobsCoffeeScenario) {
  // Example 1: Bob wants a top-3 "coffee" result; a nearby cafe is missing.
  ObjectStore store;
  Vocabulary* v = store.mutable_vocab();
  const TermId coffee = v->Intern("coffee");
  const TermId espresso = v->Intern("espresso");
  const TermId bar = v->Intern("bar");
  Rng rng(2016);
  // 200 cafes/bars around town.
  for (int i = 0; i < 200; ++i) {
    KeywordSet doc;
    doc.Insert(rng.NextBernoulli(0.6) ? coffee : bar);
    if (rng.NextBernoulli(0.3)) doc.Insert(espresso);
    store.Add(Point{rng.NextDouble(), rng.NextDouble()}, doc,
              "shop" + std::to_string(i));
  }
  Query q;
  q.loc = Point{0.5, 0.5};
  q.doc = KeywordSet({coffee});
  q.k = 3;
  RunWorkflow(std::move(store), q, /*missing_rank=*/6, /*lambda=*/0.5);
}

TEST(EndToEndTest, CarolsHotelScenario) {
  // Example 2: Carol's top-3 "clean comfortable" hotels near the venue.
  ObjectStore store = GenerateHotelDataset();
  const Vocabulary& v = store.vocab();
  Query q;
  q.loc = Point{114.158, 22.281};
  q.doc = KeywordSet({v.Find("clean"), v.Find("comfortable")});
  q.k = 3;
  RunWorkflow(std::move(store), q, /*missing_rank=*/8, /*lambda=*/0.5);
}

TEST(EndToEndTest, SyntheticSweep) {
  DatasetSpec spec;
  spec.num_objects = 2000;
  spec.seed = 99;
  const ObjectStore store = GenerateDataset(spec);
  Rng rng(7);
  for (double lambda : {0.25, 0.75}) {
    Query q;
    q.loc = SampleQueryLocation(store, &rng);
    q.doc = SampleQueryKeywords(store, 2, &rng);
    q.k = 5;
    RunWorkflow(ObjectStore(store), q, /*missing_rank=*/11, lambda);
  }
}

TEST(EndToEndTest, DynamicIndexMaintenanceMatchesRebuild) {
  // Queries against an incrementally-built index must match a bulk-loaded
  // one: the demo server could ingest new hotels without a rebuild.
  DatasetSpec spec;
  spec.num_objects = 1500;
  spec.seed = 4;
  const ObjectStore store = GenerateDataset(spec);

  SetRTree bulk(&store);
  bulk.BulkLoad();
  SetRTree incremental(&store);
  for (ObjectId id = 0; id < store.size(); ++id) incremental.Insert(id);

  SetRTopKEngine a(store, bulk);
  SetRTopKEngine b(store, incremental);
  Rng rng(12);
  for (int trial = 0; trial < 10; ++trial) {
    Query q;
    q.loc = SampleQueryLocation(store, &rng);
    q.doc = SampleQueryKeywords(store, 3, &rng);
    q.k = 10;
    const TopKResult ra = a.Query(q);
    const TopKResult rb = b.Query(q);
    ASSERT_EQ(ra.size(), rb.size());
    for (size_t i = 0; i < ra.size(); ++i) {
      EXPECT_EQ(ra[i].id, rb[i].id) << "trial " << trial << " rank " << i;
    }
  }
}

TEST(EndToEndTest, ApplyingBothRefinementsSequentially) {
  // §3.2: "Users can apply the two refinement functions simultaneously to
  // find better solutions." Apply preference first, then keyword adaption on
  // the already-refined query; the missing object must stay in the result.
  const Corpus corpus = CorpusBuilder().Build(GenerateHotelDataset());
  const ObjectStore& store = corpus.store();
  WhyNotEngine engine(corpus);

  const Vocabulary& v = store.vocab();
  Query q;
  q.loc = Point{114.172, 22.298};  // Tsim Sha Tsui.
  q.doc = KeywordSet({v.Find("wifi"), v.Find("luxury")});
  q.k = 3;
  Query probe = q;
  probe.k = 25;
  const ObjectId expected = engine.TopK(probe)[20].id;

  auto first = AdjustPreference(store, q, {expected});
  ASSERT_TRUE(first.ok());
  auto second = AdaptKeywords(store, corpus.kcr(), first->refined, {expected});
  ASSERT_TRUE(second.ok());
  const TopKResult final_result = engine.TopK(second->refined);
  std::set<ObjectId> ids;
  for (const ScoredObject& so : final_result) ids.insert(so.id);
  EXPECT_TRUE(ids.count(expected));
}

}  // namespace
}  // namespace yask
