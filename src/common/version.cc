#include "src/common/version.h"

// CMake stamps the configure-time sha onto this one file (see the
// set_source_files_properties call in CMakeLists.txt).
#ifndef YASK_BUILD_GIT_SHA
#define YASK_BUILD_GIT_SHA "unknown"
#endif

namespace yask {

const char* BuildGitSha() { return YASK_BUILD_GIT_SHA; }

}  // namespace yask
