// Copyright (c) 2026 The YASK reproduction authors.
// The YASK web service (§3.1-§3.3): binds the query processor (top-k engine +
// why-not engine) to HTTP endpoints, caches users' initial queries so that
// follow-up why-not questions can reference them ("The server caches users'
// initial spatial keyword queries until users give up asking follow-up
// 'why-not' questions"), and keeps the query log of Panel 5.
//
// Per §3.2, the client never supplies the weight vector: "the system ...
// leaves the weighting vector w as a system parameter on the server. In the
// default setting, the spatial distance and textual similarity are weighed
// equally, i.e., w = <0.5, 0.5>."
//
// Endpoints (all JSON):
//   POST /query    {"x":..,"y":..,"keywords":"coffee wifi","k":3}
//            ->    {"query_id":..,"results":[{"id","name","score",...}],..}
//   POST /whynot   {"query_id":..,"missing":[ids],"model":"preference"|
//                   "keyword"|"both"|"combined","lambda":0.5}
//            ->    explanations + refined queries + refined results
//                  ("combined" applies both models in sequence, §3.2)
//   GET  /objects?limit=N      -> dataset sample (the demo's grey markers)
//   GET  /log                  -> query log snapshot
//   POST /forget   {"query_id":..}   -> drops a cached initial query
//   GET  /health               -> {"status":"ok","objects":N}
//   POST /snapshot [{"path":..}]  -> admin: serialize the warm state (store +
//                  vocabulary + indexes) to disk; see src/snapshot/. Writes
//                  to YaskServiceOptions::snapshot_path; the body's "path"
//                  override is honoured only when
//                  allow_snapshot_path_override is set (403 otherwise).

#ifndef YASK_SERVER_YASK_SERVICE_H_
#define YASK_SERVER_YASK_SERVICE_H_

#include <memory>
#include <mutex>
#include <unordered_map>

#include "src/index/inverted_index.h"
#include "src/index/kcr_tree.h"
#include "src/index/setr_tree.h"
#include "src/server/http_server.h"
#include "src/server/json.h"
#include "src/server/query_log.h"
#include "src/storage/object_store.h"
#include "src/whynot/why_not_engine.h"

namespace yask {

/// Server-side system configuration (§3.2).
struct YaskServiceOptions {
  /// The system weight parameter (clients cannot set it).
  Weights system_weights;  // Defaults to <0.5, 0.5>.
  /// Default λ when a /whynot request does not specify one.
  double default_lambda = 0.5;
  uint16_t port = 0;  // 0 = ephemeral.
  size_t num_workers = 4;
  /// Default target of the POST /snapshot admin endpoint.
  std::string snapshot_path;
  /// Whether POST /snapshot may override the target via {"path": ...} in
  /// the request body. Off by default: the server has no authentication, so
  /// a client-chosen path would let any local client overwrite any file the
  /// server process can write. Enable only for trusted/admin deployments.
  bool allow_snapshot_path_override = false;
};

/// The YASK service: owns the HTTP server and the query cache; borrows the
/// store and indexes (which must outlive it).
class YaskService {
 public:
  YaskService(const ObjectStore& store, const SetRTree& setr,
              const KcRTree& kcr, YaskServiceOptions options = {});

  /// When the process also holds an inverted index (e.g. restored from a
  /// snapshot that contained one), registering it here makes POST /snapshot
  /// include it — otherwise re-snapshotting would silently drop the section.
  void set_inverted_index(const InvertedIndex* inverted) {
    inverted_ = inverted;
  }

  /// Starts serving; returns the bound port via port().
  Status Start();
  void Stop();

  uint16_t port() const { return server_.bound_port(); }
  const QueryLog& log() const { return log_; }

  /// Number of cached initial queries (for tests).
  size_t cached_queries() const;

 private:
  HttpResponse HandleQuery(const HttpRequest& req);
  HttpResponse HandleWhyNot(const HttpRequest& req);
  HttpResponse HandleObjects(const HttpRequest& req);
  HttpResponse HandleLog(const HttpRequest& req);
  HttpResponse HandleForget(const HttpRequest& req);
  HttpResponse HandleHealth(const HttpRequest& req);
  HttpResponse HandleSnapshot(const HttpRequest& req);

  JsonValue ResultToJson(const TopKResult& result) const;

  const ObjectStore* store_;
  const SetRTree* setr_;
  const KcRTree* kcr_;
  const InvertedIndex* inverted_ = nullptr;  // Optional; see setter.
  WhyNotEngine engine_;
  YaskServiceOptions options_;
  HttpServer server_;
  QueryLog log_;

  mutable std::mutex cache_mu_;
  std::unordered_map<uint64_t, Query> query_cache_;
  uint64_t next_query_id_ = 1;
};

}  // namespace yask

#endif  // YASK_SERVER_YASK_SERVICE_H_
