#!/usr/bin/env bash
# The rolling-upgrade smoke: the elastic-fleet contract proved end to end on
# a REAL loopback process fleet — the CI `fleet-rolling` job's payload,
# runnable locally via scripts/check.sh --fleet (or directly:
# scripts/fleet_rolling.sh <build_dir>).
#
#   1. Seeds 2-shard snapshot files, then RESHARDs them into a 4-shard
#      layout with `dataset_tool reshard` (the old files stay untouched).
#   2. Boots the OLD fleet (2 shards x 2 replicas), a coordinator over it,
#      and an in-process sharded reference server from the same snapshots.
#   3. Under live /query + /whynot traffic:
#        a. boots the NEW fleet (4 shards x 2 replicas) — with ONE replica
#           deliberately still dead,
#        b. cuts the coordinator over with POST /admin/layout (lazy connect
#           admits the dead endpoint as pending-validation),
#        c. kills the old fleet once drained,
#        d. boots the late replica on its reserved port (validated on first
#           contact), adds and removes an extra replica via
#           POST /admin/replicas,
#        e. kill -9s and restarts EVERY new-fleet replica, one at a time.
#   4. Fails on ANY non-200 client response, ANY payload divergence from the
#      reference, a layout generation that did not advance as scripted, or a
#      run where no replica was ever lazily validated (the dead-endpoint
#      window must actually bite).
#   5. Also asserts the build-identity surface: --version on both binaries
#      prints the same git sha + shardrpc range that /health reports.
#
# shellcheck disable=SC2154  # pid_*/port_* are bound via start_replica's eval.
set -euo pipefail

build_dir="${1:?usage: $0 <build_dir>}"
for bin in yask_server_demo yask_shard_server dataset_tool; do
  if [[ ! -x "${build_dir}/${bin}" ]]; then
    echo "fleet_rolling: ${build_dir}/${bin} not built" >&2
    exit 1
  fi
done

work="$(mktemp -d)"
declare -a fleet_pids=()
cleanup() {
  local pid
  for pid in "${fleet_pids[@]:-}"; do
    kill -9 "$pid" 2>/dev/null || true
  done
  rm -rf "$work"
}
trap cleanup EXIT

# Polls a server log for the bound port ("listening on 127.0.0.1:<port>").
wait_port() {
  local log="$1" port="" tries=0
  while [[ -z "$port" ]]; do
    port="$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9][0-9]*\).*/\1/p' \
              "$log" 2>/dev/null | head -1)"
    if [[ -z "$port" ]]; then
      tries=$((tries + 1))
      if [[ "$tries" -gt 100 ]]; then
        echo "fleet_rolling: server did not come up; log:" >&2
        cat "$log" >&2
        return 1
      fi
      sleep 0.1
    fi
  done
  echo "$port"
}

# --- Build identity: --version must agree with itself across binaries. ---
demo_version="$("${build_dir}/yask_server_demo" --version)"
shard_version="$("${build_dir}/yask_shard_server" --version)"
echo "fleet_rolling: ${demo_version}"
echo "fleet_rolling: ${shard_version}"
if ! grep -q 'shardrpc=[0-9][0-9]*\.\.[0-9][0-9]*' <<< "$demo_version"; then
  echo "fleet_rolling: FAILED (--version missing the shardrpc range)" >&2
  exit 1
fi
build_sha="$(awk '{print $2}' <<< "$demo_version")"
if [[ "$(awk '{print $2}' <<< "$shard_version")" != "$build_sha" ]]; then
  echo "fleet_rolling: FAILED (coordinator and shard server shas differ)" >&2
  exit 1
fi

echo "fleet_rolling: seeding 2-shard snapshots"
"${build_dir}/yask_server_demo" --shards 2 --snapshot "${work}/state" \
  > "${work}/seed.log" 2>&1

echo "fleet_rolling: resharding 2 -> 4 shards"
"${build_dir}/dataset_tool" reshard "${work}/state" "${work}/state4" 4 \
  > "${work}/reshard.log" 2>&1
for shard in 0 1 2 3; do
  if [[ ! -f "${work}/state4.shard-${shard}.snap" ]]; then
    echo "fleet_rolling: resharded state4.shard-${shard}.snap missing" >&2
    cat "${work}/reshard.log" >&2
    exit 1
  fi
done
# The old layout must be untouched — it is still serving.
for shard in 0 1; do
  if [[ ! -f "${work}/state.shard-${shard}.snap" ]]; then
    echo "fleet_rolling: reshard destroyed the serving layout" >&2
    exit 1
  fi
done

# start_replica <prefix> <shard> <replica> [port] -> pid_<p>_<s>_<r> etc.
start_replica() {
  local prefix="$1" s="$2" r="$3" port_arg=()
  [[ "${4:-}" != "" ]] && port_arg=(--port "$4")
  "${build_dir}/yask_shard_server" \
    --snapshot "${work}/${prefix}.shard-${s}.snap" \
    ${port_arg[@]:+"${port_arg[@]}"} \
    > "${work}/${prefix}-${s}-${r}.log" 2>&1 &
  local pid=$!
  disown "$pid"  # kill -9 is the point; keep bash's job reaper quiet.
  fleet_pids+=("$pid")
  local port
  port="$(wait_port "${work}/${prefix}-${s}-${r}.log")"
  eval "pid_${prefix}_${s}_${r}=${pid}"
  eval "port_${prefix}_${s}_${r}=${port}"
}

echo "fleet_rolling: booting the old fleet (2 shards x 2 replicas)"
for s in 0 1; do
  for r in 0 1; do
    start_replica state "$s" "$r"
  done
done
# shellcheck disable=SC2154  # port_state_*_* are set by start_replica's eval.
old_spec="127.0.0.1:${port_state_0_0}|127.0.0.1:${port_state_0_1},127.0.0.1:${port_state_1_0}|127.0.0.1:${port_state_1_1}"

"${build_dir}/yask_server_demo" --serve --remote-shards "$old_spec" \
  > "${work}/coordinator.log" 2>&1 &
fleet_pids+=("$!")
disown "$!"
coordinator_port="$(wait_port "${work}/coordinator.log")"

"${build_dir}/yask_server_demo" --serve --shards 2 \
  --snapshot "${work}/state" > "${work}/reference.log" 2>&1 &
fleet_pids+=("$!")
disown "$!"
reference_port="$(wait_port "${work}/reference.log")"
echo "fleet_rolling: coordinator :${coordinator_port}, reference :${reference_port}"

# Reserve a port for the late replica: boot shard 3 replica 1, note the
# port, kill it. The cutover spec names this endpoint while it is DEAD.
start_replica state4 3 1
# shellcheck disable=SC2154  # set by start_replica's eval.
late_port="${port_state4_3_1}"
kill -9 "${pid_state4_3_1}"
echo "fleet_rolling: reserved :${late_port} for the late replica (dead at cutover)"

strip_timing() {
  sed -E 's/"response_millis":[0-9.eE+-]+/"response_millis":0/g'
}

# fetch <port> <method> <path> <body> <outfile> -> echoes the HTTP code.
fetch() {
  if [[ "$2" == GET ]]; then
    curl -s -o "$5" -w '%{http_code}' "http://127.0.0.1:$1$3" || echo 000
  else
    curl -s -o "$5" -w '%{http_code}' -X POST \
      -H 'Content-Type: application/json' \
      --data "$4" "http://127.0.0.1:$1$3" || echo 000
  fi
}

# admin <path> <body> <want_status> <label>: POSTs to the coordinator's
# admin plane and fails the run on an unexpected status.
admin() {
  local code
  code="$(fetch "$coordinator_port" POST "$1" "$2" "${work}/admin.json")"
  if [[ "$code" != "$3" ]]; then
    echo "fleet_rolling: $4: got HTTP ${code}, want $3:" >&2
    cat "${work}/admin.json" >&2
    exit 1
  fi
}

# expect_generation <n> <label>: asserts GET /admin/layout reports it.
expect_generation() {
  local code gen
  code="$(fetch "$coordinator_port" GET /admin/layout "" "${work}/layout.json")"
  gen="$(grep -o '"generation":[0-9]*' "${work}/layout.json" | cut -d: -f2)"
  if [[ "$code" != 200 || "$gen" != "$1" ]]; then
    echo "fleet_rolling: $2: layout generation ${gen:-?} (HTTP ${code}), want $1" >&2
    cat "${work}/layout.json" >&2
    exit 1
  fi
}

query_body='{"x":114.158,"y":22.281,"keywords":"clean comfortable","k":3}'
rounds=46
failures=0
new_spec=""
extra_pid=""
lazy_seen=0
for round in $(seq 1 "$rounds"); do
  case "$round" in
    4)
      expect_generation 1 "pre-cutover"
      ;;
    6)
      echo "fleet_rolling: booting the new fleet (4 shards x 2 replicas, one dead)"
      for s in 0 1 2 3; do
        start_replica state4 "$s" 0
      done
      for s in 0 1 2; do
        start_replica state4 "$s" 1
      done
      # shellcheck disable=SC2154  # port_state4_*_* set by start_replica.
      new_spec="127.0.0.1:${port_state4_0_0}|127.0.0.1:${port_state4_0_1},127.0.0.1:${port_state4_1_0}|127.0.0.1:${port_state4_1_1},127.0.0.1:${port_state4_2_0}|127.0.0.1:${port_state4_2_1},127.0.0.1:${port_state4_3_0}|127.0.0.1:${late_port}"
      ;;
    8)
      echo "fleet_rolling: cutover — POST /admin/layout to the 4-shard fleet"
      admin /admin/layout "{\"remote_shards\":\"${new_spec}\"}" 200 cutover
      expect_generation 2 "post-cutover"
      ;;
    12)
      echo "fleet_rolling: old fleet drained — killing all 4 old replicas"
      for s in 0 1; do
        for r in 0 1; do
          eval "kill -9 \"\${pid_state_${s}_${r}}\""
        done
      done
      ;;
    16)
      echo "fleet_rolling: booting the late replica on reserved :${late_port}"
      start_replica state4 3 1 "$late_port"
      ;;
    18)
      # Force first contact with the pending replica: kill its validated
      # sibling, so shard 3 traffic MUST run the deferred handshake.
      echo "fleet_rolling: killing shard 3's validated replica — traffic must lazily validate the late one"
      kill -9 "${pid_state4_3_0}"
      ;;
    22)
      echo "fleet_rolling: restarting shard 3 replica 0 on :${port_state4_3_0}"
      start_replica state4 3 0 "${port_state4_3_0}"
      ;;
    23)
      # The lazy-validation evidence lives in generation 2's corpus
      # registry; the replica add/remove below swaps in a fresh
      # RemoteCorpus whose counters start at zero. Scrape the proof
      # now, while generation 2 is still the active deployment.
      curl -s "http://127.0.0.1:${coordinator_port}/metrics" \
        > "${work}/metrics-gen2.txt"
      lazy_seen="$(grep -E '^yask_replica_lazy_validations_total(\{[^}]*\})? ' \
                     "${work}/metrics-gen2.txt" \
                   | awk '{sum += $NF} END {print sum + 0}')"
      ;;
    24)
      echo "fleet_rolling: POST /admin/replicas — adding a third shard-0 replica"
      start_replica state4 0 2
      # shellcheck disable=SC2154  # set by start_replica's eval.
      extra_pid="${pid_state4_0_2}"
      admin /admin/replicas \
        "{\"shard\":0,\"add\":\"127.0.0.1:${port_state4_0_2}\"}" 200 add-replica
      expect_generation 3 "post-add"
      ;;
    28)
      echo "fleet_rolling: POST /admin/replicas — removing it again"
      admin /admin/replicas \
        "{\"shard\":0,\"remove\":\"127.0.0.1:${port_state4_0_2}\"}" 200 \
        remove-replica
      expect_generation 4 "post-remove"
      kill -9 "$extra_pid"
      ;;
    30|32|34|36|38|40|42|44)
      # The rolling restart proper: every new-fleet replica, one at a time.
      idx=$(((round - 30) / 2))
      s=$((idx / 2))
      r=$((idx % 2))
      eval "pid=\${pid_state4_${s}_${r}}"
      eval "port=\${port_state4_${s}_${r}}"
      echo "fleet_rolling: rolling restart ${idx}: shard ${s} replica ${r} (:${port})"
      kill -9 "$pid"
      start_replica state4 "$s" "$r" "$port"
      ;;
  esac

  whynot_body="{\"query_id\":${round},\"missing\":[81],\"model\":\"both\"}"
  for call in query whynot; do
    if [[ "$call" == query ]]; then body="$query_body"; else body="$whynot_body"; fi
    coord_code="$(fetch "$coordinator_port" POST "/${call}" "$body" "${work}/coord.json")"
    ref_code="$(fetch "$reference_port" POST "/${call}" "$body" "${work}/ref.json")"
    if [[ "$coord_code" != 200 || "$ref_code" != 200 ]]; then
      echo "fleet_rolling: round ${round} /${call}: coordinator=${coord_code} reference=${ref_code} (want 200/200)" >&2
      failures=$((failures + 1))
      continue
    fi
    if ! diff <(strip_timing < "${work}/coord.json") \
              <(strip_timing < "${work}/ref.json") > /dev/null; then
      echo "fleet_rolling: round ${round} /${call}: payload DIVERGED" >&2
      failures=$((failures + 1))
    fi
  done
done

echo "fleet_rolling: checking the lazy-validation window actually bit"
if [[ "${lazy_seen:-0}" -lt 1 ]]; then
  echo "fleet_rolling: FAILED (no replica was ever lazily validated — the dead-endpoint window did not bite)" >&2
  exit 1
fi
echo "fleet_rolling: ${lazy_seen} lazy validation(s) absorbed"

# /health must agree with --version on the coordinator's build identity.
health="$(curl -s "http://127.0.0.1:${coordinator_port}/health")"
health_sha="$(grep -o '"git_sha":"[^"]*"' <<< "$health" | head -1 | cut -d'"' -f4)"
if [[ "$health_sha" != "$build_sha" ]]; then
  echo "fleet_rolling: FAILED (/health git_sha '${health_sha}' != --version '${build_sha}')" >&2
  exit 1
fi

expect_generation 4 "final"
echo "fleet_rolling: ${rounds} rounds, ${failures} failures"
if [[ "$failures" -ne 0 ]]; then
  echo "fleet_rolling: FAILED (${failures} bad responses)" >&2
  exit 1
fi
echo "fleet_rolling: OK — reshard + cutover + rolling restart stayed invisible, payloads byte-identical"
