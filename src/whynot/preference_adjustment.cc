#include "src/whynot/preference_adjustment.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "src/query/scoring.h"
#include "src/whynot/whynot_oracle.h"

namespace yask {

namespace {

// Weights must stay strictly inside (0, 1) (§2.1).
constexpr double kMinW = 1e-9;
constexpr double kMaxW = 1.0 - 1e-9;

// Offset used to sample just past a crossing, on its far side from w0. The
// rank change tied to a crossing materialises (in evaluated floating-point
// scores) within a small jitter zone around the algebraic crossing weight —
// displaced by roughly eval-error / |slope difference| — so a fixed offset
// beyond that zone is used rather than one ulp. The returned refinement is
// therefore optimal up to this ∆w resolution (penalty slack < 2e-7).
constexpr double kStepPastCrossing = 1e-7;

/// Running best candidate with deterministic tie-breaking: lower penalty,
/// then smaller |w - w0|, then smaller w.
class BestCandidate {
 public:
  BestCandidate(double w0, double w, size_t rank, PenaltyBreakdown penalty)
      : w0_(w0), w_(w), rank_(rank), penalty_(penalty) {}

  void Offer(double w, size_t rank, const PenaltyBreakdown& penalty) {
    const bool better =
        penalty.value < penalty_.value ||
        (penalty.value == penalty_.value &&
         (std::abs(w - w0_) < std::abs(w_ - w0_) ||
          (std::abs(w - w0_) == std::abs(w_ - w0_) && w < w_)));
    if (better) {
      w_ = w;
      rank_ = rank;
      penalty_ = penalty;
    }
  }

  double w() const { return w_; }
  size_t rank() const { return rank_; }
  const PenaltyBreakdown& penalty() const { return penalty_; }

 private:
  double w0_;
  double w_;
  size_t rank_;
  PenaltyBreakdown penalty_;
};

}  // namespace

std::vector<PlanePoint> BuildPlanePoints(const ObjectStore& store,
                                         const Query& query, double dist_norm,
                                         const std::vector<ObjectId>* to_global) {
  Scorer scorer(store, query, dist_norm);
  std::vector<PlanePoint> pts;
  pts.reserve(store.size());
  for (const SpatialObject& o : store.objects()) {
    const ObjectId gid = to_global != nullptr ? (*to_global)[o.id] : o.id;
    pts.push_back(MakePlanePoint(scorer, o, gid));
  }
  return pts;
}

std::vector<PlanePoint> BuildPlanePoints(const ObjectStore& store,
                                         const Query& query) {
  return BuildPlanePoints(store, query, store.BoundsDiagonal(),
                          /*to_global=*/nullptr);
}

Result<RefinedPreferenceQuery> AdjustPreference(
    const WhyNotOracle& oracle, const Query& query,
    const std::vector<ObjectId>& missing,
    const PreferenceAdjustOptions& options) {
  if (Status s = query.Validate(); !s.ok()) return s;
  if (missing.empty()) {
    return Status::InvalidArgument("missing object set must be non-empty");
  }
  if (options.lambda < 0.0 || options.lambda > 1.0) {
    return Status::InvalidArgument("lambda must lie in [0, 1]");
  }
  std::vector<ObjectId> m_ids = missing;
  std::sort(m_ids.begin(), m_ids.end());
  m_ids.erase(std::unique(m_ids.begin(), m_ids.end()), m_ids.end());
  for (ObjectId id : m_ids) {
    if (id >= oracle.size()) {
      return Status::NotFound("missing object id " + std::to_string(id) +
                              " is not in the database");
    }
  }

  RefinedPreferenceQuery out;
  out.refined = query;
  PreferenceAdjustStats& stats = out.stats;

  const double lambda = options.lambda;
  const double w0 = query.w.ws;

  // Step 0: the per-query score-plane state — every object's (1 − SDist,
  // TSim) point, index-organised in optimized mode. Behind the oracle this
  // is per-shard state built in parallel; the counts and crossings it serves
  // are exact partition-sums/unions, so everything downstream is
  // layout-independent.
  const std::unique_ptr<ScorePlaneSession> session =
      oracle.PrepareScorePlane(query, options.mode);
  std::vector<PlanePoint> anchors;
  anchors.reserve(m_ids.size());
  for (ObjectId id : m_ids) anchors.push_back(session->Anchor(id));

  // Tie-aware rank-minus-one of anchor at weight w, mode-appropriate. Each
  // call is one oracle fan-out (one round-trip per shard behind a remote
  // oracle) — the meter sweep_fanouts counts.
  auto count_above = [&](double w, const PlanePoint& anchor) -> size_t {
    ++stats.sweep_fanouts;
    return session->CountAbove(w, anchor, &stats);
  };
  // The batched twin: every (weight, anchor) pair of ONE fan-out, counts
  // indexed [wi * anchors.size() + a]. Bit-identical counts to count_above —
  // only the trip count differs.
  auto count_batch = [&](const std::vector<double>& ws) -> std::vector<size_t> {
    ++stats.sweep_fanouts;
    return session->CountAboveBatch(ws, anchors, &stats);
  };

  // --- Step 1: R(M, q) under the original weights. ---
  size_t r0 = 0;
  if (options.batch_sweep) {
    // One fan-out covers every anchor.
    for (const size_t c : count_batch({w0})) r0 = std::max(r0, c + 1);
  } else {
    for (const PlanePoint& a : anchors) {
      r0 = std::max(r0, count_above(w0, a) + 1);
    }
  }
  out.original_rank = r0;
  if (r0 <= query.k) {
    out.refined_rank = r0;
    out.already_in_result = true;
    return out;  // Nothing is missing; penalty 0, query unchanged.
  }

  // --- Step 2: seed with the pure-k refinement (cost exactly λ when
  // r0 > k) and derive the static feasible weight interval. ---
  BestCandidate best(w0, w0, r0,
                     PreferencePenalty(lambda, query, query.w, r0, r0));

  // ∆w floor of a candidate at weight w: an admissible penalty lower bound.
  const double norm_w = query.w.PenaltyNormalizer();
  auto floor_of = [&](double w) {
    return (1.0 - lambda) * std::sqrt(2.0) * std::abs(w - w0) / norm_w;
  };

  double delta_max;  // Static bound on |w - w0| from the λ seed.
  if (lambda >= 1.0) {
    delta_max = 1.0;  // The ∆w term has weight 0: no interval pruning.
  } else {
    delta_max = best.penalty().value * norm_w / ((1.0 - lambda) * std::sqrt(2.0));
  }
  const double wlo = std::max(kMinW, w0 - delta_max);
  const double whi = std::min(kMaxW, w0 + delta_max);

  // --- Step 3: collect crossing weights of missing objects' lines with all
  // other lines inside [wlo, whi] ("the two range queries" of ref [5]). The
  // merged event set is the union over shards; sorting + deduplicating makes
  // the sequence identical in every layout (each crossing weight is computed
  // from the same two doubles wherever it is found). ---
  std::vector<double> events;
  for (const PlanePoint& anchor : anchors) {
    session->CollectCrossings(anchor, wlo, whi, &events, &stats);
  }
  std::sort(events.begin(), events.end());
  events.erase(std::unique(events.begin(), events.end()), events.end());
  stats.crossings_found = events.size();

  // --- Step 4: evaluate candidates nearest-to-w0 first; stop when the ∆w
  // floor alone exceeds the best penalty (DESIGN.md D2/D3). Ranks are
  // computed exactly (index-accelerated in optimized mode), so both modes
  // return identical refinements. Each crossing also spawns a candidate just
  // past it on the far side from w0 (see kStepPastCrossing), where rank
  // drops whose tie resolves against a missing object materialise.
  std::sort(events.begin(), events.end(), [&](double a, double b) {
    const double da = std::abs(a - w0);
    const double db = std::abs(b - w0);
    if (da != db) return da < db;
    return a < b;
  });

  if (!options.batch_sweep) {
    // Per-event reference sweep: one fan-out per candidate weight per
    // anchor. Kept verbatim — the batched sweep below must return
    // byte-identical refinements to THIS loop, and the parity tests compare
    // the two.
    auto evaluate = [&](double w) {
      if (w < kMinW || w > kMaxW) return;
      size_t rank = 0;
      for (const PlanePoint& a : anchors) {
        rank = std::max(rank, count_above(w, a) + 1);
      }
      ++stats.candidates_evaluated;
      best.Offer(w, rank, PreferencePenalty(lambda, query, Weights::FromWs(w),
                                            r0, rank));
    };

    for (double we : events) {
      if (floor_of(we) >= best.penalty().value) break;  // Further are worse.
      evaluate(we);
      if (we <= w0) evaluate(we - kStepPastCrossing);
      if (we >= w0) evaluate(we + kStepPastCrossing);
    }
  } else {
    // Batched sweep: speculatively fetch the counts of the next SEGMENT of
    // nearest-to-w0 events in one CountAboveBatch fan-out, then consume them
    // in the exact per-event order. Bit-identity with the loop above:
    //   * each count is the same partition-sum double-for-double (the seam's
    //     contract), offered to `best` in the same order with the same
    //     penalty arithmetic, so `best` evolves identically;
    //   * the ∆w floor is monotone in the nearest-first event order, and it
    //     is RE-CHECKED per event while consuming — counts fetched past the
    //     cut are discarded deterministically, never offered;
    //   * candidates outside (kMinW, kMaxW) are dropped when the segment is
    //     built, exactly where evaluate() would have skipped them, so
    //     candidates_evaluated counts the same evaluations.
    const size_t num_anchors = anchors.size();
    auto offer = [&](double w, const std::vector<size_t>& counts,
                     size_t base) {
      size_t rank = 0;
      for (size_t a = 0; a < num_anchors; ++a) {
        rank = std::max(rank, counts[base + a] + 1);
      }
      ++stats.candidates_evaluated;
      best.Offer(w, rank, PreferencePenalty(lambda, query, Weights::FromWs(w),
                                            r0, rank));
    };

    size_t next = 0;
    std::vector<double> weights;        // Segment candidates, per-event order.
    std::vector<size_t> event_starts;   // Candidate span of each event.
    while (next < events.size()) {
      if (floor_of(events[next]) >= best.penalty().value) break;
      // Segment size: the session's latency-adaptive preference (remote
      // oracles scale it with the shard RPC EWMA; in-process ones say 1),
      // unless the caller pinned it.
      size_t batch = options.sweep_batch_size != 0
                         ? options.sweep_batch_size
                         : session->PreferredSweepBatch();
      if (batch == 0) batch = 1;
      const size_t seg_end = std::min(events.size(), next + batch);

      weights.clear();
      event_starts.assign(seg_end - next + 1, 0);
      for (size_t e = next; e < seg_end; ++e) {
        const double we = events[e];
        event_starts[e - next] = weights.size();
        auto push = [&](double w) {
          if (w >= kMinW && w <= kMaxW) weights.push_back(w);
        };
        push(we);
        if (we <= w0) push(we - kStepPastCrossing);
        if (we >= w0) push(we + kStepPastCrossing);
      }
      event_starts[seg_end - next] = weights.size();

      std::vector<size_t> counts;
      if (!weights.empty()) counts = count_batch(weights);

      bool cut = false;
      for (size_t e = next; e < seg_end; ++e) {
        if (floor_of(events[e]) >= best.penalty().value) {
          cut = true;  // Over-fetched counts past the cut: discarded.
          break;
        }
        for (size_t ci = event_starts[e - next];
             ci < event_starts[e - next + 1]; ++ci) {
          offer(weights[ci], counts, ci * num_anchors);
        }
      }
      if (cut) break;
      next = seg_end;
    }
  }

  // --- Step 5: materialise the best refinement. ---
  out.refined.w = Weights::FromWs(best.w());
  out.refined.k = static_cast<uint32_t>(
      std::max<size_t>(query.k, best.rank()));
  out.refined_rank = best.rank();
  out.penalty = best.penalty();
  return out;
}

Result<RefinedPreferenceQuery> AdjustPreference(
    const ObjectStore& store, const Query& query,
    const std::vector<ObjectId>& missing,
    const PreferenceAdjustOptions& options) {
  // The weight sweep needs neither tree; the local oracle serves it from the
  // store alone.
  const LocalWhyNotOracle oracle(store, /*setr=*/nullptr, /*kcr=*/nullptr);
  return AdjustPreference(oracle, query, missing, options);
}

}  // namespace yask
