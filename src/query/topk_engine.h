// Copyright (c) 2026 The YASK reproduction authors.
// The spatial keyword top-k query engine (§3.3).
//
// The paper's engine follows Cong et al. [4] but swaps the IR-tree for the
// SetR-tree because the IR-tree cannot bound Jaccard similarity: "we maintain
// a priority queue Q initialized with the SetR-tree root node. In each
// iteration we pop the first element; report it if it is an object; otherwise
// unfold it and put its children into Q. The process continues until k
// objects are retrieved."
//
// Two baselines accompany it for experiment E2: a full linear scan, and an
// inverted-index + R-tree hybrid (text candidates merged with a best-first
// spatial sweep that covers zero-similarity objects).

#ifndef YASK_QUERY_TOPK_ENGINE_H_
#define YASK_QUERY_TOPK_ENGINE_H_

#include <cstddef>
#include <limits>
#include <optional>
#include <queue>

#include "src/common/status.h"
#include "src/index/inverted_index.h"
#include "src/index/rtree.h"
#include "src/index/setr_tree.h"
#include "src/query/query.h"
#include "src/query/scoring.h"
#include "src/storage/object_store.h"

namespace yask {

/// Work counters reported by the engines (benchmarks E2 and ablation D1).
struct TopKStats {
  size_t nodes_popped = 0;    // Internal/leaf nodes expanded.
  size_t objects_scored = 0;  // Exact score evaluations.
};

/// Reference implementation: scores every object, partial-sorts. O(n log k).
TopKResult TopKScan(const ObjectStore& store, const Query& query,
                    TopKStats* stats = nullptr);

/// The paper's engine: best-first search over the SetR-tree.
///
/// Determinism: equal-priority entries pop nodes before objects and objects
/// by ascending id, so results obey the ScoredObject ordering (D6) exactly.
class SetRTopKEngine {
 public:
  /// Both references must outlive the engine; the tree must index `store`.
  SetRTopKEngine(const ObjectStore& store, const SetRTree& tree)
      : store_(&store), tree_(&tree) {}

  /// Runs q against the index. Returns min(k, |D|) objects.
  TopKResult Query(const Query& query, TopKStats* stats = nullptr) const {
    return Query(query, -std::numeric_limits<double>::infinity(), stats);
  }

  /// Thresholded variant: abandons the search once no remaining candidate
  /// can score >= `prune_below`, so objects scoring strictly below it may be
  /// omitted from the result. Exactness contract: every indexed object with
  /// score >= prune_below that belongs to the top-k IS returned (the
  /// best-first frontier bound is admissible and the stop test is strict).
  /// The sharded fan-out passes the k-th score of the most promising shard
  /// here, which usually terminates far shards at their root.
  TopKResult Query(const ::yask::Query& query, double prune_below,
                   TopKStats* stats = nullptr) const;

  /// Selects the node-bound flavour (default: length-tightened). Exposed for
  /// the D1 ablation benchmark; results are identical either way, only the
  /// amount of pruning differs.
  void set_bound_variant(SetRBoundVariant variant) { variant_ = variant; }

  /// Overrides the SDist normaliser (default: the store's bounds diagonal).
  /// A sharded corpus sets every shard engine to the *global* diagonal so
  /// per-shard scores are bit-identical to the unsharded engine's.
  void set_dist_norm(double norm) { dist_norm_ = norm; }

  const ObjectStore& store() const { return *store_; }

 private:
  const ObjectStore* store_;
  const SetRTree* tree_;
  SetRBoundVariant variant_ = SetRBoundVariant::kLengthTightened;
  double dist_norm_ = -1.0;  // < 0: use the store's own diagonal.
};

/// A resumable best-first top-k enumeration: yields objects in exact rank
/// order one at a time, preserving the search frontier between calls.
///
/// This is the natural engine primitive behind the why-not models'
/// k-enlargement: when a refined query only grows k (the pure-k refinement,
/// or the ∆k part of Eqns. (3)/(4)), the demo can continue the original
/// search instead of re-running it from scratch. Query.k is ignored — the
/// cursor is unbounded and stops only when the corpus is exhausted.
///
/// Not copyable/movable (the internal scorer points at the owned query).
class TopKCursor {
 public:
  TopKCursor(const ObjectStore& store, const SetRTree& tree, Query query);

  TopKCursor(const TopKCursor&) = delete;
  TopKCursor& operator=(const TopKCursor&) = delete;

  /// The next object in rank order, or nullopt when exhausted. The n-th call
  /// returns exactly the rank-n object of the full ranking (D6 order).
  std::optional<ScoredObject> Next();

  /// Objects yielded so far (== the rank of the last yielded object).
  size_t produced() const { return produced_; }

  const Query& query() const { return query_; }

 private:
  struct HeapEntry {
    double key = 0.0;
    bool is_object = false;
    uint32_t id = 0;

    bool operator<(const HeapEntry& other) const {
      if (key != other.key) return key < other.key;
      if (is_object != other.is_object) return is_object;
      if (is_object) return id > other.id;
      return id < other.id;
    }
  };

  const ObjectStore* store_;
  const SetRTree* tree_;
  Query query_;
  Scorer scorer_;
  std::priority_queue<HeapEntry> pq_;
  size_t produced_ = 0;
};

/// Baseline engine: inverted index for the textual side plus a best-first
/// R-tree sweep for objects with no matching keyword (those can still enter
/// the top-k on spatial score alone).
class InvertedTopKEngine {
 public:
  InvertedTopKEngine(const ObjectStore& store, const InvertedIndex& inverted,
                     const RTree& rtree)
      : store_(&store), inverted_(&inverted), rtree_(&rtree) {}

  TopKResult Query(const Query& query, TopKStats* stats = nullptr) const;

 private:
  const ObjectStore* store_;
  const InvertedIndex* inverted_;
  const RTree* rtree_;
};

}  // namespace yask

#endif  // YASK_QUERY_TOPK_ENGINE_H_
