#include "src/common/vocabulary.h"

#include <gtest/gtest.h>

namespace yask {
namespace {

TEST(VocabularyTest, InternAssignsDenseIds) {
  Vocabulary v;
  EXPECT_EQ(v.Intern("coffee"), 0u);
  EXPECT_EQ(v.Intern("wifi"), 1u);
  EXPECT_EQ(v.Intern("coffee"), 0u);  // Idempotent.
  EXPECT_EQ(v.size(), 2u);
}

TEST(VocabularyTest, FindAndContains) {
  Vocabulary v;
  v.Intern("pool");
  EXPECT_EQ(v.Find("pool"), 0u);
  EXPECT_EQ(v.Find("sauna"), kInvalidTerm);
  EXPECT_TRUE(v.Contains("pool"));
  EXPECT_FALSE(v.Contains("sauna"));
}

TEST(VocabularyTest, WordRoundTrip) {
  Vocabulary v;
  const TermId a = v.Intern("clean");
  const TermId b = v.Intern("comfortable");
  EXPECT_EQ(v.Word(a), "clean");
  EXPECT_EQ(v.Word(b), "comfortable");
}

TEST(VocabularyTest, ManyWords) {
  Vocabulary v;
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(v.Intern("kw" + std::to_string(i)), static_cast<TermId>(i));
  }
  EXPECT_EQ(v.size(), 1000u);
  EXPECT_EQ(v.Find("kw517"), 517u);
  EXPECT_EQ(v.Word(999), "kw999");
}

TEST(VocabularyTest, EmptyStringIsAWord) {
  Vocabulary v;
  const TermId id = v.Intern("");
  EXPECT_EQ(v.Find(""), id);
}

}  // namespace
}  // namespace yask
