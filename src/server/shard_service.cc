#include "src/server/shard_service.h"

#include <algorithm>

#include "src/common/timer.h"
#include "src/common/version.h"
#include "src/query/ranking.h"
#include "src/server/json.h"
#include "src/server/shard_protocol.h"
#include "src/server/trace_json.h"

namespace yask {

using shardrpc::CountMethod;

namespace {

HttpResponse Binary(const BufWriter& out) {
  return HttpResponse{200, "application/octet-stream", out.data()};
}

HttpResponse BadBody(const BufReader& in) {
  return HttpResponse::Error(
      400, "malformed shard request: " + (in.status().ok()
                                              ? std::string("truncated")
                                              : in.status().message()));
}

}  // namespace

/// One Eqn. (3) session: this shard's plane points / plane index for one
/// query. Calls are serialised per session (the coordinator's weight sweep
/// is sequential anyway; the lock protects against misbehaving clients).
struct ShardService::PlaneSession {
  std::mutex mu;
  std::unique_ptr<ShardPlane> plane;
  uint64_t last_use = 0;  // Guarded by sessions_mu_, not mu.
};

/// One Eqn. (4) probe batch: per (candidate, missing object) member a
/// candidate query copy, a scorer bound to it, and this shard's refiner.
/// Members live behind unique_ptrs — scorers point into the member's query.
struct ShardService::ProbeSession {
  struct Member {
    Query query;
    std::optional<Scorer> scorer;
    std::optional<ShardRankRefiner> refiner;
  };

  std::mutex mu;
  std::vector<std::unique_ptr<Member>> members;
  KeywordAdaptStats stats;  // Refiner work counters; deltas reported per call.
  uint64_t last_use = 0;    // Guarded by sessions_mu_, not mu.
};

ShardService::Info ShardService::StandaloneInfo(const Corpus& corpus) {
  Info info;
  info.global_bounds = corpus.store().bounds();
  info.dist_norm = corpus.store().BoundsDiagonal();
  return info;
}

ShardService::Info ShardService::InfoFromManifest(
    const ShardManifest& manifest) {
  Info info;
  info.shard_index = manifest.shard_index;
  info.shard_count = manifest.shard_count;
  info.global_bounds = manifest.global_bounds;
  // The exact arithmetic ShardedCorpus::Load uses for the normaliser.
  info.dist_norm =
      manifest.global_bounds.empty()
          ? 0.0
          : Distance(
                Point{manifest.global_bounds.min_x,
                      manifest.global_bounds.min_y},
                Point{manifest.global_bounds.max_x,
                      manifest.global_bounds.max_y});
  info.to_global = manifest.global_ids;
  info.router = manifest.router;
  return info;
}

ShardService::ShardService(const Corpus& corpus, Info info,
                           ShardServiceOptions options)
    : corpus_(&corpus),
      info_(std::move(info)),
      topk_(corpus.store(), corpus.setr()),
      server_(options.port, options.num_workers),
      max_sessions_(options.max_sessions == 0 ? 1 : options.max_sessions) {
  topk_.set_dist_norm(info_.dist_norm);
  view_ = OracleShardView{
      &corpus.store(), &corpus.setr(),
      corpus.has_kcr() ? &corpus.kcr() : nullptr,
      info_.to_global.empty() ? nullptr : &info_.to_global};

  server_.Route("GET", shardrpc::kHealthPath, Instrumented(
      shardrpc::kHealthPath,
      [this](const HttpRequest& r) { return HandleHealth(r); }));
  server_.Route("GET", shardrpc::kMetaPath, Instrumented(
      shardrpc::kMetaPath,
      [this](const HttpRequest& r) { return HandleMeta(r); }));
  server_.Route("GET", shardrpc::kVocabPath, Instrumented(
      shardrpc::kVocabPath,
      [this](const HttpRequest& r) { return HandleVocab(r); }));
  server_.Route("POST", shardrpc::kObjectsPath, Instrumented(
      shardrpc::kObjectsPath,
      [this](const HttpRequest& r) { return HandleObjects(r); }));
  server_.Route("POST", shardrpc::kFindPath, Instrumented(
      shardrpc::kFindPath,
      [this](const HttpRequest& r) { return HandleFind(r); }));
  server_.Route("POST", shardrpc::kTopKPath, Instrumented(
      shardrpc::kTopKPath,
      [this](const HttpRequest& r) { return HandleTopK(r); }));
  server_.Route("POST", shardrpc::kCountPath, Instrumented(
      shardrpc::kCountPath,
      [this](const HttpRequest& r) { return HandleCount(r); }));
  server_.Route("POST", shardrpc::kPlaneOpenPath, Instrumented(
      shardrpc::kPlaneOpenPath,
      [this](const HttpRequest& r) { return HandlePlaneOpen(r); }));
  server_.Route("POST", shardrpc::kPlaneCountPath, Instrumented(
      shardrpc::kPlaneCountPath,
      [this](const HttpRequest& r) { return HandlePlaneCount(r); }));
  server_.Route("POST", shardrpc::kPlaneCountBatchPath, Instrumented(
      shardrpc::kPlaneCountBatchPath,
      [this](const HttpRequest& r) { return HandlePlaneCountBatch(r); }));
  server_.Route("POST", shardrpc::kPlaneCrossingsPath, Instrumented(
      shardrpc::kPlaneCrossingsPath,
      [this](const HttpRequest& r) { return HandlePlaneCrossings(r); }));
  server_.Route("POST", shardrpc::kPlaneClosePath, Instrumented(
      shardrpc::kPlaneClosePath,
      [this](const HttpRequest& r) { return HandlePlaneClose(r); }));
  server_.Route("POST", shardrpc::kProbeOpenPath, Instrumented(
      shardrpc::kProbeOpenPath,
      [this](const HttpRequest& r) { return HandleProbeOpen(r); }));
  server_.Route("POST", shardrpc::kProbeRefinePath, Instrumented(
      shardrpc::kProbeRefinePath,
      [this](const HttpRequest& r) { return HandleProbeRefine(r); }));
  server_.Route("POST", shardrpc::kProbeClosePath, Instrumented(
      shardrpc::kProbeClosePath,
      [this](const HttpRequest& r) { return HandleProbeClose(r); }));
  // Observability endpoints are NOT instrumented: a scrape must not perturb
  // the very series it reads, and neither carries a trace header.
  server_.Route("GET", shardrpc::kTracePath,
                [this](const HttpRequest& r) { return HandleTrace(r); });
  server_.Route("GET", shardrpc::kMetricsPath,
                [this](const HttpRequest& r) { return HandleMetrics(r); });

  const MetricLabels shard_label = {
      {"shard", std::to_string(info_.shard_index)}};
  metrics_.AddGaugeCallback("yask_shard_open_plane_sessions", shard_label,
                            [this] {
                              std::lock_guard<std::mutex> lock(sessions_mu_);
                              return static_cast<double>(planes_.size());
                            });
  metrics_.AddGaugeCallback("yask_shard_open_probe_sessions", shard_label,
                            [this] {
                              std::lock_guard<std::mutex> lock(sessions_mu_);
                              return static_cast<double>(probes_.size());
                            });
  metrics_.AddGaugeCallback("yask_shard_objects", shard_label, [this] {
    return static_cast<double>(corpus_->size());
  });
  MetricLabels plane_labels = shard_label;
  plane_labels.emplace_back("kind", "plane");
  plane_evictions_ =
      metrics_.GetCounter("yask_shard_sessions_evicted_total", plane_labels);
  MetricLabels probe_labels = shard_label;
  probe_labels.emplace_back("kind", "probe");
  probe_evictions_ =
      metrics_.GetCounter("yask_shard_sessions_evicted_total", probe_labels);
}

HttpServer::Handler ShardService::Instrumented(const char* endpoint,
                                               HttpServer::Handler inner) {
  // The latency histogram is resolved once here (stable pointer); the
  // code-labelled counter is resolved per response — that lookup takes the
  // registry mutex, but it is one short map probe per HTTP request,
  // invisible next to the request's own work.
  Histogram* latency = metrics_.GetHistogram(
      "yask_shard_request_ms", {{"endpoint", endpoint}});
  const std::string endpoint_str = endpoint;
  return [this, latency, endpoint_str,
          inner = std::move(inner)](const HttpRequest& req) {
    Timer timer;
    HttpResponse resp;
    std::string trace_id;
    uint64_t parent_span = 0;
    const auto header = req.headers.find(kTraceHeaderName);
    if (header != req.headers.end() &&
        ParseTraceHeaderValue(header->second, &trace_id, &parent_span)) {
      // shardrpc v2: this RPC is part of a distributed trace. The root span
      // is parented to the coordinator's rpc span id so the stitched tree
      // at GET /trace/<id> hangs this server's work under that rpc.
      TraceRecorder recorder(trace_id);
      {
        TraceContextScope scope(TraceContext{&recorder, parent_span});
        ScopedSpan span(endpoint_str,
                        "shard " + std::to_string(info_.shard_index));
        resp = inner(req);
      }
      traces_.Add(trace_id, recorder.TakeSpans(), recorder.ElapsedMs());
    } else {
      resp = inner(req);
    }
    latency->Observe(timer.ElapsedMillis());
    metrics_
        .GetCounter("yask_shard_requests_total",
                    {{"endpoint", endpoint_str},
                     {"code", std::to_string(resp.status)}})
        ->Add();
    return resp;
  };
}

HttpResponse ShardService::HandleTrace(const HttpRequest& req) {
  const auto it = req.query_params.find("id");
  if (it == req.query_params.end() || it->second.empty()) {
    return HttpResponse::Error(400, "missing ?id=<trace_id>");
  }
  const std::optional<TraceStore::Stored> stored = traces_.Get(it->second);
  if (!stored.has_value()) {
    return HttpResponse::Error(404, "unknown trace " + it->second);
  }
  return HttpResponse::Json(
      StoredTraceToJson(*stored,
                        "shard " + std::to_string(info_.shard_index))
          .Dump());
}

HttpResponse ShardService::HandleMetrics(const HttpRequest&) {
  std::string body;
  metrics_.RenderPrometheus(&body);
  return HttpResponse{200, "text/plain; version=0.0.4", std::move(body)};
}

size_t ShardService::open_sessions() const {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  return planes_.size() + probes_.size();
}

std::optional<ObjectId> ShardService::ToLocal(ObjectId global_id) const {
  if (info_.to_global.empty()) {
    if (global_id >= corpus_->size()) return std::nullopt;
    return global_id;
  }
  // to_global is strictly ascending (shards fill in global id order).
  const auto it = std::lower_bound(info_.to_global.begin(),
                                   info_.to_global.end(), global_id);
  if (it == info_.to_global.end() || *it != global_id) return std::nullopt;
  return static_cast<ObjectId>(it - info_.to_global.begin());
}

std::shared_ptr<ShardService::PlaneSession> ShardService::FindPlane(
    uint64_t id) const {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  const auto it = planes_.find(id);
  if (it == planes_.end()) return nullptr;
  it->second->last_use = ++use_clock_;
  return it->second;
}

std::shared_ptr<ShardService::ProbeSession> ShardService::FindProbe(
    uint64_t id) const {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  const auto it = probes_.find(id);
  if (it == probes_.end()) return nullptr;
  it->second->last_use = ++use_clock_;
  return it->second;
}

template <typename Map>
void ShardService::EvictLeastRecentlyUsed(Map* sessions) const {
  // Called under sessions_mu_ with size == max + 1. Evicting by LAST USE,
  // not creation order, protects a long-running sweep's session from a
  // burst of newer opens; the maps are small (<= max_sessions + 1), so a
  // linear scan beats bookkeeping an intrusive LRU list here.
  auto victim = sessions->begin();
  for (auto it = sessions->begin(); it != sessions->end(); ++it) {
    if (it->second->last_use < victim->second->last_use) victim = it;
  }
  sessions->erase(victim);
}

// --- Introspection -----------------------------------------------------------

HttpResponse ShardService::HandleHealth(const HttpRequest&) {
  JsonValue out = JsonValue::MakeObject();
  out.Set("status", JsonValue("ok"));
  out.Set("role", JsonValue("shard"));
  out.Set("shard_index", JsonValue(static_cast<size_t>(info_.shard_index)));
  out.Set("shard_count", JsonValue(static_cast<size_t>(info_.shard_count)));
  out.Set("objects", JsonValue(corpus_->size()));
  out.Set("protocol_version",
          JsonValue(static_cast<size_t>(shardrpc::kProtocolVersion)));
  // Build identity for rolling upgrades: which binary this replica runs and
  // which shardrpc range it speaks (same shape as the coordinator's).
  JsonValue build = JsonValue::MakeObject();
  build.Set("git_sha", JsonValue(std::string(BuildGitSha())));
  build.Set("shardrpc_min", JsonValue(static_cast<size_t>(
                                shardrpc::kMinSupportedProtocolVersion)));
  build.Set("shardrpc_max",
            JsonValue(static_cast<size_t>(shardrpc::kProtocolVersion)));
  out.Set("build", std::move(build));
  JsonValue indexes = JsonValue::MakeObject();
  indexes.Set("setr", JsonValue(true));
  indexes.Set("kcr", JsonValue(corpus_->has_kcr()));
  out.Set("indexes", std::move(indexes));
  // Whether this shard can serve its slice of /whynot refinement.
  out.Set("whynot", JsonValue(corpus_->has_kcr()));
  out.Set("open_sessions", JsonValue(open_sessions()));
  return HttpResponse::Json(out.Dump());
}

HttpResponse ShardService::HandleMeta(const HttpRequest&) {
  shardrpc::ShardMeta meta;
  meta.shard_index = info_.shard_index;
  meta.shard_count = info_.shard_count;
  meta.object_count = corpus_->size();
  meta.dist_norm = info_.dist_norm;
  meta.global_bounds = info_.global_bounds;
  meta.has_kcr = corpus_->has_kcr();
  const SetRTree& tree = corpus_->setr();
  meta.setr_empty = tree.empty();
  if (!tree.empty()) meta.setr_root_mbr = tree.node(tree.root()).rect;
  meta.router = info_.router;
  meta.global_ids = info_.to_global;
  BufWriter out;
  shardrpc::PutShardMeta(&out, meta);
  return Binary(out);
}

HttpResponse ShardService::HandleVocab(const HttpRequest&) {
  BufWriter out;
  SaveVocabulary(corpus_->vocab(), &out);
  return Binary(out);
}

HttpResponse ShardService::HandleObjects(const HttpRequest& req) {
  BufReader in(req.body.data(), req.body.size());
  const uint64_t count = in.GetVarU64();
  if (!in.CheckCount(count, sizeof(uint32_t))) return BadBody(in);
  std::vector<ObjectId> locals;
  locals.reserve(count);
  BufWriter out;
  out.PutVarU64(count);
  for (uint64_t i = 0; i < count; ++i) {
    const ObjectId global = in.GetU32();
    if (!in.ok()) return BadBody(in);
    const std::optional<ObjectId> local = ToLocal(global);
    if (!local.has_value()) {
      return HttpResponse::Error(
          404, "object " + std::to_string(global) + " is not on shard " +
                   std::to_string(info_.shard_index));
    }
    shardrpc::PutObject(&out, global, corpus_->store().Get(*local));
  }
  if (!in.AtEnd()) return BadBody(in);
  return Binary(out);
}

HttpResponse ShardService::HandleFind(const HttpRequest& req) {
  BufReader in(req.body.data(), req.body.size());
  const std::string name = in.GetString();
  if (!in.ok() || !in.AtEnd()) return BadBody(in);
  // First local match = first global match within the shard (local order is
  // the global order restricted to the shard).
  const ObjectId local = corpus_->store().FindByName(name);
  BufWriter out;
  out.PutU32(local == kInvalidObject ? kInvalidObject : ToGlobal(local));
  return Binary(out);
}

// --- Top-k -------------------------------------------------------------------

HttpResponse ShardService::HandleTopK(const HttpRequest& req) {
  BufReader in(req.body.data(), req.body.size());
  const Query query = shardrpc::GetQuery(&in);
  const double prune_below = in.GetF64();
  if (!in.ok() || !in.AtEnd()) return BadBody(in);

  TopKStats stats;
  TopKResult rows;
  if (query.k > 0) rows = topk_.Query(query, prune_below, &stats);
  for (ScoredObject& row : rows) row.id = ToGlobal(row.id);

  BufWriter out;
  shardrpc::PutScoredRows(&out, rows);
  out.PutU64(stats.nodes_popped);
  out.PutU64(stats.objects_scored);
  return Binary(out);
}

// --- Outscoring counts -------------------------------------------------------

HttpResponse ShardService::HandleCount(const HttpRequest& req) {
  BufReader in(req.body.data(), req.body.size());
  const uint64_t count = in.GetVarU64();
  if (!in.CheckCount(count, 16)) return BadBody(in);
  BufWriter out;
  out.PutVarU64(count);
  for (uint64_t i = 0; i < count; ++i) {
    const Query query = shardrpc::GetQuery(&in);
    const ObjectId target = in.GetU32();
    const double target_score = in.GetF64();
    const uint8_t method = in.GetU8();
    if (!in.ok()) return BadBody(in);
    const Scorer scorer(corpus_->store(), query, info_.dist_norm);
    uint64_t above = 0;
    if (method == static_cast<uint8_t>(CountMethod::kScan)) {
      above = ShardScanOutscoring(view_, scorer, target_score, target);
    } else if (method == static_cast<uint8_t>(CountMethod::kSetR)) {
      above = CountOutscoring(corpus_->store(), corpus_->setr(), scorer,
                              target_score, target, view_.to_global);
    } else {
      return HttpResponse::Error(400, "unknown count method");
    }
    out.PutU64(above);
  }
  if (!in.AtEnd()) return BadBody(in);
  return Binary(out);
}

// --- Score-plane sessions (Eqn. (3)) -----------------------------------------

HttpResponse ShardService::HandlePlaneOpen(const HttpRequest& req) {
  BufReader in(req.body.data(), req.body.size());
  const Query query = shardrpc::GetQuery(&in);
  const bool optimized = in.GetU8() != 0;
  if (!in.ok() || !in.AtEnd()) return BadBody(in);

  auto session = std::make_shared<PlaneSession>();
  session->plane = std::make_unique<ShardPlane>(view_, query, info_.dist_norm,
                                                optimized);
  uint64_t id;
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    id = next_session_id_++;
    session->last_use = ++use_clock_;
    planes_[id] = std::move(session);
    if (planes_.size() > max_sessions_) {
      EvictLeastRecentlyUsed(&planes_);
      plane_evictions_->Add();
    }
  }
  BufWriter out;
  out.PutU64(id);
  return Binary(out);
}

HttpResponse ShardService::HandlePlaneCount(const HttpRequest& req) {
  BufReader in(req.body.data(), req.body.size());
  const uint64_t id = in.GetU64();
  const double w = in.GetF64();
  const PlanePoint anchor = shardrpc::GetPlanePoint(&in);
  if (!in.ok() || !in.AtEnd()) return BadBody(in);
  const std::shared_ptr<PlaneSession> session = FindPlane(id);
  if (session == nullptr) {
    return HttpResponse::Error(404, "unknown plane session");
  }
  // The same double the in-process session hands every shard.
  const double threshold = anchor.ScoreAt(w);
  size_t nodes = 0;
  size_t count;
  {
    std::lock_guard<std::mutex> lock(session->mu);
    count = session->plane->CountAbove(w, threshold, anchor, &nodes);
  }
  BufWriter out;
  out.PutU64(count);
  out.PutU64(nodes);
  return Binary(out);
}

HttpResponse ShardService::HandlePlaneCountBatch(const HttpRequest& req) {
  BufReader in(req.body.data(), req.body.size());
  const uint64_t id = in.GetU64();
  const uint64_t num_weights = in.GetVarU64();
  if (!in.CheckCount(num_weights, sizeof(double))) return BadBody(in);
  std::vector<double> weights;
  weights.reserve(num_weights);
  for (uint64_t i = 0; i < num_weights; ++i) weights.push_back(in.GetF64());
  const uint64_t num_anchors = in.GetVarU64();
  if (!in.CheckCount(num_anchors, 20)) return BadBody(in);
  std::vector<PlanePoint> anchors;
  anchors.reserve(num_anchors);
  for (uint64_t i = 0; i < num_anchors; ++i) {
    anchors.push_back(shardrpc::GetPlanePoint(&in));
  }
  if (!in.ok() || !in.AtEnd()) return BadBody(in);
  if (num_weights == 0 || num_anchors == 0) {
    return HttpResponse::Error(400, "empty plane count batch");
  }
  const std::shared_ptr<PlaneSession> session = FindPlane(id);
  if (session == nullptr) {
    return HttpResponse::Error(404, "unknown plane session");
  }
  // Thresholds are computed inside CountAboveBatch from the same
  // anchor.ScoreAt(w) expression HandlePlaneCount evaluates, so each batched
  // count is the same double-for-double computation as its per-call twin.
  std::vector<size_t> counts(weights.size() * anchors.size(), 0);
  size_t nodes = 0;
  {
    std::lock_guard<std::mutex> lock(session->mu);
    session->plane->CountAboveBatch(weights, anchors, &counts, &nodes);
  }
  BufWriter out;
  out.PutVarU64(counts.size());
  for (size_t c : counts) out.PutU64(c);
  out.PutU64(nodes);
  return Binary(out);
}

HttpResponse ShardService::HandlePlaneCrossings(const HttpRequest& req) {
  BufReader in(req.body.data(), req.body.size());
  const uint64_t id = in.GetU64();
  const PlanePoint anchor = shardrpc::GetPlanePoint(&in);
  const double wlo = in.GetF64();
  const double whi = in.GetF64();
  if (!in.ok() || !in.AtEnd()) return BadBody(in);
  const std::shared_ptr<PlaneSession> session = FindPlane(id);
  if (session == nullptr) {
    return HttpResponse::Error(404, "unknown plane session");
  }
  std::vector<double> events;
  size_t nodes = 0;
  {
    std::lock_guard<std::mutex> lock(session->mu);
    session->plane->CollectCrossings(anchor, wlo, whi, &events, &nodes);
  }
  BufWriter out;
  out.PutVarU64(events.size());
  for (double e : events) out.PutF64(e);
  out.PutU64(nodes);
  return Binary(out);
}

HttpResponse ShardService::HandlePlaneClose(const HttpRequest& req) {
  BufReader in(req.body.data(), req.body.size());
  const uint64_t id = in.GetU64();
  if (!in.ok() || !in.AtEnd()) return BadBody(in);
  bool erased;
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    erased = planes_.erase(id) > 0;
  }
  BufWriter out;
  out.PutU8(erased ? 1 : 0);
  return Binary(out);
}

// --- Rank-probe batches (Eqn. (4)) -------------------------------------------

HttpResponse ShardService::HandleProbeOpen(const HttpRequest& req) {
  if (view_.kcr == nullptr) {
    return HttpResponse::Error(
        501, "shard " + std::to_string(info_.shard_index) +
                 " has no KcR-tree; rank probes (why-not keyword "
                 "refinement) are unavailable");
  }
  BufReader in(req.body.data(), req.body.size());
  const uint64_t count = in.GetVarU64();
  if (!in.CheckCount(count, 16)) return BadBody(in);

  auto session = std::make_shared<ProbeSession>();
  session->members.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    auto member = std::make_unique<ProbeSession::Member>();
    member->query = shardrpc::GetQuery(&in);
    const ObjectId target = in.GetU32();
    const double target_score = in.GetF64();
    if (!in.ok()) return BadBody(in);
    member->scorer.emplace(corpus_->store(), member->query, info_.dist_norm);
    member->refiner.emplace(view_, *member->scorer, target, target_score,
                            &session->stats);
    session->members.push_back(std::move(member));
  }
  if (!in.AtEnd()) return BadBody(in);

  BufWriter out;
  uint64_t id;
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    id = next_session_id_++;
    session->last_use = ++use_clock_;
    probes_[id] = session;
    if (probes_.size() > max_sessions_) {
      EvictLeastRecentlyUsed(&probes_);
      probe_evictions_->Add();
    }
  }
  out.PutU64(id);
  for (const auto& member : session->members) {
    out.PutU64(member->refiner->count_lower());
    out.PutU64(member->refiner->count_upper());
    out.PutU8(member->refiner->resolved() ? 1 : 0);
  }
  return Binary(out);
}

HttpResponse ShardService::HandleProbeRefine(const HttpRequest& req) {
  BufReader in(req.body.data(), req.body.size());
  const uint64_t id = in.GetU64();
  const uint64_t count = in.GetVarU64();
  if (!in.CheckCount(count, 1)) return BadBody(in);
  const std::shared_ptr<ProbeSession> session = FindProbe(id);
  if (session == nullptr) {
    return HttpResponse::Error(404, "unknown probe session");
  }

  std::lock_guard<std::mutex> lock(session->mu);
  const KeywordAdaptStats before = session->stats;
  BufWriter out;
  out.PutVarU64(count);
  for (uint64_t i = 0; i < count; ++i) {
    const uint32_t m = in.GetVarU32();
    if (!in.ok() || m >= session->members.size()) return BadBody(in);
    ShardRankRefiner& refiner = *session->members[m]->refiner;
    if (!refiner.resolved()) refiner.RefineLevel();
    out.PutU64(refiner.count_lower());
    out.PutU64(refiner.count_upper());
    out.PutU8(refiner.resolved() ? 1 : 0);
  }
  if (!in.AtEnd()) return BadBody(in);
  out.PutU64(session->stats.kcr_nodes_expanded - before.kcr_nodes_expanded);
  out.PutU64(session->stats.objects_scored - before.objects_scored);
  return Binary(out);
}

HttpResponse ShardService::HandleProbeClose(const HttpRequest& req) {
  BufReader in(req.body.data(), req.body.size());
  const uint64_t id = in.GetU64();
  if (!in.ok() || !in.AtEnd()) return BadBody(in);
  bool erased;
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    erased = probes_.erase(id) > 0;
  }
  BufWriter out;
  out.PutU8(erased ? 1 : 0);
  return Binary(out);
}

}  // namespace yask
