// Copyright (c) 2026 The YASK reproduction authors.
// ShardedWhyNotOracle: the WhyNotOracle seam implemented over a
// ShardedCorpus, making the why-not stack — explanations, preference
// adjustment, keyword adaption — exact on the scale-out layout.
//
// Every oracle primitive fans out over the corpus's shared worker pool (the
// same pool ShardedTopKEngine uses for /query) and merges with the same
// discipline that made sharded top-k bit-identical:
//   * scores use the GLOBAL SDist normaliser and the shared vocabulary, so
//     an object's score is the same doubles-arithmetic in both layouts;
//   * tie orders compare GLOBAL ids everywhere;
//   * outscoring counts SUM across shards (disjoint partition of one
//     predicate), crossing-weight candidate sets UNION (then sort + dedupe),
//     and per-candidate KcR rank intervals sum elementwise — each shard's
//     [lo, hi] is its exact contribution's bounds, so the summed interval is
//     admissible and collapses to the global exact count.
// The why-not algorithms run unchanged over this oracle, so a sharded
// service answers /whynot bit-identically to an unsharded replica
// (property-tested at 1/2/4/8 shards; bench_whynot_sharded gates on it).

#ifndef YASK_CORPUS_SHARDED_WHYNOT_ORACLE_H_
#define YASK_CORPUS_SHARDED_WHYNOT_ORACLE_H_

#include "src/corpus/sharded_corpus.h"
#include "src/whynot/whynot_oracle.h"

namespace yask {

/// The corpus must outlive the oracle. ProbeRank (keyword adaption)
/// requires every shard to have been built with its KcR-tree.
class ShardedWhyNotOracle : public ContextWhyNotOracle {
 public:
  explicit ShardedWhyNotOracle(const ShardedCorpus& corpus);

  const SpatialObject& Object(ObjectId global_id) const override {
    return corpus_->Object(global_id);
  }
  TopKResult TopK(const Query& query, TopKStats* stats) const override;

  const ShardedCorpus& corpus() const { return *corpus_; }

 private:
  const ShardedCorpus* corpus_;
  ShardedTopKEngine topk_;
};

}  // namespace yask

#endif  // YASK_CORPUS_SHARDED_WHYNOT_ORACLE_H_
