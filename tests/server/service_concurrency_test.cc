// Concurrent serving: hammer POST /query + /whynot + /forget from many
// client threads at once and assert the query cache and the log stay
// consistent. Run under scripts/check.sh --sanitize (ASan/UBSan) and TSan to
// catch data races in the service's shared state (cache, LRU list, log).

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "src/corpus/corpus.h"
#include "src/corpus/sharded_corpus.h"
#include "src/server/yask_service.h"
#include "src/storage/hotel_generator.h"

namespace yask {
namespace {

JsonValue CarolQueryBody(int k) {
  JsonValue req = JsonValue::MakeObject();
  req.Set("x", JsonValue(114.158));
  req.Set("y", JsonValue(22.281));
  req.Set("keywords", JsonValue("clean comfortable"));
  req.Set("k", JsonValue(k));
  return req;
}

TEST(ServiceConcurrencyTest, ParallelQueryWhyNotForgetStaysConsistent) {
  const Corpus corpus = CorpusBuilder().Build(GenerateHotelDataset());
  YaskServiceOptions options;
  options.num_workers = 8;
  options.max_cached_queries = 64;
  YaskService service(corpus, options);
  ASSERT_TRUE(service.Start().ok());

  constexpr int kThreads = 8;
  constexpr int kIterations = 8;
  std::atomic<int> failures{0};
  std::atomic<int> queries_ok{0};
  std::atomic<int> whynots_ok{0};
  std::mutex ids_mu;
  std::set<uint64_t> all_ids;

  std::vector<std::thread> clients;
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      for (int i = 0; i < kIterations; ++i) {
        // 1. Initial query; every response must carry a fresh id.
        int status = 0;
        auto qbody = HttpFetch(service.port(), "POST", "/query",
                               CarolQueryBody(3 + (t + i) % 5).Dump(),
                               &status);
        if (!qbody.ok() || status != 200) {
          ++failures;
          continue;
        }
        auto qparsed = JsonValue::Parse(*qbody);
        if (!qparsed.ok()) {
          ++failures;
          continue;
        }
        const uint64_t id =
            static_cast<uint64_t>(qparsed->Get("query_id").as_number());
        {
          std::lock_guard<std::mutex> lock(ids_mu);
          // Duplicate ids would mean the cache lost its id discipline.
          if (!all_ids.insert(id).second) ++failures;
        }
        ++queries_ok;

        // 2. A why-not follow-up against the cached query. Under eviction
        // pressure 404 is legitimate; anything else but 200 is a failure.
        JsonValue wn = JsonValue::MakeObject();
        wn.Set("query_id", JsonValue(static_cast<size_t>(id)));
        JsonValue missing = JsonValue::MakeArray();
        missing.Append(JsonValue(20 + (t * kIterations + i) % 40));
        wn.Set("missing", std::move(missing));
        wn.Set("model", JsonValue(i % 2 == 0 ? "preference" : "keyword"));
        auto wbody =
            HttpFetch(service.port(), "POST", "/whynot", wn.Dump(), &status);
        if (!wbody.ok() || (status != 200 && status != 404)) {
          ++failures;
        } else if (status == 200) {
          ++whynots_ok;
        }

        // 3. Half the clients release their query, half rely on eviction.
        if (i % 2 == 0) {
          JsonValue forget = JsonValue::MakeObject();
          forget.Set("query_id", JsonValue(static_cast<size_t>(id)));
          auto fbody = HttpFetch(service.port(), "POST", "/forget",
                                 forget.Dump(), &status);
          if (!fbody.ok() || status != 200) ++failures;
        }
      }
    });
  }
  for (std::thread& c : clients) c.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(queries_ok.load(), kThreads * kIterations);
  // Cache consistency: never above the bound, and exactly the queries that
  // were neither forgotten nor evicted remain.
  EXPECT_LE(service.cached_queries(), options.max_cached_queries);

  // Log consistency: one "topk" entry per successful query, one "whynot"
  // entry per successful why-not, interleaved but none lost.
  size_t topk_entries = 0;
  size_t whynot_entries = 0;
  for (const QueryLogEntry& e : service.log().Snapshot()) {
    if (e.kind == "topk") ++topk_entries;
    if (e.kind == "whynot") ++whynot_entries;
  }
  EXPECT_EQ(topk_entries, static_cast<size_t>(queries_ok.load()));
  EXPECT_EQ(whynot_entries, static_cast<size_t>(whynots_ok.load()));

  service.Stop();
}

TEST(ServiceConcurrencyTest, ShardedServiceParallelQueries) {
  // The sharded engine's worker pool is shared by all HTTP workers: fire
  // concurrent queries and verify every response is the same exact top-k.
  const Corpus reference = CorpusBuilder().Build(GenerateHotelDataset());
  const ShardedCorpus sharded = ShardedCorpus::Partition(
      reference.store(), GridShardRouter::Fit(reference.store(), 4));
  YaskServiceOptions options;
  options.num_workers = 6;
  YaskService service(sharded, options);
  ASSERT_TRUE(service.Start().ok());

  const TopKResult expected = [&] {
    Query q;
    q.loc = Point{114.158, 22.281};
    const Vocabulary& v = reference.vocab();
    q.doc = KeywordSet({v.Find("clean"), v.Find("comfortable")});
    q.k = 5;
    return reference.topk().Query(q);
  }();

  std::atomic<int> mismatches{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < 6; ++t) {
    clients.emplace_back([&] {
      for (int i = 0; i < 10; ++i) {
        int status = 0;
        auto body = HttpFetch(service.port(), "POST", "/query",
                              CarolQueryBody(5).Dump(), &status);
        if (!body.ok() || status != 200) {
          ++mismatches;
          continue;
        }
        auto parsed = JsonValue::Parse(*body);
        if (!parsed.ok()) {
          ++mismatches;
          continue;
        }
        const JsonValue& results = parsed->Get("results");
        if (results.size() != expected.size()) {
          ++mismatches;
          continue;
        }
        for (size_t r = 0; r < expected.size(); ++r) {
          if (static_cast<ObjectId>(
                  results.At(r).Get("id").as_number()) != expected[r].id) {
            ++mismatches;
          }
        }
      }
    });
  }
  for (std::thread& c : clients) c.join();
  EXPECT_EQ(mismatches.load(), 0);
  service.Stop();
}

}  // namespace
}  // namespace yask
