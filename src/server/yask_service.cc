#include "src/server/yask_service.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <limits>
#include <utility>

#include "src/common/string_util.h"
#include "src/common/text.h"
#include "src/common/timer.h"
#include "src/common/version.h"
#include "src/corpus/remote_whynot_oracle.h"
#include "src/server/http_client.h"
#include "src/server/shard_protocol.h"
#include "src/server/trace_json.h"

namespace yask {

namespace {

/// Range-checked double -> integer conversions for client-supplied JSON
/// numbers (a bare static_cast from a negative or huge double is UB).
bool ToUint32(double v, uint32_t* out) {
  if (!(v >= 0.0 && v <= static_cast<double>(
                             std::numeric_limits<uint32_t>::max()))) {
    return false;
  }
  *out = static_cast<uint32_t>(v);
  return true;
}

bool ToUint64(double v, uint64_t* out) {
  if (!(v >= 0.0 && v < 18446744073709551616.0)) return false;
  *out = static_cast<uint64_t>(v);
  return true;
}

/// The trace id the Instrumented wrapper minted for this request thread
/// ("" on untraced requests) — what the query log records.
std::string CurrentTraceId() {
  const TraceContext ctx = CurrentTraceContext();
  return ctx.recorder != nullptr ? ctx.recorder->trace_id() : std::string();
}

/// Bit-exact double rendering for canonical cache keys: two doubles map to
/// the same key iff they are the same value (decimal formatting would
/// collapse distinct inputs and split equal ones).
std::string HexBits(double v) {
  uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(bits));
  return std::string(buf);
}

/// Canonical /query key. Every answer-relevant input is folded in: the
/// layout generation (a cutover swaps the whole fleet, so every response
/// computed on the old layout is retired), the corpus error epoch (a replica
/// failure may change which replica answers, so it retires all prior
/// entries), k, the bit-exact location, and the resolved term-id set
/// (already sorted/deduplicated, so "wifi coffee" and "coffee wifi coffee"
/// share one key — they ARE the same query). The weight vector is a
/// server-side constant (§3.2) and is deliberately absent.
std::string QueryCacheKey(uint64_t generation, uint64_t epoch,
                          const Query& q) {
  std::string key = "q|g" + std::to_string(generation) + "|e" +
                    std::to_string(epoch) + "|k" + std::to_string(q.k) + '|' +
                    HexBits(q.loc.x) + ',' + HexBits(q.loc.y) + '|';
  for (const TermId t : q.doc) {
    key += std::to_string(t);
    key += ',';
  }
  return key;
}

/// Canonical /whynot key. query_id alone pins the initial query (ids are
/// minted monotonically and never reused); `missing` stays in request order
/// because explanations are rendered per missing object in that order.
std::string WhyNotCacheKey(uint64_t generation, uint64_t epoch,
                           uint64_t query_id,
                           const std::vector<ObjectId>& missing,
                           const std::string& model, double lambda) {
  std::string key = "w|g" + std::to_string(generation) + "|e" +
                    std::to_string(epoch) + "|q" + std::to_string(query_id) +
                    '|' + model + '|' + HexBits(lambda) + '|';
  for (const ObjectId id : missing) {
    key += std::to_string(id);
    key += ',';
  }
  return key;
}

/// The "build" object /health exposes on coordinator and shard servers
/// alike: which binary this process runs (git sha) and which shardrpc
/// protocol range it speaks — what a rolling upgrade asserts per process.
JsonValue BuildInfoJson() {
  JsonValue build = JsonValue::MakeObject();
  build.Set("git_sha", JsonValue(std::string(BuildGitSha())));
  build.Set("shardrpc_min", JsonValue(static_cast<size_t>(
                                shardrpc::kMinSupportedProtocolVersion)));
  build.Set("shardrpc_max",
            JsonValue(static_cast<size_t>(shardrpc::kProtocolVersion)));
  return build;
}

}  // namespace

YaskService::YaskService(YaskServiceOptions options)
    : options_(options), server_(options.port, options.num_workers) {
  traces_.set_slow_threshold_ms(options.slow_trace_threshold_ms);
  // Only the two engine-driven endpoints are traced (they are the ones with
  // a span tree worth keeping); everything data-path is metered.
  server_.Route("POST", "/query", Instrumented(
      "/query", /*traced=*/true,
      [this](const HttpRequest& r) { return HandleQuery(r); }));
  server_.Route("POST", "/whynot", Instrumented(
      "/whynot", /*traced=*/true,
      [this](const HttpRequest& r) { return HandleWhyNot(r); }));
  server_.Route("GET", "/objects", Instrumented(
      "/objects", /*traced=*/false,
      [this](const HttpRequest& r) { return HandleObjects(r); }));
  server_.Route("GET", "/log", Instrumented(
      "/log", /*traced=*/false,
      [this](const HttpRequest& r) { return HandleLog(r); }));
  server_.Route("POST", "/forget", Instrumented(
      "/forget", /*traced=*/false,
      [this](const HttpRequest& r) { return HandleForget(r); }));
  server_.Route("GET", "/health", Instrumented(
      "/health", /*traced=*/false,
      [this](const HttpRequest& r) { return HandleHealth(r); }));
  server_.Route("POST", "/snapshot", Instrumented(
      "/snapshot", /*traced=*/false,
      [this](const HttpRequest& r) { return HandleSnapshot(r); }));
  // Fleet admin (coordinator mode, enable_fleet_admin): runtime layout
  // cutover and replica membership. Untraced — they are rare control-plane
  // calls, and the /metrics meters suffice.
  server_.Route("GET", "/admin/layout", Instrumented(
      "/admin/layout", /*traced=*/false,
      [this](const HttpRequest& r) { return HandleAdminLayout(r); }));
  server_.Route("POST", "/admin/layout", Instrumented(
      "/admin/layout", /*traced=*/false,
      [this](const HttpRequest& r) { return HandleAdminLayout(r); }));
  server_.Route("POST", "/admin/replicas", Instrumented(
      "/admin/replicas", /*traced=*/false,
      [this](const HttpRequest& r) { return HandleAdminReplicas(r); }));
  // Observability endpoints are not instrumented: a scrape must not move
  // the series it reads. They still pin the active deployment — both read
  // remote state, which a concurrent cutover must not destroy under them.
  server_.Route("GET", "/metrics", [this](const HttpRequest& r) {
    DeploymentPin pin(*this);
    return HandleMetrics(r);
  });
  server_.RoutePrefix("GET", "/trace/", [this](const HttpRequest& r) {
    DeploymentPin pin(*this);
    return HandleTrace(r);
  });
  metrics_.AddGaugeCallback("yask_cached_queries", {}, [this] {
    return static_cast<double>(cached_queries());
  });
  metrics_.AddGaugeCallback("yask_query_log_entries", {}, [this] {
    return static_cast<double>(log_.size());
  });
  if (options_.enable_result_cache) {
    result_cache_ = std::make_unique<ResultCache>(
        options_.result_cache_max_entries, options_.result_cache_max_bytes,
        metrics_.GetCounter("yask_result_cache_evictions_total", {}),
        metrics_.GetCounter("yask_result_cache_invalidations_total", {}));
    cache_hits_ = metrics_.GetCounter("yask_result_cache_hits_total", {});
    cache_misses_ = metrics_.GetCounter("yask_result_cache_misses_total", {});
    coalesced_ = metrics_.GetCounter("yask_coalesced_requests_total", {});
    coalesce_leader_failures_ =
        metrics_.GetCounter("yask_coalesce_leader_failures_total", {});
    metrics_.AddGaugeCallback("yask_result_cache_entries", {}, [this] {
      return static_cast<double>(result_cache_->entries());
    });
    metrics_.AddGaugeCallback("yask_result_cache_bytes", {}, [this] {
      return static_cast<double>(result_cache_->bytes());
    });
  }
  // A minimal index page standing in for the demo's map GUI (Figs. 3-5).
  server_.Route("GET", "/", [](const HttpRequest&) {
    return HttpResponse{
        200, "text/html",
        "<!doctype html><title>YASK</title><h1>YASK</h1>"
        "<p>A why-not question answering engine for spatial keyword query "
        "services (VLDB'16 demo, C++ reproduction).</p><ul>"
        "<li>POST /query {x, y, keywords, k}</li>"
        "<li>POST /whynot {query_id, missing[], model, lambda}</li>"
        "<li>GET /objects?limit=N &middot; GET /log &middot; GET /health"
        "</li><li>POST /forget {query_id}</li></ul>"};
  });
}

YaskService::YaskService(const Corpus& corpus, YaskServiceOptions options)
    : YaskService(options) {
  corpus_ = &corpus;
  engine_.emplace(corpus);
}

YaskService::YaskService(const ShardedCorpus& corpus,
                         YaskServiceOptions options)
    : YaskService(options) {
  sharded_ = &corpus;
  engine_.emplace(corpus);
}

YaskService::YaskService(const RemoteCorpus& corpus,
                         YaskServiceOptions options)
    : YaskService(options) {
  remote_mode_ = true;
  // The boot deployment (generation 1) borrows the caller's corpus; fleets
  // swapped in later via /admin/layout are owned by their deployment.
  auto boot = std::make_shared<RemoteDeployment>();
  boot->generation = 1;
  boot->spec = SpecOf(corpus);
  boot->corpus = &corpus;
  boot->engine.emplace(std::make_unique<RemoteShardOracle>(corpus));
  deployment_ = std::move(boot);
}

Status YaskService::Start() { return server_.Start(); }

void YaskService::Stop() { server_.Stop(); }

// --- Layout deployments ------------------------------------------------------

thread_local const YaskService::RemoteDeployment*
    YaskService::tls_deployment_ = nullptr;

YaskService::DeploymentPin::DeploymentPin(const YaskService& service)
    : previous_(tls_deployment_) {
  if (service.remote_mode_) {
    std::lock_guard<std::mutex> lock(service.layout_mu_);
    pinned_ = service.deployment_;
  }
  tls_deployment_ = pinned_.get();
}

YaskService::DeploymentPin::~DeploymentPin() { tls_deployment_ = previous_; }

const YaskService::RemoteDeployment* YaskService::CurrentDeployment() const {
  if (!remote_mode_) return nullptr;
  // Every handler runs under a DeploymentPin; the fallback covers direct
  // calls from tests or constructors (no cutover can race those).
  if (tls_deployment_ != nullptr) return tls_deployment_;
  std::lock_guard<std::mutex> lock(layout_mu_);
  return deployment_.get();
}

const RemoteCorpus* YaskService::ActiveRemote() const {
  const RemoteDeployment* deployment = CurrentDeployment();
  return deployment != nullptr ? deployment->corpus : nullptr;
}

const WhyNotEngine& YaskService::Engine() const {
  if (!remote_mode_) return *engine_;
  return *CurrentDeployment()->engine;
}

uint64_t YaskService::LayoutGeneration() const {
  const RemoteDeployment* deployment = CurrentDeployment();
  return deployment != nullptr ? deployment->generation : 0;
}

std::string YaskService::SpecOf(const RemoteCorpus& corpus) {
  std::string spec;
  for (size_t s = 0; s < corpus.num_shards(); ++s) {
    if (!spec.empty()) spec += ',';
    spec += corpus.replicas(s).description();
  }
  return spec;
}

std::optional<HttpResponse> YaskService::AdminGate() const {
  if (!remote_mode_) {
    return HttpResponse::Error(
        501, "fleet admin applies to coordinator mode only (this server "
             "holds its corpus in-process)");
  }
  if (!options_.enable_fleet_admin) {
    return HttpResponse::Error(
        403, "fleet admin is disabled on this server "
             "(YaskServiceOptions::enable_fleet_admin)");
  }
  return std::nullopt;
}

HttpResponse YaskService::SwapLayout(const std::string& spec) {
  // Connect OUTSIDE layout_mu_: dialing takes wall time and serving must not
  // stall behind it. The swap itself is a pointer exchange.
  auto connected =
      RemoteCorpus::Connect(Split(spec, ','), options_.admin_connect_options);
  if (!connected.ok()) {
    return HttpResponse::Error(
        502, "new layout rejected: " + connected.status().ToString());
  }
  auto next = std::make_shared<RemoteDeployment>();
  next->owned.emplace(std::move(connected).value());
  next->corpus = &*next->owned;
  next->spec = SpecOf(*next->corpus);
  next->engine.emplace(std::make_unique<RemoteShardOracle>(*next->corpus));

  // The new fleet must serve the SAME dataset: a cutover changes where
  // objects live, never what they are. Validated against the pinned active
  // deployment (object count, bounds, SDist normaliser); a mismatch means
  // the operator pointed the coordinator at a different corpus.
  const RemoteCorpus& active = *ActiveRemote();
  const RemoteCorpus& incoming = *next->corpus;
  if (incoming.size() != active.size() ||
      !(incoming.bounds() == active.bounds()) ||
      incoming.dist_norm() != active.dist_norm()) {
    return HttpResponse::Error(
        409, "new layout serves a different dataset (" +
                 std::to_string(incoming.size()) + " objects vs " +
                 std::to_string(active.size()) +
                 ", or bounds/dist_norm differ) — reshard the SAME snapshot "
                 "set and retry");
  }

  uint64_t generation = 0;
  size_t draining = 0;
  {
    std::lock_guard<std::mutex> lock(layout_mu_);
    generation = deployment_->generation + 1;
    next->generation = generation;
    draining_.push_back(std::move(deployment_));
    deployment_ = std::move(next);
    // Reap drained deployments nobody pins anymore (use_count 1 = only the
    // draining_ entry itself). The boot deployment's borrowed corpus is NOT
    // destroyed by reaping — it only drops the deployment wrapper.
    draining_.erase(
        std::remove_if(draining_.begin(), draining_.end(),
                       [](const std::shared_ptr<const RemoteDeployment>& d) {
                         return d.use_count() == 1;
                       }),
        draining_.end());
    draining = draining_.size();
  }
  log_.Append("layout", "generation " + std::to_string(generation) + " -> " +
                            spec,
              0.0);

  JsonValue out = JsonValue::MakeObject();
  out.Set("generation", JsonValue(static_cast<size_t>(generation)));
  out.Set("spec", JsonValue(spec));
  out.Set("draining", JsonValue(draining));
  return HttpResponse::Json(out.Dump());
}

HttpResponse YaskService::HandleAdminLayout(const HttpRequest& req) {
  if (auto blocked = AdminGate(); blocked.has_value()) return *blocked;
  if (req.method == "GET") {
    const RemoteDeployment* deployment = CurrentDeployment();
    size_t draining = 0;
    {
      std::lock_guard<std::mutex> lock(layout_mu_);
      draining = draining_.size();
    }
    JsonValue out = JsonValue::MakeObject();
    out.Set("generation",
            JsonValue(static_cast<size_t>(deployment->generation)));
    out.Set("spec", JsonValue(deployment->spec));
    out.Set("shards", JsonValue(deployment->corpus->num_shards()));
    out.Set("draining", JsonValue(draining));
    return HttpResponse::Json(out.Dump());
  }
  auto parsed = JsonValue::Parse(req.body);
  if (!parsed.ok()) return HttpResponse::Error(400, parsed.status().message());
  if (!parsed.value().Get("remote_shards").is_string()) {
    return HttpResponse::Error(
        400, "expected {\"remote_shards\": \"host:port|...,host:port|...\"}");
  }
  return SwapLayout(parsed.value().Get("remote_shards").as_string());
}

HttpResponse YaskService::HandleAdminReplicas(const HttpRequest& req) {
  if (auto blocked = AdminGate(); blocked.has_value()) return *blocked;
  auto parsed = JsonValue::Parse(req.body);
  if (!parsed.ok()) return HttpResponse::Error(400, parsed.status().message());
  const JsonValue& in = parsed.value();
  const bool adding = in.Get("add").is_string();
  const bool removing = in.Get("remove").is_string();
  if (!in.Get("shard").is_number() || adding == removing) {
    return HttpResponse::Error(
        400, "expected {\"shard\": N, \"add\"|\"remove\": \"host:port\"}");
  }
  uint32_t shard = 0;
  if (!ToUint32(in.Get("shard").as_number(), &shard)) {
    return HttpResponse::Error(400, "shard out of range");
  }
  const std::string endpoint =
      adding ? in.Get("add").as_string() : in.Get("remove").as_string();

  const RemoteCorpus& active = *ActiveRemote();
  if (shard >= active.num_shards()) {
    return HttpResponse::Error(
        404, "shard " + std::to_string(shard) + " does not exist (layout has " +
                 std::to_string(active.num_shards()) + " shards)");
  }

  // Rewrite the active spec with the membership change, then run it through
  // the same connect-validate-swap path as a full cutover — which is exactly
  // PR 5's replica-identity validation: a LIVE new replica must present its
  // group's identity now; one that is still booting joins pending and is
  // checked on first contact (lazy connect).
  std::string spec;
  for (size_t s = 0; s < active.num_shards(); ++s) {
    std::vector<std::string> members =
        Split(active.replicas(s).description(), '|');
    if (s == shard) {
      const auto found =
          std::find(members.begin(), members.end(), endpoint);
      if (adding) {
        if (found != members.end()) {
          return HttpResponse::Error(
              409, endpoint + " is already a replica of shard " +
                       std::to_string(shard));
        }
        members.push_back(endpoint);
      } else {
        if (found == members.end()) {
          return HttpResponse::Error(
              404, endpoint + " is not a replica of shard " +
                       std::to_string(shard));
        }
        if (members.size() == 1) {
          return HttpResponse::Error(
              400, "cannot remove the last replica of shard " +
                       std::to_string(shard) +
                       " — a shard with no replicas cannot serve");
        }
        members.erase(found);
      }
    }
    std::string group;
    for (const std::string& member : members) {
      if (!group.empty()) group += '|';
      group += member;
    }
    if (!spec.empty()) spec += ',';
    spec += group;
  }
  return SwapLayout(spec);
}

size_t YaskService::cached_queries() const {
  std::lock_guard<std::mutex> lock(cache_mu_);
  return query_cache_.size();
}

// --- Observability -----------------------------------------------------------

HttpServer::Handler YaskService::Instrumented(const char* endpoint,
                                              bool traced,
                                              HttpServer::Handler inner) {
  // The latency histogram is resolved once (stable pointer; the hot path
  // never takes the registry mutex for it). The code-labelled counter is
  // resolved per response: one short map probe under the registry mutex,
  // invisible next to the request's own work.
  Histogram* latency = metrics_.GetHistogram(
      "yask_http_request_ms", {{"endpoint", endpoint}});
  const std::string endpoint_str = endpoint;
  return [this, latency, endpoint_str, traced,
          inner = std::move(inner)](const HttpRequest& req) {
    // One layout for the whole request: the pin holds the deployment alive
    // across a concurrent cutover, and every accessor below reads it.
    DeploymentPin pin(*this);
    Timer timer;
    HttpResponse resp;
    if (traced) {
      TraceRecorder recorder(MintTraceId());
      {
        TraceContextScope scope(TraceContext{&recorder, 0});
        ScopedSpan span(req.method + " " + endpoint_str);
        resp = inner(req);
      }
      // Every span doubles as a stage-latency sample, so the aggregate view
      // (/metrics) and the per-request view (/trace/<id>) never disagree.
      std::vector<TraceSpan> spans = recorder.TakeSpans();
      for (const TraceSpan& s : spans) {
        metrics_.GetHistogram("yask_stage_ms", {{"stage", s.name}})
            ->Observe(s.duration_ms);
      }
      traces_.Add(recorder.trace_id(), std::move(spans),
                  recorder.ElapsedMs());
    } else {
      resp = inner(req);
    }
    latency->Observe(timer.ElapsedMillis());
    metrics_
        .GetCounter("yask_http_requests_total",
                    {{"endpoint", endpoint_str},
                     {"code", std::to_string(resp.status)}})
        ->Add();
    return resp;
  };
}

HttpResponse YaskService::HandleMetrics(const HttpRequest&) {
  std::string body;
  metrics_.RenderPrometheus(&body);
  if (const RemoteCorpus* remote = ActiveRemote(); remote != nullptr) {
    // The remote corpus keeps its own registry (per-replica RPC latency,
    // retries, failovers, cooldowns, session replays). The family names are
    // disjoint from the service's, so plain concatenation is a valid
    // exposition. A cutover starts a fresh registry with the new fleet —
    // the active deployment's meters are the ones that describe serving.
    remote->metrics().RenderPrometheus(&body);
  }
  return HttpResponse{200, "text/plain; version=0.0.4", std::move(body)};
}

HttpResponse YaskService::HandleTrace(const HttpRequest& req) {
  const std::string id = req.path.substr(std::string("/trace/").size());
  if (id.empty()) return HttpResponse::Error(400, "expected /trace/<id>");
  const std::optional<TraceStore::Stored> stored = traces_.Get(id);
  if (!stored.has_value()) {
    return HttpResponse::Error(404, "unknown trace " + id +
                                        " (evicted or never recorded)");
  }
  JsonValue out = StoredTraceToJson(*stored, "coordinator");
  if (const RemoteCorpus* remote = ActiveRemote(); remote != nullptr) {
    // Stitch in the shard-side spans: every replica that served one of this
    // trace's RPCs holds them keyed by the propagated trace id. Fetched via
    // CallUnmetered over a dedicated warm keep-alive channel per replica —
    // no connection setup per read, never sharing a pipeline with metered
    // RPCs, and still NOT through ReplicaSet::Call: a trace read must not
    // move RPC metrics or error epochs (neither by being counted nor by
    // failing a shared pipe), and a dead replica here is simply skipped.
    JsonValue spans = out.Get("spans");
    for (size_t s = 0; s < remote->num_shards(); ++s) {
      const ReplicaSet& set = remote->replicas(s);
      for (size_t r = 0; r < set.num_replicas(); ++r) {
        auto body = set.replica(r).CallUnmetered(
            "GET", std::string(shardrpc::kTracePath) + "?id=" + id, "",
            /*deadline_ms=*/1000);
        if (!body.ok()) continue;
        auto doc = JsonValue::Parse(*body);
        if (!doc.ok()) continue;
        for (const JsonValue& span : doc->Get("spans").array_items()) {
          spans.Append(span);
        }
      }
    }
    out.Set("spans", std::move(spans));
  }
  return HttpResponse::Json(out.Dump());
}

// --- Corpus-layout-independent accessors -------------------------------------

size_t YaskService::ObjectCount() const {
  if (corpus_ != nullptr) return corpus_->size();
  if (sharded_ != nullptr) return sharded_->size();
  return ActiveRemote()->size();
}

const Vocabulary& YaskService::vocab() const {
  if (corpus_ != nullptr) return corpus_->vocab();
  if (sharded_ != nullptr) return sharded_->vocab();
  return ActiveRemote()->vocab();
}

const SpatialObject& YaskService::ObjectAt(ObjectId global_id) const {
  if (corpus_ != nullptr) return corpus_->store().Get(global_id);
  if (sharded_ != nullptr) return sharded_->Object(global_id);
  return ActiveRemote()->Object(global_id);
}

ObjectId YaskService::FindByName(const std::string& name) const {
  if (corpus_ != nullptr) return corpus_->store().FindByName(name);
  if (sharded_ != nullptr) return sharded_->FindByName(name);
  return ActiveRemote()->FindByName(name);
}

TopKResult YaskService::RunTopK(const Query& query) const {
  // The engine's oracle fans out over the shards in sharded/remote mode.
  return Engine().TopK(query);
}

bool YaskService::HasKcr() const {
  if (corpus_ != nullptr) return corpus_->has_kcr();
  if (sharded_ == nullptr) return ActiveRemote()->has_kcr();
  for (size_t s = 0; s < sharded_->num_shards(); ++s) {
    if (!sharded_->shard(s).has_kcr()) return false;
  }
  return true;
}

uint64_t YaskService::RemoteEpoch() const {
  const RemoteCorpus* remote = ActiveRemote();
  return remote != nullptr ? remote->error_epoch() : 0;
}

std::optional<HttpResponse> YaskService::RemoteFailure(uint64_t before) const {
  const RemoteCorpus* remote = ActiveRemote();
  if (remote == nullptr || remote->error_epoch() == before) {
    return std::nullopt;
  }
  // The epoch is corpus-global, so a concurrent request's failure can fail
  // this one too. That conservatism is deliberate: every data-path request
  // fans out to every shard anyway (a flapping shard legitimately fails
  // them all), a false 503 is safely retryable, and the alternative —
  // threading a per-request error slot through every oracle callback — buys
  // little for the plumbing it costs.
  return HttpResponse::Error(
      503, "remote shard failure: " + remote->last_error().message());
}

// --- Query cache (LRU) -------------------------------------------------------

uint64_t YaskService::CacheQuery(const Query& query) {
  uint64_t id = 0;
  uint64_t evicted = 0;
  bool did_evict = false;
  {
    std::lock_guard<std::mutex> lock(cache_mu_);
    id = next_query_id_++;
    lru_.push_front(id);
    query_cache_[id] = CacheEntry{query, lru_.begin()};
    if (options_.max_cached_queries > 0 &&
        query_cache_.size() > options_.max_cached_queries) {
      evicted = lru_.back();
      lru_.pop_back();
      query_cache_.erase(evicted);
      did_evict = true;
    }
  }
  if (did_evict && result_cache_ != nullptr) {
    // The evicted id now answers 404, so any cached response rendered for
    // it (its /query entry, its /whynot entries) must go with it.
    result_cache_->InvalidateQuery(evicted);
  }
  return id;
}

std::optional<Query> YaskService::LookupCachedQuery(uint64_t id) {
  std::lock_guard<std::mutex> lock(cache_mu_);
  auto it = query_cache_.find(id);
  if (it == query_cache_.end()) return std::nullopt;
  lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
  return it->second.query;
}

// --- Handlers ----------------------------------------------------------------

JsonValue YaskService::ResultToJson(const TopKResult& result) const {
  if (const RemoteCorpus* remote = ActiveRemote(); remote != nullptr) {
    // One batched fetch per owning shard instead of a round-trip per row.
    std::vector<ObjectId> ids;
    ids.reserve(result.size());
    for (const ScoredObject& so : result) ids.push_back(so.id);
    remote->Prefetch(ids);
  }
  JsonValue arr = JsonValue::MakeArray();
  for (const ScoredObject& so : result) {
    const SpatialObject& o = ObjectAt(so.id);
    JsonValue row = JsonValue::MakeObject();
    row.Set("id", JsonValue(static_cast<size_t>(so.id)));
    row.Set("name", JsonValue(o.name));
    row.Set("x", JsonValue(o.loc.x));
    row.Set("y", JsonValue(o.loc.y));
    row.Set("score", JsonValue(so.score));
    row.Set("keywords", JsonValue(o.doc.ToString(vocab())));
    arr.Append(std::move(row));
  }
  return arr;
}

HttpResponse YaskService::HandleQuery(const HttpRequest& req) {
  const uint64_t epoch = RemoteEpoch();
  auto parsed = JsonValue::Parse(req.body);
  if (!parsed.ok()) return HttpResponse::Error(400, parsed.status().message());
  const JsonValue& in = parsed.value();
  if (!in.Get("x").is_number() || !in.Get("y").is_number() ||
      !in.Get("keywords").is_string()) {
    return HttpResponse::Error(400, "expected x, y, keywords[, k]");
  }

  Query q;
  q.loc = Point{in.Get("x").as_number(), in.Get("y").as_number()};
  q.doc = LookupKeywords(in.Get("keywords").as_string(), vocab());
  q.k = 10;
  if (in.Get("k").is_number() && !ToUint32(in.Get("k").as_number(), &q.k)) {
    return HttpResponse::Error(400, "k out of range");
  }
  q.w = options_.system_weights;  // §3.2: w is a server-side parameter.
  if (Status s = q.Validate(); !s.ok()) {
    return HttpResponse::Error(400, s.message());
  }

  if (result_cache_ == nullptr) {
    uint64_t ignored = 0;
    return ComputeQuery(q, epoch, &ignored);
  }
  return CachedCompute(
      QueryCacheKey(LayoutGeneration(), epoch, q), epoch,
      [&](uint64_t* id) { return ComputeQuery(q, epoch, id); });
}

HttpResponse YaskService::ComputeQuery(const Query& q, uint64_t epoch,
                                       uint64_t* query_id_out) {
  Timer timer;
  TopKResult result;
  {
    ScopedSpan span("query/topk", "k=" + std::to_string(q.k));
    result = RunTopK(q);
  }
  const double millis = timer.ElapsedMillis();

  JsonValue out = JsonValue::MakeObject();
  out.Set("k", JsonValue(static_cast<size_t>(q.k)));
  out.Set("ws", JsonValue(q.w.ws));
  out.Set("wt", JsonValue(q.w.wt));
  out.Set("keywords", JsonValue(q.doc.ToString(vocab())));
  out.Set("results", ResultToJson(result));
  out.Set("response_millis", JsonValue(millis));
  // After ResultToJson: the remote object fetches that render the rows are
  // part of the request too, and a failure there must 503, not emit rows
  // with empty names.
  if (auto failure = RemoteFailure(epoch); failure.has_value()) {
    return *failure;
  }

  const uint64_t id = CacheQuery(q);
  *query_id_out = id;
  log_.Append("topk", q.ToString(vocab()), millis, -1.0, CurrentTraceId());
  out.Set("query_id", JsonValue(static_cast<size_t>(id)));
  return HttpResponse::Json(out.Dump());
}

HttpResponse YaskService::CachedCompute(
    const std::string& key, uint64_t epoch,
    const std::function<HttpResponse(uint64_t*)>& compute) {
  uint64_t assoc_id = 0;
  if (result_cache_ == nullptr) return compute(&assoc_id);
  if (auto hit = result_cache_->Get(key); hit.has_value()) {
    cache_hits_->Add();
    return *hit;
  }
  cache_misses_->Add();
  SingleFlight::Ticket ticket = single_flight_.Join(key);
  if (!ticket.leader) {
    coalesced_->Add();
    if (auto shared = single_flight_.Wait(ticket); shared.has_value()) {
      return *shared;
    }
    // The leader failed (non-200); its outcome must not fan out to the
    // whole herd. Each follower computes independently.
    coalesce_leader_failures_->Add();
    return compute(&assoc_id);
  }
  HttpResponse resp = compute(&assoc_id);
  // Only a success computed under a still-current error epoch is reusable:
  // the epoch moving mid-compute means a shard call failed over, and the
  // next identical request must run its own fan-out.
  if (resp.status == 200 && RemoteEpoch() == epoch) {
    // The Put must be atomic with a query-cache membership re-check, under
    // the same lock the forget/eviction paths erase under. Otherwise a
    // POST /forget (or an LRU eviction) landing between this compute and
    // the Put would InvalidateQuery() first and then watch a 200 naming the
    // now-404 id get inserted afterwards. Both erase paths release cache_mu_
    // BEFORE calling InvalidateQuery, so if the id is still present here,
    // that invalidation is guaranteed to run after this Put and drop it.
    std::lock_guard<std::mutex> lock(cache_mu_);
    if (query_cache_.count(assoc_id) != 0) {
      result_cache_->Put(key, resp, assoc_id);
    }
  }
  single_flight_.Finish(key, ticket, resp, resp.status == 200);
  return resp;
}

namespace {

JsonValue PenaltyToJson(const PenaltyBreakdown& p) {
  JsonValue v = JsonValue::MakeObject();
  v.Set("value", JsonValue(p.value));
  v.Set("k_term", JsonValue(p.k_term));
  v.Set("mod_term", JsonValue(p.mod_term));
  v.Set("delta_k", JsonValue(p.delta_k));
  v.Set("delta_w", JsonValue(p.delta_w));
  v.Set("delta_doc", JsonValue(p.delta_doc));
  return v;
}

}  // namespace

HttpResponse YaskService::HandleWhyNot(const HttpRequest& req) {
  const uint64_t epoch = RemoteEpoch();
  if (!HasKcr()) {
    // Keyword adaption runs on the KcR-tree(s); a corpus deliberately built
    // without them (top-k-only deployments) cannot answer why-not. Fail the
    // request cleanly instead of letting the oracle hit a missing index.
    std::string detail =
        "why-not answering requires the corpus to be built with its "
        "KcR-tree(s)";
    if (const RemoteCorpus* remote = ActiveRemote(); remote != nullptr) {
      detail = "why-not answering requires every remote shard to carry its "
               "KcR-tree; shards without one:";
      for (const uint32_t s : remote->shards_without_kcr()) {
        detail += " " + std::to_string(s) + " (" +
                  remote->replicas(s).description() + ")";
      }
      detail += " — rebuild those shard snapshots with their KcR section or "
                "restart yask_shard_server with --rebuild-indexes";
    }
    return HttpResponse::Error(501, detail);
  }
  auto parsed = JsonValue::Parse(req.body);
  if (!parsed.ok()) return HttpResponse::Error(400, parsed.status().message());
  const JsonValue& in = parsed.value();
  if (!in.Get("query_id").is_number() || !in.Get("missing").is_array()) {
    return HttpResponse::Error(400, "expected query_id, missing[, model]");
  }

  uint64_t query_id = 0;
  if (!ToUint64(in.Get("query_id").as_number(), &query_id)) {
    return HttpResponse::Error(400, "query_id out of range");
  }
  std::optional<Query> cached = LookupCachedQuery(query_id);
  if (!cached.has_value()) {
    return HttpResponse::Error(404, "unknown or expired query_id");
  }
  const Query& q = *cached;

  std::vector<ObjectId> missing;
  for (const JsonValue& v : in.Get("missing").array_items()) {
    if (v.is_number()) {
      uint32_t id = 0;
      if (!ToUint32(v.as_number(), &id)) {
        return HttpResponse::Error(400, "missing object id out of range");
      }
      missing.push_back(id);
    } else if (v.is_string()) {
      const ObjectId id = FindByName(v.as_string());
      if (id == kInvalidObject) {
        return HttpResponse::Error(404, "no object named " + v.as_string());
      }
      missing.push_back(id);
    }
  }

  const double lambda = in.Get("lambda").is_number()
                            ? in.Get("lambda").as_number()
                            : options_.default_lambda;
  const std::string model =
      in.Get("model").is_string() ? in.Get("model").as_string() : "both";

  // /whynot is idempotent for a fixed (query_id, missing, model, lambda):
  // query ids are never reused, so the cached-query lookup above pins the
  // exact same initial query for every repeat.
  if (result_cache_ == nullptr) {
    return ComputeWhyNot(q, missing, model, lambda, epoch);
  }
  return CachedCompute(
      WhyNotCacheKey(LayoutGeneration(), epoch, query_id, missing, model,
                     lambda),
      epoch,
      [&](uint64_t* id) {
        *id = query_id;
        return ComputeWhyNot(q, missing, model, lambda, epoch);
      });
}

HttpResponse YaskService::ComputeWhyNot(const Query& q,
                                        const std::vector<ObjectId>& missing,
                                        const std::string& model,
                                        double lambda, uint64_t epoch) {
  WhyNotOptions options;
  options.lambda = lambda;

  if (model == "combined") {
    // §3.2: apply the two refinement functions simultaneously.
    Timer timer;
    auto combined = Engine().CombineRefinements(q, missing, options);
    const double millis = timer.ElapsedMillis();
    if (!combined.ok()) {
      return HttpResponse::Error(400, combined.status().ToString());
    }
    JsonValue out = JsonValue::MakeObject();
    out.Set("ws", JsonValue(combined->refined.w.ws));
    out.Set("wt", JsonValue(combined->refined.w.wt));
    out.Set("keywords", JsonValue(combined->refined.doc.ToString(vocab())));
    out.Set("k", JsonValue(static_cast<size_t>(combined->refined.k)));
    out.Set("preference_penalty", PenaltyToJson(combined->preference_penalty));
    out.Set("keyword_penalty", PenaltyToJson(combined->keyword_penalty));
    out.Set("total_penalty", JsonValue(combined->total_penalty));
    out.Set("preference_first", JsonValue(combined->preference_first));
    out.Set("original_rank", JsonValue(combined->original_rank));
    out.Set("refined_rank", JsonValue(combined->refined_rank));
    out.Set("refined_results",
            ResultToJson(Engine().TopK(combined->refined)));
    out.Set("response_millis", JsonValue(millis));
    if (auto failure = RemoteFailure(epoch); failure.has_value()) {
      return *failure;
    }
    log_.Append("whynot-combined", q.ToString(vocab()), millis,
                combined->total_penalty, CurrentTraceId());
    return HttpResponse::Json(out.Dump());
  }

  options.run_preference_adjustment = model == "both" || model == "preference";
  options.run_keyword_adaption = model == "both" || model == "keyword";
  if (!options.run_preference_adjustment && !options.run_keyword_adaption) {
    return HttpResponse::Error(
        400, "model must be preference|keyword|both|combined");
  }

  Timer timer;
  auto answer = Engine().Answer(q, missing, options);
  const double millis = timer.ElapsedMillis();
  if (!answer.ok()) {
    return HttpResponse::Error(400, answer.status().ToString());
  }
  const WhyNotAnswer& a = answer.value();

  double logged_penalty = -1.0;
  JsonValue out = JsonValue::MakeObject();
  JsonValue expl = JsonValue::MakeArray();
  for (const MissingObjectExplanation& e : a.explanations) {
    JsonValue v = JsonValue::MakeObject();
    v.Set("id", JsonValue(static_cast<size_t>(e.id)));
    v.Set("name", JsonValue(ObjectAt(e.id).name));
    v.Set("rank", JsonValue(e.rank));
    v.Set("score", JsonValue(e.score));
    v.Set("sdist", JsonValue(e.sdist));
    v.Set("tsim", JsonValue(e.tsim));
    v.Set("reason", JsonValue(MissingReasonToString(e.reason)));
    v.Set("recommendation",
          JsonValue(RefinementRecommendationToString(e.recommendation)));
    v.Set("text", JsonValue(e.text));
    expl.Append(std::move(v));
  }
  out.Set("explanations", std::move(expl));

  if (a.preference.has_value()) {
    const RefinedPreferenceQuery& r = *a.preference;
    JsonValue v = JsonValue::MakeObject();
    v.Set("ws", JsonValue(r.refined.w.ws));
    v.Set("wt", JsonValue(r.refined.w.wt));
    v.Set("k", JsonValue(static_cast<size_t>(r.refined.k)));
    v.Set("penalty", PenaltyToJson(r.penalty));
    v.Set("original_rank", JsonValue(r.original_rank));
    v.Set("refined_rank", JsonValue(r.refined_rank));
    v.Set("already_in_result", JsonValue(r.already_in_result));
    out.Set("preference", std::move(v));
    logged_penalty = r.penalty.value;
  }
  if (a.keyword.has_value()) {
    const RefinedKeywordQuery& r = *a.keyword;
    JsonValue v = JsonValue::MakeObject();
    v.Set("keywords", JsonValue(r.refined.doc.ToString(vocab())));
    v.Set("k", JsonValue(static_cast<size_t>(r.refined.k)));
    v.Set("penalty", PenaltyToJson(r.penalty));
    v.Set("original_rank", JsonValue(r.original_rank));
    v.Set("refined_rank", JsonValue(r.refined_rank));
    v.Set("already_in_result", JsonValue(r.already_in_result));
    out.Set("keyword", std::move(v));
    if (a.recommended == RefinementModel::kKeyword) {
      logged_penalty = r.penalty.value;
    }
  }

  switch (a.recommended) {
    case RefinementModel::kPreference:
      out.Set("recommended", JsonValue("preference"));
      break;
    case RefinementModel::kKeyword:
      out.Set("recommended", JsonValue("keyword"));
      break;
    case RefinementModel::kNone:
      out.Set("recommended", JsonValue("none"));
      break;
  }
  out.Set("refined_results", ResultToJson(a.refined_result));
  out.Set("response_millis", JsonValue(millis));
  if (auto failure = RemoteFailure(epoch); failure.has_value()) {
    return *failure;
  }

  log_.Append("whynot",
              q.ToString(vocab()) + " missing=" +
                  std::to_string(missing.size()),
              millis, logged_penalty, CurrentTraceId());
  return HttpResponse::Json(out.Dump());
}

HttpResponse YaskService::HandleObjects(const HttpRequest& req) {
  const uint64_t epoch = RemoteEpoch();
  size_t limit = 100;
  auto it = req.query_params.find("limit");
  if (it != req.query_params.end()) {
    uint64_t v = 0;
    if (ParseUint64(it->second, &v)) limit = static_cast<size_t>(v);
  }
  JsonValue arr = JsonValue::MakeArray();
  const size_t n = std::min(limit, ObjectCount());
  if (const RemoteCorpus* remote = ActiveRemote(); remote != nullptr) {
    std::vector<ObjectId> ids(n);
    for (size_t i = 0; i < n; ++i) ids[i] = static_cast<ObjectId>(i);
    remote->Prefetch(ids);
  }
  for (size_t i = 0; i < n; ++i) {
    const SpatialObject& o = ObjectAt(static_cast<ObjectId>(i));
    JsonValue row = JsonValue::MakeObject();
    row.Set("id", JsonValue(i));
    row.Set("name", JsonValue(o.name));
    row.Set("x", JsonValue(o.loc.x));
    row.Set("y", JsonValue(o.loc.y));
    row.Set("keywords", JsonValue(o.doc.ToString(vocab())));
    arr.Append(std::move(row));
  }
  if (auto failure = RemoteFailure(epoch); failure.has_value()) {
    return *failure;
  }
  JsonValue out = JsonValue::MakeObject();
  out.Set("total", JsonValue(ObjectCount()));
  out.Set("objects", std::move(arr));
  return HttpResponse::Json(out.Dump());
}

HttpResponse YaskService::HandleLog(const HttpRequest&) {
  JsonValue arr = JsonValue::MakeArray();
  for (const QueryLogEntry& e : log_.Snapshot()) {
    JsonValue row = JsonValue::MakeObject();
    row.Set("id", JsonValue(static_cast<size_t>(e.id)));
    row.Set("kind", JsonValue(e.kind));
    row.Set("description", JsonValue(e.description));
    row.Set("response_millis", JsonValue(e.response_millis));
    if (e.penalty >= 0.0) row.Set("penalty", JsonValue(e.penalty));
    if (!e.trace_id.empty()) row.Set("trace_id", JsonValue(e.trace_id));
    arr.Append(std::move(row));
  }
  JsonValue out = JsonValue::MakeObject();
  out.Set("entries", std::move(arr));
  return HttpResponse::Json(out.Dump());
}

HttpResponse YaskService::HandleForget(const HttpRequest& req) {
  auto parsed = JsonValue::Parse(req.body);
  if (!parsed.ok()) return HttpResponse::Error(400, parsed.status().message());
  if (!parsed.value().Get("query_id").is_number()) {
    return HttpResponse::Error(400, "expected query_id");
  }
  uint64_t id = 0;
  if (!ToUint64(parsed.value().Get("query_id").as_number(), &id)) {
    return HttpResponse::Error(400, "query_id out of range");
  }
  bool erased = false;
  {
    std::lock_guard<std::mutex> lock(cache_mu_);
    auto it = query_cache_.find(id);
    if (it != query_cache_.end()) {
      lru_.erase(it->second.lru_pos);
      query_cache_.erase(it);
      erased = true;
    }
  }
  if (result_cache_ != nullptr) {
    // Forgetting the query invalidates every response rendered for it: the
    // /query response that minted the id (a later cache hit would hand out
    // an id that now answers 404) and every /whynot answer referencing it.
    result_cache_->InvalidateQuery(id);
  }
  JsonValue out = JsonValue::MakeObject();
  out.Set("forgotten", JsonValue(erased));
  return HttpResponse::Json(out.Dump());
}

HttpResponse YaskService::HandleHealth(const HttpRequest&) {
  JsonValue out = JsonValue::MakeObject();
  out.Set("status", JsonValue("ok"));
  out.Set("objects", JsonValue(ObjectCount()));
  out.Set("vocabulary", JsonValue(vocab().size()));
  if (sharded_ != nullptr) {
    out.Set("shards", JsonValue(sharded_->num_shards()));
  }
  if (const RemoteCorpus* remote = ActiveRemote(); remote != nullptr) {
    out.Set("shards", JsonValue(remote->num_shards()));
    JsonValue shards = JsonValue::MakeArray();
    for (size_t s = 0; s < remote->num_shards(); ++s) {
      const ReplicaSet& set = remote->replicas(s);
      JsonValue row = JsonValue::MakeObject();
      row.Set("endpoint", JsonValue(set.description()));
      row.Set("objects", JsonValue(static_cast<size_t>(
                             remote->meta(s).object_count)));
      row.Set("kcr", JsonValue(remote->meta(s).has_kcr));
      // Per-replica health: where the traffic goes, which replicas are being
      // routed around, and how many kills the set has absorbed.
      JsonValue reps = JsonValue::MakeArray();
      for (size_t r = 0; r < set.num_replicas(); ++r) {
        JsonValue rep = JsonValue::MakeObject();
        rep.Set("endpoint", JsonValue(set.replica(r).endpoint()));
        rep.Set("requests", JsonValue(static_cast<size_t>(
                                set.replica(r).requests())));
        rep.Set("error_epoch", JsonValue(static_cast<size_t>(
                                   set.replica(r).error_epoch())));
        rep.Set("cooling", JsonValue(set.InCooldown(r)));
        // Lazy-connect state: "pending" = unreached at Connect, identity
        // owed on first contact; "rejected" = answered with the wrong
        // identity, permanently unroutable.
        const char* validation = "validated";
        switch (set.validation(r)) {
          case ReplicaValidation::kValidated: break;
          case ReplicaValidation::kPending: validation = "pending"; break;
          case ReplicaValidation::kRejected: validation = "rejected"; break;
        }
        rep.Set("validation", JsonValue(std::string(validation)));
        reps.Append(std::move(rep));
      }
      row.Set("replicas", std::move(reps));
      row.Set("failovers", JsonValue(static_cast<size_t>(set.failovers())));
      shards.Append(std::move(row));
    }
    out.Set("remote_shards", std::move(shards));
    // The cutover window at a glance: which layout serves new requests and
    // how many old layouts still drain in-flight ones.
    const RemoteDeployment* deployment = CurrentDeployment();
    size_t draining = 0;
    {
      std::lock_guard<std::mutex> lock(layout_mu_);
      draining = draining_.size();
    }
    JsonValue layout = JsonValue::MakeObject();
    layout.Set("generation",
               JsonValue(static_cast<size_t>(deployment->generation)));
    layout.Set("spec", JsonValue(deployment->spec));
    layout.Set("draining", JsonValue(draining));
    out.Set("layout", std::move(layout));
  }
  out.Set("build", BuildInfoJson());
  // Index availability — what this deployment can actually answer. /whynot
  // needs the KcR-tree on every shard; a false here explains the 501 before
  // anyone hits it.
  JsonValue indexes = JsonValue::MakeObject();
  indexes.Set("setr", JsonValue(true));
  indexes.Set("kcr", JsonValue(HasKcr()));
  out.Set("indexes", std::move(indexes));
  out.Set("whynot", JsonValue(HasKcr()));
  return HttpResponse::Json(out.Dump());
}

HttpResponse YaskService::HandleSnapshot(const HttpRequest& req) {
  if (remote_mode_) {
    return HttpResponse::Error(
        501, "a coordinator holds no serving state to snapshot; snapshot "
             "the shard servers' files instead");
  }
  std::string path = options_.snapshot_path;
  if (!req.body.empty()) {
    auto parsed = JsonValue::Parse(req.body);
    if (!parsed.ok()) {
      return HttpResponse::Error(400, parsed.status().message());
    }
    if (parsed.value().Get("path").is_string()) {
      if (!options_.allow_snapshot_path_override) {
        return HttpResponse::Error(
            403, "snapshot path override is disabled on this server");
      }
      path = parsed.value().Get("path").as_string();
    }
  }
  if (path.empty()) {
    return HttpResponse::Error(
        400, "no snapshot path configured on this server");
  }

  Timer timer;
  Result<uint64_t> bytes =
      corpus_ != nullptr ? corpus_->Save(path) : sharded_->Save(path);
  const double millis = timer.ElapsedMillis();
  if (!bytes.ok()) {
    return HttpResponse::Error(500, bytes.status().ToString());
  }
  log_.Append("snapshot", path, millis);

  JsonValue out = JsonValue::MakeObject();
  out.Set("path", JsonValue(path));
  out.Set("bytes", JsonValue(static_cast<size_t>(*bytes)));
  out.Set("objects", JsonValue(ObjectCount()));
  if (sharded_ != nullptr) {
    out.Set("shards", JsonValue(sharded_->num_shards()));
  }
  out.Set("response_millis", JsonValue(millis));
  return HttpResponse::Json(out.Dump());
}

}  // namespace yask
