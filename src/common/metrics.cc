#include "src/common/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

namespace yask {

namespace {

/// Renders a double the way Prometheus expects: integral values without a
/// fractional part, everything else with enough digits to round-trip.
std::string FormatValue(double v) {
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  if (v == std::floor(v) && std::abs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

void AppendEscaped(const std::string& s, std::string* out) {
  for (char c : s) {
    if (c == '\\' || c == '"') {
      out->push_back('\\');
      out->push_back(c);
    } else if (c == '\n') {
      *out += "\\n";
    } else {
      out->push_back(c);
    }
  }
}

/// Re-opens a rendered label string (possibly empty) to splice in one more
/// label, used for the histogram `le` bound.
std::string WithExtraLabel(const std::string& labels, const std::string& key,
                           const std::string& value) {
  std::string out;
  if (labels.empty()) {
    out = "{" + key + "=\"" + value + "\"}";
  } else {
    out = labels.substr(0, labels.size() - 1) + "," + key + "=\"" + value +
          "\"}";
  }
  return out;
}

}  // namespace

std::string FormatMetricLabels(const MetricLabels& labels) {
  if (labels.empty()) return "";
  MetricLabels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : sorted) {
    if (!first) out.push_back(',');
    first = false;
    out += key;
    out += "=\"";
    AppendEscaped(value, &out);
    out.push_back('"');
  }
  out.push_back('}');
  return out;
}

double Histogram::BucketBound(size_t i) {
  if (i + 1 >= kBucketCount) return std::numeric_limits<double>::infinity();
  return 0.001 * static_cast<double>(1ull << i);  // 1 µs, 2 µs, ... ~67 s
}

void Histogram::Observe(double millis) {
  if (millis < 0.0 || std::isnan(millis)) millis = 0.0;
  size_t i = 0;
  while (i + 1 < kBucketCount && millis > BucketBound(i)) ++i;
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + millis,
                                     std::memory_order_relaxed)) {
  }
}

double Histogram::Quantile(double q) const {
  q = std::clamp(q, 0.0, 1.0);
  const uint64_t total = count();
  if (total == 0) return 0.0;
  const uint64_t rank =
      std::max<uint64_t>(1, static_cast<uint64_t>(std::ceil(q * total)));
  uint64_t cumulative = 0;
  for (size_t i = 0; i < kBucketCount; ++i) {
    cumulative += bucket(i);
    if (cumulative >= rank) {
      // The +Inf bucket reports the largest finite bound: the histogram
      // cannot localize beyond its range, and a finite number keeps the
      // extraction monotone and plottable.
      return i + 1 >= kBucketCount ? BucketBound(kBucketCount - 2)
                                   : BucketBound(i);
    }
  }
  return BucketBound(kBucketCount - 2);
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     const MetricLabels& labels) const {
  const std::string key = FormatMetricLabels(labels);
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name][key];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name,
                                 const MetricLabels& labels) const {
  const std::string key = FormatMetricLabels(labels);
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name][key];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         const MetricLabels& labels) const {
  const std::string key = FormatMetricLabels(labels);
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name][key];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return slot.get();
}

void MetricsRegistry::AddGaugeCallback(const std::string& name,
                                       const MetricLabels& labels,
                                       std::function<double()> fn) const {
  const std::string key = FormatMetricLabels(labels);
  std::lock_guard<std::mutex> lock(mu_);
  gauge_callbacks_[name][key] = std::move(fn);
}

void MetricsRegistry::RenderPrometheus(std::string* out) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, instances] : counters_) {
    *out += "# TYPE " + name + " counter\n";
    for (const auto& [labels, counter] : instances) {
      *out += name + labels + " " +
              std::to_string(counter->value()) + "\n";
    }
  }
  for (const auto& [name, instances] : gauges_) {
    *out += "# TYPE " + name + " gauge\n";
    for (const auto& [labels, gauge] : instances) {
      *out += name + labels + " " + FormatValue(gauge->value()) + "\n";
    }
  }
  for (const auto& [name, instances] : gauge_callbacks_) {
    *out += "# TYPE " + name + " gauge\n";
    for (const auto& [labels, fn] : instances) {
      *out += name + labels + " " + FormatValue(fn()) + "\n";
    }
  }
  for (const auto& [name, instances] : histograms_) {
    *out += "# TYPE " + name + " histogram\n";
    for (const auto& [labels, histogram] : instances) {
      uint64_t cumulative = 0;
      for (size_t i = 0; i < Histogram::kBucketCount; ++i) {
        cumulative += histogram->bucket(i);
        *out += name + "_bucket" +
                WithExtraLabel(labels, "le",
                               FormatValue(Histogram::BucketBound(i))) +
                " " + std::to_string(cumulative) + "\n";
      }
      *out += name + "_sum" + labels + " " + FormatValue(histogram->sum()) +
              "\n";
      *out += name + "_count" + labels + " " +
              std::to_string(histogram->count()) + "\n";
    }
  }
}

}  // namespace yask
