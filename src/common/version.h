// Copyright (c) 2026 The YASK reproduction authors.
// Build identity: the short git sha stamped at configure time. The rolling-
// upgrade harness (scripts/fleet_rolling.sh) asserts which build each fleet
// member runs by comparing this sha across `--version` output and the
// /health "build" objects of the coordinator and every shard server.

#ifndef YASK_COMMON_VERSION_H_
#define YASK_COMMON_VERSION_H_

namespace yask {

/// The short git sha of the checkout this build was configured from, or
/// "unknown" when the tree was built outside git (a source tarball). Baked
/// into exactly one translation unit (src/common/version.cc) via a CMake
/// compile definition, so a new commit recompiles one file, not the library.
const char* BuildGitSha();

}  // namespace yask

#endif  // YASK_COMMON_VERSION_H_
