#include "src/index/inverted_index.h"

#include <gtest/gtest.h>

#include "src/storage/dataset_generator.h"

namespace yask {
namespace {

TEST(InvertedIndexTest, PostingsAreSortedAndComplete) {
  DatasetSpec spec;
  spec.num_objects = 1000;
  spec.vocabulary_size = 30;
  const ObjectStore store = GenerateDataset(spec);
  InvertedIndex index(store);

  for (TermId t = 0; t < store.vocab().size(); ++t) {
    const auto& list = index.Postings(t);
    EXPECT_TRUE(std::is_sorted(list.begin(), list.end()));
    for (ObjectId id : list) {
      EXPECT_TRUE(store.Get(id).doc.Contains(t));
    }
  }
  // Every (object, term) pair appears.
  size_t total = 0;
  for (const SpatialObject& o : store.objects()) total += o.doc.size();
  size_t posted = 0;
  for (TermId t = 0; t < store.vocab().size(); ++t) {
    posted += index.DocumentFrequency(t);
  }
  EXPECT_EQ(posted, total);
}

TEST(InvertedIndexTest, UnknownTermEmpty) {
  ObjectStore store;
  store.mutable_vocab()->Intern("a");
  store.Add(Point{0, 0}, KeywordSet({0}));
  InvertedIndex index(store);
  EXPECT_TRUE(index.Postings(999).empty());
  EXPECT_EQ(index.DocumentFrequency(999), 0u);
}

TEST(InvertedIndexTest, CandidatesAreUnionOfPostings) {
  ObjectStore store;
  Vocabulary* v = store.mutable_vocab();
  const TermId a = v->Intern("a");
  const TermId b = v->Intern("b");
  const TermId c = v->Intern("c");
  store.Add(Point{0, 0}, KeywordSet({a}));        // 0
  store.Add(Point{0, 0}, KeywordSet({a, b}));     // 1
  store.Add(Point{0, 0}, KeywordSet({b}));        // 2
  store.Add(Point{0, 0}, KeywordSet({c}));        // 3
  InvertedIndex index(store);
  EXPECT_EQ(index.Candidates(KeywordSet({a, b})),
            (std::vector<ObjectId>{0, 1, 2}));
  EXPECT_EQ(index.Candidates(KeywordSet({c})), (std::vector<ObjectId>{3}));
  EXPECT_TRUE(index.Candidates(KeywordSet()).empty());
}

TEST(InvertedIndexTest, MemoryUsagePositive) {
  DatasetSpec spec;
  spec.num_objects = 100;
  const ObjectStore store = GenerateDataset(spec);
  InvertedIndex index(store);
  EXPECT_GT(index.MemoryUsageBytes(), 0u);
}

}  // namespace
}  // namespace yask
