#include "src/storage/hotel_generator.h"

#include <gtest/gtest.h>

namespace yask {
namespace {

TEST(HotelGeneratorTest, DefaultIs539Hotels) {
  // §4: "The data set ... contains some 539 hotels."
  const ObjectStore store = GenerateHotelDataset();
  EXPECT_EQ(store.size(), 539u);
}

TEST(HotelGeneratorTest, LocationsInsideHongKongFrame) {
  const ObjectStore store = GenerateHotelDataset();
  const Rect frame = HongKongBounds();
  for (const SpatialObject& o : store.objects()) {
    EXPECT_TRUE(frame.Contains(o.loc))
        << "hotel " << o.id << " at (" << o.loc.x << "," << o.loc.y << ")";
  }
}

TEST(HotelGeneratorTest, EveryHotelHasNameAndKeywords) {
  const ObjectStore store = GenerateHotelDataset();
  for (const SpatialObject& o : store.objects()) {
    EXPECT_FALSE(o.name.empty());
    EXPECT_GE(o.doc.size(), 3u);  // Category + district + >=1 facility/comment.
  }
}

TEST(HotelGeneratorTest, CommonFacilityVocabPresent) {
  const ObjectStore store = GenerateHotelDataset();
  const Vocabulary& vocab = store.vocab();
  for (const char* w : {"hotel", "wifi", "clean", "comfortable", "luxury"}) {
    EXPECT_TRUE(vocab.Contains(w)) << w;
  }
  // "wifi" should describe many hotels, "helipad" very few.
  size_t wifi = 0;
  size_t helipad = 0;
  for (const SpatialObject& o : store.objects()) {
    if (o.doc.Contains(vocab.Find("wifi"))) ++wifi;
    if (vocab.Contains("helipad") && o.doc.Contains(vocab.Find("helipad"))) {
      ++helipad;
    }
  }
  EXPECT_GT(wifi, store.size() / 5);
  EXPECT_LT(helipad, wifi);
}

TEST(HotelGeneratorTest, Deterministic) {
  const ObjectStore a = GenerateHotelDataset();
  const ObjectStore b = GenerateHotelDataset();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.Get(i).loc, b.Get(i).loc);
    EXPECT_EQ(a.Get(i).name, b.Get(i).name);
  }
}

TEST(HotelGeneratorTest, CustomSize) {
  HotelDatasetSpec spec;
  spec.num_hotels = 42;
  EXPECT_EQ(GenerateHotelDataset(spec).size(), 42u);
}

TEST(HotelGeneratorTest, NamesAreUniqueEnoughForLookup) {
  const ObjectStore store = GenerateHotelDataset();
  const SpatialObject& o = store.Get(17);
  EXPECT_EQ(store.FindByName(o.name), o.id);  // Suffix index disambiguates.
}

}  // namespace
}  // namespace yask
