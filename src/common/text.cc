#include "src/common/text.h"

#include <array>
#include <cctype>

namespace yask {

std::vector<std::string> Tokenize(std::string_view text) {
  std::vector<std::string> tokens;
  std::string current;
  for (char ch : text) {
    const unsigned char c = static_cast<unsigned char>(ch);
    if (std::isalnum(c)) {
      current += static_cast<char>(std::tolower(c));
    } else if (!current.empty()) {
      tokens.push_back(std::move(current));
      current.clear();
    }
  }
  if (!current.empty()) tokens.push_back(std::move(current));
  return tokens;
}

bool IsStopword(std::string_view token) {
  static constexpr std::array<std::string_view, 32> kStopwords = {
      "a",    "an",   "and",  "are", "as",   "at",   "be",   "by",
      "for",  "from", "has",  "he",  "in",   "is",   "it",   "its",
      "of",   "on",   "or",   "that", "the", "to",   "was",  "we",
      "were", "will", "with", "this", "but",  "not",  "you",  "your"};
  for (auto sw : kStopwords) {
    if (sw == token) return true;
  }
  return false;
}

namespace {

bool KeepToken(const std::string& token, const TextOptions& options) {
  if (token.size() < options.min_token_length) return false;
  if (options.remove_stopwords && IsStopword(token)) return false;
  return true;
}

}  // namespace

KeywordSet ParseKeywords(std::string_view text, Vocabulary* vocab,
                         const TextOptions& options) {
  KeywordSet set;
  for (const std::string& token : Tokenize(text)) {
    if (!KeepToken(token, options)) continue;
    set.Insert(vocab->Intern(token));
  }
  return set;
}

KeywordSet LookupKeywords(std::string_view text, const Vocabulary& vocab,
                          const TextOptions& options) {
  KeywordSet set;
  for (const std::string& token : Tokenize(text)) {
    if (!KeepToken(token, options)) continue;
    const TermId id = vocab.Find(token);
    if (id != kInvalidTerm) set.Insert(id);
  }
  return set;
}

}  // namespace yask
