// Copyright (c) 2026 The YASK reproduction authors.
// The why-not question answering engine (§3.1, Fig. 1): the facade that the
// server (and library users) talk to. It owns nothing but an oracle; it runs
// over a WhyNotOracle — rank-of-object, outscoring counts, Eqn. (3) sample
// points and Eqn. (4) candidate bounds over whatever corpus layout serves
// them — and orchestrates the three modules:
//   * explanation generator,
//   * preference-adjusted refinement,
//   * keyword-adapted refinement,
// returning the explanations, both refined queries, and — as the demo lets
// users "apply the two refinement functions simultaneously to find better
// solutions" — a recommendation of the cheaper model.
//
// Construct it over a Corpus (one unsharded replica) or a ShardedCorpus (the
// scale-out layout: every oracle call fans out over the shard pool and
// merges exactly, so answers are bit-identical to the unsharded engine's —
// see docs/architecture.md, "Distributed why-not").

#ifndef YASK_WHYNOT_WHY_NOT_ENGINE_H_
#define YASK_WHYNOT_WHY_NOT_ENGINE_H_

#include <memory>
#include <optional>
#include <vector>

#include "src/common/status.h"
#include "src/corpus/corpus.h"
#include "src/query/query.h"
#include "src/query/topk_engine.h"
#include "src/storage/object_store.h"
#include "src/whynot/explanation.h"
#include "src/whynot/keyword_adaption.h"
#include "src/whynot/preference_adjustment.h"
#include "src/whynot/whynot_oracle.h"

namespace yask {

class ShardedCorpus;  // src/corpus/sharded_corpus.h

/// Which refinement models to run.
struct WhyNotOptions {
  double lambda = 0.5;
  bool run_preference_adjustment = true;
  bool run_keyword_adaption = true;
  PrefAdjustMode pref_mode = PrefAdjustMode::kOptimized;
  KwAdaptMode kw_mode = KwAdaptMode::kBoundAndPrune;
  /// Run the two refinements concurrently when both are requested: the
  /// Eqn. (3) weight sweep overlaps the Eqn. (4) probe fan-outs (they share
  /// no state — each opens its own oracle sessions — and both searches are
  /// internally level-synchronous, so overlap changes no result bytes).
  /// Disable for benchmarks that instrument per-shard busy time through
  /// OracleContext::shard_busy_ms, which is not safe under concurrent
  /// oracle calls.
  bool overlap_stages = true;
};

/// Which model the engine recommends after comparing penalties.
enum class RefinementModel {
  kNone,        // Objects were not missing.
  kPreference,  // Eqn. (3) refinement is cheaper.
  kKeyword,     // Eqn. (4) refinement is cheaper.
};

/// Everything the why-not engine returns for one question.
struct WhyNotAnswer {
  std::vector<MissingObjectExplanation> explanations;
  std::optional<RefinedPreferenceQuery> preference;
  std::optional<RefinedKeywordQuery> keyword;
  RefinementModel recommended = RefinementModel::kNone;
  /// Result of the recommended refined query (what the demo map displays).
  TopKResult refined_result;
};

/// A two-step refinement applying both models in sequence (§3.2: "Users can
/// apply the two refinement functions simultaneously to find better
/// solutions"). Each step's penalty is measured against that step's input
/// query, per the respective Eqn.; `total_penalty` is their sum.
struct CombinedRefinement {
  Query refined;  // Final query: possibly new w, doc and k.
  PenaltyBreakdown preference_penalty;
  PenaltyBreakdown keyword_penalty;
  double total_penalty = 0.0;
  bool preference_first = true;  // Which order won.
  size_t original_rank = 0;      // R(M, q) under the initial query.
  size_t refined_rank = 0;       // R(M, final refined query).
};

/// The engine facade. The corpus behind the oracle must outlive the engine
/// and must have been built with its KcR-tree(s) (keyword adaption runs on
/// them).
class WhyNotEngine {
 public:
  /// Full-featured engine over one unsharded corpus replica.
  explicit WhyNotEngine(const Corpus& corpus);
  /// Distributed engine: oracle calls fan out over the shard pool; answers
  /// are bit-identical to the unsharded engine over the same objects.
  explicit WhyNotEngine(const ShardedCorpus& corpus);
  /// Over any oracle implementation (tests, custom layouts).
  explicit WhyNotEngine(std::unique_ptr<const WhyNotOracle> oracle);

  /// Runs the initial top-k query (the demo's query mode, Fig. 3).
  TopKResult TopK(const Query& query, TopKStats* stats = nullptr) const {
    return oracle_->TopK(query, stats);
  }

  /// Answers a why-not question for the given missing objects (Fig. 4/5).
  Result<WhyNotAnswer> Answer(const Query& query,
                              const std::vector<ObjectId>& missing,
                              const WhyNotOptions& options = {}) const;

  /// Applies both refinement models in sequence, trying both orders
  /// (preference→keyword and keyword→preference) and returning the order
  /// with the lower total penalty. The final query revives all of M (the
  /// last step guarantees it for its input query, whose result already
  /// contains what the first step revived or better).
  Result<CombinedRefinement> CombineRefinements(
      const Query& query, const std::vector<ObjectId>& missing,
      const WhyNotOptions& options = {}) const;

  const WhyNotOracle& oracle() const { return *oracle_; }

 private:
  std::unique_ptr<const WhyNotOracle> oracle_;
};

}  // namespace yask

#endif  // YASK_WHYNOT_WHY_NOT_ENGINE_H_
