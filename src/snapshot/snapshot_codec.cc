#include "src/snapshot/snapshot_codec.h"

#include <algorithm>
#include <cmath>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

namespace yask {

namespace {

/// Shorthand: the reader's sticky error as a Status (OK while reads succeed).
Status ReaderStatus(const BufReader& in) {
  return in.ok() ? Status::OK() : in.status();
}

}  // namespace

// --- Vocabulary --------------------------------------------------------------
// Payload: varu64 word_count | word_count x string.
// Words are written in TermId order, so re-interning them in order on load
// reproduces the identical dense id assignment.

void SaveVocabulary(const Vocabulary& vocab, BufWriter* out) {
  out->PutVarU64(vocab.size());
  for (TermId id = 0; id < vocab.size(); ++id) {
    out->PutString(vocab.Word(id));
  }
}

Status LoadVocabulary(BufReader* in, Vocabulary* vocab) {
  if (vocab->size() != 0) {
    return Status::FailedPrecondition(
        "LoadVocabulary requires an empty vocabulary");
  }
  const uint64_t count = in->GetVarU64();
  if (!in->CheckCount(count)) return ReaderStatus(*in);
  vocab->Reserve(static_cast<size_t>(count));
  for (uint64_t i = 0; i < count; ++i) {
    const std::string word = in->GetString();
    if (!in->ok()) return ReaderStatus(*in);
    if (vocab->Intern(word) != i) {
      return Status::InvalidArgument(
          "snapshot decode: duplicate vocabulary word '" + word + "'");
    }
  }
  return ReaderStatus(*in);
}

// --- ObjectStore -------------------------------------------------------------
// Payload: varu64 object_count | varu32 stripe_count
//        | stripe_count x varu64 stripe_byte_length
//        | the stripes, back to back; each stripe holds a contiguous id
//          range of objects (count/stripes, earlier stripes one longer),
//          encoded per object as f64 x | f64 y | delta-ids doc | string name.
//
// The stripes exist purely for load parallelism: their byte lengths let a
// cold start decode all of them concurrently straight into the final object
// vector. Ids and bounds are reproduced positionally (AdoptObjects); the doc
// term ids must resolve in the (already loaded, shared) vocabulary.

namespace {

/// Stripes are a load-parallelism knob, not a data property: enough to fan
/// out a big store across cores, 1 for small stores where threads cost more
/// than they save, and hard-capped so a corrupt header cannot demand
/// thousands of threads.
constexpr uint32_t kMaxObjectStripes = 64;

uint32_t PickStripeCount(size_t object_count) {
  if (object_count < 4096) return object_count == 0 ? 0 : 1;
  const uint32_t hw = std::max(1u, std::thread::hardware_concurrency());
  return std::min({kMaxObjectStripes, hw,
                   static_cast<uint32_t>(object_count / 1024)});
}

/// Object ranges per stripe: sizes differ by at most one.
std::vector<std::pair<size_t, size_t>> StripeRanges(size_t count,
                                                    uint32_t stripes) {
  std::vector<std::pair<size_t, size_t>> ranges;
  ranges.reserve(stripes);
  const size_t base = stripes == 0 ? 0 : count / stripes;
  const size_t extra = stripes == 0 ? 0 : count % stripes;
  size_t begin = 0;
  for (uint32_t s = 0; s < stripes; ++s) {
    const size_t len = base + (s < extra ? 1 : 0);
    ranges.emplace_back(begin, begin + len);
    begin += len;
  }
  return ranges;
}

/// Decodes one stripe's object range into objects[begin, end). Runs on a
/// worker thread; touches only its slice.
Status DecodeObjectStripe(BufReader in, size_t begin, size_t end,
                          size_t vocab_size,
                          std::vector<SpatialObject>* objects) {
  for (size_t i = begin; i < end; ++i) {
    SpatialObject& o = (*objects)[i];
    o.id = static_cast<ObjectId>(i);
    o.loc.x = in.GetF64();
    o.loc.y = in.GetF64();
    std::vector<TermId> doc_ids = in.GetDeltaIds();
    o.name = in.GetString();
    if (!in.ok()) return in.status();
    if (!std::isfinite(o.loc.x) || !std::isfinite(o.loc.y)) {
      return Status::InvalidArgument(
          "snapshot decode: non-finite object coordinates");
    }
    if (!doc_ids.empty() && doc_ids.back() >= vocab_size) {
      return Status::InvalidArgument(
          "snapshot decode: object keyword id " +
          std::to_string(doc_ids.back()) + " outside vocabulary of " +
          std::to_string(vocab_size));
    }
    // GetDeltaIds guarantees strict ascent, so skip KeywordSet's re-sort.
    o.doc = KeywordSet::FromSortedUnique(std::move(doc_ids));
  }
  if (!in.AtEnd()) {
    return Status::InvalidArgument(
        "snapshot decode: object stripe has trailing bytes");
  }
  return Status::OK();
}

}  // namespace

void SaveObjectStore(const ObjectStore& store, BufWriter* out) {
  const uint32_t stripes = PickStripeCount(store.size());
  const auto ranges = StripeRanges(store.size(), stripes);

  out->PutVarU64(store.size());
  out->PutVarU32(stripes);
  std::vector<BufWriter> stripe_payloads(stripes);
  for (uint32_t s = 0; s < stripes; ++s) {
    BufWriter& stripe = stripe_payloads[s];
    for (size_t i = ranges[s].first; i < ranges[s].second; ++i) {
      const SpatialObject& o = store.Get(static_cast<ObjectId>(i));
      stripe.PutF64(o.loc.x);
      stripe.PutF64(o.loc.y);
      stripe.PutDeltaIds(o.doc.ids());
      stripe.PutString(o.name);
    }
    out->PutVarU64(stripe.size());
  }
  for (const BufWriter& stripe : stripe_payloads) {
    out->PutRaw(stripe.data());
  }
}

Status LoadObjectStore(BufReader* in, ObjectStore* store) {
  if (!store->empty()) {
    return Status::FailedPrecondition("LoadObjectStore requires an empty store");
  }
  const size_t vocab_size = store->vocab().size();
  const uint64_t count = in->GetVarU64();
  const uint32_t stripes = in->GetVarU32();
  // Two doubles + two varints is the floor per object.
  if (!in->CheckCount(count, 18)) return ReaderStatus(*in);
  if (stripes > kMaxObjectStripes || (stripes == 0) != (count == 0)) {
    return Status::InvalidArgument(
        "snapshot decode: bad object stripe count " + std::to_string(stripes));
  }
  std::vector<uint64_t> lengths(stripes);
  for (uint32_t s = 0; s < stripes; ++s) lengths[s] = in->GetVarU64();
  if (!in->ok()) return ReaderStatus(*in);
  // Overflow-safe sum check: every length must fit in what is left, and the
  // lengths must tile the remaining payload exactly.
  uint64_t total = 0;
  for (const uint64_t len : lengths) {
    if (len > in->remaining() - total) {
      return Status::InvalidArgument(
          "snapshot decode: object stripe lengths exceed payload size");
    }
    total += len;
  }
  if (total != in->remaining()) {
    return Status::InvalidArgument(
        "snapshot decode: object stripe lengths disagree with payload size");
  }

  const auto ranges = StripeRanges(static_cast<size_t>(count), stripes);
  std::vector<SpatialObject> objects(static_cast<size_t>(count));
  std::vector<Status> stripe_status(stripes);
  std::vector<std::thread> workers;
  const uint8_t* cursor = in->cursor();
  for (uint32_t s = 0; s < stripes; ++s) {
    BufReader stripe_reader(cursor, static_cast<size_t>(lengths[s]));
    cursor += lengths[s];
    auto task = [stripe_reader, range = ranges[s], vocab_size, &objects,
                 out_status = &stripe_status[s]]() mutable {
      *out_status = DecodeObjectStripe(stripe_reader, range.first,
                                       range.second, vocab_size, &objects);
    };
    if (stripes == 1) {
      task();  // No thread overhead for small stores.
    } else {
      workers.emplace_back(std::move(task));
    }
  }
  for (std::thread& t : workers) t.join();
  in->Skip(in->remaining());
  for (const Status& s : stripe_status) {
    if (!s.ok()) return s;
  }
  store->AdoptObjects(std::move(objects));
  return ReaderStatus(*in);
}

// --- InvertedIndex -----------------------------------------------------------
// Payload: varu64 term_count | term_count x delta-ids posting list.

void SaveInvertedIndex(const InvertedIndex& index, BufWriter* out) {
  out->PutVarU64(index.postings().size());
  for (const std::vector<ObjectId>& list : index.postings()) {
    out->PutDeltaIds(list);
  }
}

Result<InvertedIndex> LoadInvertedIndex(BufReader* in, size_t vocab_size,
                                        size_t object_count) {
  const uint64_t term_count = in->GetVarU64();
  if (!in->CheckCount(term_count)) return ReaderStatus(*in);
  if (term_count > vocab_size) {
    return Status::InvalidArgument(
        "snapshot decode: inverted index covers " +
        std::to_string(term_count) + " terms but the vocabulary has " +
        std::to_string(vocab_size));
  }
  std::vector<std::vector<ObjectId>> postings(
      static_cast<size_t>(term_count));
  for (uint64_t t = 0; t < term_count; ++t) {
    postings[t] = in->GetDeltaIds();
    if (!in->ok()) return ReaderStatus(*in);
    if (!postings[t].empty() && postings[t].back() >= object_count) {
      return Status::InvalidArgument(
          "snapshot decode: posting references object " +
          std::to_string(postings[t].back()) + " outside store of " +
          std::to_string(object_count));
    }
  }
  if (!in->ok()) return ReaderStatus(*in);
  return InvertedIndex::FromPostings(std::move(postings));
}

// --- R-tree summaries --------------------------------------------------------

namespace {

// SetSummary payload: delta-ids union | delta-ids inter | varu32 count
//                   | varu32 min_len | varu32 max_len.
void SaveSummary(const SetSummary& s, BufWriter* out) {
  out->PutDeltaIds(s.union_set.ids());
  out->PutDeltaIds(s.inter_set.ids());
  out->PutVarU32(s.count);
  out->PutVarU32(s.min_doc_len);
  out->PutVarU32(s.max_doc_len);
}

void LoadSummary(BufReader* in, size_t vocab_size, SetSummary* s) {
  std::vector<TermId> union_ids = in->GetDeltaIds();
  std::vector<TermId> inter_ids = in->GetDeltaIds();
  s->count = in->GetVarU32();
  s->min_doc_len = in->GetVarU32();
  s->max_doc_len = in->GetVarU32();
  if (!in->ok()) return;
  if ((!union_ids.empty() && union_ids.back() >= vocab_size) ||
      (!inter_ids.empty() && inter_ids.back() >= vocab_size)) {
    in->Fail("SetSummary keyword id outside vocabulary");
    return;
  }
  if (s->min_doc_len > s->max_doc_len) {
    in->Fail("SetSummary min_doc_len > max_doc_len");
    return;
  }
  s->union_set = KeywordSet::FromSortedUnique(std::move(union_ids));
  s->inter_set = KeywordSet::FromSortedUnique(std::move(inter_ids));
}

// KcSummary payload: delta-ids terms | per term varu32 count
//                  | varu32 cnt | varu32 min_len | varu32 max_len.
// Terms and counts travel as two parallel arrays (not interleaved pairs) so
// the term column rides the fast strictly-ascending delta decoder.
void SaveSummary(const KcSummary& s, BufWriter* out) {
  std::vector<TermId> terms;
  terms.reserve(s.counts.size());
  for (const auto& [term, count] : s.counts.entries()) terms.push_back(term);
  out->PutDeltaIds(terms);
  for (const auto& [term, count] : s.counts.entries()) out->PutVarU32(count);
  out->PutVarU32(s.cnt);
  out->PutVarU32(s.min_doc_len);
  out->PutVarU32(s.max_doc_len);
}

void LoadSummary(BufReader* in, size_t vocab_size, KcSummary* s) {
  const std::vector<TermId> terms = in->GetDeltaIds();
  if (!in->ok()) return;
  if (!terms.empty() && terms.back() >= vocab_size) {
    in->Fail("CountMap term outside vocabulary");
    return;
  }
  std::vector<std::pair<TermId, uint32_t>> entries;
  entries.reserve(terms.size());
  for (const TermId term : terms) {
    const uint32_t count = in->GetVarU32();
    if (count == 0) {
      in->Fail("CountMap entry with zero count");
      return;
    }
    entries.emplace_back(term, count);
  }
  s->cnt = in->GetVarU32();
  s->min_doc_len = in->GetVarU32();
  s->max_doc_len = in->GetVarU32();
  if (!in->ok()) return;
  if (s->min_doc_len > s->max_doc_len) {
    in->Fail("KcSummary min_doc_len > max_doc_len");
    return;
  }
  s->counts = CountMap(std::move(entries));
}

// --- R-tree structure --------------------------------------------------------
// Payload: varu32 node_count | varu32 root_index | varu64 object_count
//        | varu32 max_entries | varu32 min_entries
//        | node_count x node, children strictly before parents:
//            u8 is_leaf | varu32 entry_count
//          | entry_count x varu32 id   (ObjectId for leaves, else the child's
//                                       position in this node stream)
//          | summary.
//
// Rects and parent pointers are NOT stored: leaf entry rects come from the
// store's object points, node rects and internal entry rects fold up from
// children (which, by the write order, are always decoded first).

template <typename Summary>
void SaveRTreeT(const RTreeT<Summary>& tree, BufWriter* out) {
  using Tree = RTreeT<Summary>;
  using NodeId = typename Tree::NodeId;

  // Post-order DFS: emit children before their parent; the root comes last.
  std::vector<NodeId> order;
  order.reserve(tree.node_count());
  std::vector<std::pair<NodeId, size_t>> stack{{tree.root(), 0}};
  while (!stack.empty()) {
    auto& [nid, next_child] = stack.back();
    const auto& n = tree.node(nid);
    if (n.is_leaf || next_child == n.entries.size()) {
      order.push_back(nid);
      stack.pop_back();
      continue;
    }
    stack.emplace_back(n.entries[next_child++].id, 0);
  }

  std::unordered_map<NodeId, uint32_t> remap;
  remap.reserve(order.size());
  for (uint32_t i = 0; i < order.size(); ++i) remap[order[i]] = i;

  out->PutVarU32(static_cast<uint32_t>(order.size()));
  out->PutVarU32(remap.at(tree.root()));
  out->PutVarU64(tree.size());
  out->PutVarU32(static_cast<uint32_t>(tree.options().max_entries));
  out->PutVarU32(static_cast<uint32_t>(tree.options().min_entries));
  for (const NodeId nid : order) {
    const auto& n = tree.node(nid);
    out->PutU8(n.is_leaf ? 1 : 0);
    out->PutVarU32(static_cast<uint32_t>(n.entries.size()));
    for (const auto& e : n.entries) {
      out->PutVarU32(n.is_leaf ? e.id : remap.at(e.id));
    }
    SaveSummary(n.summary, out);
  }
}

template <typename Summary>
Status LoadRTreeT(BufReader* in, RTreeT<Summary>* tree) {
  using Tree = RTreeT<Summary>;
  using Node = typename Tree::Node;
  using Entry = typename Tree::Entry;
  constexpr auto kNoNode = Tree::kNoNode;

  const ObjectStore& store = tree->store();
  const size_t vocab_size = store.vocab().size();

  const uint32_t node_count = in->GetVarU32();
  const uint32_t root_index = in->GetVarU32();
  const uint64_t object_count = in->GetVarU64();
  RTreeOptions options;
  options.max_entries = in->GetVarU32();
  options.min_entries = in->GetVarU32();
  if (!in->ok()) return ReaderStatus(*in);
  if (!in->CheckCount(node_count, 2)) return ReaderStatus(*in);
  if (node_count == 0 || root_index != node_count - 1) {
    return Status::InvalidArgument(
        "snapshot decode: r-tree root must be the last node of the stream");
  }
  if (options.min_entries < 1 ||
      options.min_entries * 2 > options.max_entries) {
    return Status::InvalidArgument(
        "snapshot decode: r-tree fanout options violate min*2 <= max");
  }
  if (object_count > store.size()) {
    return Status::InvalidArgument(
        "snapshot decode: r-tree indexes " + std::to_string(object_count) +
        " objects but the store holds " + std::to_string(store.size()));
  }

  std::vector<Node> nodes(node_count);
  std::vector<bool> object_seen(store.size(), false);
  uint64_t objects_in_leaves = 0;
  for (uint32_t i = 0; i < node_count; ++i) {
    Node& n = nodes[i];
    const uint8_t leaf_byte = in->GetU8();
    const uint32_t entry_count = in->GetVarU32();
    if (!in->ok()) return ReaderStatus(*in);
    if (leaf_byte > 1) {
      return Status::InvalidArgument("snapshot decode: bad r-tree leaf flag");
    }
    n.is_leaf = leaf_byte == 1;
    if (entry_count > options.max_entries ||
        (!n.is_leaf && entry_count == 0) ||
        (entry_count == 0 && node_count != 1)) {
      return Status::InvalidArgument(
          "snapshot decode: r-tree node entry count out of range");
    }
    // max_entries itself comes from the file, so bound the reserve against
    // the bytes actually present (each entry is at least one varint byte).
    if (!in->CheckCount(entry_count)) return ReaderStatus(*in);
    // Non-root underflow (Guttman invariant); the root (last node) is exempt.
    if (i != node_count - 1 && entry_count < options.min_entries) {
      return Status::InvalidArgument(
          "snapshot decode: underfull non-root r-tree node");
    }
    n.rect = Rect::Empty();
    n.entries.reserve(entry_count);
    for (uint32_t e = 0; e < entry_count; ++e) {
      const uint32_t id = in->GetVarU32();
      if (!in->ok()) return ReaderStatus(*in);
      Entry entry;
      entry.id = id;
      if (n.is_leaf) {
        if (id >= store.size() || object_seen[id]) {
          return Status::InvalidArgument(
              "snapshot decode: r-tree leaf references object " +
              std::to_string(id) + " (out of range or duplicated)");
        }
        object_seen[id] = true;
        ++objects_in_leaves;
        entry.rect = Rect::FromPoint(store.Get(id).loc);
      } else {
        // Children are written before parents, so a valid child index is
        // strictly below i and not yet claimed by another parent.
        if (id >= i || nodes[id].parent != kNoNode) {
          return Status::InvalidArgument(
              "snapshot decode: r-tree child link " + std::to_string(id) +
              " breaks the children-before-parents order");
        }
        nodes[id].parent = i;
        entry.rect = nodes[id].rect;
      }
      n.rect.Extend(entry.rect);
      n.entries.push_back(std::move(entry));
    }
    LoadSummary(in, vocab_size, &n.summary);
    if (!in->ok()) return ReaderStatus(*in);
  }
  if (objects_in_leaves != object_count) {
    return Status::InvalidArgument(
        "snapshot decode: r-tree leaf entries (" +
        std::to_string(objects_in_leaves) + ") disagree with object_count (" +
        std::to_string(object_count) + ")");
  }
  // Every node except the root must have been claimed as someone's child.
  for (uint32_t i = 0; i + 1 < node_count; ++i) {
    if (nodes[i].parent == kNoNode) {
      return Status::InvalidArgument(
          "snapshot decode: orphaned r-tree node " + std::to_string(i));
    }
  }
  tree->AdoptArena(std::move(nodes), root_index,
                   static_cast<size_t>(object_count), options);
  return Status::OK();
}

}  // namespace

void SaveSetRTree(const SetRTree& tree, BufWriter* out) {
  SaveRTreeT(tree, out);
}

Status LoadSetRTree(BufReader* in, SetRTree* tree) {
  return LoadRTreeT(in, tree);
}

void SaveKcRTree(const KcRTree& tree, BufWriter* out) {
  SaveRTreeT(tree, out);
}

Status LoadKcRTree(BufReader* in, KcRTree* tree) {
  return LoadRTreeT(in, tree);
}

// --- Shard manifest ----------------------------------------------------------
// Payload: varu64 object_count (leading count for inspect-snapshot)
//        | varu32 shard_index | varu32 shard_count
//        | u8 has_bounds [ | f64 min_x | f64 min_y | f64 max_x | f64 max_y ]
//        | delta-ids global_ids | string router.

void SaveShardManifest(const ShardManifest& manifest, BufWriter* out) {
  out->PutVarU64(manifest.global_ids.size());
  out->PutVarU32(manifest.shard_index);
  out->PutVarU32(manifest.shard_count);
  out->PutU8(manifest.global_bounds.empty() ? 0 : 1);
  if (!manifest.global_bounds.empty()) {
    out->PutF64(manifest.global_bounds.min_x);
    out->PutF64(manifest.global_bounds.min_y);
    out->PutF64(manifest.global_bounds.max_x);
    out->PutF64(manifest.global_bounds.max_y);
  }
  out->PutDeltaIds(manifest.global_ids);
  out->PutString(manifest.router);
}

Result<ShardManifest> LoadShardManifest(BufReader* in) {
  ShardManifest m;
  const uint64_t count = in->GetVarU64();
  m.shard_index = in->GetVarU32();
  m.shard_count = in->GetVarU32();
  const uint8_t has_bounds = in->GetU8();
  if (!in->ok()) return ReaderStatus(*in);
  if (has_bounds > 1) {
    return Status::InvalidArgument("snapshot decode: bad bounds flag");
  }
  if (has_bounds == 1) {
    const double min_x = in->GetF64();
    const double min_y = in->GetF64();
    const double max_x = in->GetF64();
    const double max_y = in->GetF64();
    if (!in->ok()) return ReaderStatus(*in);
    if (!std::isfinite(min_x) || !std::isfinite(min_y) ||
        !std::isfinite(max_x) || !std::isfinite(max_y) || min_x > max_x ||
        min_y > max_y) {
      return Status::InvalidArgument(
          "snapshot decode: non-finite or inverted shard bounds");
    }
    m.global_bounds = Rect{min_x, min_y, max_x, max_y};
  }
  m.global_ids = in->GetDeltaIds();
  m.router = in->GetString();
  if (!in->ok()) return ReaderStatus(*in);
  if (m.shard_count == 0 || m.shard_index >= m.shard_count) {
    return Status::InvalidArgument(
        "snapshot decode: shard index " + std::to_string(m.shard_index) +
        " outside shard count " + std::to_string(m.shard_count));
  }
  if (m.global_ids.size() != count) {
    return Status::InvalidArgument(
        "snapshot decode: shard manifest id count disagrees with header");
  }
  return m;
}

// --- Bundle ------------------------------------------------------------------

Result<uint64_t> WriteSnapshot(const std::string& path,
                               const ObjectStore& store, const SetRTree* setr,
                               const KcRTree* kcr,
                               const InvertedIndex* inverted,
                               const ShardManifest* shard) {
  SnapshotWriter writer;
  SaveVocabulary(store.vocab(), writer.AddSection(SectionId::kVocabulary));
  SaveObjectStore(store, writer.AddSection(SectionId::kObjectStore));
  if (inverted != nullptr) {
    SaveInvertedIndex(*inverted, writer.AddSection(SectionId::kInvertedIndex));
  }
  if (setr != nullptr) {
    SaveSetRTree(*setr, writer.AddSection(SectionId::kSetRTree));
  }
  if (kcr != nullptr) {
    SaveKcRTree(*kcr, writer.AddSection(SectionId::kKcRTree));
  }
  if (shard != nullptr) {
    SaveShardManifest(*shard, writer.AddSection(SectionId::kShardManifest));
  }
  uint64_t bytes = 0;
  if (Status s = writer.WriteTo(path, &bytes); !s.ok()) return s;
  return bytes;
}

Result<SnapshotBundle> LoadSnapshot(const std::string& path) {
  Result<SnapshotReader> reader = SnapshotReader::Open(path);
  if (!reader.ok()) return reader.status();

  // Vocabulary first: the restored store shares this exact instance, so no
  // token is re-interned and saved term ids stay valid verbatim.
  auto vocab = std::make_shared<Vocabulary>();
  {
    Result<BufReader> section = reader->OpenSection(SectionId::kVocabulary);
    if (!section.ok()) return section.status();
    if (Status s = LoadVocabulary(&section.value(), vocab.get()); !s.ok()) {
      return s;
    }
  }

  SnapshotBundle bundle;
  bundle.store = std::make_unique<ObjectStore>(vocab);
  {
    Result<BufReader> section = reader->OpenSection(SectionId::kObjectStore);
    if (!section.ok()) return section.status();
    if (Status s = LoadObjectStore(&section.value(), bundle.store.get());
        !s.ok()) {
      return s;
    }
  }

  // The index sections only read the (now immutable) store, so decode them
  // concurrently — on a restart the three decodes overlap, and the cold
  // start is bounded by the store plus the slowest single index.
  Status setr_status, kcr_status, inverted_status;
  std::vector<std::thread> loaders;
  if (reader->Has(SectionId::kSetRTree)) {
    bundle.setr = std::make_unique<SetRTree>(bundle.store.get());
    loaders.emplace_back([&reader, &bundle, &setr_status] {
      Result<BufReader> section = reader->OpenSection(SectionId::kSetRTree);
      setr_status = section.ok()
                        ? LoadSetRTree(&section.value(), bundle.setr.get())
                        : section.status();
    });
  }
  if (reader->Has(SectionId::kKcRTree)) {
    bundle.kcr = std::make_unique<KcRTree>(bundle.store.get());
    loaders.emplace_back([&reader, &bundle, &kcr_status] {
      Result<BufReader> section = reader->OpenSection(SectionId::kKcRTree);
      kcr_status = section.ok()
                       ? LoadKcRTree(&section.value(), bundle.kcr.get())
                       : section.status();
    });
  }
  if (reader->Has(SectionId::kInvertedIndex)) {
    loaders.emplace_back([&reader, &bundle, &vocab, &inverted_status] {
      Result<BufReader> section =
          reader->OpenSection(SectionId::kInvertedIndex);
      if (!section.ok()) {
        inverted_status = section.status();
        return;
      }
      Result<InvertedIndex> index = LoadInvertedIndex(
          &section.value(), vocab->size(), bundle.store->size());
      if (!index.ok()) {
        inverted_status = index.status();
        return;
      }
      bundle.inverted =
          std::make_unique<InvertedIndex>(std::move(index).value());
    });
  }
  for (std::thread& t : loaders) t.join();
  for (const Status* s : {&setr_status, &kcr_status, &inverted_status}) {
    if (!s->ok()) return *s;
  }

  if (reader->Has(SectionId::kShardManifest)) {
    Result<BufReader> section = reader->OpenSection(SectionId::kShardManifest);
    if (!section.ok()) return section.status();
    Result<ShardManifest> manifest = LoadShardManifest(&section.value());
    if (!manifest.ok()) return manifest.status();
    if (manifest->global_ids.size() != bundle.store->size()) {
      return Status::InvalidArgument(
          "snapshot decode: shard manifest maps " +
          std::to_string(manifest->global_ids.size()) +
          " objects but the store holds " +
          std::to_string(bundle.store->size()));
    }
    bundle.shard = std::make_unique<ShardManifest>(std::move(manifest).value());
  }
  return bundle;
}

// --- Inspection --------------------------------------------------------------

Result<SnapshotReport> InspectSnapshot(const std::string& path) {
  Result<SnapshotReader> reader = SnapshotReader::Open(path);
  if (!reader.ok()) return reader.status();

  SnapshotReport report;
  report.format_version = reader->format_version();
  report.file_size = reader->file_size();
  for (const SnapshotSectionInfo& info : reader->sections()) {
    SnapshotSectionReport row;
    row.id = info.id;
    row.name = SectionIdToString(info.id);
    row.size = info.size;
    row.crc32 = info.crc32;
    // Every section payload leads with its element count (words, objects,
    // terms, nodes) — surface it without decoding the rest.
    Result<BufReader> section = reader->OpenSection(info.id);
    if (section.ok()) {
      const uint64_t count = section->GetVarU64();
      if (section->ok()) row.item_count = static_cast<int64_t>(count);
    }
    report.sections.push_back(std::move(row));
  }

  // The shard manifest is a few hundred bytes; decode it in full so the
  // inspection reports the shard layout (index/count, router, global ids)
  // instead of skipping past it. A corrupt manifest stays nullopt — the
  // section row above already flags the damaged payload.
  if (reader->Has(SectionId::kShardManifest)) {
    Result<BufReader> section = reader->OpenSection(SectionId::kShardManifest);
    if (section.ok()) {
      Result<ShardManifest> manifest = LoadShardManifest(&section.value());
      if (manifest.ok()) report.shard = std::move(manifest).value();
    }
  }
  return report;
}

}  // namespace yask
