#include "src/server/http_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <sstream>

#include "src/common/string_util.h"
#include "src/server/json.h"

namespace yask {

HttpResponse HttpResponse::Error(int status, const std::string& message) {
  return HttpResponse{status, "application/json",
                      "{\"error\":" + JsonEscape(message) + "}"};
}

HttpServer::HttpServer(uint16_t port, size_t num_workers)
    : port_(port), num_workers_(num_workers == 0 ? 1 : num_workers) {}

HttpServer::~HttpServer() { Stop(); }

void HttpServer::Route(const std::string& method, const std::string& path,
                       Handler handler) {
  routes_[{method, path}] = std::move(handler);
}

Status HttpServer::Start() {
  if (running_.load()) return Status::FailedPrecondition("already running");
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return Status::Unavailable("socket() failed");
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port_);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Unavailable("bind() failed: " +
                               std::string(std::strerror(errno)));
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  bound_port_ = ntohs(addr.sin_port);
  if (::listen(listen_fd_, 64) < 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Unavailable("listen() failed");
  }

  running_.store(true);
  accept_thread_ = std::thread(&HttpServer::AcceptLoop, this);
  for (size_t i = 0; i < num_workers_; ++i) {
    workers_.emplace_back(&HttpServer::WorkerLoop, this);
  }
  return Status::OK();
}

void HttpServer::Stop() {
  if (!running_.exchange(false)) return;
  // Closing the listening socket unblocks accept().
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  cv_.notify_all();
  if (accept_thread_.joinable()) accept_thread_.join();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
  // Workers abandon the queue as soon as running_ drops (they only finish
  // the connection they already hold), so under load the queue can still be
  // full here: close every queued fd or they would leak.
  std::lock_guard<std::mutex> lock(mu_);
  while (!pending_.empty()) {
    ::close(pending_.front());
    pending_.pop();
  }
}

void HttpServer::AcceptLoop() {
  while (running_.load()) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (!running_.load()) break;
      continue;
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      pending_.push(fd);
    }
    cv_.notify_one();
  }
}

void HttpServer::WorkerLoop() {
  while (true) {
    int fd;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] { return !pending_.empty() || !running_.load(); });
      // On Stop(), exit even with connections still queued: Stop() closes
      // them after the join. Serving a backlog during shutdown would make
      // Stop() latency unbounded under load.
      if (!running_.load()) return;
      fd = pending_.front();
      pending_.pop();
    }
    HandleConnection(fd);
  }
}

namespace {

/// Reads until the full header block plus Content-Length body is available.
bool ReadRequest(int fd, std::string* raw, size_t* header_end_out) {
  raw->clear();
  char buf[4096];
  size_t header_end = std::string::npos;
  size_t content_length = 0;
  bool have_length = false;
  while (true) {
    if (header_end == std::string::npos) {
      const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
      if (n <= 0) return false;
      raw->append(buf, static_cast<size_t>(n));
      header_end = raw->find("\r\n\r\n");
      if (header_end == std::string::npos) {
        if (raw->size() > 1 << 20) return false;  // Header too large.
        continue;
      }
      // Parse Content-Length from the header block.
      std::string headers = raw->substr(0, header_end);
      std::istringstream hs(headers);
      std::string line;
      while (std::getline(hs, line)) {
        if (!line.empty() && line.back() == '\r') line.pop_back();
        const std::string lower = ToLowerAscii(line);
        if (StartsWith(lower, "content-length:")) {
          uint64_t v = 0;
          if (ParseUint64(Trim(line.substr(15)), &v)) {
            content_length = static_cast<size_t>(v);
            have_length = true;
          }
        }
      }
      if (content_length > (32u << 20)) return false;  // Body too large.
    }
    const size_t body_have = raw->size() - (header_end + 4);
    if (!have_length || body_have >= content_length) break;
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) return false;
    raw->append(buf, static_cast<size_t>(n));
  }
  *header_end_out = header_end;
  return true;
}

void SendAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent, 0);
    if (n <= 0) return;
    sent += static_cast<size_t>(n);
  }
}

const char* StatusText(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 403: return "Forbidden";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    default: return "OK";
  }
}

}  // namespace

void HttpServer::HandleConnection(int fd) {
  std::string raw;
  size_t header_end = 0;
  HttpResponse resp;
  HttpRequest req;
  bool parsed = false;

  if (ReadRequest(fd, &raw, &header_end)) {
    // Request line: METHOD SP TARGET SP VERSION.
    const size_t line_end = raw.find("\r\n");
    const std::string request_line = raw.substr(0, line_end);
    std::vector<std::string> parts = SplitWhitespace(request_line);
    if (parts.size() >= 2) {
      req.method = parts[0];
      std::string target = parts[1];
      const size_t qpos = target.find('?');
      if (qpos != std::string::npos) {
        const std::string qs = target.substr(qpos + 1);
        target = target.substr(0, qpos);
        for (const std::string& kv : Split(qs, '&')) {
          const size_t eq = kv.find('=');
          if (eq == std::string::npos) {
            req.query_params[UrlDecode(kv)] = "";
          } else {
            req.query_params[UrlDecode(kv.substr(0, eq))] =
                UrlDecode(kv.substr(eq + 1));
          }
        }
      }
      req.path = UrlDecode(target);
      req.body = raw.substr(header_end + 4);
      parsed = true;
    }
  }

  if (!parsed) {
    resp = HttpResponse{400, "application/json", "{\"error\":\"bad request\"}"};
  } else {
    auto it = routes_.find({req.method, req.path});
    if (it == routes_.end()) {
      resp = HttpResponse{404, "application/json",
                          "{\"error\":\"no such endpoint\"}"};
    } else {
      resp = it->second(req);
    }
  }

  std::ostringstream out;
  out << "HTTP/1.1 " << resp.status << ' ' << StatusText(resp.status)
      << "\r\nContent-Type: " << resp.content_type
      << "\r\nContent-Length: " << resp.body.size()
      << "\r\nConnection: close\r\n\r\n"
      << resp.body;
  SendAll(fd, out.str());
  ::shutdown(fd, SHUT_RDWR);
  ::close(fd);
}

std::string UrlDecode(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '%' && i + 2 < s.size()) {
      auto hex = [](char c) -> int {
        if (c >= '0' && c <= '9') return c - '0';
        if (c >= 'a' && c <= 'f') return c - 'a' + 10;
        if (c >= 'A' && c <= 'F') return c - 'A' + 10;
        return -1;
      };
      const int hi = hex(s[i + 1]);
      const int lo = hex(s[i + 2]);
      if (hi >= 0 && lo >= 0) {
        out += static_cast<char>(hi * 16 + lo);
        i += 2;
        continue;
      }
    }
    out += s[i] == '+' ? ' ' : s[i];
  }
  return out;
}

Result<std::string> HttpFetch(uint16_t port, const std::string& method,
                              const std::string& path_and_query,
                              const std::string& body, int* status_out) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::Unavailable("socket() failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return Status::Unavailable("connect() failed");
  }
  std::ostringstream req;
  req << method << ' ' << path_and_query
      << " HTTP/1.1\r\nHost: 127.0.0.1\r\nContent-Length: " << body.size()
      << "\r\nConnection: close\r\n\r\n"
      << body;
  SendAll(fd, req.str());

  std::string raw;
  char buf[4096];
  while (true) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    raw.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);

  const size_t header_end = raw.find("\r\n\r\n");
  if (header_end == std::string::npos) {
    return Status::Unavailable("malformed HTTP response");
  }
  if (status_out != nullptr) {
    *status_out = 0;
    const size_t sp = raw.find(' ');
    if (sp != std::string::npos) {
      uint64_t code = 0;
      if (ParseUint64(raw.substr(sp + 1, 3), &code)) {
        *status_out = static_cast<int>(code);
      }
    }
  }
  return raw.substr(header_end + 4);
}

}  // namespace yask
