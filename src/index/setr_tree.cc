#include "src/index/setr_tree.h"

#include <algorithm>

namespace yask {

double UpperBoundTSim(const SetSummary& s, const KeywordSet& query_doc,
                      SetRBoundVariant variant) {
  if (s.count == 0 || query_doc.empty()) return 0.0;
  // Numerator bound: |o ∩ q| <= |U ∩ q|.
  const size_t num = s.union_set.IntersectionSize(query_doc);
  if (num == 0) return 0.0;
  // Denominator: admissible lower bounds on |o ∪ q|; take the largest.
  //   (a) I ⊆ o  =>  |o ∪ q| >= |I ∪ q|
  //   (b) |o ∪ q| = |o| + |q| − |o∩q| >= max(min_len, c) + |q| − c, and the
  //       right-hand side is minimised at c = num (it is non-increasing in c
  //       while c <= min_len and constant after), so it stays valid.
  // Variant kSetsOnly uses only (a) — the summary the paper describes.
  size_t den = s.inter_set.UnionSize(query_doc);
  if (variant == SetRBoundVariant::kLengthTightened) {
    const size_t den_b =
        std::max<size_t>(s.min_doc_len, num) + query_doc.size() - num;
    den = std::max(den, den_b);
  }
  return std::min(1.0, static_cast<double>(num) / static_cast<double>(den));
}

double LowerBoundTSim(const SetSummary& s, const KeywordSet& query_doc,
                      SetRBoundVariant variant) {
  if (s.count == 0 || query_doc.empty()) return 0.0;
  // Numerator bound: |o ∩ q| >= |I ∩ q|.
  const size_t num = s.inter_set.IntersectionSize(query_doc);
  if (num == 0) return 0.0;
  // Denominator: admissible upper bounds on |o ∪ q|; take the smallest.
  //   (a) o ⊆ U  =>  |o ∪ q| <= |U ∪ q|
  //   (b) |o| + |q| − |o∩q| <= max_len + |q| − num  (since |o∩q| >= num).
  size_t den = s.union_set.UnionSize(query_doc);
  if (variant == SetRBoundVariant::kLengthTightened) {
    den = std::min(den, s.max_doc_len + query_doc.size() - num);
  }
  return static_cast<double>(num) / static_cast<double>(den);
}

double UpperBoundScore(const Scorer& scorer, const Rect& mbr,
                       const SetSummary& s, SetRBoundVariant variant) {
  const Query& q = scorer.query();
  return q.w.ws * scorer.MaxSpatialComponent(mbr) +
         q.w.wt * UpperBoundTSim(s, q.doc, variant);
}

double LowerBoundScore(const Scorer& scorer, const Rect& mbr,
                       const SetSummary& s, SetRBoundVariant variant) {
  const Query& q = scorer.query();
  return q.w.ws * scorer.MinSpatialComponent(mbr) +
         q.w.wt * LowerBoundTSim(s, q.doc, variant);
}

template class RTreeT<SetSummary>;

}  // namespace yask
