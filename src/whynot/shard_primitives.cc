#include "src/whynot/shard_primitives.h"

#include "src/query/ranking.h"
#include "src/whynot/preference_adjustment.h"

namespace yask {

namespace {

/// Appends the crossing weight of the anchor's line with p's line when it
/// exists and falls inside [wlo, whi] — the shared re-filter every layout
/// runs, so a crossing's weight is the same double wherever it is computed.
void AppendCrossingWeight(const PlanePoint& m, const PlanePoint& p, double wlo,
                          double whi, std::vector<double>* events) {
  if (p.id == m.id) return;
  const double slope = (p.x - m.x) - (p.y - m.y);
  if (slope == 0.0) return;  // Parallel (or identical) lines: no crossing.
  const double wx = (m.y - p.y) / slope;
  if (!(wx >= wlo && wx <= whi)) return;
  events->push_back(wx);
}

}  // namespace

size_t ShardScanOutscoring(const OracleShardView& view, const Scorer& scorer,
                           double target_score, ObjectId target_global) {
  size_t above = 0;
  for (const SpatialObject& o : view.store->objects()) {
    const ObjectId gid =
        view.to_global != nullptr ? (*view.to_global)[o.id] : o.id;
    if (gid == target_global) continue;
    if (OutranksTarget(scorer.Score(o), gid, target_score, target_global)) {
      ++above;
    }
  }
  return above;
}

// --- ShardPlane --------------------------------------------------------------

ShardPlane::ShardPlane(const OracleShardView& view, const Query& query,
                       double dist_norm, bool optimized)
    : optimized_(optimized) {
  std::vector<PlanePoint> pts =
      BuildPlanePoints(*view.store, query, dist_norm, view.to_global);
  if (optimized_) {
    index_ = std::make_unique<ScorePlaneIndex>(std::move(pts));
  } else {
    pts_ = std::move(pts);
  }
}

size_t ShardPlane::CountAbove(double w, double threshold,
                              const PlanePoint& anchor,
                              size_t* nodes_visited) const {
  if (optimized_) {
    const size_t count = index_->CountAbove(w, threshold, anchor.id);
    *nodes_visited += index_->last_nodes_visited();
    return count;
  }
  size_t above = 0;
  for (const PlanePoint& p : pts_) {
    if (p.id == anchor.id) continue;
    if (OutranksTarget(p.ScoreAt(w), p.id, threshold, anchor.id)) ++above;
  }
  return above;
}

void ShardPlane::CountAboveBatch(const std::vector<double>& weights,
                                 const std::vector<PlanePoint>& anchors,
                                 std::vector<size_t>* counts,
                                 size_t* nodes_visited) const {
  const size_t na = anchors.size();
  for (size_t wi = 0; wi < weights.size(); ++wi) {
    for (size_t a = 0; a < na; ++a) {
      const double threshold = anchors[a].ScoreAt(weights[wi]);
      (*counts)[wi * na + a] =
          CountAbove(weights[wi], threshold, anchors[a], nodes_visited);
    }
  }
}

void ShardPlane::CollectCrossings(const PlanePoint& anchor, double wlo,
                                  double whi, std::vector<double>* events,
                                  size_t* nodes_visited) const {
  if (optimized_) {
    index_->ForEachCrossing(anchor, wlo, whi, [&](const PlanePoint& p) {
      AppendCrossingWeight(anchor, p, wlo, whi, events);
    });
    *nodes_visited += index_->last_nodes_visited();
    return;
  }
  for (const PlanePoint& p : pts_) {
    AppendCrossingWeight(anchor, p, wlo, whi, events);
  }
}

// --- ShardRankRefiner --------------------------------------------------------

ShardRankRefiner::ShardRankRefiner(const OracleShardView& view,
                                   const Scorer& scorer,
                                   ObjectId target_global, double target_score,
                                   KeywordAdaptStats* stats)
    : view_(&view),
      scorer_(&scorer),
      target_(target_global),
      target_score_(target_score),
      stats_(stats) {
  const KcRTree& tree = *view.kcr;
  PushNode(tree.root(), tree.node(tree.root()));
}

void ShardRankRefiner::RefineLevel() {
  if (frontier_.empty()) return;
  const KcRTree& tree = *view_->kcr;
  std::vector<Frontier> previous;
  previous.swap(frontier_);
  sum_lower_ = 0;
  sum_upper_ = 0;
  for (const Frontier& f : previous) {
    const auto& node = tree.node(f.node);
    ++stats_->kcr_nodes_expanded;
    if (node.is_leaf) {
      for (const auto& e : node.entries) {
        const ObjectId gid =
            view_->to_global != nullptr ? (*view_->to_global)[e.id] : e.id;
        if (gid == target_) continue;
        ++stats_->objects_scored;
        if (OutranksTarget(scorer_->Score(e.id), gid, target_score_,
                           target_)) {
          ++exact_;
        }
      }
    } else {
      for (const auto& e : node.entries) {
        PushNode(e.id, tree.node(e.id));
      }
    }
  }
}

void ShardRankRefiner::PushNode(KcRTree::NodeId id, const KcRTree::Node& node) {
  if (node.summary.cnt == 0) return;
  const CountBounds b =
      BoundOutscoringCount(*scorer_, node.rect, node.summary, target_score_);
  if (b.upper == 0) return;  // Nothing below can outrank: drop.
  if (b.lower == b.upper) {
    exact_ += b.lower;  // Pinned without descending.
    // Note: the target itself is never counted by the lower bound (its own
    // score cannot strictly exceed itself), so this is tie-safe.
    return;
  }
  frontier_.push_back(Frontier{id, b});
  sum_lower_ += b.lower;
  sum_upper_ += b.upper;
}

}  // namespace yask
