#include "src/storage/dataset_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>

#include "src/storage/dataset_generator.h"

namespace yask {
namespace {

class DatasetIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/yask_dataset_io_test.tsv";
  }
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_;
};

TEST_F(DatasetIoTest, RoundTrip) {
  DatasetSpec spec;
  spec.num_objects = 200;
  const ObjectStore original = GenerateDataset(spec);
  ASSERT_TRUE(SaveDataset(original, path_).ok());

  auto loaded = LoadDataset(path_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->size(), original.size());
  for (size_t i = 0; i < original.size(); ++i) {
    const SpatialObject& a = original.Get(i);
    const SpatialObject& b = loaded->Get(i);
    EXPECT_NEAR(a.loc.x, b.loc.x, 1e-9);
    EXPECT_NEAR(a.loc.y, b.loc.y, 1e-9);
    EXPECT_EQ(a.doc.size(), b.doc.size());
    // Keyword words must survive the round trip (ids may be renumbered, so
    // compare as word sets).
    auto words = [](const KeywordSet& doc, const Vocabulary& vocab) {
      std::set<std::string> out;
      for (TermId t : doc) out.insert(vocab.Word(t));
      return out;
    };
    EXPECT_EQ(words(a.doc, original.vocab()), words(b.doc, loaded->vocab()));
  }
}

TEST_F(DatasetIoTest, NamesSurvive) {
  ObjectStore store;
  Vocabulary* vocab = store.mutable_vocab();
  store.Add(Point{0.1, 0.2}, KeywordSet({vocab->Intern("cafe")}),
            "Starbucks Central");
  ASSERT_TRUE(SaveDataset(store, path_).ok());
  auto loaded = LoadDataset(path_);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->Get(0).name, "Starbucks Central");
}

TEST_F(DatasetIoTest, SkipsCommentsAndBlankLines) {
  std::ofstream out(path_);
  out << "# header comment\n\n0.5\t0.5\tcoffee wifi\tCafe A\n\n";
  out.close();
  auto loaded = LoadDataset(path_);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), 1u);
  EXPECT_EQ(loaded->Get(0).doc.size(), 2u);
}

TEST_F(DatasetIoTest, MissingFileIsNotFound) {
  auto loaded = LoadDataset("/nonexistent/path/file.tsv");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

TEST_F(DatasetIoTest, MalformedCoordinatesRejectedWithLineNumber) {
  std::ofstream out(path_);
  out << "0.5\t0.5\tok\tA\n";
  out << "abc\t0.5\tbad\tB\n";
  out.close();
  auto loaded = LoadDataset(path_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(loaded.status().message().find("line 2"), std::string::npos);
}

TEST_F(DatasetIoTest, TooFewFieldsRejected) {
  std::ofstream out(path_);
  out << "0.5\t0.5\n";
  out.close();
  auto loaded = LoadDataset(path_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(DatasetIoTest, NameFieldOptional) {
  std::ofstream out(path_);
  out << "0.25\t0.75\talpha beta\n";
  out.close();
  auto loaded = LoadDataset(path_);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->Get(0).name, "");
  EXPECT_EQ(loaded->Get(0).loc, (Point{0.25, 0.75}));
}

}  // namespace
}  // namespace yask
