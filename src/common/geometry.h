// Copyright (c) 2026 The YASK reproduction authors.
// 2-D geometry primitives for the spatial side of spatial keyword queries.
//
// All spatial objects live in the Euclidean plane (the paper computes
// SDist(o, q) as Euclidean distance, Eqn. (1)). Rectangles are axis-aligned
// and closed; they serve as R-tree minimum bounding rectangles (MBRs).

#ifndef YASK_COMMON_GEOMETRY_H_
#define YASK_COMMON_GEOMETRY_H_

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>

namespace yask {

/// A point in the 2-D Euclidean plane.
struct Point {
  double x = 0.0;
  double y = 0.0;

  bool operator==(const Point& other) const = default;
};

/// Euclidean distance between two points.
double Distance(const Point& a, const Point& b);

/// Squared Euclidean distance (avoids the sqrt when only comparing).
double SquaredDistance(const Point& a, const Point& b);

/// An axis-aligned closed rectangle; the R-tree MBR type.
///
/// An empty rectangle (min > max) is the identity of Extend()/Union and
/// intersects nothing; `Rect::Empty()` constructs one.
struct Rect {
  double min_x = std::numeric_limits<double>::infinity();
  double min_y = std::numeric_limits<double>::infinity();
  double max_x = -std::numeric_limits<double>::infinity();
  double max_y = -std::numeric_limits<double>::infinity();

  /// The empty rectangle (union identity).
  static Rect Empty() { return Rect{}; }

  /// The degenerate rectangle covering exactly one point.
  static Rect FromPoint(const Point& p) { return Rect{p.x, p.y, p.x, p.y}; }

  /// A rectangle from explicit bounds; asserts min <= max per axis.
  static Rect FromBounds(double min_x, double min_y, double max_x,
                         double max_y);

  bool empty() const { return min_x > max_x || min_y > max_y; }

  /// Grows this rectangle to cover `p`.
  void Extend(const Point& p);
  /// Grows this rectangle to cover `other`.
  void Extend(const Rect& other);

  /// Area; 0 for empty or degenerate rectangles.
  double Area() const;
  /// Half perimeter (margin); used by some split heuristics.
  double Margin() const;

  /// True if `p` lies inside or on the boundary.
  bool Contains(const Point& p) const;
  /// True if `other` is fully inside this rectangle.
  bool Contains(const Rect& other) const;
  /// True if the two rectangles share at least one point.
  bool Intersects(const Rect& other) const;

  /// Smallest rectangle covering both inputs.
  static Rect Union(const Rect& a, const Rect& b);
  /// Intersection; empty if disjoint.
  static Rect Intersection(const Rect& a, const Rect& b);

  /// Area growth needed to cover `r` (the classic R-tree insert heuristic).
  double Enlargement(const Rect& r) const;

  /// Minimum Euclidean distance from `p` to any point of this rectangle;
  /// 0 when `p` is inside. This is the R-tree MINDIST bound.
  double MinDistance(const Point& p) const;
  /// Maximum Euclidean distance from `p` to any point of this rectangle
  /// (distance to the farthest corner). This is the MAXDIST bound.
  double MaxDistance(const Point& p) const;

  Point Center() const { return Point{(min_x + max_x) / 2, (min_y + max_y) / 2}; }

  bool operator==(const Rect& other) const = default;

  std::string ToString() const;
};

}  // namespace yask

#endif  // YASK_COMMON_GEOMETRY_H_
