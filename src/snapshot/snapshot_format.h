// Copyright (c) 2026 The YASK reproduction authors.
// On-disk snapshot format primitives: magic/version constants, section ids,
// CRC-32, and the bounds-checked little-endian buffer codecs every component
// codec is written against (see docs/snapshot_format.md for the full layout).
//
// A snapshot is the server's warm state (object table + indexes) serialised
// to one file so a restarting replica loads it in a single sequential pass
// instead of re-indexing. Robustness contract: a corrupt, truncated or
// version-mismatched file must surface as an error Status — never a crash,
// assert, or unbounded allocation.

#ifndef YASK_SNAPSHOT_SNAPSHOT_FORMAT_H_
#define YASK_SNAPSHOT_SNAPSHOT_FORMAT_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/status.h"

namespace yask {

/// First 8 bytes of every snapshot file: "YSKSNAP1" read as little-endian.
inline constexpr uint64_t kSnapshotMagic = 0x3150414E534B5359ull;

/// Bumped on every incompatible layout change. A reader refuses files with a
/// newer version (it cannot know their layout) with kFailedPrecondition.
inline constexpr uint32_t kSnapshotFormatVersion = 1;

/// Identifies what a section's payload encodes. Values are part of the file
/// format; never renumber, only append.
enum class SectionId : uint32_t {
  kVocabulary = 1,
  kObjectStore = 2,
  kInvertedIndex = 3,
  kSetRTree = 4,
  kKcRTree = 5,
  /// Present only in per-shard snapshot files: which shard of how many this
  /// file is, the partition's global bounds, and the shard's global object
  /// ids (the local->global id map). See docs/architecture.md.
  kShardManifest = 6,
};

/// Stable lower-case name for logs and `dataset_tool inspect-snapshot`.
const char* SectionIdToString(SectionId id);

/// CRC-32 (IEEE 802.3, the zlib polynomial) of `size` bytes. Pass the return
/// value back as `seed` to checksum data in chunks.
uint32_t Crc32(const void* data, size_t size, uint32_t seed = 0);

/// Append-only little-endian encoder backing one snapshot section.
///
/// Fixed-width integers are used for the file header and section table (so
/// offsets are patchable and seekable); section payloads prefer the varint
/// and delta encodings, which shrink posting lists and keyword sets to close
/// to their entropy.
class BufWriter {
 public:
  void PutU8(uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void PutU32(uint32_t v) { PutFixed(&v, sizeof(v)); }
  void PutU64(uint64_t v) { PutFixed(&v, sizeof(v)); }
  void PutF64(double v) {
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    PutU64(bits);
  }

  /// LEB128 unsigned varint (1 byte for values < 128).
  void PutVarU64(uint64_t v);
  void PutVarU32(uint32_t v) { PutVarU64(v); }

  /// Length-prefixed byte string.
  void PutString(std::string_view s);

  /// Raw bytes with no prefix (concatenating pre-encoded stripes).
  void PutRaw(std::string_view bytes) { out_.append(bytes); }

  /// A strictly ascending id sequence as count + delta-encoded varints; the
  /// natural encoding for posting lists and KeywordSets.
  void PutDeltaIds(const std::vector<uint32_t>& sorted_ids);

  const std::string& data() const { return out_; }
  size_t size() const { return out_.size(); }

 private:
  void PutFixed(const void* v, size_t n) {
    out_.append(reinterpret_cast<const char*>(v), n);
  }

  std::string out_;
};

/// Bounds-checked decoder over a section payload.
///
/// Sticky-error style: after any failed read the reader is poisoned, every
/// further read returns zero values, and `status()` reports the first error.
/// Decoders read optimistically and check `status()` once per object/batch.
class BufReader {
 public:
  BufReader(const void* data, size_t size)
      : data_(static_cast<const uint8_t*>(data)), size_(size) {}

  uint8_t GetU8();
  uint32_t GetU32();
  uint64_t GetU64();
  double GetF64();
  uint64_t GetVarU64();
  uint32_t GetVarU32();
  std::string GetString();
  /// Inverse of BufWriter::PutDeltaIds. Fails on non-ascending deltas.
  std::vector<uint32_t> GetDeltaIds();

  /// Guards a decoded element count before it sizes an allocation or loop:
  /// fails unless `count * min_bytes_each` bytes could still remain. Defeats
  /// absurd counts in corrupt files without reading them element-wise.
  bool CheckCount(uint64_t count, size_t min_bytes_each = 1);

  size_t remaining() const { return size_ - pos_; }
  bool AtEnd() const { return pos_ == size_ && ok_; }

  /// Pointer to the next unread byte (slicing stripe sub-readers).
  const uint8_t* cursor() const { return data_ + pos_; }

  /// Advances past `n` bytes; fails (sticky) when fewer remain.
  bool Skip(size_t n);
  bool ok() const { return ok_; }
  const Status& status() const { return status_; }

  /// Poisons the reader with a decoder-level error (e.g. an invalid enum
  /// value); keeps the first error if one is already set.
  void Fail(std::string message);

 private:
  bool Need(size_t n);

  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
  bool ok_ = true;
  Status status_;
};

}  // namespace yask

#endif  // YASK_SNAPSHOT_SNAPSHOT_FORMAT_H_
