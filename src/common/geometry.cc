#include "src/common/geometry.h"

#include <cassert>
#include <cstdio>

namespace yask {

double Distance(const Point& a, const Point& b) {
  return std::sqrt(SquaredDistance(a, b));
}

double SquaredDistance(const Point& a, const Point& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return dx * dx + dy * dy;
}

Rect Rect::FromBounds(double min_x, double min_y, double max_x, double max_y) {
  assert(min_x <= max_x && min_y <= max_y);
  return Rect{min_x, min_y, max_x, max_y};
}

void Rect::Extend(const Point& p) {
  min_x = std::min(min_x, p.x);
  min_y = std::min(min_y, p.y);
  max_x = std::max(max_x, p.x);
  max_y = std::max(max_y, p.y);
}

void Rect::Extend(const Rect& other) {
  if (other.empty()) return;
  min_x = std::min(min_x, other.min_x);
  min_y = std::min(min_y, other.min_y);
  max_x = std::max(max_x, other.max_x);
  max_y = std::max(max_y, other.max_y);
}

double Rect::Area() const {
  if (empty()) return 0.0;
  return (max_x - min_x) * (max_y - min_y);
}

double Rect::Margin() const {
  if (empty()) return 0.0;
  return (max_x - min_x) + (max_y - min_y);
}

bool Rect::Contains(const Point& p) const {
  return p.x >= min_x && p.x <= max_x && p.y >= min_y && p.y <= max_y;
}

bool Rect::Contains(const Rect& other) const {
  if (other.empty()) return true;
  return other.min_x >= min_x && other.max_x <= max_x && other.min_y >= min_y &&
         other.max_y <= max_y;
}

bool Rect::Intersects(const Rect& other) const {
  if (empty() || other.empty()) return false;
  return !(other.min_x > max_x || other.max_x < min_x || other.min_y > max_y ||
           other.max_y < min_y);
}

Rect Rect::Union(const Rect& a, const Rect& b) {
  Rect out = a;
  out.Extend(b);
  return out;
}

Rect Rect::Intersection(const Rect& a, const Rect& b) {
  if (!a.Intersects(b)) return Rect::Empty();
  return Rect{std::max(a.min_x, b.min_x), std::max(a.min_y, b.min_y),
              std::min(a.max_x, b.max_x), std::min(a.max_y, b.max_y)};
}

double Rect::Enlargement(const Rect& r) const {
  return Union(*this, r).Area() - Area();
}

double Rect::MinDistance(const Point& p) const {
  assert(!empty());
  const double dx = std::max({min_x - p.x, 0.0, p.x - max_x});
  const double dy = std::max({min_y - p.y, 0.0, p.y - max_y});
  return std::sqrt(dx * dx + dy * dy);
}

double Rect::MaxDistance(const Point& p) const {
  assert(!empty());
  const double dx = std::max(std::abs(p.x - min_x), std::abs(p.x - max_x));
  const double dy = std::max(std::abs(p.y - min_y), std::abs(p.y - max_y));
  return std::sqrt(dx * dx + dy * dy);
}

std::string Rect::ToString() const {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "[%.6g,%.6g]x[%.6g,%.6g]", min_x, max_x,
                min_y, max_y);
  return buf;
}

}  // namespace yask
