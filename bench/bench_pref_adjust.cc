// Experiments E4, E5, E7 (DESIGN.md): the preference-adjusted why-not module.
//
// Regenerates the ICDE'15-style sweeps behind §3.3's preference-adjustment
// module: optimized (score-plane index + penalty-floor pruning) versus the
// basic baseline (crossing enumeration + full rescan per candidate), swept
// over k (E4), the number of missing objects |M| (E5) and the dataset size N
// (E7).
//
// Expected shape (paper): optimized beats basic by 1-3 orders of magnitude
// and the gap widens with N; runtimes grow mildly with k and |M|.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "src/whynot/preference_adjustment.h"

namespace yask {
namespace bench {
namespace {

void RunAdjust(benchmark::State& state, PrefAdjustMode mode) {
  const size_t n = static_cast<size_t>(state.range(0));
  const uint32_t k = static_cast<uint32_t>(state.range(1));
  const size_t m_count = static_cast<size_t>(state.range(2));
  const ObjectStore& store = SharedDataset(n);

  // Pre-generate a deterministic workload of (query, missing) pairs.
  Rng rng(7);
  std::vector<std::pair<Query, std::vector<ObjectId>>> workload;
  while (workload.size() < 8) {
    Query q = MakeQuery(store, &rng, 3, k);
    std::vector<ObjectId> missing = PickMissing(store, q, m_count);
    if (missing.size() == m_count) {
      workload.emplace_back(std::move(q), std::move(missing));
    }
  }

  PreferenceAdjustOptions options;
  options.lambda = 0.5;
  options.mode = mode;

  size_t i = 0;
  double penalty_sum = 0.0;
  size_t crossings = 0;
  size_t runs = 0;
  for (auto _ : state) {
    const auto& [q, missing] = workload[i++ % workload.size()];
    auto result = AdjustPreference(store, q, missing, options);
    benchmark::DoNotOptimize(result);
    if (result.ok()) {
      penalty_sum += result->penalty.value;
      crossings += result->stats.crossings_found;
      ++runs;
    }
  }
  if (runs > 0) {
    state.counters["avg_penalty"] = benchmark::Counter(penalty_sum / runs);
    state.counters["crossings/query"] =
        benchmark::Counter(static_cast<double>(crossings) / runs);
  }
}

void BM_PrefAdjust_Optimized(benchmark::State& state) {
  RunAdjust(state, PrefAdjustMode::kOptimized);
}
void BM_PrefAdjust_Basic(benchmark::State& state) {
  RunAdjust(state, PrefAdjustMode::kBasic);
}

// E4: vary k at N = 100k (optimized) / 20k (basic: quadratic, kept small).
BENCHMARK(BM_PrefAdjust_Optimized)
    ->ArgNames({"N", "k", "M"})
    ->Args({100000, 1, 1})
    ->Args({100000, 5, 1})
    ->Args({100000, 10, 1})
    ->Args({100000, 20, 1})
    ->Args({100000, 50, 1});
BENCHMARK(BM_PrefAdjust_Basic)
    ->ArgNames({"N", "k", "M"})
    ->Args({20000, 1, 1})
    ->Args({20000, 10, 1})
    ->Args({20000, 50, 1});

// E5: vary |M| at N = 100k, k = 10.
BENCHMARK(BM_PrefAdjust_Optimized)
    ->ArgNames({"N", "k", "M"})
    ->Args({100000, 10, 2})
    ->Args({100000, 10, 3})
    ->Args({100000, 10, 4});

// E7: vary N at k = 10, |M| = 1 (head-to-head at equal N where feasible).
BENCHMARK(BM_PrefAdjust_Optimized)
    ->ArgNames({"N", "k", "M"})
    ->Args({10000, 10, 1})
    ->Args({20000, 10, 1})
    ->Args({50000, 10, 1})
    ->Args({200000, 10, 1});
BENCHMARK(BM_PrefAdjust_Basic)
    ->ArgNames({"N", "k", "M"})
    ->Args({10000, 10, 1});

}  // namespace
}  // namespace bench
}  // namespace yask

BENCHMARK_MAIN();
