// Copyright (c) 2026 The YASK reproduction authors.
// Deterministic pseudo-random generation for dataset synthesis and tests.
//
// All randomness in the library flows through Rng (splitmix64-seeded
// xoshiro256**). Benchmarks and tests pass fixed seeds so every run of an
// experiment reproduces the same workload byte-for-byte.

#ifndef YASK_COMMON_RANDOM_H_
#define YASK_COMMON_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace yask {

/// Deterministic 64-bit PRNG (xoshiro256**, seeded via splitmix64).
class Rng {
 public:
  /// Seeds the generator; equal seeds yield equal streams on all platforms.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform integer in [0, bound) using Lemire rejection; bound > 0.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double NextDouble(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive; lo <= hi.
  int64_t NextInt(int64_t lo, int64_t hi);

  /// True with probability p (clamped to [0,1]).
  bool NextBernoulli(double p);

  /// Standard normal via Box–Muller.
  double NextGaussian();

  /// Normal with given mean and standard deviation.
  double NextGaussian(double mean, double stddev);

  /// Fisher–Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(NextBounded(i));
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

 private:
  uint64_t s_[4];
  bool has_spare_gaussian_ = false;
  double spare_gaussian_ = 0.0;
};

/// Samples from a Zipf distribution over {0, ..., n-1} with exponent `s`.
///
/// Keyword popularity in real POI datasets is heavily skewed; the generators
/// draw keywords Zipf-distributed to match (DESIGN.md S3). Sampling is O(log n)
/// by binary search over the precomputed CDF; construction is O(n).
class ZipfSampler {
 public:
  /// n >= 1; s >= 0 (s = 0 degenerates to uniform).
  ZipfSampler(size_t n, double s);

  /// Draws a rank in [0, n); rank 0 is the most popular.
  size_t Sample(Rng* rng) const;

  size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace yask

#endif  // YASK_COMMON_RANDOM_H_
